// Package examples_test smoke-runs the four example programs as real
// child processes: each must build, finish inside a wall-clock bound,
// exit zero, and print the line that proves it got to its point. The
// examples are the public-API documentation; this keeps them from
// silently rotting as the API moves.
package examples_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// smokeTimeout bounds each run. The slowest example (steering, which
// profiles twice) takes ~20 s cold including its build; the bound
// leaves generous headroom for a loaded CI host without letting a
// hang stall the suite.
const smokeTimeout = 180 * time.Second

// runExample executes `go run ./<dir>` from this directory and
// requires the marker string in its output.
func runExample(t *testing.T, dir, marker string) {
	t.Helper()
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), smokeTimeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("%s did not finish within %v; output so far:\n%s", dir, smokeTimeout, out)
	}
	if err != nil {
		t.Fatalf("%s exited with %v:\n%s", dir, err, out)
	}
	if !strings.Contains(string(out), marker) {
		t.Fatalf("%s output lacks %q:\n%s", dir, marker, out)
	}
}

func TestQuickstartSmoke(t *testing.T) {
	// The tracking loop printed estimates attributed to the CSI path.
	runExample(t, "quickstart", "via csi")
}

func TestSteeringSmoke(t *testing.T) {
	// The comparison reached its conclusion line.
	runExample(t, "steering", "restored to baseline")
}

func TestNetstreamSmoke(t *testing.T) {
	// Both wire directions worked and the tracker scored the run.
	runExample(t, "netstream", "tracked")
}

func TestARForecastSmoke(t *testing.T) {
	// The forecasting walkthrough reached its closing argument.
	runExample(t, "arforecast", "motion-blur problem")
}
