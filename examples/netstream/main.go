// Netstream: the deployment split of the paper's prototype (Sec. 4) —
// the phone streams CSI-probe traffic and its IMU readings over UDP to
// the in-car receiver, which sanitizes frames and runs the tracker.
// This example runs both halves over real loopback sockets: a
// goroutine plays the "phone + CSI extraction" side, the main
// goroutine plays the head-unit side.
package main

import (
	"fmt"
	"log"
	"time"

	"vihot"
	"vihot/internal/cabin"
	"vihot/internal/csi"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

func main() {
	recv, err := wifi.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()

	// --- receiver side: profile first (in-process for brevity).
	env, err := experiment.NewEnv(cabin.DefaultConfig(), 9)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := env.CollectProfile(driver.DriverA(), experiment.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := vihot.NewPipeline(profile, vihot.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}

	const driveSeconds = 10.0
	scenario := driver.DrivingScenario(env.RNG.Fork(), driver.DriverA(), driveSeconds,
		driver.GlanceOptions{PositionJitter: 0.006})

	// --- sender side: simulate the drive, push raw CSI frames and IMU
	// readings over UDP (time-compressed: no real-time sleeps needed).
	go func() {
		send, err := wifi.Dial(recv.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer send.Close()
		hw := env.HW
		phone := imu.NewPhoneIMU(env.RNG.Fork())
		nextIMU := 0.0
		var buf [][]complex128
		for i, t := range env.Timing.ArrivalTimes(env.RNG.Fork(), driveSeconds) {
			if i%200 == 0 {
				// Pace the burst so loopback socket buffers keep up.
				time.Sleep(2 * time.Millisecond)
			}
			for nextIMU <= t {
				r := phone.Sample(nextIMU, scenario.CarYawRateDPS(nextIMU), scenario.SpeedMPS)
				if err := send.SendIMU(&r); err != nil {
					log.Fatal(err)
				}
				nextIMU += 0.01
			}
			buf = env.Scene.CleanCSI(scenario.State(t), buf)
			frame := hw.Corrupt(t, buf)
			if err := send.SendCSI(frame); err != nil {
				log.Fatal(err)
			}
		}
		// End-of-stream marker, repeated in case the kernel dropped
		// datagrams under the burst (UDP offers no delivery promise).
		time.Sleep(100 * time.Millisecond)
		end := imu.Reading{Time: -1}
		for i := 0; i < 20; i++ {
			_ = send.SendIMU(&end)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// --- receiver loop: decode datagrams, sanitize CSI (Eq. 3), feed
	// the pipeline, score against ground truth.
	var errs []float64
	frames, imus := 0, 0
loop:
	for {
		pkt, err := recv.Recv(3 * time.Second)
		if err != nil {
			// A quiet socket after the burst means the stream (and
			// possibly the end marker) ended; treat it as done.
			break loop
		}
		switch pkt.Type {
		case wifi.TypeIMU:
			if pkt.IMU.Time < 0 {
				break loop
			}
			imus++
			pipeline.PushIMU(*pkt.IMU)
		case wifi.TypeCSI:
			frames++
			phi, err := csi.Sanitize(pkt.CSI, 0, 1)
			if err != nil {
				continue
			}
			if est, ok := pipeline.PushCSI(pkt.CSI.Time, phi); ok {
				truth := scenario.HeadYaw.At(est.Time)
				errs = append(errs, geom.AngleDistDeg(est.Yaw, truth))
			}
		}
	}
	s := stats.Summarize(errs)
	fmt.Printf("received %d CSI frames + %d IMU readings over UDP\n", frames, imus)
	fmt.Printf("tracked %d estimates: median %.1f°, p90 %.1f°\n", s.N, s.Median, s.P90)
}
