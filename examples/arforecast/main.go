// AR forecasting: ViHOT's predictive tracking (Sec. 3.4.6) lets an
// in-vehicle AR stack render speculatively — content for where the
// head WILL be when the frame hits the windshield display. This
// example runs a continuous head-scanning session and compares
// forecast accuracy across rendering latencies (0–400 ms), the
// experiment behind the paper's Fig. 10.
package main

import (
	"fmt"
	"log"

	"vihot"
	"vihot/internal/stats"
)

func main() {
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := sim.ProfileDriver(vihot.DriverB)
	if err != nil {
		log.Fatal(err)
	}

	// Rendering pipelines add latency; a 100 ms-late frame drawn for a
	// stale head pose misses by (head speed × 0.1 s) ≈ 11° at typical
	// turning speeds. Forecasting hides that latency.
	horizons := []float64{0, 0.1, 0.2, 0.3, 0.4}
	res, err := sim.Sweep(profile, vihot.DriverB, 45, 110, horizons)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("render-latency compensation via head-orientation forecasting")
	fmt.Println("(paper Fig. 10: mean error ≈4° at 0 ms to ≈18° at 400 ms)")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-12s %-10s\n", "horizon", "mean err", "median err", "max err")
	for i, h := range horizons {
		s := stats.Summarize(res.ForecastErrors(i))
		fmt.Printf("%6.0f ms  %8.1f°  %9.1f°  %8.1f°\n", h*1000, s.Mean, s.Median, s.Max)
	}

	// The unforecast alternative: using the CURRENT estimate for a
	// late frame. Compute what a 200 ms-late renderer would suffer
	// without prediction: the 0 ms estimate scored against the head
	// pose 200 ms later is exactly the "no forecast" baseline.
	// Alternative predictor: the optional Kalman smoother carries a
	// velocity state; extrapolating it is a model-based forecast that
	// needs no profile replay. Compare it at the 200 ms horizon.
	smoother := vihot.NewSmoother()
	var kalman []float64
	ests := res.Estimates()
	for i, est := range ests {
		smoother.Update(est)
		pred := smoother.Predict(0.2)
		// Score against the estimate 200 ms later in the stream.
		for j := i + 1; j < len(ests); j++ {
			if ests[j].Time >= est.Time+0.2 {
				kalman = append(kalman, pred-ests[j].Yaw)
				break
			}
		}
	}
	var absErr []float64
	for _, e := range kalman {
		if e < 0 {
			e = -e
		}
		absErr = append(absErr, e)
	}
	fmt.Println()
	fmt.Printf("Kalman-extrapolation alternative at 200 ms: mean %.1f° vs\n", stats.Mean(absErr))
	fmt.Println("profile-replay forecasting (Eq. 6) above — the replay predictor")
	fmt.Println("knows the profiled trajectory shape; extrapolation only its slope.")

	fmt.Println()
	fmt.Println("without forecasting, a 200 ms renderer would lag the head by")
	fmt.Println("(turn speed × latency) ≈ 22° during every glance — the")
	fmt.Println("motion-blur problem that rules out 30 FPS cameras entirely.")
}
