// Quickstart: profile a driver in the simulated cabin, then track a
// 20-second drive and print the accuracy — the minimal end-to-end use
// of the vihot public API.
package main

import (
	"fmt"
	"log"
	"sort"

	"vihot"
)

// median computes the middle value of a sample set.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func main() {
	// The simulator stands in for the paper's hardware: an Intel 5300
	// CSI receiver in a car with a dashboard phone. Seed it for a
	// reproducible run.
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — profiling (Sec. 3.3 of the paper): the driver settles
	// at each of 10 seat positions and sweeps their head; CSI phases
	// and camera-labeled orientations build the profile.
	profile, seconds, err := sim.ProfileDriver(vihot.DriverA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d head positions in %.0f s\n", len(profile.Positions), seconds)

	// Step 2 — run-time tracking: a realistic drive with mirror
	// glances. Estimates arrive at 100 Hz from ≈500 Hz CSI.
	res, err := sim.Drive(profile, vihot.DriverA, 20, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tracked %d estimates at %.0f Hz CSI sampling\n",
		len(res.Estimates()), res.SampleRateHz())
	// Overall median is dominated by the easy front-facing periods;
	// the during-turn errors are the honest comparison point with the
	// paper's continuous head-turning tests.
	var turning []float64
	for i, est := range res.Estimates() {
		if est.Source == vihot.SourceCSI {
			turning = append(turning, res.Errors()[i])
		}
	}
	fmt.Printf("median angular error: %.1f° overall, %.1f° during head turns\n",
		res.MedianError(), median(turning))
	fmt.Println("(the paper reports 4–10° median on continuous-turning tests)")

	// Peek at a few estimates.
	for i, est := range res.Estimates() {
		if i%400 == 0 {
			fmt.Printf("  t=%5.2fs  yaw=%+6.1f°  via %s\n", est.Time, est.Yaw, est.Source)
		}
	}
}
