// Steering interference: turning the wheel sweeps the driver's hands
// through the WiFi field and corrupts the CSI phase (paper Fig. 8).
// ViHOT's steering identifier (Sec. 3.6) gates tracking on the phone's
// IMU — only steering redirects the car — and falls back to the camera
// while the wheel moves. This example runs the same drive with the
// identifier off and on, reproducing the paper's Fig. 17b contrast.
package main

import (
	"fmt"
	"log"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/stats"
)

func main() {
	env, err := experiment.NewEnv(cabin.DefaultConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := env.CollectProfile(driver.DriverA(), experiment.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}

	// One drive with frequent intersection turns, tracked twice.
	scenario := driver.DrivingScenario(env.RNG.Fork(), driver.DriverA(), 60,
		driver.GlanceOptions{Steering: true, SteerProb: 0.6, PositionJitter: 0.006})

	run := func(identifier bool) stats.Summary {
		cfg := core.DefaultPipelineConfig()
		cfg.SteeringIdentifier = identifier
		res, err := env.Track(profile, scenario, experiment.TrackOptions{
			Pipeline: cfg,
			Camera:   identifier, // the fallback needs the camera feed
		})
		if err != nil {
			log.Fatal(err)
		}
		if identifier {
			fmt.Printf("  (%.0f%% of estimates served by the camera fallback)\n",
				res.FallbackFraction*100)
		}
		return stats.Summarize(res.Errors)
	}

	fmt.Println("60 s drive with intersection turns")
	fmt.Println()
	fmt.Println("steering identifier OFF (wheel motion pollutes the matcher):")
	off := run(false)
	fmt.Printf("  median %.1f°  p90 %.1f°  max %.1f°\n\n", off.Median, off.P90, off.Max)

	fmt.Println("steering identifier ON (IMU-gated, camera fallback during turns):")
	on := run(true)
	fmt.Printf("  median %.1f°  p90 %.1f°  max %.1f°\n\n", on.Median, on.P90, on.Max)

	fmt.Printf("the paper's Fig. 17b shows the same shape: errors reaching ≈80°\n")
	fmt.Printf("without the identifier, restored to baseline with it.\n")
}
