// Command vihot-profile is the profile-file toolbox for the versioned
// on-disk format (see internal/core persist.go): it inspects a
// profile without trusting it, migrates legacy unversioned-gob files
// to the current envelope, and prints content fingerprints for
// comparing profile generations across a fleet.
//
// Usage:
//
//	vihot-profile inspect FILE...
//	vihot-profile migrate SRC DST
//	vihot-profile fingerprint FILE...
//
// inspect decodes each file (either encoding), validates it, and
// reports encoding, shape, and fingerprint. migrate rewrites SRC into
// DST in the current format, refusing to proceed if the re-read
// fingerprint does not match the source byte-for-byte semantics.
// fingerprint prints one `<hex> <path>` line per file — the same
// 64-bit content hash core.Profile.Fingerprint computes, identical
// across encodings of the same profile.
package main

import (
	"fmt"
	"io"
	"os"

	"vihot/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "inspect":
		err = runInspect(os.Stdout, args)
	case "migrate":
		err = runMigrate(os.Stdout, args)
	case "fingerprint":
		err = runFingerprint(os.Stdout, args)
	case "help", "-h", "--help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "vihot-profile: unknown subcommand %q\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vihot-profile:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  vihot-profile inspect FILE...      decode, validate, and describe profile files
  vihot-profile migrate SRC DST      rewrite SRC (any encoding) as a current-format DST
  vihot-profile fingerprint FILE...  print each file's 64-bit content fingerprint
`)
}

// decodeFile opens and decodes one profile file, reporting its
// on-disk encoding.
func decodeFile(path string) (*core.Profile, core.ProfileEncoding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return core.DecodeProfile(f)
}

// runInspect implements the inspect subcommand.
func runInspect(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("inspect: no files given")
	}
	for _, path := range paths {
		p, enc, err := decodeFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n", path)
		fmt.Fprintf(w, "  encoding:     %s\n", enc)
		if enc == core.EncodingV1 {
			fmt.Fprintf(w, "  version:      %d (checksum verified)\n", core.ProfileFormatVersion)
		} else {
			fmt.Fprintf(w, "  version:      none (no checksum; migrate to fix)\n")
		}
		fmt.Fprintf(w, "  size:         %d bytes\n", fi.Size())
		fmt.Fprintf(w, "  match rate:   %g Hz\n", p.MatchRateHz)
		fmt.Fprintf(w, "  positions:    %d\n", len(p.Positions))
		fmt.Fprintf(w, "  grid samples: %d\n", p.GridSamples())
		fmt.Fprintf(w, "  fingerprint:  %016x\n", p.Fingerprint())
	}
	return nil
}

// runMigrate implements the migrate subcommand: decode (any
// encoding), re-encode current, and prove the round trip preserved
// the content by fingerprint before leaving DST in place.
func runMigrate(w io.Writer, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("migrate: want SRC DST")
	}
	src, dst := args[0], args[1]
	p, enc, err := decodeFile(src)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	want := p.Fingerprint()
	if err := core.SaveProfile(dst, p); err != nil {
		return fmt.Errorf("%s: %w", dst, err)
	}
	// Re-read what we wrote: the migrated file must decode as current
	// format and fingerprint identically, or the migration is void.
	q, reEnc, err := decodeFile(dst)
	if err == nil && reEnc != core.EncodingV1 {
		err = fmt.Errorf("rewrote as %s, want v1", reEnc)
	}
	if err == nil && q.Fingerprint() != want {
		err = fmt.Errorf("fingerprint changed %016x -> %016x", want, q.Fingerprint())
	}
	if err != nil {
		os.Remove(dst)
		return fmt.Errorf("migrate verification failed, %s removed: %w", dst, err)
	}
	fmt.Fprintf(w, "%s (%s) -> %s (%s), fingerprint %016x preserved\n",
		src, enc, dst, reEnc, want)
	return nil
}

// runFingerprint implements the fingerprint subcommand.
func runFingerprint(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("fingerprint: no files given")
	}
	for _, path := range paths {
		p, _, err := decodeFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(w, "%016x  %s\n", p.Fingerprint(), path)
	}
	return nil
}
