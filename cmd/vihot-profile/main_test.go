package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vihot/internal/core"
)

// goldenProfile reproduces the exact profile the committed
// testdata/legacy.profile fixture was generated from, so the golden
// fingerprint is re-derivable from source.
func goldenProfile() *core.Profile {
	p := &core.Profile{MatchRateHz: 100}
	for i := 0; i < 3; i++ {
		pos := core.PositionProfile{Position: i, Fingerprint: 0.3*float64(i) - 0.5}
		for k := 0; k < 40; k++ {
			pos.PhiGrid = append(pos.PhiGrid, math.Sin(float64(k)*0.13+float64(i)))
			pos.ThetaGrid = append(pos.ThetaGrid, 80*math.Sin(float64(k)*0.17+float64(i)))
		}
		p.Positions = append(p.Positions, pos)
	}
	return p
}

func goldenFingerprint(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy.fingerprint"))
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(raw))
}

// TestMigrateGoldenRoundTrip is the satellite acceptance test: the
// committed legacy-gob fixture migrates into the v1 envelope with an
// identical Fingerprint(), pinned against both the committed golden
// value and the source-derived profile.
func TestMigrateGoldenRoundTrip(t *testing.T) {
	src := filepath.Join("testdata", "legacy.profile")
	p, enc, err := decodeFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if enc != core.EncodingLegacyGob {
		t.Fatalf("fixture encoding = %v, want legacy-gob", enc)
	}
	golden := goldenFingerprint(t)
	if got := fpHex(p.Fingerprint()); got != golden {
		t.Fatalf("fixture fingerprint = %s, want golden %s", got, golden)
	}
	if got := fpHex(goldenProfile().Fingerprint()); got != golden {
		t.Fatalf("source-derived fingerprint = %s, want golden %s", got, golden)
	}

	dst := filepath.Join(t.TempDir(), "migrated.profile")
	var out strings.Builder
	if err := runMigrate(&out, []string{src, dst}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), golden) {
		t.Errorf("migrate output %q does not report the preserved fingerprint", out.String())
	}
	q, enc2, err := decodeFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if enc2 != core.EncodingV1 {
		t.Errorf("migrated encoding = %v, want v1", enc2)
	}
	if fpHex(q.Fingerprint()) != golden {
		t.Errorf("migrated fingerprint = %s, want %s", fpHex(q.Fingerprint()), golden)
	}

	// Migrating an already-current file is a no-op rewrite that still
	// preserves the fingerprint.
	dst2 := filepath.Join(t.TempDir(), "again.profile")
	if err := runMigrate(&out, []string{dst, dst2}); err != nil {
		t.Fatal(err)
	}
	r, _, err := decodeFile(dst2)
	if err != nil {
		t.Fatal(err)
	}
	if fpHex(r.Fingerprint()) != golden {
		t.Error("second migration changed the fingerprint")
	}
}

func TestInspectAndFingerprintSubcommands(t *testing.T) {
	src := filepath.Join("testdata", "legacy.profile")
	golden := goldenFingerprint(t)

	var out strings.Builder
	if err := runInspect(&out, []string{src}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"legacy-gob", "positions:    3", "match rate:   100 Hz", golden} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := runFingerprint(&out, []string{src}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), golden) {
		t.Errorf("fingerprint output = %q, want prefix %s", out.String(), golden)
	}

	if err := runInspect(&out, []string{filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("inspect of missing file succeeded")
	}
	if err := runMigrate(&out, []string{"just-one-arg"}); err == nil {
		t.Error("migrate with one arg succeeded")
	}
}

func fpHex(fp uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[fp&0xf]
		fp >>= 4
	}
	return string(b[:])
}
