// Command vihot-trace records, inspects, and replays ViHOT sensor
// traces — the offline workflow of the paper's prototype, where CSI
// logs from the receiver are processed after the drive.
//
// Usage:
//
//	vihot-trace record  -out drive.vht [-duration S] [-steering] [-seed N]
//	vihot-trace info    drive.vht
//	vihot-trace replay  drive.vht [-profile-seed N]
//	vihot-trace spans   spans.json [-stage NAME]
//	vihot-trace journal serve.vhj [-repair]
//	vihot-trace cluster [-nodes a,b,c] handoffs.vhj
//
// The spans subcommand digests a latency-span dump written by
// vihot-serve -trace-out (or scraped from its /trace endpoint): for
// each pipeline stage it prints span counts and wall-latency
// percentiles, turning the raw ring into the per-stage latency budget
// the span tracer exists to answer for.
//
// The journal subcommand replays a durable journal written by
// vihot-serve -journal through the crash-recovery path and prints the
// reconstructed state: record counts, the stream-time span, the
// terminal per-session estimates/health/closure, and whether the file
// ends cleanly or in a torn record; -repair truncates a torn tail.
//
// The cluster subcommand reads a cluster coordinator's handoff
// journal (vihot-cluster -journal): the ordered log of session
// transfers — drains and failovers, with their routes and state
// snapshots — plus the same tail diagnostics as journal.
package main

import (
	"flag"
	"fmt"
	"os"

	"vihot"
	"vihot/internal/cabin"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/obs"
	"vihot/internal/stats"
	"vihot/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "spans":
		spans(os.Args[2:])
	case "journal":
		journalCmd(os.Args[2:])
	case "cluster":
		clusterCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vihot-trace record|info|replay|spans|journal|cluster [flags] [file]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vihot-trace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "drive.vht", "output trace file")
	duration := fs.Float64("duration", 30, "drive seconds")
	steering := fs.Bool("steering", false, "include steering events")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	env, err := experiment.NewEnv(cabin.DefaultConfig(), *seed)
	if err != nil {
		fatal(err)
	}
	sc := driver.DrivingScenario(env.RNG.Fork(), driver.DriverA(), *duration, driver.GlanceOptions{
		Steering:       *steering,
		PositionJitter: 0.008,
	})
	rec := trace.NewRecorder(trace.Meta{
		Name:    "simulated-drive",
		Seed:    *seed,
		Comment: fmt.Sprintf("%.0fs drive, steering=%v", *duration, *steering),
	})

	phone := imu.NewPhoneIMU(env.RNG.Fork())
	nextIMU, nextTruth := 0.0, 0.0
	for _, t := range env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration) {
		for nextIMU <= t {
			rec.IMU(phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS))
			nextIMU += 0.01
		}
		for nextTruth <= t {
			rec.Truth(nextTruth, sc.HeadYaw.At(nextTruth))
			nextTruth += 1.0 / 60
		}
		phi, err := env.PhaseAt(sc.State(t))
		if err != nil {
			fatal(err)
		}
		rec.Phase(t, phi)
	}
	tr := rec.Finish()
	if err := trace.Save(*out, tr); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %s: %.0f s, %v\n", *out, tr.Meta.Duration, tr.Counts())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr, err := trace.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("name:     %s\n", tr.Meta.Name)
	fmt.Printf("comment:  %s\n", tr.Meta.Comment)
	fmt.Printf("seed:     %d\n", tr.Meta.Seed)
	fmt.Printf("duration: %.1f s\n", tr.Meta.Duration)
	fmt.Printf("events:   %v\n", tr.Counts())
	ps := tr.PhaseSeries()
	if len(ps) > 1 {
		fmt.Printf("CSI rate: %.0f Hz, max gap %.1f ms\n", ps.MeanRate(), ps.MaxGap()*1000)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	profileSeed := fs.Int64("profile-seed", 1, "seed for the profiling pass used to track the trace")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr, err := trace.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}

	// Profile in the same simulated cabin, then track the trace
	// offline through the full pipeline.
	env, err := experiment.NewEnv(cabin.DefaultConfig(), *profileSeed)
	if err != nil {
		fatal(err)
	}
	profile, _, err := env.CollectProfile(driver.DriverA(), experiment.DefaultProfileOptions())
	if err != nil {
		fatal(err)
	}
	pl, err := vihot.NewPipeline(profile, vihot.DefaultPipelineConfig())
	if err != nil {
		fatal(err)
	}

	truth := tr.TruthSeries()
	var errs []float64
	tr.Replay(
		func(t, phi float64) {
			if est, ok := pl.PushCSI(t, phi); ok {
				if want, err := truth.At(est.Time); err == nil {
					errs = append(errs, geom.AngleDistDeg(est.Yaw, want))
				}
			}
		},
		func(r imu.Reading) { pl.PushIMU(r) },
		nil,
	)
	s := stats.Summarize(errs)
	fmt.Printf("replayed %d estimates: median %.1f°, mean %.1f°, p90 %.1f°, max %.1f°\n",
		s.N, s.Median, s.Mean, s.P90, s.Max)
}

// spanStageOrder lists the known stages in pipeline order, so the
// summary reads top-to-bottom the way an item flows. Unknown stages
// (future instrumentation) follow in first-seen order.
var spanStageOrder = []string{"dwell", "sanitize", "match", "track", "fuse"}

func spans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	only := fs.String("stage", "", "restrict the summary to one stage name")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	d, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	byStage := map[string][]float64{} // stage -> durations in ms
	sessions := map[string]bool{}
	order := append([]string(nil), spanStageOrder...)
	for _, sp := range d.Spans {
		if *only != "" && sp.Stage != *only {
			continue
		}
		if _, seen := byStage[sp.Stage]; !seen {
			known := false
			for _, s := range order {
				if s == sp.Stage {
					known = true
					break
				}
			}
			if !known {
				order = append(order, sp.Stage)
			}
		}
		byStage[sp.Stage] = append(byStage[sp.Stage], float64(sp.DurNS)*1e-6)
		if sp.Session != "" {
			sessions[sp.Session] = true
		}
	}

	fmt.Printf("%d spans held (%d recorded, %d overwritten), %d sessions\n\n",
		len(d.Spans), d.Recorded, d.Overwritten, len(sessions))
	fmt.Printf("%-10s %8s %9s %9s %9s %9s %9s\n",
		"stage", "count", "mean-ms", "p50-ms", "p90-ms", "p99-ms", "max-ms")
	for _, stage := range order {
		ds := byStage[stage]
		if len(ds) == 0 {
			continue
		}
		s := stats.Summarize(ds)
		p99, _ := stats.Percentile(ds, 99)
		fmt.Printf("%-10s %8d %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			stage, s.N, s.Mean, s.Median, s.P90, p99, s.Max)
	}
}
