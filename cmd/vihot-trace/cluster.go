package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vihot/internal/journal"
)

// clusterCmd inspects a cluster coordinator's handoff journal (the
// file vihot-cluster -journal writes): one KindExport record per
// session transfer, drain and failover alike. It prints the transfer
// log in order — which session moved, between which members, at what
// stream time, and with what snapshot — plus the summary a recovery
// would reconstruct.
//
// Export records carry member identities as indices into the
// cluster's sorted static membership; pass the same membership via
// -nodes to print names instead.
func clusterCmd(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodeList := fs.String("nodes", "", "comma-separated sorted membership, to name the node indices")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var nodes []string
	if *nodeList != "" {
		nodes = strings.Split(*nodeList, ",")
	}
	if err := writeClusterReport(os.Stdout, path, blob, nodes); err != nil {
		fatal(err)
	}
}

// clusterNodeName renders one membership index.
func clusterNodeName(idx uint8, nodes []string) string {
	if int(idx) < len(nodes) {
		return nodes[idx]
	}
	return fmt.Sprintf("#%d", idx)
}

// writeClusterReport renders a handoff journal. Factored off the
// subcommand so the fixture round-trip test exercises the same
// rendering the CLI ships.
func writeClusterReport(w io.Writer, path string, blob []byte, nodes []string) error {
	res, err := journal.Recover(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return err
	}
	drains, failovers, other := 0, 0, 0
	r := journal.NewReader(bytes.NewReader(blob[:res.Diag.ValidBytes]))
	var transfers []journal.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rec.Kind != journal.KindExport {
			other++
			continue
		}
		transfers = append(transfers, rec)
		if rec.Flags&journal.ExportFailover != 0 {
			failovers++
		} else {
			drains++
		}
	}

	fmt.Fprintf(w, "journal:   %s\n", path)
	fmt.Fprintf(w, "transfers: %d  drain=%d failover=%d", len(transfers), drains, failovers)
	if other > 0 {
		fmt.Fprintf(w, "  (+%d non-export records)", other)
	}
	fmt.Fprintln(w)
	if res.HasSpan {
		fmt.Fprintf(w, "span:      %.3f .. %.3f s stream time\n", res.FirstT, res.LastT)
	}
	shutdown := "unclean (no trailing shutdown record)"
	if res.CleanShutdown {
		shutdown = "clean"
	}
	fmt.Fprintf(w, "shutdown:  %s\n", shutdown)
	fmt.Fprintf(w, "tail:      %d valid bytes", res.Diag.ValidBytes)
	if res.Diag.Truncated {
		fmt.Fprintf(w, ", torn — %d trailing bytes undecodable", res.Diag.TailBytes)
	}
	fmt.Fprintln(w)

	if len(transfers) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\n%-22s %-8s %-20s %9s %9s %9s\n",
		"session", "kind", "route", "clock-s", "last-yaw", "est-t-s")
	for _, rec := range transfers {
		kind := "drain"
		if rec.Flags&journal.ExportFailover != 0 {
			kind = "failover"
		}
		route := clusterNodeName(rec.From, nodes) + " -> " + clusterNodeName(rec.To, nodes)
		clock := "-"
		if rec.Flags&journal.ExportHasClock != 0 {
			clock = fmt.Sprintf("%.3f", rec.T)
		}
		yaw, estT := "-", "-"
		if rec.Flags&journal.ExportHasEstimate != 0 {
			yaw = fmt.Sprintf("%.1f°", rec.Yaw)
			estT = fmt.Sprintf("%.3f", rec.EstT)
		}
		fmt.Fprintf(w, "%-22s %-8s %-20s %9s %9s %9s\n",
			rec.Session, kind, route, clock, yaw, estT)
	}
	return nil
}
