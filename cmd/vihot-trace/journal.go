package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vihot/internal/journal"
	"vihot/internal/serve"
)

// journalCmd inspects a durable journal written by vihot-serve
// -journal (or any internal/journal writer): it replays the file
// through the recovery path and prints what a restart would
// reconstruct — record counts by kind, the stream-time span, the
// terminal per-session state, and the tail diagnostics for a file
// that was torn by a crash. With -repair a torn tail is truncated
// back to the last valid record, exactly what vihot-serve does
// before appending on start.
func journalCmd(args []string) {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	repair := fs.Bool("repair", false, "truncate a torn tail back to the last valid record")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	var (
		res *journal.RecoverResult
		err error
	)
	if *repair {
		res, err = journal.RepairFile(path)
	} else {
		res, err = journal.RecoverFile(path)
	}
	if err != nil {
		fatal(err)
	}
	writeJournalReport(os.Stdout, path, res)
	if *repair && res.Diag.Truncated {
		fmt.Printf("\nrepaired: truncated to %d bytes\n", res.Diag.ValidBytes)
	}
}

// journalKindOrder lists the record kinds in the order the report
// prints them — the order a session experiences them.
var journalKindOrder = []journal.Kind{
	journal.KindEstimate, journal.KindHealth, journal.KindReap,
	journal.KindClose, journal.KindShutdown,
}

// writeJournalReport renders one recovery result. Factored off the
// subcommand so the fixture round-trip test exercises the same
// rendering the CLI ships.
func writeJournalReport(w io.Writer, path string, res *journal.RecoverResult) {
	fmt.Fprintf(w, "journal:  %s\n", path)
	fmt.Fprintf(w, "records:  %d", res.Records)
	for _, k := range journalKindOrder {
		if n := res.Counts[k]; n > 0 {
			fmt.Fprintf(w, "  %s=%d", k, n)
		}
	}
	fmt.Fprintln(w)
	if res.HasSpan {
		fmt.Fprintf(w, "span:     %.3f .. %.3f s stream time\n", res.FirstT, res.LastT)
	}
	shutdown := "unclean (no trailing shutdown record)"
	if res.CleanShutdown {
		shutdown = "clean"
	}
	fmt.Fprintf(w, "shutdown: %s\n", shutdown)
	fmt.Fprintf(w, "tail:     %d valid bytes", res.Diag.ValidBytes)
	if res.Diag.Truncated {
		fmt.Fprintf(w, ", torn — %d trailing bytes undecodable", res.Diag.TailBytes)
	}
	fmt.Fprintln(w)

	if len(res.Sessions) == 0 {
		return
	}
	ids := make([]string, 0, len(res.Sessions))
	for id := range res.Sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "\n%-22s %8s %18s %9s %9s %9s  %s\n",
		"session", "records", "span-s", "last-yaw", "last-pos", "health", "state")
	for _, id := range ids {
		s := res.Sessions[id]
		yaw, pos := "-", "-"
		if s.HasEstimate {
			yaw = fmt.Sprintf("%.1f°", s.Estimate.Yaw)
			pos = fmt.Sprintf("%d", s.Estimate.Position)
		}
		state := "live"
		switch {
		case s.Reaped:
			state = "reaped"
		case s.Closed:
			state = "closed"
		}
		fmt.Fprintf(w, "%-22s %8d %8.3f..%-8.3f %9s %9s %9s  %s\n",
			id, s.Records, s.FirstT, s.LastT, yaw, pos,
			serve.Health(s.Health).String(), state)
	}
}
