package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strings"
	"testing"

	"vihot/internal/journal"
)

var update = flag.Bool("update", false, "rewrite the committed testdata fixtures")

// fixtureRecords is the committed journal fixture's content: two
// sessions exercising every record kind — estimates at different
// healths, a degradation, a reap, an explicit close, and the clean
// shutdown trailer.
func fixtureRecords() []journal.Record {
	return []journal.Record{
		{Kind: journal.KindEstimate, Session: "car-1", T: 0.10,
			Yaw: 12.5, Position: 2, Source: 1, MatchDist: 0.033},
		{Kind: journal.KindEstimate, Session: "car-2", T: 0.50,
			Yaw: 3.25, Source: 1, MatchDist: 0.020},
		{Kind: journal.KindHealth, Session: "car-1", T: 1.40, From: 0, To: 1},
		{Kind: journal.KindEstimate, Session: "car-1", T: 1.45,
			Yaw: -8, Position: 1, Source: 2, MatchDist: 0.051, Health: 1},
		{Kind: journal.KindReap, Session: "car-2", T: 9.00},
		{Kind: journal.KindClose, Session: "car-1", T: 9.50, Health: 1},
		{Kind: journal.KindShutdown, T: 9.50},
	}
}

// TestJournalFixtureRoundTrip pins the on-disk journal format against
// the committed fixture: the fixture's records must encode to exactly
// the committed bytes (so a codec change that would silently orphan
// existing journals fails here), the committed bytes must decode back
// to the same records, and the subcommand's report of the file must
// describe the state those records construct.
func TestJournalFixtureRoundTrip(t *testing.T) {
	const path = "testdata/sample.vhj"
	var want []byte
	for i := range fixtureRecords() {
		rec := fixtureRecords()[i]
		var err error
		if want, err = journal.AppendRecord(want, &rec); err != nil {
			t.Fatal(err)
		}
	}
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed fixture is %d bytes, re-encoding its records gives %d — journal format drifted (rerun with -update only if the format change is intentional and release-noted)",
			len(got), len(want))
	}

	// Decode side of the round trip: the committed bytes read back as
	// the exact record sequence they were built from.
	r := journal.NewReader(bytes.NewReader(got))
	for i, wantRec := range fixtureRecords() {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != wantRec {
			t.Fatalf("record %d decoded as %+v, want %+v", i, rec, wantRec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after %d records: %v, want EOF", len(fixtureRecords()), err)
	}

	// Recovery semantics of the fixture state.
	res, err := journal.Recover(bytes.NewReader(got), int64(len(got)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanShutdown || res.Diag.Truncated {
		t.Fatalf("fixture should recover clean: %+v", res.Diag)
	}
	c1 := res.Sessions["car-1"]
	if c1 == nil || !c1.Closed || c1.Reaped || c1.Health != 1 ||
		!c1.HasEstimate || c1.Estimate.Yaw != -8 {
		t.Fatalf("car-1 = %+v", c1)
	}
	c2 := res.Sessions["car-2"]
	if c2 == nil || !c2.Reaped {
		t.Fatalf("car-2 = %+v", c2)
	}

	// The report the CLI renders for this file.
	var out strings.Builder
	writeJournalReport(&out, path, res)
	report := out.String()
	for _, frag := range []string{
		"records:  7", "estimate=3", "health=1", "reap=1", "close=1", "shutdown=1",
		"shutdown: clean", "car-1", "car-2", "closed", "reaped", "degraded",
	} {
		if !strings.Contains(report, frag) {
			t.Errorf("report missing %q:\n%s", frag, report)
		}
	}
}
