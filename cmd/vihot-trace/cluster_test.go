package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"vihot/internal/journal"
)

// fixtureClusterRecords is the committed handoff-journal fixture: a
// coordinator's log of one maintenance drain (two sessions, full
// snapshots from the source node) followed by one failover (snapshot
// from the router's estimate cache, one session that had no estimate
// yet), and the clean shutdown trailer.
func fixtureClusterRecords() []journal.Record {
	return []journal.Record{
		{Kind: journal.KindExport, Session: "baseline-0", T: 4.05,
			Yaw: 12.5, Position: 2, Source: 1, MatchDist: 0.033, Health: 0,
			From: 1, To: 3, EstT: 4.01,
			Flags: journal.ExportHasEstimate | journal.ExportHasClock},
		{Kind: journal.KindExport, Session: "carfi-rider-3", T: 4.05,
			Yaw: -8.25, Position: 1, Source: 1, MatchDist: 0.051, Health: 1,
			From: 1, To: 0, EstT: 3.98,
			Flags: journal.ExportHasEstimate | journal.ExportHasClock},
		{Kind: journal.KindExport, Session: "carfi-rider-3", T: 8.0,
			Yaw: -2.5, Position: 1, Source: 1, MatchDist: 0.040, Health: 0,
			From: 0, To: 2, EstT: 8.0,
			Flags: journal.ExportHasEstimate | journal.ExportHasClock | journal.ExportFailover},
		{Kind: journal.KindExport, Session: "baseline-4", T: 0,
			From: 0, To: 2,
			Flags: journal.ExportFailover},
		{Kind: journal.KindShutdown, T: 8.0},
	}
}

// TestClusterFixtureRoundTrip pins the handoff-journal format against
// the committed fixture, exactly as TestJournalFixtureRoundTrip pins
// the serve journal: the fixture's records must encode to the
// committed bytes, the committed bytes must decode back verbatim, and
// the subcommand's report must describe the transfers they log.
func TestClusterFixtureRoundTrip(t *testing.T) {
	const path = "testdata/cluster.vhj"
	var want []byte
	for i := range fixtureClusterRecords() {
		rec := fixtureClusterRecords()[i]
		var err error
		if want, err = journal.AppendRecord(want, &rec); err != nil {
			t.Fatal(err)
		}
	}
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed fixture is %d bytes, re-encoding its records gives %d — journal format drifted (rerun with -update only if the format change is intentional and release-noted)",
			len(got), len(want))
	}

	r := journal.NewReader(bytes.NewReader(got))
	for i, wantRec := range fixtureClusterRecords() {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != wantRec {
			t.Fatalf("record %d decoded as %+v, want %+v", i, rec, wantRec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after %d records: %v, want EOF", len(fixtureClusterRecords()), err)
	}

	// Recovery semantics: both failed-over sessions end handed off with
	// the failover flag; the first drain is superseded for carfi-rider-3
	// but baseline-0's drain stands.
	res, err := journal.Recover(bytes.NewReader(got), int64(len(got)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanShutdown || res.Diag.Truncated {
		t.Fatalf("fixture should recover clean: %+v", res.Diag)
	}
	b0 := res.Sessions["baseline-0"]
	if b0 == nil || !b0.HandedOff || b0.Export.Flags&journal.ExportFailover != 0 {
		t.Fatalf("baseline-0 = %+v", b0)
	}
	c3 := res.Sessions["carfi-rider-3"]
	if c3 == nil || !c3.HandedOff || c3.Export.Flags&journal.ExportFailover == 0 || c3.Export.To != 2 {
		t.Fatalf("carfi-rider-3 = %+v", c3)
	}

	// The report the CLI renders, with and without the membership names.
	var out strings.Builder
	if err := writeClusterReport(&out, path, got, []string{"car-east", "car-north", "car-south", "car-west"}); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, frag := range []string{
		"transfers: 4  drain=2 failover=2", "(+1 non-export records)",
		"shutdown:  clean",
		"baseline-0", "car-north -> car-west", "12.5°",
		"carfi-rider-3", "car-east -> car-south",
		"baseline-4",
	} {
		if !strings.Contains(report, frag) {
			t.Errorf("report missing %q:\n%s", frag, report)
		}
	}
	// baseline-4 carried no snapshot: clock, yaw, and est-t all render
	// as "-".
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "baseline-4") && strings.Count(line, "-") < 3 {
			t.Errorf("baseline-4 should render an empty snapshot: %q", line)
		}
	}

	out.Reset()
	if err := writeClusterReport(&out, path, got, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#1 -> #3") {
		t.Errorf("unnamed membership should render indices:\n%s", out.String())
	}
}
