package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/cluster"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/dsp"
	"vihot/internal/experiment"
	"vihot/internal/serve"
	"vihot/internal/stats"
)

// clusterBaseline is the JSON schema of -clusterjson: serving
// throughput direct (one in-process manager, no wire), through a
// 1-node cluster (identical work plus the full routing + codec path —
// the isolated routing overhead, budgeted ≤15% in DESIGN.md §14), and
// through a 4-node cluster; plus drain-handoff latency percentiles
// measured over a loaded member.
type clusterBaseline struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Seed       int64              `json:"seed"`
	FramesPer  int                `json:"frames_per_session"`
	Sessions   int                `json:"sessions"`
	Shards     int                `json:"shards"`
	Repeats    int                `json:"repeats"`
	Results    []clusterBenchCell `json:"results"`
	Handoff    handoffBench       `json:"handoff"`
}

type clusterBenchCell struct {
	Mode        string  `json:"mode"`  // direct | cluster-1 | cluster-4
	Nodes       int     `json:"nodes"` // 0 for direct
	Frames      int     `json:"frames"`
	Seconds     float64 `json:"seconds"`
	FramesPerS  float64 `json:"frames_per_s"`
	Estimates   uint64  `json:"estimates"`
	OverheadPct float64 `json:"overhead_pct"` // vs the direct row; 0 for direct
}

// handoffBench is the drain-latency distribution: per-session
// export→restore wall time on a loaded 4-node cluster.
type handoffBench struct {
	Sessions  int     `json:"sessions"`
	Drained   int     `json:"drained"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	MaxMicros float64 `json:"max_us"`
}

// runClusterBench measures the distributed tier against the
// single-process baseline on a fixed phase workload.
func runClusterBench(path string, seed int64) error {
	start := time.Now()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 5
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 10, 115)
	phases, err := env.PhaseSeries(sc)
	if err != nil {
		return err
	}
	if len(phases) > 1000 {
		phases = phases[:1000]
	}

	const (
		shards   = 4
		sessions = 16
		repeats  = 3
	)
	base := clusterBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		FramesPer:  len(phases),
		Sessions:   sessions,
		Shards:     shards,
		Repeats:    repeats,
	}
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%03d", i)
	}
	// Queues sized to hold the entire run: this bench measures the
	// routing and codec cost, not the shed policy.
	queue := len(phases)*sessions + 1024
	frames := len(phases) * sessions

	// replay pushes the whole phase workload through any PushBatch
	// sink, one batch per timestep spanning every session, and returns
	// the wall seconds of the timed window (push + flush, so queued
	// work is paid for inside the window).
	replay := func(push func([]serve.Item), flush func()) float64 {
		t0 := time.Now()
		batch := make([]serve.Item, 0, sessions)
		for _, s := range phases {
			batch = batch[:0]
			for _, id := range ids {
				batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
			}
			push(batch)
		}
		flush()
		return time.Since(t0).Seconds()
	}

	directPass := func() (clusterBenchCell, error) {
		mgr := serve.New(serve.Config{Shards: shards, QueueLen: queue})
		defer mgr.Close()
		for _, id := range ids {
			if err := mgr.Open(id, profile, core.DefaultPipelineConfig()); err != nil {
				return clusterBenchCell{}, err
			}
		}
		dt := replay(mgr.PushBatch, mgr.Flush)
		snap := mgr.Counters().Snapshot()
		if snap.Processed != uint64(frames) {
			return clusterBenchCell{}, fmt.Errorf("direct processed %d of %d items", snap.Processed, frames)
		}
		return clusterBenchCell{
			Mode: "direct", Frames: frames, Seconds: dt,
			FramesPerS: float64(frames) / dt, Estimates: snap.Estimates,
		}, nil
	}

	clusterPass := func(n int) (clusterBenchCell, error) {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		c, err := cluster.New(cluster.Config{
			Nodes: nodes,
			Serve: serve.Config{Shards: shards, QueueLen: queue},
		})
		if err != nil {
			return clusterBenchCell{}, err
		}
		defer c.Close()
		for _, id := range ids {
			if err := c.Open(id, "bench-cab", profile); err != nil {
				return clusterBenchCell{}, err
			}
		}
		dt := replay(c.PushBatch, c.Flush)
		st := c.Stats()
		if st.Delivered != uint64(frames) {
			return clusterBenchCell{}, fmt.Errorf("cluster-%d delivered %d of %d items", n, st.Delivered, frames)
		}
		// Estimates are summed from the member managers so the column is
		// comparable with the direct row (cluster.Stats counts only the
		// throttled backflow samples).
		var estimates uint64
		for _, name := range nodes {
			estimates += c.Node(name).Manager().Counters().Snapshot().Estimates
		}
		return clusterBenchCell{
			Mode: fmt.Sprintf("cluster-%d", n), Nodes: n, Frames: frames, Seconds: dt,
			FramesPerS: float64(frames) / dt, Estimates: estimates,
		}, nil
	}

	var directRate float64
	for _, mode := range []string{"direct", "cluster-1", "cluster-4"} {
		var best clusterBenchCell
		for r := 0; r < repeats; r++ {
			var cell clusterBenchCell
			var err error
			switch mode {
			case "direct":
				cell, err = directPass()
			case "cluster-1":
				cell, err = clusterPass(1)
			default:
				cell, err = clusterPass(4)
			}
			if err != nil {
				return err
			}
			if cell.FramesPerS > best.FramesPerS {
				best = cell
			}
		}
		if mode == "direct" {
			directRate = best.FramesPerS
		} else if directRate > 0 {
			best.OverheadPct = 100 * (directRate - best.FramesPerS) / directRate
		}
		base.Results = append(base.Results, best)
		fmt.Printf("%-10s %9.0f frames/s  (overhead %+.1f%%, %d estimates)\n",
			best.Mode, best.FramesPerS, best.OverheadPct, best.Estimates)
	}

	hb, err := runHandoffBench(profile, phases, shards)
	if err != nil {
		return err
	}
	base.Handoff = hb
	fmt.Printf("handoff    p50 %.0f µs  p95 %.0f µs  max %.0f µs  (%d of %d sessions drained)\n",
		hb.P50Micros, hb.P95Micros, hb.MaxMicros, hb.Drained, hb.Sessions)

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}

// runHandoffBench loads a 4-node cluster with sessions mid-stream and
// drains the busiest member, timing each session's export→restore
// transfer (flush + quiesce + journal encode + wire + restore).
func runHandoffBench(profile *core.Profile, phases dsp.Series, shards int) (handoffBench, error) {
	const sessions = 64
	warm := phases
	if len(warm) > 200 {
		warm = warm[:200]
	}
	queue := len(warm)*sessions + 1024
	c, err := cluster.New(cluster.Config{
		Nodes:          []string{"h0", "h1", "h2", "h3"},
		Serve:          serve.Config{Shards: shards, QueueLen: queue},
		MeasureHandoff: true,
	})
	if err != nil {
		return handoffBench{}, err
	}
	defer c.Close()

	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("drv-%03d", i)
		if err := c.Open(ids[i], "bench-cab", profile); err != nil {
			return handoffBench{}, err
		}
	}
	// Warm every session mid-stream so the drain moves live pipeline
	// state, not empty shells.
	batch := make([]serve.Item, 0, sessions)
	for _, s := range warm {
		batch = batch[:0]
		for _, id := range ids {
			batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
		}
		c.PushBatch(batch)
	}
	c.Flush()

	// Drain whichever member owns the most sessions.
	load := map[string]int{}
	for _, id := range ids {
		owner, _ := c.Owner(id)
		load[owner]++
	}
	target, best := "", 0
	for n, k := range load {
		if k > best || (k == best && n < target) {
			target, best = n, k
		}
	}
	events, err := c.DrainNode(target)
	if err != nil {
		return handoffBench{}, err
	}
	if len(events) == 0 {
		return handoffBench{}, fmt.Errorf("drained %s but moved no sessions", target)
	}
	durs := make([]float64, 0, len(events))
	for _, ev := range events {
		durs = append(durs, float64(ev.DurNS)/1e3)
	}
	p50, err := stats.Percentile(durs, 50)
	if err != nil {
		return handoffBench{}, err
	}
	p95, err := stats.Percentile(durs, 95)
	if err != nil {
		return handoffBench{}, err
	}
	max := durs[0]
	for _, d := range durs[1:] {
		if d > max {
			max = d
		}
	}
	return handoffBench{
		Sessions:  sessions,
		Drained:   len(events),
		P50Micros: p50,
		P95Micros: p95,
		MaxMicros: max,
	}, nil
}
