// Command vihot-bench regenerates every table and figure of the
// paper's evaluation section (Sec. 5) against the simulated substrate
// and prints paper-vs-measured summaries.
//
// Usage:
//
//	vihot-bench [-quick] [-seed N] [-only figID] [-runtime S]
//
// The full run uses the paper's experiment scale (10×8 s profiling,
// 60 s test runs per condition) and takes several minutes; -quick
// scales everything down ≈4× for a fast sanity pass.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vihot/internal/experiment"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down experiments (~4x faster)")
	seed := flag.Int64("seed", 1, "deterministic experiment seed")
	only := flag.String("only", "", "comma-separated figure IDs to run (e.g. fig10,fig12)")
	runtime := flag.Float64("runtime", 0, "override run-time seconds per condition")
	repeats := flag.Int("repeats", 0, "sessions pooled per accuracy condition (default: 3 full, 1 quick)")
	ext := flag.Bool("ext", false, "also run the Sec. 7 extension experiments")
	csvDir := flag.String("csv", "", "also write each figure's series to <dir>/<figID>.csv")
	list := flag.Bool("list", false, "list figure IDs and exit")
	estimate := flag.Float64("estimate", 0, "tracker estimate cadence in seconds (0 = config default)")
	flag.Parse()

	if *list {
		for _, g := range experiment.Generators() {
			fmt.Println(g.ID)
		}
		for _, g := range experiment.ExtensionGenerators() {
			fmt.Println(g.ID, "(requires -ext)")
		}
		return
	}

	opt := experiment.DefaultOptions()
	if *quick {
		opt = experiment.Quick()
	}
	opt.Seed = *seed
	if *runtime > 0 {
		opt.RuntimeS = *runtime
	}
	if *repeats > 0 {
		opt.Repeats = *repeats
	} else if !*quick {
		opt.Repeats = 3
	}
	if *estimate > 0 {
		opt.EstimateEveryS = *estimate
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	fmt.Printf("ViHOT evaluation reproduction (seed %d, %s mode)\n\n",
		*seed, map[bool]string{true: "quick", false: "full"}[*quick])

	start := time.Now()
	gens := experiment.Generators()
	if *ext {
		gens = append(gens, experiment.ExtensionGenerators()...)
	}
	for _, g := range gens {
		if len(want) > 0 && !want[g.ID] {
			continue
		}
		r, err := g.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.ID, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", g.ID, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("done in %.0f s\n", time.Since(start).Seconds())
}

// writeCSV dumps a figure's series as rows of (series, x, y) for
// external plotting.
func writeCSV(dir string, r *experiment.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
