// Command vihot-bench regenerates every table and figure of the
// paper's evaluation section (Sec. 5) against the simulated substrate
// and prints paper-vs-measured summaries.
//
// Usage:
//
//	vihot-bench [-quick] [-seed N] [-only figID] [-runtime S]
//
// The full run uses the paper's experiment scale (10×8 s profiling,
// 60 s test runs per condition) and takes several minutes; -quick
// scales everything down ≈4× for a fast sanity pass.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/serve"
	"vihot/internal/wifi"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down experiments (~4x faster)")
	seed := flag.Int64("seed", 1, "deterministic experiment seed")
	only := flag.String("only", "", "comma-separated figure IDs to run (e.g. fig10,fig12)")
	runtime := flag.Float64("runtime", 0, "override run-time seconds per condition")
	repeats := flag.Int("repeats", 0, "sessions pooled per accuracy condition (default: 3 full, 1 quick)")
	ext := flag.Bool("ext", false, "also run the Sec. 7 extension experiments")
	csvDir := flag.String("csv", "", "also write each figure's series to <dir>/<figID>.csv")
	list := flag.Bool("list", false, "list figure IDs and exit")
	estimate := flag.Float64("estimate", 0, "tracker estimate cadence in seconds (0 = config default)")
	serveJSON := flag.String("servejson", "", "run the session-manager scaling matrix and write a JSON baseline to this path (skips the figure benches)")
	obsJSON := flag.String("obsjson", "", "run the observability overhead benchmark (serve throughput with obs off vs on) and write JSON to this path (skips the figure benches)")
	journalJSON := flag.String("journaljson", "", "run the durable-journal overhead benchmark (serve throughput with journaling off vs group-commit vs fsync-per-record) and write JSON to this path (skips the figure benches)")
	clusterJSON := flag.String("clusterjson", "", "run the cluster routing benchmark (direct vs 1-node vs 4-node throughput, drain-handoff latency) and write JSON to this path (skips the figure benches)")
	profileJSON := flag.String("profilejson", "", "run the profile-store benchmark (cold load, hot hit, 64-way contention, policy churn grid) and write JSON to this path (skips the figure benches)")
	profilePolicy := flag.String("profile-policy", "all", "churn-grid eviction policies for -profilejson: \"all\" or a comma list of lru,lfu,2q")
	profileAdmission := flag.String("profile-admission", "both", "churn-grid doorkeeper axis for -profilejson: both, on, or off")
	scenarios := flag.String("scenarios", "", "replay a weighted scenario mix through the session manager: \"all\" or \"name:weight,...\" (skips the figure benches)")
	scenarioSessions := flag.Int("scenario-sessions", 8, "total session count for -scenarios, apportioned across the mix by weight")
	scenarioSeconds := flag.Float64("scenario-seconds", 0, "override every -scenarios scenario's duration (0 = corpus defaults)")
	scenarioDet := flag.Bool("scenario-det", false, "run -scenarios in deterministic mode (bit-identical reports, single-threaded replay)")
	scenarioMetrics := flag.String("scenario-metrics", "", "write the -scenarios run's Prometheus exposition (vihot_scenario_* and vihot_serve_*) to this path")
	scenarioJSON := flag.String("scenario-json", "", "write the -scenarios run's report JSON to this path")
	flag.Parse()

	if *scenarios != "" {
		err := runScenarioBench(*scenarios, *scenarioSessions, *scenarioSeconds, *scenarioDet, *scenarioMetrics, *scenarioJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *profileJSON != "" {
		if err := runProfileBench(*profileJSON, *seed, *profilePolicy, *profileAdmission); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveJSON != "" {
		if err := runServeBench(*serveJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *obsJSON != "" {
		if err := runObsBench(*obsJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *journalJSON != "" {
		if err := runJournalBench(*journalJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *clusterJSON != "" {
		if err := runClusterBench(*clusterJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, g := range experiment.Generators() {
			fmt.Println(g.ID)
		}
		for _, g := range experiment.ExtensionGenerators() {
			fmt.Println(g.ID, "(requires -ext)")
		}
		return
	}

	opt := experiment.DefaultOptions()
	if *quick {
		opt = experiment.Quick()
	}
	opt.Seed = *seed
	if *runtime > 0 {
		opt.RuntimeS = *runtime
	}
	if *repeats > 0 {
		opt.Repeats = *repeats
	} else if !*quick {
		opt.Repeats = 3
	}
	if *estimate > 0 {
		opt.EstimateEveryS = *estimate
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	fmt.Printf("ViHOT evaluation reproduction (seed %d, %s mode)\n\n",
		*seed, map[bool]string{true: "quick", false: "full"}[*quick])

	start := time.Now()
	gens := experiment.Generators()
	if *ext {
		gens = append(gens, experiment.ExtensionGenerators()...)
	}
	for _, g := range gens {
		if len(want) > 0 && !want[g.ID] {
			continue
		}
		r, err := g.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.ID, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", g.ID, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("done in %.0f s\n", time.Since(start).Seconds())
}

// serveBaseline is the JSON schema of -servejson: one throughput
// record per (shards, sessions) cell so later PRs can diff the perf
// trajectory of the serving engine.
type serveBaseline struct {
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	NumCPU       int                 `json:"num_cpu"`
	Seed         int64               `json:"seed"`
	FramesPer    int                 `json:"frames_per_session"`
	Note         string              `json:"note,omitempty"`
	Results      []serveBenchCell    `json:"results"`
	Multicore    []multicoreCell     `json:"multicore,omitempty"`
	PooledIngest *pooledIngestResult `json:"pooled_ingest,omitempty"`
}

// pooledIngestResult compares the wire→pipeline ingest path with heap
// frame decoding (wifi.Decode, frame dropped to GC after processing)
// against pooled decoding (wifi.DecodePooled + Config.RecycleFrames):
// end-to-end allocations and bytes per CSI datagram.
type pooledIngestResult struct {
	Frames              int     `json:"frames"`
	HeapAllocsPerFrame  float64 `json:"heap_allocs_per_frame"`
	PoolAllocsPerFrame  float64 `json:"pooled_allocs_per_frame"`
	HeapBytesPerFrame   float64 `json:"heap_bytes_per_frame"`
	PoolBytesPerFrame   float64 `json:"pooled_bytes_per_frame"`
	AllocsSavedPerFrame float64 `json:"allocs_saved_per_frame"`
}

type serveBenchCell struct {
	Shards     int     `json:"shards"`
	Sessions   int     `json:"sessions"`
	Frames     int     `json:"frames"`
	Seconds    float64 `json:"seconds"`
	FramesPerS float64 `json:"frames_per_s"`
	Estimates  uint64  `json:"estimates"`
	Dropped    uint64  `json:"dropped"`
}

// runServeBench drives the session-manager scaling matrix (the
// BenchmarkSessionManager grid) outside the testing harness and
// records the baseline JSON for the perf trajectory.
func runServeBench(path string, seed int64) error {
	start := time.Now()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 5
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 10, 115)
	phases, err := env.PhaseSeries(sc)
	if err != nil {
		return err
	}
	if len(phases) > 1000 {
		phases = phases[:1000]
	}

	base := serveBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		FramesPer:  len(phases),
	}
	if base.NumCPU <= 1 {
		base.Note = "single-CPU host: shard scaling cannot improve wall clock here; frames/s is a per-core throughput baseline, and the multicore grid's GOMAXPROCS axis records scheduler pressure, not parallelism"
	}
	for _, shards := range []int{1, 4, 16} {
		for _, sessions := range []int{1, 16, 128} {
			frames := len(phases) * sessions
			mgr := serve.New(serve.Config{Shards: shards, QueueLen: frames + 1024})
			ids := make([]string, sessions)
			for i := range ids {
				ids[i] = fmt.Sprintf("s%03d", i)
				if err := mgr.Open(ids[i], profile, core.DefaultPipelineConfig()); err != nil {
					return err
				}
			}
			t0 := time.Now()
			batch := make([]serve.Item, 0, sessions)
			for _, s := range phases {
				batch = batch[:0]
				for _, id := range ids {
					batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
				}
				mgr.PushBatch(batch)
			}
			mgr.Flush()
			dt := time.Since(t0).Seconds()
			snap := mgr.Counters().Snapshot()
			mgr.Close()
			cell := serveBenchCell{
				Shards: shards, Sessions: sessions, Frames: frames,
				Seconds: dt, FramesPerS: float64(frames) / dt,
				Estimates: snap.Estimates, Dropped: snap.DroppedStale,
			}
			base.Results = append(base.Results, cell)
			fmt.Printf("shards=%-3d sessions=%-4d  %8.0f frames/s  (%d estimates, %d dropped)\n",
				shards, sessions, cell.FramesPerS, cell.Estimates, cell.Dropped)
		}
	}
	mc, err := runMulticoreGrid(profile, phases)
	if err != nil {
		return err
	}
	base.Multicore = mc
	pi, err := runPooledIngest(env, profile)
	if err != nil {
		return err
	}
	base.PooledIngest = pi
	fmt.Printf("pooled ingest: %.1f allocs/frame (heap %.1f, saved %.1f), %.0f B/frame (heap %.0f)\n",
		pi.PoolAllocsPerFrame, pi.HeapAllocsPerFrame, pi.AllocsSavedPerFrame,
		pi.PoolBytesPerFrame, pi.HeapBytesPerFrame)

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}

// runPooledIngest measures the full datagram→estimate ingest path —
// decode each pre-encoded CSI datagram, push it through a
// deterministic manager, let the pipeline process it — once with heap
// frames and once with pooled frames, and reports the per-frame
// allocation delta. Datagrams are encoded up front so only the decode
// and serve layers sit inside the measured window.
func runPooledIngest(env *experiment.Env, profile *core.Profile) (*pooledIngestResult, error) {
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 10, 115)
	const frames = 2000
	datagrams := make([][]byte, 0, frames)
	for i := 0; i < frames; i++ {
		// FrameAt reuses one scratch frame, so each datagram is encoded
		// before the next overwrite.
		t := float64(i) * 0.005
		b, err := wifi.EncodeCSI(nil, env.FrameAt(sc.State(t)))
		if err != nil {
			return nil, err
		}
		datagrams = append(datagrams, b)
	}
	measure := func(pooled bool) (allocsPer, bytesPer float64, err error) {
		mgr := serve.New(serve.Config{Deterministic: true, RecycleFrames: pooled})
		defer mgr.Close()
		if err := mgr.Open("ingest", profile, core.DefaultPipelineConfig()); err != nil {
			return 0, 0, err
		}
		dec := wifi.Decode
		if pooled {
			dec = wifi.DecodePooled
		}
		// Warm the session and (in pooled mode) the frame pool so the
		// measured window is steady-state, then measure the rest.
		const warm = 64
		for _, b := range datagrams[:warm] {
			pkt, err := dec(b)
			if err != nil {
				return 0, 0, err
			}
			mgr.Push(serve.Item{Session: "ingest", Kind: serve.KindFrame, Frame: pkt.CSI})
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for _, b := range datagrams[warm:] {
			pkt, err := dec(b)
			if err != nil {
				return 0, 0, err
			}
			mgr.Push(serve.Item{Session: "ingest", Kind: serve.KindFrame, Frame: pkt.CSI})
		}
		runtime.ReadMemStats(&m1)
		n := float64(len(datagrams) - warm)
		return float64(m1.Mallocs-m0.Mallocs) / n, float64(m1.TotalAlloc-m0.TotalAlloc) / n, nil
	}
	heapA, heapB, err := measure(false)
	if err != nil {
		return nil, err
	}
	poolA, poolB, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &pooledIngestResult{
		Frames:              frames,
		HeapAllocsPerFrame:  heapA,
		PoolAllocsPerFrame:  poolA,
		HeapBytesPerFrame:   heapB,
		PoolBytesPerFrame:   poolB,
		AllocsSavedPerFrame: heapA - poolA,
	}, nil
}

// writeCSV dumps a figure's series as rows of (series, x, y) for
// external plotting.
func writeCSV(dir string, r *experiment.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
