package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/obs"
	"vihot/internal/serve"
)

// obsBaseline is the JSON schema of -obsjson: serving throughput with
// instrumentation off, with the metrics registry scraping stage
// histograms, and with span tracing on top — the measured cost of the
// observability layer. The "off" row is the reference; each other row
// carries its overhead relative to it, which the overhead budget in
// DESIGN.md holds under 2% for the disabled case by construction
// (disabled means no clock reads at all) and aims under 10% enabled.
type obsBaseline struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Seed       int64          `json:"seed"`
	FramesPer  int            `json:"frames_per_session"`
	Shards     int            `json:"shards"`
	Sessions   int            `json:"sessions"`
	Repeats    int            `json:"repeats"`
	Results    []obsBenchCell `json:"results"`
}

type obsBenchCell struct {
	Mode        string  `json:"mode"` // off | metrics | metrics+trace
	Frames      int     `json:"frames"`
	Seconds     float64 `json:"seconds"`
	FramesPerS  float64 `json:"frames_per_s"`
	Estimates   uint64  `json:"estimates"`
	OverheadPct float64 `json:"overhead_pct"` // vs the off row; 0 for off
}

// runObsBench measures serving throughput with observability off and
// on. Each mode runs repeat times and keeps the fastest run — the
// usual way to compare fixed workloads under scheduler noise.
func runObsBench(path string, seed int64) error {
	start := time.Now()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 5
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 10, 115)
	phases, err := env.PhaseSeries(sc)
	if err != nil {
		return err
	}
	if len(phases) > 1000 {
		phases = phases[:1000]
	}

	const (
		shards   = 4
		sessions = 16
		repeats  = 3
	)
	base := obsBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		FramesPer:  len(phases),
		Shards:     shards,
		Sessions:   sessions,
		Repeats:    repeats,
	}

	// one bench pass: build a manager in the given mode, replay the
	// phase stream into every session, report frames/s.
	pass := func(mode string) (obsBenchCell, error) {
		var cfg serve.Config
		cfg.Shards = shards
		cfg.QueueLen = len(phases)*sessions + 1024
		switch mode {
		case "metrics":
			cfg.Metrics = obs.NewRegistry()
		case "metrics+trace":
			cfg.Metrics = obs.NewRegistry()
			cfg.Trace = obs.NewTracer(obs.DefaultTraceCapacity)
		}
		mgr := serve.New(cfg)
		defer mgr.Close()
		ids := make([]string, sessions)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%03d", i)
			if err := mgr.Open(ids[i], profile, core.DefaultPipelineConfig()); err != nil {
				return obsBenchCell{}, err
			}
		}
		t0 := time.Now()
		batch := make([]serve.Item, 0, sessions)
		for _, s := range phases {
			batch = batch[:0]
			for _, id := range ids {
				batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
			}
			mgr.PushBatch(batch)
		}
		mgr.Flush()
		dt := time.Since(t0).Seconds()
		snap := mgr.Counters().Snapshot()
		frames := len(phases) * sessions
		return obsBenchCell{
			Mode: mode, Frames: frames, Seconds: dt,
			FramesPerS: float64(frames) / dt, Estimates: snap.Estimates,
		}, nil
	}

	var offRate float64
	for _, mode := range []string{"off", "metrics", "metrics+trace"} {
		best := obsBenchCell{}
		for r := 0; r < repeats; r++ {
			cell, err := pass(mode)
			if err != nil {
				return err
			}
			if cell.FramesPerS > best.FramesPerS {
				best = cell
			}
		}
		if mode == "off" {
			offRate = best.FramesPerS
		} else if offRate > 0 {
			best.OverheadPct = 100 * (offRate - best.FramesPerS) / offRate
		}
		base.Results = append(base.Results, best)
		fmt.Printf("%-14s %8.0f frames/s  (%d estimates, overhead %+.1f%%)\n",
			best.Mode, best.FramesPerS, best.Estimates, best.OverheadPct)
	}

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}
