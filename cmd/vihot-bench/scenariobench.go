package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"vihot/internal/obs"
	"vihot/internal/scenario"
)

// runScenarioBench replays a weighted mix of named corpus scenarios
// through the session manager and prints per-scenario accuracy and
// health breakdowns — the workload-generator entry point.
//
// mixSpec is "all" (equal weights over the whole corpus) or a
// comma-separated "name:weight" list, e.g.
// "baseline:3,multi-occupant:1". Weights default to 1 when omitted.
func runScenarioBench(mixSpec string, sessions int, seconds float64, deterministic bool, metricsOut, jsonOut string) error {
	mix, err := scenario.ParseMix(mixSpec, seconds)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	fmt.Printf("scenario mix replay: %d sessions over %d scenarios (%s mode)\n\n",
		sessions, len(mix), map[bool]string{true: "deterministic", false: "concurrent"}[deterministic])

	start := time.Now()
	rep, err := scenario.Generate(scenario.GeneratorConfig{
		Mix:           mix,
		Sessions:      sessions,
		Deterministic: deterministic,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	printScenarioReport(os.Stdout, rep)
	fmt.Printf("done in %.1f s\n", time.Since(start).Seconds())

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote metrics exposition to %s\n", metricsOut)
	}
	if jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote report JSON to %s\n", jsonOut)
	}
	return nil
}

// printScenarioReport renders the per-scenario accuracy/health table
// and the manager's conservation counters.
func printScenarioReport(w io.Writer, rep *scenario.Report) {
	fmt.Fprintf(w, "%-18s %8s %8s %9s %10s %9s  %s\n",
		"scenario", "sessions", "items", "estimates", "median(°)", "p95(°)", "final health / trajectories")
	for _, sr := range rep.Scenarios {
		fmt.Fprintf(w, "%-18s %8d %8d %9d %10.2f %9.2f  %s | %s\n",
			sr.Scenario, sr.Sessions, sr.Items, sr.Estimates,
			sr.MedianErrDeg, sr.P95ErrDeg,
			formatBreakdown(sr.FinalHealth), formatBreakdown(sr.Trajectories))
	}
	c := rep.Counters
	fmt.Fprintf(w, "\ncounters: processed=%d estimates=%d dropped(stale=%d unknown=%d closed=%d) rejected(time=%d kind=%d)\n\n",
		c.Processed, c.Estimates, c.DroppedStale, c.DroppedUnknown, c.DroppedClosed,
		c.RejectedTime, c.RejectedKind)
}

// formatBreakdown renders a small count map in stable key order.
func formatBreakdown(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
