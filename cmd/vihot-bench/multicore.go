package main

// The multi-core ingest grid for -servejson: GOMAXPROCS × shards ×
// sessions cells driven through serve.Producer lanes (one SPSC ring
// set per pusher goroutine), recorded next to the single-core matrix
// in BENCH_serve.json so the perf trajectory captures both the kernel
// speedups and the scaling behaviour of the lock-free ingest path.
//
// Each cell runs two passes:
//
//  1. An uninstrumented throughput pass. The drive is closed-loop
//     (producers stall once the backlog reaches half a ring), so
//     nothing sheds and frames/s is the steady-state rate the workers
//     drained and processed the full per-session workload (shedding
//     would skew the mix toward the cheap pre-window samples that
//     never reach the DTW matcher).
//     The pass also samples runtime/metrics'
//     /sync/mutex/wait/total:seconds before and after: the delta is
//     the contention proxy (total goroutine-seconds spent blocked on
//     mutexes, which for this workload is shard-mutex + wake traffic).
//  2. A short instrumented pass with a metrics registry attached, to
//     read the match-stage p95 from vihot_pipeline_stage_seconds —
//     the DTW subsequence scan is the serving hot path, so its p95 is
//     the cell's hotpath_p95_s. Kept separate so the time.Now calls
//     that instrumentation costs never pollute the throughput number.

import (
	"fmt"
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"vihot/internal/core"
	"vihot/internal/dsp"
	"vihot/internal/obs"
	"vihot/internal/serve"
)

// multicoreCell is one (GOMAXPROCS, shards, sessions) measurement.
type multicoreCell struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Shards      int     `json:"shards"`
	Sessions    int     `json:"sessions"`
	Producers   int     `json:"producers"`
	Pushed      int     `json:"pushed"`
	Processed   uint64  `json:"processed"`
	Dropped     uint64  `json:"dropped"`
	Estimates   uint64  `json:"estimates"`
	Seconds     float64 `json:"seconds"`
	FramesPerS  float64 `json:"frames_per_s"` // Processed / Seconds
	HotpathP95S float64 `json:"hotpath_p95_s"`
	MutexWaitS  float64 `json:"mutex_wait_s"`
}

// mutexWaitSeconds reads the runtime's cumulative mutex-wait clock.
func mutexWaitSeconds() float64 {
	s := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return s[0].Value.Float64()
}

// producerDrive partitions the session set round-robin across nProd
// goroutines, each owning one serve.Producer (per-session order is
// preserved because a session's items flow through exactly one lane),
// and replays the phase series through them. Returns the wall time
// from first push to drained Flush.
//
// The drive is closed-loop: producers share an atomic pushed counter
// and stall (park) whenever pushed−processed exceeds backlogMax, so
// the rings never overflow (no drop-newest shedding to skew the mix)
// and the backlog stays cache-sized instead of ballooning into
// GC-visible megabytes — exactly how a real receive loop behaves once
// its socket buffer fills.
func producerDrive(mgr *serve.Manager, ids []string, phases dsp.Series, nProd int) float64 {
	if nProd > len(ids) {
		nProd = len(ids)
	}
	const backlogMax = 8192 // < QueueLen: a single ring can absorb the whole backlog
	var pushed atomic.Uint64
	counters := mgr.Counters()
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < nProd; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := mgr.NewProducer()
			var mine []string
			for i := w; i < len(ids); i += nProd {
				mine = append(mine, ids[i])
			}
			// Accumulate several phases per publish: a receive loop
			// would batch at the datagram burst size, and per-phase
			// slivers of sessions/producers items pay the publish
			// and wake handshake too often to be representative.
			const target = 1024
			batch := make([]serve.Item, 0, target+len(mine))
			flush := func() {
				p.PushBatch(batch)
				pushed.Add(uint64(len(batch)))
				batch = batch[:0]
				// "Consumed" must include sheds: a dropped item never
				// becomes Processed, and stalling on processed alone
				// would wait forever once anything drops. The subtraction
				// is signed because consumed transiently exceeds the
				// pushed counter (items publish before the Add above), and
				// a uint64 underflow here reads as an enormous backlog —
				// an unwakeable stall. Park rather than spin: on an
				// oversubscribed host a spinning producer steals the
				// cycles the workers need.
				for {
					snap := counters.Snapshot()
					if int64(pushed.Load())-int64(snap.Processed+snap.DroppedStale) <= backlogMax {
						break
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			for _, s := range phases {
				for _, id := range mine {
					batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
				}
				if len(batch) >= target {
					flush()
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	mgr.Flush()
	return time.Since(t0).Seconds()
}

// runMulticoreCell measures one grid cell: throughput + contention
// pass, then the short instrumented pass for the hot-path p95.
func runMulticoreCell(profile *core.Profile, phases dsp.Series, gmp, shards, sessions int) (multicoreCell, error) {
	prev := runtime.GOMAXPROCS(gmp)
	defer runtime.GOMAXPROCS(prev)
	runtime.GC() // don't let the previous cell's ring garbage bill this one

	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%03d", i)
	}
	open := func(mgr *serve.Manager) error {
		for _, id := range ids {
			if err := mgr.Open(id, profile, core.DefaultPipelineConfig()); err != nil {
				return err
			}
		}
		return nil
	}

	cell := multicoreCell{
		GOMAXPROCS: gmp, Shards: shards, Sessions: sessions,
		Producers: gmp, Pushed: len(phases) * sessions,
	}
	if cell.Producers > sessions {
		cell.Producers = sessions
	}

	// Pass 1: throughput and mutex-wait delta, uninstrumented. The
	// closed-loop drive keeps the backlog under half a ring, so the
	// rings stay small and cache-resident and nothing sheds. Best of
	// two repetitions on fresh managers — the first doubles as the
	// warmup — because a scheduler hiccup on a shared host easily
	// costs 5% and the grid exists to track a trajectory, not noise.
	for rep := 0; rep < 2; rep++ {
		mgr := serve.New(serve.Config{Shards: shards, QueueLen: 16384})
		if err := open(mgr); err != nil {
			return cell, err
		}
		wait0 := mutexWaitSeconds()
		secs := producerDrive(mgr, ids, phases, cell.Producers)
		waitS := mutexWaitSeconds() - wait0
		snap := mgr.Counters().Snapshot()
		mgr.Close()
		if fps := float64(snap.Processed) / secs; rep == 0 || fps > cell.FramesPerS {
			cell.Seconds = secs
			cell.MutexWaitS = waitS
			cell.Processed = snap.Processed
			cell.Dropped = snap.DroppedStale
			cell.Estimates = snap.Estimates
			cell.FramesPerS = fps
		}
	}

	// Pass 2: hot-path p95 with metrics attached, over a shorter
	// replay (latency distributions converge long before throughput).
	short := phases
	if len(short) > 250 {
		short = short[:250]
	}
	reg := obs.NewRegistry()
	mgr := serve.New(serve.Config{Shards: shards, QueueLen: 16384, Metrics: reg})
	if err := open(mgr); err != nil {
		return cell, err
	}
	producerDrive(mgr, ids, short, cell.Producers)
	mgr.Close()
	match := reg.Histogram("vihot_pipeline_stage_seconds",
		"wall-clock latency of one pipeline stage", obs.LatencyBuckets(), "stage", core.StageMatch)
	if p95 := match.Quantile(0.95); !math.IsNaN(p95) {
		cell.HotpathP95S = p95
	}
	return cell, nil
}

// runMulticoreGrid sweeps GOMAXPROCS ∈ {1,2,4,8} × shards × sessions.
// GOMAXPROCS values above runtime.NumCPU() still run — they measure
// scheduler pressure rather than parallelism, which the baseline note
// records — so the grid is comparable across hosts.
func runMulticoreGrid(profile *core.Profile, phases dsp.Series) ([]multicoreCell, error) {
	// 500 phases per session bounds the worst cell's transient ring
	// memory (every ring holds the whole replay so nothing sheds).
	if len(phases) > 500 {
		phases = phases[:500]
	}
	var cells []multicoreCell
	for _, gmp := range []int{1, 2, 4, 8} {
		for _, shards := range []int{1, 4} {
			for _, sessions := range []int{16, 128} {
				cell, err := runMulticoreCell(profile, phases, gmp, shards, sessions)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
				fmt.Printf("gomaxprocs=%-2d shards=%-2d sessions=%-4d  %8.0f frames/s  p95=%.0fµs  mutex-wait=%.3fs  (%d processed, %d dropped)\n",
					gmp, shards, sessions, cell.FramesPerS, cell.HotpathP95S*1e6,
					cell.MutexWaitS, cell.Processed, cell.Dropped)
			}
		}
	}
	return cells, nil
}
