package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/journal"
	"vihot/internal/serve"
)

// journalBaseline is the JSON schema of -journaljson: serving
// throughput with journaling off, with the default group commit, and
// with fsync-per-record — the measured cost of durability. The "off"
// row is the reference; the per-row logical-writes vs syscalls split
// shows what group commit buys: hundreds of records per Write+Sync at
// the default batch versus two syscalls per record under SyncAlways.
// DESIGN.md §13 budgets the default-batch overhead under 20%.
type journalBaseline struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Seed       int64              `json:"seed"`
	FramesPer  int                `json:"frames_per_session"`
	Shards     int                `json:"shards"`
	Sessions   int                `json:"sessions"`
	Repeats    int                `json:"repeats"`
	Results    []journalBenchCell `json:"results"`
}

type journalBenchCell struct {
	Mode        string  `json:"mode"` // off | batch | always
	BatchSize   int     `json:"batch_size,omitempty"`
	Frames      int     `json:"frames"`
	Seconds     float64 `json:"seconds"`
	FramesPerS  float64 `json:"frames_per_s"`
	Estimates   uint64  `json:"estimates"`
	OverheadPct float64 `json:"overhead_pct"` // vs the off row; 0 for off

	// The write-behind split: logical writes are the records the
	// serving layer handed the journal (estimates, transitions, the
	// shutdown trailer); DB calls are the syscalls that made them
	// durable (Write batches + fsyncs). Their ratio is the group-commit
	// amortization factor.
	LogicalWrites  uint64  `json:"logical_writes,omitempty"`
	DBCalls        uint64  `json:"db_calls,omitempty"`
	RecordsPerCall float64 `json:"records_per_call,omitempty"`
	Dropped        uint64  `json:"dropped,omitempty"`
	JournalBytes   uint64  `json:"journal_bytes,omitempty"`
}

// runJournalBench measures serving throughput with the durable
// journal off and on. Each mode runs repeat times and keeps the
// fastest run, like the other fixed-workload benches.
func runJournalBench(path string, seed int64) error {
	start := time.Now()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 5
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 10, 115)
	phases, err := env.PhaseSeries(sc)
	if err != nil {
		return err
	}
	if len(phases) > 1000 {
		phases = phases[:1000]
	}

	const (
		shards   = 4
		sessions = 16
		repeats  = 3
		batch    = 64 // the -journal-batch default
	)
	base := journalBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		FramesPer:  len(phases),
		Shards:     shards,
		Sessions:   sessions,
		Repeats:    repeats,
	}
	dir, err := os.MkdirTemp("", "vihot-bench-journal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// one bench pass: build a manager journaling (or not) onto a real
	// file, replay the phase stream into every session, report
	// frames/s plus the journal's records-vs-syscalls accounting.
	pass := func(mode string, run int) (journalBenchCell, error) {
		var jw *journal.Writer
		cell := journalBenchCell{Mode: mode}
		if mode != "off" {
			jcfg := journal.Config{BatchSize: batch, QueueLen: 1 << 17}
			if mode == "always" {
				jcfg.Sync = journal.SyncAlways
			} else {
				cell.BatchSize = batch
			}
			var err error
			jw, err = journal.OpenFile(filepath.Join(dir, fmt.Sprintf("%s-%d.vhj", mode, run)), jcfg)
			if err != nil {
				return cell, err
			}
		}
		mgr := serve.New(serve.Config{
			Shards:   shards,
			QueueLen: len(phases)*sessions + 1024,
			Journal:  jw,
		})
		defer mgr.Close()
		ids := make([]string, sessions)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%03d", i)
			if err := mgr.Open(ids[i], profile, core.DefaultPipelineConfig()); err != nil {
				return cell, err
			}
		}
		t0 := time.Now()
		batchItems := make([]serve.Item, 0, sessions)
		for _, s := range phases {
			batchItems = batchItems[:0]
			for _, id := range ids {
				batchItems = append(batchItems, serve.Item{Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V})
			}
			mgr.PushBatch(batchItems)
		}
		mgr.Flush()
		dt := time.Since(t0).Seconds()
		snap := mgr.Counters().Snapshot()
		frames := len(phases) * sessions
		cell.Frames = frames
		cell.Seconds = dt
		cell.FramesPerS = float64(frames) / dt
		cell.Estimates = snap.Estimates
		if jw != nil {
			mgr.CloseDrain()
			if err := jw.Close(); err != nil {
				return cell, err
			}
			js := jw.Stats()
			cell.LogicalWrites = js.Records
			cell.DBCalls = js.Batches + js.Syncs
			if cell.DBCalls > 0 {
				cell.RecordsPerCall = float64(js.Records) / float64(cell.DBCalls)
			}
			cell.Dropped = snap.JournalDropped
			cell.JournalBytes = js.Bytes
		}
		return cell, nil
	}

	var offRate float64
	for _, mode := range []string{"off", "batch", "always"} {
		best := journalBenchCell{}
		for r := 0; r < repeats; r++ {
			cell, err := pass(mode, r)
			if err != nil {
				return err
			}
			if cell.FramesPerS > best.FramesPerS {
				best = cell
			}
		}
		if mode == "off" {
			offRate = best.FramesPerS
		} else if offRate > 0 {
			best.OverheadPct = 100 * (offRate - best.FramesPerS) / offRate
		}
		base.Results = append(base.Results, best)
		if mode == "off" {
			fmt.Printf("%-8s %8.0f frames/s  (%d estimates)\n",
				best.Mode, best.FramesPerS, best.Estimates)
		} else {
			fmt.Printf("%-8s %8.0f frames/s  (overhead %+.1f%%, %d records in %d syscalls = %.1f records/call, %d dropped)\n",
				best.Mode, best.FramesPerS, best.OverheadPct,
				best.LogicalWrites, best.DBCalls, best.RecordsPerCall, best.Dropped)
		}
	}

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}
