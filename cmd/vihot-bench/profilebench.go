package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/profilestore"
)

// profileBaseline is the JSON schema of -profilejson: the three
// profile-store paths that matter at fleet scale. cold_load is the
// full miss (disk read + decode + checksum + validate + fingerprint +
// insert); hot_hit is the steady-state lookup, which must stay
// allocation-free; contention_64 is 64 goroutines hammering a
// cached working set through the sharded locks.
type profileBaseline struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Seed       int64              `json:"seed"`
	Positions  int                `json:"profile_positions"`
	Bytes      int64              `json:"profile_bytes"`
	Results    []profileBenchCell `json:"results"`
}

type profileBenchCell struct {
	Case        string  `json:"case"` // cold_load | hot_hit | contention_64
	Ops         int     `json:"ops"`
	Goroutines  int     `json:"goroutines"`
	Seconds     float64 `json:"seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerS     float64 `json:"ops_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// runProfileBench measures the store's cold, hot, and contended
// paths and writes the JSON baseline.
func runProfileBench(path string, seed int64) error {
	start := time.Now()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 4
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vihot-profilebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dl := profilestore.NewDirLoader(dir)
	const files = 256
	for i := 0; i < files; i++ {
		if err := dl.Save(fmt.Sprintf("driver-%d", i), profile); err != nil {
			return err
		}
	}

	base := profileBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Positions:  len(profile.Positions),
	}

	// Cold loads: capacity 1 with a rotating key keeps every Get a
	// miss that goes to disk.
	{
		s := profilestore.New(profilestore.Config{Shards: 1, Capacity: 1, Loader: dl})
		const ops = 2000
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := s.Get(fmt.Sprintf("driver-%d", i%files)); err != nil {
				return err
			}
		}
		base.Results = append(base.Results, cell("cold_load", ops, 1, time.Since(t0), 0))
		base.Bytes = s.Stats().Bytes
	}

	// Hot hits: one warmed key, measured with allocation accounting.
	{
		s := profilestore.New(profilestore.Config{Loader: dl})
		if _, err := s.Get("driver-0"); err != nil {
			return err
		}
		const ops = 2_000_000
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := s.Get("driver-0"); err != nil {
				return err
			}
		}
		dt := time.Since(t0)
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / ops
		base.Results = append(base.Results, cell("hot_hit", ops, 1, dt, allocs))
	}

	// 64-way contention: a cached 16-key working set under 64
	// goroutines — the sharded-lock scaling story.
	{
		s := profilestore.New(profilestore.Config{Shards: 8, Capacity: 64, Loader: dl})
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("driver-%d", i)
			if _, err := s.Get(keys[i]); err != nil {
				return err
			}
		}
		const (
			workers   = 64
			perWorker = 50_000
		)
		var (
			wg    sync.WaitGroup
			gate  = make(chan struct{})
			fails atomic.Int64
		)
		wg.Add(workers)
		for g := 0; g < workers; g++ {
			go func(g int) {
				defer wg.Done()
				<-gate
				for i := 0; i < perWorker; i++ {
					if _, err := s.Get(keys[(g+i)%len(keys)]); err != nil {
						fails.Add(1)
						return
					}
				}
			}(g)
		}
		t0 := time.Now()
		close(gate)
		wg.Wait()
		dt := time.Since(t0)
		if n := fails.Load(); n > 0 {
			return fmt.Errorf("contention bench: %d gets failed", n)
		}
		base.Results = append(base.Results, cell("contention_64", workers*perWorker, workers, dt, 0))
	}

	for _, c := range base.Results {
		fmt.Printf("%-14s %10d ops  %8.0f ns/op  %12.0f ops/s  %.3f allocs/op\n",
			c.Case, c.Ops, c.NsPerOp, c.OpsPerS, c.AllocsPerOp)
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}

func cell(name string, ops, goroutines int, dt time.Duration, allocs float64) profileBenchCell {
	return profileBenchCell{
		Case:        name,
		Ops:         ops,
		Goroutines:  goroutines,
		Seconds:     dt.Seconds(),
		NsPerOp:     float64(dt.Nanoseconds()) / float64(ops),
		OpsPerS:     float64(ops) / dt.Seconds(),
		AllocsPerOp: allocs,
	}
}
