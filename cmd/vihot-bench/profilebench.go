package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/profilestore"
	"vihot/internal/stats"
)

// profileBaseline is the JSON schema of -profilejson: the three
// profile-store paths that matter at fleet scale. cold_load is the
// full miss (disk read + decode + checksum + validate + fingerprint +
// insert); hot_hit is the steady-state lookup, which must stay
// allocation-free; contention_64 is 64 goroutines hammering a
// cached working set through the sharded locks.
type profileBaseline struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Seed       int64              `json:"seed"`
	Positions  int                `json:"profile_positions"`
	Bytes      int64              `json:"profile_bytes"`
	Results    []profileBenchCell `json:"results"`
	Churn      []churnCell        `json:"churn"`
}

type profileBenchCell struct {
	Case        string  `json:"case"` // cold_load | hot_hit | contention_64
	Ops         int     `json:"ops"`
	Goroutines  int     `json:"goroutines"`
	Seconds     float64 `json:"seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerS     float64 `json:"ops_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// churnCell is one point of the policy-vs-policy churn grid: a key
// distribution replayed against one eviction policy, with or without
// the doorkeeper.
type churnCell struct {
	Dist              string  `json:"dist"` // zipf | zipf_scan | fleet_mix
	Policy            string  `json:"policy"`
	Admission         bool    `json:"admission"`
	Ops               int     `json:"ops"`
	Capacity          int     `json:"capacity"`
	Keyspace          int     `json:"keyspace"`
	HitRate           float64 `json:"hit_rate"`
	NsPerOp           float64 `json:"ns_per_op"`
	Evictions         uint64  `json:"evictions"`
	AdmissionRejected uint64  `json:"admission_rejected"`
}

// Churn grid shape: a cache an order of magnitude smaller than the
// key population, so the policies actually have to choose.
const (
	churnOps      = 200_000
	churnCapacity = 128
	churnKeyspace = 1024
)

// churnTrace renders one deterministic key trace.
//
//	zipf      — fleet reality: a few commuter keys dominate, a long
//	            tail of occasional drivers (zipf s≈1.1 over 1024 keys).
//	zipf_scan — the same zipf traffic with a periodic one-shot sweep
//	            of never-repeated keys (fleet onboarding / backfill
//	            jobs): the classic scan-pollution stress that splits
//	            recency policies from frequency policies.
//	fleet_mix — 70% of opens over 48 hot keys (regular cars), 30%
//	            uniform over the full tail (rentals, one-off trips).
func churnTrace(dist string, rng *stats.RNG) ([]string, error) {
	keys := make([]string, churnKeyspace)
	for i := range keys {
		keys[i] = fmt.Sprintf("driver-%04d", i)
	}
	// Zipf via inverse CDF over precomputed cumulative weights.
	cum := make([]float64, churnKeyspace)
	total := 0.0
	for r := range cum {
		total += 1.0 / math.Pow(float64(r+1), 1.1)
		cum[r] = total
	}
	zipfKey := func() string {
		u := rng.Float64() * total
		return keys[sort.SearchFloat64s(cum, u)]
	}

	trace := make([]string, 0, churnOps+churnOps/8)
	switch dist {
	case "zipf":
		for i := 0; i < churnOps; i++ {
			trace = append(trace, zipfKey())
		}
	case "zipf_scan":
		scanSeq := 0
		for i := 0; i < churnOps; i++ {
			trace = append(trace, zipfKey())
			if (i+1)%4000 == 0 {
				// A one-shot sweep of 2×capacity fresh keys: enough to
				// flush a pure-recency cache end to end.
				for j := 0; j < 2*churnCapacity; j++ {
					trace = append(trace, fmt.Sprintf("scan-%06d", scanSeq))
					scanSeq++
				}
			}
		}
	case "fleet_mix":
		for i := 0; i < churnOps; i++ {
			if rng.Bool(0.7) {
				trace = append(trace, keys[rng.Intn(48)])
			} else {
				trace = append(trace, keys[rng.Intn(churnKeyspace)])
			}
		}
	default:
		return nil, fmt.Errorf("unknown churn distribution %q", dist)
	}
	return trace, nil
}

// runChurnGrid replays every distribution × policy × admission cell
// and appends the results to the baseline.
func runChurnGrid(base *profileBaseline, profile *core.Profile, seed int64,
	policies []profilestore.Policy, admissions []bool) error {
	loader := profilestore.LoaderFunc(func(string) (*core.Profile, error) {
		return profile, nil
	})
	for _, dist := range []string{"zipf", "zipf_scan", "fleet_mix"} {
		// One trace per distribution, shared by every policy cell so
		// the comparison is apples to apples.
		trace, err := churnTrace(dist, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for _, pol := range policies {
			for _, adm := range admissions {
				s := profilestore.New(profilestore.Config{
					Shards:    1,
					Capacity:  churnCapacity,
					Policy:    pol,
					Admission: adm,
					Loader:    loader,
				})
				t0 := time.Now()
				for _, k := range trace {
					if _, err := s.Get(k); err != nil {
						return err
					}
				}
				dt := time.Since(t0)
				st := s.Stats()
				base.Churn = append(base.Churn, churnCell{
					Dist:              dist,
					Policy:            pol.String(),
					Admission:         adm,
					Ops:               len(trace),
					Capacity:          churnCapacity,
					Keyspace:          churnKeyspace,
					HitRate:           st.HitRate(),
					NsPerOp:           float64(dt.Nanoseconds()) / float64(len(trace)),
					Evictions:         st.Evictions,
					AdmissionRejected: st.AdmissionRejected,
				})
			}
		}
	}
	return nil
}

// parseBenchPolicies maps the -profile-policy flag ("all" or a
// comma list of lru/lfu/2q) onto the grid's policy axis.
func parseBenchPolicies(s string) ([]profilestore.Policy, error) {
	if s == "" || s == "all" {
		return []profilestore.Policy{profilestore.PolicyLRU, profilestore.PolicyLFU, profilestore.Policy2Q}, nil
	}
	var out []profilestore.Policy
	for _, tok := range strings.Split(s, ",") {
		p, err := profilestore.ParsePolicy(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseBenchAdmission maps -profile-admission (both|on|off) onto the
// grid's admission axis.
func parseBenchAdmission(s string) ([]bool, error) {
	switch s {
	case "", "both":
		return []bool{false, true}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	default:
		return nil, fmt.Errorf("-profile-admission: want both, on, or off; got %q", s)
	}
}

// runProfileBench measures the store's cold, hot, and contended
// paths plus the eviction-policy churn grid, and writes the JSON
// baseline.
func runProfileBench(path string, seed int64, policyFlag, admissionFlag string) error {
	start := time.Now()
	policies, err := parseBenchPolicies(policyFlag)
	if err != nil {
		return err
	}
	admissions, err := parseBenchAdmission(admissionFlag)
	if err != nil {
		return err
	}
	env, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 4
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vihot-profilebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dl := profilestore.NewDirLoader(dir)
	const files = 256
	for i := 0; i < files; i++ {
		if err := dl.Save(fmt.Sprintf("driver-%d", i), profile); err != nil {
			return err
		}
	}

	base := profileBaseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Positions:  len(profile.Positions),
	}

	// Cold loads: capacity 1 with a rotating key keeps every Get a
	// miss that goes to disk.
	{
		s := profilestore.New(profilestore.Config{Shards: 1, Capacity: 1, Loader: dl})
		const ops = 2000
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := s.Get(fmt.Sprintf("driver-%d", i%files)); err != nil {
				return err
			}
		}
		base.Results = append(base.Results, cell("cold_load", ops, 1, time.Since(t0), 0))
		base.Bytes = s.Stats().Bytes
	}

	// Hot hits: one warmed key, measured with allocation accounting.
	{
		s := profilestore.New(profilestore.Config{Loader: dl})
		if _, err := s.Get("driver-0"); err != nil {
			return err
		}
		const ops = 2_000_000
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := s.Get("driver-0"); err != nil {
				return err
			}
		}
		dt := time.Since(t0)
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / ops
		base.Results = append(base.Results, cell("hot_hit", ops, 1, dt, allocs))
	}

	// 64-way contention: a cached 16-key working set under 64
	// goroutines — the sharded-lock scaling story.
	{
		s := profilestore.New(profilestore.Config{Shards: 8, Capacity: 64, Loader: dl})
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("driver-%d", i)
			if _, err := s.Get(keys[i]); err != nil {
				return err
			}
		}
		const (
			workers   = 64
			perWorker = 50_000
		)
		var (
			wg    sync.WaitGroup
			gate  = make(chan struct{})
			fails atomic.Int64
		)
		wg.Add(workers)
		for g := 0; g < workers; g++ {
			go func(g int) {
				defer wg.Done()
				<-gate
				for i := 0; i < perWorker; i++ {
					if _, err := s.Get(keys[(g+i)%len(keys)]); err != nil {
						fails.Add(1)
						return
					}
				}
			}(g)
		}
		t0 := time.Now()
		close(gate)
		wg.Wait()
		dt := time.Since(t0)
		if n := fails.Load(); n > 0 {
			return fmt.Errorf("contention bench: %d gets failed", n)
		}
		base.Results = append(base.Results, cell("contention_64", workers*perWorker, workers, dt, 0))
	}

	if err := runChurnGrid(&base, profile, seed, policies, admissions); err != nil {
		return err
	}

	for _, c := range base.Results {
		fmt.Printf("%-14s %10d ops  %8.0f ns/op  %12.0f ops/s  %.3f allocs/op\n",
			c.Case, c.Ops, c.NsPerOp, c.OpsPerS, c.AllocsPerOp)
	}
	for _, c := range base.Churn {
		adm := "adm-off"
		if c.Admission {
			adm = "adm-on"
		}
		fmt.Printf("churn %-10s %-4s %-8s hit-rate %.4f  %6.0f ns/op  evict=%d rejected=%d\n",
			c.Dist, c.Policy, adm, c.HitRate, c.NsPerOp, c.Evictions, c.AdmissionRejected)
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %.0f s\n", path, time.Since(start).Seconds())
	return nil
}

func cell(name string, ops, goroutines int, dt time.Duration, allocs float64) profileBenchCell {
	return profileBenchCell{
		Case:        name,
		Ops:         ops,
		Goroutines:  goroutines,
		Seconds:     dt.Seconds(),
		NsPerOp:     float64(dt.Nanoseconds()) / float64(ops),
		OpsPerS:     float64(ops) / dt.Seconds(),
		AllocsPerOp: allocs,
	}
}
