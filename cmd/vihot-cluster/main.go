// Command vihot-cluster runs the distributed serving tier end to end:
// a scenario-corpus workload replayed through an N-node
// consistent-hash cluster, with optional mid-run node maintenance
// (drain) and node crash (kill + stream-time failure detection), a
// durable handoff journal, and a final cluster-wide ledger.
//
// Usage:
//
//	vihot-cluster [-nodes N] [-sessions N] [-scenario name[,name...]]
//	              [-duration S] [-drain T] [-kill T]
//	              [-journal cluster.vhj] [-v]
//
// -drain T retires the member owning the most sessions at stream time
// T (orderly handoff: export, restore, graceful stop). -kill T
// crashes a different loaded member at stream time T; the router
// notices via heartbeat silence and fails its sessions over, with the
// destinations COASTING until frames resume.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vihot/internal/cluster"
	"vihot/internal/core"
	"vihot/internal/journal"
	"vihot/internal/profilestore"
	"vihot/internal/scenario"
	"vihot/internal/serve"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster member count (1-255)")
	sessions := flag.Int("sessions", 8, "sessions, apportioned round-robin across the scenario mix")
	names := flag.String("scenario", scenario.Baseline,
		fmt.Sprintf("comma-separated corpus scenarios (have %v)", scenario.CorpusNames()))
	duration := flag.Float64("duration", 0, "override scenario duration seconds (0 = corpus defaults)")
	drainT := flag.Float64("drain", 0, "drain the busiest member at this stream time (0 = never)")
	killT := flag.Float64("kill", 0, "crash a loaded member at this stream time (0 = never)")
	journalPath := flag.String("journal", "", "write the handoff journal to this file")
	verbose := flag.Bool("v", false, "print every handoff event")
	flag.Parse()

	if err := run(*nodes, *sessions, *names, *duration, *drainT, *killT, *journalPath, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "vihot-cluster:", err)
		os.Exit(1)
	}
}

func run(nodes, sessions int, names string, duration, drainT, killT float64, journalPath string, verbose bool) error {
	// Render the workload: per-scenario profiles, per-session streams,
	// one merged timeline ordered by stream time.
	var cfgs []scenario.Config
	for _, name := range strings.Split(names, ",") {
		cfg, err := scenario.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if duration > 0 {
			cfg.DurationS = duration
		}
		cfgs = append(cfgs, cfg)
	}
	cfgByName := make(map[string]scenario.Config)
	keys := make(map[string]string)
	var ids []string
	var timeline []serve.Item
	for i := 0; i < sessions; i++ {
		cfg := cfgs[i%len(cfgs)]
		cfgByName[cfg.Name] = cfg
		id := fmt.Sprintf("%s-%d", cfg.Name, i)
		st, err := cfg.BuildStream(id, i)
		if err != nil {
			return err
		}
		ids = append(ids, id)
		keys[id] = cfg.Name
		timeline = append(timeline, st.Items...)
	}
	sort.SliceStable(timeline, func(i, j int) bool {
		if ta, tb := itemTime(timeline[i]), itemTime(timeline[j]); ta != tb {
			return ta < tb
		}
		return timeline[i].Session < timeline[j].Session
	})

	var jw *journal.Writer
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jw, err = journal.New(journal.Config{W: f})
		if err != nil {
			return err
		}
	}

	members := make([]string, nodes)
	for i := range members {
		members[i] = fmt.Sprintf("node-%02d", i)
	}
	var events []cluster.HandoffEvent
	c, err := cluster.New(cluster.Config{
		Nodes:   members,
		Journal: jw,
		OnHandoff: func(ev cluster.HandoffEvent) {
			events = append(events, ev)
			if verbose {
				kind := "drain"
				if ev.Failover {
					kind = "failover"
				}
				fmt.Printf("  handoff %-8s %-24s %s -> %s (t=%.2fs)\n", kind, ev.Session, ev.From, ev.To, ev.T)
			}
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Profiles resolve lazily through a loader-backed store: OpenMany's
	// batch dedup guarantees one CollectProfile per scenario no matter
	// how many sessions share it, and the cluster replicates each key to
	// its members exactly once.
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(name string) (*core.Profile, error) {
			cfg, ok := cfgByName[name]
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q", name)
			}
			fmt.Printf("profiling %s ...\n", name)
			return cfg.CollectProfile()
		}),
	})
	opens := make([]serve.KeyedOpen, len(ids))
	for i, id := range ids {
		opens[i] = serve.KeyedOpen{ID: id, Key: keys[id]}
	}
	for i, err := range c.OpenMany(opens, store) {
		if err != nil {
			return err
		}
		owner, _ := c.Owner(ids[i])
		fmt.Printf("open %-24s -> %s\n", ids[i], owner)
	}

	// The chaos targets are ring facts: drain hits the busiest member,
	// kill hits the next-most-loaded other member.
	load := map[string]int{}
	for _, id := range ids {
		owner, _ := c.Owner(id)
		load[owner]++
	}
	ranked := append([]string(nil), members...)
	sort.SliceStable(ranked, func(i, j int) bool { return load[ranked[i]] > load[ranked[j]] })
	drainTarget, killTarget := ranked[0], ""
	for _, n := range ranked[1:] {
		if load[n] > 0 {
			killTarget = n
			break
		}
	}

	// Replay, firing the scheduled faults as stream time passes them.
	flush := func() { c.Flush() }
	drained, killed := drainT <= 0, killT <= 0 || killTarget == ""
	for i := 0; i < len(timeline); {
		j := i + 256
		if j > len(timeline) {
			j = len(timeline)
		}
		c.PushBatch(timeline[i:j])
		t := itemTime(timeline[j-1])
		if !drained && t >= drainT {
			drained = true
			flush()
			fmt.Printf("t=%.2fs draining %s (%d sessions)\n", t, drainTarget, load[drainTarget])
			if _, err := c.DrainNode(drainTarget); err != nil {
				return err
			}
		}
		if !killed && t >= killT {
			killed = true
			flush()
			fmt.Printf("t=%.2fs killing %s (%d sessions)\n", t, killTarget, load[killTarget])
			if err := c.KillNode(killTarget); err != nil {
				return err
			}
		}
		i = j
	}
	flush()

	st := c.Stats()
	fmt.Printf("\ncluster: %d/%d nodes live, %d sessions, %d reassignments\n",
		st.LiveNodes, st.Nodes, st.Sessions, st.Reassignments)
	fmt.Printf("items:   routed %d = delivered %d + dropped %d (partition %d, node-down %d, unowned %d)\n",
		st.Routed, st.Delivered, st.DroppedPartition+st.DroppedDown+st.DroppedUnowned,
		st.DroppedPartition, st.DroppedDown, st.DroppedUnowned)
	fmt.Printf("handoff: %d drain, %d failover, %d journal records (%d dropped)\n",
		st.DrainHandoffs, st.FailoverHandoffs, st.JournalAppended, st.JournalDropped)
	for _, id := range ids {
		owner, _ := c.Owner(id)
		h, _ := c.Health(id)
		fmt.Printf("  %-24s on %-8s %v\n", id, owner, h)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
		fmt.Printf("journal: %s (%d handoff records)\n", journalPath, len(events))
	}
	return nil
}

// itemTime mirrors the router's stream-clock extraction.
func itemTime(it serve.Item) float64 {
	switch it.Kind {
	case serve.KindFrame:
		if it.Frame != nil {
			return it.Frame.Time
		}
		return 0
	case serve.KindIMU:
		return it.IMU.Time
	case serve.KindCamera:
		return it.Camera.Time
	default:
		return it.Time
	}
}
