// Command vihot-sim runs an end-to-end simulated ViHOT session: a
// position-orientation joint profiling pass followed by a live
// tracking run, printing the estimate stream and a final accuracy
// summary.
//
// Usage:
//
//	vihot-sim [-driver A|B|C] [-duration S] [-steering] [-layout N]
//	          [-passenger] [-vibration] [-interference] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vihot"
	"vihot/internal/stats"
)

func main() {
	driverName := flag.String("driver", "A", "driver style: A, B or C")
	duration := flag.Float64("duration", 30, "run-time seconds")
	steering := flag.Bool("steering", false, "include intersection turns (enables camera fallback)")
	layout := flag.Int("layout", 0, "RX antenna layout 1-5 (0 = Layout 1)")
	passenger := flag.Bool("passenger", false, "seat a front passenger")
	vibration := flag.Bool("vibration", false, "worst-case antenna vibration")
	interference := flag.Bool("interference", false, "nearby WiFi traffic")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "print the estimate stream")
	saveProfile := flag.String("save-profile", "", "persist the collected profile to this file")
	loadProfile := flag.String("load-profile", "", "skip profiling and load a saved profile")
	flag.Parse()

	style := vihot.DriverA
	switch strings.ToUpper(*driverName) {
	case "A":
	case "B":
		style = vihot.DriverB
	case "C":
		style = vihot.DriverC
	default:
		fmt.Fprintf(os.Stderr, "unknown driver %q (want A, B or C)\n", *driverName)
		os.Exit(2)
	}

	sim, err := vihot.NewSimulator(vihot.SimConfig{
		Layout:           *layout,
		Passenger:        *passenger,
		AntennaVibration: *vibration,
		WiFiInterference: *interference,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulator:", err)
		os.Exit(1)
	}

	var profile *vihot.Profile
	if *loadProfile != "" {
		var err error
		profile, err = vihot.LoadProfile(*loadProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load profile:", err)
			os.Exit(1)
		}
		fmt.Printf("== loaded profile %s: %d positions\n\n", *loadProfile, len(profile.Positions))
	} else {
		fmt.Println("== profiling (Sec. 3.3): driver sweeps head at 10 seat positions")
		var profDur float64
		var err error
		profile, profDur, err = sim.ProfileDriver(style)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			os.Exit(1)
		}
		fmt.Printf("   profile ready: %d positions in %.0f simulated seconds\n",
			len(profile.Positions), profDur)
		fmt.Printf("   %s\n\n", profile.Quality())
	}
	if *saveProfile != "" {
		if err := vihot.SaveProfile(*saveProfile, profile); err != nil {
			fmt.Fprintln(os.Stderr, "save profile:", err)
			os.Exit(1)
		}
		fmt.Printf("   profile saved to %s\n\n", *saveProfile)
	}

	fmt.Printf("== run-time tracking: %.0f s drive (steering=%v)\n", *duration, *steering)
	res, err := sim.Drive(profile, style, *duration, *steering)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracking:", err)
		os.Exit(1)
	}

	if *verbose {
		last := -1.0
		for _, e := range res.Estimates() {
			if e.Time-last < 0.25 {
				continue
			}
			last = e.Time
			fmt.Printf("   t=%6.2fs yaw=%+6.1f° source=%-6v position=%d\n",
				e.Time, e.Yaw, e.Source, e.Position)
		}
	}

	s := stats.Summarize(res.Errors())
	fmt.Printf("\n== results over %d estimates\n", s.N)
	fmt.Printf("   median error  %5.1f°   (paper: 4–10°)\n", s.Median)
	fmt.Printf("   mean error    %5.1f°\n", s.Mean)
	fmt.Printf("   90th pct      %5.1f°\n", s.P90)
	fmt.Printf("   max           %5.1f°\n", s.Max)
	fmt.Printf("   sampling rate %5.0f Hz (paper: ≥400 Hz)\n", res.SampleRateHz())
}
