// Command vihot-serve demonstrates the concurrent multi-driver
// tracking service: K simulated cars each stream their CSI frames and
// phone IMU readings over the UDP wire format (internal/wifi) to one
// receiver process, which demultiplexes the datagrams by source
// address into a sharded SessionManager and tracks every driver's head
// concurrently.
//
// Usage:
//
//	vihot-serve [-drivers K] [-shards N] [-seconds S] [-queue Q] [-seed N]
//	            [-session-ttl S]
//	            [-loss P] [-dup P] [-reorder P] [-corrupt P] [-fault-seed N]
//	            [-metrics-addr HOST:PORT] [-trace-out FILE]
//	            [-profile-dir DIR] [-profile-cache N]
//	            [-journal FILE] [-journal-batch N] [-journal-interval S]
//	            [-journal-sync batch|none|always]
//
// Each simulated driver replays an internal/driver glance-and-steer
// scenario; the tool prints per-session tracking accuracy against the
// scenario's ground truth plus the manager's traffic counters
// (including frames shed under load). The -loss/-dup/-reorder/-corrupt
// flags wrap every car's sender in an internal/faults packet injector,
// so the whole serving stack can be watched riding out a hostile link.
//
// With -metrics-addr the process serves the internal/obs registry in
// Prometheus text format at /metrics, Go's profiler at /debug/pprof/,
// and (when -trace-out is also set) the live span ring at /trace. With
// -trace-out the per-stage latency spans are written as JSON at exit,
// ready for vihot-trace spans. Both are off by default, in which case
// the serving stack reads no extra clocks.
//
// With -profile-dir the driver profiles take the production lifecycle
// path: saved to DIR in the versioned profile format, then resolved
// back through an internal/profilestore shared LRU cache as each
// session opens (Manager.OpenByKey) — cars sharing a driver style
// share one cached immutable profile instance, and the store's
// hit/miss/eviction counters print with the summary (and export via
// -metrics-addr as vihot_profilestore_*). -profile-cache bounds the
// cache.
//
// With -journal the manager appends every estimate, health
// transition, reap, and close to a durable write-behind journal
// (internal/journal). On start a previous run's journal is recovered:
// its surviving sessions are reported and a torn tail (from a crash
// mid-write) is truncated to the last valid record before new records
// are appended. -journal-batch and -journal-interval tune the group
// commit; -journal-sync picks the fsync policy. Shutdown — normal or
// signalled — drains and fsyncs the journal before the summary, which
// then includes the append/drop/error accounting
// (vihot_serve_journal_* and vihot_journal_* under -metrics-addr).
//
// With -session-ttl the manager reaps sessions whose stream time has
// gone idle for longer than the TTL — the sweep runs on session clocks
// only, so a paused replay cannot age anyone out. Reaped sessions are
// reported with the summary and exported as
// vihot_serve_sessions_reaped_total.
//
// The receiver decodes CSI datagrams into pooled frames
// (wifi.DecodePooled) and the manager recycles each frame once its
// estimate is out (serve.Config.RecycleFrames), so steady-state ingest
// allocates no per-packet frame storage.
//
// SIGINT or SIGTERM stops the senders, drains what already reached the
// shard queues, and still prints the full per-session summary — so an
// interrupted run reports what it did instead of dying silently. The
// normal exit path is CloseDrain: flush every shard, then close, so
// the final counters satisfy the conservation identity with no items
// abandoned in the rings.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/faults"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/journal"
	"vihot/internal/obs"
	"vihot/internal/profilestore"
	"vihot/internal/scenario"
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// faultFlags is the wire-fault schedule taken from the command line.
type faultFlags struct {
	loss, dup, reorder, corrupt float64
	seed                        int64
}

func (ff faultFlags) enabled() bool {
	return ff.loss > 0 || ff.dup > 0 || ff.reorder > 0 || ff.corrupt > 0
}

// journalFlags is the durable-journal configuration taken from the
// command line; the zero path disables journaling entirely.
type journalFlags struct {
	path      string
	batch     int
	intervalS float64
	sync      string
}

func main() {
	drivers := flag.Int("drivers", 4, "concurrent simulated drivers")
	shards := flag.Int("shards", 4, "session-manager worker shards")
	seconds := flag.Float64("seconds", 12, "simulated trip length per driver")
	queue := flag.Int("queue", 4096, "per-shard queue bound (items)")
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	sessionTTL := flag.Float64("session-ttl", 0,
		"reap sessions idle for this many stream-time seconds; 0 disables reaping")
	var ff faultFlags
	flag.Float64Var(&ff.loss, "loss", 0, "UDP loss probability per datagram")
	flag.Float64Var(&ff.dup, "dup", 0, "UDP duplication probability per datagram")
	flag.Float64Var(&ff.reorder, "reorder", 0, "UDP reordering probability per datagram")
	flag.Float64Var(&ff.corrupt, "corrupt", 0, "UDP bit-corruption probability per datagram")
	flag.Int64Var(&ff.seed, "fault-seed", 1, "fault-injection seed")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus /metrics and /debug/pprof/ on this address (e.g. :9090); empty disables")
	traceOut := flag.String("trace-out", "",
		"write per-stage latency spans as JSON to this file at exit; empty disables tracing")
	profileDir := flag.String("profile-dir", "",
		"persist driver profiles here and resolve sessions through the shared profile store (OpenByKey); empty keeps the direct Open path")
	profileCache := flag.Int("profile-cache", 64,
		"profile-store cache capacity in profiles (with -profile-dir)")
	profilePolicy := flag.String("profile-policy", "lru",
		"profile-store eviction policy: lru, lfu, or 2q (with -profile-dir)")
	profileAdmission := flag.Bool("profile-admission", false,
		"enable the profile-store doorkeeper admission filter (with -profile-dir)")
	scenarioMix := flag.String("scenario-mix", "",
		"draw each driver's trajectory from a weighted corpus scenario mix (\"all\" or \"name:weight,...\") instead of the default glance-and-steer trip; prints a per-scenario accuracy/health breakdown (CSI+IMU only: camera items have no wire type)")
	var jf journalFlags
	flag.StringVar(&jf.path, "journal", "",
		"append estimates/health/reap/close events to this crash-recoverable journal file; empty disables")
	flag.IntVar(&jf.batch, "journal-batch", 64,
		"journal group-commit batch size in records (with -journal)")
	flag.Float64Var(&jf.intervalS, "journal-interval", 0.25,
		"journal group-commit interval in stream-time seconds (with -journal)")
	flag.StringVar(&jf.sync, "journal-sync", "batch",
		"journal fsync policy: batch, none, or always (with -journal)")
	flag.Parse()
	if err := run(*drivers, *shards, *seconds, *queue, *seed, *sessionTTL, ff, *metricsAddr, *traceOut,
		*profileDir, *profileCache, *profilePolicy, *profileAdmission, *scenarioMix, jf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// probeSender is the send surface a car streams through — either the
// bare wifi.Sender or a faults.Sender wrapping it.
type probeSender interface {
	SendCSI(f *csi.Frame) error
	SendIMU(r *imu.Reading) error
}

// car is one simulated driver: a private cabin environment, a
// scenario, and the UDP sender that plays its phone.
type car struct {
	id       string // session id = the sender's local UDP address
	label    string // driver style, or scenario/trajectory under -scenario-mix
	scName   string // corpus scenario name ("" outside -scenario-mix)
	scenario *driver.Scenario
	env      *experiment.Env
	sender   *wifi.Sender
	out      probeSender // sender, possibly wrapped in a fault injector
	flush    func() error
}

// carPlan is one car's pre-dial assignment: its environment,
// trajectory, and which collected profile its session opens with.
type carPlan struct {
	env    *experiment.Env
	sc     *driver.Scenario
	label  string
	scName string
	prof   int // index into the collected profiles
}

func run(drivers, shards int, seconds float64, queue int, seed int64, sessionTTL float64,
	ff faultFlags, metricsAddr, traceOut, profileDir string, profileCache int,
	profilePolicy string, profileAdmission bool, scenarioMix string,
	jf journalFlags) error {
	if drivers < 1 {
		drivers = 1
	}
	start := time.Now()

	// With -scenario-mix the cars replay corpus scenarios instead of the
	// default glance-and-steer trip. The mix's own fault schedules are a
	// replay-path feature (vihot-bench -scenarios); on this live wire
	// path the -loss/-dup/... flags remain the fault surface.
	var mix []scenario.MixEntry
	if scenarioMix != "" {
		var err error
		if mix, err = scenario.ParseMix(scenarioMix, seconds); err != nil {
			return err
		}
	}

	// SIGINT/SIGTERM turns into context cancellation: the senders stop,
	// the receiver drains, and the summary still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Observability is opt-in: without these flags no registry or tracer
	// exists and the serving stack reads no instrumentation clocks.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	if traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}

	// One profile per driver style (or per mix scenario), shared by
	// every car opening under it — profiling is per-driver, not per-trip
	// (Sec. 5.2.4). profNames key the profile store under -profile-dir.
	var (
		profiles  []*core.Profile
		profNames []string
	)
	if mix != nil {
		for _, e := range mix {
			p, err := e.Config.CollectProfile()
			if err != nil {
				return err
			}
			profiles = append(profiles, p)
			profNames = append(profNames, e.Config.Name)
		}
		fmt.Printf("profiled %d mix scenarios in %.1f s\n", len(mix), time.Since(start).Seconds())
	} else {
		profEnv, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
		if err != nil {
			return err
		}
		styles := []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()}
		popt := experiment.DefaultProfileOptions()
		popt.Positions = 5
		popt.PerPositionS = 4
		for _, st := range styles {
			p, _, err := profEnv.CollectProfile(st, popt)
			if err != nil {
				return fmt.Errorf("profiling %s: %w", st.Name, err)
			}
			profiles = append(profiles, p)
			profNames = append(profNames, st.Name)
		}
		fmt.Printf("profiled %d driver styles in %.1f s\n", len(styles), time.Since(start).Seconds())
	}

	// With -profile-dir the profiles take the production path: saved to
	// disk in the versioned format, then resolved back through the
	// shared store's LRU cache as sessions open — every car of one
	// style shares a single cached instance instead of holding its own
	// copy. Without it, profiles are handed to Open directly.
	var store *profilestore.Store
	if profileDir != "" {
		pol, err := profilestore.ParsePolicy(profilePolicy)
		if err != nil {
			return err
		}
		dl := profilestore.NewDirLoader(profileDir)
		for i, name := range profNames {
			if err := dl.Save(name, profiles[i]); err != nil {
				return fmt.Errorf("saving profile %s: %w", name, err)
			}
		}
		store = profilestore.New(profilestore.Config{
			Capacity:  profileCache,
			Policy:    pol,
			Admission: profileAdmission,
			Loader:    dl,
			Metrics:   reg,
		})
		fmt.Printf("profile store: %d profiles in %s (cache capacity %d, policy %s, admission %v)\n",
			len(profNames), profileDir, profileCache, pol, profileAdmission)
	}

	// The receiver: one UDP socket feeding the session manager.
	recv, err := wifi.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer recv.Close()
	// K cars at ≈500 frames/s each arrive in bursts; give the kernel
	// room so load shedding happens in the manager (where it's
	// counted), not silently in the socket.
	if err := recv.SetReadBuffer(8 << 20); err != nil {
		return err
	}
	// Decode CSI into pooled frames: the receiver loop pushes each frame
	// exactly once, and RecycleFrames below hands ownership to the
	// manager, which returns the frame to the pool after processing.
	recv.SetPooledDecode(true)
	if reg != nil {
		// The receiver keeps its own atomic tallies; export them as
		// function-backed counters so a scrape reads the live values.
		st := func(field func(wifi.RecvStats) uint64) func() uint64 {
			return func() uint64 { return field(recv.Stats()) }
		}
		reg.CounterFunc("vihot_wifi_recv_packets_total",
			"datagrams decoded off the UDP socket", st(func(s wifi.RecvStats) uint64 { return s.Packets }))
		reg.CounterFunc("vihot_wifi_recv_bytes_total",
			"payload bytes read off the UDP socket", st(func(s wifi.RecvStats) uint64 { return s.Bytes }))
		reg.CounterFunc("vihot_wifi_recv_timeouts_total",
			"receive deadline expiries", st(func(s wifi.RecvStats) uint64 { return s.Timeouts }))
		reg.CounterFunc("vihot_wifi_recv_decode_errors_total",
			"datagrams read but undecodable", st(func(s wifi.RecvStats) uint64 { return s.DecodeErrors }))
	}
	if metricsAddr != "" {
		srv, maddr, err := obs.Serve(metricsAddr, reg, tracer)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (profiler at /debug/pprof/)\n", maddr)
	}

	// With -journal, recover whatever a previous run left behind before
	// appending: report the surviving per-session state, and if the file
	// ends in a torn record (a crash mid-write) truncate it back to the
	// last valid record so the new run appends at a record boundary.
	var jw *journal.Writer
	if jf.path != "" {
		pol, err := journal.ParseSyncPolicy(jf.sync)
		if err != nil {
			return err
		}
		prev, err := journal.RepairFile(jf.path)
		if err != nil {
			return err
		}
		if prev.Records > 0 || prev.Diag.TailBytes > 0 {
			state := "clean shutdown"
			if !prev.CleanShutdown {
				state = "unclean shutdown"
			}
			fmt.Printf("journal: recovered %d records, %d sessions from %s (%s)\n",
				prev.Records, len(prev.Sessions), jf.path, state)
			if live := prev.Live(); len(live) > 0 {
				fmt.Printf("journal: %d sessions were live at the last record: %s\n",
					len(live), strings.Join(live, " "))
			}
			if prev.Diag.Truncated {
				fmt.Printf("journal: torn tail repaired (%d bytes past the last valid record dropped)\n",
					prev.Diag.TailBytes)
			}
		}
		jw, err = journal.OpenFile(jf.path, journal.Config{
			BatchSize: jf.batch,
			IntervalS: jf.intervalS,
			Sync:      pol,
			Metrics:   reg,
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "journal: %v\n", err)
			},
		})
		if err != nil {
			return err
		}
	}

	var (
		mu          sync.Mutex
		estimates   = map[string][]core.Estimate{}
		transitions = map[string]int{}
		reaps       = map[string]float64{}
	)
	mgr := serve.New(serve.Config{
		Shards:        shards,
		QueueLen:      queue,
		SessionTTLS:   sessionTTL,
		RecycleFrames: true,
		Metrics:       reg,
		Trace:         tracer,
		Profiles:      store,
		Journal:       jw,
		OnEstimate: func(id string, est core.Estimate) {
			mu.Lock()
			estimates[id] = append(estimates[id], est)
			mu.Unlock()
		},
		OnHealth: func(id string, t float64, from, to serve.Health) {
			mu.Lock()
			transitions[id]++
			mu.Unlock()
		},
		OnReap: func(id string, t float64) {
			mu.Lock()
			reaps[id] = t
			mu.Unlock()
			fmt.Fprintf(os.Stderr, "reaped idle session %s at stream time %.2f s\n", id, t)
		},
	})
	defer mgr.Close()

	// Assign each car its environment and trajectory up front: drawn
	// from the weighted scenario mix, or the default glance-and-steer
	// trip per driver style.
	plans := make([]carPlan, 0, drivers)
	if mix != nil {
		weights := make([]float64, len(mix))
		for i, e := range mix {
			weights[i] = e.Weight
			if weights[i] == 0 {
				weights[i] = 1
			}
		}
		counts := scenario.Apportion(weights, drivers)
		for i, e := range mix {
			for j := 0; j < counts[i]; j++ {
				env, sc, kind, err := e.Config.Session(j)
				if err != nil {
					return err
				}
				plans = append(plans, carPlan{env: env, sc: sc,
					label: e.Config.Name + "/" + kind, scName: e.Config.Name, prof: i})
			}
		}
	} else {
		styles := []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()}
		for i := 0; i < drivers; i++ {
			env, err := experiment.NewEnv(cabin.DefaultConfig(), seed+int64(i)*101+7)
			if err != nil {
				return err
			}
			style := styles[i%len(styles)]
			plans = append(plans, carPlan{
				env: env,
				sc: driver.DrivingScenario(env.RNG.Fork(), style, seconds, driver.GlanceOptions{
					Steering:       true,
					PositionJitter: 0.008,
				}),
				label: style.Name,
				prof:  i % len(styles),
			})
		}
	}

	// Dial one sender per car and open its session keyed by the
	// sender's source address — how the receiver will see it.
	cars := make([]*car, len(plans))
	for i, pl := range plans {
		sender, err := wifi.Dial(recv.Addr().String())
		if err != nil {
			return err
		}
		defer sender.Close()
		c := &car{
			id:       sender.LocalAddr().String(),
			label:    pl.label,
			scName:   pl.scName,
			scenario: pl.sc,
			env:      pl.env,
			sender:   sender,
			out:      sender,
			flush:    func() error { return nil },
		}
		if ff.enabled() {
			// One injector per car: each phone link misbehaves on its
			// own deterministic schedule.
			pi := faults.NewPacketInjector(faults.PacketConfig{
				Loss: ff.loss, Dup: ff.dup, Reorder: ff.reorder, Corrupt: ff.corrupt,
			}, stats.NewRNG(ff.seed+int64(i)))
			// Idempotent registration: every car's injector accumulates
			// into the same vihot_faults_packets_total series.
			pi.BindMetrics(reg)
			fs := faults.NewSender(sender, pi)
			c.out, c.flush = fs, fs.Flush
		}
		if store == nil {
			if err := mgr.Open(c.id, profiles[pl.prof], core.DefaultPipelineConfig()); err != nil {
				return err
			}
		}
		cars[i] = c
	}
	if store != nil {
		// Resolve through the store as one fleet batch: cars sharing a
		// driver style (or mix scenario) share one cached immutable
		// profile instance, and the whole fleet costs one loader call
		// per distinct style, not per car.
		opens := make([]serve.KeyedOpen, len(plans))
		for i, pl := range plans {
			opens[i] = serve.KeyedOpen{ID: cars[i].id, Key: profNames[pl.prof]}
		}
		for i, err := range mgr.OpenSessionsByKey(opens, core.DefaultPipelineConfig()) {
			if err != nil {
				return fmt.Errorf("opening car %d: %w", i, err)
			}
		}
	}

	// Receiver loop: demultiplex datagrams by source address into the
	// manager. Runs until the senders finish and the socket idles.
	var (
		senders  sync.WaitGroup
		sendDone = make(chan struct{})
		recvDone = make(chan error, 1)
		decodeEr int
	)
	// Receive errors are classified, not string-matched: decode errors
	// mean the socket is fine (count and keep reading), timeouts mean
	// poll again, anything else means the socket itself is failing —
	// retry with capped exponential backoff instead of spinning.
	const (
		backoffMin = 10 * time.Millisecond
		backoffMax = 2 * time.Second
	)
	go func() {
		backoff := backoffMin
		for {
			pkt, addr, err := recv.RecvFrom(200 * time.Millisecond)
			switch {
			case err == nil:
				backoff = backoffMin // healthy read: reset the ladder
			case wifi.IsDecode(err):
				decodeEr++ // corrupt datagram; the socket is fine
				continue
			case wifi.IsTimeout(err):
				// Deadline expiry: the stream is over once the senders
				// are done and the buffer has drained.
				select {
				case <-sendDone:
					recvDone <- nil
					return
				default:
					continue
				}
			case errors.Is(err, net.ErrClosed):
				recvDone <- nil
				return
			default:
				fmt.Fprintf(os.Stderr, "recv: %v (retrying in %s)\n", err, backoff)
				time.Sleep(backoff)
				if backoff *= 2; backoff > backoffMax {
					backoff = backoffMax
				}
				continue
			}
			it := serve.Item{Session: addr.String()}
			switch pkt.Type {
			case wifi.TypeCSI:
				it.Kind, it.Frame = serve.KindFrame, pkt.CSI
			case wifi.TypeIMU:
				it.Kind, it.IMU = serve.KindIMU, *pkt.IMU
			}
			mgr.Push(it)
		}
	}()

	// The cars: stream CSI at the link's arrival times plus 100 Hz IMU,
	// as fast as the wire allows (the manager sheds what it must).
	for _, c := range cars {
		senders.Add(1)
		go func(c *car) {
			defer senders.Done()
			phone := imu.NewPhoneIMU(c.env.RNG.Fork())
			nextIMU := 0.0
			sent := 0
			for _, t := range c.env.Timing.ArrivalTimes(c.env.RNG.Fork(), c.scenario.Duration) {
				// Graceful shutdown: a signal stops the stream mid-trip;
				// whatever already reached the wire still gets processed.
				if ctx.Err() != nil {
					break
				}
				// Light pacing: full-blast loopback UDP overruns the
				// kernel socket buffer long before the manager sheds;
				// a real phone is rate-limited by the air anyway.
				if sent++; sent%8 == 0 {
					time.Sleep(time.Millisecond)
				}
				for nextIMU <= t {
					r := phone.Sample(nextIMU, c.scenario.CarYawRateDPS(nextIMU), c.scenario.SpeedMPS)
					if err := c.out.SendIMU(&r); err != nil {
						return
					}
					nextIMU += 0.01
				}
				if err := c.out.SendCSI(c.env.FrameAt(c.scenario.State(t))); err != nil {
					return
				}
			}
			// Deliver any datagrams still held back for reordering.
			_ = c.flush()
		}(c)
	}
	senders.Wait()
	close(sendDone)
	interrupted := ctx.Err() != nil
	if interrupted {
		fmt.Fprintln(os.Stderr, "\nsignal received: stopping senders, draining sessions")
	}
	if err := <-recvDone; err != nil {
		return err
	}
	mgr.Flush()

	// Score each session against its scenario's ground truth,
	// accumulating the per-scenario rollup along the way.
	fmt.Printf("\n%-22s %-24s %9s %12s %8s %6s\n", "session", "driver/scenario", "estimates", "median-err", "health", "trans")
	sort.Slice(cars, func(i, j int) bool { return cars[i].id < cars[j].id })
	scErrs := map[string][]float64{}
	scEst := map[string]int{}
	scSessions := map[string]int{}
	scHealth := map[string]map[string]int{}
	for _, c := range cars {
		mu.Lock()
		ests := estimates[c.id]
		trans := transitions[c.id]
		mu.Unlock()
		var errs []float64
		for _, est := range ests {
			errs = append(errs, geom.AngleDistDeg(est.Yaw, c.scenario.HeadYaw.At(est.Time)))
		}
		med := stats.Median(errs)
		hcol := "reaped"
		mu.Lock()
		_, wasReaped := reaps[c.id]
		mu.Unlock()
		if !wasReaped {
			h, _ := mgr.Health(c.id)
			hcol = h.String()
		}
		fmt.Printf("%-22s %-24s %9d %11.1f° %8s %6d\n", c.id, c.label, len(ests), med, hcol, trans)
		if c.scName != "" {
			scErrs[c.scName] = append(scErrs[c.scName], errs...)
			scEst[c.scName] += len(ests)
			scSessions[c.scName]++
			if scHealth[c.scName] == nil {
				scHealth[c.scName] = map[string]int{}
			}
			scHealth[c.scName][hcol]++
		}
	}
	if mix != nil {
		fmt.Printf("\n%-18s %8s %9s %10s %9s  %s\n",
			"scenario", "sessions", "estimates", "median(°)", "p95(°)", "final health")
		printed := map[string]bool{}
		for _, e := range mix {
			name := e.Config.Name
			if printed[name] {
				continue // duplicate mix entries roll up under one name
			}
			printed[name] = true
			med, p95 := 0.0, 0.0
			if errs := scErrs[name]; len(errs) > 0 {
				med = stats.Median(errs)
				p95, _ = stats.Percentile(errs, 95)
			}
			var parts []string
			states := make([]string, 0, len(scHealth[name]))
			for s := range scHealth[name] {
				states = append(states, s)
			}
			sort.Strings(states)
			for _, s := range states {
				parts = append(parts, fmt.Sprintf("%s:%d", s, scHealth[name][s]))
			}
			fmt.Printf("%-18s %8d %9d %10.2f %9.2f  %s\n",
				name, scSessions[name], scEst[name], med, p95, strings.Join(parts, " "))
		}
	}

	// Graceful exit: flush whatever remains in the shard rings, then
	// close. After this the conservation identity holds exactly (no
	// DroppedClosed) and the sessions-open gauge reads zero.
	mgr.CloseDrain()

	// The manager appends nothing after CloseDrain, so the journal can
	// now drain, write its shutdown trailer, and fsync — before the
	// summary, so the accounting below is the durable truth.
	var jstats journal.Stats
	if jw != nil {
		if err := jw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "journal close: %v\n", err)
		}
		jstats = jw.Stats()
	}

	snap := mgr.Counters().Snapshot()
	fmt.Printf("\ncounters: frames=%d imu=%d estimates=%d shed=%d unknown=%d rejected-kind=%d rejected-closed=%d reaped=%d sanitize-errs=%d decode-errs=%d\n",
		snap.FramesIn, snap.IMUIn, snap.Estimates, snap.DroppedStale,
		snap.DroppedUnknown, snap.RejectedKind, snap.RejectedClosed,
		snap.SessionsReaped, snap.SanitizeErrors, decodeEr)
	fmt.Printf("health: rejected-time=%d coasted=%d suppressed-stale=%d degraded=%d coasting=%d stale=%d recovered=%d resets=%d\n",
		snap.RejectedTime, snap.Coasted, snap.SuppressedStale,
		snap.ToDegraded, snap.ToCoasting, snap.ToStale, snap.Recoveries, snap.TrackerResets)
	if store != nil {
		st := store.Stats()
		fmt.Printf("profile store [%s]: hits=%d misses=%d loads=%d errors=%d evictions=%d admission-rejected=%d doorkeeper-admits=%d cached=%d (%d bytes)\n",
			store.Policy(), st.Hits, st.Misses, st.Loads, st.LoadErrors, st.Evictions,
			st.AdmissionRejected, st.DoorkeeperAdmits, st.Profiles, st.Bytes)
	}
	if jw != nil {
		calls := jstats.Batches + jstats.Syncs
		amort := float64(jstats.Records)
		if calls > 0 {
			amort = float64(jstats.Records) / float64(calls)
		}
		fmt.Printf("journal: appended=%d dropped=%d errors=%d records=%d batches=%d syncs=%d bytes=%d (%.1f records/syscall) -> %s\n",
			snap.JournalAppended, snap.JournalDropped, snap.JournalErrors,
			jstats.Records, jstats.Batches, jstats.Syncs, jstats.Bytes, amort, jf.path)
	}
	if tracer != nil {
		d := tracer.Dump()
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans (%d overwritten) -> %s\n", len(d.Spans), d.Overwritten, traceOut)
	}
	mode := "simulated"
	if interrupted {
		mode = "interrupted; drained"
	}
	fmt.Printf("%d drivers × %.0f s %s through %d shards in %.1f s wall\n",
		drivers, seconds, mode, shards, time.Since(start).Seconds())
	return nil
}
