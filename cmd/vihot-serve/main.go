// Command vihot-serve demonstrates the concurrent multi-driver
// tracking service: K simulated cars each stream their CSI frames and
// phone IMU readings over the UDP wire format (internal/wifi) to one
// receiver process, which demultiplexes the datagrams by source
// address into a sharded SessionManager and tracks every driver's head
// concurrently.
//
// Usage:
//
//	vihot-serve [-drivers K] [-shards N] [-seconds S] [-queue Q] [-seed N]
//
// Each simulated driver replays an internal/driver glance-and-steer
// scenario; the tool prints per-session tracking accuracy against the
// scenario's ground truth plus the manager's traffic counters
// (including frames shed under load).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

func main() {
	drivers := flag.Int("drivers", 4, "concurrent simulated drivers")
	shards := flag.Int("shards", 4, "session-manager worker shards")
	seconds := flag.Float64("seconds", 12, "simulated trip length per driver")
	queue := flag.Int("queue", 4096, "per-shard queue bound (items)")
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	flag.Parse()
	if err := run(*drivers, *shards, *seconds, *queue, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// car is one simulated driver: a private cabin environment, a
// scenario, and the UDP sender that plays its phone.
type car struct {
	id       string // session id = the sender's local UDP address
	style    driver.Profile
	scenario *driver.Scenario
	env      *experiment.Env
	sender   *wifi.Sender
}

func run(drivers, shards int, seconds float64, queue int, seed int64) error {
	if drivers < 1 {
		drivers = 1
	}
	start := time.Now()

	// One profile per driver style, shared by every car of that style —
	// profiling is per-driver, not per-trip (Sec. 5.2.4).
	profEnv, err := experiment.NewEnv(cabin.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	styles := []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 4
	profiles := make([]*core.Profile, len(styles))
	for i, st := range styles {
		p, _, err := profEnv.CollectProfile(st, popt)
		if err != nil {
			return fmt.Errorf("profiling %s: %w", st.Name, err)
		}
		profiles[i] = p
	}
	fmt.Printf("profiled %d driver styles in %.1f s\n", len(styles), time.Since(start).Seconds())

	// The receiver: one UDP socket feeding the session manager.
	recv, err := wifi.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer recv.Close()
	// K cars at ≈500 frames/s each arrive in bursts; give the kernel
	// room so load shedding happens in the manager (where it's
	// counted), not silently in the socket.
	if err := recv.SetReadBuffer(8 << 20); err != nil {
		return err
	}

	var (
		mu        sync.Mutex
		estimates = map[string][]core.Estimate{}
	)
	mgr := serve.New(serve.Config{
		Shards:   shards,
		QueueLen: queue,
		OnEstimate: func(id string, est core.Estimate) {
			mu.Lock()
			estimates[id] = append(estimates[id], est)
			mu.Unlock()
		},
	})
	defer mgr.Close()

	// Dial one sender per car and open its session keyed by the
	// sender's source address — how the receiver will see it.
	cars := make([]*car, drivers)
	for i := range cars {
		env, err := experiment.NewEnv(cabin.DefaultConfig(), seed+int64(i)*101+7)
		if err != nil {
			return err
		}
		style := styles[i%len(styles)]
		sender, err := wifi.Dial(recv.Addr().String())
		if err != nil {
			return err
		}
		defer sender.Close()
		c := &car{
			id:     sender.LocalAddr().String(),
			style:  style,
			env:    env,
			sender: sender,
			scenario: driver.DrivingScenario(env.RNG.Fork(), style, seconds, driver.GlanceOptions{
				Steering:       true,
				PositionJitter: 0.008,
			}),
		}
		if err := mgr.Open(c.id, profiles[i%len(styles)], core.DefaultPipelineConfig()); err != nil {
			return err
		}
		cars[i] = c
	}

	// Receiver loop: demultiplex datagrams by source address into the
	// manager. Runs until the senders finish and the socket idles.
	var (
		senders  sync.WaitGroup
		sendDone = make(chan struct{})
		recvDone = make(chan error, 1)
		decodeEr int
	)
	go func() {
		for {
			pkt, addr, err := recv.RecvFrom(200 * time.Millisecond)
			if err != nil {
				if addr != nil {
					decodeEr++ // corrupt datagram; the socket is fine
					continue
				}
				// Socket-level timeout: the stream is over once the
				// senders are done and the buffer has drained.
				select {
				case <-sendDone:
					recvDone <- nil
					return
				default:
					continue
				}
			}
			it := serve.Item{Session: addr.String()}
			switch pkt.Type {
			case wifi.TypeCSI:
				it.Kind, it.Frame = serve.KindFrame, pkt.CSI
			case wifi.TypeIMU:
				it.Kind, it.IMU = serve.KindIMU, *pkt.IMU
			}
			mgr.Push(it)
		}
	}()

	// The cars: stream CSI at the link's arrival times plus 100 Hz IMU,
	// as fast as the wire allows (the manager sheds what it must).
	for _, c := range cars {
		senders.Add(1)
		go func(c *car) {
			defer senders.Done()
			phone := imu.NewPhoneIMU(c.env.RNG.Fork())
			nextIMU := 0.0
			sent := 0
			for _, t := range c.env.Timing.ArrivalTimes(c.env.RNG.Fork(), c.scenario.Duration) {
				// Light pacing: full-blast loopback UDP overruns the
				// kernel socket buffer long before the manager sheds;
				// a real phone is rate-limited by the air anyway.
				if sent++; sent%8 == 0 {
					time.Sleep(time.Millisecond)
				}
				for nextIMU <= t {
					r := phone.Sample(nextIMU, c.scenario.CarYawRateDPS(nextIMU), c.scenario.SpeedMPS)
					if err := c.sender.SendIMU(&r); err != nil {
						return
					}
					nextIMU += 0.01
				}
				if err := c.sender.SendCSI(c.env.FrameAt(c.scenario.State(t))); err != nil {
					return
				}
			}
		}(c)
	}
	senders.Wait()
	close(sendDone)
	if err := <-recvDone; err != nil {
		return err
	}
	mgr.Flush()

	// Score each session against its scenario's ground truth.
	fmt.Printf("\n%-22s %-10s %9s %12s\n", "session", "driver", "estimates", "median-err")
	sort.Slice(cars, func(i, j int) bool { return cars[i].id < cars[j].id })
	for _, c := range cars {
		mu.Lock()
		ests := estimates[c.id]
		mu.Unlock()
		var errs []float64
		for _, est := range ests {
			errs = append(errs, geom.AngleDistDeg(est.Yaw, c.scenario.HeadYaw.At(est.Time)))
		}
		med := stats.Median(errs)
		fmt.Printf("%-22s %-10s %9d %11.1f°\n", c.id, c.style.Name, len(ests), med)
	}

	snap := mgr.Counters().Snapshot()
	fmt.Printf("\ncounters: frames=%d imu=%d estimates=%d shed=%d unknown=%d sanitize-errs=%d decode-errs=%d\n",
		snap.FramesIn, snap.IMUIn, snap.Estimates, snap.DroppedStale,
		snap.DroppedUnknown, snap.SanitizeErrors, decodeEr)
	fmt.Printf("%d drivers × %.0f s simulated through %d shards in %.1f s wall\n",
		drivers, seconds, shards, time.Since(start).Seconds())
	return nil
}
