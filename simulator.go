package vihot

import (
	"vihot/internal/cabin"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/wifi"
)

// Simulator is the hardware substitute: a physically-grounded model of
// the car cabin, the WiFi link, and the receiver hardware, producing
// the same sanitized phase stream a real deployment would. It exists
// because the paper's prototype hardware (Intel 5300 CSI extraction,
// a car, human drivers) cannot ship in a library.
type Simulator struct {
	env *experiment.Env
}

// SimConfig selects the simulated deployment.
type SimConfig struct {
	// Layout is the RX antenna placement, 1–5 (Sec. 5.2.2); 0 means
	// Layout 1, the paper's recommended placement.
	Layout int
	// Passenger seats a front passenger.
	Passenger bool
	// AntennaVibration enables worst-case coil-antenna shake.
	AntennaVibration bool
	// WiFiInterference shares the channel with a busy neighbor AP.
	WiFiInterference bool
	// Seed makes the simulation reproducible.
	Seed int64
}

// DriverStyle selects one of the paper's three test drivers.
type DriverStyle int

// The three drivers of Sec. 5.2.5.
const (
	DriverA DriverStyle = iota
	DriverB
	DriverC
)

func (d DriverStyle) profile() driver.Profile {
	switch d {
	case DriverB:
		return driver.DriverB()
	case DriverC:
		return driver.DriverC()
	default:
		return driver.DriverA()
	}
}

// NewSimulator builds a simulated deployment.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	cc := cabin.DefaultConfig()
	if cfg.Layout != 0 {
		cc.Layout = cabin.Layout(cfg.Layout)
	}
	cc.Passenger = cfg.Passenger
	if cfg.AntennaVibration {
		v := cabin.DefaultVibration()
		cc.Vibration = &v
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	env, err := experiment.NewEnv(cc, seed)
	if err != nil {
		return nil, err
	}
	if cfg.WiFiInterference {
		env.Timing = wifi.InterferedTiming()
	}
	return &Simulator{env: env}, nil
}

// ProfileDriver runs a full position-orientation joint profiling
// session (Sec. 3.3) for the given driver style and returns the
// profile plus the simulated profiling duration in seconds.
func (s *Simulator) ProfileDriver(style DriverStyle) (*Profile, float64, error) {
	return s.env.CollectProfile(style.profile(), experiment.DefaultProfileOptions())
}

// Drive simulates a realistic trip of the given duration (glances,
// optional steering events) through the full pipeline and returns the
// tracking run's result.
func (s *Simulator) Drive(profile *Profile, style DriverStyle, seconds float64, steering bool) (*DriveResult, error) {
	sc := driver.DrivingScenario(s.env.RNG.Fork(), style.profile(), seconds, driver.GlanceOptions{
		Steering:       steering,
		PositionJitter: 0.008,
	})
	res, err := s.env.Track(profile, sc, experiment.TrackOptions{
		Pipeline: DefaultPipelineConfig(),
		Camera:   steering,
	})
	if err != nil {
		return nil, err
	}
	return &DriveResult{inner: res}, nil
}

// Sweep simulates the paper's controlled accuracy test: continuous
// head scanning at the given peak speed for the given duration.
func (s *Simulator) Sweep(profile *Profile, style DriverStyle, seconds, speedDPS float64, horizons []float64) (*DriveResult, error) {
	sc, _ := driver.SweepScenario(style.profile(), 1, seconds, speedDPS)
	res, err := s.env.Track(profile, sc, experiment.TrackOptions{
		Pipeline: DefaultPipelineConfig(),
		Horizons: horizons,
	})
	if err != nil {
		return nil, err
	}
	return &DriveResult{inner: res}, nil
}

// DriveResult summarizes one simulated tracking run.
type DriveResult struct {
	inner *experiment.RunResult
}

// Errors returns the per-estimate absolute angular deviations in
// degrees — the paper's performance metric.
func (r *DriveResult) Errors() []float64 { return r.inner.Errors }

// Estimates returns every estimate the pipeline emitted.
func (r *DriveResult) Estimates() []Estimate { return r.inner.Estimates }

// ForecastErrors returns the errors for the i-th requested horizon.
func (r *DriveResult) ForecastErrors(i int) []float64 {
	if i < 0 || i >= len(r.inner.ForecastErrors) {
		return nil
	}
	return r.inner.ForecastErrors[i]
}

// SampleRateHz returns the achieved CSI sampling rate.
func (r *DriveResult) SampleRateHz() float64 { return r.inner.SampleRateHz }

// MedianError returns the median angular error in degrees.
func (r *DriveResult) MedianError() float64 { return r.inner.ErrCDF().Median() }
