// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Sec. 5), plus ablations of ViHOT's design choices and
// microbenchmarks of the hot paths.
//
// The figure benches run a full simulated experiment per iteration, so
// run them with a bounded iteration count:
//
//	go test -bench=Benchmark -benchtime=1x -benchmem
//
// Each figure bench reports the headline accuracy metric via
// b.ReportMetric (median °, shown as median-deg).
package vihot_test

import (
	"fmt"
	"math"
	"testing"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/driver"
	"vihot/internal/dsp"
	"vihot/internal/dtw"
	"vihot/internal/experiment"
	"vihot/internal/geom"
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// benchOpt scales figure experiments for benchmarking.
func benchOpt() experiment.Options {
	o := experiment.Quick()
	o.Seed = 7
	return o
}

// figureBench runs one figure generator per iteration and reports the
// median of the last series' samples when the figure carries CDFs.
func figureBench(b *testing.B, gen func(experiment.Options) (*experiment.FigureResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := gen(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if med, ok := medianFromCDF(r); ok {
			b.ReportMetric(med, "median-deg")
		}
	}
}

// medianFromCDF extracts the x value at p=0.5 from the last CDF-like
// series of a figure, if any.
func medianFromCDF(r *experiment.FigureResult) (float64, bool) {
	for i := len(r.Series) - 1; i >= 0; i-- {
		s := r.Series[i]
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			continue
		}
		// CDF series have Y spanning 0..1 monotonically.
		if s.Y[0] != 0 || s.Y[len(s.Y)-1] != 1 {
			continue
		}
		for k := range s.Y {
			if s.Y[k] >= 0.5 {
				return s.X[k], true
			}
		}
	}
	return 0, false
}

// --- One bench per paper figure/table -------------------------------

func BenchmarkFig02HeadAxes(b *testing.B) { figureBench(b, experiment.Fig02HeadAxes) }
func BenchmarkFig03PhaseVsOrientation(b *testing.B) {
	figureBench(b, experiment.Fig03PhaseVsOrientation)
}
func BenchmarkFig08SteeringPhase(b *testing.B)     { figureBench(b, experiment.Fig08Steering) }
func BenchmarkFig10PredictionHorizon(b *testing.B) { figureBench(b, experiment.Fig10Prediction) }
func BenchmarkFig11LayoutCurves(b *testing.B)      { figureBench(b, experiment.Fig11LayoutCurves) }
func BenchmarkFig12AntennaPlacement(b *testing.B)  { figureBench(b, experiment.Fig12AntennaPlacement) }
func BenchmarkFig13aProfilingInterval(b *testing.B) {
	figureBench(b, experiment.Fig13aProfilingInterval)
}
func BenchmarkFig13bWindowSize(b *testing.B) { figureBench(b, experiment.Fig13bWindowSize) }
func BenchmarkFig13cTurnSpeed(b *testing.B)  { figureBench(b, experiment.Fig13cTurnSpeed) }
func BenchmarkFig13dDrivers(b *testing.B)    { figureBench(b, experiment.Fig13dDrivers) }
func BenchmarkFig14SpeedCurves(b *testing.B) { figureBench(b, experiment.Fig14SpeedCurves) }
func BenchmarkFig15MicroMotions(b *testing.B) {
	figureBench(b, experiment.Fig15MicroMotions)
}
func BenchmarkFig16AntennaVibration(b *testing.B) {
	figureBench(b, experiment.Fig16AntennaVibration)
}
func BenchmarkFig17aVibration(b *testing.B) { figureBench(b, experiment.Fig17aVibration) }
func BenchmarkFig17bSteeringIdentifier(b *testing.B) {
	figureBench(b, experiment.Fig17bSteeringIdentifier)
}
func BenchmarkFig17cPassenger(b *testing.B) { figureBench(b, experiment.Fig17cPassenger) }
func BenchmarkFig17dWiFiInterference(b *testing.B) {
	figureBench(b, experiment.Fig17dWiFiInterference)
}
func BenchmarkSamplingRate(b *testing.B)      { figureBench(b, experiment.SamplingRate) }
func BenchmarkProfilingOverhead(b *testing.B) { figureBench(b, experiment.ProfilingOverhead) }

// --- Shared fixtures for ablations and hot-path benches --------------

type fixture struct {
	env     *experiment.Env
	profile *core.Profile
	phases  dsp.Series
	truth   *driver.Scenario
}

func newFixture(b *testing.B) *fixture {
	b.Helper()
	env, err := experiment.NewEnv(cabin.DefaultConfig(), 7)
	if err != nil {
		b.Fatal(err)
	}
	popt := experiment.DefaultProfileOptions()
	popt.PerPositionS = 5
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		b.Fatal(err)
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 15, 115)
	phases, err := env.PhaseSeries(sc)
	if err != nil {
		b.Fatal(err)
	}
	return &fixture{env: env, profile: profile, phases: phases, truth: sc}
}

// trackWith replays the fixture's phase stream through a tracker
// config and returns the median error.
func (f *fixture) trackWith(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	tk, err := core.NewTracker(f.profile, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var errs []float64
	for _, s := range f.phases {
		if est, ok := tk.Push(s.T, s.V); ok {
			errs = append(errs, geom.AngleDistDeg(est.Yaw, f.truth.HeadYaw.At(est.Time)))
		}
	}
	return stats.Median(errs)
}

// --- Ablations of design choices (DESIGN.md Sec. 4) ------------------

// BenchmarkAblationPointMappingVsDTW compares the naive single-point
// mapping the paper rejects in Sec. 3.4.2 (Eq. 5: nearest phase value
// in the profile → its orientation) against the full DTW matcher.
func BenchmarkAblationPointMappingVsDTW(b *testing.B) {
	f := newFixture(b)
	for i := 0; i < b.N; i++ {
		// Naive point mapping on the same stream.
		pos := f.profile.Positions[len(f.profile.Positions)/2]
		var naive []float64
		for _, s := range f.phases {
			bestK, bestD := 0, math.Inf(1)
			for k, phi := range pos.PhiGrid {
				if d := math.Abs(geom.PhaseDiff(phi, s.V)); d < bestD {
					bestK, bestD = k, d
				}
			}
			naive = append(naive, geom.AngleDistDeg(pos.ThetaGrid[bestK], f.truth.HeadYaw.At(s.T)))
		}
		naiveMed := stats.Median(naive)

		cfg := core.DefaultConfig()
		cfg.EstimateEveryS = 0.02
		dtwMed := f.trackWith(b, cfg)

		b.ReportMetric(naiveMed, "naive-median-deg")
		b.ReportMetric(dtwMed, "dtw-median-deg")
	}
}

// BenchmarkAblationCandidateLengths compares Algorithm 1's
// [0.5W, 2W] candidate-length range against a fixed-length match,
// isolating the value of speed-mismatch tolerance.
func BenchmarkAblationCandidateLengths(b *testing.B) {
	f := newFixture(b)
	for i := 0; i < b.N; i++ {
		fixed := core.DefaultConfig()
		fixed.EstimateEveryS = 0.02
		fixed.RatioLo, fixed.RatioHi = 1, 1 // only Lm == W
		fixedMed := f.trackWith(b, fixed)

		ranged := core.DefaultConfig()
		ranged.EstimateEveryS = 0.02
		rangedMed := f.trackWith(b, ranged)

		b.ReportMetric(fixedMed, "fixed-median-deg")
		b.ReportMetric(rangedMed, "ranged-median-deg")
	}
}

// BenchmarkAblationPositionEstimation compares the two-level design
// (position lock via Eq. 4 + shortlist) against an oracle that knows
// the head position and against no position logic at all (always
// position 0).
func BenchmarkAblationPositionEstimation(b *testing.B) {
	f := newFixture(b)
	center := len(f.profile.Positions) / 2
	for i := 0; i < b.N; i++ {
		// Full two-level design.
		full := core.DefaultConfig()
		full.EstimateEveryS = 0.02
		fullMed := f.trackWith(b, full)

		// Oracle position: rescans off and the stability detector made
		// unsatisfiable so nothing ever overrides the pinned position.
		oracleCfg := core.DefaultConfig()
		oracleCfg.EstimateEveryS = 0.02
		oracleCfg.RescanEveryS = -1
		oracleCfg.StableStd = 1e-12
		tk, err := core.NewTracker(f.profile, oracleCfg)
		if err != nil {
			b.Fatal(err)
		}
		tk.SetPosition(center)
		var errs []float64
		for _, s := range f.phases {
			if est, ok := tk.Push(s.T, s.V); ok {
				errs = append(errs, geom.AngleDistDeg(est.Yaw, f.truth.HeadYaw.At(est.Time)))
			}
		}
		oracleMed := stats.Median(errs)

		b.ReportMetric(fullMed, "twolevel-median-deg")
		b.ReportMetric(oracleMed, "oracle-median-deg")
	}
}

// BenchmarkAblationSubcarrierAveraging isolates Eq. (3)'s across-
// subcarrier averaging: sanitizing with all 30 subcarriers versus just
// one.
func BenchmarkAblationSubcarrierAveraging(b *testing.B) {
	rng := stats.NewRNG(3)
	scene, err := cabin.NewScene(cabin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	hw30 := csi.DefaultHardware(rng.Fork())
	hw1 := csi.DefaultHardware(rng.Fork())
	var buf [][]complex128
	for i := 0; i < b.N; i++ {
		var noise30, noise1 []float64
		st := cabin.State{HeadPos: cabin.DriverHeadBase}
		var prev30, prev1 float64
		for k := 0; k < 400; k++ {
			buf = scene.CleanCSI(st, buf)
			f30 := hw30.Corrupt(0, buf)
			phi30, err := csi.Sanitize(f30, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			one := [][]complex128{buf[0][:1], buf[1][:1]}
			f1 := hw1.Corrupt(0, one)
			phi1, err := csi.Sanitize(f1, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			if k > 0 {
				noise30 = append(noise30, math.Abs(geom.PhaseDiff(phi30, prev30)))
				noise1 = append(noise1, math.Abs(geom.PhaseDiff(phi1, prev1)))
			}
			prev30, prev1 = phi30, phi1
		}
		b.ReportMetric(stats.Mean(noise30)*1000, "noise30-mrad")
		b.ReportMetric(stats.Mean(noise1)*1000, "noise1-mrad")
	}
}

// --- Hot-path microbenchmarks ----------------------------------------

func BenchmarkDTWDistance(b *testing.B) {
	m := dtw.NewMatcher(128)
	q := make([]float64, 10)
	p := make([]float64, 20)
	for i := range q {
		q[i] = math.Sin(float64(i) * 0.3)
	}
	for i := range p {
		p[i] = math.Sin(float64(i) * 0.15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Distance(q, p, dtw.Options{Window: 8, Circular: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWSubsequenceSearch(b *testing.B) {
	m := dtw.NewMatcher(256)
	q := make([]float64, 10)
	profile := make([]float64, 800)
	for i := range q {
		q[i] = math.Sin(float64(i) * 0.3)
	}
	for i := range profile {
		profile[i] = math.Sin(float64(i) * 0.04)
	}
	lengths := dtw.CandidateLengths(10, 0.5, 2, 2, len(profile))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Subsequence(q, profile, lengths, 2, dtw.Options{Window: 8, Circular: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackerPush measures the steady-state cost of one CSI
// sample through the tracker (most pushes do not trigger a DTW
// search; every ~5th does at 500 Hz input and 100 Hz estimates).
func BenchmarkTrackerPush(b *testing.B) {
	f := newFixture(b)
	cfg := core.DefaultConfig()
	tk, err := core.NewTracker(f.profile, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.phases[i%len(f.phases)]
		t := s.T + float64(i/len(f.phases))*f.phases.Duration()
		tk.Push(t, s.V)
	}
}

func BenchmarkSanitize(b *testing.B) {
	scene, err := cabin.NewScene(cabin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	hw := csi.DefaultHardware(stats.NewRNG(1))
	buf := scene.CleanCSI(cabin.State{HeadPos: cabin.DriverHeadBase}, nil)
	frame := hw.Corrupt(0, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := csi.Sanitize(frame, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSceneCSI(b *testing.B) {
	scene, err := cabin.NewScene(cabin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf [][]complex128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := cabin.State{HeadPos: cabin.DriverHeadBase, HeadYaw: float64(i % 150)}
		buf = scene.CleanCSI(st, buf)
	}
}

func BenchmarkResample(b *testing.B) {
	var s dsp.Series
	for t := 0.0; t < 0.1; t += 0.002 {
		s = append(s, dsp.Sample{T: t, V: math.Sin(t * 50)})
	}
	out := make([]float64, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = s.ResampleValuesN(10, out)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	scene, err := cabin.NewScene(cabin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	hw := csi.DefaultHardware(stats.NewRNG(1))
	frame := hw.Corrupt(0, scene.CleanCSI(cabin.State{HeadPos: cabin.DriverHeadBase}, nil))
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = wifi.EncodeCSI(buf[:0], frame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wifi.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Multi-session serving engine ------------------------------------

// BenchmarkSessionManager measures the sharded concurrent tracking
// engine across the shard × session grid: every session replays the
// fixture's phase stream through its own pipeline, all sessions in
// flight at once, and one iteration is "every session fully tracked".
// The frames/s metric is the aggregate ingest rate the configuration
// sustains; compare shards=1 against shards=16 for the scaling story.
func BenchmarkSessionManager(b *testing.B) {
	f := newFixture(b)
	// A 2 s slice of the sweep keeps 128-session runs tractable while
	// still exercising the DTW hot path steadily.
	stream := f.phases
	if n := len(stream); n > 1000 {
		stream = stream[:1000]
	}
	for _, shards := range []int{1, 4, 16} {
		for _, sessions := range []int{1, 16, 128} {
			name := fmt.Sprintf("shards=%d/sessions=%d", shards, sessions)
			b.Run(name, func(b *testing.B) {
				ids := make([]string, sessions)
				for i := range ids {
					ids[i] = fmt.Sprintf("s%03d", i)
				}
				frames := len(stream) * sessions
				b.ReportAllocs()
				b.ResetTimer()
				for iter := 0; iter < b.N; iter++ {
					// Queue sized to the whole run: the benchmark
					// measures sustained throughput, not shedding.
					mgr := serve.New(serve.Config{Shards: shards, QueueLen: frames + 1024})
					for _, id := range ids {
						if err := mgr.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
							b.Fatal(err)
						}
					}
					batch := make([]serve.Item, 0, len(ids))
					for _, s := range stream {
						batch = batch[:0]
						for _, id := range ids {
							batch = append(batch, serve.Item{
								Session: id, Kind: serve.KindPhase, Time: s.T, Phi: s.V,
							})
						}
						mgr.PushBatch(batch)
					}
					mgr.Flush()
					snap := mgr.Counters().Snapshot()
					mgr.Close()
					if snap.DroppedStale != 0 {
						b.Fatalf("shed %d frames; queue sized wrong for benchmark", snap.DroppedStale)
					}
					if snap.Estimates == 0 {
						b.Fatal("no estimates produced")
					}
				}
				b.StopTimer()
				perIter := b.Elapsed().Seconds() / float64(b.N)
				if perIter > 0 {
					b.ReportMetric(float64(frames)/perIter, "frames/s")
				}
			})
		}
	}
}

// --- Extension experiments (paper Sec. 7) -----------------------------

func BenchmarkExtension5GHz(b *testing.B) { figureBench(b, experiment.Ext5GHz) }
func BenchmarkExtensionCameraFusion(b *testing.B) {
	figureBench(b, experiment.ExtCameraFusion)
}
func BenchmarkExtensionProfileUpdate(b *testing.B) {
	figureBench(b, experiment.ExtProfileUpdate)
}
func BenchmarkExtensionHeadsetSlip(b *testing.B) {
	figureBench(b, experiment.ExtHeadsetSlip)
}

// BenchmarkAblationDerivativeDTW compares value DTW (what ViHOT uses)
// against derivative (shape-only) DTW on the raw matching primitive:
// derivative matching is offset-invariant but discards the absolute
// phase level that disambiguates head positions.
func BenchmarkAblationDerivativeDTW(b *testing.B) {
	m := dtw.NewMatcher(256)
	q := make([]float64, 12)
	profile := make([]float64, 600)
	for i := range q {
		q[i] = math.Sin(float64(i)*0.3) + 0.2 // constant offset vs profile
	}
	for i := range profile {
		profile[i] = math.Sin(float64(i) * 0.05)
	}
	lengths := dtw.CandidateLengths(12, 0.5, 2, 2, len(profile))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mv, err := m.Subsequence(q, profile, lengths, 2, dtw.Options{Window: 8})
		if err != nil {
			b.Fatal(err)
		}
		md, err := m.Subsequence(q, profile, lengths, 2, dtw.Options{Window: 8, Derivative: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mv.Dist, "value-dist")
		b.ReportMetric(md.Dist, "derivative-dist")
	}
}

// BenchmarkAblationSmoother compares raw per-window estimates against
// the optional Kalman-smoothed stream (an extension for AR rendering;
// the paper reports raw estimates).
func BenchmarkAblationSmoother(b *testing.B) {
	f := newFixture(b)
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.EstimateEveryS = 0.02
		tk, err := core.NewTracker(f.profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm := core.NewSmoother()
		var raw, smooth []float64
		for _, s := range f.phases {
			est, ok := tk.Push(s.T, s.V)
			if !ok {
				continue
			}
			truth := f.truth.HeadYaw.At(est.Time)
			raw = append(raw, geom.AngleDistDeg(est.Yaw, truth))
			smooth = append(smooth, geom.AngleDistDeg(sm.Update(est), truth))
		}
		b.ReportMetric(stats.Median(raw), "raw-median-deg")
		b.ReportMetric(stats.Median(smooth), "smoothed-median-deg")
	}
}

func BenchmarkExtensionPitchDisturbance(b *testing.B) {
	figureBench(b, experiment.ExtPitchDisturbance)
}
