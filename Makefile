# Tier-1 verification lives behind one target so every PR runs the
# same gate (see ROADMAP.md). Everything is stdlib Go — no tool deps.

GO ?= go

.PHONY: verify build test race vet fuzz-smoke

# verify is the tier-1 gate: vet + build + full test suite + the race
# runs that give the concurrency and fault-injection tests their teeth.
verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving engine's stress/soak tests and the fault injector only
# mean something under the race detector.
race:
	$(GO) test -race ./internal/serve ./internal/faults

# Short open-ended fuzz pass over the two adversarial-input surfaces.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSanitize -fuzztime=10s ./internal/csi
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wifi
