# Tier-1 verification lives behind one target so every PR runs the
# same gate (see ROADMAP.md). Everything is stdlib Go — no tool deps.

GO ?= go

.PHONY: verify build test race vet lint-walltime cover fuzz-smoke bench-obs bench-profilestore bench-journal bench-cluster bench-hotpath

# verify is the tier-1 gate: vet + the walltime lint + build + full
# test suite + the race runs that give the concurrency and
# fault-injection tests their teeth.
verify: vet lint-walltime build test race

vet:
	$(GO) vet ./...

# The deterministic packages must never read wall clocks: replay,
# golden traces, and the stream-time failure detector all depend on
# stream time alone. The allowlisted files are the known observability
# seams — stage-latency instrumentation that only runs when obs hooks
# are installed (core/pipeline.go, core/tracker.go) and the opt-in
# MeasureHandoff bench path (cluster/handoff.go). Anything else is a
# determinism regression and fails the gate.
WALLTIME_PKGS = internal/core internal/dtw internal/csi internal/dsp internal/rf internal/scenario internal/cluster
lint-walltime:
	@found=`grep -rn 'time\.Now' $(WALLTIME_PKGS) --include='*.go' \
		| grep -v '_test\.go' \
		| grep -v -e '^internal/core/pipeline\.go:' \
		          -e '^internal/core/tracker\.go:' \
		          -e '^internal/cluster/handoff\.go:' || true`; \
	if [ -n "$$found" ]; then \
		echo "lint-walltime: wall-clock reads in deterministic packages:"; \
		echo "$$found"; exit 1; \
	fi; echo "lint-walltime: clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving engine's stress/soak tests, the fault injector (now
# including the crash-recovery soak), the metrics registry (scraped
# concurrently with the hot path), the profile store's cold-key
# storms and per-policy invalidate-vs-inflight-load races, the
# scenario generator's concurrent replay, the write-behind journal's
# concurrent appenders, and the cluster's partition/failover chaos
# soak only mean something under the race detector.
race:
	$(GO) test -race ./internal/serve ./internal/faults ./internal/obs ./internal/profilestore ./internal/scenario ./internal/journal ./internal/cluster

# Per-package statement coverage summary (the README records the
# baseline). Writes the merged profile to COVER.out for drill-down
# with `go tool cover -html=COVER.out`.
cover:
	$(GO) test -coverprofile=COVER.out ./...
	$(GO) tool cover -func=COVER.out | tail -1

# Short open-ended fuzz pass over the adversarial-input surfaces.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSanitize -fuzztime=10s ./internal/csi
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wifi
	$(GO) test -fuzz=FuzzScenarioConfig -fuzztime=10s ./internal/scenario
	$(GO) test -fuzz=FuzzJournalDecode -fuzztime=10s ./internal/journal
	$(GO) test -fuzz=FuzzClusterDecode -fuzztime=10s ./internal/cluster

# Observability overhead benchmark: serving throughput with obs off vs
# metrics vs metrics+trace (DESIGN.md §9's overhead budget, measured).
bench-obs:
	$(GO) run ./cmd/vihot-bench -obsjson BENCH_obs.json

# Profile-store benchmark: cold disk load, zero-allocation hot hit,
# and a 64-goroutine contention run (DESIGN.md §10).
bench-profilestore:
	$(GO) run ./cmd/vihot-bench -profilejson BENCH_profilestore.json

# Durable-journal overhead benchmark: serving throughput with
# journaling off vs the default group commit vs fsync-per-record,
# with the logical-records vs syscalls split (DESIGN.md §13's ≤20%
# budget at the default batch, measured).
bench-journal:
	$(GO) run ./cmd/vihot-bench -journaljson BENCH_journal.json

# Serving hot-path benchmark: the session-manager scaling matrix plus
# the multi-core ingest grid (GOMAXPROCS × shards × sessions through
# SPSC producer lanes), with per-cell match-stage p95 and the
# runtime's mutex-wait contention proxy (DESIGN.md §16).
bench-hotpath:
	$(GO) run ./cmd/vihot-bench -servejson BENCH_serve.json

# Cluster routing benchmark: direct vs 1-node vs 4-node serving
# throughput (DESIGN.md §14's ≤15% routing-overhead budget, measured)
# plus drain-handoff latency percentiles over a loaded member.
bench-cluster:
	$(GO) run ./cmd/vihot-bench -clusterjson BENCH_cluster.json
