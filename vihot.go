// Package vihot is a from-scratch reproduction of ViHOT ("Wireless
// CSI-Based Head Tracking in the Driver Seat", CoNEXT '18): a
// device-free driver head-orientation tracker built on the phase of
// WiFi channel state information between a dashboard phone and a
// two-antenna in-car receiver.
//
// The package exposes the complete system:
//
//   - Profiling (Sec. 3.3): feed CSI phases and ground-truth
//     orientations while the driver sweeps their head at each seating
//     position; obtain a Profile.
//   - Tracking (Sec. 3.4): feed sanitized CSI phases; receive head
//     orientation estimates from DTW series matching, with position
//     estimation anchored on stable front-facing periods.
//   - Forecasting (Sec. 3.4.6): predict the orientation up to
//     hundreds of milliseconds ahead for speculative AR rendering.
//   - Steering identification and camera fallback (Sec. 3.6): feed
//     phone IMU readings; the pipeline quarantines steering-polluted
//     CSI and serves camera estimates meanwhile.
//
// Because the original hardware (Intel 5300 CSI tool, car, drivers) is
// not reproducible in software, the repository also ships a physical
// simulation substrate (cabin geometry, multipath RF, CFO/SFO
// hardware, CSMA link timing, driver behaviour) under internal/, and a
// Simulator facade here for experimentation without hardware. The
// sanitizer that converts raw two-antenna CSI frames to the phase
// stream (Eq. 3 of the paper) is exposed as SanitizeFrame.
package vihot

import (
	"net/http"

	"vihot/internal/camera"
	"vihot/internal/cluster"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/imu"
	"vihot/internal/journal"
	"vihot/internal/obs"
	"vihot/internal/profilestore"
	"vihot/internal/serve"
)

// Re-exported core types: the public API is a thin veneer over
// internal/core so examples, tools, and external users share one
// implementation.
type (
	// Profile is a driver's CSI profile P = {C₁…Cₙ}.
	Profile = core.Profile
	// Profiler builds a Profile from streamed samples.
	Profiler = core.Profiler
	// SweepRecording is the raw material of one profiled position.
	SweepRecording = core.SweepRecording
	// Tracker is the run-time position-orientation joint tracker.
	Tracker = core.Tracker
	// TrackerConfig tunes the tracker (window, DTW band, etc.).
	TrackerConfig = core.Config
	// Pipeline is the tracker plus steering identifier and fallback.
	Pipeline = core.Pipeline
	// PipelineConfig tunes the full pipeline.
	PipelineConfig = core.PipelineConfig
	// Estimate is one head-orientation output.
	Estimate = core.Estimate
	// Source labels where an estimate came from.
	Source = core.Source

	// Frame is one raw CSI measurement (per antenna, per subcarrier).
	Frame = csi.Frame
	// IMUReading is one phone IMU sample.
	IMUReading = imu.Reading
	// CameraEstimate is one fallback-camera output.
	CameraEstimate = camera.Estimate
)

// Estimate sources.
const (
	SourceCSI    = core.SourceCSI
	SourceFront  = core.SourceFront
	SourceHeld   = core.SourceHeld
	SourceCamera = core.SourceCamera
	// SourceCoast marks estimates forecast forward by the serving
	// engine while its CSI stream is starved (DESIGN.md §8).
	SourceCoast = core.SourceCoast
)

// NewProfiler returns a streaming profiler targeting the given match
// grid rate; 0 selects the default (100 Hz).
func NewProfiler(matchRateHz float64) *Profiler { return core.NewProfiler(matchRateHz) }

// BuildProfile processes raw sweep recordings into a matchable
// profile.
func BuildProfile(recs []SweepRecording, matchRateHz float64) (*Profile, error) {
	return core.BuildProfile(recs, matchRateHz)
}

// DefaultTrackerConfig mirrors the paper's default system
// configuration (100 ms window, [0.5W, 2W] DTW candidates).
func DefaultTrackerConfig() TrackerConfig { return core.DefaultConfig() }

// DefaultPipelineConfig enables the steering identifier with tracker
// defaults.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultPipelineConfig() }

// NewTracker builds a run-time tracker over a profile.
func NewTracker(p *Profile, cfg TrackerConfig) (*Tracker, error) {
	return core.NewTracker(p, cfg)
}

// NewPipeline builds the full run-time pipeline (tracker + steering
// identifier + camera fallback) over a profile.
func NewPipeline(p *Profile, cfg PipelineConfig) (*Pipeline, error) {
	return core.NewPipeline(p, cfg)
}

// SanitizeFrame implements the paper's Eq. (3): it converts a raw
// two-antenna CSI frame into the single phase observation the tracker
// consumes, cancelling CFO/SFO via the antenna difference and
// averaging across subcarriers.
func SanitizeFrame(f *Frame) (float64, error) { return csi.Sanitize(f, 0, 1) }

// SaveProfile persists a driver profile to a file in the versioned
// profile format (magic + version + checksum); profiles survive
// across trips (Sec. 5.2.4: a week-old profile still tracks well).
func SaveProfile(path string, p *Profile) error { return core.SaveProfile(path, p) }

// LoadProfile reads a previously saved driver profile, accepting both
// the current versioned format and the legacy unversioned encoding
// (cmd/vihot-profile migrate upgrades the latter). Loaded profiles
// are validated: corrupt files and non-finite grid values are
// rejected, never returned.
func LoadProfile(path string) (*Profile, error) { return core.LoadProfile(path) }

// Profile lifecycle at fleet scale: profiles are immutable once built
// (see core.Profile's contract), carry a 64-bit content fingerprint
// (Profile.Fingerprint), and resolve by driver/cabin key through a
// ProfileStore — a sharded cache with pluggable eviction (LRU, LFU,
// 2Q), optional doorkeeper admission, and singleflight deduplication
// of concurrent cold loads, sharing one instance across every session
// opened for the same driver (SessionManagerConfig.Profiles +
// SessionManager.OpenByKey / OpenSessionsByKey, ProfileStore.GetMany
// for batch resolution).
type (
	// ProfileStore resolves profiles by key through a sharded cache
	// with singleflight load deduplication.
	ProfileStore = profilestore.Store
	// ProfileStoreConfig tunes shard count, capacity, eviction policy,
	// admission control, loader, and metrics registration.
	ProfileStoreConfig = profilestore.Config
	// ProfilePolicy selects the store's eviction policy.
	ProfilePolicy = profilestore.Policy
	// ProfileLoader fetches a profile on a cache miss.
	ProfileLoader = profilestore.Loader
	// ProfileLoaderFunc adapts a function to ProfileLoader.
	ProfileLoaderFunc = profilestore.LoaderFunc
	// ProfileStoreStats is one observation of the store's counters.
	ProfileStoreStats = profilestore.Stats
	// ProfileDirLoader loads <dir>/<key>.profile files.
	ProfileDirLoader = profilestore.DirLoader
	// KeyedOpen names one session of a batch open: its session ID and
	// profile key (SessionManager.OpenSessionsByKey).
	KeyedOpen = serve.KeyedOpen
)

// Eviction policies for ProfileStoreConfig.Policy.
const (
	// ProfilePolicyLRU evicts the least recently used profile
	// (default; the v1 store's exact behavior).
	ProfilePolicyLRU = profilestore.PolicyLRU
	// ProfilePolicyLFU evicts the least frequently used profile,
	// least-recent among ties.
	ProfilePolicyLFU = profilestore.PolicyLFU
	// ProfilePolicy2Q runs the classic 2Q scheme: a FIFO probation
	// queue, a protected main queue, and a ghost queue of recently
	// evicted keys — scan-resistant without frequency counters.
	ProfilePolicy2Q = profilestore.Policy2Q
)

// ParseProfilePolicy parses "lru", "lfu", or "2q" (also "twoq"); the
// empty string selects the LRU default.
func ParseProfilePolicy(s string) (ProfilePolicy, error) { return profilestore.ParsePolicy(s) }

// NewProfileStore builds a profile store; see ProfileStoreConfig.
func NewProfileStore(cfg ProfileStoreConfig) *ProfileStore { return profilestore.New(cfg) }

// NewProfileDirLoader builds the flat-directory loader
// (<dir>/<key>.profile, either on-disk encoding).
func NewProfileDirLoader(dir string) *ProfileDirLoader { return profilestore.NewDirLoader(dir) }

// ProfileQuality is the post-profiling fitness report: span, swing,
// sample depth, and fingerprint-aliasing warnings.
type ProfileQuality = core.QualityReport

// NewSmoother returns an optional constant-velocity Kalman filter for
// AR-grade smoothing of the estimate stream; see core.Smoother.
func NewSmoother() *Smoother { return core.NewSmoother() }

// Smoother smooths the estimate stream (see NewSmoother).
type Smoother = core.Smoother

// Multi-session serving: one process tracking many drivers at once.
// See the internal/serve package comment for the concurrency model
// (shard ownership, per-session ordering, load shedding).
type (
	// SessionManager runs many independent tracking sessions, sharded
	// across worker goroutines.
	SessionManager = serve.Manager
	// SessionManagerConfig tunes shard count, queue bounds, the
	// estimate sink, idle-session reaping (SessionTTLS/OnReap), and
	// pooled-frame recycling (RecycleFrames). See DESIGN.md §11 for
	// the lifecycle contract.
	SessionManagerConfig = serve.Config
	// SessionItem is one ingested sample addressed to a session.
	SessionItem = serve.Item
	// SessionCounters is a snapshot of a manager's traffic counters.
	SessionCounters = serve.CounterSnapshot
	// SessionHealth is a session's degradation state (DESIGN.md §8).
	SessionHealth = serve.Health
	// SessionHealthConfig tunes the degradation state machine's
	// staleness thresholds and coasting cadence.
	SessionHealthConfig = serve.HealthConfig
)

// Degradation states, in order of decreasing confidence. A session
// moves down this ladder as its CSI stream starves (stream time, not
// wall clock) and climbs back after sustained clean flow; query with
// SessionManager.Health or subscribe via Config.OnHealth /
// Config.OnEstimateHealth.
const (
	SessionHealthy  = serve.Healthy
	SessionDegraded = serve.Degraded
	SessionCoasting = serve.Coasting
	SessionStale    = serve.Stale
)

// Session item kinds.
const (
	SessionItemPhase  = serve.KindPhase
	SessionItemFrame  = serve.KindFrame
	SessionItemIMU    = serve.KindIMU
	SessionItemCamera = serve.KindCamera
)

// NewSessionManager starts a concurrent multi-driver tracking engine:
// open one session per driver (each over that driver's Profile), then
// feed interleaved samples with Push/PushBatch from any number of
// goroutines (one per session's stream). CloseDrain processes
// everything already queued and then stops (the books balance
// exactly); Close stops immediately, accounting the abandoned
// backlog. Both are idempotent.
func NewSessionManager(cfg SessionManagerConfig) *SessionManager { return serve.New(cfg) }

// Durable journaling: the crash-recoverable estimate/health journal
// of internal/journal, re-exported because
// SessionManagerConfig.Journal takes the writer. The manager appends
// every estimate, health transition, reap, and close; a restart
// replays the file (tolerating a torn tail from a crash mid-write)
// back to the terminal per-session state. See DESIGN.md §13 for the
// record format, the write-behind group-commit contract, and the
// fsync policy.
type (
	// JournalWriter is the write-behind appender sessions journal
	// through; the caller closes it after the manager has drained.
	JournalWriter = journal.Writer
	// JournalConfig tunes the group commit (batch size, stream-time
	// interval, queue bound) and the fsync policy.
	JournalConfig = journal.Config
	// JournalRecord is one decoded journal record.
	JournalRecord = journal.Record
	// JournalStats is a snapshot of a writer's append/commit counters.
	JournalStats = journal.Stats
	// JournalRecoverResult is the state a journal replays back to.
	JournalRecoverResult = journal.RecoverResult
	// JournalSessionState is one session's recovered terminal state.
	JournalSessionState = journal.SessionState
	// JournalSyncPolicy selects when the journal fsyncs.
	JournalSyncPolicy = journal.SyncPolicy
)

// Journal fsync policies.
const (
	JournalSyncBatch  = journal.SyncBatch
	JournalSyncNone   = journal.SyncNone
	JournalSyncAlways = journal.SyncAlways
)

// NewJournalWriter builds a write-behind journal over an arbitrary
// writer (syncing too, when it implements journal.Syncer).
func NewJournalWriter(cfg JournalConfig) (*JournalWriter, error) { return journal.New(cfg) }

// OpenJournalFile opens (creating or appending to) a journal file the
// writer owns; pair with RepairJournalFile on start after a crash.
func OpenJournalFile(path string, cfg JournalConfig) (*JournalWriter, error) {
	return journal.OpenFile(path, cfg)
}

// RecoverJournalFile replays a journal file to its terminal state,
// tolerating a truncated or torn tail (reported in the result's
// diagnostics, never as an error). A missing file recovers empty.
func RecoverJournalFile(path string) (*JournalRecoverResult, error) {
	return journal.RecoverFile(path)
}

// RepairJournalFile recovers a journal file and, if it ends in a torn
// record, truncates it back to the last valid record so appending can
// resume at a record boundary.
func RepairJournalFile(path string) (*JournalRecoverResult, error) {
	return journal.RepairFile(path)
}

// Observability: the zero-dependency metrics/tracing layer of
// internal/obs, re-exported because SessionManagerConfig.Metrics and
// .Trace take these types. Everything is opt-in — a manager built
// without them reads no instrumentation clocks (DESIGN.md §9).
type (
	// MetricsRegistry holds counters, gauges, and latency histograms
	// with atomic hot paths, exposable in Prometheus text format.
	MetricsRegistry = obs.Registry
	// StreamTracer records per-stage latency spans anchored at stream
	// time into a fixed-capacity ring.
	StreamTracer = obs.Tracer
	// TraceSpan is one recorded stage interval.
	TraceSpan = obs.Span
	// TraceDump is a tracer snapshot (oldest span first).
	TraceDump = obs.TraceDump
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewStreamTracer builds a span tracer holding the last capacity spans
// (<=0 selects the default of 65536).
func NewStreamTracer(capacity int) *StreamTracer { return obs.NewTracer(capacity) }

// ObsMux mounts /metrics (Prometheus text), /debug/pprof/, and — when
// tr is non-nil — /trace (span dump JSON) on a new mux, for embedding
// the observability endpoints in an existing server.
func ObsMux(r *MetricsRegistry, tr *StreamTracer) *http.ServeMux { return obs.NewMux(r, tr) }

// ServeObs starts the observability endpoints on addr (":0" picks a
// port; the returned server's Addr field holds the bound address).
// Close the returned server to stop it.
func ServeObs(addr string, r *MetricsRegistry, tr *StreamTracer) (*http.Server, error) {
	srv, _, err := obs.Serve(addr, r, tr)
	return srv, err
}

// Distributed serving: the consistent-hash cluster tier of
// internal/cluster, re-exported for embedding a multi-node fleet —
// sessions hashed onto N member nodes, profiles replicated on open,
// stream-time heartbeat failure detection, and journal-backed session
// handoff on drain and failover (DESIGN.md §14).
type (
	// Cluster is the coordinator: ring, routing directory, failure
	// detector, and handoff engine over N in-process member nodes.
	Cluster = cluster.Cluster
	// ClusterConfig sets the static membership and tunes heartbeats,
	// estimate backflow, the per-node serving template, the handoff
	// journal, and fault/observability hooks.
	ClusterConfig = cluster.Config
	// ClusterStats is a snapshot of the coordinator's ledger; Routed ==
	// Delivered + the three attributed drop counters, exactly.
	ClusterStats = cluster.Stats
	// ClusterHandoffEvent is one session transfer (drain or failover).
	ClusterHandoffEvent = cluster.HandoffEvent
)

// NewCluster starts a distributed serving tier over the given static
// membership: open sessions with Open (the profile replicates to every
// live member), feed them with Push/PushBatch, retire a member with
// DrainNode, and let the stream-time heartbeat fail sessions over when
// a member dies.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }
