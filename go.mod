module vihot

go 1.22
