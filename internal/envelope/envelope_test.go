package envelope

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

var testSpec = Spec{Magic: "TeSt", Version: 3, MaxPayload: 1 << 20}

// TestHeaderLayout pins the exact byte layout the profile format has
// shipped since PR 4: the extraction must not move a single byte, or
// every profile on disk becomes unreadable.
func TestHeaderLayout(t *testing.T) {
	payload := []byte("hello, cabin")
	got := Append(nil, testSpec, payload)
	if len(got) != HeaderLen+len(payload) {
		t.Fatalf("framed length = %d, want %d", len(got), HeaderLen+len(payload))
	}
	if string(got[0:4]) != "TeSt" {
		t.Errorf("magic bytes = %q", got[0:4])
	}
	if v := binary.BigEndian.Uint16(got[4:6]); v != 3 {
		t.Errorf("version = %d, want 3", v)
	}
	if rsv := binary.BigEndian.Uint16(got[6:8]); rsv != 0 {
		t.Errorf("reserved = %#04x, want 0", rsv)
	}
	if n := binary.BigEndian.Uint64(got[8:16]); n != uint64(len(payload)) {
		t.Errorf("length = %d, want %d", n, len(payload))
	}
	if c := binary.BigEndian.Uint32(got[16:20]); c != crc32.ChecksumIEEE(payload) {
		t.Errorf("crc = %08x, want %08x", c, crc32.ChecksumIEEE(payload))
	}
	if !bytes.Equal(got[HeaderLen:], payload) {
		t.Errorf("payload bytes differ")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("a"), bytes.Repeat([]byte{0xAB}, 1000), []byte("final")}
	for _, p := range payloads {
		if err := Write(&buf, testSpec, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, v, err := Read(r, testSpec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if v != testSpec.Version {
			t.Errorf("record %d: version = %d", i, v)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record %d: payload mismatch", i)
		}
	}
	if _, _, err := Read(r, testSpec); err != io.EOF {
		t.Fatalf("end of stream: err = %v, want io.EOF", err)
	}
}

// TestReadOlderVersion proves forward compatibility: a reader accepts
// every version from 1 up to its own.
func TestReadOlderVersion(t *testing.T) {
	old := testSpec
	old.Version = 1
	framed := Append(nil, old, []byte("v1 payload"))
	if _, v, err := Read(bytes.NewReader(framed), testSpec); err != nil || v != 1 {
		t.Fatalf("Read v1 with v3 spec: v=%d err=%v", v, err)
	}
}

func TestCorruptInputs(t *testing.T) {
	payload := []byte("some payload bytes")
	good := Append(nil, testSpec, payload)
	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		return b
	}
	newer := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(newer[4:6], testSpec.Version+1)
	vzero := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(vzero[4:6], 0)
	huge := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(huge[8:16], testSpec.MaxPayload+1)
	zero := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(zero[8:16], 0)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"truncated header", good[:HeaderLen-3], ErrTruncated},
		{"truncated payload", good[:len(good)-2], ErrTruncated},
		{"bad magic", flip(1), ErrMagic},
		{"version bit flip", flip(5), ErrVersion},
		{"version zero", vzero, ErrVersion},
		{"future version", newer, ErrVersion},
		{"reserved set", flip(6), ErrReserved},
		{"zero length", zero, ErrLength},
		{"huge length", huge, ErrLength},
		{"checksum bit", flip(17), ErrChecksum},
		{"payload bit", flip(HeaderLen + 4), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Read(bytes.NewReader(tc.in), testSpec)
			if tc.want == io.EOF {
				if err != io.EOF {
					t.Fatalf("err = %v, want io.EOF", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestAppendToExisting proves Append extends rather than replaces.
func TestAppendToExisting(t *testing.T) {
	prefix := []byte("prefix")
	out := Append(append([]byte(nil), prefix...), testSpec, []byte("xyz"))
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatal("Append clobbered existing bytes")
	}
	if _, _, err := Read(bytes.NewReader(out[len(prefix):]), testSpec); err != nil {
		t.Fatal(err)
	}
}
