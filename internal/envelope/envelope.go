// Package envelope implements the versioned, self-describing record
// envelope shared by every on-disk format in the repo: driver
// profiles (internal/core persistence, PR 4) and journal records
// (internal/journal) frame their payloads identically, so one codec —
// and one set of corruption checks — backs both.
//
// # Wire layout
//
//	offset  size  field
//	0       4     magic (format-specific, e.g. "ViHP", "ViHJ")
//	4       2     format version, big-endian uint16 (≥ 1)
//	6       2     reserved, must be zero
//	8       8     payload length, big-endian uint64
//	16      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	20      n     payload
//
// The envelope is deliberately boring: fixed-width big-endian header,
// a checksum over the payload only (a flipped header bit fails the
// magic/version/reserved/length checks instead), and a caller-supplied
// payload cap so a corrupt length field can never translate into an
// arbitrary-size allocation.
//
// # Error taxonomy
//
// Every structural failure wraps ErrCorrupt. Read additionally
// distinguishes a clean end of stream (io.EOF: zero bytes where a
// record could start) from a torn one (ErrTruncated: a partial header
// or payload) — the distinction crash recovery is built on: a clean
// EOF ends a replay, a torn tail marks the crash point.
package envelope

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// HeaderLen is the fixed envelope size before the payload.
const HeaderLen = 20

// MagicLen is the required magic length.
const MagicLen = 4

// Structural failures. All wrap ErrCorrupt; Read can also return plain
// io.EOF for a clean end of stream.
var (
	// ErrCorrupt is the root of every structural decode failure.
	ErrCorrupt = errors.New("envelope: corrupt envelope")
	// ErrTruncated marks a header or payload cut short mid-record —
	// the signature of a torn write or a crash mid-commit.
	ErrTruncated = fmt.Errorf("%w: truncated record", ErrCorrupt)
	// ErrMagic marks a header whose magic is not the expected one.
	ErrMagic = fmt.Errorf("%w: bad magic", ErrCorrupt)
	// ErrVersion marks an unsupported format version (0, or newer
	// than the reader accepts).
	ErrVersion = fmt.Errorf("%w: unsupported version", ErrCorrupt)
	// ErrReserved marks nonzero reserved header bytes.
	ErrReserved = fmt.Errorf("%w: reserved bytes set", ErrCorrupt)
	// ErrLength marks an implausible payload length (zero, or past
	// the spec's cap).
	ErrLength = fmt.Errorf("%w: implausible payload length", ErrCorrupt)
	// ErrChecksum marks a payload whose CRC-32 does not match.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
)

// Spec names one enveloped format: its magic, the version this build
// writes (and the highest it reads), and the payload-size cap a
// reader will believe.
type Spec struct {
	// Magic is the 4-byte format tag ("ViHP", "ViHJ", ...).
	Magic string
	// Version is written by Append/Write; Read accepts 1..Version.
	Version uint16
	// MaxPayload caps the length field a reader trusts.
	MaxPayload uint64
}

// check panics on a malformed spec — specs are compile-time constants
// of their format packages, so a bad one is a programming error.
func (s Spec) check() {
	if len(s.Magic) != MagicLen {
		panic(fmt.Sprintf("envelope: magic %q is not %d bytes", s.Magic, MagicLen))
	}
	if s.Version == 0 {
		panic("envelope: version 0 is reserved")
	}
	if s.MaxPayload == 0 {
		panic("envelope: zero MaxPayload")
	}
}

// Append frames payload in one envelope and appends it to dst,
// returning the extended slice. Empty payloads are rejected by Read,
// so Append refuses to write one.
func Append(dst []byte, spec Spec, payload []byte) []byte {
	spec.check()
	if len(payload) == 0 {
		panic("envelope: empty payload")
	}
	var hdr [HeaderLen]byte
	copy(hdr[0:4], spec.Magic)
	binary.BigEndian.PutUint16(hdr[4:6], spec.Version)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Write frames payload in one envelope and writes it to w.
func Write(w io.Writer, spec Spec, payload []byte) error {
	_, err := w.Write(Append(nil, spec, payload))
	return err
}

// Read consumes one enveloped record from r and returns its payload
// and version. At a clean end of stream (no bytes where a record could
// start) it returns io.EOF; a partial header or payload returns
// ErrTruncated; every other structural failure wraps ErrCorrupt.
func Read(r io.Reader, spec Spec) (payload []byte, version uint16, err error) {
	spec.check()
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w (header: %v)", ErrTruncated, err)
	}
	if string(hdr[0:4]) != spec.Magic {
		return nil, 0, fmt.Errorf("%w (have %q, want %q)", ErrMagic, hdr[0:4], spec.Magic)
	}
	version = binary.BigEndian.Uint16(hdr[4:6])
	if version == 0 || version > spec.Version {
		return nil, 0, fmt.Errorf("%w (%d; this build reads <= %d)", ErrVersion, version, spec.Version)
	}
	if rsv := binary.BigEndian.Uint16(hdr[6:8]); rsv != 0 {
		return nil, 0, fmt.Errorf("%w (%#04x)", ErrReserved, rsv)
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n == 0 || n > spec.MaxPayload {
		return nil, 0, fmt.Errorf("%w (%d)", ErrLength, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w (payload: %v)", ErrTruncated, err)
	}
	want := binary.BigEndian.Uint32(hdr[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("%w (have %08x, want %08x)", ErrChecksum, got, want)
	}
	return payload, version, nil
}
