package faults

import (
	"strings"
	"testing"

	"vihot/internal/imu"
	"vihot/internal/obs"
	"vihot/internal/serve"
)

// TestBindMetricsMirrorsStats drives an injector hard enough to hit
// every fault family and checks the registry-backed counters agree
// with the plain Stats ints they shadow.
func TestBindMetricsMirrorsStats(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Config{
		Seed:         3,
		Packet:       PacketConfig{Loss: 0.2, Dup: 0.2, Reorder: 0.2, Corrupt: 0.2},
		Clock:        ClockConfig{JitterStd: 0.0001, Regress: 0.1, Dup: 0.1},
		CSIBlackouts: []Window{{Start: 0.2, End: 0.4}},
	})
	in.BindMetrics(reg)

	// Phases exercise the stream-level faults; IMU readings round-trip
	// the wire, exercising the packet layer.
	items := make([]serve.Item, 0, 1200)
	for i := 0; i < 600; i++ {
		t := float64(i) * 0.002
		items = append(items,
			serve.Item{Kind: serve.KindPhase, Time: t, Phi: 0.1},
			serve.Item{Kind: serve.KindIMU, IMU: imu.Reading{Time: t, GyroZ: 1}},
		)
	}
	_ = in.Pump("s1", items)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	expect := map[string]int{
		`vihot_faults_items_total`:                      in.Stats.Items,
		`vihot_faults_injected_total{fault="blackout"}`: in.Stats.BlackedOut,
		`vihot_faults_injected_total{fault="jitter"}`:   in.Stats.Jittered,
		`vihot_faults_injected_total{fault="regress"}`:  in.Stats.Regressed,
		`vihot_faults_injected_total{fault="dup"}`:      in.Stats.DupItems,
		`vihot_faults_packets_total{fate="sent"}`:       in.Packet().Stats.Sent,
		`vihot_faults_packets_total{fate="lost"}`:       in.Packet().Stats.Lost,
		`vihot_faults_packets_total{fate="duplicated"}`: in.Packet().Stats.Duplicated,
		`vihot_faults_packets_total{fate="reordered"}`:  in.Packet().Stats.Reordered,
		`vihot_faults_packets_total{fate="corrupted"}`:  in.Packet().Stats.Corrupted,
	}
	for series, stat := range expect {
		if stat == 0 {
			t.Errorf("fault schedule never exercised %s", series)
		}
		want := series + " " + itoa(stat)
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestBindMetricsSharedSeries: two injectors bound to one registry
// accumulate into the same series (idempotent registration).
func TestBindMetricsSharedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	a, b := New(Config{Seed: 1}), New(Config{Seed: 2})
	a.BindMetrics(reg)
	b.BindMetrics(reg)
	items := []serve.Item{{Kind: serve.KindPhase, Time: 0.1, Phi: 0}}
	a.Apply(items)
	b.Apply(items)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vihot_faults_items_total 2\n") {
		t.Fatalf("injectors did not share the items series:\n%s", sb.String())
	}
}

// TestUnboundInjectorNoops: injecting without BindMetrics must work
// (all shadow counters nil).
func TestUnboundInjectorNoops(t *testing.T) {
	in := New(Config{Seed: 1, Clock: ClockConfig{JitterStd: 0.001}})
	out := in.Apply([]serve.Item{{Kind: serve.KindPhase, Time: 0.1, Phi: 0}})
	if len(out) != 1 || in.Stats.Items != 1 {
		t.Fatalf("unbound injector misbehaved: %d items, %+v", len(out), in.Stats)
	}
}

func itoa(v int) string {
	if v < 0 {
		panic("negative stat")
	}
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
