package faults

import "vihot/internal/obs"

// Metric shadows of the Stats counters. Stats stays plain ints — the
// injector's single-goroutine contract makes them exact and cheap, and
// tests assert on them — while the *obs.Counter fields below are an
// optional second tally into a shared registry so a scrape sees fault
// traffic across every concurrent car. Unbound injectors hold nil
// counters, whose Add is a no-op: injection without a registry costs
// one nil check per event.
//
// Registration is idempotent by (name, labels), so any number of
// per-session injectors bound to the same registry accumulate into the
// same series — the fleet-wide totals are what an operator wants.
type injectorMetrics struct {
	items        *obs.Counter
	blackedOut   *obs.Counter
	jittered     *obs.Counter
	regressed    *obs.Counter
	dupItems     *obs.Counter
	wireIn       *obs.Counter
	wireOut      *obs.Counter
	encodeErrors *obs.Counter
	decodeErrors *obs.Counter
}

// BindMetrics mirrors this injector's Stats into registry-backed
// counters (vihot_faults_*), including its packet sub-injector. Safe to
// call on any number of injectors sharing one registry; a nil registry
// is ignored. Call before injecting — binding is not synchronized with
// a running injector.
func (in *Injector) BindMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	fault := func(kind string) *obs.Counter {
		return r.Counter("vihot_faults_injected_total",
			"stream-level faults injected, by fault kind", "fault", kind)
	}
	wire := func(dir string) *obs.Counter {
		return r.Counter("vihot_faults_wire_datagrams_total",
			"datagrams through the injected wire, by direction", "dir", dir)
	}
	codec := func(op string) *obs.Counter {
		return r.Counter("vihot_faults_codec_errors_total",
			"wire codec failures during pump, by operation", "op", op)
	}
	in.m = injectorMetrics{
		items:        r.Counter("vihot_faults_items_total", "items offered to the fault injector"),
		blackedOut:   fault("blackout"),
		jittered:     fault("jitter"),
		regressed:    fault("regress"),
		dupItems:     fault("dup"),
		wireIn:       wire("in"),
		wireOut:      wire("out"),
		encodeErrors: codec("encode"),
		decodeErrors: codec("decode"),
	}
	in.packet.BindMetrics(r)
}

// packetMetrics shadows PacketStats; see injectorMetrics.
type packetMetrics struct {
	sent       *obs.Counter
	lost       *obs.Counter
	duplicated *obs.Counter
	reordered  *obs.Counter
	corrupted  *obs.Counter
}

// BindMetrics mirrors this packet injector's Stats into
// vihot_faults_packets_total{fate=...}. A nil registry is ignored.
func (pi *PacketInjector) BindMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	fate := func(what string) *obs.Counter {
		return r.Counter("vihot_faults_packets_total",
			"datagram fates in the wire-fault channel", "fate", what)
	}
	pi.m = packetMetrics{
		sent:       fate("sent"),
		lost:       fate("lost"),
		duplicated: fate("duplicated"),
		reordered:  fate("reordered"),
		corrupted:  fate("corrupted"),
	}
}
