// Package faults is a deterministic, seeded fault-injection layer for
// the serving stack. It reproduces — on demand and bit-reproducibly —
// the failure modes a deployed ViHOT receiver actually faces:
//
//   - UDP transport faults: packet loss, duplication, reordering, and
//     bit corruption ([PacketInjector], composable over any
//     [RawSender] such as wifi.Sender, or in-process via
//     [Injector.Pump]).
//   - CSI measurement faults: burst-noise episodes and antenna-dropout
//     episodes that leave the link alive but the sanitizer starved
//     ([CSICorruptor]).
//   - Sensor outages: windows during which CSI, IMU, or camera items
//     simply never arrive ([Config.CSIBlackouts] and friends).
//   - Clock faults: timestamp jitter, regressions, and duplicated
//     deliveries ([ClockConfig]).
//
// Nothing under test changes to be testable: the injector sits between
// a scenario's item stream and serve.Manager (or between an encoder
// and a socket) and mutates traffic in flight.
//
// # Determinism
//
// Every random decision derives from [Config.Seed] through a fixed
// fork order (packet, CSI, clock), so one seed fully determines the
// fault schedule: the same config applied to the same input stream
// yields the same output stream, byte for byte, run after run. Fault
// windows are expressed in stream time, not wall time, so a schedule
// replays identically at any execution speed.
//
// An Injector (like the sender it models) is single-goroutine: one
// phone, one socket, one injector. Use one Injector per session.
package faults

import (
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// Window is a half-open fault interval [Start, End) in stream seconds.
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// anyContains reports whether any window contains t.
func anyContains(ws []Window, t float64) bool {
	for _, w := range ws {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// ClockConfig injects timestamp faults: the misbehaviors of a phone
// whose clock steps, a driver that replays a capture, or a hostile
// sender. The serving stack is expected to reject the damage
// deterministically (serve counts it in RejectedTime).
type ClockConfig struct {
	// JitterStd is a Gaussian perturbation (seconds) applied to every
	// item timestamp. Small values reorder nearby items.
	JitterStd float64
	// Regress is the probability an item's timestamp is yanked
	// backwards by RegressBy seconds.
	Regress float64
	// RegressBy is the regression distance. Default 0.5.
	RegressBy float64
	// Dup is the probability an item is delivered twice.
	Dup float64
}

// Config is a full fault schedule. The zero value injects nothing.
type Config struct {
	// Seed determines every random decision below.
	Seed int64

	// Packet configures wire-level datagram faults (applied by Pump and
	// by Sender).
	Packet PacketConfig
	// CSI configures measurement-level CSI corruption.
	CSI CSIConfig
	// Clock configures timestamp faults.
	Clock ClockConfig

	// CSIBlackouts are windows during which no CSI item (frame or
	// phase) is delivered at all — the probe stream is gone.
	CSIBlackouts []Window
	// IMUOutages are windows during which IMU readings are dropped.
	IMUOutages []Window
	// CameraOutages are windows during which camera estimates are
	// dropped.
	CameraOutages []Window
}

// Stats tallies what one Injector did. Plain ints: an Injector is
// single-goroutine by contract.
type Stats struct {
	Items        int // items offered to Apply/Pump
	BlackedOut   int // items swallowed by an outage window
	Jittered     int // timestamps perturbed
	Regressed    int // timestamps yanked backwards
	DupItems     int // items delivered twice at the stream level
	WireIn       int // datagrams offered to the packet layer by Pump
	WireOut      int // datagrams decoded back out of the packet layer
	EncodeErrors int // items that failed wire encoding (dropped)
	DecodeErrors int // datagrams that failed decoding after faults (dropped)
}

// Injector composes every fault family over a serve.Item stream.
type Injector struct {
	cfg    Config
	packet *PacketInjector
	corr   *CSICorruptor
	clock  *stats.RNG
	buf    []byte

	// Stats is updated in place as the injector runs.
	Stats Stats
	// m optionally shadows Stats into a shared obs registry; see
	// BindMetrics. All-nil (no-op) until bound.
	m injectorMetrics
}

// New builds an Injector. All randomness derives from cfg.Seed through
// a fixed fork order (packet, CSI, clock), so each subsystem's
// schedule is independent of whether the others are enabled.
func New(cfg Config) *Injector {
	root := stats.NewRNG(cfg.Seed)
	pkRNG := root.Fork()
	csRNG := root.Fork()
	ckRNG := root.Fork()
	return &Injector{
		cfg:    cfg,
		packet: NewPacketInjector(cfg.Packet, pkRNG),
		corr:   NewCSICorruptor(cfg.CSI, csRNG),
		clock:  ckRNG,
	}
}

// Packet exposes the wire-fault sub-injector (for wrapping a live
// socket with NewSender).
func (in *Injector) Packet() *PacketInjector { return in.packet }

// CSI exposes the measurement-fault sub-injector.
func (in *Injector) CSI() *CSICorruptor { return in.corr }

// Apply runs a batch of items through the stream-level faults — outage
// windows, CSI corruption, clock faults — and returns the surviving
// (possibly mutated, possibly duplicated) items in delivery order.
// Wire-level packet faults are NOT applied; use Pump for the full
// chain. Input items are never mutated: faulted frames are deep
// copies.
func (in *Injector) Apply(items []serve.Item) []serve.Item {
	out := make([]serve.Item, 0, len(items))
	for _, it := range items {
		out = in.applyOne(out, it)
	}
	return out
}

// Pump is Apply followed by the wire: every surviving KindFrame and
// KindIMU item is encoded with the real wire format, passed through
// the packet-fault layer (loss, duplication, reordering, bit
// corruption), and decoded again — exactly the traffic a
// wifi.Receiver behind a lossy link would hand a session keyed to
// this sender. KindPhase and KindCamera items have no wire
// representation (they are receiver-local) and pass through in stream
// position. Packets still held for reordering when the batch ends are
// flushed at the tail, and every emitted item is stamped with the
// given session.
func (in *Injector) Pump(session string, items []serve.Item) []serve.Item {
	faulted := in.Apply(items)
	out := make([]serve.Item, 0, len(faulted))
	for _, it := range faulted {
		switch it.Kind {
		case serve.KindFrame:
			b, err := wifi.EncodeCSI(in.buf[:0], it.Frame)
			if err != nil {
				in.Stats.EncodeErrors++
				in.m.encodeErrors.Add(1)
				continue
			}
			in.buf = b[:0]
			in.Stats.WireIn++
			in.m.wireIn.Add(1)
			_ = in.packet.Apply(b, in.decodeEmit(&out, session))
		case serve.KindIMU:
			r := it.IMU
			b := wifi.EncodeIMU(in.buf[:0], &r)
			in.buf = b[:0]
			in.Stats.WireIn++
			in.m.wireIn.Add(1)
			_ = in.packet.Apply(b, in.decodeEmit(&out, session))
		default:
			it.Session = session
			out = append(out, it)
		}
	}
	_ = in.packet.Flush(in.decodeEmit(&out, session))
	return out
}

// decodeEmit is the receiver side of Pump: decode one post-fault
// datagram and append the resulting item. Undecodable datagrams are
// counted and dropped, as a real receive loop would.
func (in *Injector) decodeEmit(out *[]serve.Item, session string) func([]byte) error {
	return func(d []byte) error {
		pkt, err := wifi.Decode(d)
		if err != nil {
			in.Stats.DecodeErrors++
			in.m.decodeErrors.Add(1)
			return nil
		}
		in.Stats.WireOut++
		in.m.wireOut.Add(1)
		switch pkt.Type {
		case wifi.TypeCSI:
			*out = append(*out, serve.Item{Session: session, Kind: serve.KindFrame, Frame: pkt.CSI})
		case wifi.TypeIMU:
			*out = append(*out, serve.Item{Session: session, Kind: serve.KindIMU, IMU: *pkt.IMU})
		}
		return nil
	}
}

// applyOne applies outage windows, CSI corruption, and clock faults to
// one item, appending 0, 1, or 2 items to out.
func (in *Injector) applyOne(out []serve.Item, it serve.Item) []serve.Item {
	in.Stats.Items++
	in.m.items.Add(1)
	t := itemTime(it)
	switch it.Kind {
	case serve.KindPhase, serve.KindFrame:
		if anyContains(in.cfg.CSIBlackouts, t) {
			in.Stats.BlackedOut++
			in.m.blackedOut.Add(1)
			return out
		}
	case serve.KindIMU:
		if anyContains(in.cfg.IMUOutages, t) {
			in.Stats.BlackedOut++
			in.m.blackedOut.Add(1)
			return out
		}
	case serve.KindCamera:
		if anyContains(in.cfg.CameraOutages, t) {
			in.Stats.BlackedOut++
			in.m.blackedOut.Add(1)
			return out
		}
	}
	switch it.Kind {
	case serve.KindFrame:
		it.Frame = in.corr.Frame(it.Frame)
	case serve.KindPhase:
		it.Phi = in.corr.Phase(it.Time, it.Phi)
	}
	cc := in.cfg.Clock
	if cc.JitterStd > 0 {
		setItemTime(&it, t+in.clock.Normal(0, cc.JitterStd))
		in.Stats.Jittered++
		in.m.jittered.Add(1)
		t = itemTime(it)
	}
	if cc.Regress > 0 && in.clock.Bool(cc.Regress) {
		back := cc.RegressBy
		if back <= 0 {
			back = 0.5
		}
		setItemTime(&it, t-back)
		in.Stats.Regressed++
		in.m.regressed.Add(1)
	}
	out = append(out, it)
	if cc.Dup > 0 && in.clock.Bool(cc.Dup) {
		in.Stats.DupItems++
		in.m.dupItems.Add(1)
		out = append(out, it)
	}
	return out
}

// itemTime extracts the timestamp the item's kind carries.
func itemTime(it serve.Item) float64 {
	switch it.Kind {
	case serve.KindIMU:
		return it.IMU.Time
	case serve.KindCamera:
		return it.Camera.Time
	case serve.KindFrame:
		if it.Frame != nil {
			return it.Frame.Time
		}
		return 0
	default:
		return it.Time
	}
}

// setItemTime rewrites the item's timestamp in place. Frames are
// cloned first — the original stream must stay untouched.
func setItemTime(it *serve.Item, t float64) {
	switch it.Kind {
	case serve.KindIMU:
		it.IMU.Time = t
	case serve.KindCamera:
		it.Camera.Time = t
	case serve.KindFrame:
		if it.Frame != nil {
			g := it.Frame.Clone()
			g.Time = t
			it.Frame = g
		}
	default:
		it.Time = t
	}
}
