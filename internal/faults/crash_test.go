package faults_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"vihot/internal/core"
	"vihot/internal/faults"
	"vihot/internal/journal"
	"vihot/internal/serve"
)

// journalSoakRun replays the pumped chaos-soak streams through a
// deterministic manager journaling into w, and returns the final
// counter snapshot. Deterministic mode + a fixed push order means the
// journal's record sequence — hence its byte stream — is identical
// across runs; only the disk underneath differs.
func journalSoakRun(t *testing.T, fx *soakFixture, w io.Writer) serve.CounterSnapshot {
	t.Helper()
	jw, err := journal.New(journal.Config{W: w, BatchSize: 64, QueueLen: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	m := serve.New(serve.Config{
		Deterministic: true,
		Journal:       jw,
		SessionTTLS:   8,
	})
	ids := fx.ids()
	for _, id := range ids {
		if err := m.Open(id, fx.profiles[id], core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		for _, it := range fx.pumped[id] {
			m.Push(it)
		}
	}
	for _, id := range ids {
		// Explicit close so every session leaves a KindClose record with
		// its terminal clock and health.
		_ = m.CloseSession(id)
	}
	m.Close()
	snap := m.Counters().Snapshot()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.JournalDropped != 0 {
		t.Fatalf("journal queue sized for the soak yet dropped %d", snap.JournalDropped)
	}
	return snap
}

// TestCrashRecoverySoak is the durability acceptance test: the full
// chaos-soak workload runs with journaling onto a disk that dies
// mid-stream — writes keep reporting success, the page cache is lost —
// and recovery of the surviving media must agree exactly, session by
// session, with a fault-free replay truncated at the same point. The
// comparison is byte-anchored: the crashed journal must be a strict
// prefix of the fault-free journal, so "what the crash kept" and
// "what a clean run would have written by then" are provably the
// same records.
func TestCrashRecoverySoak(t *testing.T) {
	fx := getSoakFixture(t)

	var clean bytes.Buffer
	snap := journalSoakRun(t, fx, &clean)
	ref := clean.Bytes()
	if len(ref) == 0 || snap.Estimates == 0 {
		t.Fatalf("soak journaled nothing: %d bytes, %+v", len(ref), snap)
	}
	events := snap.Estimates + snap.ToDegraded + snap.ToCoasting + snap.ToStale +
		snap.Recoveries + snap.SessionsReaped + snap.SessionsClosed
	if snap.JournalAppended != events {
		t.Fatalf("journal books: appended %d, events %d", snap.JournalAppended, events)
	}
	full, err := journal.Recover(bytes.NewReader(ref), int64(len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	if !full.CleanShutdown || full.Diag.Truncated {
		t.Fatalf("fault-free journal unhealthy: %+v", full.Diag)
	}
	if got := uint64(full.Records); got != snap.JournalAppended+1 { // +1: shutdown trailer
		t.Fatalf("journal holds %d records, appended %d", got, snap.JournalAppended)
	}

	// Crash mid-stream: 40% of the way through the byte stream, almost
	// certainly mid-record.
	crashAt := int64(len(ref)) * 2 / 5
	disk := faults.NewDiskFile(faults.DiskConfig{CrashAt: crashAt})
	crashSnap := journalSoakRun(t, fx, disk)
	if crashSnap.JournalAppended != snap.JournalAppended {
		t.Fatalf("crashed run appended %d records, clean run %d — runs diverged",
			crashSnap.JournalAppended, snap.JournalAppended)
	}
	media := disk.Bytes()
	if int64(len(media)) != crashAt {
		t.Fatalf("media = %d bytes, want %d", len(media), crashAt)
	}
	if !bytes.Equal(media, ref[:crashAt]) {
		t.Fatal("crashed journal is not a prefix of the fault-free journal")
	}

	res, err := journal.Recover(bytes.NewReader(media), int64(len(media)))
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanShutdown {
		t.Error("a crash recovered as clean shutdown")
	}
	if res.Records == 0 {
		t.Fatal("recovery salvaged nothing from 40% of the journal")
	}

	// The ground truth for the crash point: the fault-free journal cut
	// at exactly the bytes the crash preserved as valid.
	want, err := journal.Recover(bytes.NewReader(ref[:res.Diag.ValidBytes]), res.Diag.ValidBytes)
	if err != nil {
		t.Fatal(err)
	}
	if want.Diag.Truncated {
		t.Fatalf("reference prefix torn — ValidBytes is not a record boundary")
	}
	if res.Records != want.Records {
		t.Fatalf("recovered %d records, fault-free prefix holds %d", res.Records, want.Records)
	}
	// Exact per-session agreement: last estimate, health, closure — the
	// acceptance criterion verbatim.
	if !reflect.DeepEqual(res.Sessions, want.Sessions) {
		for id, got := range res.Sessions {
			if w := want.Sessions[id]; w == nil || !reflect.DeepEqual(got, w) {
				t.Errorf("%s: recovered %+v, fault-free replay %+v", id, got, want.Sessions[id])
			}
		}
		for id := range want.Sessions {
			if res.Sessions[id] == nil {
				t.Errorf("%s: lost by recovery", id)
			}
		}
		t.Fatal("per-session state diverged from fault-free replay")
	}
	if !reflect.DeepEqual(res.Counts, want.Counts) {
		t.Fatalf("record counts diverged: %v vs %v", res.Counts, want.Counts)
	}
	t.Logf("crash soak: %d bytes journaled, crash at %d, %d/%d records recovered, %d live sessions at crash point",
		len(ref), crashAt, res.Records, full.Records, len(res.Live()))
}
