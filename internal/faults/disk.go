package faults

import (
	"errors"
	"io"
	"sync"

	"vihot/internal/stats"
)

// Disk faults: the failure modes a journal file actually faces. The
// injector sits where an *os.File would — it implements io.Writer and
// journal.Syncer — and mutates the byte stream on its way to the
// simulated media:
//
//   - Crash with lost page cache: every write past a chosen byte
//     offset reports success but silently never reaches media,
//     including the suffix of a write that straddles the offset —
//     which is exactly how a torn record tail is born.
//   - ENOSPC windows: byte-offset ranges where the device refuses
//     writes, then (window over) accepts them again.
//   - Short writes: a write lands only a prefix and reports it.
//   - Bit rot: a write reports success but one random bit of the
//     stored block is flipped.
//
// Like every other injector in this package, all randomness derives
// from a seed, so a fault schedule replays bit-identically.

// ErrNoSpace is the injected "device full" failure.
var ErrNoSpace = errors.New("faults: no space left on device")

// ByteWindow is a half-open byte-offset interval [Start, End) on the
// written stream.
type ByteWindow struct {
	Start, End int64
}

// contains reports whether [off, off+n) intersects the window.
func (w ByteWindow) overlaps(off, n int64) bool {
	return off < w.End && off+n > w.Start
}

// DiskConfig is a disk-fault schedule. The zero value injects
// nothing: writes pass through verbatim.
type DiskConfig struct {
	// Seed determines every random decision below.
	Seed int64
	// CrashAt, when positive, is the byte offset past which writes are
	// silently discarded: they report success (the page cache took
	// them) but never reach media (the machine died before writeback).
	// A write straddling the offset keeps only its prefix — a torn
	// record.
	CrashAt int64
	// NoSpace are windows over the ATTEMPTED-byte stream in which
	// writes fail with ErrNoSpace: the fault is transient, like a
	// device that fills up and is later cleaned. A write reaching into
	// a window lands only the bytes before the window's start; once
	// enough bytes have been attempted (stored or refused) to pass
	// End, writes succeed again.
	NoSpace []ByteWindow
	// ShortWrite is the probability a write lands only a random proper
	// prefix and returns io.ErrShortWrite.
	ShortWrite float64
	// BitFlip is the probability per write that one random bit of the
	// stored block flips silently — media corruption the CRC layer
	// must catch at recovery.
	BitFlip float64
}

// DiskStats tallies what one DiskFile did.
type DiskStats struct {
	Writes         int   // Write calls observed
	Syncs          int   // Sync calls observed
	BytesAttempted int64 // bytes offered by callers
	BytesStored    int64 // bytes actually on media
	BytesDiscarded int64 // bytes silently lost past CrashAt
	ShortWrites    int   // writes cut short
	NoSpaceErrors  int   // writes refused by an ENOSPC window
	BitFlips       int   // silent single-bit corruptions
}

// DiskFile is a fault-injecting in-memory file. Safe for one writer
// goroutine plus concurrent snapshot readers (the journal's writer
// goroutine on one side, the test harness on the other).
type DiskFile struct {
	cfg DiskConfig
	rng *stats.RNG

	mu        sync.Mutex
	media     []byte
	off       int64 // reported-write offset (includes discarded bytes)
	attempted int64 // attempted-byte offset (includes refused bytes)
	stats     DiskStats
}

// NewDiskFile builds a DiskFile over the given schedule.
func NewDiskFile(cfg DiskConfig) *DiskFile {
	return &DiskFile{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Write applies the fault schedule to one write. Faults compose in
// severity order: ENOSPC refusal, then short write, then crash
// discard, then bit rot on whatever made it to media.
func (d *DiskFile) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Writes++
	d.stats.BytesAttempted += int64(len(p))
	if len(p) == 0 {
		return 0, nil
	}
	n := int64(len(p))
	var err error

	// ENOSPC: refuse the part of the write inside a full window. The
	// window is consumed by attempts, so the fault is transient.
	a0 := d.attempted
	d.attempted += n
	for _, w := range d.cfg.NoSpace {
		if w.overlaps(a0, n) {
			d.stats.NoSpaceErrors++
			if keep := w.Start - a0; keep > 0 {
				n = keep
			} else {
				n = 0
			}
			err = ErrNoSpace
			break
		}
	}

	// Short write: a random proper prefix lands.
	if err == nil && n > 1 && d.cfg.ShortWrite > 0 && d.rng.Bool(d.cfg.ShortWrite) {
		d.stats.ShortWrites++
		n = 1 + int64(d.rng.Intn(int(n-1)))
		err = io.ErrShortWrite
	}

	// Crash: bytes past CrashAt report success but never hit media.
	stored := n
	if d.cfg.CrashAt > 0 && d.off+stored > d.cfg.CrashAt {
		if d.off >= d.cfg.CrashAt {
			stored = 0
		} else {
			stored = d.cfg.CrashAt - d.off
		}
		d.stats.BytesDiscarded += n - stored
	}

	if stored > 0 {
		start := len(d.media)
		d.media = append(d.media, p[:stored]...)
		d.stats.BytesStored += stored
		if d.cfg.BitFlip > 0 && d.rng.Bool(d.cfg.BitFlip) {
			d.stats.BitFlips++
			bit := d.rng.Intn(int(stored) * 8)
			d.media[start+bit/8] ^= 1 << (bit % 8)
		}
	}
	d.off += n
	return int(n), err
}

// Sync counts the fsync. The crash model makes Sync a lie past
// CrashAt — which is the point: fsync succeeded, the power failed.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Syncs++
	return nil
}

// Bytes snapshots the media content — what a post-crash reboot finds.
func (d *DiskFile) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.media...)
}

// Stats snapshots the tally.
func (d *DiskFile) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
