package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vihot/internal/journal"
)

func TestDiskFilePassThrough(t *testing.T) {
	d := NewDiskFile(DiskConfig{})
	for _, chunk := range [][]byte{[]byte("hello "), []byte("journal")} {
		n, err := d.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("write = %d, %v", n, err)
		}
	}
	if got := d.Bytes(); string(got) != "hello journal" {
		t.Errorf("media = %q", got)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 2 || st.Syncs != 1 || st.BytesStored != 13 || st.BytesAttempted != 13 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskFileCrashDiscardsSilently(t *testing.T) {
	d := NewDiskFile(DiskConfig{CrashAt: 10})
	// First write straddles the crash point: reports full success,
	// stores only the prefix — a torn tail.
	n, err := d.Write(bytes.Repeat([]byte{0xAA}, 16))
	if err != nil || n != 16 {
		t.Fatalf("straddling write = %d, %v (must lie about success)", n, err)
	}
	// Later writes also "succeed" and store nothing.
	n, err = d.Write([]byte("gone"))
	if err != nil || n != 4 {
		t.Fatalf("post-crash write = %d, %v", n, err)
	}
	if got := d.Bytes(); len(got) != 10 {
		t.Errorf("media = %d bytes, want 10", len(got))
	}
	if st := d.Stats(); st.BytesDiscarded != 10 || st.BytesStored != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskFileNoSpaceWindow(t *testing.T) {
	d := NewDiskFile(DiskConfig{NoSpace: []ByteWindow{{Start: 5, End: 8}}})
	n, err := d.Write([]byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if n != 5 {
		t.Errorf("n = %d, want the 5 bytes before the window", n)
	}
	// The window is over ATTEMPTED bytes, so the fault is transient:
	// refused attempts consume it, and writes land again after End.
	d2 := NewDiskFile(DiskConfig{NoSpace: []ByteWindow{{Start: 2, End: 4}}})
	if _, err := d2.Write([]byte("ab")); err != nil { // attempts [0,2): fine
		t.Fatal(err)
	}
	if _, err := d2.Write([]byte("cd")); !errors.Is(err, ErrNoSpace) { // [2,4): refused
		t.Fatalf("window write err = %v", err)
	}
	if n, err := d2.Write([]byte("ef")); err != nil || n != 2 { // [4,6): device recovered
		t.Fatalf("post-window write = %d, %v", n, err)
	}
	if got := d2.Bytes(); string(got) != "abef" {
		t.Errorf("media = %q, want the window's batch lost", got)
	}
}

func TestDiskFileShortWriteAndBitFlip(t *testing.T) {
	d := NewDiskFile(DiskConfig{Seed: 7, ShortWrite: 1.0})
	n, err := d.Write(bytes.Repeat([]byte{1}, 100))
	if err != io.ErrShortWrite {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if n <= 0 || n >= 100 {
		t.Errorf("n = %d, want a proper prefix", n)
	}
	if st := d.Stats(); st.ShortWrites != 1 {
		t.Errorf("stats = %+v", st)
	}

	f := NewDiskFile(DiskConfig{Seed: 11, BitFlip: 1.0})
	orig := bytes.Repeat([]byte{0}, 64)
	if _, err := f.Write(orig); err != nil {
		t.Fatal(err)
	}
	got := f.Bytes()
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1 (single-bit rot)", diff)
	}
	if st := f.Stats(); st.BitFlips != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskFileDeterministic(t *testing.T) {
	run := func() []byte {
		d := NewDiskFile(DiskConfig{Seed: 42, ShortWrite: 0.3, BitFlip: 0.2, CrashAt: 500})
		for i := 0; i < 50; i++ {
			d.Write(bytes.Repeat([]byte{byte(i)}, 20))
		}
		return d.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("same seed produced different media")
	}
}

// TestJournalOverTornDisk is the crash story end to end at the
// journal layer: write through a disk that dies mid-stream, then
// recover the media and prove the result is the longest valid prefix
// of what a fault-free disk would hold.
func TestJournalOverTornDisk(t *testing.T) {
	record := func(i int) journal.Record {
		return journal.Record{
			Kind: journal.KindEstimate, Session: "cabin", T: float64(i) * 0.05,
			Yaw: float64(i), Position: int32(i % 5), MatchDist: 0.1,
		}
	}
	writeAll := func(w io.Writer) {
		jw, err := journal.New(journal.Config{W: w, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if !jw.Append(record(i)) {
				t.Fatalf("append %d refused", i)
			}
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var clean bytes.Buffer
	writeAll(&clean)

	for _, crashAt := range []int64{1, 37, 100, 333, 1000} {
		disk := NewDiskFile(DiskConfig{CrashAt: crashAt})
		writeAll(disk)
		media := disk.Bytes()

		res, err := journal.Recover(bytes.NewReader(media), int64(len(media)))
		if err != nil {
			t.Fatalf("crashAt %d: %v", crashAt, err)
		}
		if res.CleanShutdown {
			t.Errorf("crashAt %d: crash recovered as clean shutdown", crashAt)
		}
		// The journal writes deterministic bytes, so the media is a
		// prefix of the fault-free file and the recovered records are
		// exactly the first res.Records of the fault-free journal.
		if !bytes.Equal(media, clean.Bytes()[:len(media)]) {
			t.Fatalf("crashAt %d: media diverged from fault-free prefix", crashAt)
		}
		ref, err := journal.Recover(bytes.NewReader(clean.Bytes()[:res.Diag.ValidBytes]), res.Diag.ValidBytes)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Records != res.Records {
			t.Errorf("crashAt %d: recovered %d records, reference %d", crashAt, res.Records, ref.Records)
		}
		if s := res.Sessions["cabin"]; s != nil {
			want := ref.Sessions["cabin"]
			if s.Estimate != want.Estimate || s.Health != want.Health {
				t.Errorf("crashAt %d: session state diverged", crashAt)
			}
		}
	}
}

// TestJournalOverRottenDisk proves silent bit rot never surfaces as a
// bogus record: the CRC stops the replay at the damage.
func TestJournalOverRottenDisk(t *testing.T) {
	disk := NewDiskFile(DiskConfig{Seed: 3, BitFlip: 0.5})
	jw, err := journal.New(journal.Config{W: disk, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		jw.Append(journal.Record{Kind: journal.KindReap, Session: "x", T: float64(i)})
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	media := disk.Bytes()
	res, err := journal.Recover(bytes.NewReader(media), int64(len(media)))
	if err != nil {
		t.Fatal(err)
	}
	if disk.Stats().BitFlips == 0 {
		t.Fatal("no rot injected; test is vacuous")
	}
	if !res.Diag.Truncated {
		t.Error("bit rot not detected")
	}
	// Every replayed record must be one the writer actually appended.
	for id, s := range res.Sessions {
		if id != "x" {
			t.Errorf("phantom session %q decoded from rotten media", id)
		}
		_ = s
	}
}
