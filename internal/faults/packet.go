package faults

import (
	"vihot/internal/csi"
	"vihot/internal/imu"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// PacketConfig tunes wire-level datagram faults — what a congested,
// interference-ridden 2.4 GHz cabin link does to a UDP probe stream.
// The zero value injects nothing.
type PacketConfig struct {
	// Loss is the i.i.d. probability a datagram is dropped.
	Loss float64
	// Dup is the probability a delivered datagram is delivered twice
	// back-to-back (retransmission race).
	Dup float64
	// Reorder is the probability a datagram is held back and delivered
	// after up to ReorderDepth later datagrams have passed it.
	Reorder float64
	// ReorderDepth is the maximum number of datagrams a held one is
	// delayed past. Default 4.
	ReorderDepth int
	// Corrupt is the probability a datagram has 1–8 random bits
	// flipped. UDP's 16-bit checksum misses plenty of damage; the
	// decoder and the serving stack must survive what gets through.
	Corrupt float64
}

// PacketStats tallies one PacketInjector's decisions.
type PacketStats struct {
	Sent       int // datagrams offered
	Lost       int // dropped
	Duplicated int // delivered twice
	Reordered  int // held back for late delivery
	Corrupted  int // bit-flipped
}

// heldPacket is a datagram awaiting late (reordered) delivery.
type heldPacket struct {
	data  []byte
	after int // deliver once this many more datagrams have passed
}

// PacketInjector applies PacketConfig to a sequence of raw datagrams.
// It is a pure function of (config, seed, input sequence): the same
// inputs always produce the same output sequence. Single-goroutine,
// like the socket it models.
type PacketInjector struct {
	cfg  PacketConfig
	rng  *stats.RNG
	held []heldPacket

	// Stats is updated in place as datagrams flow through.
	Stats PacketStats
	// m optionally shadows Stats into a shared obs registry; see
	// BindMetrics. All-nil (no-op) until bound.
	m packetMetrics
}

// NewPacketInjector builds an injector drawing from rng.
func NewPacketInjector(cfg PacketConfig, rng *stats.RNG) *PacketInjector {
	if cfg.ReorderDepth < 1 {
		cfg.ReorderDepth = 4
	}
	return &PacketInjector{cfg: cfg, rng: rng}
}

// Apply passes one datagram through the fault channel, invoking emit
// zero or more times: zero when the datagram is lost or held for
// reordering, more than once when it is duplicated or when previously
// held datagrams come due. emit receives buffers the injector owns
// until emit returns — callers that retain them must copy. b itself is
// never mutated (corruption flips bits on a copy).
func (pi *PacketInjector) Apply(b []byte, emit func([]byte) error) error {
	pi.Stats.Sent++
	pi.m.sent.Add(1)
	if pi.cfg.Corrupt > 0 && pi.rng.Bool(pi.cfg.Corrupt) {
		b = pi.corrupt(b)
	}
	switch {
	case pi.cfg.Loss > 0 && pi.rng.Bool(pi.cfg.Loss):
		pi.Stats.Lost++
		pi.m.lost.Add(1)
	case pi.cfg.Reorder > 0 && pi.rng.Bool(pi.cfg.Reorder):
		// Hold a private copy: senders reuse their encode buffers, so
		// by the time this packet is released b's backing array holds a
		// different datagram.
		pi.Stats.Reordered++
		pi.m.reordered.Add(1)
		cp := append([]byte(nil), b...)
		pi.held = append(pi.held, heldPacket{data: cp, after: 1 + pi.rng.Intn(pi.cfg.ReorderDepth)})
	default:
		if err := emit(b); err != nil {
			return err
		}
		if pi.cfg.Dup > 0 && pi.rng.Bool(pi.cfg.Dup) {
			pi.Stats.Duplicated++
			pi.m.duplicated.Add(1)
			if err := emit(b); err != nil {
				return err
			}
		}
	}
	return pi.release(emit, false)
}

// Flush delivers every datagram still held for reordering — the
// stragglers a channel eventually disgorges.
func (pi *PacketInjector) Flush(emit func([]byte) error) error {
	return pi.release(emit, true)
}

// release advances hold counts and emits due datagrams in hold order.
func (pi *PacketInjector) release(emit func([]byte) error, all bool) error {
	if len(pi.held) == 0 {
		return nil
	}
	var due [][]byte
	kept := pi.held[:0]
	for i := range pi.held {
		pi.held[i].after--
		if all || pi.held[i].after <= 0 {
			due = append(due, pi.held[i].data)
		} else {
			kept = append(kept, pi.held[i])
		}
	}
	pi.held = kept
	for _, d := range due {
		if err := emit(d); err != nil {
			return err
		}
	}
	return nil
}

// corrupt returns a copy of b with 1–8 random bits flipped.
func (pi *PacketInjector) corrupt(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	pi.Stats.Corrupted++
	pi.m.corrupted.Add(1)
	cp := append([]byte(nil), b...)
	flips := 1 + pi.rng.Intn(8)
	for i := 0; i < flips; i++ {
		pos := pi.rng.Intn(len(cp) * 8)
		cp[pos/8] ^= 1 << (pos % 8)
	}
	return cp
}

// RawSender is the raw-datagram hook the wire-fault layer composes
// over. *wifi.Sender implements it via SendRaw.
type RawSender interface {
	SendRaw(b []byte) error
}

// Sender wraps any RawSender with a PacketInjector, presenting the
// same SendCSI/SendIMU surface as wifi.Sender. Code under test keeps
// its sender interface; the faults ride underneath.
type Sender struct {
	raw RawSender
	pi  *PacketInjector
	buf []byte
}

// NewSender wraps raw with pi.
func NewSender(raw RawSender, pi *PacketInjector) *Sender {
	return &Sender{raw: raw, pi: pi, buf: make([]byte, 0, 2048)}
}

// SendCSI encodes and transmits one CSI frame through the fault
// channel.
func (s *Sender) SendCSI(f *csi.Frame) error {
	b, err := wifi.EncodeCSI(s.buf[:0], f)
	if err != nil {
		return err
	}
	s.buf = b[:0]
	return s.pi.Apply(b, s.raw.SendRaw)
}

// SendIMU encodes and transmits one IMU reading through the fault
// channel.
func (s *Sender) SendIMU(r *imu.Reading) error {
	b := wifi.EncodeIMU(s.buf[:0], r)
	s.buf = b[:0]
	return s.pi.Apply(b, s.raw.SendRaw)
}

// Flush delivers any datagrams still held for reordering.
func (s *Sender) Flush() error { return s.pi.Flush(s.raw.SendRaw) }
