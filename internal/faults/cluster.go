package faults

import (
	"sync"

	"vihot/internal/cluster"
	"vihot/internal/stats"
)

// Cluster-level chaos: the injector for the distributed serving
// tier's fault filter (cluster.Config.Drop). Where the packet and CSI
// injectors model one misbehaving sender, this one models the fabric
// between router and nodes — partitions that cut a member off for a
// window of stream time, and background frame loss.
//
// Like everything in the cluster, schedules run on stream time
// (Message.T), so a seeded chaos run replays deterministically: same
// config, same message order, same drops.

// PartitionSpec cuts one member off from the router — both
// directions, every message kind — for a window of stream time.
type PartitionSpec struct {
	// Node is the member name the partition isolates.
	Node string
	// Window is the [Start, End) stream-time interval of the cut.
	Window Window
}

// ClusterConfig schedules cluster fabric faults.
type ClusterConfig struct {
	// Partitions are the scheduled cuts.
	Partitions []PartitionSpec
	// Loss is a background per-frame drop probability applied outside
	// partitions (0 disables). Drawn from the seeded RNG, so a
	// deterministic run replays the same losses.
	Loss float64
	// Seed feeds the loss RNG.
	Seed int64
}

// ClusterChaosStats counts what the injector ate.
type ClusterChaosStats struct {
	PartitionDrops uint64
	LossDrops      uint64
}

// ClusterChaos is the fault filter. Hook Drop into
// cluster.Config.Drop; it is safe for concurrent calls.
type ClusterChaos struct {
	cfg ClusterConfig

	mu    sync.Mutex
	rng   *stats.RNG
	stats ClusterChaosStats
}

// NewClusterChaos builds the injector.
func NewClusterChaos(cfg ClusterConfig) *ClusterChaos {
	return &ClusterChaos{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Drop reports whether the fabric eats this frame. A partitioned
// member loses both directions: frames addressed to it (router→node)
// and frames it sends (node→router, where To is the router's empty
// name and From carries the member).
func (c *ClusterChaos) Drop(m *cluster.Message) bool {
	node := m.To
	if node == "" {
		node = m.From
	}
	for _, p := range c.cfg.Partitions {
		if p.Node == node && p.Window.Contains(m.T) {
			c.mu.Lock()
			c.stats.PartitionDrops++
			c.mu.Unlock()
			return true
		}
	}
	if c.cfg.Loss > 0 {
		c.mu.Lock()
		lost := c.rng.Bool(c.cfg.Loss)
		if lost {
			c.stats.LossDrops++
		}
		c.mu.Unlock()
		return lost
	}
	return false
}

// Stats snapshots the drop counts.
func (c *ClusterChaos) Stats() ClusterChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
