package faults

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"vihot/internal/camera"
	"vihot/internal/csi"
	"vihot/internal/imu"
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// testFrame builds a small 2×4 frame with distinct, finite values.
func testFrame(t float64) *csi.Frame {
	f := &csi.Frame{Time: t, H: make([][]complex128, 2)}
	for a := range f.H {
		row := make([]complex128, 4)
		for k := range row {
			row[k] = complex(1+float64(a), float64(k)*0.25)
		}
		f.H[a] = row
	}
	return f
}

// camEst builds one valid camera estimate.
func camEst(t float64) camera.Estimate { return camera.Estimate{Time: t, Yaw: 1, Valid: true} }

// seqPayload stamps a sequence number into a reusable buffer, the way
// a real sender reuses its encode buffer.
func seqPayload(buf []byte, seq uint32) []byte {
	binary.BigEndian.PutUint32(buf[:4], seq)
	return buf[:16]
}

func TestPacketInjectorLossDropsEverything(t *testing.T) {
	pi := NewPacketInjector(PacketConfig{Loss: 1}, stats.NewRNG(1))
	buf := make([]byte, 16)
	emitted := 0
	for i := 0; i < 50; i++ {
		if err := pi.Apply(seqPayload(buf, uint32(i)), func([]byte) error { emitted++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if emitted != 0 || pi.Stats.Lost != 50 {
		t.Fatalf("emitted=%d lost=%d, want 0/50", emitted, pi.Stats.Lost)
	}
}

func TestPacketInjectorDupDoubles(t *testing.T) {
	pi := NewPacketInjector(PacketConfig{Dup: 1}, stats.NewRNG(1))
	buf := make([]byte, 16)
	emitted := 0
	for i := 0; i < 50; i++ {
		if err := pi.Apply(seqPayload(buf, uint32(i)), func([]byte) error { emitted++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if emitted != 100 || pi.Stats.Duplicated != 50 {
		t.Fatalf("emitted=%d dup=%d, want 100/50", emitted, pi.Stats.Duplicated)
	}
}

// TestPacketInjectorReorderDeliversAll proves reordering neither loses
// nor duplicates datagrams, actually shuffles the order, and — the
// trap — holds private copies, immune to the sender reusing its encode
// buffer between sends.
func TestPacketInjectorReorderDeliversAll(t *testing.T) {
	const n = 400
	pi := NewPacketInjector(PacketConfig{Reorder: 0.5, ReorderDepth: 6}, stats.NewRNG(2))
	buf := make([]byte, 16) // reused for every send, like wifi.Sender
	var got []uint32
	emit := func(b []byte) error {
		got = append(got, binary.BigEndian.Uint32(b[:4]))
		return nil
	}
	for i := 0; i < n; i++ {
		if err := pi.Apply(seqPayload(buf, uint32(i)), emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := pi.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d datagrams, want %d", len(got), n)
	}
	seen := make(map[uint32]bool, n)
	inOrder := true
	for i, s := range got {
		if seen[s] {
			t.Fatalf("sequence %d delivered twice", s)
		}
		seen[s] = true
		if i > 0 && s < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("50% reorder probability produced a fully ordered delivery")
	}
	if pi.Stats.Reordered == 0 {
		t.Fatal("Stats.Reordered = 0")
	}
}

func TestPacketInjectorCorruptCopies(t *testing.T) {
	pi := NewPacketInjector(PacketConfig{Corrupt: 1}, stats.NewRNG(3))
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ref := append([]byte(nil), orig...)
	changed := false
	err := pi.Apply(orig, func(b []byte) error {
		if !reflect.DeepEqual(b, ref) {
			changed = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("corruption emitted the original bytes unchanged")
	}
	if !reflect.DeepEqual(orig, ref) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	if pi.Stats.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", pi.Stats.Corrupted)
	}
}

// TestFaultSenderRoundTrip runs frames and readings through the full
// Sender → RawSender path with faults disabled and decodes what comes
// out: the fault layer at zero must be a perfect wire.
func TestFaultSenderRoundTrip(t *testing.T) {
	var wire [][]byte
	raw := rawFunc(func(b []byte) error {
		wire = append(wire, append([]byte(nil), b...))
		return nil
	})
	s := NewSender(raw, NewPacketInjector(PacketConfig{}, stats.NewRNG(4)))

	f := testFrame(1.5)
	if err := s.SendCSI(f); err != nil {
		t.Fatal(err)
	}
	r := imu.Reading{Time: 1.51, GyroZ: 12.5, AccelLat: -0.5}
	if err := s.SendIMU(&r); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 2 {
		t.Fatalf("wire saw %d datagrams, want 2", len(wire))
	}
	pkt, err := wifi.Decode(wire[0])
	if err != nil || pkt.Type != wifi.TypeCSI {
		t.Fatalf("decode frame: %v (type %d)", err, pkt.Type)
	}
	if pkt.CSI.Time != f.Time || pkt.CSI.NAntennas() != 2 || pkt.CSI.NSubcarriers() != 4 {
		t.Fatalf("frame round trip mangled shape: %+v", pkt.CSI)
	}
	pkt, err = wifi.Decode(wire[1])
	if err != nil || pkt.Type != wifi.TypeIMU {
		t.Fatalf("decode imu: %v", err)
	}
	if pkt.IMU.Time != r.Time || math.Abs(pkt.IMU.GyroZ-r.GyroZ) > 1e-6 {
		t.Fatalf("imu round trip = %+v, want %+v", pkt.IMU, r)
	}
}

type rawFunc func([]byte) error

func (f rawFunc) SendRaw(b []byte) error { return f(b) }

func TestCSICorruptorWindows(t *testing.T) {
	c := NewCSICorruptor(CSIConfig{
		NoiseWindows:   []Window{{Start: 1, End: 2}},
		NoiseStd:       0.8,
		DropoutWindows: []Window{{Start: 3, End: 4}},
	}, stats.NewRNG(5))

	clean := testFrame(0.5)
	if got := c.Frame(clean); got != clean {
		t.Fatal("frame outside every window was copied")
	}

	noisy := testFrame(1.5)
	ref := noisy.Clone()
	got := c.Frame(noisy)
	if got == noisy {
		t.Fatal("noised frame aliases the input")
	}
	if !reflect.DeepEqual(noisy.H, ref.H) {
		t.Fatal("corruptor mutated the input frame")
	}
	if reflect.DeepEqual(got.H, ref.H) {
		t.Fatal("noise window left the frame unchanged")
	}

	dropped := c.Frame(testFrame(3.5))
	for k, h := range dropped.H[1] {
		if h != 0 {
			t.Fatalf("dropout left antenna 1 subcarrier %d = %v", k, h)
		}
	}
	if _, err := csi.Sanitize(dropped, 0, 1); err == nil {
		t.Fatal("sanitizer accepted a dropout frame; the starvation path depends on rejection")
	}

	if c.Phase(1.5, 0) == 0 {
		t.Fatal("phase noise window had no effect")
	}
	if c.Phase(0.5, 0.25) != 0.25 {
		t.Fatal("phase outside windows was modified")
	}
}

func TestInjectorOutageWindows(t *testing.T) {
	in := New(Config{
		Seed:          6,
		CSIBlackouts:  []Window{{Start: 1, End: 2}},
		IMUOutages:    []Window{{Start: 3, End: 4}},
		CameraOutages: []Window{{Start: 5, End: 6}},
	})
	items := []serve.Item{
		{Kind: serve.KindPhase, Time: 0.5},
		{Kind: serve.KindPhase, Time: 1.5},                    // blacked out
		{Kind: serve.KindFrame, Frame: testFrame(1.7)},        // blacked out
		{Kind: serve.KindIMU, IMU: imu.Reading{Time: 3.5}},    // outage
		{Kind: serve.KindIMU, IMU: imu.Reading{Time: 4.5}},    // survives
		{Kind: serve.KindCamera, Camera: camEst(5.5)},         // outage
		{Kind: serve.KindCamera, Camera: camEst(6.5)},         // survives
	}
	out := in.Apply(items)
	if len(out) != 3 {
		t.Fatalf("Apply kept %d items, want 3: %+v", len(out), out)
	}
	if in.Stats.BlackedOut != 4 {
		t.Fatalf("BlackedOut = %d, want 4", in.Stats.BlackedOut)
	}
}

func TestInjectorClockFaults(t *testing.T) {
	in := New(Config{Seed: 7, Clock: ClockConfig{Regress: 1, RegressBy: 0.5, Dup: 1}})
	out := in.Apply([]serve.Item{{Kind: serve.KindPhase, Time: 2, Phi: 0.1}})
	if len(out) != 2 {
		t.Fatalf("dup delivered %d items, want 2", len(out))
	}
	for _, it := range out {
		if it.Time != 1.5 {
			t.Fatalf("regressed time = %v, want 1.5", it.Time)
		}
	}
	if in.Stats.Regressed != 1 || in.Stats.DupItems != 1 {
		t.Fatalf("stats = %+v", in.Stats)
	}
}

// TestInjectorPumpDeterminism is the acceptance property: one seed,
// one input stream → one output stream, bit for bit, run after run.
func TestInjectorPumpDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 99,
		Packet: PacketConfig{
			Loss: 0.2, Dup: 0.05, Reorder: 0.1, ReorderDepth: 5, Corrupt: 0.05,
		},
		CSI: CSIConfig{
			NoiseWindows:   []Window{{Start: 0.2, End: 0.4}},
			DropoutWindows: []Window{{Start: 0.6, End: 0.7}},
		},
		Clock:        ClockConfig{JitterStd: 0.001, Regress: 0.02, Dup: 0.02},
		CSIBlackouts: []Window{{Start: 0.8, End: 0.9}},
	}
	var items []serve.Item
	for i := 0; i < 500; i++ {
		ts := float64(i) * 0.002
		items = append(items, serve.Item{Kind: serve.KindFrame, Frame: testFrame(ts)})
		if i%5 == 0 {
			items = append(items, serve.Item{Kind: serve.KindIMU, IMU: imu.Reading{Time: ts}})
		}
	}
	a := New(cfg).Pump("s", items)
	b := New(cfg).Pump("s", items)
	if len(a) != len(b) {
		t.Fatalf("two identical pumps: %d vs %d items", len(a), len(b))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different fault schedules")
	}
	if len(a) == len(items) {
		t.Fatal("fault schedule injected nothing")
	}
}
