package faults

import (
	"vihot/internal/csi"
	"vihot/internal/stats"
)

// CSIConfig schedules measurement-level CSI corruption: episodes
// during which the channel response itself is damaged even though
// packets keep arriving. These reproduce microwave-oven-class burst
// interference and a detuned or disconnected RX chain — faults the
// transport layer cannot see and the sanitizer must absorb or reject.
// The zero value injects nothing.
type CSIConfig struct {
	// NoiseWindows are burst-interference episodes: every subcarrier of
	// every frame inside one gains complex Gaussian noise of NoiseStd.
	NoiseWindows []Window
	// NoiseStd is the per-component noise amplitude, in the same linear
	// units as the channel response (unit-amplitude paths). Default
	// 0.5 — strong enough to scramble phase on weak subcarriers.
	NoiseStd float64
	// DropoutWindows are antenna-dropout episodes: frames inside one
	// have antenna DropAntenna zeroed, the signature of a dead RX
	// chain. With the default sanitizer pair (0,1), zeroing antenna 1
	// starves the phase-difference sanitizer while the link stays
	// alive.
	DropoutWindows []Window
	// DropAntenna is the antenna index zeroed during dropout windows.
	// Default 1 (the sanitizer's reference pair partner).
	DropAntenna int
}

// CSIStats tallies one CSICorruptor's activity.
type CSIStats struct {
	Noised         int // frames given burst noise
	DroppedAntenna int // frames with an antenna zeroed
	PhaseNoised    int // pre-sanitized phase samples given noise
}

// CSICorruptor applies CSIConfig to frames and phase samples by
// stream time. Deterministic from its RNG; single-goroutine.
type CSICorruptor struct {
	cfg CSIConfig
	rng *stats.RNG

	// Stats is updated in place.
	Stats CSIStats
}

// NewCSICorruptor builds a corruptor drawing from rng.
func NewCSICorruptor(cfg CSIConfig, rng *stats.RNG) *CSICorruptor {
	if cfg.NoiseStd <= 0 {
		cfg.NoiseStd = 0.5
	}
	if cfg.DropAntenna == 0 {
		cfg.DropAntenna = 1
	}
	return &CSICorruptor{cfg: cfg, rng: rng}
}

// Frame returns the faulted frame for f's timestamp. Frames outside
// every episode pass through untouched (same pointer); faulted frames
// are deep copies, so the caller's original is never mutated.
func (c *CSICorruptor) Frame(f *csi.Frame) *csi.Frame {
	if f == nil {
		return nil
	}
	noise := anyContains(c.cfg.NoiseWindows, f.Time)
	drop := anyContains(c.cfg.DropoutWindows, f.Time)
	if !noise && !drop {
		return f
	}
	g := f.Clone()
	if noise {
		c.Stats.Noised++
		for a := range g.H {
			for k := range g.H[a] {
				g.H[a][k] += complex(
					c.rng.Normal(0, c.cfg.NoiseStd),
					c.rng.Normal(0, c.cfg.NoiseStd),
				)
			}
		}
	}
	if drop && c.cfg.DropAntenna >= 0 && c.cfg.DropAntenna < len(g.H) {
		c.Stats.DroppedAntenna++
		row := g.H[c.cfg.DropAntenna]
		for k := range row {
			row[k] = 0
		}
	}
	return g
}

// Phase applies the burst-noise schedule to an already-sanitized
// phase sample (KindPhase items skip the sanitizer, so frame-level
// noise has nowhere to act; this is its phase-domain equivalent).
func (c *CSICorruptor) Phase(t, phi float64) float64 {
	if !anyContains(c.cfg.NoiseWindows, t) {
		return phi
	}
	c.Stats.PhaseNoised++
	return phi + c.rng.Normal(0, c.cfg.NoiseStd)
}
