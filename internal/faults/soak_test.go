package faults_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"vihot/internal/core"
	"vihot/internal/faults"
	"vihot/internal/scenario"
	"vihot/internal/serve"
)

// soakDurationS is the simulated drive length per session. The fault
// schedule below places every episode well inside it.
const soakDurationS = 32

// soakSessions is how many concurrent sessions the soak drives,
// apportioned across the mix by weight.
const soakSessions = 4

// soakConfig is the chaos schedule of the acceptance criteria: 20%
// UDP loss with reordering, duplication and corruption, a 2 s CSI
// blackout, a camera outage, a burst-noise episode, an
// antenna-dropout episode, and low-rate clock faults.
func soakConfig(seed int64) faults.Config {
	return faults.Config{
		Seed: seed,
		Packet: faults.PacketConfig{
			Loss:         0.20,
			Reorder:      0.05,
			ReorderDepth: 6,
			Dup:          0.02,
			Corrupt:      0.01,
		},
		CSI: faults.CSIConfig{
			NoiseWindows:   []faults.Window{{Start: 5, End: 5.5}},
			NoiseStd:       0.6,
			DropoutWindows: []faults.Window{{Start: 25, End: 25.6}},
		},
		Clock: faults.ClockConfig{
			Regress:   0.002,
			RegressBy: 0.5,
			Dup:       0.002,
		},
		CSIBlackouts:  []faults.Window{{Start: 10, End: 12}},
		CameraOutages: []faults.Window{{Start: 20, End: 21.5}},
	}
}

// soakMix is the weighted multi-scenario mix the soak drives: the
// paper's baseline workload carries double weight, with passenger
// interference and the drowsy long-haul riding along — three distinct
// cabins, channel conditions, and trajectory families through one
// manager. The scenarios' own fault schedules are cleared (the soak's
// chaos comes from soakConfig's injector, so the fault timeline stays
// the one the assertions below expect) and every stream carries a
// camera so blackouts can coast.
func soakMix() ([]scenario.MixEntry, error) {
	mix, err := scenario.ParseMix("baseline:2,multi-occupant:1,longhaul-drowsy:1", soakDurationS)
	if err != nil {
		return nil, err
	}
	for i := range mix {
		mix[i].Config.Camera = true
		mix[i].Config.Faults = nil
		mix[i].Config.Profile = scenario.ProfileSpec{Positions: 4, PerPositionS: 3}
	}
	return mix, nil
}

// soakFixture is the rendered clean streams plus each session's
// profile, built once: rendering the mix's 32 s CSI streams is the
// expensive part.
type soakFixture struct {
	profiles map[string]*core.Profile
	streams  map[string][]serve.Item // clean, pre-fault
	pumped   map[string][]serve.Item // post-fault, as the receiver sees them
}

// ids returns the fixture's session IDs in stable order.
func (fx *soakFixture) ids() []string {
	out := make([]string, 0, len(fx.pumped))
	for id := range fx.pumped {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

var (
	soakOnce sync.Once
	soak     *soakFixture
	soakErr  error
)

func getSoakFixture(t *testing.T) *soakFixture {
	t.Helper()
	soakOnce.Do(func() { soak, soakErr = buildSoakFixture() })
	if soakErr != nil {
		t.Fatal(soakErr)
	}
	return soak
}

func buildSoakFixture() (*soakFixture, error) {
	mix, err := soakMix()
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(mix))
	for i, e := range mix {
		weights[i] = e.Weight
	}
	counts := scenario.Apportion(weights, soakSessions)
	fx := &soakFixture{
		profiles: map[string]*core.Profile{},
		streams:  map[string][]serve.Item{},
		pumped:   map[string][]serve.Item{},
	}
	n := 0
	for i, e := range mix {
		if counts[i] == 0 {
			continue
		}
		// One profile per scenario, fingerprinting that scenario's own
		// cabin, shared by its sessions.
		prof, err := e.Config.CollectProfile()
		if err != nil {
			return nil, err
		}
		for j := 0; j < counts[i]; j++ {
			id := fmt.Sprintf("car-%d-%s", n, e.Config.Name)
			st, err := e.Config.BuildStream(id, j)
			if err != nil {
				return nil, err
			}
			fx.profiles[id] = prof
			fx.streams[id] = st.Items
			fx.pumped[id] = faults.New(soakConfig(7000 + int64(n))).Pump(id, st.Items)
			n++
		}
	}
	return fx, nil
}

// soakLog records health transitions and per-estimate health, keyed by
// session, safe for concurrent worker callbacks.
type soakLog struct {
	mu     sync.Mutex
	trans  map[string][]serve.Health // "to" states in order
	staleE map[string]int            // estimates emitted while STALE
	ests   map[string]int
}

func newSoakLog() *soakLog {
	return &soakLog{trans: map[string][]serve.Health{}, staleE: map[string]int{}, ests: map[string]int{}}
}

func (l *soakLog) onHealth(id string, t float64, from, to serve.Health) {
	l.mu.Lock()
	l.trans[id] = append(l.trans[id], to)
	l.mu.Unlock()
}

func (l *soakLog) onEst(id string, est core.Estimate, h serve.Health, conf float64) {
	l.mu.Lock()
	l.ests[id]++
	if h == serve.Stale {
		l.staleE[id]++
	}
	l.mu.Unlock()
}

// TestChaosSoak is the acceptance soak: a weighted multi-scenario mix
// (baseline ×2, passenger interference, drowsy long-haul), ≥30 s of
// simulated driving per session, pushed concurrently through a
// sharded Manager while the full fault schedule runs. Every session
// must ride out every fault window and re-enter HEALTHY, no estimate
// may be emitted while STALE, and the counters must conserve.
func TestChaosSoak(t *testing.T) {
	fx := getSoakFixture(t)
	log := newSoakLog()
	m := serve.New(serve.Config{
		Shards:           2,
		QueueLen:         1 << 17,
		OnHealth:         log.onHealth,
		OnEstimateHealth: log.onEst,
	})
	defer m.Close()
	for id := range fx.pumped {
		if err := m.Open(id, fx.profiles[id], core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var pushed uint64
	var pushedMu sync.Mutex
	for _, items := range fx.pumped {
		wg.Add(1)
		go func(items []serve.Item) {
			defer wg.Done()
			for i := 0; i < len(items); i += 64 {
				hi := i + 64
				if hi > len(items) {
					hi = len(items)
				}
				m.PushBatch(items[i:hi])
			}
			pushedMu.Lock()
			pushed += uint64(len(items))
			pushedMu.Unlock()
		}(items)
	}
	wg.Wait()
	m.Flush()
	snap := m.Counters().Snapshot()

	// Conservation: every accepted item is processed or dropped. The
	// fault injector corrupts payloads, not the Item.Kind byte, so
	// RejectedKind must stay zero here — but it belongs in the
	// identity, which is exactly the acceptance-criteria equation.
	if snap.Total() != pushed {
		t.Fatalf("counted in %d items, pushed %d", snap.Total(), pushed)
	}
	if snap.Total() != snap.Processed+snap.DroppedStale+snap.DroppedUnknown+snap.RejectedKind {
		t.Fatalf("conservation violated: total=%d processed=%d droppedStale=%d droppedUnknown=%d rejectedKind=%d",
			snap.Total(), snap.Processed, snap.DroppedStale, snap.DroppedUnknown, snap.RejectedKind)
	}

	log.mu.Lock()
	defer log.mu.Unlock()
	var sunk uint64
	for id := range fx.pumped {
		sunk += uint64(log.ests[id])

		// Silence while STALE.
		if log.staleE[id] != 0 {
			t.Errorf("%s: %d estimates emitted while STALE", id, log.staleE[id])
		}

		// The session rode out the blackout: it went all the way to
		// STALE and came back, plus at least one more degradation
		// (camera outage, antenna dropout) also recovered.
		trans := log.trans[id]
		counts := map[serve.Health]int{}
		for _, h := range trans {
			counts[h]++
		}
		if counts[serve.Stale] == 0 || counts[serve.Coasting] == 0 || counts[serve.Degraded] == 0 {
			t.Errorf("%s: fault windows missed states: transitions %v", id, trans)
		}
		if counts[serve.Healthy] < 2 {
			t.Errorf("%s: only %d recoveries, want ≥2 (blackout + outage): %v", id, counts[serve.Healthy], trans)
		}
		if len(trans) == 0 || trans[len(trans)-1] != serve.Healthy {
			t.Errorf("%s: did not end HEALTHY: %v", id, trans)
		}
		if h, ok := m.Health(id); !ok || h != serve.Healthy {
			t.Errorf("%s: final Health = %v/%v", id, h, ok)
		}
	}
	if sunk != snap.Estimates {
		t.Fatalf("sinks saw %d estimates, counters say %d", sunk, snap.Estimates)
	}

	// The fault schedule visibly exercised every defense layer.
	if snap.Estimates == 0 {
		t.Fatal("soak produced no estimates at all")
	}
	if snap.Coasted == 0 {
		t.Fatal("no coasted estimates during a 2 s CSI blackout with a live camera")
	}
	if snap.RejectedTime == 0 {
		t.Fatal("reordering/duplication/clock faults produced no timestamp rejections")
	}
	if snap.SanitizeErrors == 0 {
		t.Fatal("the antenna-dropout episode produced no sanitize errors")
	}
	if snap.TrackerResets < uint64(len(fx.pumped)) {
		t.Fatalf("TrackerResets = %d, want ≥%d (one per session after the blackout)", snap.TrackerResets, len(fx.pumped))
	}
	t.Logf("soak: in=%d processed=%d estimates=%d coasted=%d rejected=%d sanitizeErr=%d transitions(d/c/s/h)=%d/%d/%d/%d",
		snap.Total(), snap.Processed, snap.Estimates, snap.Coasted, snap.RejectedTime,
		snap.SanitizeErrors, snap.ToDegraded, snap.ToCoasting, snap.ToStale, snap.Recoveries)

	// Graceful end of life after the chaos: the drain-then-stop must
	// abandon nothing, purge every session, and leave the acceptance
	// conservation identity exact on the final snapshot.
	m.CloseDrain()
	final := m.Counters().Snapshot()
	if final.DroppedClosed != 0 {
		t.Fatalf("CloseDrain abandoned %d items", final.DroppedClosed)
	}
	if final.Total() != final.Processed+final.DroppedStale+final.DroppedUnknown+final.RejectedKind {
		t.Fatalf("post-close conservation violated: %+v", final)
	}
	if m.Sessions() != 0 {
		t.Fatalf("Sessions() = %d after CloseDrain, want 0", m.Sessions())
	}
}

// TestChaosSoakDeterministicReplay replays the identical pumped
// streams through two deterministic-mode managers: estimates and
// transition logs must match exactly. Combined with the injector's own
// determinism (TestInjectorPumpDeterminism), a seed fully determines a
// chaos run end to end.
func TestChaosSoakDeterministicReplay(t *testing.T) {
	fx := getSoakFixture(t)
	run := func() (map[string][]core.Estimate, map[string][]serve.Health) {
		log := newSoakLog()
		ests := map[string][]core.Estimate{}
		m := serve.New(serve.Config{
			Deterministic: true,
			OnHealth:      log.onHealth,
			OnEstimate: func(id string, est core.Estimate) {
				ests[id] = append(ests[id], est)
			},
		})
		defer m.Close()
		ids := fx.ids()
		for _, id := range ids {
			if err := m.Open(id, fx.profiles[id], core.DefaultPipelineConfig()); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			for _, it := range fx.pumped[id] {
				m.Push(it)
			}
		}
		return ests, log.trans
	}
	estA, transA := run()
	estB, transB := run()
	for id := range estA {
		if len(estA[id]) != len(estB[id]) {
			t.Fatalf("%s: replay produced %d vs %d estimates", id, len(estA[id]), len(estB[id]))
		}
		for i := range estA[id] {
			if estA[id][i] != estB[id][i] {
				t.Fatalf("%s: estimate %d differs between replays", id, i)
			}
		}
		if len(estA[id]) == 0 {
			t.Fatalf("%s: replay produced no estimates", id)
		}
	}
	for id := range transA {
		if len(transA[id]) != len(transB[id]) {
			t.Fatalf("%s: replay transition counts differ: %v vs %v", id, transA[id], transB[id])
		}
		for i := range transA[id] {
			if transA[id][i] != transB[id][i] {
				t.Fatalf("%s: transition %d differs between replays", id, i)
			}
		}
	}
}
