package journal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the full decode stack —
// envelope framing, payload decode, recovery replay — and holds two
// invariants: nothing panics, and anything that does decode is
// canonical (re-encoding reproduces the exact bytes consumed).
func FuzzJournalDecode(f *testing.F) {
	// Seed with one valid record of each kind, a truncation, and a
	// corruption, so the fuzzer starts at the format's edge.
	seed := []Record{
		{Kind: KindEstimate, Session: "s", T: 1.5, Yaw: -10, Position: 2, Source: 1, MatchDist: 0.3, Health: 1},
		{Kind: KindHealth, Session: "cab", T: 2, From: 1, To: 2},
		{Kind: KindReap, Session: "idle", T: 3},
		{Kind: KindClose, Session: "s", T: 4, Health: 2},
		{Kind: KindShutdown, T: 4},
	}
	var all []byte
	for i := range seed {
		framed, err := AppendRecord(nil, &seed[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(framed)
		all = append(all, framed...)
	}
	f.Add(all)
	f.Add(all[:len(all)-7])
	corrupt := append([]byte(nil), all...)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte("ViHJ"))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		jr := NewReader(bytes.NewReader(data))
		var off int64
		for {
			rec, err := jr.Next()
			if err != nil {
				if err == io.EOF && jr.Offset() != int64(len(data)) {
					t.Fatalf("clean EOF at %d of %d bytes", jr.Offset(), len(data))
				}
				break
			}
			// Canonical form: what decoded must re-encode to the very
			// bytes it was decoded from.
			re, err := AppendRecord(nil, &rec)
			if err != nil {
				t.Fatalf("valid record failed re-encode: %+v: %v", rec, err)
			}
			if !bytes.Equal(re, data[off:jr.Offset()]) {
				t.Fatalf("record not canonical at offset %d", off)
			}
			off = jr.Offset()
		}
		// Recovery must digest anything without error or panic, and
		// agree with the reader on the valid prefix.
		res, err := Recover(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("Recover errored: %v", err)
		}
		if res.Diag.ValidBytes != jr.Offset() {
			t.Fatalf("recover stopped at %d, reader at %d", res.Diag.ValidBytes, jr.Offset())
		}
	})
}
