// Package journal is the serving stack's durable estimate/health
// journal: an append-only, crash-recoverable log of per-session
// estimates, degradation-state transitions, and reap/close events,
// written behind the hot path so ingest never blocks on I/O.
//
// # Record format
//
// Every record is one internal/envelope frame (the same
// magic/version/length/CRC-32 layout driver profiles use, PR 4) under
// the "ViHJ" magic, carrying a fixed-width big-endian payload (see
// record.go). Records are self-delimiting and individually
// checksummed, so a reader can replay a file record by record and
// stop at the exact byte where a crash tore the tail — Recover does.
//
// # Write-behind contract
//
// Append never blocks and never touches the disk: it places the
// record on a bounded in-memory queue and returns. A single writer
// goroutine drains the queue, encodes records into group commits, and
// issues one Write (plus at most one Sync, per policy) per batch. A
// full queue sheds the new record — counted, like every drop in the
// serving stack — because a slow disk must degrade durability, never
// latency. The cost is bounded, explicit loss: everything between the
// last committed batch and the crash is gone, and the books say so.
//
// Group commits close on whichever comes first: the batch reaching
// Config.BatchSize records, or the incoming record's stream time
// running Config.IntervalS past the batch's first record. The
// interval is measured on stream time — the journal reads no wall
// clocks unless metrics are enabled — so a given record sequence
// produces byte-identical files run after run. The flip side: an
// idle stream holds its tail batch until the next record, Flush, or
// Close delivers it.
//
// # Fsync policy
//
// SyncBatch (default) fsyncs after every group commit: at most one
// batch of records is exposed to OS/power loss. SyncNone leaves
// syncing to the OS (crash-consistent but not power-fail bounded);
// SyncAlways commits and fsyncs every record individually — the
// durability-maximal, throughput-minimal end. Close always flushes,
// writes a KindShutdown trailer, and fsyncs regardless of policy.
package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"vihot/internal/obs"
)

// Errors returned by the Writer.
var (
	ErrClosed   = errors.New("journal: writer closed")
	ErrNoWriter = errors.New("journal: config has no writer")
)

// SyncPolicy selects when the writer fsyncs the underlying file.
type SyncPolicy uint8

// Sync policies. The zero value is the default, SyncBatch.
const (
	// SyncBatch fsyncs after every group commit.
	SyncBatch SyncPolicy = iota
	// SyncNone never fsyncs during the run (Close still does).
	SyncNone
	// SyncAlways commits and fsyncs every record individually.
	SyncAlways
)

// String names the policy for flags and tooling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses a -journal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want batch, none, or always)", s)
	}
}

// Syncer is the optional flush-to-stable-storage surface of the
// underlying writer. *os.File implements it; an in-memory test buffer
// need not.
type Syncer interface{ Sync() error }

// Config tunes a Writer. The zero value of every field but W selects
// the defaults.
type Config struct {
	// W receives the journal bytes. Required by New (OpenFile fills it
	// in). If it implements Syncer, the sync policy applies; otherwise
	// syncs are no-ops.
	W io.Writer
	// BatchSize is the group-commit size in records. Default 64.
	BatchSize int
	// IntervalS is the group-commit stream-time interval in seconds: a
	// batch is committed once an incoming record's stream time runs
	// this far past the batch's first record. Default 0.25.
	IntervalS float64
	// QueueLen bounds the in-memory queue between Append and the
	// writer goroutine. Default 4096. A full queue sheds the appended
	// record (counted in Stats.DroppedFull).
	QueueLen int
	// Sync is the fsync policy. Default SyncBatch.
	Sync SyncPolicy
	// OnError, if set, receives every asynchronous write/sync failure
	// from the writer goroutine. Called serially from that goroutine.
	OnError func(error)
	// Metrics, if set, registers the vihot_journal_* series there. The
	// counters exist either way (Stats reads them); the sync-latency
	// histogram is only populated when Metrics is set, so an
	// unobserved journal reads no wall clocks.
	Metrics *obs.Registry
}

// Stats is one observation of the writer's counters. Monotone per
// field; not a consistent cut across fields. Conservation: with the
// writer idle (after Flush) and no concurrent appenders,
//
//	Enqueued == Records + EncodeErrors  and every Append returned
//	true exactly Enqueued times, false DroppedFull+DroppedClosed times.
type Stats struct {
	Enqueued      uint64 // records accepted onto the queue
	DroppedFull   uint64 // records shed because the queue was full
	DroppedClosed uint64 // records refused after Close
	Records       uint64 // records written to the underlying writer
	Batches       uint64 // group commits (Write calls)
	Syncs         uint64 // fsyncs issued
	Errors        uint64 // write/sync/encode failures
	Bytes         uint64 // bytes handed to the underlying writer
}

// writerMetrics is the registry-backed counter block; a private
// registry backs it when the caller supplies none.
type writerMetrics struct {
	enqueued      *obs.Counter
	droppedFull   *obs.Counter
	droppedClosed *obs.Counter
	records       *obs.Counter
	batches       *obs.Counter
	syncs         *obs.Counter
	errors        *obs.Counter
	bytes         *obs.Counter
	depth         *obs.Gauge
	batchH        *obs.Histogram
	syncH         *obs.Histogram // nil without cfg.Metrics: no wall clocks
}

// batchBuckets are the batch-size histogram bounds (records per
// group commit).
func batchBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

func newWriterMetrics(r *obs.Registry, wall bool) writerMetrics {
	dropped := func(reason string) *obs.Counter {
		return r.Counter("vihot_journal_dropped_total",
			"journal records shed before reaching the file, by reason", "reason", reason)
	}
	m := writerMetrics{
		enqueued:      r.Counter("vihot_journal_appends_total", "records accepted onto the write-behind queue"),
		droppedFull:   dropped("overflow"),
		droppedClosed: dropped("closed"),
		records:       r.Counter("vihot_journal_records_written_total", "records written to the journal file"),
		batches:       r.Counter("vihot_journal_batches_total", "group commits (write calls) issued"),
		syncs:         r.Counter("vihot_journal_syncs_total", "fsyncs issued"),
		errors:        r.Counter("vihot_journal_errors_total", "asynchronous write/sync/encode failures"),
		bytes:         r.Counter("vihot_journal_bytes_total", "bytes handed to the journal file"),
		depth:         r.Gauge("vihot_journal_queue_depth", "records waiting on the write-behind queue"),
		batchH: r.Histogram("vihot_journal_batch_records",
			"group-commit size in records", batchBuckets()),
	}
	if wall {
		m.syncH = r.Histogram("vihot_journal_sync_seconds",
			"wall-clock fsync latency", obs.LatencyBuckets())
	}
	return m
}

// ctlReq is a Flush or Close request into the writer goroutine.
type ctlReq struct {
	close bool
	ack   chan error
}

// Writer is the write-behind journal appender. Append is safe for
// concurrent use; Flush and Close serialize behind the same lock.
type Writer struct {
	cfg   Config
	sync  Syncer // cfg.W if it implements Syncer, else nil
	owned io.Closer

	recs chan Record
	ctl  chan ctlReq

	mu     sync.RWMutex // guards closed against Append/Flush racing Close
	closed bool

	m writerMetrics
}

// New builds a Writer over cfg.W and starts its writer goroutine.
// Close must be called to flush the tail and release it.
func New(cfg Config) (*Writer, error) {
	if cfg.W == nil {
		return nil, ErrNoWriter
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 64
	}
	if cfg.IntervalS <= 0 {
		cfg.IntervalS = 0.25
	}
	if cfg.QueueLen < 1 {
		cfg.QueueLen = 4096
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &Writer{
		cfg:  cfg,
		recs: make(chan Record, cfg.QueueLen),
		ctl:  make(chan ctlReq),
		m:    newWriterMetrics(reg, cfg.Metrics != nil),
	}
	if s, ok := cfg.W.(Syncer); ok {
		w.sync = s
	}
	go w.run()
	return w, nil
}

// OpenFile opens (creating or appending to) a journal file and builds
// a Writer over it. The Writer owns the file: Close closes it. To
// resume after a crash, RepairFile first so the torn tail is gone and
// new records land on a valid prefix.
func OpenFile(path string, cfg Config) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cfg.W = f
	w, err := New(cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.owned = f
	return w, nil
}

// Append offers one record to the journal. It never blocks: the
// record is queued for the writer goroutine and true is returned, or
// it is shed (queue full, writer closed, or the record fails
// validation) and false is returned with the loss counted. Safe for
// concurrent use.
func (w *Writer) Append(rec Record) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		w.m.droppedClosed.Add(1)
		return false
	}
	select {
	case w.recs <- rec:
		w.m.enqueued.Add(1)
		w.m.depth.Set(float64(len(w.recs)))
		return true
	default:
		w.m.droppedFull.Add(1)
		return false
	}
}

// Flush blocks until every record appended before the call has been
// encoded, written, and (per policy) synced. Returns the commit
// error, if any; ErrClosed after Close.
func (w *Writer) Flush() error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	req := ctlReq{ack: make(chan error)}
	w.ctl <- req
	return <-req.ack
}

// Close flushes the queue, appends a KindShutdown trailer, fsyncs
// (regardless of policy, when the underlying writer can), stops the
// writer goroutine, and closes the file if the Writer owns one.
// Repeat calls return ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.closed = true
	w.mu.Unlock()
	req := ctlReq{close: true, ack: make(chan error)}
	w.ctl <- req
	err := <-req.ack
	if w.owned != nil {
		if cerr := w.owned.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats returns the current counter values.
func (w *Writer) Stats() Stats {
	return Stats{
		Enqueued:      w.m.enqueued.Value(),
		DroppedFull:   w.m.droppedFull.Value(),
		DroppedClosed: w.m.droppedClosed.Value(),
		Records:       w.m.records.Value(),
		Batches:       w.m.batches.Value(),
		Syncs:         w.m.syncs.Value(),
		Errors:        w.m.errors.Value(),
		Bytes:         w.m.bytes.Value(),
	}
}

// batch is the writer goroutine's in-flight group commit.
type batch struct {
	buf    []byte
	n      int
	firstT float64
	maxT   float64
	anyT   bool
}

// add encodes one record onto the batch. Encode failures (invalid
// records) are counted and reported, never written.
func (w *Writer) add(b *batch, rec Record) {
	out, err := AppendRecord(b.buf, &rec)
	if err != nil {
		w.m.errors.Add(1)
		w.fail(err)
		return
	}
	if b.n == 0 {
		b.firstT = rec.T
	}
	if !b.anyT || rec.T > b.maxT {
		b.maxT, b.anyT = rec.T, true
	}
	b.buf = out
	b.n++
}

// due reports whether the batch should commit after absorbing a
// record stamped t.
func (w *Writer) due(b *batch, t float64) bool {
	if b.n >= w.cfg.BatchSize {
		return true
	}
	if w.cfg.Sync == SyncAlways {
		return b.n > 0
	}
	return b.n > 0 && t-b.firstT >= w.cfg.IntervalS
}

// commit writes the batch (one Write call) and syncs per policy. The
// batch is reset either way: a failed commit's records are lost and
// counted, exactly like an overflow shed — the journal degrades
// durability, never blocks or retries unboundedly.
func (w *Writer) commit(b *batch, sync bool) error {
	if b.n == 0 {
		return nil
	}
	n, err := w.cfg.W.Write(b.buf)
	w.m.bytes.Add(uint64(n))
	if err != nil {
		w.m.errors.Add(1)
		w.fail(fmt.Errorf("journal: write: %w", err))
	} else {
		w.m.batches.Add(1)
		w.m.records.Add(uint64(b.n))
		w.m.batchH.Observe(float64(b.n))
		if sync && w.sync != nil {
			var t0 time.Time
			if w.m.syncH != nil {
				t0 = time.Now()
			}
			serr := w.sync.Sync()
			if w.m.syncH != nil {
				w.m.syncH.Observe(time.Since(t0).Seconds())
			}
			if serr != nil {
				w.m.errors.Add(1)
				w.fail(fmt.Errorf("journal: sync: %w", serr))
				err = serr
			} else {
				w.m.syncs.Add(1)
			}
		}
	}
	b.buf = b.buf[:0]
	b.n = 0
	return err
}

// fail reports an asynchronous failure to the configured sink.
func (w *Writer) fail(err error) {
	if w.cfg.OnError != nil {
		w.cfg.OnError(err)
	}
}

// run is the writer goroutine: drain, group, commit. Commit failures
// between control calls stick: the next Flush or Close returns the
// first one, so a caller that only checks at shutdown still learns
// the journal lost data.
func (w *Writer) run() {
	var b batch
	var sticky error
	syncEach := w.cfg.Sync != SyncNone
	for {
		select {
		case rec := <-w.recs:
			w.add(&b, rec)
			if w.due(&b, rec.T) {
				if e := w.commit(&b, syncEach); e != nil && sticky == nil {
					sticky = e
				}
			}
			w.m.depth.Set(float64(len(w.recs)))
		case req := <-w.ctl:
			// Drain everything already queued, then commit the tail.
			err := sticky
			sticky = nil
		drain:
			for {
				select {
				case rec := <-w.recs:
					w.add(&b, rec)
					if w.due(&b, rec.T) {
						if e := w.commit(&b, syncEach); err == nil {
							err = e
						}
					}
				default:
					break drain
				}
			}
			if e := w.commit(&b, syncEach); err == nil {
				err = e
			}
			w.m.depth.Set(0)
			if !req.close {
				req.ack <- err
				continue
			}
			// Clean shutdown: a trailer record at the journal's high-water
			// stream time, then one final fsync no matter the policy — the
			// whole point of a graceful exit is that nothing is left to
			// the page cache.
			w.add(&b, Record{Kind: KindShutdown, T: b.maxT})
			if e := w.commit(&b, false); err == nil {
				err = e
			}
			if w.sync != nil {
				if e := w.sync.Sync(); e != nil {
					w.m.errors.Add(1)
					w.fail(fmt.Errorf("journal: close sync: %w", e))
					if err == nil {
						err = e
					}
				} else {
					w.m.syncs.Add(1)
				}
			}
			req.ack <- err
			return
		}
	}
}
