package journal

import (
	"bytes"
	"errors"
	"io"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vihot/internal/obs"
)

// estRec builds a representative estimate record.
func estRec(session string, t, yaw float64) Record {
	return Record{
		Kind: KindEstimate, Session: session, T: t,
		Yaw: yaw, Position: 3, Source: 1, MatchDist: 0.12, Health: 0,
	}
}

// syncBuffer is an in-memory journal target that counts Write and
// Sync calls — the logicalWrites-vs-dbCalls split the bench reports,
// in test form.
type syncBuffer struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	syncs  int
	failAt int // fail the Nth write (1-based); 0 = never
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	if b.failAt > 0 && b.writes == b.failAt {
		return 0, errors.New("injected write failure")
	}
	return b.buf.Write(p)
}

func (b *syncBuffer) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncs++
	return nil
}

func (b *syncBuffer) snapshot() (data []byte, writes, syncs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...), b.writes, b.syncs
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		estRec("cabin-1", 1.25, -12.5),
		{Kind: KindHealth, Session: "cabin-1", T: 2.0, From: 0, To: 1},
		{Kind: KindReap, Session: "idle-7", T: 3.5},
		{Kind: KindClose, Session: "cabin-1", T: 4.0, Health: 2},
		{Kind: KindShutdown, T: 4.0},
	}
	var framed []byte
	for i := range recs {
		out, err := AppendRecord(framed, &recs[i])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		framed = out
	}
	jr := NewReader(bytes.NewReader(framed))
	for i, want := range recs {
		got, err := jr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := jr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v", err)
	}
	if jr.Offset() != int64(len(framed)) {
		t.Errorf("offset = %d, want %d", jr.Offset(), len(framed))
	}
}

func TestRecordRejectsInvalid(t *testing.T) {
	cases := []Record{
		{Kind: 0, T: 1},                                     // zero kind
		{Kind: 99, T: 1},                                    // unknown kind
		{Kind: KindEstimate, T: math.NaN()},                 // NaN time
		{Kind: KindEstimate, T: 1, Yaw: math.Inf(1)},        // Inf yaw
		{Kind: KindEstimate, T: 1, MatchDist: math.NaN()},   // NaN dist
		{Kind: KindReap, Session: string(make([]byte, 5000))}, // oversized session
	}
	for i, r := range cases {
		if _, err := AppendRecord(nil, &r); !errors.Is(err, ErrBadRecord) {
			t.Errorf("case %d: err = %v, want ErrBadRecord", i, err)
		}
	}
}

func TestWriterBatchSizeTrigger(t *testing.T) {
	var sb syncBuffer
	w, err := New(Config{W: &sb, BatchSize: 4, IntervalS: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !w.Append(estRec("s", float64(i)*0.01, 1)) {
			t.Fatalf("append %d refused", i)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 8 {
		t.Errorf("records = %d, want 8", st.Records)
	}
	// 8 records at batch size 4: exactly 2 commits (Flush found nothing
	// left over). The writer may legally have committed in smaller
	// groups only if the queue drained slower, but the size trigger
	// bounds it: never more than 8, never fewer than 2.
	if st.Batches < 2 || st.Batches > 8 {
		t.Errorf("batches = %d, want within [2,8]", st.Batches)
	}
	if st.Syncs != st.Batches {
		t.Errorf("syncs = %d, batches = %d: SyncBatch must pair them", st.Syncs, st.Batches)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterIntervalTrigger(t *testing.T) {
	var sb syncBuffer
	w, err := New(Config{W: &sb, BatchSize: 1 << 20, IntervalS: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Two records 0.3 s apart: the second runs past the interval and
	// must commit the batch without any Flush.
	w.Append(estRec("s", 0.0, 1))
	w.Append(estRec("s", 0.3, 2))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Records != 2 || st.Batches == 0 {
		t.Errorf("stats = %+v, want 2 records in ≥1 batch", st)
	}
	w.Close()
}

func TestWriterDeterministicBytes(t *testing.T) {
	run := func() []byte {
		var sb syncBuffer
		w, err := New(Config{W: &sb, BatchSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			w.Append(estRec("car", float64(i)*0.1, float64(i)))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, _, _ := sb.snapshot()
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("same record sequence produced different journal bytes")
	}
}

func TestWriterOverflowSheds(t *testing.T) {
	// A writer whose goroutine is wedged behind a blocking first Write
	// would be flaky to build; instead use QueueLen=1 and a pre-filled
	// queue window: append faster than the drain can be observed. The
	// deterministic route: stop the goroutine entirely by closing, then
	// assert DroppedClosed; overflow is covered via a full queue racing
	// a slow writer in the soak tests. Here, pin the accounting rules.
	var sb syncBuffer
	w, err := New(Config{W: &sb, QueueLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Append(estRec("s", 1, 1)) {
		t.Error("append accepted after Close")
	}
	if st := w.Stats(); st.DroppedClosed != 1 {
		t.Errorf("droppedClosed = %d, want 1", st.DroppedClosed)
	}
	if err := w.Close(); err != ErrClosed {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if err := w.Flush(); err != ErrClosed {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
}

func TestWriterSyncPolicies(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		var sb syncBuffer
		w, _ := New(Config{W: &sb, Sync: SyncNone, BatchSize: 2})
		for i := 0; i < 6; i++ {
			w.Append(estRec("s", float64(i), 1))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, _, syncs := sb.snapshot()
		if syncs != 1 {
			t.Errorf("syncs = %d, want exactly the close sync", syncs)
		}
	})
	t.Run("always", func(t *testing.T) {
		var sb syncBuffer
		w, _ := New(Config{W: &sb, Sync: SyncAlways, BatchSize: 64})
		for i := 0; i < 5; i++ {
			w.Append(estRec("s", float64(i), 1))
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		st := w.Stats()
		// Every record its own commit+sync, regardless of batch size.
		if st.Batches != 5 || st.Syncs != 5 {
			t.Errorf("batches=%d syncs=%d, want 5/5", st.Batches, st.Syncs)
		}
		w.Close()
	})
}

func TestWriterWriteFailureCountedAndReported(t *testing.T) {
	sb := syncBuffer{failAt: 1}
	var reported []error
	var mu sync.Mutex
	w, err := New(Config{
		W: &sb, BatchSize: 2,
		OnError: func(e error) { mu.Lock(); reported = append(reported, e); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(estRec("s", 0, 1))
	w.Append(estRec("s", 0.01, 1))
	if err := w.Flush(); err == nil {
		t.Error("Flush swallowed the write failure")
	}
	st := w.Stats()
	if st.Errors == 0 {
		t.Error("write failure not counted")
	}
	mu.Lock()
	n := len(reported)
	mu.Unlock()
	if n == 0 {
		t.Error("OnError never called")
	}
	// The journal degrades, never wedges: later appends still land.
	w.Append(estRec("s", 0.02, 2))
	if err := w.Flush(); err != nil {
		t.Fatalf("writer wedged after failure: %v", err)
	}
	w.Close()
	data, _, _ := sb.snapshot()
	res, err := Recover(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Sessions["s"]; s == nil || s.Estimate.Yaw != 2 {
		t.Errorf("post-failure record not durable: %+v", s)
	}
}

func TestWriterInvalidRecordCounted(t *testing.T) {
	var sb syncBuffer
	w, _ := New(Config{W: &sb})
	w.Append(Record{Kind: KindEstimate, Session: "s", T: math.NaN()})
	w.Flush()
	if st := w.Stats(); st.Errors != 1 || st.Records != 0 {
		t.Errorf("stats = %+v, want the NaN record counted as an error, not written", st)
	}
	w.Close()
}

func TestWriterStatsConservation(t *testing.T) {
	var sb syncBuffer
	w, _ := New(Config{W: &sb, BatchSize: 7})
	accepted := 0
	for i := 0; i < 100; i++ {
		if w.Append(estRec("s", float64(i)*0.001, 1)) {
			accepted++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Enqueued != uint64(accepted) {
		t.Errorf("enqueued = %d, accepted = %d", st.Enqueued, accepted)
	}
	// Close's trailer is written but never enqueued, hence the +1.
	if st.Records != st.Enqueued+1 {
		t.Errorf("records = %d, want enqueued+trailer = %d", st.Records, st.Enqueued+1)
	}
	if st.DroppedFull != 0 || st.DroppedClosed != 0 || st.Errors != 0 {
		t.Errorf("unexpected losses: %+v", st)
	}
}

func TestOpenFileAndTrailer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.journal")
	w, err := OpenFile(path, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(estRec("a", 1.0, 10))
	w.Append(Record{Kind: KindHealth, Session: "a", T: 2.0, From: 0, To: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanShutdown {
		t.Error("trailer not detected after clean Close")
	}
	if res.Records != 3 || res.Counts[KindShutdown] != 1 {
		t.Errorf("records = %d, counts = %v", res.Records, res.Counts)
	}
	if s := res.Sessions["a"]; s == nil || s.Health != 1 || !s.HasEstimate {
		t.Errorf("session state = %+v", res.Sessions["a"])
	}
	// The trailer carries the journal's high-water stream time.
	if res.LastT != 2.0 {
		t.Errorf("lastT = %v, want 2.0", res.LastT)
	}
}

func TestWriterMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	var sb syncBuffer
	w, err := New(Config{W: &sb, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(estRec("s", 1, 1))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, name := range []string{
		"vihot_journal_appends_total",
		"vihot_journal_dropped_total",
		"vihot_journal_records_written_total",
		"vihot_journal_batches_total",
		"vihot_journal_syncs_total",
		"vihot_journal_errors_total",
		"vihot_journal_bytes_total",
		"vihot_journal_queue_depth",
		"vihot_journal_batch_records",
		"vihot_journal_sync_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s not registered", name)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"batch", SyncBatch}, {"none", SyncNone}, {"always", SyncAlways}, {"ALWAYS", SyncAlways}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Errorf("empty String for %v", got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestNewRejectsNilWriter(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoWriter) {
		t.Errorf("err = %v, want ErrNoWriter", err)
	}
}

func TestWriterConcurrentAppend(t *testing.T) {
	var sb syncBuffer
	w, err := New(Config{W: &sb, BatchSize: 16, QueueLen: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	var accepted, rejected uint64
	var mu sync.Mutex
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acc, rej := uint64(0), uint64(0)
			for i := 0; i < per; i++ {
				if w.Append(estRec("s", float64(g*per+i)*1e-4, 1)) {
					acc++
				} else {
					rej++
				}
			}
			mu.Lock()
			accepted += acc
			rejected += rej
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Enqueued != accepted || st.DroppedFull+st.DroppedClosed != rejected {
		t.Errorf("conservation broken: stats %+v vs accepted %d rejected %d", st, accepted, rejected)
	}
	if st.Records != st.Enqueued+1 {
		t.Errorf("records = %d, want enqueued+trailer", st.Records)
	}
	data, _, _ := sb.snapshot()
	res, err := Recover(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != int(st.Records) {
		t.Errorf("recovered %d records, wrote %d", res.Records, st.Records)
	}
	if !res.CleanShutdown {
		t.Error("clean shutdown not detected")
	}
}
