package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"vihot/internal/envelope"
)

// Magic opens every journal record on disk.
const Magic = "ViHJ"

// FormatVersion is the newest record format this build writes and the
// highest it accepts.
const FormatVersion = 1

// maxSession bounds the session-ID length a record may carry; serve
// session IDs are short strings (UDP addresses, car IDs), so anything
// past this is corruption that slipped the CRC.
const maxSession = 4096

// maxRecordPayload caps the payload length the reader will believe: a
// full fixed section plus the largest legal session ID. Export is the
// widest kind tail.
const maxRecordPayload = recFixedLen + exportLen + maxSession

// recordSpec is the journal's per-record envelope: the same
// magic/version/length/CRC-32 frame driver profiles use (PR 4,
// internal/envelope), under the journal's own magic.
var recordSpec = envelope.Spec{
	Magic:      Magic,
	Version:    FormatVersion,
	MaxPayload: maxRecordPayload,
}

// ErrBadRecord wraps every payload-level decode failure: unknown
// kind, non-finite field, truncated or oversized payload. Framing
// failures surface as envelope errors instead.
var ErrBadRecord = errors.New("journal: bad record")

// Kind discriminates what a record describes.
type Kind uint8

// Record kinds. The zero value is invalid on purpose: an
// all-zeroes payload (a torn write over preallocated space) can never
// decode as a legitimate record.
const (
	// KindEstimate is one delivered estimate: the yaw/position the
	// serving engine handed its sinks, plus the session health it was
	// emitted under.
	KindEstimate Kind = 1
	// KindHealth is one degradation-state transition.
	KindHealth Kind = 2
	// KindReap is one idle-TTL eviction.
	KindReap Kind = 3
	// KindClose is one explicit CloseSession, carrying the session's
	// last clock and health.
	KindClose Kind = 4
	// KindShutdown is the journal's own clean-shutdown trailer,
	// written by Writer.Close. A recovery that finds it last knows the
	// process exited cleanly; its absence marks a crash.
	KindShutdown Kind = 5
	// KindExport is one session-state export: the snapshot a node
	// drain or failover hands to the session's next owner (session
	// clock, health, last estimate), plus the source and destination
	// node indices of the transfer. Written to a source node's journal
	// on drain (the durable record that the session left this node)
	// and to the cluster coordinator's journal for every reassignment,
	// drain or failover alike.
	KindExport Kind = 6
)

// Export record flag bits (Record.Flags, KindExport only).
const (
	// ExportHasEstimate marks the estimate fields (Yaw, Position,
	// Source, MatchDist, EstT) as carrying the session's last
	// delivered estimate.
	ExportHasEstimate uint8 = 1 << 0
	// ExportHasClock marks T as the session's admitted-item clock; a
	// session that never admitted an item exports without it and
	// restores fresh.
	ExportHasClock uint8 = 1 << 1
	// ExportFailover marks a transfer forced by a failure detector
	// rather than an orderly drain: the state came from the router's
	// estimate cache, not from the (dead) source node itself.
	ExportFailover uint8 = 1 << 2
)

// String names the kind for tooling output.
func (k Kind) String() string {
	switch k {
	case KindEstimate:
		return "estimate"
	case KindHealth:
		return "health"
	case KindReap:
		return "reap"
	case KindClose:
		return "close"
	case KindShutdown:
		return "shutdown"
	case KindExport:
		return "export"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// valid reports whether the kind is one this build writes.
func (k Kind) valid() bool { return k >= KindEstimate && k <= KindExport }

// Record is one journal entry. Exactly the fields implied by Kind are
// meaningful; the rest stay zero and are not encoded.
type Record struct {
	Kind    Kind
	Session string  // empty for KindShutdown
	T       float64 // stream time (seconds); must be finite

	// KindEstimate fields.
	Yaw       float64 // degrees
	Position  int32   // profile position index
	Source    uint8   // core.Source of the estimate
	MatchDist float64 // normalized DTW distance of the winning match

	// KindEstimate and KindClose: session health (serve.Health) at the
	// event. For KindHealth, To carries the destination instead.
	Health uint8

	// KindHealth fields. KindExport reuses the pair as the source and
	// destination node indices of the transfer (positions in the
	// cluster's sorted static membership).
	From, To uint8

	// KindExport fields: the stream time of the exported last
	// estimate (T carries the session clock) and the Export* flag
	// bits saying which sections of the snapshot are populated.
	EstT  float64
	Flags uint8
}

// Payload layout (after the envelope frame):
//
//	offset  size  field
//	0       1     kind
//	1       8     stream time, IEEE-754 bits big-endian
//	9       2     session length S, big-endian uint16
//	11      S     session bytes
//	11+S    …     kind-specific fixed fields (below)
//
//	estimate: yaw f64 | position i32 | source u8 | matchDist f64 | health u8
//	health:   from u8 | to u8
//	close:    health u8
//	export:   estimate tail | estT f64 | from u8 | to u8 | flags u8
//	reap, shutdown: (nothing)
const (
	recFixedLen = 1 + 8 + 2
	estimateLen = 8 + 4 + 1 + 8 + 1
	healthLen   = 2
	closeLen    = 1
	exportLen   = estimateLen + 8 + 3
)

// kindTail returns the kind-specific payload length.
func kindTail(k Kind) int {
	switch k {
	case KindEstimate:
		return estimateLen
	case KindHealth:
		return healthLen
	case KindClose:
		return closeLen
	case KindExport:
		return exportLen
	default:
		return 0
	}
}

// validate rejects records no reader should ever have to interpret:
// unknown kinds, oversized sessions, and non-finite numeric fields
// (the same NaN/Inf hygiene the profile validator enforces — a NaN
// stream time would poison every last-write-wins comparison recovery
// makes).
func (r *Record) validate() error {
	if !r.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %d", ErrBadRecord, uint8(r.Kind))
	}
	if len(r.Session) > maxSession {
		return fmt.Errorf("%w: session id %d bytes long", ErrBadRecord, len(r.Session))
	}
	if badFloat(r.T) {
		return fmt.Errorf("%w: non-finite stream time %v", ErrBadRecord, r.T)
	}
	if (r.Kind == KindEstimate || r.Kind == KindExport) && (badFloat(r.Yaw) || badFloat(r.MatchDist)) {
		return fmt.Errorf("%w: non-finite estimate fields (yaw %v, dist %v)", ErrBadRecord, r.Yaw, r.MatchDist)
	}
	if r.Kind == KindExport && badFloat(r.EstT) {
		return fmt.Errorf("%w: non-finite export estimate time %v", ErrBadRecord, r.EstT)
	}
	return nil
}

func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// appendPayload encodes the record's payload (no envelope) onto dst.
func (r *Record) appendPayload(dst []byte) ([]byte, error) {
	if err := r.validate(); err != nil {
		return dst, err
	}
	dst = append(dst, byte(r.Kind))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.T))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Session)))
	dst = append(dst, r.Session...)
	switch r.Kind {
	case KindEstimate:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Yaw))
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.Position))
		dst = append(dst, r.Source)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MatchDist))
		dst = append(dst, r.Health)
	case KindHealth:
		dst = append(dst, r.From, r.To)
	case KindClose:
		dst = append(dst, r.Health)
	case KindExport:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Yaw))
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.Position))
		dst = append(dst, r.Source)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MatchDist))
		dst = append(dst, r.Health)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.EstT))
		dst = append(dst, r.From, r.To, r.Flags)
	}
	return dst, nil
}

// AppendRecord frames one record (payload + envelope) onto dst.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	payload, err := r.appendPayload(nil)
	if err != nil {
		return dst, err
	}
	return envelope.Append(dst, recordSpec, payload), nil
}

// DecodeRecord decodes one record payload (the bytes inside the
// envelope). It is strict: the payload must be exactly consumed, the
// kind known, every float finite — anything else is ErrBadRecord.
func DecodeRecord(payload []byte) (Record, error) {
	var r Record
	if len(payload) < recFixedLen {
		return r, fmt.Errorf("%w: %d-byte payload shorter than fixed section", ErrBadRecord, len(payload))
	}
	r.Kind = Kind(payload[0])
	if !r.Kind.valid() {
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, payload[0])
	}
	r.T = math.Float64frombits(binary.BigEndian.Uint64(payload[1:9]))
	slen := int(binary.BigEndian.Uint16(payload[9:11]))
	if want := recFixedLen + slen + kindTail(r.Kind); len(payload) != want {
		return Record{}, fmt.Errorf("%w: %d-byte payload, want %d for kind %v", ErrBadRecord, len(payload), want, r.Kind)
	}
	r.Session = string(payload[recFixedLen : recFixedLen+slen])
	tail := payload[recFixedLen+slen:]
	switch r.Kind {
	case KindEstimate:
		r.Yaw = math.Float64frombits(binary.BigEndian.Uint64(tail[0:8]))
		r.Position = int32(binary.BigEndian.Uint32(tail[8:12]))
		r.Source = tail[12]
		r.MatchDist = math.Float64frombits(binary.BigEndian.Uint64(tail[13:21]))
		r.Health = tail[21]
	case KindHealth:
		r.From, r.To = tail[0], tail[1]
	case KindClose:
		r.Health = tail[0]
	case KindExport:
		r.Yaw = math.Float64frombits(binary.BigEndian.Uint64(tail[0:8]))
		r.Position = int32(binary.BigEndian.Uint32(tail[8:12]))
		r.Source = tail[12]
		r.MatchDist = math.Float64frombits(binary.BigEndian.Uint64(tail[13:21]))
		r.Health = tail[21]
		r.EstT = math.Float64frombits(binary.BigEndian.Uint64(tail[22:30]))
		r.From, r.To, r.Flags = tail[30], tail[31], tail[32]
	}
	if err := r.validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}
