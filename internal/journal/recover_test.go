package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vihot/internal/envelope"
)

// buildJournal frames a canonical record sequence: two sessions, one
// health transition, one reap, one close, no trailer (the "crashed"
// baseline the damage cases are cut from).
func buildJournal(t *testing.T) ([]byte, []Record) {
	t.Helper()
	recs := []Record{
		estRec("alpha", 0.10, 5),
		estRec("beta", 0.12, -3),
		{Kind: KindHealth, Session: "alpha", T: 0.50, From: 0, To: 1},
		estRec("alpha", 0.60, 6),
		{Kind: KindReap, Session: "beta", T: 1.20},
		estRec("alpha", 1.30, 7),
		{Kind: KindClose, Session: "alpha", T: 1.50, Health: 1},
	}
	var framed []byte
	for i := range recs {
		out, err := AppendRecord(framed, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
		framed = out
	}
	return framed, recs
}

// recordOffsets returns the byte offset of each record boundary.
func recordOffsets(t *testing.T, framed []byte) []int64 {
	t.Helper()
	jr := NewReader(bytes.NewReader(framed))
	offs := []int64{0}
	for {
		if _, err := jr.Next(); err != nil {
			break
		}
		offs = append(offs, jr.Offset())
	}
	return offs
}

// TestRecoverDamage is the adversarial table: every physical failure
// mode a crash can leave behind must recover to the longest valid
// prefix, report the damage, and never error out of Recover itself.
func TestRecoverDamage(t *testing.T) {
	framed, recs := buildJournal(t)
	offs := recordOffsets(t, framed)
	if len(offs) != len(recs)+1 {
		t.Fatalf("offsets = %d, want %d", len(offs), len(recs)+1)
	}

	dup := append(append([]byte(nil), framed...), framed[offs[5]:offs[6]]...)
	dup = dup[:len(dup)-3] // duplicate tail record, itself torn

	cases := []struct {
		name        string
		in          []byte
		wantRecords int
		wantTorn    bool
	}{
		{"clean no trailer", framed, len(recs), false},
		{"empty file", nil, 0, false},
		{"torn mid-header", framed[:offs[3]+7], 3, true},
		{"torn mid-payload", framed[:offs[5]+envelope.HeaderLen+4], 5, true},
		{"torn single byte", framed[:offs[6]+1], 6, true},
		{"bit flip in payload", flipAt(framed, offs[2]+envelope.HeaderLen+3), 2, true},
		{"bit flip in header length", flipAt(framed, offs[4]+9), 4, true},
		{"all-zero tail page", append(append([]byte(nil), framed...), make([]byte, 512)...), len(recs), true},
		{"duplicate torn tail", dup, len(recs), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Recover(bytes.NewReader(tc.in), int64(len(tc.in)))
			if err != nil {
				t.Fatalf("Recover errored: %v", err)
			}
			if res.Records != tc.wantRecords {
				t.Errorf("records = %d, want %d", res.Records, tc.wantRecords)
			}
			if res.Diag.Truncated != tc.wantTorn {
				t.Errorf("truncated = %v, want %v", res.Diag.Truncated, tc.wantTorn)
			}
			if res.CleanShutdown {
				t.Error("no trailer was written, yet CleanShutdown")
			}
			// The valid prefix must itself replay to the same state: a
			// recovery of a recovery is a fixed point.
			again, err := Recover(bytes.NewReader(tc.in[:res.Diag.ValidBytes]), res.Diag.ValidBytes)
			if err != nil {
				t.Fatal(err)
			}
			if again.Records != res.Records || again.Diag.Truncated {
				t.Errorf("valid prefix did not replay cleanly: %+v", again.Diag)
			}
			if !reflect.DeepEqual(again.Sessions, res.Sessions) {
				t.Error("prefix replay diverged from recovery")
			}
			if tc.wantTorn && res.Diag.TailBytes == 0 {
				t.Error("torn tail reported zero tail bytes")
			}
		})
	}
}

func flipAt(b []byte, off int64) []byte {
	out := append([]byte(nil), b...)
	out[off] ^= 0x20
	return out
}

func TestRecoverSessionState(t *testing.T) {
	framed, _ := buildJournal(t)
	res, err := Recover(bytes.NewReader(framed), int64(len(framed)))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Sessions["alpha"]
	if a == nil || !a.Closed || a.Reaped || a.Health != 1 {
		t.Fatalf("alpha = %+v", a)
	}
	if !a.HasEstimate || a.Estimate.Yaw != 7 || a.Estimate.T != 1.30 {
		t.Errorf("alpha last estimate = %+v", a.Estimate)
	}
	if a.FirstT != 0.10 || a.LastT != 1.50 || a.Records != 5 {
		t.Errorf("alpha span = [%v, %v] over %d records", a.FirstT, a.LastT, a.Records)
	}
	b := res.Sessions["beta"]
	if b == nil || !b.Closed || !b.Reaped {
		t.Fatalf("beta = %+v", b)
	}
	if live := res.Live(); len(live) != 0 {
		t.Errorf("live = %v, want none (both sessions ended)", live)
	}
	if res.FirstT != 0.10 || res.LastT != 1.50 {
		t.Errorf("span = [%v, %v]", res.FirstT, res.LastT)
	}
}

func TestRecoverLiveAndReopen(t *testing.T) {
	recs := []Record{
		estRec("a", 0.1, 1),
		{Kind: KindClose, Session: "a", T: 0.2, Health: 0},
		estRec("a", 0.3, 2), // reused ID: session is live again
		estRec("b", 0.4, 3),
	}
	var framed []byte
	for i := range recs {
		framed, _ = AppendRecord(framed, &recs[i])
	}
	res, err := Recover(bytes.NewReader(framed), int64(len(framed)))
	if err != nil {
		t.Fatal(err)
	}
	live := res.Live()
	if len(live) != 2 || live[0] != "a" || live[1] != "b" {
		t.Errorf("live = %v, want [a b]", live)
	}
	if res.Sessions["a"].Closed {
		t.Error("reopened session still marked closed")
	}
}

func TestRecoverTrailerMidFileIsNotClean(t *testing.T) {
	recs := []Record{
		estRec("a", 0.1, 1),
		{Kind: KindShutdown, T: 0.1},
		estRec("a", 0.2, 2), // a restart appended past the old trailer
	}
	var framed []byte
	for i := range recs {
		framed, _ = AppendRecord(framed, &recs[i])
	}
	res, err := Recover(bytes.NewReader(framed), int64(len(framed)))
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanShutdown {
		t.Error("mid-file trailer treated as clean shutdown")
	}
	if res.Counts[KindShutdown] != 1 || res.Records != 3 {
		t.Errorf("records = %d, counts = %v", res.Records, res.Counts)
	}
}

func TestRepairFile(t *testing.T) {
	framed, _ := buildJournal(t)
	offs := recordOffsets(t, framed)
	torn := framed[:offs[4]+11] // mid-record
	path := filepath.Join(t.TempDir(), "torn.journal")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diag.Truncated || res.Records != 4 {
		t.Fatalf("repair recovered %d records, diag %+v", res.Records, res.Diag)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != offs[4] {
		t.Errorf("repaired size = %d, want %d", fi.Size(), offs[4])
	}

	// The repaired file must accept appended records and replay whole.
	w, err := OpenFile(path, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(estRec("gamma", 9.0, 42))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Diag.Truncated || !after.CleanShutdown {
		t.Errorf("post-repair journal unhealthy: %+v", after.Diag)
	}
	if after.Records != 6 { // 4 survivors + gamma + trailer
		t.Errorf("records = %d, want 6", after.Records)
	}
	if s := after.Sessions["gamma"]; s == nil || s.Estimate.Yaw != 42 {
		t.Errorf("appended record lost: %+v", s)
	}
}

func TestRepairFileCleanIsNoop(t *testing.T) {
	framed, _ := buildJournal(t)
	path := filepath.Join(t.TempDir(), "clean.journal")
	if err := os.WriteFile(path, framed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RepairFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, framed) {
		t.Error("repair rewrote a clean file")
	}
}

func TestRecoverFileMissing(t *testing.T) {
	res, err := RecoverFile(filepath.Join(t.TempDir(), "never-written"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.HasSpan || len(res.Sessions) != 0 {
		t.Errorf("missing file recovered non-empty state: %+v", res)
	}
	if _, err := RepairFile(filepath.Join(t.TempDir(), "also-missing")); err != nil {
		t.Errorf("repair of missing file = %v, want nil", err)
	}
}
