package journal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"vihot/internal/envelope"
)

// Reader replays a journal stream record by record. It is strict
// about what it returns — every record came through an intact
// envelope and a clean payload decode — and precise about where it
// stops: Offset is always the byte offset just past the last valid
// record, which is exactly where a repair should truncate and an
// appender should resume.
type Reader struct {
	br  *bufio.Reader
	off int64
	err error
}

// NewReader wraps a journal stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Next returns the next valid record. io.EOF means the stream ended
// cleanly on a record boundary; any other error means the bytes at
// Offset are torn or corrupt, and the reader stays stopped there.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	payload, _, err := envelope.Read(r.br, recordSpec)
	if err != nil {
		r.err = err
		return Record{}, err
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		r.err = err
		return Record{}, err
	}
	r.off += int64(envelope.HeaderLen + len(payload))
	return rec, nil
}

// Offset is the byte offset just past the last valid record.
func (r *Reader) Offset() int64 { return r.off }

// SessionState is what recovery knows about one session after
// replaying its records: enough for a warm restart to seed the
// session's last estimate and health, and for tooling to report
// per-session activity.
type SessionState struct {
	// Records is how many journal records mentioned this session.
	Records int
	// FirstT and LastT span the session's records (stream seconds).
	FirstT, LastT float64
	// HasEstimate reports whether Estimate holds a delivered estimate.
	HasEstimate bool
	// Estimate is the session's last KindEstimate record, verbatim.
	Estimate Record
	// Health is the last health value seen for the session — from an
	// estimate record, a transition's destination, or a close record,
	// whichever came last.
	Health uint8
	// Closed reports the session ended (KindClose, KindReap, or
	// KindExport).
	Closed bool
	// Reaped reports the close was an idle-TTL eviction specifically.
	Reaped bool
	// HandedOff reports the session left this node via a KindExport
	// transfer; Export then holds that record verbatim (its From/To
	// carry the node indices, its Flags say whether the transfer was a
	// drain or a failover).
	HandedOff bool
	Export    Record
}

// Diagnostics describes the physical condition of the scanned file.
type Diagnostics struct {
	// ValidBytes is the length of the valid record prefix — the offset
	// RepairFile truncates to.
	ValidBytes int64
	// TailBytes is how many bytes past the valid prefix the stream
	// carried (0 on a clean file).
	TailBytes int64
	// Truncated reports a torn or corrupt tail was found.
	Truncated bool
	// Err is the decode error that stopped the scan (nil on a clean
	// file).
	Err error
}

// RecoverResult is a replayed journal: aggregate counts, the time
// span, per-session terminal state, and the tail diagnostics.
type RecoverResult struct {
	// Records is the number of valid records replayed.
	Records int
	// Counts breaks Records down by kind.
	Counts map[Kind]int
	// Sessions maps session ID to its reconstructed state.
	Sessions map[string]*SessionState
	// HasSpan reports at least one record was replayed; FirstT and
	// LastT then span the journal's stream time.
	HasSpan       bool
	FirstT, LastT float64
	// CleanShutdown reports the last record is the KindShutdown
	// trailer Writer.Close appends — the process exited gracefully. A
	// crash (or any record after the trailer) leaves it false.
	CleanShutdown bool
	// Diag describes the physical tail of the file.
	Diag Diagnostics
}

// Live returns the sessions recovery considers open — journaled
// activity, never closed or reaped — sorted by ID. These are the
// candidates for warm-restart seeding.
func (res *RecoverResult) Live() []string {
	var ids []string
	for id, s := range res.Sessions {
		if !s.Closed {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// apply folds one record into the result.
func (res *RecoverResult) apply(rec Record) {
	res.Records++
	res.Counts[rec.Kind]++
	if !res.HasSpan {
		res.FirstT, res.HasSpan = rec.T, true
	}
	if rec.T > res.LastT || res.Records == 1 {
		res.LastT = rec.T
	}
	// The trailer is only "clean" if nothing follows it.
	res.CleanShutdown = rec.Kind == KindShutdown
	if rec.Kind == KindShutdown {
		return
	}
	s := res.Sessions[rec.Session]
	if s == nil {
		s = &SessionState{FirstT: rec.T}
		res.Sessions[rec.Session] = s
	}
	s.Records++
	s.LastT = rec.T
	switch rec.Kind {
	case KindEstimate:
		s.HasEstimate = true
		s.Estimate = rec
		s.Health = rec.Health
		// A record after a close means the ID was reopened: a fresh
		// session under a reused name.
		s.Closed, s.Reaped, s.HandedOff = false, false, false
	case KindHealth:
		s.Health = rec.To
		s.Closed, s.Reaped, s.HandedOff = false, false, false
	case KindReap:
		s.Closed, s.Reaped = true, true
	case KindClose:
		s.Closed = true
		s.Health = rec.Health
	case KindExport:
		// The session is gone from this node — closed here, live on the
		// destination. Keep the record so tooling can say where it went.
		s.Closed = true
		s.HandedOff = true
		s.Health = rec.Health
		s.Export = rec
	}
}

// Recover replays a journal stream to the last valid record and
// reconstructs per-session state. It never fails on a torn or corrupt
// tail — that is the case it exists for — it reports the damage in
// Diag and returns everything before it. size is the stream's total
// length in bytes (pass 0 if unknown; TailBytes is then 0 on damage).
func Recover(r io.Reader, size int64) (*RecoverResult, error) {
	res := &RecoverResult{
		Counts:   make(map[Kind]int),
		Sessions: make(map[string]*SessionState),
	}
	jr := NewReader(r)
	for {
		rec, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			res.Diag.Truncated = true
			res.Diag.Err = err
			break
		}
		res.apply(rec)
	}
	res.Diag.ValidBytes = jr.Offset()
	if res.Diag.Truncated && size > jr.Offset() {
		res.Diag.TailBytes = size - jr.Offset()
	}
	return res, nil
}

// RecoverFile replays a journal file. A missing file is not an error:
// it recovers to the empty state (first boot looks exactly like a
// clean restart with no history).
func RecoverFile(path string) (*RecoverResult, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &RecoverResult{
			Counts:   make(map[Kind]int),
			Sessions: make(map[string]*SessionState),
		}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return Recover(f, fi.Size())
}

// RepairFile truncates a journal file to its valid record prefix so a
// Writer can append to it again: everything Recover could replay is
// kept, the torn tail is cut. Returns the recovery result describing
// what survived. A missing file is left missing (OpenFile will create
// it).
func RepairFile(path string) (*RecoverResult, error) {
	res, err := RecoverFile(path)
	if err != nil {
		return nil, err
	}
	if !res.Diag.Truncated {
		return res, nil
	}
	if err := os.Truncate(path, res.Diag.ValidBytes); err != nil {
		return nil, fmt.Errorf("journal: repair %s: %w", path, err)
	}
	return res, nil
}
