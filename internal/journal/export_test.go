package journal

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestExportRecordRoundTrip pins the KindExport payload: every field
// survives the frame, and the widest record the format allows still
// fits the reader's payload cap.
func TestExportRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindExport, Session: "car-7", T: 12.25,
			Yaw: -14.5, Position: 3, Source: 2, MatchDist: 0.041, Health: 2,
			EstT: 12.20, From: 1, To: 3,
			Flags: ExportHasEstimate | ExportHasClock},
		// A failover export for a session that never produced an
		// estimate: no estimate flag, estimate fields zero.
		{Kind: KindExport, Session: "car-9", T: 4.0, Health: 2,
			From: 0, To: 2, Flags: ExportHasClock | ExportFailover},
		// A session exported before admitting anything at all.
		{Kind: KindExport, Session: "car-0", From: 2, To: 0},
	}
	var framed []byte
	for i := range recs {
		out, err := AppendRecord(framed, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
		framed = out
	}
	jr := NewReader(bytes.NewReader(framed))
	for i, want := range recs {
		got, err := jr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d decoded as %+v, want %+v", i, got, want)
		}
	}
}

// TestExportRecordValidation rejects the NaN hygiene violations the
// rest of the format rejects: a non-finite export clock or estimate
// time never reaches disk.
func TestExportRecordValidation(t *testing.T) {
	bad := []Record{
		{Kind: KindExport, Session: "s", T: math.NaN()},
		{Kind: KindExport, Session: "s", Yaw: math.Inf(1), Flags: ExportHasEstimate},
		{Kind: KindExport, Session: "s", EstT: math.NaN()},
	}
	for i := range bad {
		if _, err := AppendRecord(nil, &bad[i]); !errors.Is(err, ErrBadRecord) {
			t.Errorf("record %d: err = %v, want ErrBadRecord", i, err)
		}
	}
}

// TestRecoverExport proves the recovery semantics of a handoff: the
// exported session is closed on this node with the export record kept
// (destination and reason included), and a later estimate under the
// same ID — the restored session journaling again after a reopen —
// clears the handed-off state.
func TestRecoverExport(t *testing.T) {
	recs := []Record{
		estRec("alpha", 0.10, 5),
		{Kind: KindExport, Session: "alpha", T: 0.90,
			Yaw: 5, Source: 1, MatchDist: 0.02, Health: 1,
			EstT: 0.10, From: 0, To: 2,
			Flags: ExportHasEstimate | ExportHasClock},
		{Kind: KindExport, Session: "beta", T: 0.95, Health: 2,
			From: 0, To: 1, Flags: ExportHasClock | ExportFailover},
		estRec("beta", 1.40, -2),
	}
	var framed []byte
	for i := range recs {
		out, err := AppendRecord(framed, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
		framed = out
	}
	res, err := Recover(bytes.NewReader(framed), int64(len(framed)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[KindExport] != 2 {
		t.Fatalf("export count = %d, want 2", res.Counts[KindExport])
	}
	a := res.Sessions["alpha"]
	if a == nil || !a.Closed || !a.HandedOff || a.Reaped {
		t.Fatalf("alpha = %+v, want closed+handed-off", a)
	}
	if a.Export.To != 2 || a.Export.Flags&ExportFailover != 0 || a.Health != 1 {
		t.Fatalf("alpha export = %+v", a.Export)
	}
	b := res.Sessions["beta"]
	if b == nil || b.Closed || b.HandedOff {
		t.Fatalf("beta = %+v, want reopened (estimate after export)", b)
	}
	if live := res.Live(); len(live) != 1 || live[0] != "beta" {
		t.Fatalf("live = %v, want [beta]", live)
	}
}
