// Package csi models what commodity WiFi hardware actually hands to a
// CSI tool — the clean channel response of package rf corrupted by the
// carrier frequency offset (CFO), sampling frequency offset (SFO), and
// thermal noise of Eq. (2):
//
//	φ̂_f(t) = φ_f(t) + 2π·(f/N)·Δt + β(t) + Z_f
//
// and implements the paper's noise-cancellation sanitizer (Eq. 3): the
// two RX chains share one oscillator and sampling clock, so the
// per-subcarrier phase difference between antennas cancels β(t) and Δt
// exactly, and averaging across subcarriers suppresses Z_f.
package csi

import (
	"errors"
	"math"
	"math/cmplx"

	"vihot/internal/stats"
)

// Frame is one CSI measurement extracted from one received WiFi
// packet: the noisy complex channel response per RX antenna per
// subcarrier, as the Intel 5300 CSI tool would report it.
type Frame struct {
	Time float64        // receive timestamp, seconds
	H    [][]complex128 // [antenna][subcarrier]
}

// NAntennas returns the number of RX antennas in the frame.
func (f *Frame) NAntennas() int { return len(f.H) }

// NSubcarriers returns the number of subcarriers (0 for empty frames).
func (f *Frame) NSubcarriers() int {
	if len(f.H) == 0 {
		return 0
	}
	return len(f.H[0])
}

// Clone returns a deep copy of the frame, so a fault injector (or any
// other mutating consumer) can corrupt its copy without touching the
// original shared with the rest of the pipeline.
func (f *Frame) Clone() *Frame {
	g := &Frame{Time: f.Time, H: make([][]complex128, len(f.H))}
	for a, row := range f.H {
		g.H[a] = append([]complex128(nil), row...)
	}
	return g
}

// Hardware models the oscillator and ADC imperfections of one WiFi
// receiver. Both RX chains share the oscillator, so one Hardware
// instance corrupts every antenna of a frame identically — the
// physical fact Eq. (3) exploits.
type Hardware struct {
	// CFOWalkStd is the per-frame random-walk step (radians) of the
	// CFO-induced phase offset β(t).
	CFOWalkStd float64
	// SFOWalkStd is the per-frame random-walk step of the SFO time
	// lag Δt, expressed in sample periods.
	SFOWalkStd float64
	// NoiseStd is the std-dev of the additive complex thermal noise
	// per subcarrier, relative to unit signal amplitude.
	NoiseStd float64
	// NFFT is the FFT size used for the SFO slope (64 for 20 MHz
	// 802.11n).
	NFFT int

	rng    *stats.RNG
	beta   float64 // current CFO phase offset
	deltaT float64 // current SFO lag in sample periods
}

// DefaultHardware returns a hardware model with offsets typical of
// commodity 802.11n chains: CFO walking a few degrees per frame and a
// slowly wandering SFO lag.
func DefaultHardware(rng *stats.RNG) *Hardware {
	return &Hardware{
		CFOWalkStd: 0.05,
		SFOWalkStd: 0.002,
		NoiseStd:   0.02,
		NFFT:       64,
		rng:        rng,
	}
}

// NewHardware returns a hardware model with explicit parameters.
func NewHardware(rng *stats.RNG, cfoStd, sfoStd, noiseStd float64, nfft int) *Hardware {
	if nfft < 1 {
		nfft = 64
	}
	return &Hardware{
		CFOWalkStd: cfoStd,
		SFOWalkStd: sfoStd,
		NoiseStd:   noiseStd,
		NFFT:       nfft,
		rng:        rng,
	}
}

// Offsets returns the current CFO phase offset (radians) and SFO lag
// (sample periods), exposed for tests and diagnostics.
func (hw *Hardware) Offsets() (beta, deltaT float64) { return hw.beta, hw.deltaT }

// Corrupt applies Eq. (2) to a clean per-antenna channel response and
// returns the Frame a CSI tool would report. clean is indexed
// [antenna][subcarrier] and is not modified. Each call advances the
// CFO/SFO random walks by one frame.
func (hw *Hardware) Corrupt(t float64, clean [][]complex128) *Frame {
	if hw.rng != nil {
		hw.beta += hw.rng.Normal(0, hw.CFOWalkStd)
		hw.deltaT += hw.rng.Normal(0, hw.SFOWalkStd)
	}
	f := &Frame{Time: t, H: make([][]complex128, len(clean))}
	for a := range clean {
		row := make([]complex128, len(clean[a]))
		for k := range clean[a] {
			// SFO phase error grows linearly with subcarrier index.
			sfo := 2 * math.Pi * float64(k) / float64(hw.NFFT) * hw.deltaT
			rot := cmplx.Rect(1, hw.beta+sfo)
			h := clean[a][k] * rot
			if hw.rng != nil && hw.NoiseStd > 0 {
				h += complex(hw.rng.Normal(0, hw.NoiseStd), hw.rng.Normal(0, hw.NoiseStd))
			}
			row[k] = h
		}
		f.H[a] = row
	}
	return f
}

// Errors returned by the sanitizer.
var (
	ErrTooFewAntennas = errors.New("csi: sanitizer needs at least 2 RX antennas")
	ErrNoSubcarriers  = errors.New("csi: frame has no subcarriers")
)

// Sanitize implements Eq. (3): it computes the per-subcarrier phase
// difference between RX antennas a1 and a2 — which cancels the common
// CFO and SFO offsets exactly — and averages across subcarriers to
// suppress thermal noise. The average is circular (a resultant-vector
// mean) because phases live on the circle; an arithmetic mean would
// tear at the ±π seam.
func Sanitize(f *Frame, a1, a2 int) (float64, error) {
	if a1 < 0 || a2 < 0 || a1 >= len(f.H) || a2 >= len(f.H) || a1 == a2 {
		return 0, ErrTooFewAntennas
	}
	n := len(f.H[a1])
	if n == 0 || len(f.H[a2]) != n {
		return 0, ErrNoSubcarriers
	}
	var sum complex128
	for k := 0; k < n; k++ {
		// arg(H1·conj(H2)) is the phase difference φ1-φ2 on
		// subcarrier k; summing unit phasors averages circularly.
		// Non-finite measurements (a glitched or hostile frame) carry
		// no phase information and would turn the whole mean into NaN,
		// so they are skipped like zeros.
		d := f.H[a1][k] * cmplx.Conj(f.H[a2][k])
		if d == 0 || cmplx.IsNaN(d) || cmplx.IsInf(d) {
			continue
		}
		sum += d / complex(cmplx.Abs(d), 0)
	}
	if sum == 0 || cmplx.IsNaN(sum) || cmplx.IsInf(sum) {
		return 0, ErrNoSubcarriers
	}
	return cmplx.Phase(sum), nil
}

// Amplitude returns the mean CSI magnitude across subcarriers for one
// antenna, a coarse link-quality indicator.
func Amplitude(f *Frame, ant int) float64 {
	if ant < 0 || ant >= len(f.H) || len(f.H[ant]) == 0 {
		return 0
	}
	var s float64
	for _, h := range f.H[ant] {
		s += cmplx.Abs(h)
	}
	return s / float64(len(f.H[ant]))
}
