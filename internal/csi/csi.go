// Package csi models what commodity WiFi hardware actually hands to a
// CSI tool — the clean channel response of package rf corrupted by the
// carrier frequency offset (CFO), sampling frequency offset (SFO), and
// thermal noise of Eq. (2):
//
//	φ̂_f(t) = φ_f(t) + 2π·(f/N)·Δt + β(t) + Z_f
//
// and implements the paper's noise-cancellation sanitizer (Eq. 3): the
// two RX chains share one oscillator and sampling clock, so the
// per-subcarrier phase difference between antennas cancels β(t) and Δt
// exactly, and averaging across subcarriers suppresses Z_f.
package csi

import (
	"errors"
	"math"
	"math/cmplx"
	"sync"

	"vihot/internal/stats"
)

// Frame is one CSI measurement extracted from one received WiFi
// packet: the noisy complex channel response per RX antenna per
// subcarrier, as the Intel 5300 CSI tool would report it.
type Frame struct {
	Time float64        // receive timestamp, seconds
	H    [][]complex128 // [antenna][subcarrier]
}

// NAntennas returns the number of RX antennas in the frame.
func (f *Frame) NAntennas() int { return len(f.H) }

// NSubcarriers returns the number of subcarriers (0 for empty frames).
func (f *Frame) NSubcarriers() int {
	if len(f.H) == 0 {
		return 0
	}
	return len(f.H[0])
}

// Clone returns a deep copy of the frame, so a fault injector (or any
// other mutating consumer) can corrupt its copy without touching the
// original shared with the rest of the pipeline.
func (f *Frame) Clone() *Frame {
	g := &Frame{Time: f.Time, H: make([][]complex128, len(f.H))}
	for a, row := range f.H {
		g.H[a] = append([]complex128(nil), row...)
	}
	return g
}

// Hardware models the oscillator and ADC imperfections of one WiFi
// receiver. Both RX chains share the oscillator, so one Hardware
// instance corrupts every antenna of a frame identically — the
// physical fact Eq. (3) exploits.
type Hardware struct {
	// CFOWalkStd is the per-frame random-walk step (radians) of the
	// CFO-induced phase offset β(t).
	CFOWalkStd float64
	// SFOWalkStd is the per-frame random-walk step of the SFO time
	// lag Δt, expressed in sample periods.
	SFOWalkStd float64
	// NoiseStd is the std-dev of the additive complex thermal noise
	// per subcarrier, relative to unit signal amplitude.
	NoiseStd float64
	// NFFT is the FFT size used for the SFO slope (64 for 20 MHz
	// 802.11n).
	NFFT int

	rng    *stats.RNG
	beta   float64      // current CFO phase offset
	deltaT float64      // current SFO lag in sample periods
	rot    []complex128 // per-subcarrier rotation scratch, reused per frame
}

// DefaultHardware returns a hardware model with offsets typical of
// commodity 802.11n chains: CFO walking a few degrees per frame and a
// slowly wandering SFO lag.
func DefaultHardware(rng *stats.RNG) *Hardware {
	return &Hardware{
		CFOWalkStd: 0.05,
		SFOWalkStd: 0.002,
		NoiseStd:   0.02,
		NFFT:       64,
		rng:        rng,
	}
}

// NewHardware returns a hardware model with explicit parameters.
func NewHardware(rng *stats.RNG, cfoStd, sfoStd, noiseStd float64, nfft int) *Hardware {
	if nfft < 1 {
		nfft = 64
	}
	return &Hardware{
		CFOWalkStd: cfoStd,
		SFOWalkStd: sfoStd,
		NoiseStd:   noiseStd,
		NFFT:       nfft,
		rng:        rng,
	}
}

// Offsets returns the current CFO phase offset (radians) and SFO lag
// (sample periods), exposed for tests and diagnostics.
func (hw *Hardware) Offsets() (beta, deltaT float64) { return hw.beta, hw.deltaT }

// sfoSlopes caches the per-subcarrier SFO phase slope
// 2π·k/NFFT, keyed by NFFT. The tables are immutable once published,
// so a lock-free sync.Map lets every Hardware instance in a fleet
// simulation share one table per FFT size. Each entry holds the
// left-associated expression 2π·k/NFFT exactly as the scalar loop
// computed it, so multiplying by ΔT later reproduces the original
// rounding bit-for-bit.
var sfoSlopes sync.Map // int -> []float64

// sfoSlopeTable returns (building on first use) the slope table for
// one FFT size, extended to at least n subcarriers.
func sfoSlopeTable(nfft, n int) []float64 {
	if v, ok := sfoSlopes.Load(nfft); ok {
		if t := v.([]float64); len(t) >= n {
			return t
		}
	}
	size := max(n, nfft)
	t := make([]float64, size)
	for k := range t {
		t[k] = 2 * math.Pi * float64(k) / float64(nfft)
	}
	sfoSlopes.Store(nfft, t)
	return t
}

// Corrupt applies Eq. (2) to a clean per-antenna channel response and
// returns the Frame a CSI tool would report. clean is indexed
// [antenna][subcarrier] and is not modified. Each call advances the
// CFO/SFO random walks by one frame.
//
// Both RX chains share the oscillator, so the per-subcarrier rotation
// e^{i(β + SFO_k)} is identical for every antenna: it is computed once
// per subcarrier from the cached slope table and reused across
// antennas, cutting the Rect (sincos) count from antennas×subcarriers
// to subcarriers per frame. The RNG draw order is untouched, so the
// noise stream — and with it every downstream estimate — is
// bit-identical to the per-antenna scalar loop.
func (hw *Hardware) Corrupt(t float64, clean [][]complex128) *Frame {
	if hw.rng != nil {
		hw.beta += hw.rng.Normal(0, hw.CFOWalkStd)
		hw.deltaT += hw.rng.Normal(0, hw.SFOWalkStd)
	}
	f := &Frame{Time: t, H: make([][]complex128, len(clean))}
	n := 0
	for a := range clean {
		n = max(n, len(clean[a]))
	}
	if cap(hw.rot) < n {
		hw.rot = make([]complex128, n)
	}
	rot := hw.rot[:n]
	slope := sfoSlopeTable(hw.NFFT, n)
	for k := range rot {
		rot[k] = cmplx.Rect(1, hw.beta+slope[k]*hw.deltaT)
	}
	for a := range clean {
		row := make([]complex128, len(clean[a]))
		for k := range clean[a] {
			h := clean[a][k] * rot[k]
			if hw.rng != nil && hw.NoiseStd > 0 {
				h += complex(hw.rng.Normal(0, hw.NoiseStd), hw.rng.Normal(0, hw.NoiseStd))
			}
			row[k] = h
		}
		f.H[a] = row
	}
	return f
}

// Errors returned by the sanitizer.
var (
	ErrTooFewAntennas = errors.New("csi: sanitizer needs at least 2 RX antennas")
	ErrNoSubcarriers  = errors.New("csi: frame has no subcarriers")
)

// Sanitize implements Eq. (3): it computes the per-subcarrier phase
// difference between RX antennas a1 and a2 — which cancels the common
// CFO and SFO offsets exactly — and averages across subcarriers to
// suppress thermal noise. The average is circular (a resultant-vector
// mean) because phases live on the circle; an arithmetic mean would
// tear at the ±π seam.
//
// The loop is componentwise on purpose: the complex conjugate-multiply
// and the normalization divide are expanded into real/imaginary
// accumulation so each lane costs two fused dot products, one Hypot,
// and two real divides — no runtime complex128div call, no cmplx
// function-call boundaries. The magnitude stays math.Hypot (not a bare
// sqrt of re²+im²) because bit-exactness with the scalar reference —
// and through it the golden trace — outranks the last drop of
// throughput; see DESIGN.md §16 and the equivalence proof in
// sanitize_equiv_test.go.
func Sanitize(f *Frame, a1, a2 int) (float64, error) {
	if a1 < 0 || a2 < 0 || a1 >= len(f.H) || a2 >= len(f.H) || a1 == a2 {
		return 0, ErrTooFewAntennas
	}
	n := len(f.H[a1])
	if n == 0 || len(f.H[a2]) != n {
		return 0, ErrNoSubcarriers
	}
	h1, h2 := f.H[a1], f.H[a2][:n]
	var sumRe, sumIm float64
	for k := 0; k < n; k++ {
		// d = H1·conj(H2), componentwise: arg(d) is the phase
		// difference φ1-φ2 on subcarrier k; summing unit phasors
		// averages circularly.
		x, y := real(h1[k]), imag(h1[k])
		u, v := real(h2[k]), imag(h2[k])
		re := x*u + y*v
		im := y*u - x*v
		// One Hypot folds the three skip conditions of the scalar
		// loop: mag is 0 iff d == 0, NaN iff d has a NaN and no Inf,
		// and +Inf iff d has an Inf (or overflows, in which case the
		// scalar loop added an exact ±0 phasor — observationally the
		// same as skipping, since the accumulators never go negative
		// zero). Non-finite measurements (a glitched or hostile frame)
		// carry no phase information and would turn the whole mean
		// into NaN, so they are skipped like zeros.
		mag := math.Hypot(re, im)
		if mag == 0 || math.IsNaN(mag) || math.IsInf(mag, 1) {
			continue
		}
		sumRe += re / mag
		sumIm += im / mag
	}
	if (sumRe == 0 && sumIm == 0) ||
		math.IsNaN(sumRe) || math.IsNaN(sumIm) ||
		math.IsInf(sumRe, 0) || math.IsInf(sumIm, 0) {
		return 0, ErrNoSubcarriers
	}
	return math.Atan2(sumIm, sumRe), nil
}

// Amplitude returns the mean CSI magnitude across subcarriers for one
// antenna, a coarse link-quality indicator.
func Amplitude(f *Frame, ant int) float64 {
	if ant < 0 || ant >= len(f.H) || len(f.H[ant]) == 0 {
		return 0
	}
	var s float64
	for _, h := range f.H[ant] {
		s += cmplx.Abs(h)
	}
	return s / float64(len(f.H[ant]))
}
