package csi

import "testing"

// TestFramePoolShapes pins the pool contract: GetFrame always returns
// exactly the requested shape with a zero Time, whatever mix of
// retired capacities the pool holds, and PutFrame tolerates nil and
// foreign (non-pooled) frames.
func TestFramePoolShapes(t *testing.T) {
	PutFrame(nil) // must not panic

	shapes := [][2]int{{2, 30}, {1, 1}, {4, 64}, {2, 30}, {8, 128}, {3, 7}}
	for _, s := range shapes {
		na, ns := s[0], s[1]
		f := GetFrame(na, ns)
		if f.Time != 0 {
			t.Fatalf("GetFrame(%d,%d).Time = %v, want 0", na, ns, f.Time)
		}
		if len(f.H) != na {
			t.Fatalf("GetFrame(%d,%d) has %d antennas", na, ns, len(f.H))
		}
		for a := range f.H {
			if len(f.H[a]) != ns {
				t.Fatalf("GetFrame(%d,%d) antenna %d has %d subcarriers", na, ns, a, len(f.H[a]))
			}
			for k := range f.H[a] {
				f.H[a][k] = complex(float64(a), float64(k))
			}
		}
		f.Time = 42
		PutFrame(f)
		if len(f.H) != 0 || f.Time != 0 {
			t.Fatalf("PutFrame left a readable shape: Time=%v len(H)=%d", f.Time, len(f.H))
		}
	}

	// A hand-built frame (not from the pool) may be retired too.
	PutFrame(&Frame{Time: 1, H: [][]complex128{{1, 2}, {3, 4}}})
	g := GetFrame(2, 2)
	if len(g.H) != 2 || len(g.H[0]) != 2 || g.Time != 0 {
		t.Fatalf("pool corrupted by foreign frame: %+v", g)
	}
}

// TestFramePoolSanitizeRoundTrip proves a pooled frame behaves exactly
// like a fresh one through the sanitizer after every cell is written —
// including when the previous tenant of its storage was larger.
func TestFramePoolSanitizeRoundTrip(t *testing.T) {
	big := GetFrame(8, 128)
	for a := range big.H {
		for k := range big.H[a] {
			big.H[a][k] = complex(9, 9) // poison a large retiring frame
		}
	}
	PutFrame(big)

	f := GetFrame(2, 4)
	f.Time = 1.5
	want := &Frame{Time: 1.5, H: [][]complex128{
		{1 + 1i, 1 - 1i, 2, 1i},
		{1, 1i, 1 + 2i, -1},
	}}
	for a := range want.H {
		copy(f.H[a], want.H[a])
	}
	pf, errP := Sanitize(f, 0, 1)
	wf, errW := Sanitize(want, 0, 1)
	if (errP == nil) != (errW == nil) || pf != wf {
		t.Fatalf("pooled sanitize = (%v,%v), fresh = (%v,%v)", pf, errP, wf, errW)
	}
	PutFrame(f)
}
