package csi

import (
	"encoding/binary"
	"math"
	"testing"
)

// frameFromBytes deterministically builds a Frame — possibly ragged,
// empty, or full of non-finite values — from arbitrary fuzz bytes.
// The first byte picks the antenna count, the next len-byte per
// antenna picks that row's subcarrier count, and the remaining bytes
// are consumed 8 at a time as raw float64 bit patterns (so NaN, ±Inf,
// and denormals all occur naturally).
func frameFromBytes(data []byte) *Frame {
	next := func(def byte) byte {
		if len(data) == 0 {
			return def
		}
		v := data[0]
		data = data[1:]
		return v
	}
	nextF := func() float64 {
		if len(data) < 8 {
			return float64(next(0))
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(data))
		data = data[8:]
		return v
	}
	na := int(next(2) % 5)
	f := &Frame{Time: nextF(), H: make([][]complex128, na)}
	for a := 0; a < na; a++ {
		ns := int(next(3) % 9)
		row := make([]complex128, ns)
		for k := range row {
			row[k] = complex(nextF(), nextF())
		}
		f.H[a] = row
	}
	return f
}

// FuzzSanitize feeds frames built from arbitrary bytes — short or
// ragged antenna slices, NaN/Inf measurements, out-of-range antenna
// pairs — through the sanitizer. It must never panic, and any phase
// it reports without error must be a finite value in (-π, π].
func FuzzSanitize(f *testing.F) {
	// Well-formed two-antenna frame.
	f.Add([]byte{2, 3, 1, 2, 3, 4, 5, 6, 7, 8}, 0, 1)
	// Empty frame, identical antennas, reversed pair.
	f.Add([]byte{0}, 0, 1)
	f.Add([]byte{2, 2, 2}, 1, 1)
	f.Add([]byte{3, 4, 4, 4}, 2, 0)
	// NaN and +Inf bit patterns in the value stream.
	nan := binary.BigEndian.AppendUint64(nil, math.Float64bits(math.NaN()))
	inf := binary.BigEndian.AppendUint64(nil, math.Float64bits(math.Inf(1)))
	f.Add(append(append([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2}, nan...), inf...), 0, 1)
	// Out-of-range and negative antenna indices.
	f.Add([]byte{2, 1, 1, 9, 9, 9, 9}, -1, 7)

	f.Fuzz(func(t *testing.T, data []byte, a1, a2 int) {
		fr := frameFromBytes(data)
		phi, err := Sanitize(fr, a1, a2)
		if err != nil {
			return
		}
		if math.IsNaN(phi) || math.IsInf(phi, 0) {
			t.Fatalf("Sanitize returned non-finite phase %v with nil error", phi)
		}
		if phi < -math.Pi || phi > math.Pi {
			t.Fatalf("Sanitize phase %v outside (-π, π]", phi)
		}
		// Amplitude shares the frame-shape edge cases; it must not
		// panic on anything Sanitize accepted or rejected.
		_ = Amplitude(fr, a1)
		_ = Amplitude(fr, a2)
	})
}
