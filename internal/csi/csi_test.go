package csi

import (
	"math"
	"math/cmplx"
	"testing"

	"vihot/internal/geom"
	"vihot/internal/stats"
)

func cleanCSI(phase1, phase2 float64, n int) [][]complex128 {
	h := make([][]complex128, 2)
	h[0] = make([]complex128, n)
	h[1] = make([]complex128, n)
	for k := 0; k < n; k++ {
		h[0][k] = cmplx.Rect(1, phase1)
		h[1][k] = cmplx.Rect(1, phase2)
	}
	return h
}

func TestFrameAccessors(t *testing.T) {
	f := &Frame{H: cleanCSI(0, 0, 30)}
	if f.NAntennas() != 2 || f.NSubcarriers() != 30 {
		t.Errorf("accessors = %d/%d", f.NAntennas(), f.NSubcarriers())
	}
	var empty Frame
	if empty.NSubcarriers() != 0 {
		t.Error("empty frame subcarriers != 0")
	}
}

func TestCorruptAddsSharedOffsets(t *testing.T) {
	hw := NewHardware(stats.NewRNG(1), 0.1, 0.01, 0, 64)
	clean := cleanCSI(0.3, -0.4, 30)
	f := hw.Corrupt(0, clean)
	beta, _ := hw.Offsets()
	// Subcarrier 0 has zero SFO slope, so its phase error is exactly β.
	got0 := cmplx.Phase(f.H[0][0])
	if math.Abs(geom.WrapRad(got0-(0.3+beta))) > 1e-9 {
		t.Errorf("antenna0 phase = %v, want %v", got0, 0.3+beta)
	}
	got1 := cmplx.Phase(f.H[1][0])
	if math.Abs(geom.WrapRad(got1-(-0.4+beta))) > 1e-9 {
		t.Errorf("antenna1 phase = %v, want %v", got1, -0.4+beta)
	}
}

func TestCorruptSFOSlopeLinear(t *testing.T) {
	hw := NewHardware(stats.NewRNG(2), 0, 0.5, 0, 64)
	clean := cleanCSI(0, 0, 30)
	f := hw.Corrupt(0, clean)
	_, dt := hw.Offsets()
	// Phase error at subcarrier k must be 2π·k/64·Δt.
	for k := 0; k < 30; k++ {
		want := geom.WrapRad(2 * math.Pi * float64(k) / 64 * dt)
		got := cmplx.Phase(f.H[0][k])
		if math.Abs(geom.WrapRad(got-want)) > 1e-9 {
			t.Fatalf("subcarrier %d: phase %v, want %v", k, got, want)
		}
	}
}

func TestCorruptDoesNotModifyInput(t *testing.T) {
	hw := DefaultHardware(stats.NewRNG(3))
	clean := cleanCSI(0.5, 0.5, 10)
	orig := clean[0][3]
	hw.Corrupt(0, clean)
	if clean[0][3] != orig {
		t.Error("Corrupt mutated its input")
	}
}

func TestSanitizeCancelsCFOSFO(t *testing.T) {
	// The core claim of Sec. 3.2: with zero thermal noise, arbitrary
	// CFO/SFO must cancel exactly in the antenna difference.
	hw := NewHardware(stats.NewRNG(4), 0.5, 0.1, 0, 64)
	truthDiff := geom.WrapRad(0.7 - (-0.9))
	for i := 0; i < 50; i++ {
		f := hw.Corrupt(float64(i)*0.002, cleanCSI(0.7, -0.9, 30))
		got, err := Sanitize(f, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(geom.WrapRad(got-truthDiff)) > 1e-9 {
			t.Fatalf("frame %d: sanitized = %v, want %v", i, got, truthDiff)
		}
	}
}

func TestSanitizeSuppressesThermalNoise(t *testing.T) {
	// Averaging across 30 subcarriers should shrink phase noise by
	// roughly sqrt(30).
	rng := stats.NewRNG(5)
	singleSub := NewHardware(rng.Fork(), 0, 0, 0.05, 64)
	multiSub := NewHardware(rng.Fork(), 0, 0, 0.05, 64)
	var errs1, errs30 []float64
	for i := 0; i < 400; i++ {
		f1 := singleSub.Corrupt(0, cleanCSI(0.3, -0.2, 1))
		f30 := multiSub.Corrupt(0, cleanCSI(0.3, -0.2, 30))
		p1, err := Sanitize(f1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		p30, err := Sanitize(f30, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		errs1 = append(errs1, math.Abs(geom.WrapRad(p1-0.5)))
		errs30 = append(errs30, math.Abs(geom.WrapRad(p30-0.5)))
	}
	m1, m30 := stats.Mean(errs1), stats.Mean(errs30)
	if m30 > m1/2 {
		t.Errorf("subcarrier averaging did not help: 1-sub err %v vs 30-sub err %v", m1, m30)
	}
}

func TestSanitizeSeamSafety(t *testing.T) {
	// Phase differences near ±π must not average to garbage.
	h := make([][]complex128, 2)
	n := 10
	h[0] = make([]complex128, n)
	h[1] = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Differences alternate between π-0.01 and -π+0.01, which are
		// only 0.02 rad apart on the circle.
		d := math.Pi - 0.01
		if k%2 == 1 {
			d = -math.Pi + 0.01
		}
		h[0][k] = cmplx.Rect(1, d)
		h[1][k] = cmplx.Rect(1, 0)
	}
	got, err := Sanitize(&Frame{H: h}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(got)-math.Pi) > 0.02 {
		t.Errorf("circular mean near seam = %v, want ≈ ±π", got)
	}
}

func TestSanitizeErrors(t *testing.T) {
	f := &Frame{H: cleanCSI(0, 0, 5)}
	if _, err := Sanitize(f, 0, 0); err != ErrTooFewAntennas {
		t.Errorf("same antenna err = %v", err)
	}
	if _, err := Sanitize(f, 0, 5); err != ErrTooFewAntennas {
		t.Errorf("out-of-range err = %v", err)
	}
	empty := &Frame{H: [][]complex128{{}, {}}}
	if _, err := Sanitize(empty, 0, 1); err != ErrNoSubcarriers {
		t.Errorf("no subcarriers err = %v", err)
	}
	zero := &Frame{H: [][]complex128{{0}, {0}}}
	if _, err := Sanitize(zero, 0, 1); err != ErrNoSubcarriers {
		t.Errorf("all-zero err = %v", err)
	}
}

func TestSanitizeMismatchedRows(t *testing.T) {
	f := &Frame{H: [][]complex128{make([]complex128, 5), make([]complex128, 3)}}
	if _, err := Sanitize(f, 0, 1); err == nil {
		t.Error("mismatched subcarrier counts must error")
	}
}

func TestAmplitude(t *testing.T) {
	f := &Frame{H: [][]complex128{{2, 2i, -2}, {1, 1, 1}}}
	if got := Amplitude(f, 0); math.Abs(got-2) > 1e-12 {
		t.Errorf("Amplitude = %v", got)
	}
	if Amplitude(f, 5) != 0 || Amplitude(f, -1) != 0 {
		t.Error("out-of-range antenna must return 0")
	}
}

func TestNilRNGHardware(t *testing.T) {
	hw := &Hardware{NFFT: 64}
	f := hw.Corrupt(0, cleanCSI(0.1, 0.2, 4))
	// Without an RNG the hardware must be transparent.
	if math.Abs(geom.WrapRad(cmplx.Phase(f.H[0][0])-0.1)) > 1e-12 {
		t.Error("nil-RNG hardware altered phases")
	}
}

func TestHardwareWalksAreRandomWalks(t *testing.T) {
	hw := NewHardware(stats.NewRNG(6), 0.1, 0.01, 0, 64)
	var betas []float64
	for i := 0; i < 200; i++ {
		hw.Corrupt(0, cleanCSI(0, 0, 1))
		b, _ := hw.Offsets()
		betas = append(betas, b)
	}
	// A random walk wanders: late values should differ from early.
	if math.Abs(betas[199]-betas[0]) < 1e-9 && stats.StdDev(betas) < 1e-9 {
		t.Error("CFO walk did not move")
	}
}

func TestNewHardwareNFFTGuard(t *testing.T) {
	hw := NewHardware(stats.NewRNG(7), 0, 0, 0, 0)
	if hw.NFFT != 64 {
		t.Errorf("NFFT guard = %d", hw.NFFT)
	}
}
