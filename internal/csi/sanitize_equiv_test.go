package csi

// Equivalence suite for the componentwise sanitizer: the vectorizable
// loop in Sanitize must return bit-identical phases (and identical
// errors) to the scalar cmplx-based reference it replaced, across
// well-formed frames, NaN/Inf-skip paths, and all-cancelling phasor
// sets. Why bit-identical and not ≤1 ULP: on amd64 Go never contracts
// float expressions into FMAs, the componentwise expansion of
// H1·conj(H2) is the exact formula the compiler emits for complex
// multiply, and runtime complex128div by a real denominator reduces to
// the two componentwise divides (Smith's algorithm with ratio 0) —
// differing only in the sign of zero contributions, which the
// accumulators provably never expose (+0 + ±0 = +0).

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"

	"vihot/internal/stats"
)

// sanitizeReference is the pre-vectorization scalar sanitizer,
// preserved verbatim as the behavioral oracle.
func sanitizeReference(f *Frame, a1, a2 int) (float64, error) {
	if a1 < 0 || a2 < 0 || a1 >= len(f.H) || a2 >= len(f.H) || a1 == a2 {
		return 0, ErrTooFewAntennas
	}
	n := len(f.H[a1])
	if n == 0 || len(f.H[a2]) != n {
		return 0, ErrNoSubcarriers
	}
	var sum complex128
	for k := 0; k < n; k++ {
		d := f.H[a1][k] * cmplx.Conj(f.H[a2][k])
		if d == 0 || cmplx.IsNaN(d) || cmplx.IsInf(d) {
			continue
		}
		sum += d / complex(cmplx.Abs(d), 0)
	}
	if sum == 0 || cmplx.IsNaN(sum) || cmplx.IsInf(sum) {
		return 0, ErrNoSubcarriers
	}
	return cmplx.Phase(sum), nil
}

// checkEquiv asserts Sanitize and the reference agree bit-for-bit,
// including which error (if any) they return.
func checkEquiv(t *testing.T, f *Frame, a1, a2 int) {
	t.Helper()
	got, gotErr := Sanitize(f, a1, a2)
	want, wantErr := sanitizeReference(f, a1, a2)
	if gotErr != wantErr {
		t.Fatalf("a1=%d a2=%d: error %v, reference %v", a1, a2, gotErr, wantErr)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("a1=%d a2=%d: phase %v (%#x) != reference %v (%#x)",
			a1, a2, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestSanitizeEquivalenceTable(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		h    [][]complex128
	}{
		{"clean 30-subcarrier", nil}, // filled below from the RNG
		{"single subcarrier", [][]complex128{
			{complex(0.3, -0.7)},
			{complex(-1.1, 0.2)},
		}},
		{"NaN lanes skipped", [][]complex128{
			{complex(nan, 0), complex(1, 2), complex(0, nan)},
			{complex(1, 1), complex(3, -4), complex(2, 2)},
		}},
		{"Inf lanes skipped", [][]complex128{
			{complex(inf, 0), complex(1, 2), complex(-inf, nan)},
			{complex(1, 1), complex(3, -4), complex(2, 2)},
		}},
		{"zero lanes skipped", [][]complex128{
			{0, complex(1, 2), 0},
			{complex(1, 1), complex(3, -4), 0},
		}},
		{"all lanes zero", [][]complex128{
			{0, 0, 0},
			{complex(1, 1), complex(3, -4), complex(2, 2)},
		}},
		{"all lanes non-finite", [][]complex128{
			{complex(nan, 0), complex(inf, 0)},
			{complex(1, 1), complex(3, -4)},
		}},
		{"cancelling phasor pair", [][]complex128{
			// H1·conj(H2) is (1,0) on lane 0 and (-1,0) on lane 1:
			// the unit phasors sum to exactly zero.
			{complex(1, 0), complex(-1, 0)},
			{complex(1, 0), complex(1, 0)},
		}},
		{"four-way cancellation", [][]complex128{
			{complex(1, 0), complex(-1, 0), complex(0, 1), complex(0, -1)},
			{complex(1, 0), complex(1, 0), complex(1, 0), complex(1, 0)},
		}},
		{"magnitude overflow lane", [][]complex128{
			// |d| overflows to +Inf from finite components; the
			// reference adds an exact ±0 phasor, the rewrite skips —
			// same sum either way.
			{complex(1.5e308, 1.5e308), complex(1, 2)},
			{complex(1, 0), complex(3, -4)},
		}},
		{"only overflow lanes", [][]complex128{
			{complex(1.5e308, 1.5e308), complex(-1.6e308, 1.4e308)},
			{complex(1, 0), complex(1, 0)},
		}},
		{"denormal components", [][]complex128{
			{complex(5e-324, -5e-324), complex(1e-310, 2e-310)},
			{complex(1e-310, 0), complex(3e-320, -4e-320)},
		}},
		{"near-seam phases", [][]complex128{
			{complex(-1, 1e-9), complex(-1, -1e-9)},
			{complex(1, 0), complex(1, 0)},
		}},
		{"mismatched row lengths", [][]complex128{
			{complex(1, 2), complex(3, 4)},
			{complex(1, 1)},
		}},
	}
	rng := stats.NewRNG(11)
	clean := make([][]complex128, 3)
	for a := range clean {
		clean[a] = make([]complex128, 30)
		for k := range clean[a] {
			clean[a][k] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		}
	}
	cases[0].h = clean
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &Frame{H: tc.h}
			for a1 := -1; a1 <= len(tc.h); a1++ {
				for a2 := -1; a2 <= len(tc.h); a2++ {
					checkEquiv(t, f, a1, a2)
				}
			}
		})
	}
}

// TestSanitizeEquivalenceRandom sweeps seeded hardware-shaped frames
// (the distribution the pipeline actually sees) through both
// implementations.
func TestSanitizeEquivalenceRandom(t *testing.T) {
	rng := stats.NewRNG(23)
	hw := DefaultHardware(rng)
	for trial := 0; trial < 200; trial++ {
		clean := make([][]complex128, 2+trial%2)
		for a := range clean {
			clean[a] = make([]complex128, 1+trial%40)
			for k := range clean[a] {
				clean[a][k] = cmplx.Rect(0.1+rng.Uniform(0, 2), rng.Uniform(-math.Pi, math.Pi))
			}
		}
		f := hw.Corrupt(float64(trial), clean)
		checkEquiv(t, f, 0, 1)
		checkEquiv(t, f, 1, 0)
	}
}

// FuzzSanitizeEquivalence drives both sanitizers with arbitrary frames
// (raw float64 bit patterns, so NaN/Inf/denormals occur naturally) and
// requires bit-identical results.
func FuzzSanitizeEquivalence(f *testing.F) {
	f.Add([]byte{2, 3, 1, 2, 3, 4, 5, 6, 7, 8}, 0, 1)
	nan := binary.BigEndian.AppendUint64(nil, math.Float64bits(math.NaN()))
	inf := binary.BigEndian.AppendUint64(nil, math.Float64bits(math.Inf(1)))
	f.Add(append(append([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2}, nan...), inf...), 0, 1)
	big := binary.BigEndian.AppendUint64(nil, math.Float64bits(1.5e308))
	f.Add(append([]byte{2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}, append(big, big...)...), 0, 1)

	f.Fuzz(func(t *testing.T, data []byte, a1, a2 int) {
		checkEquiv(t, frameFromBytes(data), a1, a2)
	})
}

// TestCorruptRotationHoist pins the Corrupt fast path: the hoisted
// per-subcarrier rotation table and the shared SFO slope cache must
// reproduce the original per-antenna scalar loop bit-for-bit,
// including the RNG draw order that both implementations consume.
func TestCorruptRotationHoist(t *testing.T) {
	reference := func(hw *Hardware, t0 float64, clean [][]complex128) *Frame {
		if hw.rng != nil {
			hw.beta += hw.rng.Normal(0, hw.CFOWalkStd)
			hw.deltaT += hw.rng.Normal(0, hw.SFOWalkStd)
		}
		f := &Frame{Time: t0, H: make([][]complex128, len(clean))}
		for a := range clean {
			row := make([]complex128, len(clean[a]))
			for k := range clean[a] {
				sfo := 2 * math.Pi * float64(k) / float64(hw.NFFT) * hw.deltaT
				rot := cmplx.Rect(1, hw.beta+sfo)
				h := clean[a][k] * rot
				if hw.rng != nil && hw.NoiseStd > 0 {
					h += complex(hw.rng.Normal(0, hw.NoiseStd), hw.rng.Normal(0, hw.NoiseStd))
				}
				row[k] = h
			}
			f.H[a] = row
		}
		return f
	}
	for _, nfft := range []int{64, 128, 17} {
		hwA := NewHardware(stats.NewRNG(5), 0.05, 0.002, 0.02, nfft)
		hwB := NewHardware(stats.NewRNG(5), 0.05, 0.002, 0.02, nfft)
		rng := stats.NewRNG(6)
		for frame := 0; frame < 20; frame++ {
			clean := make([][]complex128, 3)
			for a := range clean {
				clean[a] = make([]complex128, 30)
				for k := range clean[a] {
					clean[a][k] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
				}
			}
			got := hwA.Corrupt(float64(frame), clean)
			want := reference(hwB, float64(frame), clean)
			for a := range want.H {
				for k := range want.H[a] {
					g, w := got.H[a][k], want.H[a][k]
					if math.Float64bits(real(g)) != math.Float64bits(real(w)) ||
						math.Float64bits(imag(g)) != math.Float64bits(imag(w)) {
						t.Fatalf("nfft=%d frame=%d H[%d][%d]: %v != reference %v", nfft, frame, a, k, g, w)
					}
				}
			}
		}
	}
}

func BenchmarkSanitizeReference(b *testing.B) {
	rng := stats.NewRNG(3)
	clean := make([][]complex128, 2)
	for a := range clean {
		clean[a] = make([]complex128, 30)
		for k := range clean[a] {
			clean[a][k] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		}
	}
	f := &Frame{H: clean}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sanitizeReference(f, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
