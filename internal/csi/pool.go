package csi

import "sync"

// Frame pooling for the 500 Hz ingest path. Decoding one wire frame
// costs one Frame header, one row-slice header, and na subcarrier
// rows — per packet, forever, unless the frames are recycled. The
// pool keeps retired frames (header and rows together) for reuse by
// wifi.DecodePooled, so a steady-state receiver allocates only when a
// frame's shape outgrows anything retired so far.
//
// Ownership rules (DESIGN.md §11): GetFrame hands the caller an
// exclusive frame; PutFrame takes that exclusivity back. A frame must
// reach PutFrame at most once, and never while any goroutine can
// still read it — the serving layer's Config.RecycleFrames documents
// exactly which hand-off points release. Frames not drawn from the
// pool may be Put (Clone results, hand-built tests); their storage
// simply joins the pool.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a frame shaped [na][ns], reusing pooled storage
// when its capacity suffices. Time is zeroed; the H cells hold
// whatever the decoder will overwrite (callers must fill every cell,
// which DecodePooled does by construction).
func GetFrame(na, ns int) *Frame {
	f := framePool.Get().(*Frame)
	f.Time = 0
	if cap(f.H) < na {
		f.H = make([][]complex128, na)
	} else {
		f.H = f.H[:na]
	}
	for a := 0; a < na; a++ {
		if cap(f.H[a]) < ns {
			f.H[a] = make([]complex128, ns)
		} else {
			f.H[a] = f.H[a][:ns]
		}
	}
	return f
}

// PutFrame retires a frame to the pool. Safe on nil. The caller must
// hold the only reference; see the ownership rules above.
func PutFrame(f *Frame) {
	if f == nil {
		return
	}
	// Keep the row storage (that is the point) but shrink the visible
	// shape to zero so a use-after-Put reads an empty frame instead of
	// another session's CSI.
	f.Time = 0
	f.H = f.H[:0]
	framePool.Put(f)
}
