package stats

import "math/rand"

// RNG is a deterministic random source used throughout the simulator.
// It wraps math/rand with the handful of distributions the physical
// models need, so every experiment is reproducible from its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child RNG from the parent stream. Using
// Fork for each subsystem keeps subsystems statistically independent
// while remaining reproducible.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean (not rate).
// A non-positive mean returns 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Intn returns a uniform integer in [0, n). n <= 0 returns 0.
func (g *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.r.Intn(n)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
