// Package stats provides the small statistics toolkit shared by the
// simulator and the evaluation harness: summary statistics, empirical
// CDFs, percentiles, histograms, and a deterministic RNG wrapper so
// every experiment in this repository is reproducible bit-for-bit.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (÷N, not ÷N-1), or 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between order statistics. It returns an error
// for an empty sample set and clamps p into [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	m, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and
// ys. It returns 0 when the lengths differ, fewer than two samples
// are given, or either series has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary holds the summary statistics of a sample set.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	Median        float64
	P90, P95, P99 float64
}

// Summarize computes a Summary over xs. An empty input yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
	}
}
