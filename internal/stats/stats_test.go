package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty reducers must return 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty must be ±Inf")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v", err)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, _ := Percentile(xs, 50)
	if got != 5 {
		t.Errorf("interpolated P50 = %v, want 5", got)
	}
}

func TestMedianBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		return m >= Min(clean) && m <= Max(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive corr = %v", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative corr = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance corr = %v", got)
	}
	if got := Pearson(xs, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched length corr = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty Summary = %+v", z)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.Median(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Median = %v", got)
	}
	if got := c.MaxValue(); got != 4 {
		t.Errorf("MaxValue = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.MaxValue() != 0 {
		t.Error("empty CDF must report zeros")
	}
	v, p := c.Points(10)
	if v != nil || p != nil {
		t.Error("empty CDF Points must be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		c := NewCDF(clean)
		vals, _ := c.Points(17)
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPointsEndpoints(t *testing.T) {
	c := NewCDF([]float64{5, 1, 9})
	vals, probs := c.Points(5)
	if vals[0] != 1 || vals[len(vals)-1] != 9 {
		t.Errorf("Points endpoints = %v", vals)
	}
	if probs[0] != 0 || probs[len(probs)-1] != 1 {
		t.Errorf("Points probs = %v", probs)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.5, 0.9, -1, 2}, 0, 1, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	// -1 clamps into bin 0; 2 clamps into bin 1; 0.5 lands in bin 1.
	if bins[0] != 2 || bins[1] != 3 {
		t.Errorf("Histogram = %v", bins)
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("nbins<1 must return nil")
	}
	if Histogram(nil, 1, 0, 3) != nil {
		t.Error("hi<=lo must return nil")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Fork()
	c2 := g.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("forked RNGs look identical: %d/100 equal draws", same)
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(1)
	var us, ns, es []float64
	for i := 0; i < 20000; i++ {
		us = append(us, g.Uniform(2, 4))
		ns = append(ns, g.Normal(10, 2))
		es = append(es, g.Exp(3))
	}
	if m := Mean(us); math.Abs(m-3) > 0.05 {
		t.Errorf("Uniform mean = %v", m)
	}
	if m := Mean(ns); math.Abs(m-10) > 0.1 {
		t.Errorf("Normal mean = %v", m)
	}
	if s := StdDev(ns); math.Abs(s-2) > 0.1 {
		t.Errorf("Normal std = %v", s)
	}
	if m := Mean(es); math.Abs(m-3) > 0.15 {
		t.Errorf("Exp mean = %v", m)
	}
	if g.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean must be 0")
	}
}

func TestRNGIntnBool(t *testing.T) {
	g := NewRNG(3)
	if g.Intn(0) != 0 || g.Intn(-5) != 0 {
		t.Error("Intn(n<=0) must be 0")
	}
	for i := 0; i < 100; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if g.Bool(0.25) {
			trues++
		}
	}
	if trues < 2200 || trues > 2800 {
		t.Errorf("Bool(0.25) rate = %d/10000", trues)
	}
	if len(g.Perm(5)) != 5 {
		t.Error("Perm length")
	}
}
