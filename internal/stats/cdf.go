package stats

import "sort"

// CDF is an empirical cumulative distribution function over a sample
// set. The zero value is an empty CDF whose At reports 0 everywhere.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples backing the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples ≤ x, in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q in [0,1],
// interpolating between order statistics. Empty CDFs return 0.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Median returns Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// MaxValue returns the largest sample, or 0 when empty.
func (c *CDF) MaxValue() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns n evenly spaced (value, probability) pairs suitable
// for plotting the CDF curve. n < 2 yields a single point at the
// median.
func (c *CDF) Points(n int) (values, probs []float64) {
	if len(c.sorted) == 0 {
		return nil, nil
	}
	if n < 2 {
		return []float64{c.Median()}, []float64{0.5}
	}
	values = make([]float64, n)
	probs = make([]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		values[i] = c.Quantile(q)
		probs[i] = q
	}
	return values, probs
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the first or last bin.
// It returns nil when nbins < 1 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins < 1 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}
