package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func almostTol(a, b, tol float64) bool { return math.Abs(a-b) < tol }

func TestVecBasicOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (Vec3{-1, -2, -3}) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); !almost(got, -4+10+1.5) {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := b.Cross(a); got != (Vec3{0, 0, -1}) {
		t.Errorf("y cross x = %v, want -z", got)
	}
}

func TestNormDistUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if !almost(v.Norm(), 5) {
		t.Errorf("Norm = %v", v.Norm())
	}
	if !almost(v.Norm2(), 25) {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if !almost(v.Dist(Vec3{0, 0, 0}), 5) {
		t.Errorf("Dist = %v", v.Dist(Vec3{}))
	}
	u := v.Unit()
	if !almost(u.Norm(), 1) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Error("Unit of zero vector must be zero")
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !almost(mid.X, 2.5) || !almost(mid.Y, 3.5) || !almost(mid.Z, 4.5) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	v := Vec3{1, 0, 0}
	got := v.RotateZ(90)
	if !almostTol(got.X, 0, eps) || !almostTol(got.Y, 1, eps) || got.Z != 0 {
		t.Errorf("RotateZ(90) = %v", got)
	}
}

func TestRotateZPreservesNorm(t *testing.T) {
	f := func(x, y, z, deg float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(z) > 1e6 {
			return true
		}
		v := Vec3{x, y, z}
		r := v.RotateZ(deg)
		return almostTol(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateAboutMatchesRotateZ(t *testing.T) {
	f := func(x, y, deg float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(deg) > 1e4 {
			return true
		}
		v := Vec3{x, y, 0.7}
		a := v.RotateZ(deg)
		b := v.RotateAbout(Vec3{0, 0, 1}, deg)
		return a.Dist(b) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateAboutZeroAxis(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := v.RotateAbout(Vec3{}, 45); got != v {
		t.Errorf("rotation about zero axis changed vector: %v", got)
	}
}

func TestAngleTo(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 2, 0}
	if got := x.AngleTo(y); !almostTol(got, 90, 1e-9) {
		t.Errorf("AngleTo = %v", got)
	}
	if got := x.AngleTo(x.Scale(3)); !almostTol(got, 0, 1e-6) {
		t.Errorf("AngleTo parallel = %v", got)
	}
	if got := x.AngleTo(x.Neg()); !almostTol(got, 180, 1e-6) {
		t.Errorf("AngleTo antiparallel = %v", got)
	}
	if got := x.AngleTo(Vec3{}); got != 0 {
		t.Errorf("AngleTo zero = %v", got)
	}
}

func TestHeadingXY(t *testing.T) {
	if got := HeadingXY(0); !almostTol(got.X, 1, eps) || !almostTol(got.Y, 0, eps) {
		t.Errorf("HeadingXY(0) = %v", got)
	}
	if got := HeadingXY(90); !almostTol(got.Y, 1, eps) {
		t.Errorf("HeadingXY(90) = %v", got)
	}
	if got := HeadingXY(-90); !almostTol(got.Y, -1, eps) {
		t.Errorf("HeadingXY(-90) = %v", got)
	}
}

func TestHeadingXYUnitLength(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.Abs(deg) > 1e12 {
			return true // Sincos degrades for astronomically large args
		}
		return almostTol(HeadingXY(deg).Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(); got != 0 {
		t.Errorf("empty path = %v", got)
	}
	if got := PathLength(Vec3{1, 1, 1}); got != 0 {
		t.Errorf("single point = %v", got)
	}
	got := PathLength(Vec3{0, 0, 0}, Vec3{3, 4, 0}, Vec3{3, 4, 2})
	if !almost(got, 7) {
		t.Errorf("PathLength = %v, want 7", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestString(t *testing.T) {
	if got := (Vec3{1, 2, 3}).String(); got != "(1.000, 2.000, 3.000)" {
		t.Errorf("String = %q", got)
	}
}
