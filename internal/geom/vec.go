// Package geom provides the small 3-D vector and angle toolkit used by
// the cabin scene model and the RF ray tracer.
//
// Conventions: the cabin frame is right-handed with +X pointing from
// the car's back to its front (the direction a driver with 0° head
// orientation faces), +Y pointing from the driver toward the passenger
// side, and +Z pointing up. Head yaw is measured in the horizontal XY
// plane, positive toward +Y (driver turning right), in degrees.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in cabin coordinates, in meters.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation between v and w at parameter
// t, with t=0 yielding v and t=1 yielding w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// RotateZ rotates v about the +Z axis by the given angle in degrees,
// following the right-hand rule.
func (v Vec3) RotateZ(deg float64) Vec3 {
	s, c := math.Sincos(Radians(deg))
	return Vec3{
		X: c*v.X - s*v.Y,
		Y: s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// RotateAbout rotates v about the given unit axis by the angle in
// degrees using Rodrigues' rotation formula. The axis need not be
// normalized; a zero axis leaves v unchanged.
func (v Vec3) RotateAbout(axis Vec3, deg float64) Vec3 {
	k := axis.Unit()
	if k == (Vec3{}) {
		return v
	}
	s, c := math.Sincos(Radians(deg))
	return v.Scale(c).
		Add(k.Cross(v).Scale(s)).
		Add(k.Scale(k.Dot(v) * (1 - c)))
}

// AngleTo returns the unsigned angle between v and w in degrees, in
// [0, 180]. It returns 0 when either vector is zero.
func (v Vec3) AngleTo(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	cos := v.Dot(w) / (nv * nw)
	cos = math.Max(-1, math.Min(1, cos))
	return Degrees(math.Acos(cos))
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer with centimeter precision, which is
// the natural scale for cabin geometry.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// HeadingXY returns a unit vector in the horizontal plane at the given
// yaw in degrees: 0° faces +X (car front), positive yaw turns toward
// +Y (passenger side).
func HeadingXY(yawDeg float64) Vec3 {
	s, c := math.Sincos(Radians(yawDeg))
	return Vec3{X: c, Y: s}
}

// PathLength returns the total polyline length through the given
// points. Fewer than two points yield 0.
func PathLength(pts ...Vec3) float64 {
	var d float64
	for i := 1; i < len(pts); i++ {
		d += pts[i].Dist(pts[i-1])
	}
	return d
}
