package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRadiansDegreesRoundTrip(t *testing.T) {
	f := func(deg float64) bool {
		if math.Abs(deg) > 1e9 {
			return true
		}
		return almostTol(Degrees(Radians(deg)), deg, 1e-9*(1+math.Abs(deg)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapDegRange(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.Abs(deg) > 1e12 {
			return true
		}
		w := WrapDeg(deg)
		return w > -180-1e-9 && w <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapDegCases(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{180, 180},
		{-180, 180},
		{190, -170},
		{-190, 170},
		{360, 0},
		{720, 0},
		{359, -1},
		{-359, 1},
	}
	for _, c := range cases {
		if got := WrapDeg(c.in); !almostTol(got, c.want, 1e-9) {
			t.Errorf("WrapDeg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapRadRange(t *testing.T) {
	f := func(rad float64) bool {
		if math.IsNaN(rad) || math.Abs(rad) > 1e12 {
			return true
		}
		w := WrapRad(rad)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapEquivalence(t *testing.T) {
	// Wrapping must not change the angle modulo a full turn.
	f := func(deg float64) bool {
		if math.Abs(deg) > 1e9 {
			return true
		}
		w := WrapDeg(deg)
		diff := math.Mod(deg-w, 360)
		return almostTol(diff, 0, 1e-6) || almostTol(math.Abs(diff), 360, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiffDeg(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{10, 350, 20},
		{350, 10, -20},
		{90, -90, 180},
		{0, 0, 0},
		{-170, 170, 20},
	}
	for _, c := range cases {
		if got := AngleDiffDeg(c.a, c.b); !almostTol(got, c.want, 1e-9) {
			t.Errorf("AngleDiffDeg(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDistSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		d1 := AngleDistDeg(a, b)
		d2 := AngleDistDeg(b, a)
		return almostTol(d1, d2, 1e-6) && d1 >= 0 && d1 <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseDiffShortest(t *testing.T) {
	// Close to the ±π seam the naive difference is ~2π; PhaseDiff
	// must return the short way around.
	a, b := math.Pi-0.05, -math.Pi+0.05
	if got := PhaseDiff(a, b); !almostTol(got, -0.1, 1e-9) {
		t.Errorf("PhaseDiff seam = %v, want -0.1", got)
	}
}

func TestClampDeg(t *testing.T) {
	if got := ClampDeg(5, -1, 1); got != 1 {
		t.Errorf("ClampDeg high = %v", got)
	}
	if got := ClampDeg(-5, -1, 1); got != -1 {
		t.Errorf("ClampDeg low = %v", got)
	}
	if got := ClampDeg(0.5, -1, 1); got != 0.5 {
		t.Errorf("ClampDeg mid = %v", got)
	}
}
