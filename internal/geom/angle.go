package geom

import "math"

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// WrapDeg wraps an angle in degrees into (-180, 180].
func WrapDeg(deg float64) float64 {
	d := math.Mod(deg, 360)
	switch {
	case d > 180:
		d -= 360
	case d <= -180:
		d += 360
	}
	return d
}

// WrapRad wraps an angle in radians into (-π, π].
func WrapRad(rad float64) float64 {
	r := math.Mod(rad, 2*math.Pi)
	switch {
	case r > math.Pi:
		r -= 2 * math.Pi
	case r <= -math.Pi:
		r += 2 * math.Pi
	}
	return r
}

// AngleDiffDeg returns the signed shortest difference a-b in degrees,
// in (-180, 180].
func AngleDiffDeg(a, b float64) float64 { return WrapDeg(a - b) }

// AngleDistDeg returns the unsigned shortest angular distance between
// a and b in degrees, in [0, 180].
func AngleDistDeg(a, b float64) float64 { return math.Abs(AngleDiffDeg(a, b)) }

// PhaseDiff returns the signed shortest phase difference a-b in
// radians, in (-π, π]. CSI phases live on the circle, so plain
// subtraction is wrong near ±π.
func PhaseDiff(a, b float64) float64 { return WrapRad(a - b) }

// ClampDeg limits deg to [lo, hi].
func ClampDeg(deg, lo, hi float64) float64 {
	if deg < lo {
		return lo
	}
	if deg > hi {
		return hi
	}
	return deg
}
