// Package dsp provides the signal-processing primitives ViHOT needs:
// timestamped series, uniform resampling of CSMA-jittered samples,
// moving windows, stability detection, smoothing filters, and phase
// unwrapping.
//
// Time is represented as float64 seconds on the simulation clock.
package dsp

import (
	"errors"
	"math"
	"sort"
)

// Sample is one timestamped scalar measurement.
type Sample struct {
	T float64 // seconds
	V float64
}

// Series is a time-ordered sequence of samples.
type Series []Sample

// Errors returned by series operations.
var (
	ErrEmptySeries   = errors.New("dsp: empty series")
	ErrUnsorted      = errors.New("dsp: series timestamps not ascending")
	ErrBadRate       = errors.New("dsp: non-positive sample rate")
	ErrShortSeries   = errors.New("dsp: series too short")
	ErrBadWindowSize = errors.New("dsp: window size must be positive and odd")
)

// Times returns the timestamps of s as a new slice.
func (s Series) Times() []float64 {
	ts := make([]float64, len(s))
	for i, smp := range s {
		ts[i] = smp.T
	}
	return ts
}

// Values returns the values of s as a new slice.
func (s Series) Values() []float64 {
	vs := make([]float64, len(s))
	for i, smp := range s {
		vs[i] = smp.V
	}
	return vs
}

// Duration returns the time span covered by s, or 0 for fewer than
// two samples.
func (s Series) Duration() float64 {
	if len(s) < 2 {
		return 0
	}
	return s[len(s)-1].T - s[0].T
}

// IsSorted reports whether timestamps are non-decreasing.
func (s Series) IsSorted() bool {
	return sort.SliceIsSorted(s, func(i, j int) bool { return s[i].T < s[j].T })
}

// MaxGap returns the largest interval between consecutive samples, or
// 0 for fewer than two samples.
func (s Series) MaxGap() float64 {
	var g float64
	for i := 1; i < len(s); i++ {
		if d := s[i].T - s[i-1].T; d > g {
			g = d
		}
	}
	return g
}

// MeanRate returns the average sampling rate in Hz, or 0 when the
// series spans no time.
func (s Series) MeanRate() float64 {
	d := s.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(s)-1) / d
}

// Window returns the sub-series with timestamps in [from, to]. The
// result aliases s.
func (s Series) Window(from, to float64) Series {
	lo := sort.Search(len(s), func(i int) bool { return s[i].T >= from })
	hi := sort.Search(len(s), func(i int) bool { return s[i].T > to })
	if lo >= hi {
		return nil
	}
	return s[lo:hi]
}

// At linearly interpolates the series value at time t, clamping to the
// first/last sample outside the covered span. It returns an error for
// an empty series.
func (s Series) At(t float64) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmptySeries
	}
	if t <= s[0].T {
		return s[0].V, nil
	}
	if t >= s[len(s)-1].T {
		return s[len(s)-1].V, nil
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].T >= t })
	a, b := s[i-1], s[i]
	if b.T == a.T {
		return b.V, nil
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + (b.V-a.V)*frac, nil
}

// Resample converts an irregular series to a uniform grid at the
// given rate (Hz) spanning the series duration, linearly interpolating
// between samples. This is the resampling step of Sec. 3.4.3 Step 1:
// CSMA makes CSI arrival times random, so the run-time window and the
// profile must be brought to a common grid before DTW. Large gaps are
// bridged by interpolation, which is exactly why heavy interfering
// traffic (Fig. 17d) degrades matching accuracy.
func (s Series) Resample(rateHz float64) (Series, error) {
	if len(s) == 0 {
		return nil, ErrEmptySeries
	}
	if rateHz <= 0 {
		return nil, ErrBadRate
	}
	if !s.IsSorted() {
		return nil, ErrUnsorted
	}
	dt := 1 / rateHz
	n := int(math.Floor(s.Duration()/dt)) + 1
	if n < 1 {
		n = 1
	}
	out := make(Series, n)
	for i := 0; i < n; i++ {
		t := s[0].T + float64(i)*dt
		v, _ := s.At(t)
		out[i] = Sample{T: t, V: v}
	}
	return out, nil
}

// ResampleValues is Resample returning only the value grid, for hot
// paths that do not need timestamps. It appends into out (reusing its
// capacity) and performs no allocation when out is large enough.
func (s Series) ResampleValues(rateHz float64, out []float64) ([]float64, error) {
	if len(s) == 0 {
		return nil, ErrEmptySeries
	}
	if rateHz <= 0 {
		return nil, ErrBadRate
	}
	n := int(math.Floor(s.Duration()*rateHz)) + 1
	if n < 1 {
		n = 1
	}
	return s.resampleGrid(1/rateHz, n, out), nil
}

// ResampleValuesN resamples the series onto exactly n evenly spaced
// points spanning its full duration, appending into out. Unlike
// ResampleValues it never drops below the requested point count, so a
// window slightly shorter than its nominal length (CSMA gaps shave
// the edges) still yields a fixed-size query for the matcher.
func (s Series) ResampleValuesN(n int, out []float64) ([]float64, error) {
	if len(s) == 0 {
		return nil, ErrEmptySeries
	}
	if n < 1 {
		return nil, ErrBadRate
	}
	step := 0.0
	if n > 1 {
		step = s.Duration() / float64(n-1)
	}
	return s.resampleGrid(step, n, out), nil
}

// resampleGrid interpolates s at n points starting at s[0].T with the
// given step, appending into out.
func (s Series) resampleGrid(step float64, n int, out []float64) []float64 {
	out = out[:0]
	j := 0
	for i := 0; i < n; i++ {
		t := s[0].T + float64(i)*step
		for j+1 < len(s) && s[j+1].T < t {
			j++
		}
		v := s[j].V
		if j+1 < len(s) && t > s[j].T {
			a, b := s[j], s[j+1]
			if b.T > a.T {
				v = a.V + (b.V-a.V)*(t-a.T)/(b.T-a.T)
			} else {
				v = b.V
			}
		}
		out = append(out, v)
	}
	return out
}
