package dsp

import (
	"math"
	"sort"
)

// EMA is an exponential moving average filter. The zero value is not
// usable; construct with NewEMA.
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0, 1]; alpha=1
// passes input through unchanged. Out-of-range alphas are clamped.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 {
		alpha = 1e-6
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EMA{alpha: alpha}
}

// Update feeds one sample and returns the filtered value. The first
// sample primes the filter.
func (f *EMA) Update(x float64) float64 {
	if !f.primed {
		f.value = x
		f.primed = true
		return x
	}
	f.value += f.alpha * (x - f.value)
	return f.value
}

// Value returns the current filter output (0 before priming).
func (f *EMA) Value() float64 { return f.value }

// Reset clears the filter state.
func (f *EMA) Reset() { f.value, f.primed = 0, false }

// MedianFilter applies a sliding median of odd window size w to xs and
// returns a new slice. Edges use a shrunken window. It returns an
// error when w is not positive and odd.
func MedianFilter(xs []float64, w int) ([]float64, error) {
	if w < 1 || w%2 == 0 {
		return nil, ErrBadWindowSize
	}
	out := make([]float64, len(xs))
	half := w / 2
	buf := make([]float64, 0, w)
	for i := range xs {
		// Shrink the window symmetrically near the edges so it stays
		// odd-length and centered on i; the filter is then the
		// identity on monotone inputs everywhere.
		h := half
		if i < h {
			h = i
		}
		if len(xs)-1-i < h {
			h = len(xs) - 1 - i
		}
		buf = append(buf[:0], xs[i-h:i+h+1]...)
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out, nil
}

// Unwrap removes 2π discontinuities from a phase sequence in place
// semantics-free: it returns a new slice where consecutive samples
// never jump by more than π.
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	offset := 0.0
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		out[i] = phases[i] + offset
	}
	return out
}

// RollingStd computes the standard deviation over a centered window of
// w samples at every index (shrunken at the edges). w < 1 returns nil.
func RollingStd(xs []float64, w int) []float64 {
	if w < 1 {
		return nil
	}
	out := make([]float64, len(xs))
	half := w / 2
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		out[i] = stdOf(xs[lo : hi+1])
	}
	return out
}

func stdOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
