package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEMAPriming(t *testing.T) {
	f := NewEMA(0.5)
	if got := f.Update(10); got != 10 {
		t.Errorf("first sample = %v, want pass-through", got)
	}
	if got := f.Update(20); got != 15 {
		t.Errorf("second sample = %v, want 15", got)
	}
	if f.Value() != 15 {
		t.Errorf("Value = %v", f.Value())
	}
	f.Reset()
	if f.Value() != 0 {
		t.Error("Reset did not clear value")
	}
	if got := f.Update(7); got != 7 {
		t.Error("Reset did not clear priming")
	}
}

func TestEMAAlphaClamping(t *testing.T) {
	f := NewEMA(5) // clamps to 1: pure pass-through
	f.Update(1)
	if got := f.Update(100); got != 100 {
		t.Errorf("alpha=1 should track input exactly, got %v", got)
	}
	g := NewEMA(-1) // clamps to tiny: nearly frozen
	g.Update(0)
	if got := g.Update(1000); got > 0.1 {
		t.Errorf("tiny alpha should barely move, got %v", got)
	}
}

func TestEMAConvergesToConstant(t *testing.T) {
	f := NewEMA(0.2)
	var got float64
	for i := 0; i < 200; i++ {
		got = f.Update(42)
	}
	if math.Abs(got-42) > 1e-9 {
		t.Errorf("EMA did not converge: %v", got)
	}
}

func TestMedianFilterRejectsBadWindow(t *testing.T) {
	for _, w := range []int{0, -3, 2, 4} {
		if _, err := MedianFilter([]float64{1, 2, 3}, w); err != ErrBadWindowSize {
			t.Errorf("w=%d err = %v", w, err)
		}
	}
}

func TestMedianFilterRemovesSpike(t *testing.T) {
	xs := []float64{1, 1, 1, 100, 1, 1, 1}
	out, err := MedianFilter(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1 {
			t.Errorf("spike survived at %d: %v", i, v)
		}
	}
}

func TestMedianFilterIdentityOnMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out, err := MedianFilter(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if out[i] != xs[i] {
			t.Errorf("monotone distorted at %d: %v", i, out[i])
		}
	}
}

func TestMedianFilterWindowOne(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	out, err := MedianFilter(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if out[i] != xs[i] {
			t.Error("w=1 must be identity")
		}
	}
}

func TestUnwrapContinuity(t *testing.T) {
	// A phase ramp that wraps at ±π must unwrap to a straight line.
	var wrapped []float64
	for i := 0; i < 100; i++ {
		phi := 0.2 * float64(i)
		wrapped = append(wrapped, math.Atan2(math.Sin(phi), math.Cos(phi)))
	}
	un := Unwrap(wrapped)
	for i := 1; i < len(un); i++ {
		if math.Abs(un[i]-un[i-1]-0.2) > 1e-9 {
			t.Fatalf("unwrap jump at %d: %v", i, un[i]-un[i-1])
		}
	}
}

func TestUnwrapEmpty(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Error("Unwrap(nil) must be empty")
	}
}

func TestUnwrapNoJumpIsIdentity(t *testing.T) {
	f := func(deltas []float64) bool {
		phases := []float64{0}
		for _, d := range deltas {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			step := math.Mod(math.Abs(d), 3.0) // always < π
			phases = append(phases, phases[len(phases)-1]+step-1.5)
		}
		// keep in range to avoid legitimate wraps
		for i := range phases {
			phases[i] = math.Mod(phases[i], 3.0)
		}
		un := Unwrap(phases)
		for i := range phases {
			if math.Abs(un[i]-phases[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRollingStd(t *testing.T) {
	if RollingStd([]float64{1, 2}, 0) != nil {
		t.Error("w<1 must return nil")
	}
	xs := []float64{0, 0, 0, 10, 0, 0, 0}
	out := RollingStd(xs, 3)
	if out[0] != 0 {
		t.Errorf("flat region std = %v", out[0])
	}
	if out[3] == 0 {
		t.Error("spike region std must be nonzero")
	}
}

func TestStabilityDetectorBasics(t *testing.T) {
	d := NewStabilityDetector(0.1, 0.01, 0.05)
	// Feed a flat signal at 100 Hz for 0.2s: must become stable.
	stable := false
	for i := 0; i < 20; i++ {
		stable = d.Push(float64(i)*0.01, 1.0)
	}
	if !stable {
		t.Fatal("flat signal not detected stable")
	}
	if math.Abs(d.Mean()-1.0) > 1e-9 {
		t.Errorf("Mean = %v", d.Mean())
	}
	// A large excursion must break stability immediately.
	if d.Push(0.21, 5.0) {
		t.Error("excursion did not break stability")
	}
}

func TestStabilityDetectorHold(t *testing.T) {
	d := NewStabilityDetector(0.05, 0.01, 0.2)
	// Stable signal but shorter than minHold: not yet stable.
	for i := 0; i < 10; i++ {
		if d.Push(float64(i)*0.01, 0) && float64(i)*0.01 < 0.2 {
			t.Fatal("declared stable before minHold elapsed")
		}
	}
	// Keep going past the hold.
	ok := false
	for i := 10; i < 40; i++ {
		ok = d.Push(float64(i)*0.01, 0)
	}
	if !ok {
		t.Error("never declared stable after minHold")
	}
}

func TestStabilityDetectorNoisySignal(t *testing.T) {
	d := NewStabilityDetector(0.1, 0.01, 0.0)
	for i := 0; i < 50; i++ {
		v := float64(i % 2) // alternating 0/1: std 0.5 >> threshold
		if d.Push(float64(i)*0.01, v) {
			t.Fatal("noisy signal declared stable")
		}
	}
}

func TestStabilityDetectorOutOfOrder(t *testing.T) {
	d := NewStabilityDetector(0.1, 0.01, 0)
	for i := 0; i < 20; i++ {
		d.Push(float64(i)*0.01, 0)
	}
	was := d.Stable(0.19)
	// An out-of-order sample must be ignored, not corrupt state.
	got := d.Push(0.05, 99)
	if got != was {
		t.Error("out-of-order sample changed stability")
	}
}

func TestStabilityDetectorReset(t *testing.T) {
	d := NewStabilityDetector(0.1, 0.01, 0)
	for i := 0; i < 20; i++ {
		d.Push(float64(i)*0.01, 3)
	}
	d.Reset()
	if d.Stable(1) {
		t.Error("Reset did not clear stability")
	}
	if d.Mean() != 0 {
		t.Error("Reset did not clear mean")
	}
}

func TestStabilityDetectorDefaults(t *testing.T) {
	d := NewStabilityDetector(-1, -1, -1)
	// Must not panic and must behave sanely.
	for i := 0; i < 10; i++ {
		d.Push(float64(i)*0.001, 0)
	}
}
