package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func mkSeries(ts, vs []float64) Series {
	s := make(Series, len(ts))
	for i := range ts {
		s[i] = Sample{T: ts[i], V: vs[i]}
	}
	return s
}

func TestTimesValuesDuration(t *testing.T) {
	s := mkSeries([]float64{0, 1, 3}, []float64{5, 6, 7})
	ts, vs := s.Times(), s.Values()
	if ts[2] != 3 || vs[0] != 5 {
		t.Errorf("Times/Values = %v / %v", ts, vs)
	}
	if s.Duration() != 3 {
		t.Errorf("Duration = %v", s.Duration())
	}
	if (Series{}).Duration() != 0 {
		t.Error("empty Duration must be 0")
	}
}

func TestMaxGapMeanRate(t *testing.T) {
	s := mkSeries([]float64{0, 0.1, 0.5, 0.6}, []float64{0, 0, 0, 0})
	if g := s.MaxGap(); math.Abs(g-0.4) > 1e-12 {
		t.Errorf("MaxGap = %v", g)
	}
	if r := s.MeanRate(); math.Abs(r-5) > 1e-9 {
		t.Errorf("MeanRate = %v", r)
	}
	if (Series{{T: 1, V: 1}}).MeanRate() != 0 {
		t.Error("single-sample MeanRate must be 0")
	}
}

func TestWindow(t *testing.T) {
	s := mkSeries([]float64{0, 1, 2, 3, 4}, []float64{10, 11, 12, 13, 14})
	w := s.Window(1, 3)
	if len(w) != 3 || w[0].V != 11 || w[2].V != 13 {
		t.Errorf("Window = %v", w)
	}
	if s.Window(10, 20) != nil {
		t.Error("out-of-range window must be nil")
	}
	if s.Window(3, 1) != nil {
		t.Error("inverted window must be nil")
	}
}

func TestAtInterpolation(t *testing.T) {
	s := mkSeries([]float64{0, 2}, []float64{0, 10})
	if _, err := (Series{}).At(1); err != ErrEmptySeries {
		t.Errorf("empty At err = %v", err)
	}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {1, 5}, {2, 10}, {3, 10},
	}
	for _, c := range cases {
		got, err := s.At(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestAtDuplicateTimestamps(t *testing.T) {
	s := mkSeries([]float64{0, 1, 1, 2}, []float64{0, 4, 8, 8})
	got, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) {
		t.Error("At over duplicate timestamps produced NaN")
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := (Series{}).Resample(100); err != ErrEmptySeries {
		t.Errorf("empty err = %v", err)
	}
	s := mkSeries([]float64{0, 1}, []float64{0, 1})
	if _, err := s.Resample(0); err != ErrBadRate {
		t.Errorf("rate err = %v", err)
	}
	bad := mkSeries([]float64{1, 0}, []float64{0, 1})
	if _, err := bad.Resample(10); err != ErrUnsorted {
		t.Errorf("unsorted err = %v", err)
	}
}

func TestResampleUniformGrid(t *testing.T) {
	s := mkSeries([]float64{0, 0.13, 0.29, 0.55, 1.0}, []float64{0, 1, 2, 3, 4})
	rs, err := s.Resample(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 {
		t.Fatalf("len = %d, want 11", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if math.Abs((rs[i].T-rs[i-1].T)-0.1) > 1e-9 {
			t.Fatalf("grid not uniform at %d: %v", i, rs[i].T-rs[i-1].T)
		}
	}
	if rs[0].V != 0 {
		t.Errorf("first value = %v", rs[0].V)
	}
	if math.Abs(rs[len(rs)-1].V-4) > 1e-9 {
		t.Errorf("last value = %v", rs[len(rs)-1].V)
	}
}

func TestResamplePreservesLinearSignal(t *testing.T) {
	// A linear signal resampled at any rate must stay linear.
	s := mkSeries(
		[]float64{0, 0.07, 0.21, 0.33, 0.5},
		[]float64{0, 0.14, 0.42, 0.66, 1.0},
	)
	rs, err := s.Resample(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range rs {
		if math.Abs(smp.V-2*smp.T) > 1e-9 {
			t.Fatalf("linear signal distorted at t=%v: %v", smp.T, smp.V)
		}
	}
}

func TestResampleValuesMatchesResample(t *testing.T) {
	s := mkSeries([]float64{0, 0.3, 0.8, 1.1}, []float64{1, -1, 2, 0})
	rs, err := s.Resample(25)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := s.ResampleValues(25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(rs) {
		t.Fatalf("len mismatch %d vs %d", len(vals), len(rs))
	}
	for i := range vals {
		if math.Abs(vals[i]-rs[i].V) > 1e-12 {
			t.Fatalf("value %d: %v vs %v", i, vals[i], rs[i].V)
		}
	}
}

func TestResampleValuesReusesBuffer(t *testing.T) {
	s := mkSeries([]float64{0, 1}, []float64{0, 1})
	buf := make([]float64, 0, 256)
	out, err := s.ResampleValues(100, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[:1][0] != &buf[:1][0] {
		t.Error("ResampleValues did not reuse provided buffer")
	}
}

func TestResampleSingleSample(t *testing.T) {
	s := Series{{T: 5, V: 42}}
	rs, err := s.Resample(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].V != 42 {
		t.Errorf("single-sample resample = %v", rs)
	}
}

func TestResamplePropertySortedOutput(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		s := make(Series, 0, len(raw))
		t0 := 0.0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			t0 += 0.01 + math.Mod(math.Abs(v), 0.02)
			s = append(s, Sample{T: t0, V: v})
		}
		if len(s) < 2 {
			return true
		}
		rs, err := s.Resample(50)
		if err != nil {
			return false
		}
		return rs.IsSorted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
