package dsp

import "math"

// StabilityDetector decides whether a streaming signal has been
// "stable" — its standard deviation below a threshold — for at least a
// configured duration. ViHOT uses it to detect the driver facing the
// road (0° head orientation): a stable CSI phase means no head motion,
// which is the anchor for position estimation (Sec. 3.4.1).
//
// The detector keeps a sliding time window of samples in a ring
// buffer; Push is O(window length) in the worst case but amortized
// O(1) for steady streams.
type StabilityDetector struct {
	window    float64 // seconds of history to consider
	threshold float64 // max std-dev considered stable
	minHold   float64 // seconds the signal must stay stable

	buf        []Sample  // ring storage, time-ordered
	scratch    []float64 // reused window values
	stableFrom float64   // time stability began, NaN when unstable
	lastMean   float64
}

// NewStabilityDetector returns a detector over a sliding window of the
// given length (seconds) that declares stability once the windowed
// standard deviation stays below threshold for minHold seconds.
// Non-positive parameters are clamped to small sane defaults.
func NewStabilityDetector(window, threshold, minHold float64) *StabilityDetector {
	if window <= 0 {
		window = 0.1
	}
	if threshold <= 0 {
		threshold = 1e-3
	}
	if minHold < 0 {
		minHold = 0
	}
	return &StabilityDetector{
		window:     window,
		threshold:  threshold,
		minHold:    minHold,
		stableFrom: math.NaN(),
	}
}

// Push feeds one sample and returns whether the signal is currently
// considered stable. Samples must arrive in time order; out-of-order
// samples are dropped.
func (d *StabilityDetector) Push(t, v float64) bool {
	if n := len(d.buf); n > 0 && t < d.buf[n-1].T {
		return d.Stable(t)
	}
	d.buf = append(d.buf, Sample{T: t, V: v})
	// Evict samples older than the window.
	cut := 0
	for cut < len(d.buf) && d.buf[cut].T < t-d.window {
		cut++
	}
	if cut > 0 {
		d.buf = append(d.buf[:0], d.buf[cut:]...)
	}
	if len(d.buf) < 2 {
		return false
	}
	vs := d.scratch[:0]
	for _, s := range d.buf {
		vs = append(vs, s.V)
	}
	d.scratch = vs
	std := stdOf(vs)
	d.lastMean = meanOf(vs)
	if std <= d.threshold {
		if math.IsNaN(d.stableFrom) {
			d.stableFrom = t
		}
	} else {
		d.stableFrom = math.NaN()
	}
	return d.Stable(t)
}

// Stable reports whether the signal has been stable for at least
// minHold seconds as of time t.
func (d *StabilityDetector) Stable(t float64) bool {
	return !math.IsNaN(d.stableFrom) && t-d.stableFrom >= d.minHold
}

// Mean returns the mean of the current window, meaningful only while
// Stable. ViHOT uses it as the front-facing phase fingerprint φ⁰r.
func (d *StabilityDetector) Mean() float64 { return d.lastMean }

// Reset clears all detector state.
func (d *StabilityDetector) Reset() {
	d.buf = d.buf[:0]
	d.stableFrom = math.NaN()
	d.lastMean = 0
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
