package cluster

import (
	"fmt"
	"time"

	"vihot/internal/journal"
)

// The handoff protocol (DESIGN.md §14). Two paths move a session:
//
// Drain (orderly): the source node is flushed, every session exported
// through serve.ExportSessions (the quiesced snapshot: clock, health,
// last estimate), each export journaled and sent as a MsgRestore to
// the session's new owner under the shrunken ring. The source manager
// then CloseDrains — its conservation identity closes exactly.
//
// Failover (detected): the dead node cannot be asked for anything, so
// the carried estimate comes from the router's estimate-backflow
// directory — usually at most EstimateEveryS stale, but arbitrarily
// stale if the dead node died with a processing backlog or while its
// pipelines were quarantined (steering events emit nothing). The
// record's clock is therefore NOT the estimate's time but the
// router's own stream clock at detection: the restored session must
// resume at the stream position the fleet has actually reached, or
// serve's far-future admission guard would reject the entire resumed
// stream against a stale clock and the session could never recover.
// The record is marked ExportFailover, and the node is fenced (hard
// Close) before the ring is rebuilt, so a partitioned-but-alive
// manager can never keep serving sessions the cluster has reassigned.
//
// Either way the destination restores through serve.RestoreSession
// and the session re-enters service COASTING until its frames resume.

// maybeHeartbeat runs the stream-time failure detector. Caller holds
// mu; the clock has just advanced. Pings go out every HeartbeatS of
// stream-time advance; a node whose last pong lags the clock by more
// than HeartbeatMisses*HeartbeatS is declared dead and failed over.
func (c *Cluster) maybeHeartbeat() {
	if c.nextBeat == 0 {
		// First clock observation anchors the schedule and the pong
		// table: silence is measured from here, not from stream zero.
		c.nextBeat = c.clock + c.cfg.HeartbeatS
		c.dirMu.Lock()
		for _, name := range c.names {
			c.lastPong[name] = c.clock
		}
		c.dirMu.Unlock()
		return
	}
	if c.clock < c.nextBeat {
		return
	}
	c.nextBeat = c.clock + c.cfg.HeartbeatS
	// Probe first (a reachable node's pong lands synchronously on the
	// loopback transport, asynchronously on UDP), then judge.
	for _, name := range c.names {
		if c.live[name] {
			_ = c.send(&Message{Kind: MsgPing, To: name, T: c.clock})
		}
	}
	deathAfter := float64(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatS
	for _, name := range c.names {
		if !c.live[name] {
			continue
		}
		c.dirMu.Lock()
		gap := c.clock - c.lastPong[name]
		c.dirMu.Unlock()
		if gap >= c.cfg.HeartbeatS {
			c.metrics.heartbeatMisses.Add(1)
		}
		if gap > deathAfter {
			c.failover(name)
		}
	}
}

// failover declares a node dead: fence it, rebuild the ring, and
// reassign its sessions from the router's directory snapshots. Caller
// holds mu.
func (c *Cluster) failover(name string) {
	node := c.nodes[name]
	// Fence before reassigning: the manager is hard-closed so a
	// partitioned-but-alive node can never race the new owner for its
	// old sessions. Static membership means no rejoin — a fenced node
	// stays out until the fleet restarts.
	node.alive.Store(false)
	node.mgr.Close()
	c.live[name] = false
	ring, err := c.ring.Without(name)
	if err != nil {
		return
	}
	c.ring = ring
	c.metrics.reassignments.Add(1)
	c.metrics.nodesLive.Set(float64(c.liveCount()))
	c.metrics.ringPoints.Set(float64(ring.Points()))

	for _, id := range c.sortedDirSessions(name) {
		c.dirMu.Lock()
		e := c.dir[id]
		var snap dirEntry
		if e != nil {
			snap = *e
		}
		c.dirMu.Unlock()
		if e == nil {
			continue
		}
		dest := c.ring.Owner(id)
		if dest == "" {
			continue // last node died; sessions are simply lost
		}
		rec := journal.Record{
			Kind:    journal.KindExport,
			Session: id,
			From:    c.idx[name],
			To:      c.idx[dest],
			Flags:   journal.ExportFailover,
		}
		// The restored clock is the detection-time stream clock, never
		// the (possibly much older) estimate time: resumed items arrive
		// at the stream position the router is at now, and seeding an
		// older clock risks tripping the destination's far-future
		// admission guard on every one of them.
		if c.haveClock {
			rec.T = c.clock
			rec.Flags |= journal.ExportHasClock
		} else if snap.hasEst {
			rec.T = snap.est.Time
			rec.Flags |= journal.ExportHasClock
		}
		if snap.hasEst {
			rec.Flags |= journal.ExportHasEstimate
			rec.EstT = snap.est.Time
			rec.Yaw = snap.est.Yaw
			rec.Position = snap.est.Position
			rec.Source = snap.est.Source
			rec.MatchDist = snap.est.MatchDist
			rec.Health = snap.est.Health
		}
		c.completeHandoff(id, snap.key, name, dest, rec, true, 0)
	}
}

// liveCount counts live members. Caller holds mu.
func (c *Cluster) liveCount() int {
	n := 0
	for _, ok := range c.live {
		if ok {
			n++
		}
	}
	return n
}

// completeHandoff journals one export, restores it on the
// destination, and updates the directory. Caller holds mu. A restore
// the transport (or the fault filter) eats is not retried: the
// directory still moves, so the session's items target the new owner
// and surface there as DroppedUnknown — visible, not silent.
func (c *Cluster) completeHandoff(id, key, from, dest string, rec journal.Record, failover bool, durNS int64) {
	c.journalExport(rec)
	_ = c.send(&Message{Kind: MsgRestore, To: dest, Session: id, Key: key, Export: rec})
	c.dirMu.Lock()
	if e := c.dir[id]; e != nil {
		e.node = dest
	}
	c.dirMu.Unlock()
	if failover {
		c.metrics.handoffFailover.Add(1)
	} else {
		c.metrics.handoffDrain.Add(1)
	}
	if c.cfg.OnHandoff != nil {
		c.cfg.OnHandoff(HandoffEvent{
			Session: id, Key: key, From: from, To: dest,
			T:        rec.T,
			Failover: failover,
			DurNS:    durNS,
		})
	}
}

// journalExport appends one handoff record to the coordinator journal.
func (c *Cluster) journalExport(rec journal.Record) {
	if c.cfg.Journal == nil {
		return
	}
	if c.cfg.Journal.Append(rec) {
		c.metrics.journalAppended.Add(1)
	} else {
		c.metrics.journalDropped.Add(1)
	}
}

// DrainNode performs node maintenance: the member leaves the ring,
// its sessions are exported (flushed, quiesced, journal-backed) and
// restored onto their new owners, and the empty manager shuts down
// gracefully. Returns the transfers in session order. The caller must
// not push concurrently with a drain in deterministic mode; in
// concurrent mode pushes serialize behind the router lock as usual.
func (c *Cluster) DrainNode(name string) ([]HandoffEvent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	node := c.nodes[name]
	if node == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if !c.live[name] {
		return nil, fmt.Errorf("%w: %q already down", ErrUnknownNode, name)
	}
	ring, err := c.ring.Without(name)
	if err != nil {
		return nil, err
	}
	// Leave the ring first: from here no new session can land on the
	// draining node (pushes wait on mu, so no items race the export).
	c.ring = ring
	c.metrics.reassignments.Add(1)
	c.metrics.ringPoints.Set(float64(ring.Points()))

	recs := node.exportAll()
	events := make([]HandoffEvent, 0, len(recs))
	for _, rec := range recs {
		var t0 time.Time
		if c.cfg.MeasureHandoff {
			t0 = time.Now()
		}
		id := rec.Session
		c.dirMu.Lock()
		e := c.dir[id]
		key := ""
		if e != nil {
			key = e.key
		}
		c.dirMu.Unlock()
		if e == nil {
			// A session the node holds but the router never opened (or
			// already closed): nothing to route to it, nothing to move.
			continue
		}
		dest := c.ring.Owner(id)
		if dest == "" {
			continue
		}
		rec.From = c.idx[name]
		rec.To = c.idx[dest]
		node.forgetBackflow(id)
		c.completeHandoff(id, key, name, dest, rec, false, 0)
		var durNS int64
		if c.cfg.MeasureHandoff {
			// The restore lands synchronously on the loopback transport,
			// so the stamp spans export-to-restored.
			durNS = time.Since(t0).Nanoseconds()
		}
		events = append(events, HandoffEvent{Session: id, Key: key, From: name, To: dest, T: rec.T, DurNS: durNS})
	}
	// The node is empty (every session exported) — a graceful stop
	// closes its books exactly.
	node.alive.Store(false)
	c.live[name] = false
	node.mgr.CloseDrain()
	c.metrics.nodesLive.Set(float64(c.liveCount()))
	return events, nil
}

// KillNode simulates a crash: the member's manager hard-stops and its
// endpoint refuses frames, but the router is not told — items for its
// sessions drop (DroppedDown) until the stream-time failure detector
// notices the silence and fails the sessions over. Tests and the
// chaos soak use this; production nodes die by themselves.
func (c *Cluster) KillNode(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	node := c.nodes[name]
	if node == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	// alive drops first so no frame can land between the two.
	node.alive.Store(false)
	node.mgr.Close()
	return nil
}
