package cluster

import "vihot/internal/obs"

// clusterMetrics is the vihot_cluster_* series (DESIGN.md §14). Like
// serve's counters they always exist — a private registry backs them
// when Config.Metrics is nil — so Stats() works uninstrumented.
type clusterMetrics struct {
	nodesLive  *obs.Gauge
	ringPoints *obs.Gauge
	sessions   *obs.Gauge

	routedItems    *obs.Counter
	deliveredItems *obs.Counter

	droppedPartition *obs.Counter // frames eaten by the fault filter
	droppedDown      *obs.Counter // items addressed to a dead node
	droppedUnowned   *obs.Counter // items for sessions the router never opened

	messagesSent    *obs.Counter
	estimates       *obs.Counter // backflow updates received
	heartbeatMisses *obs.Counter
	reassignments   *obs.Counter // ring rebuilds (drain or failover)
	handoffDrain    *obs.Counter
	handoffFailover *obs.Counter
	journalAppended *obs.Counter
	journalDropped  *obs.Counter
}

func newClusterMetrics(reg *obs.Registry) clusterMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	dropped := func(reason string) *obs.Counter {
		return reg.Counter("vihot_cluster_dropped_items_total",
			"items the router could not deliver", "reason", reason)
	}
	handoffs := func(reason string) *obs.Counter {
		return reg.Counter("vihot_cluster_handoffs_total",
			"sessions moved between nodes", "reason", reason)
	}
	return clusterMetrics{
		nodesLive:  reg.Gauge("vihot_cluster_nodes", "live member nodes"),
		ringPoints: reg.Gauge("vihot_cluster_ring_points", "virtual nodes on the hash ring"),
		sessions:   reg.Gauge("vihot_cluster_sessions", "sessions in the routing directory"),

		routedItems:    reg.Counter("vihot_cluster_routed_items_total", "items accepted for routing"),
		deliveredItems: reg.Counter("vihot_cluster_delivered_items_total", "items delivered to a member node"),

		droppedPartition: dropped("partition"),
		droppedDown:      dropped("node_down"),
		droppedUnowned:   dropped("unowned"),

		messagesSent:    reg.Counter("vihot_cluster_messages_sent_total", "cluster frames sent"),
		estimates:       reg.Counter("vihot_cluster_estimates_total", "estimate backflow updates received"),
		heartbeatMisses: reg.Counter("vihot_cluster_heartbeat_misses_total", "heartbeat intervals with no pong"),
		reassignments:   reg.Counter("vihot_cluster_reassignments_total", "ring membership rebuilds"),
		handoffDrain:    handoffs("drain"),
		handoffFailover: handoffs("failover"),
		journalAppended: reg.Counter("vihot_cluster_journal_appended_total", "handoff records journaled"),
		journalDropped:  reg.Counter("vihot_cluster_journal_dropped_total", "handoff records shed by the journal queue"),
	}
}

// Stats is one observation of the cluster counters (same monotone,
// not-a-consistent-cut caveat as serve.CounterSnapshot).
type Stats struct {
	Nodes      int
	LiveNodes  int
	RingPoints int
	Sessions   int

	Routed           uint64
	Delivered        uint64
	DroppedPartition uint64
	DroppedDown      uint64
	DroppedUnowned   uint64

	MessagesSent     uint64
	Estimates        uint64
	HeartbeatMisses  uint64
	Reassignments    uint64
	DrainHandoffs    uint64
	FailoverHandoffs uint64
	JournalAppended  uint64
	JournalDropped   uint64
}
