package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n2", "n0", "n1", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different declaration order: the ring is a
	// function of the member set, not of the slice.
	b, err := NewRing([]string{"n3", "n1", "n0", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Points(), 4*ringVNodesDefault; got != want {
		t.Fatalf("Points() = %d, want %d", got, want)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%03d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across identical memberships: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
	if got := a.Owner("anything-on-empty"); got == "" {
		t.Fatal("Owner returned empty on a populated ring")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"alpha", "beta", "gamma", "delta"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("session-%04d", i))]++
	}
	// With 64 vnodes each member should land within a loose factor of
	// the fair share — the test guards against degenerate skew, not
	// perfect uniformity.
	fair := keys / len(members)
	for _, m := range members {
		n := counts[m]
		if n < fair/3 || n > fair*3 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d): ring badly skewed: %v",
				m, n, keys, fair, counts)
		}
	}
}

// TestRingSequentialIDsSpread pins the avalanche fix: session IDs
// that differ only in a trailing counter — the shape real deployments
// mint — must not pile onto one member (raw FNV-1a put all of these
// on a single node).
func TestRingSequentialIDsSpread(t *testing.T) {
	r, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]bool{}
	for i := 0; i < 5; i++ {
		owners[r.Owner(fmt.Sprintf("driver-%02d", i))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("5 sequential IDs all landed on %v", owners)
	}
}

func TestRingMinimalMovement(t *testing.T) {
	members := []string{"alpha", "beta", "gamma", "delta"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := r.Without("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shrunk.Points(), 3*ringVNodesDefault; got != want {
		t.Fatalf("shrunk Points() = %d, want %d", got, want)
	}
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("session-%04d", i)
		before, after := r.Owner(key), shrunk.Owner(key)
		if after == "beta" {
			t.Fatalf("removed member still owns %q", key)
		}
		if before == "beta" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s→%s although its owner stayed in the ring",
				key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
	r, err := NewRing([]string{"solo"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Without("ghost"); err == nil {
		t.Fatal("Without(unknown) accepted")
	}
	last, err := r.Without("solo")
	if err != nil {
		t.Fatal(err)
	}
	if got := last.Owner("any"); got != "" {
		t.Fatalf("empty ring owns %q", got)
	}
}
