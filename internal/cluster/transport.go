package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Handler consumes one encoded cluster frame addressed to the
// registered endpoint.
type Handler func(frame []byte) error

// Transport moves encoded cluster frames between endpoints: the
// router (endpoint name "") and the member nodes. Implementations
// must be safe for concurrent Send; delivery order is only guaranteed
// per sender goroutine.
type Transport interface {
	// Register binds an endpoint name to its frame handler.
	Register(name string, h Handler) error
	// Send delivers one frame to the named endpoint.
	Send(to string, frame []byte) error
	// Close releases transport resources.
	Close() error
}

// ErrUnreachable reports a send to an endpoint the transport has no
// route for.
var ErrUnreachable = errors.New("cluster: endpoint unreachable")

// Loopback is the in-process transport: Send invokes the receiver's
// handler synchronously on the sender's goroutine, round-tripping the
// real encoded bytes — the codec cost is identical to a socket
// transport, only the kernel is missing. Synchronous delivery is also
// what makes deterministic mode deterministic: one goroutine, one
// total order of frames.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewLoopback builds an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: make(map[string]Handler)}
}

// Register binds an endpoint.
func (l *Loopback) Register(name string, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.handlers[name]; ok {
		return fmt.Errorf("cluster: endpoint %q already registered", name)
	}
	l.handlers[name] = h
	return nil
}

// Send delivers the frame synchronously.
func (l *Loopback) Send(to string, frame []byte) error {
	l.mu.RLock()
	h := l.handlers[to]
	l.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnreachable, to)
	}
	return h(frame)
}

// Close is a no-op.
func (l *Loopback) Close() error { return nil }
