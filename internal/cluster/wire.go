package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"vihot/internal/envelope"
	"vihot/internal/journal"
	"vihot/internal/serve"
	"vihot/internal/wifi"
)

// The cluster wire format: every coordinator↔node exchange is one
// envelope frame (magic "ViHC", the same magic/version/length/CRC-32
// frame layout journals and profiles use) whose payload is:
//
//	offset  size  field
//	0       1     message kind
//	1       8     stream time, IEEE-754 bits big-endian
//	9       1+F   from-node name (u8 length prefix)
//	…       1+T   to-node name (u8 length prefix; empty = the router)
//	…       2+S   session ID (u16 length prefix)
//	…       2+K   profile key (u16 length prefix)
//	…       …     kind-specific body (below)
//
// Bodies:
//
//	items:    u16 count, then per item: session (u16 prefix), item
//	          kind u8, then phase (t f64 | phi f64), camera
//	          (t f64 | yaw f64 | valid u8), or a length-prefixed
//	          wifi CSI/IMU datagram ("VHOT", PR 1) verbatim — the
//	          cluster reuses the existing sensor wire layer rather
//	          than inventing a second frame encoding
//	profile:  the profile's own persisted form ("ViHP", PR 4), opaque
//	          here, validated when the receiving node applies it
//	restore:  one framed journal record ("ViHJ", PR 7) of
//	          KindExport — the handoff snapshot travels in exactly
//	          the bytes a drain journals
//	estimate: estT f64 | yaw f64 | matchDist f64 | position u32 |
//	          source u8 | health u8 (the node→router backflow that
//	          feeds the failover directory)
//	open, close, ping, pong: empty
//
// Decoding is strict — unknown kinds, oversized names, short or
// trailing bytes, and malformed embedded datagrams are all
// ErrBadMessage — and canonical: any accepted frame re-encodes to the
// same bytes, the invariant FuzzClusterDecode holds the codec to.
const (
	// WireMagic opens every cluster frame.
	WireMagic = "ViHC"
	// WireVersion is the cluster frame version this build speaks.
	WireVersion = 1

	// maxWirePayload caps a frame: profiles are the largest legitimate
	// payload (a few hundred KB at fleet-typical grid sizes).
	maxWirePayload = 16 << 20
	// maxNodeName bounds member names (u8 length prefix).
	maxNodeName = 255
	// maxIDLen bounds session IDs and profile keys on the wire.
	maxIDLen = 1024
	// maxItemsPerMsg bounds one items batch; the router flushes a
	// node's batch at this size.
	maxItemsPerMsg = 1024
)

// wireSpec is the cluster's envelope.
var wireSpec = envelope.Spec{Magic: WireMagic, Version: WireVersion, MaxPayload: maxWirePayload}

// ErrBadMessage wraps every payload-level decode failure.
var ErrBadMessage = errors.New("cluster: bad message")

// MsgKind discriminates cluster messages. The zero value is invalid
// on purpose, like journal record kinds.
type MsgKind uint8

// Message kinds.
const (
	MsgOpen     MsgKind = 1 // router→node: open Session over Key's profile
	MsgItems    MsgKind = 2 // router→node: a batch of sensor items
	MsgPing     MsgKind = 3 // router→node: heartbeat probe at stream time T
	MsgPong     MsgKind = 4 // node→router: heartbeat reply echoing T
	MsgRestore  MsgKind = 5 // router→node: restore Session from Export
	MsgProfile  MsgKind = 6 // router→node: replicate Key's profile bytes
	MsgEstimate MsgKind = 7 // node→router: estimate backflow for Session
	MsgClose    MsgKind = 8 // router→node: close Session
)

// String names the kind for counters and tooling.
func (k MsgKind) String() string {
	switch k {
	case MsgOpen:
		return "open"
	case MsgItems:
		return "items"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgRestore:
		return "restore"
	case MsgProfile:
		return "profile"
	case MsgEstimate:
		return "estimate"
	case MsgClose:
		return "close"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

func (k MsgKind) valid() bool { return k >= MsgOpen && k <= MsgClose }

// EstimateUpdate is the estimate backflow body: what the router's
// failover directory remembers about a session's last output.
type EstimateUpdate struct {
	Time      float64
	Yaw       float64
	MatchDist float64
	Position  int32
	Source    uint8
	Health    uint8
}

// Message is one cluster exchange. Exactly the fields implied by Kind
// are meaningful.
type Message struct {
	Kind    MsgKind
	From    string  // sender node name; "" is the router
	To      string  // receiver node name; "" is the router
	Session string  // MsgOpen, MsgRestore, MsgEstimate, MsgClose
	Key     string  // MsgOpen, MsgProfile: profile-store key
	T       float64 // stream time: heartbeat probe time, batch max time

	Items   []serve.Item   // MsgItems
	Profile []byte         // MsgProfile: persisted profile bytes, opaque
	Export  journal.Record // MsgRestore: the KindExport handoff snapshot
	Est     EstimateUpdate // MsgEstimate
}

// EncodeMessage frames one message onto dst. Frames embedded in items
// are encoded through the wifi wire layer; a frame that fails its own
// encoder (impossible shapes) fails the whole message.
func EncodeMessage(dst []byte, m *Message) ([]byte, error) {
	payload, err := appendMsgPayload(nil, m)
	if err != nil {
		return dst, err
	}
	return envelope.Append(dst, wireSpec, payload), nil
}

func appendMsgPayload(dst []byte, m *Message) ([]byte, error) {
	if !m.Kind.valid() {
		return dst, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, uint8(m.Kind))
	}
	if len(m.From) > maxNodeName || len(m.To) > maxNodeName {
		return dst, fmt.Errorf("%w: node name too long", ErrBadMessage)
	}
	if len(m.Session) > maxIDLen || len(m.Key) > maxIDLen {
		return dst, fmt.Errorf("%w: session/key too long", ErrBadMessage)
	}
	if math.IsNaN(m.T) || math.IsInf(m.T, 0) {
		return dst, fmt.Errorf("%w: non-finite stream time", ErrBadMessage)
	}
	dst = append(dst, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.T))
	dst = append(dst, byte(len(m.From)))
	dst = append(dst, m.From...)
	dst = append(dst, byte(len(m.To)))
	dst = append(dst, m.To...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Session)))
	dst = append(dst, m.Session...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Key)))
	dst = append(dst, m.Key...)
	switch m.Kind {
	case MsgItems:
		if len(m.Items) > maxItemsPerMsg {
			return dst, fmt.Errorf("%w: %d items in one batch", ErrBadMessage, len(m.Items))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Items)))
		var err error
		for i := range m.Items {
			if dst, err = appendItem(dst, &m.Items[i]); err != nil {
				return dst, err
			}
		}
	case MsgProfile:
		dst = append(dst, m.Profile...)
	case MsgRestore:
		if m.Export.Kind != journal.KindExport {
			return dst, fmt.Errorf("%w: restore carries kind %v", ErrBadMessage, m.Export.Kind)
		}
		rec := m.Export
		framed, err := journal.AppendRecord(nil, &rec)
		if err != nil {
			return dst, err
		}
		dst = append(dst, framed...)
	case MsgEstimate:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Est.Time))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Est.Yaw))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Est.MatchDist))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Est.Position))
		dst = append(dst, m.Est.Source, m.Est.Health)
	}
	return dst, nil
}

// appendItem encodes one sensor item. Sessions repeat inside a batch
// (a u16 prefix each) — batches are grouped per node, not per
// session, and the repeated short ID compresses the router's logic,
// not the wire's bytes; at 8-byte session IDs the overhead is ~10% of
// a phase item and ~2% of a frame.
func appendItem(dst []byte, it *serve.Item) ([]byte, error) {
	if len(it.Session) > maxIDLen {
		return dst, fmt.Errorf("%w: item session too long", ErrBadMessage)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(it.Session)))
	dst = append(dst, it.Session...)
	dst = append(dst, byte(it.Kind))
	switch it.Kind {
	case serve.KindPhase:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.Time))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.Phi))
	case serve.KindCamera:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.Camera.Time))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.Camera.Yaw))
		v := byte(0)
		if it.Camera.Valid {
			v = 1
		}
		dst = append(dst, v)
	case serve.KindFrame:
		dg, err := wifi.EncodeCSI(nil, it.Frame)
		if err != nil {
			return dst, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(dg)))
		dst = append(dst, dg...)
	case serve.KindIMU:
		r := it.IMU
		dg := wifi.EncodeIMU(nil, &r)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(dg)))
		dst = append(dst, dg...)
	default:
		return dst, fmt.Errorf("%w: unknown item kind %d", ErrBadMessage, uint8(it.Kind))
	}
	return dst, nil
}

// DecodeMessage decodes one framed cluster message. Embedded CSI
// frames are heap-allocated; transports that own their read buffers
// use decodeMessage with pooled=true instead.
func DecodeMessage(frame []byte) (*Message, error) {
	return decodeMessage(frame, false)
}

func decodeMessage(frame []byte, pooled bool) (*Message, error) {
	br := bytes.NewReader(frame)
	payload, _, err := envelope.Read(br, wireSpec)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrBadMessage, br.Len())
	}
	d := wireDecoder{b: payload}
	m := &Message{}
	m.Kind = MsgKind(d.u8())
	if !m.Kind.valid() {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, uint8(m.Kind))
	}
	m.T = d.f64()
	m.From = d.str8()
	m.To = d.str8()
	m.Session = d.str16()
	m.Key = d.str16()
	if d.err != nil {
		return nil, d.err
	}
	if math.IsNaN(m.T) || math.IsInf(m.T, 0) {
		return nil, fmt.Errorf("%w: non-finite stream time", ErrBadMessage)
	}
	switch m.Kind {
	case MsgItems:
		n := int(d.u16())
		if d.err != nil {
			return nil, d.err
		}
		if n > maxItemsPerMsg {
			return nil, fmt.Errorf("%w: %d items in one batch", ErrBadMessage, n)
		}
		m.Items = make([]serve.Item, 0, n)
		for i := 0; i < n; i++ {
			it, err := d.item(pooled)
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, it)
		}
	case MsgProfile:
		m.Profile = append([]byte(nil), d.rest()...)
	case MsgRestore:
		rec, err := decodeEmbeddedRecord(d.rest())
		if err != nil {
			return nil, err
		}
		if rec.Kind != journal.KindExport {
			return nil, fmt.Errorf("%w: restore carries kind %v", ErrBadMessage, rec.Kind)
		}
		m.Export = rec
	case MsgEstimate:
		m.Est.Time = d.f64()
		m.Est.Yaw = d.f64()
		m.Est.MatchDist = d.f64()
		m.Est.Position = int32(d.u32())
		m.Est.Source = d.u8()
		m.Est.Health = d.u8()
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrBadMessage, len(d.b))
	}
	return m, nil
}

// decodeEmbeddedRecord reads exactly one framed journal record.
func decodeEmbeddedRecord(b []byte) (journal.Record, error) {
	br := bytes.NewReader(b)
	jr := journal.NewReader(br)
	rec, err := jr.Next()
	if err != nil {
		return journal.Record{}, fmt.Errorf("%w: embedded record: %v", ErrBadMessage, err)
	}
	if br.Len() != 0 {
		return journal.Record{}, fmt.Errorf("%w: %d bytes after embedded record", ErrBadMessage, br.Len())
	}
	return rec, nil
}

// wireDecoder is a cursor over a message payload; the first failed
// read poisons it and every later read returns zeros.
type wireDecoder struct {
	b   []byte
	err error
}

func (d *wireDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrBadMessage, what)
	}
}

func (d *wireDecoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *wireDecoder) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail("uint16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *wireDecoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *wireDecoder) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *wireDecoder) take(n int, what string) []byte {
	if d.err != nil || n < 0 || len(d.b) < n {
		d.fail(what)
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *wireDecoder) str8() string  { return string(d.take(int(d.u8()), "name")) }
func (d *wireDecoder) str16() string { return string(d.take(int(d.u16()), "id")) }

func (d *wireDecoder) rest() []byte {
	v := d.b
	d.b = nil
	return v
}

// item decodes one sensor item, dispatching embedded datagrams
// through the wifi wire layer (pooled frames when the transport owns
// its buffers). The datagram type must match the declared item kind.
func (d *wireDecoder) item(pooled bool) (serve.Item, error) {
	var it serve.Item
	it.Session = d.str16()
	kind := serve.ItemKind(d.u8())
	if d.err != nil {
		return it, d.err
	}
	it.Kind = kind
	switch kind {
	case serve.KindPhase:
		it.Time = d.f64()
		it.Phi = d.f64()
	case serve.KindCamera:
		it.Camera.Time = d.f64()
		it.Camera.Yaw = d.f64()
		switch d.u8() {
		case 0:
		case 1:
			it.Camera.Valid = true
		default:
			return it, fmt.Errorf("%w: camera valid flag not 0/1", ErrBadMessage)
		}
	case serve.KindFrame, serve.KindIMU:
		dg := d.take(int(d.u32()), "datagram")
		if d.err != nil {
			return it, d.err
		}
		var pkt *wifi.Packet
		var err error
		if pooled {
			pkt, err = wifi.DecodePooled(dg)
		} else {
			pkt, err = wifi.Decode(dg)
		}
		if err != nil {
			return it, fmt.Errorf("%w: embedded datagram: %v", ErrBadMessage, err)
		}
		switch {
		case kind == serve.KindFrame && pkt.Type == wifi.TypeCSI:
			it.Frame = pkt.CSI
		case kind == serve.KindIMU && pkt.Type == wifi.TypeIMU:
			it.IMU = *pkt.IMU
		default:
			return it, fmt.Errorf("%w: datagram type %d under item kind %d", ErrBadMessage, pkt.Type, uint8(kind))
		}
	default:
		return it, fmt.Errorf("%w: unknown item kind %d", ErrBadMessage, uint8(kind))
	}
	return it, d.err
}
