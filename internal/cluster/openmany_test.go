package cluster_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"vihot/internal/cluster"
	"vihot/internal/core"
	"vihot/internal/profilestore"
	"vihot/internal/serve"
)

// TestClusterOpenMany is the fleet-admission acceptance test: opening
// N sessions over M distinct profile keys resolves through exactly M
// loader calls, every session lands on its ring owner, and the stream
// then serves normally.
func TestClusterOpenMany(t *testing.T) {
	f := getFixture(t)
	const distinct = 2
	var calls atomic.Int64
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(key string) (*core.Profile, error) {
			calls.Add(1)
			return f.profile, nil
		}),
	})
	c, err := cluster.New(cluster.Config{
		Nodes:         []string{"n0", "n1", "n2"},
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	opens := make([]serve.KeyedOpen, len(f.sessions))
	for i, id := range f.sessions {
		opens[i] = serve.KeyedOpen{ID: id, Key: fmt.Sprintf("cab-%d", i%distinct)}
	}
	for i, err := range c.OpenMany(opens, store) {
		if err != nil {
			t.Fatalf("open %d (%s): %v", i, opens[i].ID, err)
		}
	}
	if n := calls.Load(); n != distinct {
		t.Errorf("loader calls = %d, want exactly %d for %d sessions", n, distinct, len(opens))
	}
	if got := c.Sessions(); got != len(f.sessions) {
		t.Fatalf("Sessions() = %d, want %d", got, len(f.sessions))
	}

	pushTimeline(c, f.timeline)
	c.Flush()
	st := c.Stats()
	if st.Delivered != st.Routed || st.Routed != uint64(len(f.timeline)) {
		t.Fatalf("unclean books after batch open: %+v", st)
	}
	for _, id := range f.sessions {
		if h, ok := c.Health(id); !ok || h != serve.Healthy {
			t.Fatalf("%s: health %v, want healthy", id, h)
		}
	}
}

// TestClusterOpenManyPerOpenErrors: bad slots fail alone — the rest
// of the fleet admits and serves.
func TestClusterOpenManyPerOpenErrors(t *testing.T) {
	f := getFixture(t)
	boom := errors.New("profile vault sealed")
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(key string) (*core.Profile, error) {
			if key == "bad" {
				return nil, boom
			}
			return f.profile, nil
		}),
	})
	c, err := cluster.New(cluster.Config{
		Nodes:         []string{"n0", "n1"},
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	opens := []serve.KeyedOpen{
		{ID: f.sessions[0], Key: "good"},
		{ID: "", Key: "good"},
		{ID: f.sessions[1], Key: ""},
		{ID: f.sessions[2], Key: "bad"},
		{ID: f.sessions[3], Key: "good"},
	}
	errs := c.OpenMany(opens, store)
	if errs[0] != nil {
		t.Errorf("slot 0: %v", errs[0])
	}
	if errs[1] == nil || errs[2] == nil {
		t.Errorf("empty session/key accepted: %v / %v", errs[1], errs[2])
	}
	if !errors.Is(errs[3], boom) {
		t.Errorf("slot 3 err = %v, want the loader's error", errs[3])
	}
	if errs[4] != nil {
		t.Errorf("slot 4: %v", errs[4])
	}
	if got := c.Sessions(); got != 2 {
		t.Errorf("Sessions() = %d, want 2", got)
	}

	// Empty batch is a no-op; a closed cluster refuses every slot.
	if errs := c.OpenMany(nil, store); len(errs) != 0 {
		t.Errorf("nil batch returned %d errors", len(errs))
	}
	c.Close()
	for i, err := range c.OpenMany(opens[:1], store) {
		if !errors.Is(err, cluster.ErrClusterClosed) {
			t.Errorf("closed slot %d err = %v, want ErrClusterClosed", i, err)
		}
	}
}
