package cluster_test

import (
	"bytes"
	"errors"
	"testing"

	"vihot/internal/cluster"
	"vihot/internal/journal"
	"vihot/internal/serve"
)

const fixKey = "default-cab"

// newTestCluster builds a deterministic loopback cluster over the
// fixture profile with every fixture session open.
func newTestCluster(t *testing.T, f *fixture, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	cfg.Deterministic = true
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range f.sessions {
		if err := c.Open(id, fixKey, f.profile); err != nil {
			c.Close()
			t.Fatal(err)
		}
	}
	return c
}

// TestClusterRouting is the happy path: every fixture session routed
// to its ring owner over the wire, estimates flowing back, books
// balanced, everyone HEALTHY.
func TestClusterRouting(t *testing.T) {
	f := getFixture(t)
	estBySession := map[string]int{}
	c := newTestCluster(t, f, cluster.Config{
		Nodes: []string{"n0", "n1", "n2"},
		OnEstimate: func(id string, u cluster.EstimateUpdate) {
			estBySession[id]++
		},
	})
	defer c.Close()

	if got := c.Sessions(); got != len(f.sessions) {
		t.Fatalf("Sessions() = %d, want %d", got, len(f.sessions))
	}
	pushTimeline(c, f.timeline)
	c.Flush()

	st := c.Stats()
	if st.Routed != uint64(len(f.timeline)) {
		t.Fatalf("Routed = %d, want %d", st.Routed, len(f.timeline))
	}
	if st.Delivered != st.Routed || st.DroppedPartition+st.DroppedDown+st.DroppedUnowned != 0 {
		t.Fatalf("unclean books on a clean run: %+v", st)
	}
	// Delivered items land, item for item, in the member managers.
	var total uint64
	owners := map[string]bool{}
	for _, name := range c.Members() {
		total += c.Node(name).Manager().Counters().Snapshot().Total()
	}
	if total != st.Delivered {
		t.Fatalf("members hold %d items, router delivered %d", total, st.Delivered)
	}
	for _, id := range f.sessions {
		owner, ok := c.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		owners[owner] = true
		if h, ok := c.Health(id); !ok || h != serve.Healthy {
			t.Fatalf("%s (on %s): health %v, want healthy", id, owner, h)
		}
		if estBySession[id] == 0 {
			t.Fatalf("no estimate backflow for %s", id)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all sessions landed on one node: %v", owners)
	}
	if st.Estimates == 0 || st.MessagesSent == 0 {
		t.Fatalf("no wire traffic recorded: %+v", st)
	}
}

// TestClusterAdmissionAndErrors covers the refusal paths.
func TestClusterAdmissionAndErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := cluster.New(cluster.Config{}); !errors.Is(err, cluster.ErrNoMembers) {
		t.Fatalf("no members: %v", err)
	}
	c := newTestCluster(t, f, cluster.Config{Nodes: []string{"n0", "n1"}})
	defer c.Close()

	if err := c.Open("", fixKey, f.profile); err == nil {
		t.Fatal("open with empty session accepted")
	}
	if err := c.Open("x", "", f.profile); err == nil {
		t.Fatal("open with empty key accepted")
	}
	if err := c.CloseSession("ghost"); !errors.Is(err, cluster.ErrUnknownSession) {
		t.Fatalf("close ghost: %v", err)
	}
	if _, err := c.DrainNode("ghost"); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Fatalf("drain ghost: %v", err)
	}

	// Items for a session the router never opened drop as unowned.
	c.Push(serve.Item{Session: "never-opened", Kind: serve.KindPhase, Time: 1, Phi: 0})
	st := c.Stats()
	if st.DroppedUnowned != 1 || st.Delivered != 0 {
		t.Fatalf("unowned push books: %+v", st)
	}

	// Closing a session stops its routing.
	id := f.sessions[0]
	if err := c.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	c.Push(f.streams[id][0])
	if st := c.Stats(); st.DroppedUnowned != 2 {
		t.Fatalf("closed-session push books: %+v", st)
	}
}

// TestClusterDrainHandoff drains a loaded node mid-stream: its
// sessions must move to survivors with their state (COASTING on
// arrival, profile present), the handoff journal must hold exactly
// the transfer records, and the stream must recover end to end.
func TestClusterDrainHandoff(t *testing.T) {
	f := getFixture(t)
	var buf bytes.Buffer
	jw, err := journal.New(journal.Config{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var handoffs []cluster.HandoffEvent
	c := newTestCluster(t, f, cluster.Config{
		Nodes:   []string{"n0", "n1", "n2"},
		Journal: jw,
		OnHandoff: func(ev cluster.HandoffEvent) {
			handoffs = append(handoffs, ev)
		},
	})
	defer c.Close()

	// Drain the node owning the first session, halfway through.
	victim, _ := c.Owner(f.sessions[0])
	moved := map[string]bool{}
	for _, id := range f.sessions {
		if o, _ := c.Owner(id); o == victim {
			moved[id] = true
		}
	}
	half := splitAt(f.timeline, fixDurationS/2)
	pushTimeline(c, f.timeline[:half])

	events, err := c.DrainNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(moved) {
		t.Fatalf("drained %d sessions, node owned %d", len(events), len(moved))
	}
	for _, ev := range events {
		if ev.From != victim || ev.To == victim || !moved[ev.Session] || ev.Failover {
			t.Fatalf("bad drain event %+v", ev)
		}
		if ev.T <= 0 {
			t.Fatalf("drain export carries no clock: %+v", ev)
		}
		// The arrival contract: restored sessions coast until frames
		// resume, on a node that has the replicated profile.
		if h, ok := c.Health(ev.Session); !ok || h != serve.Coasting {
			t.Fatalf("%s after drain: health %v, want coasting", ev.Session, h)
		}
		if o, _ := c.Owner(ev.Session); o != ev.To {
			t.Fatalf("%s owner %s, event says %s", ev.Session, o, ev.To)
		}
		if _, ok := c.Node(ev.To).Manager().Profile(ev.Session); !ok {
			t.Fatalf("%s restored without a profile on %s", ev.Session, ev.To)
		}
	}
	if len(handoffs) != len(events) {
		t.Fatalf("OnHandoff saw %d transfers, DrainNode returned %d", len(handoffs), len(events))
	}

	// The rest of the stream flows to the survivors and recovers.
	pushTimeline(c, f.timeline[half:])
	c.Flush()
	for _, id := range f.sessions {
		if h, ok := c.Health(id); !ok || h != serve.Healthy {
			t.Fatalf("%s post-drain health %v, want healthy", id, h)
		}
	}
	st := c.Stats()
	if st.Routed != st.Delivered || st.DroppedDown+st.DroppedUnowned+st.DroppedPartition != 0 {
		t.Fatalf("drain lost items: %+v", st)
	}
	if st.DrainHandoffs != uint64(len(events)) || st.FailoverHandoffs != 0 {
		t.Fatalf("handoff counters: %+v", st)
	}

	// The coordinator journal holds exactly the drain's export records.
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := journal.Recover(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != len(events) {
		t.Fatalf("journal holds %d sessions, want %d", len(res.Sessions), len(events))
	}
	for _, ev := range events {
		s, ok := res.Sessions[ev.Session]
		if !ok || !s.HandedOff || s.Export.Kind != journal.KindExport {
			t.Fatalf("journal misses handoff of %s: %+v", ev.Session, s)
		}
		if s.Export.Flags&journal.ExportFailover != 0 {
			t.Fatalf("drain journaled as failover: %+v", s.Export)
		}
	}
}

// TestClusterFailover kills a node without telling the router: items
// for its sessions drop until the stream-time heartbeat declares it
// dead, then the sessions fail over from the router's directory and
// recover as their frames resume.
func TestClusterFailover(t *testing.T) {
	f := getFixture(t)
	c := newTestCluster(t, f, cluster.Config{Nodes: []string{"n0", "n1", "n2", "n3"}})
	defer c.Close()

	victim, _ := c.Owner(f.sessions[0])
	moved := map[string]bool{}
	for _, id := range f.sessions {
		if o, _ := c.Owner(id); o == victim {
			moved[id] = true
		}
	}
	const killT = 3.0
	cut := splitAt(f.timeline, killT)
	pushTimeline(c, f.timeline[:cut])
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	pushTimeline(c, f.timeline[cut:])
	c.Flush()

	st := c.Stats()
	if st.LiveNodes != 3 || st.Reassignments != 1 {
		t.Fatalf("failover bookkeeping: %+v", st)
	}
	if st.FailoverHandoffs != uint64(len(moved)) || st.DrainHandoffs != 0 {
		t.Fatalf("failover handoffs = %d, want %d: %+v", st.FailoverHandoffs, len(moved), st)
	}
	// The detection gap is real: items addressed to the dead node
	// dropped (visibly) until the detector fired, and nothing else.
	if st.DroppedDown == 0 {
		t.Fatal("no items dropped during the detection window")
	}
	if st.Routed != st.Delivered+st.DroppedDown {
		t.Fatalf("conservation broke: %+v", st)
	}
	for _, id := range f.sessions {
		owner, ok := c.Owner(id)
		if !ok || owner == victim {
			t.Fatalf("%s still owned by the dead node", id)
		}
		if h, ok := c.Health(id); !ok || h != serve.Healthy {
			t.Fatalf("%s post-failover health %v, want healthy", id, h)
		}
	}
	if st.HeartbeatMisses == 0 {
		t.Fatal("detector never recorded a miss")
	}
}

// TestClusterCloseDrain is fleet shutdown: every member's conservation
// identity closes exactly and later calls refuse.
func TestClusterCloseDrain(t *testing.T) {
	f := getFixture(t)
	c := newTestCluster(t, f, cluster.Config{Nodes: []string{"n0", "n1"}})
	half := splitAt(f.timeline, fixDurationS/2)
	pushTimeline(c, f.timeline[:half])
	c.CloseDrain()
	for _, name := range c.Members() {
		snap := c.Node(name).Manager().Counters().Snapshot()
		if snap.Total() != snap.Processed+snap.DroppedStale+snap.DroppedUnknown+snap.RejectedKind {
			t.Fatalf("%s books unbalanced after drain: %+v", name, snap)
		}
	}
	if err := c.Open("late", fixKey, f.profile); !errors.Is(err, cluster.ErrClusterClosed) {
		t.Fatalf("open after close: %v", err)
	}
}
