package cluster

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"vihot/internal/camera"
	"vihot/internal/csi"
	"vihot/internal/envelope"
	"vihot/internal/imu"
	"vihot/internal/journal"
	"vihot/internal/serve"
)

// wireMessages covers every message kind with every optional field
// populated — the round-trip and fuzz seed corpus.
func wireMessages() []*Message {
	// Values picked float32-exact: CSI travels as float32 on the wifi
	// wire, and the round-trip test compares for equality.
	frame := &csi.Frame{Time: 1.25, H: [][]complex128{
		{complex(0.5, -0.125), complex(-0.25, 0.875)},
		{complex(1.0, 0.0), complex(0.0625, 0.09375)},
	}}
	export := journal.Record{
		Kind: journal.KindExport, Session: "driver-a", T: 12.5,
		Yaw: -17.25, Position: 2, Source: 1, MatchDist: 0.31, Health: 2,
		EstT: 12.25, From: 0, To: 3,
		Flags: journal.ExportHasClock | journal.ExportHasEstimate,
	}
	return []*Message{
		{Kind: MsgOpen, To: "n0", Session: "driver-a", Key: "cabin-1"},
		{Kind: MsgItems, To: "n1", T: 2.5, Items: []serve.Item{
			{Session: "driver-a", Kind: serve.KindPhase, Time: 2.0, Phi: -0.75},
			{Session: "driver-b", Kind: serve.KindCamera,
				Camera: camera.Estimate{Time: 2.25, Yaw: 10.5, Valid: true}},
			{Session: "driver-a", Kind: serve.KindFrame, Frame: frame},
			{Session: "driver-b", Kind: serve.KindIMU,
				IMU: imu.Reading{Time: 2.5, GyroZ: -3.25, AccelLat: 0.5}},
		}},
		{Kind: MsgPing, To: "n2", T: 7.5},
		{Kind: MsgPong, From: "n2", T: 7.5},
		{Kind: MsgRestore, To: "n3", Session: "driver-a", Key: "cabin-1", Export: export},
		{Kind: MsgProfile, To: "n0", Key: "cabin-1", Profile: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Kind: MsgEstimate, From: "n1", Session: "driver-b", T: 4.5,
			Est: EstimateUpdate{Time: 4.5, Yaw: 33.0, MatchDist: 0.12, Position: -1, Source: 2, Health: 1}},
		{Kind: MsgClose, To: "n0", Session: "driver-a"},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range wireMessages() {
		frame, err := EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Kind, err)
		}
		got, err := DecodeMessage(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		// Items round-trip by value except the CSI frame pointer.
		if m.Kind == MsgItems {
			if len(got.Items) != len(m.Items) {
				t.Fatalf("items: got %d, want %d", len(got.Items), len(m.Items))
			}
			for i := range m.Items {
				w, g := m.Items[i], got.Items[i]
				if w.Kind == serve.KindFrame {
					if g.Frame == nil || !reflect.DeepEqual(g.Frame.H, w.Frame.H) || g.Frame.Time != w.Frame.Time {
						t.Fatalf("item %d: frame mismatch", i)
					}
					continue
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("item %d: got %+v, want %+v", i, g, w)
				}
			}
			continue
		}
		want := *m
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("%v: got %+v, want %+v", m.Kind, *got, want)
		}
	}
}

// TestMessageCanonical holds the codec to its canonicality contract:
// decode(bytes) followed by re-encode reproduces the same bytes.
func TestMessageCanonical(t *testing.T) {
	for _, m := range wireMessages() {
		frame, err := EncodeMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMessage(frame)
		if err != nil {
			t.Fatal(err)
		}
		again, err := EncodeMessage(nil, got)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", m.Kind, err)
		}
		if string(again) != string(frame) {
			t.Fatalf("%v: re-encode differs from original frame", m.Kind)
		}
	}
}

func TestEncodeMessageRejects(t *testing.T) {
	long := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = 'x'
		}
		return string(b)
	}
	cases := []struct {
		name string
		m    *Message
	}{
		{"zero kind", &Message{}},
		{"unknown kind", &Message{Kind: 99}},
		{"long node name", &Message{Kind: MsgPing, To: long(maxNodeName + 1)}},
		{"long session", &Message{Kind: MsgOpen, Session: long(maxIDLen + 1), Key: "k"}},
		{"NaN time", &Message{Kind: MsgPing, T: math.NaN()}},
		{"Inf time", &Message{Kind: MsgPing, T: math.Inf(1)}},
		{"oversized batch", &Message{Kind: MsgItems, Items: make([]serve.Item, maxItemsPerMsg+1)}},
		{"bad item kind", &Message{Kind: MsgItems, Items: []serve.Item{{Session: "s", Kind: 42}}}},
		{"restore non-export", &Message{Kind: MsgRestore,
			Export: journal.Record{Kind: journal.KindEstimate, Session: "s", T: 1}}},
	}
	for _, tc := range cases {
		if _, err := EncodeMessage(nil, tc.m); err == nil {
			t.Errorf("%s: encode accepted", tc.name)
		}
	}
}

// The restore-non-export rejection above comes from the message layer
// contract: MsgRestore must carry exactly one KindExport record.
func TestDecodeRestoreRejectsNonExport(t *testing.T) {
	rec := journal.Record{Kind: journal.KindHealth, Session: "s", T: 1, Health: 1}
	framed, err := journal.AppendRecord(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{byte(MsgRestore)}
	payload = append(payload, make([]byte, 8)...) // T = 0
	payload = append(payload, 0)                  // from ""
	payload = append(payload, 2, 'n', '0')        // to "n0"
	payload = append(payload, 0, 1, 's')          // session "s"
	payload = append(payload, 0, 1, 'k')          // key "k"
	payload = append(payload, framed...)
	frame := appendEnvelope(nil, payload)
	if _, err := DecodeMessage(frame); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("decode of non-export restore: %v", err)
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	good, err := EncodeMessage(nil, wireMessages()[1]) // the items batch
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"truncated frame", good[:len(good)-3]},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
		{"empty payload", rawEnvelope(nil)},
		{"unknown kind", appendEnvelope(nil, []byte{0})},
		{"truncated header", appendEnvelope(nil, []byte{byte(MsgPing), 1, 2})},
		{"trailing payload", appendEnvelope(nil, append(encodePayload(t, &Message{Kind: MsgPing, T: 1}), 0xff))},
		{"items count beyond payload", appendEnvelope(nil, func() []byte {
			p := encodePayload(t, &Message{Kind: MsgItems})
			p[len(p)-1] = 5 // claim 5 items, carry none
			return p
		}())},
	}
	for _, tc := range cases {
		if _, err := DecodeMessage(tc.frame); err == nil {
			t.Errorf("%s: decode accepted", tc.name)
		}
	}
	// Corrupt one payload byte: the envelope CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-5] ^= 0x40
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("payload corruption decoded cleanly past the CRC")
	}
}

func encodePayload(t *testing.T, m *Message) []byte {
	t.Helper()
	p, err := appendMsgPayload(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func appendEnvelope(dst, payload []byte) []byte {
	return envelope.Append(dst, wireSpec, payload)
}

// rawEnvelope hand-builds a frame header so tests can produce shapes
// envelope.Append itself refuses (like an empty payload).
func rawEnvelope(payload []byte) []byte {
	hdr := make([]byte, envelope.HeaderLen)
	copy(hdr[0:4], WireMagic)
	binary.BigEndian.PutUint16(hdr[4:6], WireVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	return append(hdr, payload...)
}
