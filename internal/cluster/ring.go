// Package cluster is the distributed serving tier: a static-membership
// coordinator that consistent-hashes session keys onto N member nodes,
// each node a serve.Manager fed over the cluster's length-prefixed
// wire envelope. The coordinator routes opens and items to the owning
// node, replicates driver profiles to every member on open, detects
// node death with a stream-time heartbeat, and moves sessions between
// nodes — journal-backed exports on an orderly drain, router-cache
// reconstructions on a failover — with the destination session
// entering COASTING until its frames resume (DESIGN.md §14).
//
// Everything is clocked on stream time, never wall time: routing, the
// failure detector, and the handoff protocol behave identically in
// concurrent and deterministic executions, which is what lets one
// chaos scenario replay bit-for-bit by seed.
package cluster

import (
	"fmt"
	"sort"
)

// ringVNodesDefault is the virtual-node count per member. 64 points
// per node keeps the max/min session-load ratio under ~1.3 at the
// fleet sizes static membership targets (single-digit nodes) while the
// whole ring still fits in a few cache lines per member.
const ringVNodesDefault = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the member that owns it.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Lookups are a binary
// search; membership changes build a new ring (Without), so readers
// never see a ring mid-edit.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted members
}

// NewRing builds a ring over the given members with vnodes virtual
// nodes each (<=0 selects the default). Member names must be unique
// and non-empty.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = ringVNodesDefault
	}
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	nodes := append([]string(nil), members...)
	sort.Strings(nodes)
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && nodes[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate member %q", n)
		}
	}
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on the name so point order (and therefore ownership)
		// is total even across a 64-bit hash collision.
		return a.node < b.node
	})
	return r, nil
}

// hash64 is FNV-1a over the key — the same family the serve shard
// router and the profile-store shards use, widened to 64 bits — put
// through a finalizer mix. The mix matters: raw FNV-1a gives a byte
// near the end of the key only one multiply of avalanche, so the
// sequential session IDs real deployments mint ("driver-00",
// "driver-01", …) land nearly adjacent on the circle and pile onto
// one member. The finalizer spreads those last-byte deltas across all
// 64 bits.
func hash64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the 64-bit avalanche finalizer (Murmur3/SplitMix family).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeHash positions one virtual node: the member name FNV-1a'd with
// the vnode ordinal folded in byte by byte (no allocation), then
// finalized. Without the mix, one member's vnodes differ only in a
// trailing ordinal byte and sort into contiguous runs — giant
// single-member arcs instead of an interleaved ring.
func vnodeHash(node string, v int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= 1099511628211
	}
	return mix64(h)
}

// Owner returns the member owning key: the first ring point clockwise
// from the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Without returns a new ring with the member removed. Keys owned by
// surviving members keep their owners — the consistent-hashing
// property a reassignment relies on — and only the removed member's
// arcs move.
func (r *Ring) Without(name string) (*Ring, error) {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != name {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: no member %q", name)
	}
	if len(nodes) == 0 {
		// The last member left: a valid, empty ring that owns nothing.
		return &Ring{}, nil
	}
	vnodes := 0
	if len(r.nodes) > 0 {
		vnodes = len(r.points) / len(r.nodes)
	}
	return NewRing(nodes, vnodes)
}

// Members returns the ring's members, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.nodes...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Points returns the virtual-node count (for the ring-size gauge).
func (r *Ring) Points() int { return len(r.points) }
