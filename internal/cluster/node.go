package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vihot/internal/core"
	"vihot/internal/journal"
	"vihot/internal/profilestore"
	"vihot/internal/serve"
)

// Node is one cluster member: a serve.Manager behind the cluster wire,
// plus a push-replicated profile store. In this PR every node lives in
// the coordinator's process (static membership, in-process fleet); the
// wire layer between router and node is real either way — frames are
// encoded, CRC-framed, and decoded even over the loopback transport —
// so moving a node out of process is a transport swap, not a protocol
// change.
type Node struct {
	name string
	c    *Cluster
	mgr  *serve.Manager
	// store is Put-fed by MsgProfile replication; it has no loader, so
	// a Get miss means replication never reached this node.
	store *profilestore.Store
	// alive is cleared by KillNode (the simulated crash) and by the
	// failure detector's fencing; a dead node refuses every frame.
	alive atomic.Bool
	// pooled mirrors the manager's RecycleFrames: decode embedded CSI
	// datagrams into pool-owned frames only when the manager will
	// return them to the pool.
	pooled bool
	// userSink is the OnEstimateHealth the serve template (or the
	// NodeServe hook) asked for; the cluster's backflow wrapper chains
	// in front of it.
	userSink func(session string, est core.Estimate, h serve.Health, confidence float64)

	// backMu guards the per-session stream times of the last estimate
	// backflow sent, for the EstimateEveryS throttle. Updates are
	// serial per session (serve's sink contract), concurrent across
	// sessions.
	backMu   sync.Mutex
	lastBack map[string]float64
}

// Name returns the member name.
func (n *Node) Name() string { return n.name }

// Manager exposes the node's serving engine (tests and the demo read
// its counters; routing must go through the cluster).
func (n *Node) Manager() *serve.Manager { return n.mgr }

// ErrNodeDown reports a frame offered to a dead node.
var ErrNodeDown = errors.New("cluster: node down")

// Handle is the node's transport handler: decode one frame, dispatch.
func (n *Node) Handle(frame []byte) error {
	if !n.alive.Load() {
		return fmt.Errorf("%w: %s", ErrNodeDown, n.name)
	}
	m, err := decodeMessage(frame, n.pooled)
	if err != nil {
		return err
	}
	return n.handle(m)
}

func (n *Node) handle(m *Message) error {
	switch m.Kind {
	case MsgItems:
		n.mgr.PushBatch(m.Items)
		return nil
	case MsgOpen:
		return n.mgr.OpenByKey(m.Session, m.Key, n.c.cfg.Pipeline)
	case MsgProfile:
		p, err := core.ReadProfile(bytes.NewReader(m.Profile))
		if err != nil {
			return fmt.Errorf("cluster: node %s: replicated profile %q: %w", n.name, m.Key, err)
		}
		return n.store.Put(m.Key, p)
	case MsgRestore:
		p, err := n.store.Get(m.Key)
		if err != nil {
			return fmt.Errorf("cluster: node %s: restore %q: %w", n.name, m.Session, err)
		}
		return n.mgr.RestoreSession(m.Session, p, n.c.cfg.Pipeline, m.Export)
	case MsgClose:
		return n.mgr.CloseSession(m.Session)
	case MsgPing:
		return n.send(&Message{Kind: MsgPong, From: n.name, T: m.T})
	default:
		return fmt.Errorf("%w: node %s got kind %v", ErrBadMessage, n.name, m.Kind)
	}
}

// send encodes and sends one node→router message through the
// transport (and the fault filter). Runs on serve worker goroutines,
// so it allocates its own encode buffer.
func (n *Node) send(m *Message) error {
	if drop := n.c.cfg.Drop; drop != nil && drop(m) {
		// Node→router frames carry no items; a partitioned pong or
		// estimate just stales the router's tables until the heal.
		return nil
	}
	frame, err := EncodeMessage(nil, m)
	if err != nil {
		return err
	}
	n.c.metrics.messagesSent.Add(1)
	return n.c.transport.Send("", frame)
}

// onEstimate is the node's OnEstimateHealth hook: throttled estimate
// backflow to the router's failover directory, chained in front of
// any user sink configured on the serve template.
func (n *Node) onEstimate(session string, est core.Estimate, h serve.Health, conf float64) {
	every := n.c.cfg.EstimateEveryS
	n.backMu.Lock()
	last, seen := n.lastBack[session]
	if due := !seen || est.Time-last >= every; due {
		n.lastBack[session] = est.Time
		n.backMu.Unlock()
		// Best-effort: a dropped backflow only stales the failover
		// directory by one throttle interval.
		_ = n.send(&Message{
			Kind:    MsgEstimate,
			From:    n.name,
			Session: session,
			T:       est.Time,
			Est: EstimateUpdate{
				Time:      est.Time,
				Yaw:       est.Yaw,
				MatchDist: est.MatchDist,
				Position:  int32(est.Position),
				Source:    uint8(est.Source),
				Health:    uint8(h),
			},
		})
	} else {
		n.backMu.Unlock()
	}
	if n.userSink != nil {
		n.userSink(session, est, h, conf)
	}
}

// forgetBackflow drops a session's throttle anchor after it leaves
// the node.
func (n *Node) forgetBackflow(session string) {
	n.backMu.Lock()
	delete(n.lastBack, session)
	n.backMu.Unlock()
}

// exportAll quiesces the node and snapshots every session, in sorted
// order (serve.ExportSessions' contract).
func (n *Node) exportAll() []journal.Record {
	n.mgr.Flush()
	return n.mgr.ExportSessions()
}
