package cluster_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/imu"
	"vihot/internal/serve"
)

// fixture is the shared cluster workload: one profile and five
// sessions' item streams, plus the merged cluster-ingest timeline
// (all sessions interleaved in stream-time order — what the router
// actually sees).
type fixture struct {
	profile  *core.Profile
	sessions []string
	streams  map[string][]serve.Item
	timeline []serve.Item
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

const fixDurationS = 10.0

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func buildFixture() (*fixture, error) {
	env, err := experiment.NewEnv(cabin.DefaultConfig(), 23)
	if err != nil {
		return nil, err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 4
	popt.PerPositionS = 3
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return nil, err
	}

	f := &fixture{profile: profile, streams: map[string][]serve.Item{}}
	styles := []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("driver-%02d", i)
		items, err := renderStream(env, styles[i%len(styles)], id)
		if err != nil {
			return nil, err
		}
		f.sessions = append(f.sessions, id)
		f.streams[id] = items
		f.timeline = append(f.timeline, items...)
	}
	// Merge into the router's ingest order: stream time, then session
	// for a total (deterministic) order at equal timestamps.
	sort.SliceStable(f.timeline, func(i, j int) bool {
		a, b := &f.timeline[i], &f.timeline[j]
		if ta, tb := itemT(a), itemT(b); ta != tb {
			return ta < tb
		}
		return a.Session < b.Session
	})
	return f, nil
}

// renderStream synthesizes one driver's interleaved CSI-phase + IMU
// stream (no camera: the unit tests exercise routing, not fusion).
func renderStream(env *experiment.Env, dp driver.Profile, id string) ([]serve.Item, error) {
	sc := driver.DrivingScenario(env.RNG.Fork(), dp, fixDurationS, driver.GlanceOptions{
		Steering:       true,
		PositionJitter: 0.008,
	})
	phone := imu.NewPhoneIMU(env.RNG.Fork())
	var items []serve.Item
	nextIMU := 0.0
	for _, t := range env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration) {
		for nextIMU <= t {
			items = append(items, serve.Item{
				Session: id, Kind: serve.KindIMU,
				IMU: phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS),
			})
			nextIMU += 0.01
		}
		phi, err := env.PhaseAt(sc.State(t))
		if err != nil {
			return nil, err
		}
		items = append(items, serve.Item{Session: id, Kind: serve.KindPhase, Time: t, Phi: phi})
	}
	return items, nil
}

// itemT mirrors the router's notion of an item's stream time.
func itemT(it *serve.Item) float64 {
	switch it.Kind {
	case serve.KindPhase:
		return it.Time
	case serve.KindIMU:
		return it.IMU.Time
	case serve.KindCamera:
		return it.Camera.Time
	case serve.KindFrame:
		if it.Frame != nil {
			return it.Frame.Time
		}
	}
	return 0
}

// pushTimeline feeds items[lo:hi) of the fixture timeline in small
// batches, the way a receiver-side pump would.
func pushTimeline(c interface{ PushBatch([]serve.Item) }, items []serve.Item) {
	const batch = 32
	for len(items) > 0 {
		n := batch
		if n > len(items) {
			n = len(items)
		}
		c.PushBatch(items[:n])
		items = items[n:]
	}
}

// splitAt returns the index of the first timeline item at or past
// stream time t.
func splitAt(items []serve.Item, t float64) int {
	for i := range items {
		if itemT(&items[i]) >= t {
			return i
		}
	}
	return len(items)
}
