package cluster_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"vihot/internal/cluster"
	"vihot/internal/core"
	"vihot/internal/faults"
	"vihot/internal/journal"
	"vihot/internal/scenario"
	"vihot/internal/serve"
)

// The chaos soak: a scenario-mix workload (PR 6 corpus) over a
// four-node cluster that loses one member to a partition window and
// another to a crash mid-stream. The partitioned member must ride it
// out (the cut is shorter than the death threshold); the crashed one
// must be detected on stream time and its sessions failed over; every
// session must converge back to HEALTHY with the cluster-wide item
// ledger balanced — and the whole run must replay bit-identically
// from its seeds.

const (
	chaosDurationS  = 20.0
	chaosPartStart  = 6.0
	chaosPartEnd    = 7.3 // < heartbeat death threshold (2.0s) past the last pong
	chaosKillT      = 11.0
	chaosSessPerCfg = 3
)

// chaosWorkload is the rendered scenario mix: per-scenario profiles
// and the merged cluster timeline.
type chaosWorkload struct {
	profiles map[string]*core.Profile // key → profile
	keys     map[string]string        // session → profile key
	sessions []string
	timeline []serve.Item
}

var (
	chaosOnce sync.Once
	chaosW    *chaosWorkload
	chaosErr  error
)

func getChaosWorkload(t *testing.T) *chaosWorkload {
	t.Helper()
	chaosOnce.Do(func() { chaosW, chaosErr = buildChaosWorkload() })
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosW
}

func buildChaosWorkload() (*chaosWorkload, error) {
	w := &chaosWorkload{
		profiles: map[string]*core.Profile{},
		keys:     map[string]string{},
	}
	for _, name := range []string{scenario.Baseline, scenario.CarFiRider} {
		cfg, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg.DurationS = chaosDurationS
		p, err := cfg.CollectProfile()
		if err != nil {
			return nil, err
		}
		w.profiles[name] = p
		for s := 0; s < chaosSessPerCfg; s++ {
			id := fmt.Sprintf("%s-%d", name, s)
			st, err := cfg.BuildStream(id, s)
			if err != nil {
				return nil, err
			}
			w.sessions = append(w.sessions, id)
			w.keys[id] = name
			w.timeline = append(w.timeline, st.Items...)
		}
	}
	sort.SliceStable(w.timeline, func(i, j int) bool {
		a, b := &w.timeline[i], &w.timeline[j]
		if ta, tb := itemT(a), itemT(b); ta != tb {
			return ta < tb
		}
		return a.Session < b.Session
	})
	return w, nil
}

// chaosResult is everything a chaos run produces that the replay test
// compares: ring assignment, handoff ordering, estimate backflow,
// final state, counters, and the handoff journal bytes.
type chaosResult struct {
	openOwners  map[string]string
	partitioned string
	killed      string
	events      []cluster.HandoffEvent
	estimates   map[string]int
	finalOwners map[string]string
	health      map[string]serve.Health
	stats       cluster.Stats
	journal     []byte
	chaos       faults.ClusterChaosStats
	memberTotal uint64
}

// runChaos executes one full chaos scenario on a fresh cluster.
// Deterministic mode runs the whole fleet on this goroutine (the
// replay test's mode); concurrent mode runs real shard workers under
// the race detector.
func runChaos(t *testing.T, w *chaosWorkload, deterministic bool) chaosResult {
	t.Helper()
	r := chaosResult{
		openOwners:  map[string]string{},
		estimates:   map[string]int{},
		finalOwners: map[string]string{},
		health:      map[string]serve.Health{},
	}
	var buf bytes.Buffer
	jw, err := journal.New(journal.Config{W: &buf})
	if err != nil {
		t.Fatal(err)
	}

	nodes := []string{"car-east", "car-north", "car-south", "car-west"}
	var chaos *faults.ClusterChaos
	var estMu sync.Mutex
	cfg := cluster.Config{
		Nodes:         nodes,
		Deterministic: deterministic,
		Journal:       jw,
		// The injector is built after the opens (its targets are picked
		// from the ring), so the filter passes everything until then.
		Drop: func(m *cluster.Message) bool {
			return chaos != nil && chaos.Drop(m)
		},
		OnEstimate: func(id string, u cluster.EstimateUpdate) {
			estMu.Lock()
			r.estimates[id]++
			estMu.Unlock()
		},
		OnHandoff: func(ev cluster.HandoffEvent) {
			r.events = append(r.events, ev)
		},
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, id := range w.sessions {
		key := w.keys[id]
		if err := c.Open(id, key, w.profiles[key]); err != nil {
			t.Fatal(err)
		}
		owner, _ := c.Owner(id)
		r.openOwners[id] = owner
	}
	// The partition hits the first session's owner; the crash hits the
	// first session owned by someone else. Both picks are pure
	// functions of the ring, so replays agree.
	r.partitioned = r.openOwners[w.sessions[0]]
	for _, id := range w.sessions {
		if o := r.openOwners[id]; o != r.partitioned {
			r.killed = o
			break
		}
	}
	if r.killed == "" {
		t.Fatalf("every session landed on %s; need two loaded nodes", r.partitioned)
	}
	chaos = faults.NewClusterChaos(faults.ClusterConfig{
		Partitions: []faults.PartitionSpec{
			{Node: r.partitioned, Window: faults.Window{Start: chaosPartStart, End: chaosPartEnd}},
		},
		Seed: 7,
	})

	// A real deployment's senders pace at stream rate; a full-speed
	// replay would overrun the shard queues and shed the stream tail.
	// Periodic flushes bound the workers' backlog instead of sleeping.
	push := func(items []serve.Item) {
		const batch = 64
		for i := 0; len(items) > 0; i++ {
			n := batch
			if n > len(items) {
				n = len(items)
			}
			c.PushBatch(items[:n])
			items = items[n:]
			if !deterministic && i%32 == 31 {
				c.Flush()
			}
		}
	}
	cut := splitAt(w.timeline, chaosKillT)
	push(w.timeline[:cut])
	if err := c.KillNode(r.killed); err != nil {
		t.Fatal(err)
	}
	push(w.timeline[cut:])
	c.Flush()

	for _, id := range w.sessions {
		owner, _ := c.Owner(id)
		r.finalOwners[id] = owner
		h, ok := c.Health(id)
		if !ok {
			t.Fatalf("session %s lost by the cluster", id)
		}
		r.health[id] = h
	}
	r.stats = c.Stats()
	r.chaos = chaos.Stats()
	for _, name := range nodes {
		r.memberTotal += c.Node(name).Manager().Counters().Snapshot().Total()
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	r.journal = append([]byte(nil), buf.Bytes()...)
	return r
}

// checkChaosInvariants asserts the soak contract on one run.
func checkChaosInvariants(t *testing.T, w *chaosWorkload, r chaosResult) {
	t.Helper()
	// The partitioned node survived; the killed node did not.
	if r.stats.LiveNodes != 3 || r.stats.Reassignments != 1 {
		t.Fatalf("membership after chaos: %+v", r.stats)
	}
	if r.stats.FailoverHandoffs == 0 || r.stats.DrainHandoffs != 0 {
		t.Fatalf("handoff counters: %+v", r.stats)
	}
	// Every failover event moved a session off the killed node, in
	// sorted session order (the reassignment ordering contract).
	var lastSess string
	for _, ev := range r.events {
		if !ev.Failover || ev.From != r.killed || ev.To == r.killed || ev.To == "" {
			t.Fatalf("bad failover event %+v", ev)
		}
		if ev.Session <= lastSess {
			t.Fatalf("failover order not sorted: %q after %q", ev.Session, lastSess)
		}
		lastSess = ev.Session
	}
	// Everyone converged back to HEALTHY, on a live owner.
	for _, id := range w.sessions {
		if r.finalOwners[id] == r.killed || r.finalOwners[id] == "" {
			t.Fatalf("%s still assigned to the dead node", id)
		}
		if r.health[id] != serve.Healthy {
			t.Fatalf("%s ended %v, want healthy", id, r.health[id])
		}
		if r.estimates[id] == 0 {
			t.Fatalf("no estimate backflow for %s", id)
		}
	}
	// Cluster-wide conservation: every routed item is delivered or
	// dropped for an attributed reason, and delivered items are
	// exactly what the member managers account for.
	st := r.stats
	if st.Routed != uint64(len(w.timeline)) {
		t.Fatalf("Routed = %d, want %d", st.Routed, len(w.timeline))
	}
	if st.Routed != st.Delivered+st.DroppedPartition+st.DroppedDown+st.DroppedUnowned {
		t.Fatalf("conservation broke: %+v", st)
	}
	if st.DroppedPartition == 0 || st.DroppedDown == 0 {
		t.Fatalf("chaos drew no blood: %+v", st)
	}
	if r.memberTotal != st.Delivered {
		t.Fatalf("members hold %d items, router delivered %d", r.memberTotal, st.Delivered)
	}
	// The handoff journal holds exactly the failover exports.
	if st.JournalAppended != uint64(len(r.events)) || st.JournalDropped != 0 {
		t.Fatalf("journal counters: %+v", st)
	}
	res, err := journal.Recover(bytes.NewReader(r.journal), int64(len(r.journal)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != len(r.events) {
		t.Fatalf("journal recovers %d sessions, want %d", len(res.Sessions), len(r.events))
	}
	for _, ev := range r.events {
		s, ok := res.Sessions[ev.Session]
		if !ok || !s.HandedOff || s.Export.Flags&journal.ExportFailover == 0 {
			t.Fatalf("journal misses failover of %s: %+v", ev.Session, s)
		}
	}
}

// TestChaosSoak runs the kill+partition scenario in concurrent mode —
// real shard workers, real backflow goroutines — under whatever the
// harness adds (the Makefile race matrix runs this package with
// -race).
func TestChaosSoak(t *testing.T) {
	w := getChaosWorkload(t)
	r := runChaos(t, w, false)
	checkChaosInvariants(t, w, r)
}

// TestChaosDeterministicReplay runs the same scenario twice in
// deterministic mode and demands bit-identical outcomes: ring
// assignment, handoff ordering, estimate backflow, final health,
// every counter, and the handoff journal bytes.
func TestChaosDeterministicReplay(t *testing.T) {
	w := getChaosWorkload(t)
	a := runChaos(t, w, true)
	checkChaosInvariants(t, w, a)
	b := runChaos(t, w, true)

	if !reflect.DeepEqual(a.openOwners, b.openOwners) {
		t.Fatalf("ring assignment not seed-stable:\n%v\n%v", a.openOwners, b.openOwners)
	}
	if a.partitioned != b.partitioned || a.killed != b.killed {
		t.Fatalf("chaos targets differ: %s/%s vs %s/%s", a.partitioned, a.killed, b.partitioned, b.killed)
	}
	if !reflect.DeepEqual(a.events, b.events) {
		t.Fatalf("handoff ordering not seed-stable:\n%v\n%v", a.events, b.events)
	}
	if !reflect.DeepEqual(a.estimates, b.estimates) {
		t.Fatalf("estimate backflow not seed-stable")
	}
	if !reflect.DeepEqual(a.finalOwners, b.finalOwners) || !reflect.DeepEqual(a.health, b.health) {
		t.Fatalf("final state not seed-stable")
	}
	if a.stats != b.stats || a.chaos != b.chaos || a.memberTotal != b.memberTotal {
		t.Fatalf("counters not seed-stable:\n%+v\n%+v", a.stats, b.stats)
	}
	if !bytes.Equal(a.journal, b.journal) {
		t.Fatalf("handoff journal bytes not seed-stable (%d vs %d bytes)", len(a.journal), len(b.journal))
	}
}
