package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vihot/internal/core"
	"vihot/internal/journal"
	"vihot/internal/obs"
	"vihot/internal/profilestore"
	"vihot/internal/serve"
)

// Errors returned by the coordinator.
var (
	ErrClusterClosed  = errors.New("cluster: closed")
	ErrUnknownNode    = errors.New("cluster: unknown node")
	ErrUnknownSession = errors.New("cluster: unknown session")
	ErrNoMembers      = errors.New("cluster: no members")
)

// Config tunes a Cluster. Nodes is required; everything else has
// defaults.
type Config struct {
	// Nodes is the static membership: unique non-empty member names,
	// at most 255 (node identity travels in journal export records as
	// a uint8 index into this list, sorted).
	Nodes []string
	// VNodes is the virtual-node count per member on the hash ring.
	// Default 64.
	VNodes int

	// HeartbeatS is the stream-time interval between heartbeat probes
	// (default 0.5). The failure detector runs on stream time — the
	// router's clock is the max item timestamp it has routed — never
	// wall time, so detection points replay deterministically.
	HeartbeatS float64
	// HeartbeatMisses is how many consecutive heartbeat intervals a
	// node may go silent before it is declared dead and its sessions
	// fail over (default 4: death at HeartbeatMisses*HeartbeatS of
	// stream-time silence).
	HeartbeatMisses int

	// EstimateEveryS throttles the per-session estimate backflow that
	// feeds the router's failover directory (default 0.25 stream
	// seconds). A failover snapshot is therefore at most this stale.
	EstimateEveryS float64

	// Pipeline configures every session pipeline; the zero value
	// selects core defaults at the node.
	Pipeline core.PipelineConfig
	// Serve is the per-node serving template. The cluster overrides
	// Profiles (each node gets a replication-fed store) and chains its
	// estimate backflow in front of any OnEstimateHealth sink; the
	// rest (Shards, QueueLen, Health, SessionTTLS, RecycleFrames,
	// Journal, ...) applies to every node as given.
	Serve serve.Config
	// NodeServe, if set, customizes one node's serve config (per-node
	// journals, metrics registries); it runs before the cluster's own
	// overrides.
	NodeServe func(name string, base serve.Config) serve.Config
	// Deterministic runs every node manager in deterministic mode and
	// requires all cluster calls from one goroutine; with the loopback
	// transport the whole cluster is then one total order of frames.
	Deterministic bool

	// OnEstimate, if set, receives the sampled estimate backflow (see
	// EstimateEveryS — not the full estimate stream; hook the serve
	// template for that). Called from node worker goroutines, serially
	// per session.
	OnEstimate func(session string, u EstimateUpdate)
	// OnHandoff, if set, receives every session transfer, drain and
	// failover alike, in transfer order. Called with the router lock
	// held: do not call back into the cluster from it.
	OnHandoff func(ev HandoffEvent)

	// Drop, if set, is the fault filter: return true to eat the frame
	// (internal/faults wires its partition injector here). Called for
	// every message in both directions; must be concurrency-safe.
	Drop func(m *Message) bool

	// Journal, if set, receives one KindExport record per session
	// transfer — the cluster coordinator's durable handoff log, read
	// back by `vihot-trace cluster`. Same non-blocking write-behind
	// contract as the serve journal.
	Journal *journal.Writer
	// Metrics, if set, registers the vihot_cluster_* series there.
	Metrics *obs.Registry
	// Transport moves frames; default is an in-process Loopback owned
	// (and closed) by the cluster.
	Transport Transport
	// MeasureHandoff stamps wall-clock durations on DrainNode's
	// returned events (for benches). Off by default so deterministic
	// runs read no wall clocks.
	MeasureHandoff bool
}

// HandoffEvent is one session transfer.
type HandoffEvent struct {
	Session  string
	Key      string
	From, To string
	T        float64 // the snapshot's stream clock (0 if none)
	Failover bool
	// DurNS is the wall duration of the transfer, only when
	// Config.MeasureHandoff is set.
	DurNS int64
}

// dirEntry is the router's view of one session: its current owner,
// profile key, and the last sampled estimate (the failover snapshot).
type dirEntry struct {
	node   string
	key    string
	est    EstimateUpdate
	hasEst bool
}

// Cluster is the coordinator: the ring, the routing directory, the
// heartbeat failure detector, and the handoff engine. One Cluster
// owns its member nodes in-process.
//
// Locking: mu guards the ring, membership liveness, the stream clock,
// and every routing decision; dirMu guards the directory and the
// heartbeat pong table. dirMu nests inside mu (node handlers invoked
// synchronously under mu take dirMu for backflow) and never the
// reverse.
type Cluster struct {
	cfg           Config
	names         []string // sorted membership
	idx           map[string]uint8
	transport     Transport
	ownsTransport bool
	metrics       clusterMetrics

	mu        sync.Mutex
	closed    bool
	ring      *Ring
	nodes     map[string]*Node
	live      map[string]bool
	clock     float64
	haveClock bool
	nextBeat  float64
	encBuf    []byte          // router-side encode scratch, guarded by mu
	repl      map[string]bool // profile keys already replicated

	dirMu    sync.Mutex
	dir      map[string]*dirEntry
	lastPong map[string]float64
}

// New builds the cluster: one serve.Manager per member, everything
// registered on the transport, the ring assembled. Close (or
// CloseDrain) releases the nodes.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, ErrNoMembers
	}
	if len(cfg.Nodes) > 255 {
		return nil, fmt.Errorf("cluster: %d members exceeds the uint8 node index", len(cfg.Nodes))
	}
	if cfg.HeartbeatS <= 0 {
		cfg.HeartbeatS = 0.5
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 4
	}
	if cfg.EstimateEveryS <= 0 {
		cfg.EstimateEveryS = 0.25
	}
	if cfg.Pipeline == (core.PipelineConfig{}) {
		// A fully zero pipeline config means "core defaults". Passing
		// the zero value straight through would instead hit NewTracker's
		// minimal-legal fallbacks (stride 1, step 1 — ~4× the matching
		// work of the defaults' stride 2, step 2).
		cfg.Pipeline = core.DefaultPipelineConfig()
	}
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		names:    ring.Members(),
		idx:      make(map[string]uint8),
		ring:     ring,
		nodes:    make(map[string]*Node),
		live:     make(map[string]bool),
		repl:     make(map[string]bool),
		dir:      make(map[string]*dirEntry),
		lastPong: make(map[string]float64),
		metrics:  newClusterMetrics(cfg.Metrics),
	}
	for i, n := range c.names {
		c.idx[n] = uint8(i)
		if len(n) > maxNodeName {
			return nil, fmt.Errorf("cluster: member name %q too long", n)
		}
	}
	c.transport = cfg.Transport
	if c.transport == nil {
		c.transport = NewLoopback()
		c.ownsTransport = true
	}
	if err := c.transport.Register("", c.handleFrame); err != nil {
		return nil, err
	}
	for _, name := range c.names {
		node := &Node{
			name:     name,
			c:        c,
			store:    profilestore.New(profilestore.Config{}),
			lastBack: make(map[string]float64),
		}
		scfg := cfg.Serve
		if cfg.NodeServe != nil {
			scfg = cfg.NodeServe(name, scfg)
		}
		scfg.Deterministic = cfg.Deterministic
		scfg.Profiles = node.store
		node.userSink = scfg.OnEstimateHealth
		scfg.OnEstimateHealth = node.onEstimate
		node.pooled = scfg.RecycleFrames
		node.mgr = serve.New(scfg)
		node.alive.Store(true)
		c.nodes[name] = node
		c.live[name] = true
		if err := c.transport.Register(name, node.Handle); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.metrics.nodesLive.Set(float64(len(c.names)))
	c.metrics.ringPoints.Set(float64(ring.Points()))
	return c, nil
}

// handleFrame is the router's transport handler: pongs and estimate
// backflow. It takes only dirMu — node handlers run synchronously
// under mu on the loopback transport, and the backflow they trigger
// must not re-enter the routing lock.
func (c *Cluster) handleFrame(frame []byte) error {
	m, err := DecodeMessage(frame)
	if err != nil {
		return err
	}
	switch m.Kind {
	case MsgPong:
		c.dirMu.Lock()
		if m.T > c.lastPong[m.From] {
			c.lastPong[m.From] = m.T
		}
		c.dirMu.Unlock()
		return nil
	case MsgEstimate:
		c.dirMu.Lock()
		if e := c.dir[m.Session]; e != nil {
			e.est = m.Est
			e.hasEst = true
		}
		c.dirMu.Unlock()
		c.metrics.estimates.Add(1)
		if c.cfg.OnEstimate != nil {
			c.cfg.OnEstimate(m.Session, m.Est)
		}
		return nil
	default:
		return fmt.Errorf("%w: router got kind %v", ErrBadMessage, m.Kind)
	}
}

// send encodes and delivers one router→node message. Caller holds mu
// (the encode scratch is mu-guarded). The caller does the per-reason
// drop accounting: the dropped-items metrics count items, so an eaten
// control frame (ping, open) is not a "dropped item".
func (c *Cluster) send(m *Message) error {
	if c.cfg.Drop != nil && c.cfg.Drop(m) {
		return errDroppedByFilter
	}
	frame, err := EncodeMessage(c.encBuf[:0], m)
	if err != nil {
		return err
	}
	c.encBuf = frame[:0]
	c.metrics.messagesSent.Add(1)
	return c.transport.Send(m.To, frame)
}

// errDroppedByFilter marks a frame the fault filter ate — already
// counted, distinct from a transport failure.
var errDroppedByFilter = errors.New("cluster: dropped by fault filter")

// Owner returns the member currently owning the session key.
func (c *Cluster) Owner(session string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.ring.Owner(session)
	return owner, owner != ""
}

// Node returns a member by name (tests and the demo).
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Members returns the static membership, sorted.
func (c *Cluster) Members() []string { return append([]string(nil), c.names...) }

// Open admits a session: the profile is replicated to every live
// member (once per key — membership is static, so a key replicated at
// first open is everywhere it can ever be needed), then the owning
// node opens the session through its replicated store.
func (c *Cluster) Open(session, key string, p *core.Profile) error {
	if session == "" || key == "" {
		return fmt.Errorf("cluster: open needs session and key")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	return c.openLocked(session, key, p)
}

// OpenMany admits a fleet in one pass: every distinct profile key
// resolves through one profiles.GetMany (M loader calls for N
// sessions, cold loads overlapping), then each session opens under a
// single acquisition of the routing lock — replication still happens
// once per key, ever. The returned slice aligns with opens; a broken
// profile or bad open fails only its own slot.
func (c *Cluster) OpenMany(opens []serve.KeyedOpen, profiles *profilestore.Store) []error {
	errs := make([]error, len(opens))
	if len(opens) == 0 {
		return errs
	}
	// Resolve profiles before taking mu: loads may hit disk, and the
	// routing lock gates the whole data plane.
	keys := make([]string, len(opens))
	for i, o := range opens {
		keys[i] = o.Key
	}
	ps, perrs := profiles.GetMany(keys)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		for i := range errs {
			errs[i] = ErrClusterClosed
		}
		return errs
	}
	for i, o := range opens {
		if o.ID == "" || o.Key == "" {
			errs[i] = fmt.Errorf("cluster: open needs session and key")
			continue
		}
		if perrs[i] != nil {
			errs[i] = fmt.Errorf("cluster: resolve profile %q for %q: %w", o.Key, o.ID, perrs[i])
			continue
		}
		errs[i] = c.openLocked(o.ID, o.Key, ps[i])
	}
	return errs
}

// openLocked is the admission body shared by Open and OpenMany.
// Caller holds mu and has checked closed.
func (c *Cluster) openLocked(session, key string, p *core.Profile) error {
	if !c.repl[key] {
		var buf bytes.Buffer
		if err := core.WriteProfile(&buf, p); err != nil {
			return fmt.Errorf("cluster: encode profile %q: %w", key, err)
		}
		blob := buf.Bytes()
		for _, name := range c.names {
			if !c.live[name] {
				continue
			}
			if err := c.send(&Message{Kind: MsgProfile, To: name, Key: key, Profile: blob}); err != nil && !errors.Is(err, errDroppedByFilter) {
				return fmt.Errorf("cluster: replicate %q to %s: %w", key, name, err)
			}
		}
		c.repl[key] = true
	}
	owner := c.ring.Owner(session)
	if owner == "" {
		return ErrNoMembers
	}
	if err := c.send(&Message{Kind: MsgOpen, To: owner, Session: session, Key: key}); err != nil {
		return fmt.Errorf("cluster: open %q on %s: %w", session, owner, err)
	}
	c.dirMu.Lock()
	c.dir[session] = &dirEntry{node: owner, key: key}
	c.metrics.sessions.Set(float64(len(c.dir)))
	c.dirMu.Unlock()
	return nil
}

// CloseSession closes a session cluster-wide.
func (c *Cluster) CloseSession(session string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	c.dirMu.Lock()
	e := c.dir[session]
	delete(c.dir, session)
	c.metrics.sessions.Set(float64(len(c.dir)))
	c.dirMu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, session)
	}
	c.nodes[e.node].forgetBackflow(session)
	return c.send(&Message{Kind: MsgClose, To: e.node, Session: session})
}

// Push routes one item.
func (c *Cluster) Push(it serve.Item) {
	var one [1]serve.Item
	one[0] = it
	c.PushBatch(one[:])
}

// PushBatch routes a batch: items are grouped by owning node (session
// order within a node preserved), sent as MsgItems frames, and the
// router clock advances to the batch's max timestamp — which is also
// what drives the heartbeat/failure detector. Accounting:
//
//	Routed == Delivered + DroppedPartition + DroppedDown + DroppedUnowned
//
// with Delivered items landing in the member managers' own Total().
func (c *Cluster) PushBatch(items []serve.Item) {
	if len(items) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.metrics.routedItems.Add(uint64(len(items)))

	// Group per node, preserving item order within each node.
	var (
		batch = make(map[string][]serve.Item, len(c.names))
		maxT  = c.clock
		haveT = c.haveClock
	)
	c.dirMu.Lock()
	for i := range items {
		it := items[i]
		e := c.dir[it.Session]
		if e == nil {
			c.metrics.droppedUnowned.Add(1)
			continue
		}
		if !c.live[e.node] {
			c.metrics.droppedDown.Add(1)
			continue
		}
		batch[e.node] = append(batch[e.node], it)
		if t := itemTime(&it); t > maxT || !haveT {
			maxT, haveT = t, true
		}
	}
	c.dirMu.Unlock()

	// Deterministic node order for the sends.
	for _, name := range c.names {
		its := batch[name]
		for len(its) > 0 {
			n := len(its)
			if n > maxItemsPerMsg {
				n = maxItemsPerMsg
			}
			chunk := its[:n]
			its = its[n:]
			m := &Message{Kind: MsgItems, To: name, Items: chunk, T: batchMaxT(chunk)}
			switch err := c.send(m); {
			case err == nil:
				c.metrics.deliveredItems.Add(uint64(n))
			case errors.Is(err, errDroppedByFilter):
				c.metrics.droppedPartition.Add(uint64(n))
			case errors.Is(err, ErrNodeDown):
				c.metrics.droppedDown.Add(uint64(n))
			default:
				c.metrics.droppedDown.Add(uint64(n))
			}
		}
	}
	if haveT {
		c.clock, c.haveClock = maxT, true
		c.maybeHeartbeat()
	}
}

// itemTime extracts an item's stream timestamp.
func itemTime(it *serve.Item) float64 {
	switch it.Kind {
	case serve.KindPhase:
		return it.Time
	case serve.KindFrame:
		if it.Frame != nil {
			return it.Frame.Time
		}
		return 0
	case serve.KindIMU:
		return it.IMU.Time
	case serve.KindCamera:
		return it.Camera.Time
	default:
		return 0
	}
}

func batchMaxT(items []serve.Item) float64 {
	var t float64
	for i := range items {
		if v := itemTime(&items[i]); v > t {
			t = v
		}
	}
	return t
}

// Flush drains every live member's queues (concurrent mode).
func (c *Cluster) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range c.names {
		if c.live[name] {
			c.nodes[name].mgr.Flush()
		}
	}
}

// Health reports a session's degradation state on its current owner.
func (c *Cluster) Health(session string) (serve.Health, bool) {
	c.dirMu.Lock()
	e := c.dir[session]
	c.dirMu.Unlock()
	if e == nil {
		return serve.Healthy, false
	}
	return c.nodes[e.node].mgr.Health(session)
}

// Sessions returns the routing directory size.
func (c *Cluster) Sessions() int {
	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	return len(c.dir)
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	liveN := 0
	for _, ok := range c.live {
		if ok {
			liveN++
		}
	}
	ringPts := c.ring.Points()
	c.mu.Unlock()
	m := &c.metrics
	return Stats{
		Nodes:            len(c.names),
		LiveNodes:        liveN,
		RingPoints:       ringPts,
		Sessions:         c.Sessions(),
		Routed:           m.routedItems.Value(),
		Delivered:        m.deliveredItems.Value(),
		DroppedPartition: m.droppedPartition.Value(),
		DroppedDown:      m.droppedDown.Value(),
		DroppedUnowned:   m.droppedUnowned.Value(),
		MessagesSent:     m.messagesSent.Value(),
		Estimates:        m.estimates.Value(),
		HeartbeatMisses:  m.heartbeatMisses.Value(),
		Reassignments:    m.reassignments.Value(),
		DrainHandoffs:    m.handoffDrain.Value(),
		FailoverHandoffs: m.handoffFailover.Value(),
		JournalAppended:  m.journalAppended.Value(),
		JournalDropped:   m.journalDropped.Value(),
	}
}

// CloseDrain gracefully stops every live member (queues processed,
// conservation identities exact) and closes the cluster. Sessions are
// not handed off — there is nowhere left to hand them — so this is
// fleet shutdown, not node maintenance; DrainNode is the latter.
func (c *Cluster) CloseDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, name := range c.names {
		if c.live[name] {
			c.nodes[name].mgr.CloseDrain()
		}
	}
	c.metrics.nodesLive.Set(0)
	if c.ownsTransport {
		c.transport.Close()
	}
}

// Close hard-stops every member and the cluster.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, node := range c.nodes {
		if node.mgr != nil {
			node.mgr.Close()
		}
	}
	c.metrics.nodesLive.Set(0)
	if c.ownsTransport {
		c.transport.Close()
	}
}

// sortedDirSessions returns the directory's sessions owned by node,
// sorted — the deterministic iteration order every reassignment uses.
func (c *Cluster) sortedDirSessions(node string) []string {
	c.dirMu.Lock()
	var ids []string
	for id, e := range c.dir {
		if e.node == node {
			ids = append(ids, id)
		}
	}
	c.dirMu.Unlock()
	sort.Strings(ids)
	return ids
}
