package cluster

import (
	"testing"
)

// FuzzClusterDecode throws arbitrary frames at the cluster wire
// decoder. It must never panic, and any frame it accepts must be
// canonical: re-encoding the decoded message reproduces the input
// bytes exactly. That invariant is what makes the wire layer safe to
// proxy — an intermediary can decode, inspect, and re-frame without
// changing what the receiver sees.
func FuzzClusterDecode(f *testing.F) {
	for _, m := range wireMessages() {
		frame, err := EncodeMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame...))
		// Systematic truncations and corruptions of each seed.
		for _, n := range []int{0, 4, 19, 20, 21, len(frame) - 1} {
			if n >= 0 && n <= len(frame) {
				f.Add(append([]byte(nil), frame[:n]...))
			}
		}
		bad := append([]byte(nil), frame...)
		bad[0] = 'X' // magic
		f.Add(bad)
		bad = append([]byte(nil), frame...)
		bad[5] = 9 // version
		f.Add(bad)
		bad = append([]byte(nil), frame...)
		bad[20] = 200 // message kind byte
		f.Add(bad)
		f.Add(append(append([]byte(nil), frame...), 0xff))
	}
	f.Add(rawEnvelope(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		// The pooled decoder must agree on the accept/reject verdict.
		pm, perr := decodeMessage(data, true)
		if (err == nil) != (perr == nil) {
			t.Fatalf("heap decode err=%v but pooled decode err=%v", err, perr)
		}
		if err != nil {
			if m != nil {
				t.Fatalf("DecodeMessage returned both a message and error %v", err)
			}
			return
		}
		if !m.Kind.valid() {
			t.Fatalf("decoder accepted invalid kind %d", uint8(m.Kind))
		}
		if pm.Kind != m.Kind || len(pm.Items) != len(m.Items) {
			t.Fatalf("pooled/heap decode disagree: %v/%d vs %v/%d",
				pm.Kind, len(pm.Items), m.Kind, len(m.Items))
		}
		again, err := EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		if string(again) != string(data) {
			t.Fatalf("re-encode is not canonical:\n in: %x\nout: %x", data, again)
		}
	})
}
