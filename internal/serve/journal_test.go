package serve

import (
	"bytes"
	"math"
	"testing"

	"vihot/internal/core"
	"vihot/internal/journal"
)

// TestJournalConservationAndRecovery drives one deterministic run
// through every journaled event family — estimates, health
// transitions (down and back up), an idle-TTL reap, an explicit
// close — and proves the two contracts the wiring makes:
//
//  1. The extended conservation identity: every journaled event is
//     accounted appended-or-dropped, and with an unsaturated queue the
//     journal holds exactly one record per event.
//  2. Recovery reconstructs the terminal per-session state the live
//     manager actually reached.
func TestJournalConservationAndRecovery(t *testing.T) {
	var buf bytes.Buffer
	jw, err := journal.New(journal.Config{W: &buf, BatchSize: 8, QueueLen: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	var lastEst core.Estimate
	var estCount int
	m := New(Config{
		Deterministic: true,
		Journal:       jw,
		SessionTTLS:   1.0,
		OnEstimate:    func(id string, est core.Estimate) { lastEst, estCount = est, estCount+1 },
	})
	prof := testProfile(t)
	for _, id := range []string{"est", "idle"} {
		if err := m.Open(id, prof, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// "idle" admits two items early, then goes silent: the TTL sweep
	// must reap it as "est" drives the shard clock past its horizon.
	m.Push(Item{Session: "idle", Kind: KindPhase, Time: 0.10, Phi: 0})
	m.Push(Item{Session: "idle", Kind: KindPhase, Time: 0.12, Phi: 0})
	// "est" streams healthy CSI, starves into STALE, then recovers.
	ts := 0.0
	for i := 0; i < 1500; i++ {
		ts = float64(i) * 0.002
		m.Push(Item{Session: "est", Kind: KindPhase, Time: ts, Phi: math.Sin(ts * 6)})
	}
	ts += 2.0 // a gap past StaleAfterS (and under the forward-jump cap)
	for i := 0; i < 600; i++ {
		tt := ts + float64(i)*0.002
		m.Push(Item{Session: "est", Kind: KindPhase, Time: tt, Phi: math.Sin(tt * 6)})
	}
	if err := m.CloseSession("est"); err != nil {
		t.Fatal(err)
	}
	m.CloseDrain()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	snap := m.Counters().Snapshot()
	if snap.Estimates == 0 || snap.ToStale == 0 || snap.Recoveries == 0 {
		t.Fatalf("scenario did not exercise the machine: %+v", snap)
	}
	if snap.SessionsReaped != 1 || snap.SessionsClosed != 1 {
		t.Fatalf("reaped=%d closed=%d, want 1/1", snap.SessionsReaped, snap.SessionsClosed)
	}
	events := snap.Estimates + snap.ToDegraded + snap.ToCoasting + snap.ToStale +
		snap.Recoveries + snap.SessionsReaped + snap.SessionsClosed
	if snap.JournalAppended+snap.JournalDropped != events {
		t.Errorf("journal books broken: appended %d + dropped %d != events %d",
			snap.JournalAppended, snap.JournalDropped, events)
	}
	if snap.JournalDropped != 0 {
		t.Fatalf("queue sized for the run yet dropped %d", snap.JournalDropped)
	}
	if snap.JournalErrors != 0 {
		t.Fatalf("journal errors: %d", snap.JournalErrors)
	}

	res, err := journal.Recover(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanShutdown || res.Diag.Truncated {
		t.Fatalf("clean run recovered dirty: %+v", res.Diag)
	}
	if got := uint64(res.Counts[journal.KindEstimate]); got != snap.Estimates {
		t.Errorf("estimate records = %d, estimates = %d", got, snap.Estimates)
	}
	wantHealth := snap.ToDegraded + snap.ToCoasting + snap.ToStale + snap.Recoveries
	if got := uint64(res.Counts[journal.KindHealth]); got != wantHealth {
		t.Errorf("health records = %d, transitions = %d", got, wantHealth)
	}
	if res.Counts[journal.KindReap] != 1 || res.Counts[journal.KindClose] != 1 {
		t.Errorf("reap/close records = %d/%d", res.Counts[journal.KindReap], res.Counts[journal.KindClose])
	}

	// Terminal state agreement: the journal's last word on each session
	// is what the live manager last did.
	est := res.Sessions["est"]
	if est == nil || !est.Closed || est.Reaped {
		t.Fatalf("est state = %+v", est)
	}
	if estCount == 0 || !est.HasEstimate {
		t.Fatal("no estimates to compare")
	}
	if est.Estimate.T != lastEst.Time || est.Estimate.Yaw != lastEst.Yaw ||
		int(est.Estimate.Position) != lastEst.Position {
		t.Errorf("recovered last estimate %+v != live %+v", est.Estimate, lastEst)
	}
	idle := res.Sessions["idle"]
	if idle == nil || !idle.Reaped {
		t.Fatalf("idle state = %+v", idle)
	}
	if live := res.Live(); len(live) != 0 {
		t.Errorf("live sessions after recovery = %v", live)
	}
}

// TestJournalCloseRecordCarriesState pins the close record's payload:
// the session's last admitted clock and final health, read through
// the atomic mirrors CloseSession relies on.
func TestJournalCloseRecordCarriesState(t *testing.T) {
	var buf bytes.Buffer
	jw, err := journal.New(journal.Config{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Deterministic: true, Journal: jw})
	if err := m.Open("s", testProfile(t), core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	m.Push(Item{Session: "s", Kind: KindPhase, Time: 1.0, Phi: 0})
	m.Push(Item{Session: "s", Kind: KindPhase, Time: 3.0, Phi: 0}) // gap: DEGRADED at least
	h, _ := m.Health("s")
	if err := m.CloseSession("s"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := journal.Recover(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sessions["s"]
	if s == nil || !s.Closed {
		t.Fatalf("state = %+v", s)
	}
	if s.LastT != 3.0 {
		t.Errorf("close record clock = %v, want 3.0", s.LastT)
	}
	if Health(s.Health) != h {
		t.Errorf("close record health = %v, live %v", Health(s.Health), h)
	}
}
