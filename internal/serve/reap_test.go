package serve_test

import (
	"sync"
	"testing"

	"vihot/internal/core"
	"vihot/internal/serve"
)

// reapEvent is one recorded OnReap callback.
type reapEvent struct {
	id string
	t  float64
}

// reapLog collects OnReap callbacks, safe for worker goroutines.
type reapLog struct {
	mu     sync.Mutex
	events []reapEvent
}

func (l *reapLog) onReap(id string, t float64) {
	l.mu.Lock()
	l.events = append(l.events, reapEvent{id, t})
	l.mu.Unlock()
}

func (l *reapLog) snapshot() []reapEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]reapEvent(nil), l.events...)
}

// TestReapDeterministicReplay is the acceptance test for stream-time
// reaping: two deterministic replays of one item sequence must evict
// the same sessions at the same stream times — bit-identical reap
// points, because the sweep reads only session clocks, never a wall
// clock.
func TestReapDeterministicReplay(t *testing.T) {
	f := getFixture(t)
	run := func() ([]reapEvent, serve.CounterSnapshot, int) {
		log := &reapLog{}
		m := serve.New(serve.Config{
			Deterministic: true,
			SessionTTLS:   2.0,
			OnReap:        log.onReap,
		})
		defer m.Close()
		for _, id := range []string{"live", "idle-1", "idle-2"} {
			if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
				t.Fatal(err)
			}
		}
		// The idle sessions admit a couple of early samples, then go
		// silent; the live session streams on past their TTL horizon.
		for _, id := range []string{"idle-1", "idle-2"} {
			m.Push(serve.Item{Session: id, Kind: serve.KindPhase, Time: 0.10, Phi: 0})
			m.Push(serve.Item{Session: id, Kind: serve.KindPhase, Time: 0.12, Phi: 0})
		}
		for i := 0; i < 4000; i++ {
			m.Push(serve.Item{Session: "live", Kind: serve.KindPhase,
				Time: 0.2 + float64(i)*0.002, Phi: 0})
		}
		return log.snapshot(), m.Counters().Snapshot(), m.Sessions()
	}

	evA, snapA, openA := run()
	evB, snapB, openB := run()

	if len(evA) != 2 {
		t.Fatalf("reaped %d sessions %v, want the 2 idle ones", len(evA), evA)
	}
	// Sorted callback order: idle-1 before idle-2, same sweep time.
	if evA[0].id != "idle-1" || evA[1].id != "idle-2" {
		t.Fatalf("reap order %v, want [idle-1 idle-2] (sorted within a sweep)", evA)
	}
	if evA[0].t != evA[1].t {
		t.Fatalf("one sweep produced two reap times: %v", evA)
	}
	// The sweep fired past the idle horizon (idle since 0.12, TTL 2.0)
	// and not implausibly late (sweep cadence is TTL/4).
	if evA[0].t < 2.12 || evA[0].t > 2.12+0.5+0.01 {
		t.Fatalf("reap fired at stream time %v, want within (2.12, 2.63]", evA[0].t)
	}
	if snapA.SessionsReaped != 2 {
		t.Fatalf("SessionsReaped = %d, want 2", snapA.SessionsReaped)
	}
	if openA != 1 {
		t.Fatalf("Sessions() = %d after reap, want 1 (only the live one)", openA)
	}

	// Replay-identical: same events, same counters, same registry.
	if len(evA) != len(evB) || openA != openB {
		t.Fatalf("replays diverged: %v/%d vs %v/%d", evA, openA, evB, openB)
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("reap event %d differs across replays: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	if snapA != snapB {
		t.Fatalf("replay counters differ:\n%+v\n%+v", snapA, snapB)
	}
}

// TestReapNeverFedSession covers the grace anchor: a session that was
// opened but never admitted an item has no clock, so it is granted one
// full TTL from the first sweep that sees it — then evicted.
func TestReapNeverFedSession(t *testing.T) {
	f := getFixture(t)
	log := &reapLog{}
	m := serve.New(serve.Config{
		Deterministic: true,
		SessionTTLS:   1.0,
		OnReap:        log.onReap,
	})
	defer m.Close()
	for _, id := range []string{"live", "never-fed"} {
		if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	push := func(ts float64) {
		m.Push(serve.Item{Session: "live", Kind: serve.KindPhase, Time: ts, Phi: 0})
	}
	push(0.0)
	push(0.3) // first sweep due at 0.25 fires here, anchoring never-fed at 0.3
	if ev := log.snapshot(); len(ev) != 0 {
		t.Fatalf("reaped before any TTL could elapse: %v", ev)
	}
	push(1.0) // idle 0.7 < TTL: still within grace
	if ev := log.snapshot(); len(ev) != 0 {
		t.Fatalf("never-fed session reaped inside its grace TTL: %v", ev)
	}
	push(1.5) // idle 1.2 > TTL since the 0.3 anchor: evicted
	ev := log.snapshot()
	if len(ev) != 1 || ev[0].id != "never-fed" {
		t.Fatalf("reap log = %v, want exactly never-fed", ev)
	}
	if m.Sessions() != 1 {
		t.Fatalf("Sessions() = %d, want 1", m.Sessions())
	}
	// Items addressed to the reaped session now count DroppedUnknown,
	// exactly like a CloseSession'd one.
	m.Push(serve.Item{Session: "never-fed", Kind: serve.KindPhase, Time: 2, Phi: 0})
	if snap := m.Counters().Snapshot(); snap.DroppedUnknown != 1 {
		t.Fatalf("DroppedUnknown = %d after pushing to a reaped session, want 1", snap.DroppedUnknown)
	}
}

// TestReapConcurrentSmoke exercises the sweep under real workers (and
// -race): many sessions, half going idle, reaping driven purely by the
// live half's stream progress.
func TestReapConcurrentSmoke(t *testing.T) {
	f := getFixture(t)
	log := &reapLog{}
	// QueueLen holds the whole stream: shedding here would not just
	// mute sessions, it could skip one past the +5 s forward-jump
	// guard and wedge its clock — making a "live" session legitimately
	// idle. Reap behavior under load shedding is not what this test
	// pins.
	m := serve.New(serve.Config{
		Shards:      2,
		QueueLen:    1 << 15,
		SessionTTLS: 1.0,
		OnReap:      log.onReap,
	})
	defer m.Close()
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// One pusher interleaving all sessions round-robin, the shape a
	// receiver loop produces: live sessions advance in lock-step (so
	// none can fall a TTL behind its shard-mates and be reaped by
	// scheduling luck), idle ones simply stop appearing after t=0.1.
	var batch []serve.Item
	for i := 0; i < 3000; i++ {
		for _, id := range ids {
			if id >= "d" && i >= 50 {
				continue // idle half went out of range
			}
			batch = append(batch, serve.Item{Session: id, Kind: serve.KindPhase,
				Time: float64(i) * 0.002, Phi: 0})
		}
		if len(batch) >= 64 {
			m.PushBatch(batch)
			batch = batch[:0]
		}
	}
	m.PushBatch(batch)
	m.Flush()

	snap := m.Counters().Snapshot()
	reaped := map[string]bool{}
	for _, ev := range log.snapshot() {
		reaped[ev.id] = true
	}
	for _, id := range []string{"d", "e", "f"} {
		if !reaped[id] {
			t.Errorf("idle session %s not reaped (events %v)", id, log.snapshot())
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		if reaped[id] {
			t.Errorf("live session %s was reaped", id)
		}
	}
	if snap.SessionsReaped != uint64(len(log.snapshot())) {
		t.Fatalf("SessionsReaped=%d but %d callbacks", snap.SessionsReaped, len(log.snapshot()))
	}
	if m.Sessions() != 3 {
		t.Fatalf("Sessions() = %d, want the 3 live ones", m.Sessions())
	}
	m.CloseDrain()
	final := m.Counters().Snapshot()
	if final.Total() != final.Processed+final.DroppedStale+final.DroppedUnknown+final.RejectedKind {
		t.Fatalf("conservation violated after drain: %+v", final)
	}
}
