package serve

import (
	"math"

	"vihot/internal/core"
	"vihot/internal/obs"
)

// StageDwell is the serving layer's own span stage: the wall-clock
// time an item spent in its shard queue between Push and the worker
// picking it up. Queue dwell is the latency the concurrency model
// *adds* to the pipeline's own cost, so it gets a first-class stage
// next to core's sanitize/match/track/fuse.
const StageDwell = "dwell"

// newCounters registers the manager's traffic counters in r. Every
// field is a registry-backed counter whose Add is one atomic add —
// exactly the hot-path cost of the hand-rolled atomic.Uint64 fields
// these replaced — so the counters exist (and the Snapshot API works)
// whether or not the caller supplied a registry to scrape them from.
func newCounters(r *obs.Registry) Counters {
	items := func(kind string) *obs.Counter {
		return r.Counter("vihot_serve_items_total",
			"items accepted into shard queues, by item kind", "kind", kind)
	}
	dropped := func(reason string) *obs.Counter {
		return r.Counter("vihot_serve_dropped_total",
			"items dropped before reaching a pipeline, by reason", "reason", reason)
	}
	trans := func(to string) *obs.Counter {
		return r.Counter("vihot_serve_health_transitions_total",
			"degradation state-machine transitions, by destination state", "to", to)
	}
	return Counters{
		phasesIn:        items("phase"),
		framesIn:        items("frame"),
		imuIn:           items("imu"),
		cameraIn:        items("camera"),
		processed:       r.Counter("vihot_serve_processed_total", "items that reached their session's pipeline stage"),
		estimates:       r.Counter("vihot_serve_estimates_total", "estimates delivered across all sessions"),
		droppedStale:    dropped("queue_full"),
		droppedUnknown:  dropped("unknown_session"),
		sanitizeErrors:  r.Counter("vihot_serve_sanitize_errors_total", "raw CSI frames rejected by the sanitizer"),
		rejectedTime:    r.Counter("vihot_serve_rejected_time_total", "items rejected for non-finite, non-monotone, or far-future timestamps"),
		suppressedStale: r.Counter("vihot_serve_suppressed_stale_total", "pipeline estimates discarded because the session was stale"),
		coasted:         r.Counter("vihot_serve_coasted_total", "camera/forecast estimates emitted while coasting"),
		toDegraded:      trans("degraded"),
		toCoasting:      trans("coasting"),
		toStale:         trans("stale"),
		recoveries:      trans("healthy"),
		trackerResets:   r.Counter("vihot_serve_tracker_resets_total", "tracker restarts after a CSI blackout"),
		rejectedKind:    r.Counter("vihot_serve_rejected_kind_total", "items refused at push for an unknown item kind"),
		rejectedClosed:  r.Counter("vihot_serve_rejected_closed_total", "items refused at push because the manager was closed"),
		droppedClosed:   dropped("shutdown"),
		reaped:          r.Counter("vihot_serve_sessions_reaped_total", "sessions evicted by the idle-TTL sweep"),
		closed:          r.Counter("vihot_serve_sessions_closed_total", "sessions removed by explicit CloseSession"),
		journalAppended: r.Counter("vihot_serve_journal_appended_total", "records accepted by the write-behind journal"),
		journalDropped:  r.Counter("vihot_serve_journal_dropped_total", "records shed at append (journal queue full or closed)"),
	}
}

// managerObs is the manager's opt-in instrumentation: per-stage wall
// latency histograms (when Config.Metrics is set) and span tracing
// (when Config.Trace is set). The Manager holds a nil *managerObs when
// neither is configured, and every timing call site is gated on that
// nil — an uninstrumented manager reads no clocks, which is what keeps
// the deterministic/golden-trace guarantees intact by construction.
type managerObs struct {
	sanitize *obs.Histogram
	match    *obs.Histogram
	track    *obs.Histogram
	fuse     *obs.Histogram
	dwellH   *obs.Histogram
	tracer   *obs.Tracer
}

// newManagerObs wires histograms (r may be nil: histograms stay nil
// and only tracing runs) and the tracer (tr may be nil: vice versa).
func newManagerObs(r *obs.Registry, tr *obs.Tracer) *managerObs {
	stage := func(name string) *obs.Histogram {
		return r.Histogram("vihot_pipeline_stage_seconds",
			"wall-clock latency of one pipeline stage", obs.LatencyBuckets(), "stage", name)
	}
	return &managerObs{
		sanitize: stage(core.StageSanitize),
		match:    stage(core.StageMatch),
		track:    stage(core.StageTrack),
		fuse:     stage(core.StageFuse),
		dwellH: r.Histogram("vihot_serve_queue_dwell_seconds",
			"wall-clock time items spend in a shard queue before processing", obs.LatencyBuckets()),
		tracer: tr,
	}
}

// stage records one pipeline-stage duration into the matching
// histogram and the span tracer. It is the Manager's core.StageObserver
// (bound per session in Open) and also serves the serving layer's own
// sanitize timing.
func (mo *managerObs) stage(session, stage string, streamT float64, durNS int64) {
	switch stage {
	case core.StageSanitize:
		mo.sanitize.Observe(float64(durNS) * 1e-9)
	case core.StageMatch:
		mo.match.Observe(float64(durNS) * 1e-9)
	case core.StageTrack:
		mo.track.Observe(float64(durNS) * 1e-9)
	case core.StageFuse:
		mo.fuse.Observe(float64(durNS) * 1e-9)
	}
	mo.tracer.Record(session, stage, streamT, durNS)
}

// dwell records one queue-dwell interval.
func (mo *managerObs) dwell(session string, streamT float64, durNS int64) {
	mo.dwellH.Observe(float64(durNS) * 1e-9)
	mo.tracer.Record(session, StageDwell, streamT, durNS)
}

// streamTime extracts the stream-time anchor an item carries, for span
// records. Items whose kind carries no timestamp (or a nil frame)
// anchor at NaN rather than inventing zero.
func streamTime(it Item) float64 {
	switch it.Kind {
	case KindPhase:
		return it.Time
	case KindFrame:
		if it.Frame != nil {
			return it.Frame.Time
		}
		return math.NaN()
	case KindIMU:
		return it.IMU.Time
	case KindCamera:
		return it.Camera.Time
	default:
		return math.NaN()
	}
}
