package serve

import (
	"math"
	"strings"
	"testing"

	"vihot/internal/core"
	"vihot/internal/obs"
)

// testProfile is a small synthetic single-position profile: a smooth
// monotone phase-orientation curve is all the tracker needs to run its
// matching machinery; accuracy is not under test here.
func testProfile(t *testing.T) *core.Profile {
	t.Helper()
	const n = 201
	pp := core.PositionProfile{Position: 0}
	for k := 0; k < n; k++ {
		theta := -60 + 120*float64(k)/(n-1)
		pp.ThetaGrid = append(pp.ThetaGrid, theta)
		pp.PhiGrid = append(pp.PhiGrid, 1.2*math.Sin(theta*math.Pi/180))
	}
	pp.Fingerprint = 0
	return &core.Profile{MatchRateHz: 100, Positions: []core.PositionProfile{pp}}
}

// pushSweep runs one session's worth of synthetic CSI through a
// manager: a phase sweep long enough (and lively enough) to drive the
// DTW matching path and produce estimates.
func pushSweep(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	if err := m.Open(id, testProfile(t), core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ts := float64(i) * 0.002 // 500 Hz
		m.Push(Item{Session: id, Kind: KindPhase, Time: ts, Phi: 1.0 * math.Sin(ts*6)})
	}
	m.Flush()
}

func TestManagerMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(4096)
	m := New(Config{Deterministic: true, Metrics: reg, Trace: tr})
	defer m.Close()
	pushSweep(t, m, "car-1", 600)

	snap := m.Counters().Snapshot()
	if snap.PhasesIn != 600 || snap.Estimates == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`vihot_serve_items_total{kind="phase"} 600`,
		"vihot_serve_sessions_open 1",
		"vihot_serve_processed_total 600",
		`vihot_pipeline_stage_seconds_count{stage="track"}`,
		`vihot_pipeline_stage_seconds_bucket{stage="match",le="1e-06"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Counter API and scrape must agree: the consolidation satellite's
	// whole point is that these are the same underlying series.
	if !strings.Contains(text, "vihot_serve_estimates_total "+uitoa(snap.Estimates)) {
		t.Errorf("estimates counter and exposition disagree\n%s", text)
	}

	// The tracer saw pipeline stages anchored at stream time.
	d := tr.Dump()
	if len(d.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	stages := map[string]int{}
	for _, sp := range d.Spans {
		if sp.Session != "car-1" {
			t.Fatalf("span session = %q", sp.Session)
		}
		stages[sp.Stage]++
		if sp.StreamT < 0 || sp.StreamT > 1.2+1e-9 {
			t.Fatalf("span StreamT = %v outside the stream's range", sp.StreamT)
		}
	}
	if stages[core.StageTrack] == 0 || stages[core.StageMatch] == 0 {
		t.Fatalf("stage spans = %v, want track and match present", stages)
	}
}

func TestManagerDwellTracked(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(Config{Shards: 1, Metrics: reg})
	defer m.Close()
	pushSweep(t, m, "car-dwell", 400)
	h := reg.Histogram("vihot_serve_queue_dwell_seconds",
		"wall-clock time items spend in a shard queue before processing", obs.LatencyBuckets())
	if h.Count() == 0 {
		t.Fatal("no queue-dwell observations in concurrent mode")
	}
}

func TestManagerObsOffByDefault(t *testing.T) {
	m := New(Config{Deterministic: true})
	defer m.Close()
	if m.obs != nil {
		t.Fatal("manager built instrumentation without Metrics or Trace")
	}
	// Counters still work against the private registry.
	pushSweep(t, m, "car-off", 300)
	if snap := m.Counters().Snapshot(); snap.PhasesIn != 300 {
		t.Fatalf("snapshot without registry = %+v", snap)
	}
}

func TestManagerTraceOnlyEnablesSpans(t *testing.T) {
	tr := obs.NewTracer(128)
	m := New(Config{Deterministic: true, Trace: tr})
	defer m.Close()
	pushSweep(t, m, "car-trace", 600)
	if tr.Dump().Recorded == 0 {
		t.Fatal("Trace without Metrics recorded nothing")
	}
}

// uitoa avoids importing strconv for one call site.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
