package serve_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vihot/internal/core"
	"vihot/internal/profilestore"
	"vihot/internal/serve"
)

// slowLoader hands out one profile after a deliberate delay, counting
// calls — the delay widens the cold-key race window so a storm of
// OpenByKey calls really does pile onto one in-flight load.
type slowLoader struct {
	p     *core.Profile
	calls atomic.Int64
}

func (sl *slowLoader) Load(key string) (*core.Profile, error) {
	sl.calls.Add(1)
	time.Sleep(20 * time.Millisecond)
	return sl.p, nil
}

// TestOpenByKeyColdStormSharesProfile proves the serving half of the
// shared-profile contract under -race: 64 sessions racing to open one
// cold driver key cause exactly one loader read, and every session's
// pipeline references the identical profile instance (same pointer,
// same fingerprint) — one profile of memory for the whole fleet key.
func TestOpenByKeyColdStormSharesProfile(t *testing.T) {
	fix := getFixture(t)
	sl := &slowLoader{p: fix.profile}
	store := profilestore.New(profilestore.Config{Loader: sl})
	mgr := serve.New(serve.Config{Shards: 4, Profiles: store})
	defer mgr.Close()

	const storm = 64
	var (
		wg   sync.WaitGroup
		gate = make(chan struct{})
		errs [storm]error
	)
	wg.Add(storm)
	for i := 0; i < storm; i++ {
		go func(i int) {
			defer wg.Done()
			<-gate
			errs[i] = mgr.OpenByKey(sessID(i), "driver-a", core.DefaultPipelineConfig())
		}(i)
	}
	close(gate)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("open %d: %v", i, errs[i])
		}
	}
	if calls := sl.calls.Load(); calls != 1 {
		t.Errorf("loader calls = %d, want exactly 1 for one cold key", calls)
	}
	if n := mgr.Sessions(); n != storm {
		t.Fatalf("sessions = %d, want %d", n, storm)
	}
	ref, ok := mgr.Profile(sessID(0))
	if !ok || ref == nil {
		t.Fatal("session 0 has no profile")
	}
	fp := ref.Fingerprint()
	for i := 1; i < storm; i++ {
		p, ok := mgr.Profile(sessID(i))
		if !ok {
			t.Fatalf("session %d missing", i)
		}
		if p != ref {
			t.Fatalf("session %d tracks a different profile instance", i)
		}
		if p.Fingerprint() != fp {
			t.Fatalf("session %d fingerprint diverged", i)
		}
	}

	// The shared instance must actually serve traffic: feed every
	// session the same short stream and require estimates from all.
	stream := fix.streams["driver-a"]
	if len(stream) > 400 {
		stream = stream[:400]
	}
	var estimates sync.Map
	mgr2 := serve.New(serve.Config{
		Shards:   4,
		Profiles: store,
		OnEstimate: func(id string, est core.Estimate) {
			v, _ := estimates.LoadOrStore(id, new(atomic.Int64))
			v.(*atomic.Int64).Add(1)
		},
	})
	defer mgr2.Close()
	const active = 8
	for i := 0; i < active; i++ {
		if err := mgr2.OpenByKey(sessID(i), "driver-a", core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range stream {
		for i := 0; i < active; i++ {
			it.Session = sessID(i)
			mgr2.Push(it)
		}
	}
	mgr2.Flush()
	for i := 0; i < active; i++ {
		v, ok := estimates.Load(sessID(i))
		if !ok || v.(*atomic.Int64).Load() == 0 {
			t.Errorf("session %d produced no estimates over the shared profile", i)
		}
	}
}

func sessID(i int) string {
	return "sess-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestOpenByKeyWithoutStore(t *testing.T) {
	mgr := serve.New(serve.Config{Deterministic: true})
	defer mgr.Close()
	if err := mgr.OpenByKey("s", "k", core.DefaultPipelineConfig()); !errors.Is(err, serve.ErrNoProfileStore) {
		t.Errorf("err = %v, want ErrNoProfileStore", err)
	}
	if err := mgr.OpenByKey("", "k", core.DefaultPipelineConfig()); !errors.Is(err, serve.ErrNoSessionID) {
		t.Errorf("empty id err = %v, want ErrNoSessionID", err)
	}
}

// TestOpenSessionsByKeyFleet is the batch acceptance test at the
// serving layer: opening N sessions over M distinct driver styles
// costs exactly M loader calls, every session of a style tracks the
// identical profile instance, and per-session failures stay local to
// their slot.
func TestOpenSessionsByKeyFleet(t *testing.T) {
	fix := getFixture(t)
	const (
		fleet    = 48
		distinct = 4
	)
	var calls atomic.Int64
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(key string) (*core.Profile, error) {
			calls.Add(1)
			time.Sleep(5 * time.Millisecond) // widen overlap between cold loads
			return fix.profile, nil
		}),
	})
	mgr := serve.New(serve.Config{Shards: 4, Profiles: store})
	defer mgr.Close()

	opens := make([]serve.KeyedOpen, fleet)
	for i := range opens {
		opens[i] = serve.KeyedOpen{
			ID:  sessID(i),
			Key: "style-" + string(rune('a'+i%distinct)),
		}
	}
	errs := mgr.OpenSessionsByKey(opens, core.DefaultPipelineConfig())
	if len(errs) != fleet {
		t.Fatalf("errs length %d, want %d", len(errs), fleet)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != distinct {
		t.Errorf("loader calls = %d, want exactly %d for %d sessions", n, distinct, fleet)
	}
	if n := mgr.Sessions(); n != fleet {
		t.Fatalf("sessions = %d, want %d", n, fleet)
	}
	ref, ok := mgr.Profile(sessID(0))
	if !ok {
		t.Fatal("session 0 missing")
	}
	for i := 1; i < fleet; i++ {
		if p, ok := mgr.Profile(sessID(i)); !ok || p != ref {
			t.Fatalf("session %d does not share the fleet's profile instance", i)
		}
	}
}

// TestOpenSessionsByKeyPerOpenErrors: a bad slot (empty ID, broken
// profile, duplicate session) fails alone; the rest of the batch
// serves.
func TestOpenSessionsByKeyPerOpenErrors(t *testing.T) {
	fix := getFixture(t)
	boom := errors.New("profile service down")
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(key string) (*core.Profile, error) {
			if key == "bad" {
				return nil, boom
			}
			return fix.profile, nil
		}),
	})
	mgr := serve.New(serve.Config{Deterministic: true, Profiles: store})
	defer mgr.Close()

	opens := []serve.KeyedOpen{
		{ID: "s1", Key: "good"},
		{ID: "", Key: "good"},
		{ID: "s2", Key: "bad"},
		{ID: "s1", Key: "good"}, // duplicate session ID
		{ID: "s3", Key: "good"},
	}
	errs := mgr.OpenSessionsByKey(opens, core.DefaultPipelineConfig())
	if errs[0] != nil {
		t.Errorf("slot 0: %v", errs[0])
	}
	if !errors.Is(errs[1], serve.ErrNoSessionID) {
		t.Errorf("slot 1 err = %v, want ErrNoSessionID", errs[1])
	}
	if !errors.Is(errs[2], boom) {
		t.Errorf("slot 2 err = %v, want the loader's error", errs[2])
	}
	if !errors.Is(errs[3], serve.ErrDuplicateID) {
		t.Errorf("slot 3 err = %v, want ErrDuplicateID", errs[3])
	}
	if errs[4] != nil {
		t.Errorf("slot 4: %v", errs[4])
	}
	if n := mgr.Sessions(); n != 2 {
		t.Errorf("sessions = %d, want 2 (s1, s3)", n)
	}

	// No store at all: every slot reports ErrNoProfileStore.
	bare := serve.New(serve.Config{Deterministic: true})
	defer bare.Close()
	for i, err := range bare.OpenSessionsByKey(opens[:2], core.DefaultPipelineConfig()) {
		if !errors.Is(err, serve.ErrNoProfileStore) {
			t.Errorf("bare slot %d err = %v, want ErrNoProfileStore", i, err)
		}
	}
}

func TestOpenByKeyLoaderFailure(t *testing.T) {
	boom := errors.New("profile service down")
	store := profilestore.New(profilestore.Config{
		Loader: profilestore.LoaderFunc(func(key string) (*core.Profile, error) {
			return nil, boom
		}),
	})
	mgr := serve.New(serve.Config{Deterministic: true, Profiles: store})
	defer mgr.Close()
	if err := mgr.OpenByKey("s", "k", core.DefaultPipelineConfig()); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the loader's error", err)
	}
	if mgr.Sessions() != 0 {
		t.Error("failed open leaked a session")
	}
	if _, ok := mgr.Profile("s"); ok {
		t.Error("failed open registered a profile")
	}
}
