package serve

import "sort"

// Stream-time idle-session reaping (Config.SessionTTLS, DESIGN.md
// §11). The sweep runs on the shard's own timeline: the shard stream
// clock is the max timestamp any of its sessions has admitted, and a
// session is idle by (shard clock − session clock). No wall clocks
// are read anywhere, so a deterministic replay of one item sequence
// reaps the same sessions at the same points every time — the
// property TestReapDeterministicReplay pins down.

// afterProcess runs after every processed item on the goroutine that
// owns the shard (its worker, or the caller in deterministic mode):
// it advances the shard stream clock past the item's session and
// fires the idle sweep when one is due. The clock fields are owned by
// that same goroutine, so reading them takes no lock; only the sweep
// itself touches shared state.
func (m *Manager) afterProcess(sh *shard, s *session) {
	ttl := m.cfg.SessionTTLS
	if ttl <= 0 || s == nil || !s.haveNow {
		return
	}
	if !sh.haveClock {
		sh.clock, sh.haveClock = s.now, true
		// A quarter-TTL cadence bounds how far past its horizon a
		// session can linger (TTL + TTL/4) without paying a map walk
		// per item.
		sh.nextSweep = sh.clock + ttl/4
		return
	}
	if s.now > sh.clock {
		sh.clock = s.now
	}
	if sh.clock < sh.nextSweep {
		return
	}
	m.sweep(sh, ttl)
}

// sweep evicts every session idle past the TTL at the current shard
// stream time. Registry mutation and bookkeeping happen under sh.mu
// (manager bookkeeping nested inside, same lock order as Open);
// OnReap callbacks run after both locks drop, in sorted session order
// so replays observe identical callback sequences regardless of map
// iteration order.
func (m *Manager) sweep(sh *shard, ttl float64) {
	now := sh.clock
	sh.nextSweep = now + ttl/4
	var evicted []string
	sh.mu.Lock()
	for id, s := range sh.sessions {
		var ref float64
		switch {
		case s.haveNow:
			ref = s.now
		case s.haveRef:
			ref = s.reapRef
		default:
			// Opened but never fed: no clock of its own. Anchor its
			// grace period at the first sweep that sees it, granting
			// one full TTL from now.
			s.reapRef, s.haveRef = now, true
			continue
		}
		if now-ref > ttl {
			evicted = append(evicted, id)
		}
	}
	for _, id := range evicted {
		delete(sh.sessions, id)
	}
	if n := len(evicted); n > 0 {
		m.mu.Lock()
		m.nOpen -= n
		m.mu.Unlock()
		m.sessOpen.Add(-float64(n))
	}
	sh.mu.Unlock()
	if len(evicted) == 0 {
		return
	}
	m.counters.reaped.Add(uint64(len(evicted)))
	sort.Strings(evicted)
	cb := m.cfg.OnReap
	for _, id := range evicted {
		m.journalReap(id, now)
		if cb != nil {
			cb(id, now)
		}
	}
}
