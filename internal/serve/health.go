package serve

import (
	"math"

	"vihot/internal/core"
)

// Health is a session's degradation state. The state machine is
//
//	HEALTHY → DEGRADED → COASTING → STALE
//	   ↑_________↑___________↑________↓   (recovery)
//
// driven entirely by the timestamps of the items a session ingests —
// the serving engine has no wall clock of its own, so "staleness" is
// measured on the stream's own timeline and the machine behaves
// identically in concurrent, deterministic, and replayed executions.
//
// The primary driver is CSI starvation: the gap between the session
// clock and the last usable (sanitized, in-order) CSI sample. Small
// gaps degrade confidence; larger gaps switch the session to coasting
// on the camera or the tracker's forecast; beyond StaleAfterS the
// session is STALE and emits nothing at all. Secondary sensor outages
// (IMU or camera silence after the sensor has been seen once) cap the
// state at DEGRADED — tracking still works, but the steering
// identifier or fallback is flying blind.
//
// Recovery is hysteretic: when CSI resumes after a coasting-or-worse
// episode the tracker is restarted (its window would otherwise span
// the blackout) and the session holds at DEGRADED until CSI has been
// flowing for RecoverAfterS, so one stray packet cannot flap the
// session back to HEALTHY.
type Health uint8

// Degradation states, ordered from best to worst.
const (
	Healthy  Health = iota // all sensors flowing, estimates at full confidence
	Degraded               // brief CSI gap or secondary-sensor outage
	Coasting               // CSI starved: serving camera/forecast estimates
	Stale                  // CSI gone too long: no estimates emitted
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Coasting:
		return "coasting"
	case Stale:
		return "stale"
	default:
		return "Health(?)"
	}
}

// Confidence maps a degradation state to the confidence weight the
// session's estimates carry: 1 when healthy, 0 when stale (stale
// sessions emit nothing, so the zero is never attached to an
// estimate — it is the answer Manager.Health implies for consumers
// polling a silent session).
func (h Health) Confidence() float64 {
	switch h {
	case Healthy:
		return 1
	case Degraded:
		return 0.6
	case Coasting:
		return 0.3
	default:
		return 0
	}
}

// HealthConfig tunes the per-session degradation state machine. The
// zero value enables the machine with the defaults below; set Disable
// to opt out entirely (no watchdogs, no coasting, no suppression).
type HealthConfig struct {
	// Disable turns the state machine off.
	Disable bool
	// DegradedAfterS is the CSI gap (seconds of stream time) that
	// leaves HEALTHY. Default 0.25 — two orders of magnitude above the
	// link's normal worst-case inter-frame gap (~34 ms), so CSMA
	// backoff never trips it.
	DegradedAfterS float64
	// CoastAfterS is the CSI gap that enters COASTING. Default 0.75.
	CoastAfterS float64
	// StaleAfterS is the CSI gap that enters STALE. Default 1.5.
	StaleAfterS float64
	// RecoverAfterS is how long CSI must flow again after a
	// coasting-or-worse episode before the session re-enters HEALTHY.
	// Default 0.5.
	RecoverAfterS float64
	// CoastEveryS throttles coasted estimates. Default 0.1 — a 10 Hz
	// heartbeat, deliberately below the tracker's healthy cadence so a
	// coasting session is visibly degraded in its output rate too.
	CoastEveryS float64
	// SensorOutageS is how long the IMU or camera may fall silent —
	// once that sensor has been seen at all — before the session is
	// flagged DEGRADED. Default 1.0, matching the pipeline's own IMU
	// watchdog.
	SensorOutageS float64
	// FreshCameraS is how recent the last valid camera estimate must
	// be for coasting to relay it instead of the tracker's forecast.
	// Default 0.2.
	FreshCameraS float64
}

// withDefaults fills unset fields.
func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.DegradedAfterS <= 0 {
		hc.DegradedAfterS = 0.25
	}
	if hc.CoastAfterS <= 0 {
		hc.CoastAfterS = 0.75
	}
	if hc.StaleAfterS <= 0 {
		hc.StaleAfterS = 1.5
	}
	if hc.RecoverAfterS <= 0 {
		hc.RecoverAfterS = 0.5
	}
	if hc.CoastEveryS <= 0 {
		hc.CoastEveryS = 0.1
	}
	if hc.SensorOutageS <= 0 {
		hc.SensorOutageS = 1.0
	}
	if hc.FreshCameraS <= 0 {
		hc.FreshCameraS = 0.2
	}
	return hc
}

// coastMaxHorizonS bounds how far ahead of its last real estimate a
// coasting session will extrapolate the tracker's forecast; beyond
// this the profile cursor has nothing credible left to say and the
// coasted yaw simply holds.
const coastMaxHorizonS = 0.4

// observe advances the session clock to t and drives the state
// machine. It is called (worker-goroutine-only, like all per-session
// state) for every processed item — before the item mutates the
// sensor freshness it is about to prove.
func (m *Manager) observe(s *session, t float64) {
	s.advanceClock(t)
	target := m.targetHealth(s)
	if target != s.h {
		m.transition(s, target)
	}
}

// targetHealth computes the state the session should be in at its
// current clock.
func (m *Manager) targetHealth(s *session) Health {
	hc := &m.cfg.Health
	h := Healthy
	if s.haveCSI {
		switch gap := s.now - s.lastCSI; {
		case gap > hc.StaleAfterS:
			h = Stale
		case gap > hc.CoastAfterS:
			h = Coasting
		case gap > hc.DegradedAfterS:
			h = Degraded
		}
	}
	if h == Healthy && s.recovering {
		if s.now-s.recoverStart < hc.RecoverAfterS {
			h = Degraded
		} else {
			s.recovering = false
		}
	}
	if h == Healthy {
		// Secondary sensors cap the state at DEGRADED: losing the IMU
		// or camera does not starve the tracker, it blinds the
		// steering identifier / fallback.
		if (s.haveIMU && s.now-s.lastIMU > hc.SensorOutageS) ||
			(s.haveCam && s.now-s.lastCam > hc.SensorOutageS) {
			h = Degraded
		}
	}
	return h
}

// transition records a state change: counters, the published atomic,
// and the optional OnHealth sink.
func (m *Manager) transition(s *session, to Health) {
	from := s.h
	s.h = to
	s.health.Store(uint32(to))
	switch to {
	case Degraded:
		m.counters.toDegraded.Add(1)
	case Coasting:
		m.counters.toCoasting.Add(1)
	case Stale:
		m.counters.toStale.Add(1)
	case Healthy:
		m.counters.recoveries.Add(1)
	}
	m.journalHealth(s, from, to)
	if m.cfg.OnHealth != nil {
		m.cfg.OnHealth(s.id, s.now, from, to)
	}
}

// noteCSIResumed runs on every accepted CSI sample, after observe (so
// the starvation episode the gap proves has already been recorded) and
// before lastCSI moves forward. A gap past the coasting threshold
// means the tracker's window spans the blackout: restart it clean and
// hold the session at DEGRADED until flow is re-established.
func (m *Manager) noteCSIResumed(s *session, t float64) {
	if !s.haveCSI || t-s.lastCSI <= m.cfg.Health.CoastAfterS {
		return
	}
	s.pl.Tracker().Reset()
	m.counters.trackerResets.Add(1)
	s.recovering = true
	s.recoverStart = t
}

// maybeCoast emits a camera- or forecast-derived estimate while the
// session is COASTING. It runs on secondary-sensor items only — the
// machine is event-driven, so a session starved of *everything* goes
// silent rather than inventing a clock.
func (m *Manager) maybeCoast(s *session, t float64) {
	if s.h != Coasting || t < s.nextCoast {
		return
	}
	hc := &m.cfg.Health
	var est core.Estimate
	switch {
	case s.haveCam && t-s.lastCam <= hc.FreshCameraS:
		// The camera knows yaw, not the seat position — carry the last
		// tracked position forward exactly like the forecast branch, so
		// downstream fusion never sees it flicker to zero mid-coast.
		est = core.Estimate{Time: t, Yaw: s.camYaw, Source: core.SourceCamera,
			Position: s.lastEst.Position}
	case s.hasEst:
		horizon := math.Min(t-s.lastEst.Time, coastMaxHorizonS)
		yaw := s.pl.Tracker().Forecast(s.lastEst, horizon)
		est = core.Estimate{Time: t, Yaw: yaw, Source: core.SourceCoast, Position: s.lastEst.Position}
	default:
		// Nothing credible to coast on yet.
		return
	}
	s.nextCoast = t + hc.CoastEveryS
	m.counters.coasted.Add(1)
	m.emit(s, est)
}

// emit delivers one estimate to the sinks and counts it.
func (m *Manager) emit(s *session, est core.Estimate) {
	m.counters.estimates.Add(1)
	m.journalEstimate(s, est)
	if m.cfg.OnEstimate != nil {
		m.cfg.OnEstimate(s.id, est)
	}
	if m.cfg.OnEstimateHealth != nil {
		m.cfg.OnEstimateHealth(s.id, est, s.h, s.h.Confidence())
	}
}

// Health returns the session's current degradation state. It is safe
// to call concurrently with pushers and workers; for a closed or
// unknown session it returns (Healthy, false).
func (m *Manager) Health(id string) (Health, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	if s == nil {
		return Healthy, false
	}
	return Health(s.health.Load()), true
}
