// Package serve is the concurrent multi-session tracking engine: many
// independent driver Pipelines running behind one facade, sharded
// across worker goroutines so a single receiver process can track a
// whole fleet of cabins.
//
// # Concurrency model
//
// A Manager owns N shards. Every session is assigned permanently to
// the shard hash(sessionID) mod N, and each shard is serviced by
// exactly one worker goroutine that owns its sessions' Pipelines plus
// one dtw.Matcher of scratch shared by all of them (see the ownership
// rules on dtw.Matcher and core.Tracker.SetMatcher). Because only the
// owning worker ever touches a pipeline, the DTW hot path runs with no
// locks at all; the only synchronization is the shard's bounded ingest
// queue.
//
// Ordering guarantees: items pushed for one session from one goroutine
// are processed in push order — they land on one shard's FIFO queue
// and one worker drains it. Items for different sessions on different
// shards have no relative ordering. Pushing one session's stream from
// multiple goroutines concurrently forfeits that session's ordering
// (the queue serializes arbitrarily), so don't.
//
// Load shedding: each shard queue is bounded. When a push finds the
// queue full the oldest queued item — the stalest frame, the one least
// likely to still matter for a live estimate — is dropped and counted
// in Counters.DroppedStale. CSI at 500 Hz is redundant; a tracker
// absorbs gaps the same way it absorbs CSMA jitter.
//
// Multi-core ingest: Push/PushBatch serialize all pushers on each
// shard's mutex, which is fine for one receive loop but caps scaling
// when many cores feed the same manager. NewProducer returns a
// per-goroutine lock-free lane — one single-producer/single-consumer
// ring per shard, drained by the same shard worker alongside the
// mutex ring — whose enqueue is a couple of atomic operations and
// whose worker wakeups are batched (at most one per shard per batch,
// and only when the worker is actually about to sleep). A full
// producer ring drops the new item rather than the oldest (the
// consumer owns the other end); the accounting identity is unchanged.
// See the Producer type and the memory-model note in spsc.go.
//
// The OnEstimate sink is invoked from worker goroutines: serially for
// any one session, concurrently across sessions on different shards.
// It must therefore be safe for concurrent use keyed by session.
//
// Profile resolution: Open takes a caller-supplied *core.Profile;
// OpenByKey resolves one through the Config.Profiles store instead.
// Either way the profile is shared by reference across every session
// opened over it — profiles are immutable (core.Profile's contract),
// so sharing needs no locks and costs one profile of memory per
// driver, not per session. Evicting a profile from the store never
// affects sessions already holding it.
//
// # Deterministic mode
//
// Config.Deterministic disables the workers entirely: Push and
// PushBatch process items synchronously on the caller's goroutine, in
// submission order, with no queueing and no drops. Per-session results
// are estimate-for-estimate identical to the concurrent mode (proved
// by TestSessionManagerEquivalence) because pipelines are confined to
// one goroutine either way and matcher scratch carries no state; the
// mode exists so tests and replay tools get a totally ordered
// execution. A deterministic Manager is not safe for concurrent use.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/dtw"
	"vihot/internal/imu"
	"vihot/internal/journal"
	"vihot/internal/obs"
	"vihot/internal/profilestore"
)

// Errors returned by the Manager.
var (
	ErrClosed         = errors.New("serve: manager closed")
	ErrDuplicateID    = errors.New("serve: session already open")
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrNoSessionID    = errors.New("serve: empty session id")
	ErrNoProfileStore = errors.New("serve: no profile store configured")
)

// Config tunes a Manager. The zero value selects the defaults.
type Config struct {
	// Shards is the number of worker goroutines (and session shards).
	// Default 4.
	Shards int
	// QueueLen is the per-shard bounded queue capacity in items.
	// Default 4096. When a queue is full the oldest item is shed.
	QueueLen int
	// Deterministic runs every push synchronously on the caller's
	// goroutine: no workers, no queues, no drops. For tests and
	// replay; see the package comment.
	Deterministic bool
	// OnEstimate receives every estimate any session produces. Called
	// serially per session, concurrently across shards; nil discards
	// estimates (Counters still tally them).
	OnEstimate func(session string, est core.Estimate)

	// Profiles, if set, lets OpenByKey resolve driver profiles by key
	// through the store's sharded cache instead of requiring callers
	// to load and hand over a *core.Profile themselves. Sessions
	// opened for the same key share one immutable profile instance
	// (see the core.Profile immutability contract); concurrent opens
	// for a cold key collapse to a single loader read inside the
	// store. Optional: Open keeps working without it.
	Profiles *profilestore.Store

	// Health tunes the per-session degradation state machine (see the
	// Health type). The zero value enables it with defaults;
	// Health.Disable opts out.
	Health HealthConfig
	// OnHealth, if set, receives every degradation-state transition.
	// Same concurrency contract as OnEstimate: serial per session,
	// concurrent across shards.
	OnHealth func(session string, t float64, from, to Health)
	// OnEstimateHealth, if set, receives every emitted estimate
	// together with the session's degradation state and confidence
	// weight at emission time. Same concurrency contract as
	// OnEstimate.
	OnEstimateHealth func(session string, est core.Estimate, h Health, confidence float64)

	// SessionTTLS, when > 0, enables stream-time idle-session reaping:
	// a session whose own clock lags its shard's stream clock (the max
	// admitted timestamp across the shard's sessions) by more than
	// this many seconds is evicted, exactly as if CloseSession had
	// been called. Sessions opened but never fed are granted one full
	// TTL from the first sweep that sees them. The sweep runs on the
	// stream's own timeline — the clocks the health machine already
	// maintains — so it reads no wall clocks and reaps at identical
	// points across deterministic replays. Zero disables reaping.
	SessionTTLS float64
	// OnReap, if set, receives every TTL eviction: the reaped session
	// and the shard stream time at which the sweep fired. Same
	// concurrency contract as OnHealth: serial per shard, concurrent
	// across shards. Not invoked for CloseSession or Close.
	OnReap func(session string, t float64)

	// Journal, if set, receives one durable record per delivered
	// estimate, health transition, idle-TTL reap, and explicit
	// CloseSession — the write-behind journal a crashed receiver
	// recovers warm-restart state from (journal.Recover). Appends are
	// non-blocking by the journal's contract: a slow disk sheds
	// records (counted in JournalDropped), never stalls a worker. The
	// manager does not own the writer — the caller closes it after
	// CloseDrain, which is what flushes the tail batch and writes the
	// clean-shutdown trailer.
	Journal *journal.Writer

	// RecycleFrames transfers ownership of every pushed KindFrame
	// frame to the manager: once the frame has been sanitized or
	// dropped (queue shed, unknown session, closed manager, abandoned
	// backlog) it is released to the csi frame pool for reuse by
	// wifi.DecodePooled. Callers must push frames drawn from that pool
	// (or otherwise unshared) and must not retain or re-push them.
	// Off by default: the manager then never touches frames it did
	// not allocate, and replaying one item slice twice stays legal.
	RecycleFrames bool

	// Metrics, if set, registers the manager's metrics there (traffic
	// counters, session gauge, per-stage latency and queue-dwell
	// histograms) for scraping — typically via obs.NewMux. If nil the
	// counters still work (Counters/Snapshot read them) but stage
	// timing is disabled: the manager reads no wall clocks at all, so
	// deterministic runs stay byte-identical.
	Metrics *obs.Registry
	// Trace, if set, records per-item spans (pipeline stages plus
	// queue dwell) into the tracer's ring for JSON export. Independent
	// of Metrics; either enables stage timing.
	Trace *obs.Tracer
}

// ItemKind discriminates what an Item carries.
type ItemKind uint8

// Item kinds.
const (
	KindPhase  ItemKind = iota // a sanitized CSI phase sample
	KindFrame                  // a raw CSI frame; the worker sanitizes
	KindIMU                    // a phone IMU reading
	KindCamera                 // a fallback-camera estimate
)

// Item is one ingested sample addressed to a session. Exactly the
// fields implied by Kind are meaningful.
type Item struct {
	Session string
	Kind    ItemKind
	Time    float64         // KindPhase
	Phi     float64         // KindPhase
	Frame   *csi.Frame      // KindFrame
	IMU     imu.Reading     // KindIMU
	Camera  camera.Estimate // KindCamera

	// enqNS is the wall-clock enqueue instant (UnixNano), stamped only
	// when instrumentation is on, so workers can report queue dwell.
	enqNS int64
}

// Counters tallies a Manager's traffic. Every field is a
// registry-backed obs.Counter updated with atomic adds — no shared
// lock sits between shards — so a Snapshot is monotone per field but
// not a cross-field consistent cut. When Config.Metrics is set these
// are the same series a scrape sees (DESIGN.md §9 names them); when it
// is not, they live in a private registry and Snapshot is the only
// reader.
type Counters struct {
	phasesIn        *obs.Counter
	framesIn        *obs.Counter
	imuIn           *obs.Counter
	cameraIn        *obs.Counter
	processed       *obs.Counter
	estimates       *obs.Counter
	droppedStale    *obs.Counter
	droppedUnknown  *obs.Counter
	sanitizeErrors  *obs.Counter
	rejectedTime    *obs.Counter
	suppressedStale *obs.Counter
	coasted         *obs.Counter
	toDegraded      *obs.Counter
	toCoasting      *obs.Counter
	toStale         *obs.Counter
	recoveries      *obs.Counter
	trackerResets   *obs.Counter
	rejectedKind    *obs.Counter
	rejectedClosed  *obs.Counter
	droppedClosed   *obs.Counter
	reaped          *obs.Counter
	closed          *obs.Counter
	journalAppended *obs.Counter
	journalDropped  *obs.Counter

	// jw, when journaling is configured, is where Snapshot reads the
	// asynchronous write/sync failure count from — errors happen on
	// the journal's writer goroutine, long after the append that
	// caused them returned.
	jw *journal.Writer
}

// CounterSnapshot is one observation of the counters. Conservation:
// every item the manager took accounting responsibility for is
// eventually processed, dropped, or was rejected at the door for a
// corrupt kind, so after a Flush (or CloseDrain) with no concurrent
// pushers,
//
//	Total() == Processed + DroppedStale + DroppedUnknown +
//	           DroppedClosed + RejectedKind
//
// where DroppedClosed is zero unless a hard Close abandoned a
// backlog, and Estimates equals the number of OnEstimate invocations
// (pipeline estimates that were not stale-suppressed, plus Coasted).
// RejectedClosed items were refused before any accounting and are
// deliberately outside Total: a closed manager accepts no
// responsibility for them.
type CounterSnapshot struct {
	PhasesIn       uint64 // KindPhase items accepted into a queue
	FramesIn       uint64 // KindFrame items accepted into a queue
	IMUIn          uint64 // KindIMU items accepted into a queue
	CameraIn       uint64 // KindCamera items accepted into a queue
	Processed      uint64 // items that reached their session's pipeline stage
	Estimates      uint64 // estimates delivered across all sessions
	DroppedStale   uint64 // items shed because a shard queue was full
	DroppedUnknown uint64 // items addressed to sessions never opened (or already closed/reaped)
	DroppedClosed  uint64 // queued items abandoned by a hard Close
	SanitizeErrors uint64 // KindFrame items whose sanitizer rejected the frame
	RejectedTime   uint64 // items rejected for non-finite, non-monotone, or far-future timestamps
	RejectedKind   uint64 // items refused at push for an unknown Item.Kind
	RejectedClosed uint64 // items refused at push because the manager was closed
	SessionsReaped uint64 // sessions evicted by the idle-TTL sweep
	SessionsClosed uint64 // sessions removed by explicit CloseSession

	// Durability traffic (Config.Journal; zero when journaling is
	// off). With journaling on for the whole run, after a drain:
	//
	//	JournalAppended + JournalDropped ==
	//	    Estimates + ToDegraded + ToCoasting + ToStale +
	//	    Recoveries + SessionsReaped + SessionsClosed
	//
	// JournalErrors counts asynchronous write/sync failures inside the
	// journal itself — records that were appended (so they sit on the
	// left of the identity) but may not have reached the disk.
	JournalAppended uint64 // records accepted by the write-behind journal
	JournalDropped  uint64 // records shed at append (queue full or journal closed)
	JournalErrors   uint64 // asynchronous journal write/sync failures

	// Degradation state machine traffic (see the Health type).
	SuppressedStale uint64 // pipeline estimates discarded because the session was STALE
	Coasted         uint64 // camera/forecast estimates emitted while COASTING
	ToDegraded      uint64 // transitions into DEGRADED
	ToCoasting      uint64 // transitions into COASTING
	ToStale         uint64 // transitions into STALE
	Recoveries      uint64 // transitions back into HEALTHY
	TrackerResets   uint64 // tracker restarts after a CSI blackout
}

// Total returns the number of items the manager is accountable for:
// everything accepted into a queue (the four kind counters) plus the
// items refused at push time for a corrupt Kind. RejectedClosed items
// are excluded — see the CounterSnapshot conservation note.
func (s CounterSnapshot) Total() uint64 {
	return s.PhasesIn + s.FramesIn + s.IMUIn + s.CameraIn + s.RejectedKind
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		PhasesIn:        c.phasesIn.Value(),
		FramesIn:        c.framesIn.Value(),
		IMUIn:           c.imuIn.Value(),
		CameraIn:        c.cameraIn.Value(),
		Processed:       c.processed.Value(),
		Estimates:       c.estimates.Value(),
		DroppedStale:    c.droppedStale.Value(),
		DroppedUnknown:  c.droppedUnknown.Value(),
		SanitizeErrors:  c.sanitizeErrors.Value(),
		RejectedTime:    c.rejectedTime.Value(),
		SuppressedStale: c.suppressedStale.Value(),
		Coasted:         c.coasted.Value(),
		ToDegraded:      c.toDegraded.Value(),
		ToCoasting:      c.toCoasting.Value(),
		ToStale:         c.toStale.Value(),
		Recoveries:      c.recoveries.Value(),
		TrackerResets:   c.trackerResets.Value(),
		RejectedKind:    c.rejectedKind.Value(),
		RejectedClosed:  c.rejectedClosed.Value(),
		DroppedClosed:   c.droppedClosed.Value(),
		SessionsReaped:  c.reaped.Value(),
		SessionsClosed:  c.closed.Value(),
		JournalAppended: c.journalAppended.Value(),
		JournalDropped:  c.journalDropped.Value(),
		JournalErrors:   journalErrors(c.jw),
	}
}

// journalErrors reads the configured journal's asynchronous failure
// count; zero without a journal.
func journalErrors(w *journal.Writer) uint64 {
	if w == nil {
		return 0
	}
	return w.Stats().Errors
}

// session is one driver's pipeline plus its degradation-state-machine
// bookkeeping. Everything except the published `health` atomic is
// touched only by its shard's worker goroutine (or the caller in
// deterministic mode).
type session struct {
	id string
	pl *core.Pipeline

	// health mirrors h for lock-free Manager.Health reads.
	health atomic.Uint32

	// clockBits mirrors now (as math.Float64bits) for the journal's
	// close records, which are written from the CloseSession caller
	// while the shard worker may still be advancing the clock. The
	// mirror is maintained only when mirror is set (journaling on), so
	// the uninstrumented hot path pays nothing for it.
	clockBits atomic.Uint64
	mirror    bool

	h       Health
	now     float64 // session clock: max admitted item timestamp
	haveNow bool

	lastCSI float64 // last accepted (sanitized, in-order) CSI sample
	haveCSI bool
	lastIMU float64
	haveIMU bool
	lastCam float64 // last valid camera estimate
	haveCam bool
	camYaw  float64 // yaw of that estimate, for camera coasting

	recovering   bool    // CSI resumed after coasting-or-worse; holding at DEGRADED
	recoverStart float64 // when flow resumed

	lastEst   core.Estimate // last emitted pipeline estimate, for forecast coasting
	hasEst    bool
	nextCoast float64 // coasted-output throttle

	// reapRef anchors the idle-TTL sweep for a session that has never
	// admitted an item (so has no clock of its own): the shard stream
	// time at which a sweep first saw it. Worker-only, like the rest.
	reapRef float64
	haveRef bool
}

// shard is one worker's world: a bounded FIFO ring of items plus the
// sessions (and shared matcher scratch) the worker owns.
type shard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Item
	head   int // index of the oldest queued item
	count  int
	closed bool
	busy   bool // worker is processing a drained chunk

	// sleeping is the worker's half of the Dekker wake handshake with
	// lock-free Producers: set (under mu) before the worker reads the
	// SPSC tails and cleared when it picks up work, so a producer that
	// published an item the worker missed is guaranteed to observe the
	// flag and broadcast. See the protocol note atop spsc.go.
	sleeping atomic.Bool

	// prings are the registered single-producer ingest rings. Appends
	// happen under mu (NewProducer); the worker snapshots the slice
	// under mu each drain cycle and reads the rings lock-free.
	prings []*spscRing

	// recycle mirrors Config.RecycleFrames so enqueue can release the
	// frames of items it sheds without reaching back to the Manager.
	recycle bool

	// sessions is written by Open/CloseSession/reap under mu and read
	// by the worker under mu; pipeline internals are worker-only.
	sessions map[string]*session
	matcher  *dtw.Matcher

	// Stream clock for the idle-TTL sweep: the max admitted timestamp
	// across the shard's sessions, plus the next stream time a sweep
	// is due at. Touched only by the goroutine that processes items
	// (the worker, or the caller in deterministic mode).
	clock     float64
	haveClock bool
	nextSweep float64
}

// enqueue appends items under one lock and one worker wakeup,
// shedding the stalest queued items when the ring is full. The wakeup
// fires only on the empty→non-empty edge: a worker with work in hand
// never sleeps, so re-signalling it per item would only burn futex
// calls on the ingest path.
//
// A closed shard's worker has exited (or is about to abandon the
// ring), so enqueue refuses the whole batch instead of queueing into
// a dead shard: closed=true, nothing queued, nothing counted here —
// the caller counts the rejection.
func (sh *shard) enqueue(items []Item) (dropped int, closed bool) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0, true
	}
	wasEmpty := sh.count == 0
	for _, it := range items {
		if sh.count == len(sh.ring) {
			// Shed the stalest queued item to make room. The shed
			// slot is exactly where the new item lands, so no zeroing
			// is needed — but a manager-owned frame must be released
			// now or it leaks to nowhere.
			if sh.recycle {
				if f := sh.ring[sh.head].Frame; f != nil {
					csi.PutFrame(f)
				}
			}
			sh.head = (sh.head + 1) % len(sh.ring)
			sh.count--
			dropped++
		}
		sh.ring[(sh.head+sh.count)%len(sh.ring)] = it
		sh.count++
	}
	if wasEmpty && sh.count > 0 {
		sh.cond.Broadcast()
	}
	sh.mu.Unlock()
	return dropped, false
}

func (sh *shard) push(it Item) (dropped, closed bool) {
	var one [1]Item
	one[0] = it
	d, c := sh.enqueue(one[:])
	return d > 0, c
}

// Manager runs many independent tracking sessions behind one facade.
// See the package comment for the concurrency model.
type Manager struct {
	cfg      Config
	shards   []*shard
	counters Counters
	obs      *managerObs // nil unless Metrics or Trace configured
	sessOpen *obs.Gauge
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
	nOpen  int
}

// New builds a Manager and, unless cfg.Deterministic, starts its
// workers. Close must be called to release them.
func New(cfg Config) *Manager {
	if cfg.Shards < 1 {
		cfg.Shards = 4
	}
	if cfg.Deterministic {
		cfg.Shards = 1
	}
	if cfg.QueueLen < 1 {
		cfg.QueueLen = 4096
	}
	cfg.Health = cfg.Health.withDefaults()
	m := &Manager{cfg: cfg}
	// The counters always exist (Snapshot is part of the API); without
	// a caller-supplied registry they live in a private one. Stage
	// timing, dwell tracking, and spans exist only on request.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.counters = newCounters(reg)
	m.counters.jw = cfg.Journal
	m.sessOpen = reg.Gauge("vihot_serve_sessions_open", "currently open tracking sessions")
	if cfg.Metrics != nil || cfg.Trace != nil {
		m.obs = newManagerObs(cfg.Metrics, cfg.Trace)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			ring:     make([]Item, cfg.QueueLen),
			recycle:  cfg.RecycleFrames,
			sessions: make(map[string]*session),
			matcher:  dtw.NewMatcher(256),
		}
		sh.cond = sync.NewCond(&sh.mu)
		m.shards = append(m.shards, sh)
	}
	if !cfg.Deterministic {
		for _, sh := range m.shards {
			m.wg.Add(1)
			go m.worker(sh)
		}
	}
	return m
}

// shardHash is FNV-1a inlined so routing a frame allocates nothing.
func shardHash(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

// shardIdx maps a session ID to its owning shard index.
func (m *Manager) shardIdx(id string) int {
	return int(shardHash(id) % uint32(len(m.shards)))
}

// shardFor maps a session ID to its owning shard.
func (m *Manager) shardFor(id string) *shard {
	return m.shards[m.shardIdx(id)]
}

// Counters exposes the traffic counters.
func (m *Manager) Counters() *Counters { return &m.counters }

// Sessions returns the number of open sessions.
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nOpen
}

// Open creates a tracking session over a caller-supplied driver
// profile. The session is pinned to one shard; its pipeline shares
// the shard worker's DTW scratch. The profile is adopted by
// reference, never copied — it must honour the core.Profile
// immutability contract, and the same instance may back any number of
// sessions (OpenByKey arranges exactly that through the store).
func (m *Manager) Open(id string, profile *core.Profile, cfg core.PipelineConfig) error {
	if id == "" {
		return ErrNoSessionID
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.mu.Unlock()
	pl, err := core.NewPipeline(profile, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %q: %w", id, err)
	}
	return m.adopt(&session{id: id, pl: pl, mirror: m.cfg.Journal != nil})
}

// adopt registers a fully built session with its shard. It is the
// single registration path — Open builds a fresh session, a cluster
// RestoreSession builds a pre-seeded one — so every session enters
// service through the same shutdown-atomic sequence.
func (m *Manager) adopt(s *session) error {
	sh := m.shardFor(s.id)
	sh.mu.Lock()
	// Close marks every shard closed under its own mutex, so checking
	// here (not just m.closed in the caller) makes registration atomic
	// with shutdown: a session can never land on a shard whose worker
	// has already been told to exit and so would never drain it.
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	if _, ok := sh.sessions[s.id]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateID, s.id)
	}
	// The pipeline's tracker adopts the shard's shared scratch before
	// any worker touches it; results are unchanged (matcher state does
	// not carry between calls).
	s.pl.Tracker().SetMatcher(sh.matcher)
	if m.obs != nil {
		// Stage observers run on the shard worker that owns the
		// pipeline; histograms and the tracer absorb the concurrency.
		mo := m.obs
		id := s.id
		s.pl.SetStageObserver(func(stage string, streamT float64, durNS int64) {
			mo.stage(id, stage, streamT, durNS)
		})
	}
	sh.sessions[s.id] = s
	// Bookkeeping nests inside sh.mu (lock order: shard before
	// manager, never the reverse) so the count and gauge move
	// atomically with the registration — Close's purge can therefore
	// never observe the session without its count, or vice versa.
	m.mu.Lock()
	m.nOpen++
	m.mu.Unlock()
	m.sessOpen.Add(1)
	sh.mu.Unlock()
	return nil
}

// OpenByKey creates a tracking session over the profile the
// configured store resolves for key (driver/cabin ID). Cold keys cost
// one loader read no matter how many sessions race to open them, hot
// keys are a lock-and-probe, and every session for one key references
// the same immutable profile instance — a fleet caching one profile
// per driver, not per session. Requires Config.Profiles.
func (m *Manager) OpenByKey(id, key string, cfg core.PipelineConfig) error {
	if id == "" {
		return ErrNoSessionID
	}
	if m.cfg.Profiles == nil {
		return ErrNoProfileStore
	}
	p, err := m.cfg.Profiles.Get(key)
	if err != nil {
		return fmt.Errorf("serve: open %q by key %q: %w", id, key, err)
	}
	return m.Open(id, p, cfg)
}

// KeyedOpen names one session of a batch open: the session ID and the
// profile key it tracks against.
type KeyedOpen struct {
	ID  string // session ID
	Key string // profile key (driver/cabin ID)
}

// OpenSessionsByKey opens a fleet of sessions in one call: every
// distinct profile key resolves through a single Profiles.GetMany —
// so N sessions over M driver styles cost exactly M loader calls,
// cold loads overlapping, duplicates shared — and each session then
// opens over its shared immutable instance. The returned slice aligns
// with opens: errs[i] is nil when opens[i] is serving. Per-session
// failures (a broken profile, a duplicate ID) fail that session only.
// The PR 4 cold-storm guarantee holds across calls too: batches and
// concurrent OpenByKey storms for one key join one in-flight load.
// Requires Config.Profiles.
func (m *Manager) OpenSessionsByKey(opens []KeyedOpen, cfg core.PipelineConfig) []error {
	errs := make([]error, len(opens))
	if len(opens) == 0 {
		return errs
	}
	if m.cfg.Profiles == nil {
		for i := range errs {
			errs[i] = ErrNoProfileStore
		}
		return errs
	}
	keys := make([]string, len(opens))
	for i, o := range opens {
		keys[i] = o.Key
	}
	ps, perrs := m.cfg.Profiles.GetMany(keys)
	for i, o := range opens {
		if o.ID == "" {
			errs[i] = ErrNoSessionID
			continue
		}
		if perrs[i] != nil {
			errs[i] = fmt.Errorf("serve: open %q by key %q: %w", o.ID, o.Key, perrs[i])
			continue
		}
		errs[i] = m.Open(o.ID, ps[i], cfg)
	}
	return errs
}

// Profile returns the profile instance a session tracks against and
// whether the session exists. The pointer identifies the shared
// instance (sessions opened via one store key return the very same
// profile); treat it as read-only.
func (m *Manager) Profile(id string) (*core.Profile, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return s.pl.Profile(), true
}

// CloseSession removes a session. Items still queued for it are
// discarded as they drain (counted in DroppedUnknown, their pooled
// frames released when Config.RecycleFrames is set).
func (m *Manager) CloseSession(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	delete(sh.sessions, id)
	if ok {
		m.mu.Lock()
		m.nOpen--
		m.mu.Unlock()
		m.sessOpen.Add(-1)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	m.counters.closed.Add(1)
	m.journalClose(s)
	return nil
}

// recycle returns a manager-owned frame to the csi pool. It is a
// no-op unless Config.RecycleFrames transferred frame ownership to
// the manager; nil frames are ignored either way.
func (m *Manager) recycle(f *csi.Frame) {
	if m.cfg.RecycleFrames && f != nil {
		csi.PutFrame(f)
	}
}

// Push ingests one item. In concurrent mode it enqueues (shedding the
// shard's stalest item when full) and returns immediately; in
// deterministic mode it processes the item before returning. Items
// with an unknown Kind are refused and counted in RejectedKind;
// pushes against a closed manager are refused and counted in
// RejectedClosed.
func (m *Manager) Push(it Item) {
	if it.Kind > KindCamera {
		// A corrupt kind byte means no case of process() could count
		// or route the item — refuse it while the accounting can
		// still see it, so Total() conserves (DESIGN.md §11).
		m.counters.rejectedKind.Add(1)
		m.recycle(it.Frame)
		return
	}
	sh := m.shardFor(it.Session)
	if m.cfg.Deterministic {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			m.counters.rejectedClosed.Add(1)
			m.recycle(it.Frame)
			return
		}
		m.count(it)
		sh.mu.Lock()
		s := sh.sessions[it.Session]
		sh.mu.Unlock()
		m.process(sh, s, it)
		m.afterProcess(sh, s)
		return
	}
	if m.obs != nil {
		it.enqNS = time.Now().UnixNano()
	}
	dropped, closed := sh.push(it)
	if closed {
		m.counters.rejectedClosed.Add(1)
		m.recycle(it.Frame)
		return
	}
	m.count(it)
	if dropped {
		m.counters.droppedStale.Add(1)
	}
}

// rejectBadKinds strips items whose Kind no process() case could
// route, counting each in RejectedKind. The common all-valid batch is
// returned as-is; a batch with rejects is compacted into a fresh
// slice so the caller's backing array is never reordered.
func (m *Manager) rejectBadKinds(items []Item) []Item {
	bad := 0
	for i := range items {
		if items[i].Kind > KindCamera {
			bad++
		}
	}
	if bad == 0 {
		return items
	}
	kept := make([]Item, 0, len(items)-bad)
	for i := range items {
		if items[i].Kind > KindCamera {
			m.counters.rejectedKind.Add(1)
			m.recycle(items[i].Frame)
			continue
		}
		kept = append(kept, items[i])
	}
	return kept
}

// enqueueShard routes one shard's slice of a batch through enqueue
// and settles the accounting: accepted items are counted by kind,
// sheds in DroppedStale, and a closed-shard refusal in RejectedClosed
// (with the manager-owned frames released).
func (m *Manager) enqueueShard(sh *shard, items []Item) {
	d, closed := sh.enqueue(items)
	if closed {
		m.counters.rejectedClosed.Add(uint64(len(items)))
		for i := range items {
			m.recycle(items[i].Frame)
		}
		return
	}
	for i := range items {
		m.count(items[i])
	}
	if d > 0 {
		m.counters.droppedStale.Add(uint64(d))
	}
}

// PushBatch ingests a batch with one queue lock per destination shard
// rather than one per item — the cheap ingest path a receiver loop
// should batch into. Relative order is preserved per shard (hence per
// session); the batch is not atomic across shards. Unknown kinds and
// closed-manager refusals are counted exactly as in Push.
func (m *Manager) PushBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	if m.cfg.Deterministic {
		for i := range items {
			m.Push(items[i])
		}
		return
	}
	items = m.rejectBadKinds(items)
	if len(items) == 0 {
		return
	}
	m.stampBatch(items)
	if len(m.shards) == 1 {
		m.enqueueShard(m.shards[0], items)
		return
	}
	// Group by shard, preserving in-batch order within each group.
	idx := make([]int, len(items))
	for i := range items {
		idx[i] = m.shardIdx(items[i].Session)
	}
	byShard := make([]Item, 0, len(items))
	for si, sh := range m.shards {
		byShard = byShard[:0]
		for i := range items {
			if idx[i] == si {
				byShard = append(byShard, items[i])
			}
		}
		if len(byShard) == 0 {
			continue
		}
		m.enqueueShard(sh, byShard)
	}
}

// stampBatch marks a batch's enqueue instant for queue-dwell
// tracking: one clock read covers the whole batch, since its items
// enter their queues together.
func (m *Manager) stampBatch(items []Item) {
	if m.obs == nil {
		return
	}
	now := time.Now().UnixNano()
	for i := range items {
		items[i].enqNS = now
	}
}

func (m *Manager) count(it Item) {
	switch it.Kind {
	case KindPhase:
		m.counters.phasesIn.Add(1)
	case KindFrame:
		m.counters.framesIn.Add(1)
	case KindIMU:
		m.counters.imuIn.Add(1)
	case KindCamera:
		m.counters.cameraIn.Add(1)
	}
}

// drainChunk is how many items a worker claims per queue lock.
const drainChunk = 256

// maxForwardJumpS bounds how far ahead of the session clock a single
// item may jump. UDP has no payload integrity beyond its 16-bit
// checksum; a bit flip in a wire timestamp usually decodes to a huge
// but finite float64, and adopting one would slam every staleness
// watchdog past its threshold and leave the session clock wedged in
// the far future, rejecting all legitimate traffic forever. Five
// seconds is two orders of magnitude above any legitimate inter-item
// gap a live stream produces.
const maxForwardJumpS = 5.0

// advanceClock moves the session clock forward. It is maintained even
// when the health machine is disabled: the forward-jump guard needs
// it.
func (s *session) advanceClock(t float64) {
	if !s.haveNow || t > s.now {
		s.now, s.haveNow = t, true
		if s.mirror {
			s.clockBits.Store(math.Float64bits(t))
		}
	}
}

// admitTime validates an item timestamp against the session clock —
// finite, and not implausibly far in the future. Rejections count in
// RejectedTime.
func (m *Manager) admitTime(s *session, t float64) bool {
	if math.IsNaN(t) || math.IsInf(t, 0) || (s.haveNow && t > s.now+maxForwardJumpS) {
		m.counters.rejectedTime.Add(1)
		return false
	}
	return true
}

// worker services one shard until Close, draining both ingest lanes:
// the shared mutex ring and every registered SPSC producer ring.
func (m *Manager) worker(sh *shard) {
	defer m.wg.Done()
	var (
		chunk    []Item
		resolved []*session
		rings    []*spscRing
	)
	for {
		sh.mu.Lock()
		// Arm the wake handshake BEFORE reading the SPSC tails in
		// spscPending: a producer publishes its tail first and reads
		// sleeping second, so whichever side loses the race still
		// observes the other's store (sequential consistency) and no
		// wakeup is lost. The flag stays set across Wait wakeups —
		// the loop condition re-reads the tails each pass.
		sh.sleeping.Store(true)
		for sh.count == 0 && !sh.closed && !sh.spscPending() {
			// Idle: let Flush observe the empty, not-busy state.
			sh.busy = false
			sh.cond.Broadcast()
			sh.cond.Wait()
		}
		sh.sleeping.Store(false)
		if sh.closed {
			// Hard close: abandon whatever is still queued. Every
			// abandoned item is counted (DroppedClosed) so Total()
			// conserves, its slot zeroed so the ring pins nothing, and
			// its pooled frame released. CloseDrain never reaches here
			// with a backlog — it flushes first.
			n := sh.count
			for i := 0; i < n; i++ {
				j := (sh.head + i) % len(sh.ring)
				if sh.recycle {
					if f := sh.ring[j].Frame; f != nil {
						csi.PutFrame(f)
					}
				}
				sh.ring[j] = Item{}
			}
			sh.head, sh.count = 0, 0
			if n > 0 {
				m.counters.droppedClosed.Add(uint64(n))
			}
			// Producer rings are sealed and swept under the same mutex
			// hold, so no registration or publish can slip between the
			// backlog abandon and the sweep.
			m.sweepSPSC(sh)
			sh.cond.Broadcast()
			sh.mu.Unlock()
			return
		}
		n := sh.count
		if n > drainChunk {
			n = drainChunk
		}
		chunk = chunk[:0]
		for i := 0; i < n; i++ {
			j := (sh.head + i) % len(sh.ring)
			chunk = append(chunk, sh.ring[j])
			// Zero the drained slot: a stale copy left behind would pin
			// its *csi.Frame (up to QueueLen per shard) until the slot
			// happened to be overwritten.
			sh.ring[j] = Item{}
		}
		sh.head = (sh.head + n) % len(sh.ring)
		sh.count -= n
		sh.busy = true
		rings = append(rings[:0], sh.prings...)
		sh.mu.Unlock()

		// Drain the producer rings lock-free: the worker is the only
		// consumer, so this is two atomic loads and one store per ring.
		for _, r := range rings {
			chunk = r.drain(chunk, drainChunk)
		}

		// Resolve sessions for the whole chunk under one lock; the
		// registry mutates only on Open/CloseSession/reap, and pipeline
		// processing below runs lock-free (worker-owned state only).
		resolved = resolved[:0]
		sh.mu.Lock()
		for i := range chunk {
			resolved = append(resolved, sh.sessions[chunk[i].Session])
		}
		sh.mu.Unlock()
		for i := range chunk {
			m.process(sh, resolved[i], chunk[i])
			m.afterProcess(sh, resolved[i])
			chunk[i] = Item{} // release the frame pointer promptly
			resolved[i] = nil // and the session
		}
	}
}

// process runs one item through its session's pipeline and the
// degradation state machine. Only the shard's owning goroutine calls
// this for a given shard. Each sensor item observes the session clock
// twice: once before it updates its sensor's freshness — so the
// starvation episode an arrival gap proves is recorded even when the
// very same item ends it — and once after, so recovery starts on the
// item that delivers it.
func (m *Manager) process(sh *shard, s *session, it Item) {
	if s == nil {
		m.counters.droppedUnknown.Add(1)
		m.recycle(it.Frame)
		return
	}
	m.counters.processed.Add(1)
	if m.obs != nil && it.enqNS != 0 {
		m.obs.dwell(it.Session, streamTime(it), time.Now().UnixNano()-it.enqNS)
	}
	hm := !m.cfg.Health.Disable
	switch it.Kind {
	case KindIMU:
		t := it.IMU.Time
		if !m.admitTime(s, t) {
			return
		}
		if hm {
			m.observe(s, t)
		} else {
			s.advanceClock(t)
		}
		s.pl.PushIMU(it.IMU)
		if it.IMU.Finite() {
			s.lastIMU, s.haveIMU = t, true
		}
		if hm {
			m.observe(s, t)
			m.maybeCoast(s, t)
		}
		return
	case KindCamera:
		t := it.Camera.Time
		if !m.admitTime(s, t) {
			return
		}
		if hm {
			m.observe(s, t)
		} else {
			s.advanceClock(t)
		}
		s.pl.PushCamera(it.Camera)
		if it.Camera.Valid && !math.IsNaN(it.Camera.Yaw) && !math.IsInf(it.Camera.Yaw, 0) {
			s.lastCam, s.haveCam, s.camYaw = t, true, it.Camera.Yaw
		}
		if hm {
			m.observe(s, t)
			m.maybeCoast(s, t)
		}
		return
	case KindFrame:
		var t0 time.Time
		if m.obs != nil {
			t0 = time.Now()
		}
		ft := it.Frame.Time
		phi, err := csi.Sanitize(it.Frame, 0, 1)
		if m.obs != nil {
			m.obs.stage(s.id, core.StageSanitize, ft, time.Since(t0).Nanoseconds())
		}
		// The sanitizer is the last reader of the raw frame either way:
		// from here on only (ft, phi) matter, so a pooled frame goes
		// back for reuse before the pipeline even runs.
		m.recycle(it.Frame)
		it.Frame = nil
		if err != nil {
			m.counters.sanitizeErrors.Add(1)
			if t := ft; !math.IsNaN(t) && !math.IsInf(t, 0) &&
				(!s.haveNow || t <= s.now+maxForwardJumpS) {
				// The frame proves the link is alive at its timestamp
				// even though it carried no usable CSI.
				if hm {
					m.observe(s, t)
				} else {
					s.advanceClock(t)
				}
			}
			return
		}
		it.Time, it.Phi = ft, phi
	}
	// CSI tail: KindPhase items and sanitized KindFrame items.
	if !m.admitTime(s, it.Time) {
		return
	}
	if math.IsNaN(it.Phi) || math.IsInf(it.Phi, 0) {
		m.counters.rejectedTime.Add(1)
		return
	}
	if s.haveCSI && it.Time <= s.lastCSI {
		// Mirror of the pipeline's monotone rule, counted here so wire
		// duplication and reordering are visible in the snapshot.
		m.counters.rejectedTime.Add(1)
		return
	}
	if hm {
		m.observe(s, it.Time)
		m.noteCSIResumed(s, it.Time)
	}
	s.lastCSI, s.haveCSI = it.Time, true
	if hm {
		m.observe(s, it.Time)
	} else {
		s.advanceClock(it.Time)
	}
	est, ok := s.pl.PushCSI(it.Time, it.Phi)
	if !ok {
		return
	}
	if hm && s.h == Stale {
		// Defensive: a stale session must stay silent. Unreachable with
		// the standard transitions (an accepted CSI sample lifts the
		// session out of STALE before the pipeline runs) but cheap to
		// guarantee against future machine variants.
		m.counters.suppressedStale.Add(1)
		return
	}
	s.lastEst, s.hasEst = est, true
	m.emit(s, est)
}

// Flush blocks until every shard queue is empty and every worker is
// idle — every item pushed before the call has been fully processed
// (assuming no concurrent pushers keep the queues fed). No-op in
// deterministic mode.
func (m *Manager) Flush() {
	if m.cfg.Deterministic {
		return
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for (sh.count > 0 || sh.busy || sh.spscPending()) && !sh.closed {
			sh.cond.Wait()
		}
		sh.mu.Unlock()
	}
}

// Close is the hard stop: intake is rejected (RejectedClosed) from
// the moment each shard is marked, workers abandon whatever backlog
// remains (counted in DroppedClosed, pooled frames released, ring
// slots zeroed) and exit, and every session is purged so nOpen and
// the sessions-open gauge read zero. Use CloseDrain for a graceful
// end that processes the backlog first. Close is idempotent and safe
// to call concurrently with pushers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	if !m.cfg.Deterministic {
		m.wg.Wait()
	}
	m.purgeSessions()
}

// CloseDrain is the graceful shutdown: wait for every queued item to
// be processed, then Close. With no concurrent pushers (the caller
// has stopped its receive loops — the only sane precondition for a
// drain) DroppedClosed stays zero and the conservation identity
//
//	Total() == Processed + DroppedStale + DroppedUnknown + RejectedKind
//
// holds exactly on the final snapshot. No-op if already closed.
func (m *Manager) CloseDrain() {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return
	}
	m.Flush()
	m.Close()
}

// purgeSessions empties every shard's registry after the workers have
// exited, reconciling nOpen and the gauge with the evictions — the
// invariant "closed manager ⇒ sessions_open reads 0" the acceptance
// tests scrape for. Bookkeeping nests inside sh.mu exactly as in
// Open, so a racing Open either lands before the purge (and is
// purged, counted both ways) or observes sh.closed and is refused.
func (m *Manager) purgeSessions() {
	for _, sh := range m.shards {
		sh.mu.Lock()
		n := len(sh.sessions)
		for id := range sh.sessions {
			delete(sh.sessions, id)
		}
		if n > 0 {
			m.mu.Lock()
			m.nOpen -= n
			m.mu.Unlock()
			m.sessOpen.Add(-float64(n))
		}
		sh.mu.Unlock()
	}
}
