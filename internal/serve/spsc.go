package serve

// The multi-core ingest path: per-shard single-producer/single-consumer
// rings that let any number of independent producer goroutines feed the
// shard workers without ever contending on the shard mutex per item.
//
// # Memory model
//
// Each spscRing has exactly one writer (the Producer's goroutine) and
// exactly one reader (the shard worker), so the only synchronization
// the data path needs is the release/acquire pairing of the two
// cursors: the producer writes the slot, then publishes it by storing
// tail; the consumer observes the new tail, which makes the slot write
// visible, reads the slot, then releases it by storing head. Go's
// sync/atomic operations are sequentially consistent, which is
// strictly stronger than the release/acquire this requires — and the
// extra strength is what the wake protocol leans on.
//
// # Wake protocol (no lost wakeups)
//
// A worker with work in hand never sleeps, so producers must only wake
// a worker that is about to block. The shard carries a `sleeping`
// flag:
//
//	worker:   sleeping.Store(true); read ring tails; Wait() if empty
//	producer: tail.Store(t+1);      read sleeping;   lock+Broadcast if set
//
// This is Dekker's handshake. Under sequential consistency one of the
// two sides must see the other's store: if the worker's tail read
// missed the item, the producer's store of tail preceded it — and the
// worker's sleeping.Store(true) preceded its tail read — so the
// producer's later sleeping read must observe true and fire the wake.
// The wake itself takes the shard mutex, which serializes it against
// the worker's condition re-check before Wait, closing the
// check-then-sleep window. One batch publish costs one tail store and
// at most one wake check per shard, regardless of batch size.
//
// # Shutdown
//
// Close seals every ring (a producer mid-push is waited out via its
// inPush flag, again a Dekker pair with sealed), then the worker
// sweeps the remnants into DroppedClosed so the conservation identity
// on CounterSnapshot holds for the SPSC path exactly as for the mutex
// path. Pushes after the seal are refused and counted RejectedClosed.

import (
	"runtime"
	"sync/atomic"
	"time"

	"vihot/internal/csi"
)

// spscRing is a bounded single-producer/single-consumer FIFO of Items
// with a power-of-two buffer. The cursors are monotone; index = cursor
// & mask. The pads keep the producer-side and consumer-side cursors on
// separate cache lines so the two cores don't false-share.
type spscRing struct {
	buf  []Item
	mask uint64

	head atomic.Uint64 // consumer cursor: next slot to read
	_    [56]byte
	tail atomic.Uint64 // producer cursor: next slot to write
	_    [56]byte

	// sealed refuses further pushes once shutdown has swept (or will
	// sweep) the ring; inPush marks a producer inside the
	// check-then-publish window so the sweeper can wait it out.
	sealed atomic.Bool
	inPush atomic.Bool
}

// newSPSCRing rounds the capacity up to a power of two.
func newSPSCRing(capacity int) *spscRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &spscRing{buf: make([]Item, c), mask: uint64(c - 1)}
}

// empty reports whether the ring has no published items. Callable from
// any goroutine (both cursors are atomic).
func (r *spscRing) empty() bool { return r.head.Load() == r.tail.Load() }

// drain moves up to max items into out (consumer side only), zeroing
// the vacated slots so the ring never pins a *csi.Frame.
func (r *spscRing) drain(out []Item, max int) []Item {
	h, t := r.head.Load(), r.tail.Load()
	for n := 0; h < t && n < max; n++ {
		j := h & r.mask
		out = append(out, r.buf[j])
		r.buf[j] = Item{}
		h++
	}
	r.head.Store(h)
	return out
}

// seal refuses future pushes and waits out a producer that already
// passed its sealed check, so the sweep that follows sees every item
// the ring will ever hold. Consumer/sweeper side only.
func (r *spscRing) seal() {
	r.sealed.Store(true)
	for r.inPush.Load() {
		runtime.Gosched()
	}
}

// spscPending reports whether any registered producer ring has items.
// Called with sh.mu held (it walks sh.prings) by the worker's sleep
// check and Flush.
func (sh *shard) spscPending() bool {
	for _, r := range sh.prings {
		if !r.empty() {
			return true
		}
	}
	return false
}

// wakeWorker fires the cross-goroutine half of the Dekker handshake:
// called after publishing, it wakes the shard worker iff the worker
// has flagged itself as (about to be) asleep.
func (sh *shard) wakeWorker() {
	if sh.sleeping.Load() {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// Producer is a dedicated lock-free ingest lane: one SPSC ring per
// shard, owned by exactly one pushing goroutine. Compared to
// Push/PushBatch — which serialize all pushers on each shard's mutex —
// a Producer's enqueue is two atomic loads and one atomic store, so N
// producer goroutines on N cores scale without contending until the
// workers themselves saturate.
//
// Rules:
//
//   - A Producer is NOT safe for concurrent use: exactly one goroutine
//     may push through it at a time. Spawn one Producer per ingest
//     goroutine (they are cheap: Shards rings of QueueLen items).
//   - One session's items must flow through one Producer (or only
//     through Push) to keep the per-session ordering guarantee; two
//     lanes into the same shard are drained in arbitrary relative
//     order.
//   - When a Producer's ring is full the NEW item is dropped (counted
//     exactly like a mutex-path shed: kind counter + DroppedStale).
//     A single-writer ring cannot shed its oldest entry — that slot
//     belongs to the consumer — so the freshest item pays instead;
//     with CSI at hundreds of frames per second the difference is one
//     sample of staleness, and the accounting identity is unchanged.
//   - Producers live as long as the Manager; there is nothing to
//     close. After Manager.Close every push is refused and counted
//     RejectedClosed, like Push.
//
// In deterministic mode a Producer degrades to the synchronous Push
// path, so replay tools can use one API for both modes.
type Producer struct {
	m     *Manager
	rings []*spscRing // indexed by shard, nil in deterministic mode
	group [][]Item    // batch regrouping scratch, indexed by shard
}

// NewProducer registers a new ingest lane with every shard. Safe to
// call concurrently with pushes and Close; a producer created after
// Close refuses every push.
func (m *Manager) NewProducer() *Producer {
	p := &Producer{m: m}
	if m.cfg.Deterministic {
		return p
	}
	p.rings = make([]*spscRing, len(m.shards))
	p.group = make([][]Item, len(m.shards))
	for i, sh := range m.shards {
		r := newSPSCRing(m.cfg.QueueLen)
		sh.mu.Lock()
		if sh.closed {
			// The worker is gone; nothing will ever sweep this ring.
			r.sealed.Store(true)
		} else {
			sh.prings = append(sh.prings, r)
		}
		sh.mu.Unlock()
		p.rings[i] = r
	}
	return p
}

// Push ingests one item through the producer's lane: identical
// accounting and routing to Manager.Push, minus the shard mutex.
func (p *Producer) Push(it Item) {
	m := p.m
	if it.Kind > KindCamera {
		m.counters.rejectedKind.Add(1)
		m.recycle(it.Frame)
		return
	}
	if p.rings == nil {
		m.Push(it)
		return
	}
	if m.obs != nil {
		it.enqNS = time.Now().UnixNano()
	}
	si := m.shardIdx(it.Session)
	r := p.rings[si]
	r.inPush.Store(true)
	if r.sealed.Load() {
		r.inPush.Store(false)
		m.counters.rejectedClosed.Add(1)
		m.recycle(it.Frame)
		return
	}
	t, h := r.tail.Load(), r.head.Load()
	if t-h == uint64(len(r.buf)) {
		r.inPush.Store(false)
		m.count(it)
		m.counters.droppedStale.Add(1)
		m.recycle(it.Frame)
		return
	}
	r.buf[t&r.mask] = it
	r.tail.Store(t + 1)
	r.inPush.Store(false)
	m.count(it)
	m.shards[si].wakeWorker()
}

// PushBatch ingests a batch through the producer's lane with one
// publish and at most one wake per destination shard — the cheapest
// ingest path a per-core receive loop can use. Semantics match
// Manager.PushBatch (per-shard order preserved, not atomic across
// shards); overflow drops the batch tail that no longer fits.
func (p *Producer) PushBatch(items []Item) {
	m := p.m
	if len(items) == 0 {
		return
	}
	if p.rings == nil {
		m.PushBatch(items)
		return
	}
	items = m.rejectBadKinds(items)
	if len(items) == 0 {
		return
	}
	m.stampBatch(items)
	if len(p.rings) == 1 {
		p.pushSlice(0, items)
		return
	}
	for si := range p.group {
		p.group[si] = p.group[si][:0]
	}
	for i := range items {
		si := m.shardIdx(items[i].Session)
		p.group[si] = append(p.group[si], items[i])
	}
	for si := range p.group {
		if len(p.group[si]) == 0 {
			continue
		}
		p.pushSlice(si, p.group[si])
		clearItems(p.group[si]) // don't pin frames in the scratch
	}
}

// pushSlice publishes one shard's slice of a batch: write every slot
// that fits, one tail store, one wake.
func (p *Producer) pushSlice(si int, items []Item) {
	m := p.m
	r := p.rings[si]
	r.inPush.Store(true)
	if r.sealed.Load() {
		r.inPush.Store(false)
		m.counters.rejectedClosed.Add(uint64(len(items)))
		for i := range items {
			m.recycle(items[i].Frame)
		}
		return
	}
	t, h := r.tail.Load(), r.head.Load()
	free := len(r.buf) - int(t-h)
	acc := len(items)
	if acc > free {
		acc = free
	}
	for i := 0; i < acc; i++ {
		r.buf[(t+uint64(i))&r.mask] = items[i]
	}
	r.tail.Store(t + uint64(acc))
	r.inPush.Store(false)
	for i := range items {
		m.count(items[i])
	}
	if over := len(items) - acc; over > 0 {
		m.counters.droppedStale.Add(uint64(over))
		for i := acc; i < len(items); i++ {
			m.recycle(items[i].Frame)
		}
	}
	if acc > 0 {
		m.shards[si].wakeWorker()
	}
}

// clearItems zeroes a scratch slice so it releases its frame pointers.
func clearItems(items []Item) {
	for i := range items {
		items[i] = Item{}
	}
}

// sweepSPSC seals and empties every producer ring during a hard close,
// charging the remnants to DroppedClosed and releasing pooled frames.
// Called by the worker with sh.mu held; new rings can't register
// concurrently (NewProducer checks sh.closed under the same mutex).
func (m *Manager) sweepSPSC(sh *shard) {
	var dropped uint64
	for _, r := range sh.prings {
		r.seal()
		h, t := r.head.Load(), r.tail.Load()
		for ; h < t; h++ {
			j := h & r.mask
			if sh.recycle {
				if f := r.buf[j].Frame; f != nil {
					csi.PutFrame(f)
				}
			}
			r.buf[j] = Item{}
			dropped++
		}
		r.head.Store(h)
	}
	if dropped > 0 {
		m.counters.droppedClosed.Add(dropped)
	}
}
