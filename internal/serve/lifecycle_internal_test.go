package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vihot/internal/core"
	"vihot/internal/csi"
)

// testFrame builds a small sanitizable frame.
func testFrame(t float64) *csi.Frame {
	return &csi.Frame{Time: t, H: [][]complex128{
		{1 + 1i, 1 - 1i, 2, 1i},
		{1, 1i, 1 + 2i, -1},
	}}
}

// TestWorkerZeroesDrainedRingSlots pins the frame-retention fix: after
// the worker drains a chunk, the ring slots it copied from must be
// zeroed, not left holding stale Items whose *csi.Frame pointers would
// stay pinned until the slot happened to be overwritten.
func TestWorkerZeroesDrainedRingSlots(t *testing.T) {
	m := New(Config{Shards: 1, QueueLen: 64})
	defer m.Close()

	// No session opened: every item drains as DroppedUnknown, which is
	// fine — the ring mechanics are what is under test.
	for i := 0; i < 40; i++ {
		m.Push(Item{Session: "ghost", Kind: KindFrame, Frame: testFrame(float64(i))})
	}
	m.Flush()

	sh := m.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.count != 0 {
		t.Fatalf("queue not drained: count=%d", sh.count)
	}
	for i, it := range sh.ring {
		if it != (Item{}) {
			t.Fatalf("ring slot %d not zeroed after drain: %+v", i, it)
		}
	}
}

// TestRingDoesNotPinFrames is the heap-regression guard for the same
// bug, from the allocator's point of view: frames pushed through a
// shard must become collectable once processed. Before the fix the
// drained-but-unzeroed ring slots kept every frame of the last
// QueueLen items alive indefinitely.
func TestRingDoesNotPinFrames(t *testing.T) {
	m := New(Config{Shards: 1, QueueLen: 256})
	defer m.Close()

	const n = 64
	var collected atomic.Int32
	for i := 0; i < n; i++ {
		f := testFrame(float64(i))
		runtime.SetFinalizer(f, func(*csi.Frame) { collected.Add(1) })
		m.Push(Item{Session: "ghost", Kind: KindFrame, Frame: f})
	}
	m.Flush()

	deadline := time.Now().Add(5 * time.Second)
	for collected.Load() < n && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := collected.Load(); got < n {
		t.Fatalf("only %d/%d frames were collectable after processing; the ring is pinning frames", got, n)
	}
}

// TestEnqueueShedReleasesPooledFrame checks the load-shedding release
// point: with recycling on, the frame of a shed (stalest) item goes
// back to the csi pool instead of leaking to nowhere.
func TestEnqueueShedReleasesPooledFrame(t *testing.T) {
	sh := &shard{ring: make([]Item, 2), recycle: true}
	sh.cond = sync.NewCond(&sh.mu)

	var fin atomic.Int32
	f := csi.GetFrame(2, 4)
	runtime.SetFinalizer(f, func(*csi.Frame) { fin.Add(1) })
	sh.push(Item{Kind: KindFrame, Frame: f})
	sh.push(Item{Kind: KindPhase, Time: 1})
	// Ring full: this push sheds the frame item.
	if dropped, _ := sh.push(Item{Kind: KindPhase, Time: 2}); !dropped {
		t.Fatal("full ring did not shed")
	}
	// The shed frame went back to the pool, so the ring no longer
	// references it: once our own handle drops, nothing pins it but
	// the pool's caches, which the GC clears (over two cycles). Had
	// enqueue leaked the shed item's frame into the overwritten slot's
	// limbo instead of releasing it, this would still pass — but had
	// it *retained* it (no release, slot referenced), it cannot.
	f = nil
	deadline := time.Now().Add(5 * time.Second)
	for fin.Load() == 0 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if fin.Load() != 1 {
		t.Fatal("shed pooled frame still pinned after shed + GC")
	}
}

// TestCameraCoastCarriesPosition pins the satellite fix: the camera
// branch of maybeCoast must carry the last tracked seat position, like
// the forecast branch always has, so fused output does not flicker the
// position to zero whenever coasting switches to the camera.
func TestCameraCoastCarriesPosition(t *testing.T) {
	var got []core.Estimate
	m := New(Config{
		Deterministic: true,
		OnEstimate:    func(id string, est core.Estimate) { got = append(got, est) },
	})
	defer m.Close()

	s := &session{
		id: "s", h: Coasting,
		haveCam: true, lastCam: 10.0, camYaw: 0.4,
		hasEst: true,
		lastEst: core.Estimate{
			Time: 9.0, Yaw: 0.1, Position: 3, Source: core.SourceCSI,
		},
	}
	m.maybeCoast(s, 10.05)

	if len(got) != 1 {
		t.Fatalf("maybeCoast emitted %d estimates, want 1", len(got))
	}
	est := got[0]
	if est.Source != core.SourceCamera {
		t.Fatalf("Source = %v, want camera (camera is fresh)", est.Source)
	}
	if est.Yaw != 0.4 {
		t.Fatalf("Yaw = %v, want the camera's 0.4", est.Yaw)
	}
	if est.Position != 3 {
		t.Fatalf("Position = %d, want 3 (last tracked position carried through camera coasting)", est.Position)
	}
}
