package serve_test

import (
	"math"
	"sync"
	"testing"

	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/imu"
	"vihot/internal/serve"
)

// transition is one recorded degradation-state change.
type transition struct {
	t        float64
	from, to serve.Health
}

// healthLog collects OnHealth and OnEstimateHealth callbacks.
type healthLog struct {
	mu    sync.Mutex
	trans map[string][]transition
	ests  map[string][]estAt
}

type estAt struct {
	est  core.Estimate
	h    serve.Health
	conf float64
}

func newHealthLog() *healthLog {
	return &healthLog{trans: map[string][]transition{}, ests: map[string][]estAt{}}
}

func (l *healthLog) onHealth(id string, t float64, from, to serve.Health) {
	l.mu.Lock()
	l.trans[id] = append(l.trans[id], transition{t: t, from: from, to: to})
	l.mu.Unlock()
}

func (l *healthLog) onEst(id string, est core.Estimate, h serve.Health, conf float64) {
	l.mu.Lock()
	l.ests[id] = append(l.ests[id], estAt{est: est, h: h, conf: conf})
	l.mu.Unlock()
}

// gapStream builds a synthetic single-session stream with a CSI
// blackout over [csiGapLo, csiGapHi): 500 Hz phases outside the gap,
// 100 Hz IMU and ~30 Hz camera throughout, over [0, dur]. The phase
// value is a slow sine — the state machine does not care whether the
// tracker matches anything.
func gapStream(id string, dur, csiGapLo, csiGapHi float64) []serve.Item {
	var items []serve.Item
	n := int(dur * 1000)
	for i := 0; i <= n; i++ {
		t := float64(i) * 0.001
		if i%2 == 0 && (t < csiGapLo || t >= csiGapHi) {
			items = append(items, serve.Item{
				Session: id, Kind: serve.KindPhase,
				Time: t, Phi: 0.3 * math.Sin(2*math.Pi*0.4*t),
			})
		}
		if i%10 == 0 {
			items = append(items, serve.Item{
				Session: id, Kind: serve.KindIMU,
				IMU: imu.Reading{Time: t},
			})
		}
		if i%33 == 0 {
			items = append(items, serve.Item{
				Session: id, Kind: serve.KindCamera,
				Camera: camera.Estimate{Time: t, Yaw: 0.5, Valid: true},
			})
		}
	}
	return items
}

// TestHealthStateMachineTransitions walks one session through a full
// CSI blackout and back: HEALTHY → DEGRADED → COASTING → STALE →
// DEGRADED (recovering) → HEALTHY, with camera-sourced coasting while
// COASTING, silence while STALE, and a tracker reset on resume.
func TestHealthStateMachineTransitions(t *testing.T) {
	f := getFixture(t)
	log := newHealthLog()
	m := serve.New(serve.Config{
		Deterministic:    true,
		OnHealth:         log.onHealth,
		OnEstimateHealth: log.onEst,
	})
	defer m.Close()
	if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}

	for _, it := range gapStream("s", 4.6, 2.0, 4.0) {
		m.Push(it)
	}

	want := []struct{ from, to serve.Health }{
		{serve.Healthy, serve.Degraded},  // CSI gap > 0.25 s
		{serve.Degraded, serve.Coasting}, // gap > 0.75 s
		{serve.Coasting, serve.Stale},    // gap > 1.5 s
		{serve.Stale, serve.Degraded},    // CSI resumed; recovery hold-down
		{serve.Degraded, serve.Healthy},  // 0.5 s of clean flow
	}
	got := log.trans["s"]
	if len(got) != len(want) {
		t.Fatalf("recorded %d transitions %+v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].from != w.from || got[i].to != w.to {
			t.Fatalf("transition %d = %s→%s at t=%.3f, want %s→%s",
				i, got[i].from, got[i].to, got[i].t, w.from, w.to)
		}
		if i > 0 && got[i].t < got[i-1].t {
			t.Fatalf("transition times regressed: %+v", got)
		}
	}

	snap := m.Counters().Snapshot()
	if snap.ToDegraded != 2 || snap.ToCoasting != 1 || snap.ToStale != 1 || snap.Recoveries != 1 {
		t.Fatalf("transition counters = %+v", snap)
	}
	if snap.TrackerResets != 1 {
		t.Fatalf("TrackerResets = %d, want 1 (blackout spans the window)", snap.TrackerResets)
	}
	if snap.Coasted == 0 {
		t.Fatal("no coasted estimates during a 0.75 s coasting episode with a live camera")
	}

	coasts := 0
	for _, e := range log.ests["s"] {
		if e.h == serve.Stale {
			t.Fatalf("estimate emitted while STALE: %+v", e)
		}
		if e.h == serve.Coasting {
			coasts++
			if e.est.Source != core.SourceCamera {
				t.Fatalf("coasted estimate with a fresh camera used source %s", e.est.Source)
			}
			if e.conf != serve.Coasting.Confidence() {
				t.Fatalf("coasting confidence = %v, want %v", e.conf, serve.Coasting.Confidence())
			}
		}
	}
	if uint64(coasts) != snap.Coasted {
		t.Fatalf("sink saw %d coasted estimates, counters say %d", coasts, snap.Coasted)
	}

	if h, ok := m.Health("s"); !ok || h != serve.Healthy {
		t.Fatalf("final Health = %v/%v, want healthy/true", h, ok)
	}
	if _, ok := m.Health("ghost"); ok {
		t.Fatal("Health reported an unknown session")
	}
}

// TestHealthForecastCoasting starves the camera as well as the CSI:
// coasting must fall back to the tracker forecast anchored on the last
// real estimate, and cap its horizon.
func TestHealthForecastCoasting(t *testing.T) {
	f := getFixture(t)
	log := newHealthLog()
	m := serve.New(serve.Config{
		Deterministic:    true,
		OnHealth:         log.onHealth,
		OnEstimateHealth: log.onEst,
	})
	defer m.Close()
	if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}

	// Real CSI from the fixture so the pipeline emits genuine estimates
	// before the blackout; then IMU-only ticks (no camera at all).
	fed := 0
	for _, it := range f.streams["driver-a"] {
		if it.Kind != serve.KindPhase || it.Time > 4.0 {
			continue
		}
		m.Push(serve.Item{Session: "s", Kind: serve.KindPhase, Time: it.Time, Phi: it.Phi})
		fed++
	}
	if fed == 0 {
		t.Fatal("fixture stream had no phases under 4 s")
	}
	for i := 1; i <= 110; i++ {
		m.Push(serve.Item{Session: "s", Kind: serve.KindIMU,
			IMU: imu.Reading{Time: 4.0 + float64(i)*0.01}})
	}

	snap := m.Counters().Snapshot()
	var sawForecast bool
	for _, e := range log.ests["s"] {
		if e.h != serve.Coasting {
			continue
		}
		if e.est.Source != core.SourceCoast {
			t.Fatalf("camera-less coasting used source %s", e.est.Source)
		}
		sawForecast = true
	}
	if snap.Coasted == 0 || !sawForecast {
		t.Fatalf("no forecast-coasted estimates (Coasted=%d)", snap.Coasted)
	}
}

// TestHealthDisable proves the opt-out: no transitions, no coasting,
// no suppression — the PR-1 behavior exactly.
func TestHealthDisable(t *testing.T) {
	f := getFixture(t)
	log := newHealthLog()
	m := serve.New(serve.Config{
		Deterministic:    true,
		Health:           serve.HealthConfig{Disable: true},
		OnHealth:         log.onHealth,
		OnEstimateHealth: log.onEst,
	})
	defer m.Close()
	if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	for _, it := range gapStream("s", 4.6, 2.0, 4.0) {
		m.Push(it)
	}
	if len(log.trans["s"]) != 0 {
		t.Fatalf("disabled machine recorded transitions: %+v", log.trans["s"])
	}
	snap := m.Counters().Snapshot()
	if snap.Coasted != 0 || snap.ToDegraded != 0 || snap.TrackerResets != 0 {
		t.Fatalf("disabled machine acted: %+v", snap)
	}
	if h, ok := m.Health("s"); !ok || h != serve.Healthy {
		t.Fatalf("disabled Health = %v/%v", h, ok)
	}
}

// TestServeTimestampGuards covers the serve-level admission rules: the
// monotone-CSI mirror, non-finite rejection, and the forward-jump
// guard that keeps a corrupted far-future timestamp from wedging the
// session clock.
func TestServeTimestampGuards(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Deterministic: true})
	defer m.Close()
	if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}

	push := func(it serve.Item) { it.Session = "s"; m.Push(it) }
	push(serve.Item{Kind: serve.KindPhase, Time: 1, Phi: 0})     // accepted
	push(serve.Item{Kind: serve.KindPhase, Time: 1, Phi: 0})     // duplicate
	push(serve.Item{Kind: serve.KindPhase, Time: 0.5, Phi: 0})   // backwards
	push(serve.Item{Kind: serve.KindPhase, Time: math.NaN()})    // non-finite time
	push(serve.Item{Kind: serve.KindPhase, Time: 1.001, Phi: math.Inf(1)}) // non-finite phase
	push(serve.Item{Kind: serve.KindPhase, Time: 100, Phi: 0})   // far-future jump
	push(serve.Item{Kind: serve.KindIMU, IMU: imu.Reading{Time: math.NaN()}})
	push(serve.Item{Kind: serve.KindCamera, Camera: camera.Estimate{Time: math.Inf(1), Valid: true}})
	push(serve.Item{Kind: serve.KindPhase, Time: 1.002, Phi: 0}) // still accepted: clock not wedged

	snap := m.Counters().Snapshot()
	if snap.RejectedTime != 7 {
		t.Fatalf("RejectedTime = %d, want 7", snap.RejectedTime)
	}
	if snap.Processed != 9 {
		t.Fatalf("Processed = %d, want 9", snap.Processed)
	}
	if h, ok := m.Health("s"); !ok || h != serve.Healthy {
		t.Fatalf("guards disturbed health: %v/%v", h, ok)
	}
}
