package serve_test

import (
	"fmt"
	"sync"
	"testing"

	"vihot/internal/cabin"
	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/imu"
	"vihot/internal/serve"
	"vihot/internal/stats"
)

// fixture is a shared small profile plus per-session item streams:
// three drivers' scenarios rendered once into the exact interleaved
// sample sequences the manager will ingest.
type fixture struct {
	profile *core.Profile
	streams map[string][]serve.Item
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func buildFixture() (*fixture, error) {
	env, err := experiment.NewEnv(cabin.DefaultConfig(), 11)
	if err != nil {
		return nil, err
	}
	popt := experiment.DefaultProfileOptions()
	popt.Positions = 4
	popt.PerPositionS = 3
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		return nil, err
	}

	f := &fixture{profile: profile, streams: map[string][]serve.Item{}}
	profiles := []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()}
	for i, dp := range profiles {
		id := fmt.Sprintf("driver-%c", 'a'+i)
		items, err := renderStream(env, dp, id, i == 1)
		if err != nil {
			return nil, err
		}
		f.streams[id] = items
	}
	return f, nil
}

// renderStream synthesizes one driver's interleaved sample stream:
// CSI (as sanitized phases, or raw frames for one session to exercise
// worker-side sanitizing), 100 Hz IMU, and 30 FPS camera estimates.
func renderStream(env *experiment.Env, dp driver.Profile, id string, rawFrames bool) ([]serve.Item, error) {
	sc := driver.DrivingScenario(env.RNG.Fork(), dp, 8, driver.GlanceOptions{
		Steering:       true,
		PositionJitter: 0.008,
	})
	phone := imu.NewPhoneIMU(env.RNG.Fork())
	cam := camera.NewTracker(env.RNG.Fork())

	var items []serve.Item
	nextIMU := 0.0
	for _, t := range env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration) {
		for nextIMU <= t {
			items = append(items, serve.Item{
				Session: id, Kind: serve.KindIMU,
				IMU: phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS),
			})
			lag := cam.Latency()
			if est, ok := cam.Sample(nextIMU, sc.HeadYaw.At(nextIMU-lag), sc.TrueYawRateDPS(nextIMU-lag)); ok {
				items = append(items, serve.Item{Session: id, Kind: serve.KindCamera, Camera: est})
			}
			nextIMU += 0.01
		}
		if rawFrames {
			items = append(items, serve.Item{Session: id, Kind: serve.KindFrame, Frame: env.FrameAt(sc.State(t))})
		} else {
			phi, err := env.PhaseAt(sc.State(t))
			if err != nil {
				return nil, err
			}
			items = append(items, serve.Item{Session: id, Kind: serve.KindPhase, Time: t, Phi: phi})
		}
	}
	return items, nil
}

// serialRun is the ground truth: one Pipeline per session, Push called
// inline in stream order — exactly what a single-threaded deployment
// would do.
func serialRun(t *testing.T, f *fixture) map[string][]core.Estimate {
	t.Helper()
	out := map[string][]core.Estimate{}
	for id, items := range f.streams {
		pl, err := core.NewPipeline(f.profile, core.DefaultPipelineConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			switch it.Kind {
			case serve.KindIMU:
				pl.PushIMU(it.IMU)
			case serve.KindCamera:
				pl.PushCamera(it.Camera)
			case serve.KindFrame:
				phi, err := csi.Sanitize(it.Frame, 0, 1)
				if err != nil {
					continue
				}
				if est, ok := pl.PushCSI(it.Frame.Time, phi); ok {
					out[id] = append(out[id], est)
				}
			case serve.KindPhase:
				if est, ok := pl.PushCSI(it.Time, it.Phi); ok {
					out[id] = append(out[id], est)
				}
			}
		}
		if len(out[id]) == 0 {
			t.Fatalf("serial run produced no estimates for %s", id)
		}
	}
	return out
}

// estimateCollector is a concurrency-safe OnEstimate sink.
type estimateCollector struct {
	mu  sync.Mutex
	got map[string][]core.Estimate
}

func newCollector() *estimateCollector {
	return &estimateCollector{got: map[string][]core.Estimate{}}
}

func (c *estimateCollector) sink(id string, est core.Estimate) {
	c.mu.Lock()
	c.got[id] = append(c.got[id], est)
	c.mu.Unlock()
}

// managerRun feeds the fixture through a Manager. push selects how the
// streams are submitted (from the calling goroutine or concurrently).
func managerRun(t *testing.T, f *fixture, cfg serve.Config, push func(m *serve.Manager)) map[string][]core.Estimate {
	t.Helper()
	col := newCollector()
	cfg.OnEstimate = col.sink
	m := serve.New(cfg)
	defer m.Close()
	for id := range f.streams {
		if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	push(m)
	m.Flush()
	snap := m.Counters().Snapshot()
	if snap.DroppedStale != 0 {
		t.Fatalf("equivalence run shed %d items; queues must be large enough", snap.DroppedStale)
	}
	return col.got
}

func assertSameEstimates(t *testing.T, mode string, want, got map[string][]core.Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: sessions with estimates = %d, want %d", mode, len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("%s/%s: %d estimates, want %d", mode, id, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s/%s: estimate %d = %+v, want %+v", mode, id, i, g[i], w[i])
			}
		}
	}
}

// TestSessionManagerEquivalence proves the tentpole property: sharded,
// batched execution is estimate-for-estimate identical to calling
// Pipeline.Push serially — in deterministic mode, in concurrent mode
// with a single pusher, and in concurrent mode with one pusher
// goroutine per session.
func TestSessionManagerEquivalence(t *testing.T) {
	f := getFixture(t)
	want := serialRun(t, f)

	// interleave builds one global round-robin batch sequence, the
	// PushBatch shape a receiver loop would produce.
	interleave := func() [][]serve.Item {
		var batches [][]serve.Item
		idx := map[string]int{}
		for {
			var batch []serve.Item
			for id, items := range f.streams {
				i := idx[id]
				hi := i + 16
				if hi > len(items) {
					hi = len(items)
				}
				batch = append(batch, items[i:hi]...)
				idx[id] = hi
			}
			if len(batch) == 0 {
				return batches
			}
			batches = append(batches, batch)
		}
	}

	t.Run("deterministic", func(t *testing.T) {
		got := managerRun(t, f, serve.Config{Deterministic: true}, func(m *serve.Manager) {
			for _, b := range interleave() {
				m.PushBatch(b)
			}
		})
		assertSameEstimates(t, "deterministic", want, got)
	})

	t.Run("concurrent-batched", func(t *testing.T) {
		got := managerRun(t, f, serve.Config{Shards: 3, QueueLen: 1 << 17}, func(m *serve.Manager) {
			for _, b := range interleave() {
				m.PushBatch(b)
			}
		})
		assertSameEstimates(t, "concurrent-batched", want, got)
	})

	t.Run("concurrent-per-session-pushers", func(t *testing.T) {
		got := managerRun(t, f, serve.Config{Shards: 4, QueueLen: 1 << 17}, func(m *serve.Manager) {
			var wg sync.WaitGroup
			for _, items := range f.streams {
				wg.Add(1)
				go func(items []serve.Item) {
					defer wg.Done()
					for i := 0; i < len(items); i += 32 {
						hi := i + 32
						if hi > len(items) {
							hi = len(items)
						}
						m.PushBatch(items[i:hi])
					}
				}(items)
			}
			wg.Wait()
		})
		assertSameEstimates(t, "concurrent-per-session-pushers", want, got)
	})
}

// TestSessionManagerErrors covers the session registry edge cases.
func TestSessionManagerErrors(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Shards: 2})
	defer m.Close()

	if err := m.Open("", f.profile, core.DefaultPipelineConfig()); err == nil {
		t.Fatal("empty session id accepted")
	}
	if err := m.Open("s1", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	if err := m.Open("s1", f.profile, core.DefaultPipelineConfig()); err == nil {
		t.Fatal("duplicate session id accepted")
	}
	if err := m.Open("s2", nil, core.DefaultPipelineConfig()); err == nil {
		t.Fatal("nil profile accepted")
	}
	if m.Sessions() != 1 {
		t.Fatalf("Sessions() = %d, want 1", m.Sessions())
	}
	if err := m.CloseSession("nope"); err == nil {
		t.Fatal("closing unknown session succeeded")
	}

	// Items for a session that was never opened are counted, not lost
	// silently — and must not wedge the worker.
	m.Push(serve.Item{Session: "ghost", Kind: serve.KindPhase, Time: 1, Phi: 0})
	m.Flush()
	if snap := m.Counters().Snapshot(); snap.DroppedUnknown != 1 {
		t.Fatalf("DroppedUnknown = %d, want 1", snap.DroppedUnknown)
	}

	if err := m.CloseSession("s1"); err != nil {
		t.Fatal(err)
	}
	if m.Sessions() != 0 {
		t.Fatalf("Sessions() = %d, want 0", m.Sessions())
	}

	m.Close()
	if err := m.Open("s3", f.profile, core.DefaultPipelineConfig()); err == nil {
		t.Fatal("Open after Close succeeded")
	}
}

// TestSessionManagerStress hammers a small-queue manager from many
// goroutines into many sessions — the go test -race workload of the
// tier-1 verify instructions. It checks counter conservation, not
// estimate values: with a 64-item queue, shedding is the point.
func TestSessionManagerStress(t *testing.T) {
	f := getFixture(t)
	col := newCollector()
	m := serve.New(serve.Config{Shards: 8, QueueLen: 64, OnEstimate: col.sink})
	defer m.Close()

	const nSessions = 24
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%02d", i)
		if err := m.Open(ids[i], f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}

	const (
		nPushers  = 8
		perPusher = 4000
	)
	var wg sync.WaitGroup
	for p := 0; p < nPushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := stats.NewRNG(int64(1000 + p))
			// Each pusher owns a disjoint slice of sessions so the
			// per-session single-writer rule holds even under stress.
			mine := ids[p*nSessions/nPushers : (p+1)*nSessions/nPushers]
			clocks := make([]float64, len(mine))
			phases := make([]float64, len(mine))
			for i := 0; i < perPusher; i++ {
				k := int(rng.Uniform(0, float64(len(mine))))
				if k == len(mine) {
					k--
				}
				clocks[k] += 0.002
				phases[k] += rng.Normal(0, 0.05)
				it := serve.Item{Session: mine[k], Kind: serve.KindPhase, Time: clocks[k], Phi: phases[k]}
				if i%7 == 0 {
					it = serve.Item{Session: mine[k], Kind: serve.KindIMU,
						IMU: imu.Reading{Time: clocks[k], GyroZ: rng.Normal(0, 2)}}
				}
				m.Push(it)
				if i%1024 == 0 {
					m.Counters().Snapshot()
				}
			}
		}(p)
	}
	// Concurrent observers: snapshots and flushes must be safe while
	// pushers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Counters().Snapshot()
				m.Sessions()
			}
		}
	}()
	wg.Wait()
	close(done)
	m.Flush()

	snap := m.Counters().Snapshot()
	if got, want := snap.Total(), uint64(nPushers*perPusher); got != want {
		t.Fatalf("items counted in = %d, want %d", got, want)
	}
	if snap.DroppedStale > snap.Total() {
		t.Fatalf("DroppedStale = %d exceeds total %d", snap.DroppedStale, snap.Total())
	}
	col.mu.Lock()
	var sunk uint64
	for _, ests := range col.got {
		sunk += uint64(len(ests))
	}
	col.mu.Unlock()
	if sunk != snap.Estimates {
		t.Fatalf("sink saw %d estimates, counters say %d", sunk, snap.Estimates)
	}
	t.Logf("stress: in=%d dropped=%d estimates=%d", snap.Total(), snap.DroppedStale, snap.Estimates)
}
