package serve_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/imu"
	"vihot/internal/obs"
	"vihot/internal/serve"
)

// phaseItems builds n monotone KindPhase items for one session,
// starting at t0 and spaced 2 ms apart — enough structure to be
// accepted by every admission guard without needing real CSI.
func phaseItems(id string, t0 float64, n int) []serve.Item {
	items := make([]serve.Item, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, serve.Item{
			Session: id, Kind: serve.KindPhase,
			Time: t0 + float64(i)*0.002, Phi: 0.1,
		})
	}
	return items
}

// conservation asserts the post-shutdown identity of the acceptance
// criteria, with DroppedClosed folded in so it also holds after a
// hard Close that abandoned a backlog.
func conservation(t *testing.T, snap serve.CounterSnapshot) {
	t.Helper()
	want := snap.Processed + snap.DroppedStale + snap.DroppedUnknown +
		snap.DroppedClosed + snap.RejectedKind
	if snap.Total() != want {
		t.Fatalf("conservation violated: Total()=%d, processed=%d droppedStale=%d droppedUnknown=%d droppedClosed=%d rejectedKind=%d",
			snap.Total(), snap.Processed, snap.DroppedStale, snap.DroppedUnknown,
			snap.DroppedClosed, snap.RejectedKind)
	}
}

// TestPushAfterClose pins the shutdown intake contract: once Close
// returns, Push, PushBatch, and Open are all refused — counted in
// RejectedClosed (outside Total), never queued, never processed.
func TestPushAfterClose(t *testing.T) {
	f := getFixture(t)
	for _, det := range []bool{false, true} {
		t.Run(fmt.Sprintf("deterministic=%v", det), func(t *testing.T) {
			m := serve.New(serve.Config{Deterministic: det, Shards: 2})
			if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
				t.Fatal(err)
			}
			for _, it := range phaseItems("s", 0, 10) {
				m.Push(it)
			}
			m.CloseDrain()
			before := m.Counters().Snapshot()

			m.Push(serve.Item{Session: "s", Kind: serve.KindPhase, Time: 1, Phi: 0})
			m.PushBatch(phaseItems("s", 2, 5))
			if err := m.Open("late", f.profile, core.DefaultPipelineConfig()); !errors.Is(err, serve.ErrClosed) {
				t.Fatalf("Open after Close = %v, want ErrClosed", err)
			}

			snap := m.Counters().Snapshot()
			if snap.RejectedClosed != before.RejectedClosed+6 {
				t.Fatalf("RejectedClosed = %d, want %d", snap.RejectedClosed, before.RejectedClosed+6)
			}
			if snap.Total() != before.Total() {
				t.Fatalf("Total moved on a closed manager: %d -> %d", before.Total(), snap.Total())
			}
			if snap.Processed != before.Processed {
				t.Fatalf("Processed moved on a closed manager: %d -> %d", before.Processed, snap.Processed)
			}
			if m.Sessions() != 0 {
				t.Fatalf("Sessions() = %d after Close, want 0", m.Sessions())
			}
			conservation(t, snap)
			if snap.DroppedClosed != 0 {
				t.Fatalf("CloseDrain abandoned %d items", snap.DroppedClosed)
			}
		})
	}
}

// TestCloseDrainConservation feeds a mixed stream — valid kinds,
// corrupt kinds, an unopened session — then drains to a stop and
// checks the acceptance-criteria identity exactly, plus the session
// gauge reading zero on the scrape registry.
func TestCloseDrainConservation(t *testing.T) {
	f := getFixture(t)
	reg := obs.NewRegistry()
	m := serve.New(serve.Config{Shards: 3, Metrics: reg})
	if err := m.Open("a", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	if err := m.Open("b", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}

	batch := phaseItems("a", 0, 200)
	batch = append(batch, phaseItems("b", 0, 200)...)
	batch = append(batch, phaseItems("ghost", 0, 50)...) // never opened
	batch = append(batch, serve.Item{Session: "a", Kind: serve.ItemKind(9)})
	batch = append(batch, serve.Item{Session: "b", Kind: serve.ItemKind(200)})
	m.PushBatch(batch)
	for _, it := range phaseItems("a", 1, 50) {
		m.Push(it)
	}
	m.Push(serve.Item{Session: "a", Kind: serve.ItemKind(42)})

	m.CloseDrain()
	snap := m.Counters().Snapshot()
	if want := uint64(len(batch)) + 51; snap.Total() != want {
		t.Fatalf("Total() = %d, want %d (every push accounted for)", snap.Total(), want)
	}
	if snap.RejectedKind != 3 {
		t.Fatalf("RejectedKind = %d, want 3", snap.RejectedKind)
	}
	if snap.DroppedUnknown != 50 {
		t.Fatalf("DroppedUnknown = %d, want 50", snap.DroppedUnknown)
	}
	if snap.DroppedClosed != 0 || snap.DroppedStale != 0 {
		t.Fatalf("drain dropped items: %+v", snap)
	}
	// The acceptance identity, without the DroppedClosed term: a drain
	// abandons nothing.
	if snap.Total() != snap.Processed+snap.DroppedStale+snap.DroppedUnknown+snap.RejectedKind {
		t.Fatalf("acceptance identity violated: %+v", snap)
	}
	if m.Sessions() != 0 {
		t.Fatalf("Sessions() = %d, want 0", m.Sessions())
	}
	if g := reg.Gauge("vihot_serve_sessions_open", "currently open tracking sessions").Value(); g != 0 {
		t.Fatalf("vihot_serve_sessions_open = %v after CloseDrain, want 0", g)
	}
	// Idempotent: a second drain (or close) changes nothing.
	m.CloseDrain()
	m.Close()
	if again := m.Counters().Snapshot(); again != snap {
		t.Fatalf("re-close moved counters: %+v -> %+v", snap, again)
	}
}

// TestHardCloseAccountsBacklog closes without flushing while the
// queues are still deep: whatever the workers had not yet processed
// must land in DroppedClosed, keeping Total conserved, and the
// session registry must still empty out.
func TestHardCloseAccountsBacklog(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Shards: 1, QueueLen: 1 << 15})
	if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	items := phaseItems("s", 0, 20000)
	m.PushBatch(items)
	m.Close() // no flush: races the worker on purpose

	snap := m.Counters().Snapshot()
	if snap.Total() != uint64(len(items)) {
		t.Fatalf("Total() = %d, want %d", snap.Total(), len(items))
	}
	conservation(t, snap)
	if m.Sessions() != 0 {
		t.Fatalf("Sessions() = %d after hard Close, want 0", m.Sessions())
	}
	t.Logf("hard close: processed=%d abandoned=%d", snap.Processed, snap.DroppedClosed)
}

// TestRejectedKindTable is the satellite's table test: every valid
// kind routes, every invalid kind is refused at the door with
// RejectedKind counted — and Total() still covers it, so one corrupt
// byte can no longer break conservation.
func TestRejectedKindTable(t *testing.T) {
	f := getFixture(t)
	cases := []struct {
		name       string
		kind       serve.ItemKind
		wantReject bool
	}{
		{"phase", serve.KindPhase, false},
		{"frame", serve.KindFrame, false},
		{"imu", serve.KindIMU, false},
		{"camera", serve.KindCamera, false},
		{"one-past-camera", serve.KindCamera + 1, true},
		{"bit-flipped", serve.ItemKind(0x42), true},
		{"all-ones", serve.ItemKind(0xff), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := serve.New(serve.Config{Deterministic: true})
			defer m.Close()
			if err := m.Open("s", f.profile, core.DefaultPipelineConfig()); err != nil {
				t.Fatal(err)
			}
			it := serve.Item{Session: "s", Kind: tc.kind, Time: 1, Phi: 0,
				IMU: imu.Reading{Time: 1}}
			if tc.kind == serve.KindFrame {
				it.Frame = &csi.Frame{Time: 1, H: [][]complex128{{1, 1i}, {1i, 1}}}
			}
			m.Push(it)
			m.PushBatch([]serve.Item{it}) // batch path must agree
			snap := m.Counters().Snapshot()
			if tc.wantReject {
				if snap.RejectedKind != 2 || snap.Processed != 0 {
					t.Fatalf("RejectedKind=%d Processed=%d, want 2/0", snap.RejectedKind, snap.Processed)
				}
			} else {
				if snap.RejectedKind != 0 || snap.Processed != 2 {
					t.Fatalf("RejectedKind=%d Processed=%d, want 0/2", snap.RejectedKind, snap.Processed)
				}
			}
			if snap.Total() != 2 {
				t.Fatalf("Total() = %d, want 2", snap.Total())
			}
			conservation(t, snap)
		})
	}
}

// TestOpenCloseRace races session opens against Close: every Open
// must either fully register (and be purged by Close, keeping the
// count consistent) or be refused with ErrClosed — under -race this
// also proves the registration/purge locking. Regression for the seed
// bug where Open could register onto an already-closed shard whose
// worker had exited.
func TestOpenCloseRace(t *testing.T) {
	f := getFixture(t)
	for round := 0; round < 8; round++ {
		m := serve.New(serve.Config{Shards: 4})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 16; i++ {
					id := fmt.Sprintf("s-%d-%d", g, i)
					err := m.Open(id, f.profile, core.DefaultPipelineConfig())
					if err != nil && !errors.Is(err, serve.ErrClosed) {
						t.Errorf("Open(%s) = %v", id, err)
					}
					m.Push(serve.Item{Session: id, Kind: serve.KindPhase, Time: 1, Phi: 0})
				}
			}(g)
		}
		close(start)
		m.Close()
		wg.Wait()
		// Everything that registered was purged; late opens refused.
		if n := m.Sessions(); n != 0 {
			t.Fatalf("round %d: Sessions() = %d after Close, want 0", round, n)
		}
		if err := m.Open("late", f.profile, core.DefaultPipelineConfig()); !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("round %d: Open after Close = %v", round, err)
		}
		conservation(t, m.Counters().Snapshot())
	}
}

// TestCloseSessionVsWorkerDrain churns sessions open/closed while a
// pusher keeps their shard's queue fed: items that outlive their
// session drain as DroppedUnknown, the counters conserve, and -race
// gets a real interleaving of registry mutation vs worker resolution.
func TestCloseSessionVsWorkerDrain(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Shards: 2, QueueLen: 256})
	defer m.Close()

	const churns = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churner: open/close the same two ids repeatedly
		defer wg.Done()
		for i := 0; i < churns; i++ {
			for _, id := range []string{"x", "y"} {
				if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
					t.Errorf("Open(%s): %v", id, err)
					return
				}
			}
			for _, id := range []string{"x", "y"} {
				if err := m.CloseSession(id); err != nil {
					t.Errorf("CloseSession(%s): %v", id, err)
					return
				}
			}
		}
	}()
	var pushed uint64
	go func() { // pusher: keeps both ids' items flowing regardless
		defer wg.Done()
		for i := 0; i < churns*50; i++ {
			t0 := float64(i) * 0.002
			m.PushBatch([]serve.Item{
				{Session: "x", Kind: serve.KindPhase, Time: t0, Phi: 0},
				{Session: "y", Kind: serve.KindPhase, Time: t0, Phi: 0},
			})
			pushed += 2
		}
	}()
	wg.Wait()
	m.Flush()
	snap := m.Counters().Snapshot()
	if snap.Total() != pushed {
		t.Fatalf("Total() = %d, want %d", snap.Total(), pushed)
	}
	conservation(t, snap)
	if m.Sessions() != 0 {
		t.Fatalf("Sessions() = %d, want 0 (all churned closed)", m.Sessions())
	}
	if err := m.CloseSession("x"); !errors.Is(err, serve.ErrUnknownSession) {
		t.Fatalf("double CloseSession = %v, want ErrUnknownSession", err)
	}
}

// TestRecycleEquivalence proves frame pooling is invisible to the
// results: the raw-frame fixture stream produces identical estimates
// with RecycleFrames on and off. The recycled run pushes cloned
// frames (ownership transfers to the manager; the fixture's are
// shared), which is exactly the contract real pooled ingest honours.
func TestRecycleEquivalence(t *testing.T) {
	f := getFixture(t)
	run := func(recycle bool) map[string][]core.Estimate {
		col := newCollector()
		m := serve.New(serve.Config{
			Deterministic: true,
			RecycleFrames: recycle,
			OnEstimate:    col.sink,
		})
		defer m.Close()
		if err := m.Open("driver-b", f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
		for _, it := range f.streams["driver-b"] {
			if it.Frame != nil {
				it.Frame = it.Frame.Clone()
			}
			m.Push(it)
		}
		return col.got
	}
	off := run(false)
	on := run(true)
	if len(off["driver-b"]) == 0 {
		t.Fatal("raw-frame stream produced no estimates")
	}
	assertSameEstimates(t, "recycle", off, on)
}
