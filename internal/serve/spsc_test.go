package serve

// Tests for the lock-free Producer ingest lane: ring primitives,
// estimate-equivalence with the mutex path, conservation under
// concurrent producers, close races, and drop-newest accounting.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"vihot/internal/core"
)

func TestSPSCRingPrimitives(t *testing.T) {
	r := newSPSCRing(5) // rounds up to 8
	if len(r.buf) != 8 || r.mask != 7 {
		t.Fatalf("capacity = %d mask = %d, want 8/7", len(r.buf), r.mask)
	}
	if !r.empty() {
		t.Fatal("new ring not empty")
	}
	for i := 0; i < 8; i++ {
		tl := r.tail.Load()
		r.buf[tl&r.mask] = Item{Time: float64(i)}
		r.tail.Store(tl + 1)
	}
	if r.empty() {
		t.Fatal("full ring reports empty")
	}
	out := r.drain(nil, 3)
	if len(out) != 3 || out[0].Time != 0 || out[2].Time != 2 {
		t.Fatalf("drain(3) = %v", out)
	}
	out = r.drain(out[:0], 100)
	if len(out) != 5 || out[0].Time != 3 || out[4].Time != 7 {
		t.Fatalf("second drain = %v", out)
	}
	if !r.empty() {
		t.Fatal("drained ring not empty")
	}
	// Drained slots must not pin items.
	for i := range r.buf {
		if r.buf[i] != (Item{}) {
			t.Fatalf("slot %d not zeroed after drain", i)
		}
	}
	r.seal()
	if !r.sealed.Load() {
		t.Fatal("seal did not stick")
	}
}

// TestProducerEquivalentToPush: one session's stream pushed through a
// Producer yields exactly the estimate sequence the deterministic
// synchronous path yields — the SPSC lane reorders nothing within a
// session.
func TestProducerEquivalentToPush(t *testing.T) {
	stream := make([]Item, 4000)
	for i := range stream {
		ts := float64(i) * 0.002
		stream[i] = Item{Session: "car-1", Kind: KindPhase, Time: ts, Phi: math.Sin(ts * 6)}
	}
	run := func(det bool) []core.Estimate {
		var mu sync.Mutex
		var got []core.Estimate
		m := New(Config{
			Deterministic: det,
			Shards:        3,
			OnEstimate: func(_ string, est core.Estimate) {
				mu.Lock()
				got = append(got, est)
				mu.Unlock()
			},
		})
		defer m.Close()
		if err := m.Open("car-1", testProfile(t), core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
		p := m.NewProducer()
		for i := 0; i < len(stream); i += 64 {
			end := min(i+64, len(stream))
			batch := append([]Item(nil), stream[i:end]...)
			p.PushBatch(batch)
		}
		m.Flush()
		return got
	}
	want := run(true)
	got := run(false)
	if len(want) == 0 {
		t.Fatal("deterministic run produced no estimates")
	}
	if len(got) != len(want) {
		t.Fatalf("producer path delivered %d estimates, deterministic %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimate %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestProducerConcurrentConservation: many producer goroutines plus a
// mutex-path pusher hammer one manager concurrently; after a drain the
// conservation identity must hold exactly and every non-dropped item
// must have been processed.
func TestProducerConcurrentConservation(t *testing.T) {
	m := New(Config{Shards: 4, QueueLen: 256})
	const sessions = 8
	for s := 0; s < sessions; s++ {
		if err := m.Open(fmt.Sprintf("car-%d", s), testProfile(t), core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	const producers = 4
	const perProducer = 3000
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := m.NewProducer()
			batch := make([]Item, 0, 32)
			for i := 0; i < perProducer; i++ {
				ts := float64(i) * 0.002
				batch = append(batch, Item{
					Session: fmt.Sprintf("car-%d", (w*perProducer+i)%sessions),
					Kind:    KindPhase, Time: ts, Phi: math.Sin(ts * 6),
				})
				if len(batch) == cap(batch) {
					p.PushBatch(batch)
					batch = batch[:0]
				}
			}
			p.PushBatch(batch)
		}(w)
	}
	// One legacy pusher sharing the same shards, plus an item with a
	// corrupt kind and one for an unknown session, to exercise every
	// accounting branch at once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			ts := float64(i) * 0.002
			m.Push(Item{Session: fmt.Sprintf("car-%d", i%sessions), Kind: KindPhase, Time: ts, Phi: math.Cos(ts * 5)})
		}
		m.Push(Item{Session: "car-0", Kind: ItemKind(200)})
		m.Push(Item{Session: "ghost", Kind: KindPhase, Time: 1, Phi: 0})
	}()
	wg.Wait()
	m.CloseDrain()
	snap := m.Counters().Snapshot()
	want := snap.Processed + snap.DroppedStale + snap.DroppedUnknown +
		snap.DroppedClosed + snap.RejectedKind
	if snap.Total() != want {
		t.Fatalf("conservation violated: Total=%d, accounted=%d (%+v)", snap.Total(), want, snap)
	}
	if snap.PhasesIn == 0 || snap.Processed == 0 || snap.Estimates == 0 {
		t.Fatalf("no traffic made it through: %+v", snap)
	}
	if snap.RejectedKind != 1 || snap.DroppedUnknown < 1 {
		t.Fatalf("accounting branches unexercised: %+v", snap)
	}
}

// TestProducerCloseRace: producers pushing full-speed while the
// manager hard-closes must neither panic nor leak items from the
// accounting — everything accepted is processed or counted dropped,
// everything after the seal is RejectedClosed.
func TestProducerCloseRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := New(Config{Shards: 2, QueueLen: 64})
		if err := m.Open("car-0", testProfile(t), core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := m.NewProducer()
				<-start
				for i := 0; i < 500; i++ {
					ts := float64(i) * 0.002
					p.Push(Item{Session: "car-0", Kind: KindPhase, Time: ts, Phi: math.Sin(ts * 6)})
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m.Close()
		}()
		close(start)
		wg.Wait()
		snap := m.Counters().Snapshot()
		want := snap.Processed + snap.DroppedStale + snap.DroppedUnknown +
			snap.DroppedClosed + snap.RejectedKind
		if snap.Total() != want {
			t.Fatalf("trial %d: conservation violated: Total=%d accounted=%d (%+v)",
				trial, snap.Total(), want, snap)
		}
	}
}

// TestProducerFullRingDropsNewest pins the SPSC shed policy: a batch
// larger than the ring keeps the head of the batch and counts the
// overflow in DroppedStale (kind counters still see every item).
func TestProducerFullRingDropsNewest(t *testing.T) {
	m := New(Config{Shards: 1, QueueLen: 1})
	defer m.Close()
	p := m.NewProducer()
	batch := make([]Item, 10)
	for i := range batch {
		batch[i] = Item{Session: "nobody", Kind: KindPhase, Time: float64(i), Phi: 0}
	}
	p.PushBatch(batch)
	m.Flush()
	snap := m.Counters().Snapshot()
	if snap.PhasesIn != 10 {
		t.Fatalf("PhasesIn = %d, want 10 (every item is counted in)", snap.PhasesIn)
	}
	if snap.DroppedStale < 9 {
		t.Fatalf("DroppedStale = %d, want ≥9 with a 1-slot ring", snap.DroppedStale)
	}
	if got := snap.Processed + snap.DroppedStale + snap.DroppedUnknown; got != 10 {
		t.Fatalf("conservation violated: %+v", snap)
	}
}

// TestProducerAfterClose: a producer created on a closed manager (and
// pushes racing past the seal) are refused and counted RejectedClosed,
// exactly like the mutex path.
func TestProducerAfterClose(t *testing.T) {
	m := New(Config{Shards: 2})
	m.Close()
	p := m.NewProducer()
	p.Push(Item{Session: "car-0", Kind: KindPhase, Time: 1, Phi: 0})
	p.PushBatch([]Item{
		{Session: "car-0", Kind: KindPhase, Time: 2, Phi: 0},
		{Session: "car-1", Kind: KindPhase, Time: 3, Phi: 0},
	})
	snap := m.Counters().Snapshot()
	if snap.RejectedClosed != 3 {
		t.Fatalf("RejectedClosed = %d, want 3", snap.RejectedClosed)
	}
	if snap.Total() != 0 {
		t.Fatalf("closed manager accepted accounting responsibility: %+v", snap)
	}
}

// TestProducerDeterministicDelegates: in deterministic mode the
// Producer degrades to the synchronous Push path, so replay tooling
// can hold one API.
func TestProducerDeterministicDelegates(t *testing.T) {
	var got []core.Estimate
	m := New(Config{Deterministic: true, OnEstimate: func(_ string, est core.Estimate) {
		got = append(got, est)
	}})
	defer m.Close()
	if err := m.Open("car-1", testProfile(t), core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	p := m.NewProducer()
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.002
		p.Push(Item{Session: "car-1", Kind: KindPhase, Time: ts, Phi: math.Sin(ts * 6)})
	}
	if len(got) == 0 {
		t.Fatal("deterministic producer delivered no estimates")
	}
	snap := m.Counters().Snapshot()
	if snap.PhasesIn != 2000 || snap.Processed != 2000 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestProducerFlushSeesRingBacklog: Flush must not return while items
// are still sitting unprocessed in a producer ring.
func TestProducerFlushSeesRingBacklog(t *testing.T) {
	m := New(Config{Shards: 2})
	defer m.Close()
	if err := m.Open("car-1", testProfile(t), core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	p := m.NewProducer()
	const n = 5000
	for i := 0; i < n; i++ {
		ts := float64(i) * 0.002
		p.Push(Item{Session: "car-1", Kind: KindPhase, Time: ts, Phi: math.Sin(ts * 6)})
	}
	m.Flush()
	snap := m.Counters().Snapshot()
	if snap.Processed+snap.DroppedStale != n {
		t.Fatalf("after Flush: processed=%d dropped=%d, want them to sum to %d",
			snap.Processed, snap.DroppedStale, n)
	}
}
