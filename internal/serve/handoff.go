package serve

import (
	"fmt"
	"math"
	"sort"

	"vihot/internal/core"
	"vihot/internal/journal"
)

// Session handoff seams: export a session's transferable state as a
// journal KindExport record, and rebuild a session from one on another
// manager. These are the serve-side halves of the cluster tier's
// drain/failover protocol (internal/cluster), but they stand alone —
// a snapshot→restore round-trip on a single process preserves the
// session clock, health, and last estimate with no cluster in the
// loop.
//
// Quiescence contract: ExportSession and ExportSessions read
// worker-owned session fields (clock, health, last estimate), so they
// must run on a quiesced manager — after Flush has returned with no
// concurrent pushers. The shard mutex then orders the worker's final
// writes before the export's reads, which keeps the reads sound under
// the race detector without adding any synchronization to the hot
// path.

// ExportSession snapshots one session's transferable state: the
// session clock, degradation health, and last delivered estimate,
// flagged for whichever of those the session actually has. The From,
// To, and ExportFailover fields are left for the transfer coordinator
// to fill — serve knows nothing about node identity.
func (m *Manager) ExportSession(id string) (journal.Record, error) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.sessions[id]
	if s == nil {
		return journal.Record{}, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return exportRecord(s), nil
}

// ExportSessions snapshots every open session, sorted by session ID so
// a drain transfers (and journals) its sessions in one deterministic
// order regardless of shard map iteration. Same quiescence contract as
// ExportSession.
func (m *Manager) ExportSessions() []journal.Record {
	var recs []journal.Record
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			recs = append(recs, exportRecord(s))
		}
		sh.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Session < recs[j].Session })
	return recs
}

// exportRecord builds the snapshot. Caller holds the session's shard
// mutex.
func exportRecord(s *session) journal.Record {
	rec := journal.Record{
		Kind:    journal.KindExport,
		Session: s.id,
		Health:  uint8(s.h),
	}
	if s.haveNow {
		rec.T = s.now
		rec.Flags |= journal.ExportHasClock
	}
	if s.hasEst {
		rec.Flags |= journal.ExportHasEstimate
		rec.EstT = s.lastEst.Time
		rec.Yaw = s.lastEst.Yaw
		rec.Position = int32(s.lastEst.Position)
		rec.Source = uint8(s.lastEst.Source)
		rec.MatchDist = s.lastEst.MatchDist
	}
	return rec
}

// restoreCSIGapFrac places the restored session's synthetic CSI anchor
// inside the coasting band: the fraction of the coasting→stale span
// past CoastAfterS. The session therefore computes COASTING at its
// restored clock (not STALE — its state was live moments ago on the
// source node) and the first real CSI sample lands with a
// past-coasting gap, which triggers the standard resume path: tracker
// reset, DEGRADED hold for RecoverAfterS, then HEALTHY.
const restoreCSIGapFrac = 0.25

// RestoreSession rebuilds a session from an export snapshot: a fresh
// pipeline over the (already replicated) profile, the snapshot's
// clock and last estimate seeded in, and the session entering
// COASTING until frames resume — the destination has no idea how much
// of the stream was lost in transit, so it coasts on the carried
// estimate rather than claiming health it cannot prove.
//
// A snapshot without ExportHasClock restores as a fresh session
// (the source never admitted an item, so there is nothing to coast
// on). Items for the session must not be pushed until RestoreSession
// returns.
func (m *Manager) RestoreSession(id string, profile *core.Profile, cfg core.PipelineConfig, snap journal.Record) error {
	if id == "" {
		return ErrNoSessionID
	}
	if snap.Kind != journal.KindExport {
		return fmt.Errorf("%w: restore from kind %v", journal.ErrBadRecord, snap.Kind)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.mu.Unlock()
	pl, err := core.NewPipeline(profile, cfg)
	if err != nil {
		return fmt.Errorf("serve: restore %q: %w", id, err)
	}
	s := &session{id: id, pl: pl, mirror: m.cfg.Journal != nil}
	if snap.Flags&journal.ExportHasEstimate != 0 {
		s.lastEst = core.Estimate{
			Time:      snap.EstT,
			Yaw:       snap.Yaw,
			Position:  int(snap.Position),
			Source:    core.Source(snap.Source),
			MatchDist: snap.MatchDist,
		}
		s.hasEst = true
	}
	coast := false
	if snap.Flags&journal.ExportHasClock != 0 {
		s.now, s.haveNow = snap.T, true
		if s.mirror {
			s.clockBits.Store(math.Float64bits(snap.T))
		}
		if !m.cfg.Health.Disable {
			// Anchor a synthetic last-CSI time inside the coasting band
			// (see restoreCSIGapFrac) so targetHealth computes COASTING
			// at the restored clock and real CSI resuming takes the
			// standard recovery path.
			hc := &m.cfg.Health
			gap := hc.CoastAfterS + restoreCSIGapFrac*(hc.StaleAfterS-hc.CoastAfterS)
			s.lastCSI, s.haveCSI = snap.T-gap, true
			coast = true
		}
	}
	if err := m.adopt(s); err != nil {
		return err
	}
	if coast {
		// The transition is journaled and counted like any other; it
		// runs after adopt so a failed restore leaves no trace, and
		// before any item can reach the session (the caller must not
		// route items until RestoreSession returns).
		m.transition(s, Coasting)
	}
	return nil
}
