package serve_test

import (
	"errors"
	"testing"

	"vihot/internal/core"
	"vihot/internal/journal"
	"vihot/internal/serve"
)

// TestHandoffSnapshotRestoreRoundTrip is the handoff seam in
// isolation, no cluster in the loop: export a live session from one
// manager, restore it on another, and prove the snapshot carried the
// session clock, health, last estimate, and profile identity — then
// that the restored session recovers to HEALTHY once its stream
// resumes.
func TestHandoffSnapshotRestoreRoundTrip(t *testing.T) {
	f := getFixture(t)
	const id = "driver-a"
	items := f.streams[id]
	half := len(items) / 2

	src := serve.New(serve.Config{Deterministic: true})
	defer src.Close()
	if err := src.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:half] {
		src.Push(it)
	}
	src.Flush()

	snap, err := src.ExportSession(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != journal.KindExport || snap.Session != id {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Flags&journal.ExportHasClock == 0 || snap.T <= 0 {
		t.Fatalf("snapshot carries no clock: %+v", snap)
	}
	if snap.Flags&journal.ExportHasEstimate == 0 || snap.EstT <= 0 {
		t.Fatalf("snapshot carries no estimate: %+v", snap)
	}
	if h, ok := src.Health(id); !ok || uint8(h) != snap.Health {
		t.Fatalf("snapshot health %d, live session %v", snap.Health, h)
	}

	dst := serve.New(serve.Config{Deterministic: true})
	defer dst.Close()
	if err := dst.RestoreSession(id, f.profile, core.DefaultPipelineConfig(), snap); err != nil {
		t.Fatal(err)
	}

	// The restored session coasts until frames resume.
	if h, ok := dst.Health(id); !ok || h != serve.Coasting {
		t.Fatalf("restored health = %v (%v), want coasting", h, ok)
	}
	// Profile identity: the restore adopted the same shared instance.
	if p, ok := dst.Profile(id); !ok || p != f.profile {
		t.Fatalf("restored profile instance differs")
	}
	// Re-exporting reproduces the snapshot's clock and estimate: the
	// transferable state survived the round trip bit for bit.
	again, err := dst.ExportSession(id)
	if err != nil {
		t.Fatal(err)
	}
	if again.T != snap.T || again.EstT != snap.EstT || again.Yaw != snap.Yaw ||
		again.Position != snap.Position || again.Source != snap.Source ||
		again.MatchDist != snap.MatchDist || again.Flags != snap.Flags {
		t.Fatalf("re-export = %+v, want the restored snapshot %+v", again, snap)
	}
	if again.Health != uint8(serve.Coasting) {
		t.Fatalf("re-export health = %d, want coasting", again.Health)
	}

	// Resume the stream: the standard recovery path (tracker reset,
	// DEGRADED hold, then HEALTHY) brings the session all the way back.
	for _, it := range items[half:] {
		dst.Push(it)
	}
	dst.Flush()
	if h, ok := dst.Health(id); !ok || h != serve.Healthy {
		t.Fatalf("resumed health = %v, want healthy", h)
	}
	snapc := dst.Counters().Snapshot()
	if snapc.TrackerResets == 0 || snapc.Recoveries == 0 || snapc.Estimates == 0 {
		t.Fatalf("resume books: %+v", snapc)
	}
}

// TestExportSessionsDeterministicOrder pins the drain ordering
// guarantee: exports come out sorted by session ID regardless of
// shard placement or map iteration.
func TestExportSessionsDeterministicOrder(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Shards: 4})
	defer m.Close()
	ids := []string{"zeta", "alpha", "mid-7", "beta"}
	for _, id := range ids {
		if err := m.Open(id, f.profile, core.DefaultPipelineConfig()); err != nil {
			t.Fatal(err)
		}
	}
	recs := m.ExportSessions()
	if len(recs) != len(ids) {
		t.Fatalf("exported %d sessions, want %d", len(recs), len(ids))
	}
	want := []string{"alpha", "beta", "mid-7", "zeta"}
	for i, rec := range recs {
		if rec.Session != want[i] {
			t.Fatalf("export %d = %q, want %q", i, rec.Session, want[i])
		}
		// Never fed: no clock, no estimate, restores fresh.
		if rec.Flags != 0 {
			t.Fatalf("idle export %q flags = %d, want 0", rec.Session, rec.Flags)
		}
	}
}

// TestRestoreSessionErrors covers the refusal cases: wrong record
// kind, duplicate ID, empty ID, unknown export source — and that a
// clockless snapshot restores as a fresh (HEALTHY, not coasting)
// session.
func TestRestoreSessionErrors(t *testing.T) {
	f := getFixture(t)
	m := serve.New(serve.Config{Deterministic: true})
	defer m.Close()

	if _, err := m.ExportSession("ghost"); !errors.Is(err, serve.ErrUnknownSession) {
		t.Fatalf("export ghost: %v", err)
	}
	if err := m.RestoreSession("", f.profile, core.DefaultPipelineConfig(),
		journal.Record{Kind: journal.KindExport}); !errors.Is(err, serve.ErrNoSessionID) {
		t.Fatalf("empty id: %v", err)
	}
	if err := m.RestoreSession("x", f.profile, core.DefaultPipelineConfig(),
		journal.Record{Kind: journal.KindClose}); !errors.Is(err, journal.ErrBadRecord) {
		t.Fatalf("wrong kind: %v", err)
	}

	fresh := journal.Record{Kind: journal.KindExport, Session: "x"}
	if err := m.RestoreSession("x", f.profile, core.DefaultPipelineConfig(), fresh); err != nil {
		t.Fatal(err)
	}
	if h, _ := m.Health("x"); h != serve.Healthy {
		t.Fatalf("clockless restore health = %v, want healthy", h)
	}
	if err := m.RestoreSession("x", f.profile, core.DefaultPipelineConfig(), fresh); !errors.Is(err, serve.ErrDuplicateID) {
		t.Fatalf("duplicate restore: %v", err)
	}
}
