package serve

import (
	"math"

	"vihot/internal/core"
	"vihot/internal/journal"
)

// Journal glue: when Config.Journal is set, the manager appends one
// record per estimate delivered, per health transition, per idle-TTL
// reap, and per explicit CloseSession. Appends happen on the same
// goroutines as the sinks they ride along with (worker goroutines for
// estimates/health/reaps, the caller for closes) and never block: the
// journal's write-behind queue absorbs them, and an overflow sheds
// the record — counted here in JournalDropped, so the serving books
// extend to durability:
//
//	JournalAppended + JournalDropped ==
//	    Estimates + ToDegraded + ToCoasting + ToStale + Recoveries +
//	    SessionsReaped + SessionsClosed
//
// after a drain with journaling enabled for the whole run (the
// KindShutdown trailer is the journal's own and is outside the
// identity).

// journalAppend offers one record to the configured journal and
// settles the serve-side accounting.
func (m *Manager) journalAppend(rec journal.Record) {
	if m.cfg.Journal.Append(rec) {
		m.counters.journalAppended.Add(1)
	} else {
		m.counters.journalDropped.Add(1)
	}
}

// journalEstimate records one delivered estimate with the health it
// was emitted under. Called from emit, worker-goroutine-serial per
// session.
func (m *Manager) journalEstimate(s *session, est core.Estimate) {
	if m.cfg.Journal == nil {
		return
	}
	m.journalAppend(journal.Record{
		Kind:      journal.KindEstimate,
		Session:   s.id,
		T:         est.Time,
		Yaw:       est.Yaw,
		Position:  int32(est.Position),
		Source:    uint8(est.Source),
		MatchDist: est.MatchDist,
		Health:    uint8(s.h),
	})
}

// journalHealth records one degradation-state transition.
func (m *Manager) journalHealth(s *session, from, to Health) {
	if m.cfg.Journal == nil {
		return
	}
	m.journalAppend(journal.Record{
		Kind:    journal.KindHealth,
		Session: s.id,
		T:       s.now,
		From:    uint8(from),
		To:      uint8(to),
	})
}

// journalReap records one idle-TTL eviction at the sweep's shard
// stream time.
func (m *Manager) journalReap(id string, t float64) {
	if m.cfg.Journal == nil {
		return
	}
	m.journalAppend(journal.Record{Kind: journal.KindReap, Session: id, T: t})
}

// journalClose records one explicit CloseSession with the session's
// last clock and health. The caller goroutine races the shard worker
// here, which is why the session mirrors both into atomics when
// journaling is on.
func (m *Manager) journalClose(s *session) {
	if m.cfg.Journal == nil {
		return
	}
	m.journalAppend(journal.Record{
		Kind:    journal.KindClose,
		Session: s.id,
		T:       math.Float64frombits(s.clockBits.Load()),
		Health:  uint8(s.health.Load()),
	})
}
