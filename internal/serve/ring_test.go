package serve

import (
	"sync"
	"testing"
)

// TestShardRingShedsOldest pins the load-shedding contract: a full
// queue drops the stalest item, keeps FIFO order for the rest, and
// reports the drop to the caller.
func TestShardRingShedsOldest(t *testing.T) {
	sh := &shard{ring: make([]Item, 4)}
	sh.cond = sync.NewCond(&sh.mu)

	for i := 0; i < 4; i++ {
		dropped, closed := sh.push(Item{Time: float64(i)})
		if dropped || closed {
			t.Fatalf("push %d: dropped=%v closed=%v with queue not full and shard open", i, dropped, closed)
		}
	}
	// Two overflowing pushes shed the two oldest items (t=0, t=1).
	for i := 4; i < 6; i++ {
		dropped, closed := sh.push(Item{Time: float64(i)})
		if !dropped || closed {
			t.Fatalf("push %d: dropped=%v closed=%v, want a reported drop on a full open shard", i, dropped, closed)
		}
	}
	if sh.count != 4 {
		t.Fatalf("count = %d, want 4", sh.count)
	}
	for i := 0; i < 4; i++ {
		got := sh.ring[(sh.head+i)%len(sh.ring)].Time
		if want := float64(i + 2); got != want {
			t.Fatalf("queue[%d].Time = %v, want %v (oldest must be shed first)", i, got, want)
		}
	}
}
