// Package cabin models the car interior as an RF scene: the phone
// transmitter on the dashboard, the receiver antennas (five candidate
// layouts, Sec. 5.2.2), the driver's head as a moving scatterer, the
// passenger, the steering wheel and hands, cabin micro-motions
// (Sec. 5.3.1), and antenna vibration on bumpy roads (Sec. 5.3.2).
//
// Frame conventions follow package geom: +X from the car's back to
// its front (a 0°-orientation driver faces +X), +Y toward the
// passenger side, +Z up. Units are meters and degrees.
package cabin

import (
	"math"

	"vihot/internal/geom"
)

// Head models the driver's (or passenger's) head as a quasi-specular
// ellipsoidal scatterer. The dominant return comes from the skull
// surface facing the transmitter; for a perfect sphere that point
// would not move under rotation at all, so what actually modulates the
// CSI phase is the head's asphericity: the face bulges a few
// centimeters beyond the mean radius, so as the head yaws toward or
// away from the phone the effective reflection point advances and
// recedes (and the flat face reflects more strongly than hair). A
// weak secondary scatterer (nose/chin ridge) rotates with the face and
// adds a small distinctive ripple. Together they give the
// centimeter-scale, smoothly non-injective path modulation behind the
// curves of Fig. 3.
type Head struct {
	Radius       float64 // mean skull radius, ≈ 9 cm
	FaceBulge    float64 // extra radius presented when facing the TX
	Lateral      float64 // sideways drift of the specular point with yaw
	Reflectivity float64 // main return reflection coefficient
	NoseRadius   float64 // lever arm of the secondary (nose) scatterer
	NoseRefl     float64 // secondary reflectivity
	BlockRadius  float64 // radius used for LOS blockage tests
	// DiffractionSkew is the peak extra creeping-wave detour (meters)
	// the rotated face adds to a shadowed path; see BlockEffect.
	DiffractionSkew float64
	// ShadowAmp is the residual amplitude of a path whose straight
	// line passes dead-center through the head.
	ShadowAmp float64
	// GeoDetour scales the yaw-independent part of the creeping-wave
	// detour (relative to BlockRadius).
	GeoDetour float64
}

// DefaultHead returns the head model used throughout the evaluation.
func DefaultHead() Head {
	return Head{
		Radius:          0.09,
		FaceBulge:       0.010,
		Lateral:         0.025,
		Reflectivity:    0.22,
		NoseRadius:      0.10,
		NoseRefl:        0.02,
		BlockRadius:     0.11,
		DiffractionSkew: 0.055,
		ShadowAmp:       0.55,
		GeoDetour:       0.35,
	}
}

// facingCos returns cos(α) where α is the horizontal angle between the
// facing direction at yawDeg and the direction from center toward the
// observer point.
func facingCos(center geom.Vec3, yawDeg float64, toward geom.Vec3) float64 {
	dir := toward.Sub(center)
	dir.Z = 0
	u := geom.HeadingXY(yawDeg)
	n := dir.Norm()
	if n == 0 {
		return 1
	}
	return u.Dot(dir) / n
}

// Scatter returns the dominant scatter point and its effective
// reflectivity for a head centered at center facing yaw degrees, as
// seen from the transmitter at tx. The point sits on the head surface
// toward the TX, pushed outward by the face bulge when the driver
// faces the phone and drifting slightly sideways with the face.
func (h Head) Scatter(center geom.Vec3, yawDeg float64, tx geom.Vec3) (geom.Vec3, float64) {
	return h.Scatter3D(center, yawDeg, 0, tx)
}

// Scatter3D extends Scatter with head pitch (degrees, positive = chin
// up): nodding tilts the face bulge and slides the scatter point
// vertically — the third tracking dimension the paper defers to
// future work (Sec. 7). The 2-D tracker treats pitch as a
// disturbance; ext-pitch quantifies the cost.
func (h Head) Scatter3D(center geom.Vec3, yawDeg, pitchDeg float64, tx geom.Vec3) (geom.Vec3, float64) {
	dir := tx.Sub(center).Unit()
	cosA := facingCos(center, yawDeg, tx)
	cosP := math.Cos(geom.Radians(pitchDeg))
	dist := h.Radius + h.FaceBulge*cosA*cosP
	pt := center.
		Add(dir.Scale(dist)).
		Add(geom.HeadingXY(yawDeg).Scale(h.Lateral * cosP)).
		Add(geom.Vec3{Z: h.Lateral * math.Sin(geom.Radians(pitchDeg))})
	// The flat face reflects better than the hair-covered back.
	refl := h.Reflectivity * (0.7 + 0.3*cosA*cosP)
	if refl < 0 {
		refl = 0
	}
	return pt, refl
}

// NoseScatter returns the secondary scatter point, which rotates
// rigidly with the face.
func (h Head) NoseScatter(center geom.Vec3, yawDeg float64) geom.Vec3 {
	return center.Add(geom.HeadingXY(yawDeg).Scale(h.NoseRadius))
}

// Blocks reports how much a head centered at center attenuates the
// segment a→b: 1 means clear, values below 1 mean the line of sight
// passes within BlockRadius of the head center. The returned factor
// fades smoothly from deep shadow at the center to clear at the edge
// so small head movements do not cause discontinuous CSI jumps.
func (h Head) Blocks(center, a, b geom.Vec3) float64 {
	amp, _ := h.BlockEffect(center, a, b, 0)
	return amp
}

// BlockEffect returns the amplitude factor and the diffraction detour
// (extra electrical path length, meters) a head centered at center
// imposes on segment a→b when the head faces yawDeg.
//
// A wave whose straight line is shadowed does not stop — it creeps
// around the skull, arriving attenuated and with a longer electrical
// path. The detour has two parts: a geometric term (deeper shadow ⇒
// longer way around) and an orientation term, because the silhouette
// the wave grazes rotates with the face: the protruding face/jaw
// lengthens the detour on the side the driver turns toward. The
// orientation term is what makes the shadowed antenna of Layout 1 a
// sensitive, monotone observer of head yaw — a scatterer sitting
// directly between TX and RX would otherwise be nearly blind to
// rotation (forward-path stationarity).
func (h Head) BlockEffect(center, a, b geom.Vec3, yawDeg float64) (amp, extra float64) {
	d := distPointSegment(center, a, b)
	if d >= h.BlockRadius {
		return 1, 0
	}
	shadow := h.ShadowAmp
	if shadow <= 0 {
		shadow = 0.25
	}
	frac := d / h.BlockRadius
	amp = shadow + (1-shadow)*frac
	depth := 1 - frac // 1 at dead center, 0 at the shadow edge
	geoDetour := h.GeoDetour * h.BlockRadius * depth
	// The angular argument is compressed so the detour keeps changing
	// out to ±90° and beyond — the silhouette the wave grazes keeps
	// rotating past the point where a pure sine would flatten.
	faceDetour := h.DiffractionSkew * math.Sin(geom.Radians(0.72*yawDeg)) * depth
	return amp, geoDetour + faceDetour
}

// distPointSegment returns the distance from point p to segment ab.
func distPointSegment(p, a, b geom.Vec3) float64 {
	ab := b.Sub(a)
	denom := ab.Norm2()
	if denom == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / denom
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// SteeringWheel models the wheel rim plus the driver's hands as a
// scatterer whose position rotates with the steering angle. A large
// steering input moves the hands by tens of centimeters — the strong
// CSI disturbance of Fig. 8 that the steering identifier (Sec. 3.6)
// must reject.
type SteeringWheel struct {
	Center       geom.Vec3 // wheel hub position
	Radius       float64   // hand grip radius, ≈ 18 cm
	Tilt         float64   // wheel plane tilt from vertical, degrees
	Reflectivity float64
}

// DefaultSteeringWheel positions the wheel between the driver and the
// dashboard.
func DefaultSteeringWheel() SteeringWheel {
	return SteeringWheel{
		Center:       geom.Vec3{X: 0.35, Y: 0, Z: 0.95},
		Radius:       0.18,
		Tilt:         25,
		Reflectivity: 0.45,
	}
}

// HandScatter returns the dominant hand/rim scatter point at the given
// wheel angle (degrees; 0 = hands at the top of the wheel).
func (w SteeringWheel) HandScatter(wheelDeg float64) geom.Vec3 {
	// The wheel plane is the YZ plane tilted about Y by Tilt degrees.
	s, c := math.Sincos(geom.Radians(wheelDeg))
	inPlane := geom.Vec3{Y: s * w.Radius, Z: c * w.Radius}
	tilted := inPlane.RotateAbout(geom.Vec3{Y: 1}, w.Tilt)
	return w.Center.Add(tilted)
}

// MicroMotion is a small oscillating scatterer: breathing chest, eye
// movement, a music-vibrated surface. Its displacement is sinusoidal
// with millimeter-scale amplitude, which Sec. 5.3.1 shows produces
// phase variations far below head turning.
type MicroMotion struct {
	Name         string
	Base         geom.Vec3 // rest position of the scatter point
	Dir          geom.Vec3 // oscillation direction (unit)
	AmplitudeM   float64   // oscillation amplitude, meters
	FreqHz       float64
	Reflectivity float64
}

// Pos returns the scatter position at time t.
func (m MicroMotion) Pos(t float64) geom.Vec3 {
	disp := m.AmplitudeM * math.Sin(2*math.Pi*m.FreqHz*t)
	return m.Base.Add(m.Dir.Unit().Scale(disp))
}

// Standard micro-motion sources of Fig. 15, positioned relative to the
// default driver seat.
func MicroBreathing() MicroMotion {
	return MicroMotion{
		Name:         "breathing+blinking",
		Base:         geom.Vec3{X: -0.05, Y: 0, Z: 0.95}, // chest
		Dir:          geom.Vec3{X: 1},
		AmplitudeM:   0.0015,
		FreqHz:       0.25,
		Reflectivity: 0.03,
	}
}

func MicroEyeMotion() MicroMotion {
	return MicroMotion{
		Name:         "intense eye motion",
		Base:         geom.Vec3{X: 0.07, Y: 0, Z: 1.22}, // eyes
		Dir:          geom.Vec3{Y: 1},
		AmplitudeM:   0.0012,
		FreqHz:       2.5,
		Reflectivity: 0.15,
	}
}

func MicroMusicVibration() MicroMotion {
	return MicroMotion{
		Name:         "music vibration",
		Base:         geom.Vec3{X: 0.5, Y: 0.3, Z: 0.85}, // dash speaker
		Dir:          geom.Vec3{Z: 1},
		AmplitudeM:   0.0006,
		FreqHz:       40,
		Reflectivity: 0.2,
	}
}

// Vibration models antenna shake on a bumpy road (Sec. 5.3.2): a
// regular oscillation of the RX antenna positions. The paper observes
// the resulting phase curves stay parallel with a small gap — the
// vibration has a regular pattern — so a sinusoid with mild amplitude
// captures the measured behaviour. The evaluation uses the paper's
// worst case: long soft coil antennas.
type Vibration struct {
	AmplitudeM float64   // displacement amplitude, meters
	FreqHz     float64   // dominant shake frequency
	Dir        geom.Vec3 // shake direction
}

// DefaultVibration matches the soft coil antennas of Fig. 9 on a
// campus road: millimeter-scale shake around 12 Hz.
func DefaultVibration() Vibration {
	return Vibration{AmplitudeM: 0.003, FreqHz: 12, Dir: geom.Vec3{Z: 1}}
}

// Offset returns the antenna displacement at time t for the antenna
// with the given index (antennas shake out of phase).
func (v Vibration) Offset(t float64, antenna int) geom.Vec3 {
	phase := 2*math.Pi*v.FreqHz*t + float64(antenna)*math.Pi/3
	return v.Dir.Unit().Scale(v.AmplitudeM * math.Sin(phase))
}
