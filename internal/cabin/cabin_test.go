package cabin

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"vihot/internal/geom"
	"vihot/internal/rf"
)

func mustScene(t *testing.T, cfg Config) *Scene {
	t.Helper()
	s, err := NewScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func phaseDiffAt(t *testing.T, s *Scene, st State) float64 {
	t.Helper()
	h := s.CleanCSI(st, nil)
	d := h[0][15] * cmplx.Conj(h[1][15])
	if d == 0 {
		t.Fatal("zero CSI")
	}
	return cmplx.Phase(d)
}

func defaultState(yaw float64) State {
	return State{HeadPos: DriverHeadBase, HeadYaw: yaw}
}

func TestNewSceneValidation(t *testing.T) {
	if _, err := NewScene(Config{Layout: Layout(0)}); err == nil {
		t.Error("invalid layout accepted")
	}
	if _, err := NewScene(Config{Layout: Layout(9)}); err == nil {
		t.Error("invalid layout accepted")
	}
	cfg := DefaultConfig()
	cfg.Chan = rf.Channelization{CenterHz: -1, NSubcarriers: 4}
	if _, err := NewScene(cfg); err == nil {
		t.Error("invalid channelization accepted")
	}
}

func TestSceneDefaults(t *testing.T) {
	s := mustScene(t, Config{Layout: Layout1})
	if s.Chan().NSubcarriers != 30 {
		t.Error("default channelization not applied")
	}
	if s.Config().Head == (Head{}) {
		t.Error("default head not applied")
	}
	if s.Config().Wheel == (SteeringWheel{}) {
		t.Error("default wheel not applied")
	}
}

func TestLayoutString(t *testing.T) {
	if Layout1.String() != "Layout 1" {
		t.Errorf("String = %q", Layout1.String())
	}
	if Layout(7).String() != "Layout(7)" {
		t.Errorf("String = %q", Layout(7).String())
	}
	if len(Layouts()) != 5 {
		t.Error("Layouts must list 5 placements")
	}
}

func TestLayoutsHaveDistinctPositions(t *testing.T) {
	seen := map[[2]geom.Vec3]Layout{}
	for _, l := range Layouts() {
		rx := l.rxPositions()
		if prev, dup := seen[rx]; dup {
			t.Errorf("%v and %v share RX positions", prev, l)
		}
		seen[rx] = l
	}
}

func TestHeadPosition(t *testing.T) {
	if HeadPosition(0, 1) != DriverHeadBase {
		t.Error("single-position profiling must use the base")
	}
	front := HeadPosition(0, 10)
	back := HeadPosition(9, 10)
	if front.X <= back.X {
		t.Error("position 0 must lean forward (+X)")
	}
	if math.Abs(front.X-back.X) < 0.15 {
		t.Error("positions must span the ≈18 cm lean range")
	}
	// Leaning away from upright must drop the head (pendulum arc).
	mid := HeadPosition(4, 9) // exact center
	if front.Z >= mid.Z || back.Z >= mid.Z {
		t.Error("leaning must lower the head")
	}
}

func TestPhaseVariesWithYaw(t *testing.T) {
	s := mustScene(t, DefaultConfig())
	p1 := phaseDiffAt(t, s, defaultState(-60))
	p2 := phaseDiffAt(t, s, defaultState(0))
	p3 := phaseDiffAt(t, s, defaultState(60))
	if math.Abs(geom.PhaseDiff(p1, p2)) < 0.1 || math.Abs(geom.PhaseDiff(p3, p2)) < 0.1 {
		t.Errorf("head yaw barely moves the phase: %v %v %v", p1, p2, p3)
	}
}

func TestPhaseVariesWithPosition(t *testing.T) {
	// Fig. 3: different head positions shift the CSI-orientation curve.
	s := mustScene(t, DefaultConfig())
	st1 := State{HeadPos: HeadPosition(0, 10), HeadYaw: 0}
	st2 := State{HeadPos: HeadPosition(9, 10), HeadYaw: 0}
	p1 := phaseDiffAt(t, s, st1)
	p2 := phaseDiffAt(t, s, st2)
	if math.Abs(geom.PhaseDiff(p1, p2)) < 0.05 {
		t.Errorf("head position barely moves the phase: %v vs %v", p1, p2)
	}
}

func TestPhaseContinuityInYaw(t *testing.T) {
	s := mustScene(t, DefaultConfig())
	prev := phaseDiffAt(t, s, defaultState(-75))
	for yaw := -74.5; yaw <= 75; yaw += 0.5 {
		cur := phaseDiffAt(t, s, defaultState(yaw))
		if math.Abs(geom.PhaseDiff(cur, prev)) > 0.5 {
			t.Fatalf("phase jump of %.2f rad at yaw %.1f", geom.PhaseDiff(cur, prev), yaw)
		}
		prev = cur
	}
}

func TestSteeringMovesPhase(t *testing.T) {
	// Fig. 8: wheel motion alone must swing the phase.
	s := mustScene(t, DefaultConfig())
	st := defaultState(0)
	p0 := phaseDiffAt(t, s, st)
	st.WheelDeg = 120
	p1 := phaseDiffAt(t, s, st)
	if math.Abs(geom.PhaseDiff(p0, p1)) < 0.2 {
		t.Errorf("steering barely moves the phase: %v vs %v", p0, p1)
	}
}

func TestMicroMotionsAreSmall(t *testing.T) {
	// Fig. 15: each micro-motion source must perturb the phase far
	// less than a head turn (the paper measures them one at a time).
	sources := map[string]MicroMotion{
		"breathing": MicroBreathing(),
		"eyes":      MicroEyeMotion(),
		"music":     MicroMusicVibration(),
	}
	for name, src := range sources {
		cfg := DefaultConfig()
		cfg.Micro = []MicroMotion{src}
		s := mustScene(t, cfg)
		base := phaseDiffAt(t, s, defaultState(0))
		var micro float64
		for ts := 0.0; ts < 4; ts += 0.05 {
			st := defaultState(0)
			st.Time = ts
			d := math.Abs(geom.PhaseDiff(phaseDiffAt(t, s, st), base))
			if d > micro {
				micro = d
			}
		}
		headTurn := math.Abs(geom.PhaseDiff(phaseDiffAt(t, s, defaultState(55)), base))
		if micro*3 > headTurn {
			t.Errorf("%s: micro swing %v not ≪ head swing %v", name, micro, headTurn)
		}
	}
}

func TestVibrationPerturbsButPreservesShape(t *testing.T) {
	// Fig. 16: vibration adds a small regular offset; the curve shape
	// survives.
	rigid := mustScene(t, DefaultConfig())
	cfg := DefaultConfig()
	v := DefaultVibration()
	cfg.Vibration = &v
	shaky := mustScene(t, cfg)

	var maxDev float64
	for yaw := -60.0; yaw <= 60; yaw += 10 {
		st := defaultState(yaw)
		st.Time = 0.137 // mid-oscillation
		d := math.Abs(geom.PhaseDiff(phaseDiffAt(t, rigid, st), phaseDiffAt(t, shaky, st)))
		if d > maxDev {
			maxDev = d
		}
	}
	if maxDev == 0 {
		t.Error("vibration had no effect")
	}
	if maxDev > 1.0 {
		t.Errorf("vibration deviation %v rad too violent", maxDev)
	}
}

func TestVibrationOffsetsOutOfPhase(t *testing.T) {
	v := DefaultVibration()
	o0 := v.Offset(0.01, 0)
	o1 := v.Offset(0.01, 1)
	if o0 == o1 {
		t.Error("antennas must vibrate out of phase")
	}
}

func TestPassengerPathOnlyWhenConfigured(t *testing.T) {
	alone := mustScene(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Passenger = true
	withP := mustScene(t, cfg)
	a := len(alone.Paths(defaultState(0))[0])
	b := len(withP.Paths(defaultState(0))[0])
	if b != a+1 {
		t.Errorf("passenger should add exactly 1 path per antenna: %d vs %d", a, b)
	}
}

func TestPassengerInterferenceSuppressedByAiming(t *testing.T) {
	// Sec. 3.5: with the phone aimed correctly, passenger head turns
	// perturb the phase much less than with a sideways phone.
	perturbation := func(aimed bool) float64 {
		cfg := DefaultConfig()
		cfg.Passenger = true
		cfg.PhoneAimedAtDriver = aimed
		s := mustScene(t, cfg)
		st := defaultState(0)
		base := phaseDiffAt(t, s, st)
		var worst float64
		for _, py := range []float64{-80, -40, 40, 80} {
			st.PassengerYaw = py
			if d := math.Abs(geom.PhaseDiff(phaseDiffAt(t, s, st), base)); d > worst {
				worst = d
			}
		}
		return worst
	}
	aimed := perturbation(true)
	sideways := perturbation(false)
	if aimed >= sideways {
		t.Errorf("dipole null not suppressing passenger: aimed %v vs sideways %v", aimed, sideways)
	}
}

func TestBlockEffectProperties(t *testing.T) {
	h := DefaultHead()
	center := geom.Vec3{Z: 1.2}
	// A segment passing straight through the center: deep shadow.
	amp, extra := h.BlockEffect(center, geom.Vec3{X: 1, Z: 1.2}, geom.Vec3{X: -1, Z: 1.2}, 0)
	if amp >= 1 || amp <= 0 {
		t.Errorf("shadow amp = %v", amp)
	}
	if extra <= 0 {
		t.Errorf("deep shadow must add detour, got %v", extra)
	}
	// A faraway segment: untouched.
	amp, extra = h.BlockEffect(center, geom.Vec3{X: 1, Z: 3}, geom.Vec3{X: -1, Z: 3}, 0)
	if amp != 1 || extra != 0 {
		t.Errorf("clear segment modified: amp=%v extra=%v", amp, extra)
	}
}

func TestBlockEffectYawMonotoneDetour(t *testing.T) {
	// The face detour must grow with sin(yaw) on a shadowed segment.
	h := DefaultHead()
	center := geom.Vec3{Z: 1.2}
	a, b := geom.Vec3{X: 1, Z: 1.2}, geom.Vec3{X: -1, Z: 1.2}
	_, eNeg := h.BlockEffect(center, a, b, -60)
	_, eZero := h.BlockEffect(center, a, b, 0)
	_, ePos := h.BlockEffect(center, a, b, 60)
	if !(eNeg < eZero && eZero < ePos) {
		t.Errorf("detour not monotone in yaw: %v %v %v", eNeg, eZero, ePos)
	}
}

func TestBlocksMatchesBlockEffect(t *testing.T) {
	h := DefaultHead()
	f := func(px, py, pz float64) bool {
		if math.Abs(px) > 3 || math.Abs(py) > 3 || math.Abs(pz) > 3 {
			return true
		}
		c := geom.Vec3{X: px, Y: py, Z: pz}
		a, b := geom.Vec3{X: 1}, geom.Vec3{X: -1}
		amp, _ := h.BlockEffect(c, a, b, 0)
		return h.Blocks(c, a, b) == amp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistPointSegment(t *testing.T) {
	a, b := geom.Vec3{X: -1}, geom.Vec3{X: 1}
	if d := distPointSegment(geom.Vec3{Y: 2}, a, b); d != 2 {
		t.Errorf("perpendicular dist = %v", d)
	}
	if d := distPointSegment(geom.Vec3{X: 5}, a, b); d != 4 {
		t.Errorf("beyond-end dist = %v", d)
	}
	if d := distPointSegment(geom.Vec3{X: 2}, a, a); d != 3 {
		t.Errorf("degenerate segment dist = %v", d)
	}
}

func TestHandScatterMoves(t *testing.T) {
	w := DefaultSteeringWheel()
	p0 := w.HandScatter(0)
	p120 := w.HandScatter(120)
	if p0.Dist(p120) < 0.15 {
		t.Errorf("wheel turn moved hands only %v m", p0.Dist(p120))
	}
	// Hands stay on the rim.
	if math.Abs(p0.Dist(w.Center)-w.Radius) > 1e-9 {
		t.Error("hands off the rim at 0°")
	}
	if math.Abs(p120.Dist(w.Center)-w.Radius) > 1e-9 {
		t.Error("hands off the rim at 120°")
	}
}

func TestScatterReflectivityFacingDependence(t *testing.T) {
	h := DefaultHead()
	tx := geom.Vec3{X: 0.55, Y: 0.22, Z: 1.05}
	_, facing := h.Scatter(DriverHeadBase, 22, tx) // roughly toward phone
	_, away := h.Scatter(DriverHeadBase, -150, tx)
	if facing <= away {
		t.Errorf("face should reflect more than hair: %v vs %v", facing, away)
	}
}

func TestMicroMotionOscillates(t *testing.T) {
	m := MicroBreathing()
	p0 := m.Pos(0)
	pQuarter := m.Pos(1 / m.FreqHz / 4)
	if p0.Dist(pQuarter) == 0 {
		t.Error("micro-motion did not move")
	}
	if d := p0.Dist(pQuarter); math.Abs(d-m.AmplitudeM) > 1e-9 {
		t.Errorf("quarter-period displacement = %v, want %v", d, m.AmplitudeM)
	}
	pFull := m.Pos(1 / m.FreqHz)
	if p0.Dist(pFull) > 1e-9 {
		t.Error("micro-motion not periodic")
	}
}

func TestCleanCSIBufferReuse(t *testing.T) {
	s := mustScene(t, DefaultConfig())
	buf := s.CleanCSI(defaultState(0), nil)
	buf2 := s.CleanCSI(defaultState(10), buf)
	if &buf[0][0] != &buf2[0][0] {
		t.Error("CleanCSI did not reuse buffers")
	}
}

func TestPathsInventory(t *testing.T) {
	s := mustScene(t, DefaultConfig())
	paths := s.Paths(defaultState(0))
	if len(paths) != 2 {
		t.Fatalf("want 2 antennas, got %d", len(paths))
	}
	// LOS + head + nose + 6 statics + wheel + breathing = 11 paths.
	if len(paths[0]) != 11 {
		t.Errorf("path inventory = %d, want 11", len(paths[0]))
	}
	for a := range paths {
		for i, p := range paths[a] {
			if p.Amplitude() < 0 {
				t.Errorf("antenna %d path %d has negative amplitude", a, i)
			}
			if math.IsNaN(p.Length()) {
				t.Errorf("antenna %d path %d has NaN length", a, i)
			}
		}
	}
}

func TestLayout1BlockedAntennaAsymmetry(t *testing.T) {
	// The defining feature of Layout 1: the head shadows antenna 0's
	// LOS but not antenna 1's.
	s := mustScene(t, DefaultConfig())
	paths := s.Paths(defaultState(0))
	los0, los1 := paths[0][0], paths[1][0]
	if los0.Blockage >= 0.9 {
		t.Errorf("antenna 0 LOS should be shadowed, blockage = %v", los0.Blockage)
	}
	if los1.Blockage < 0.9 {
		t.Errorf("antenna 1 LOS should be clear, blockage = %v", los1.Blockage)
	}
}
