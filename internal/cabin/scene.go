package cabin

import (
	"fmt"

	"vihot/internal/geom"
	"vihot/internal/rf"
)

// Layout selects one of the five RX antenna placements evaluated in
// Sec. 5.2.2. Layout 1 (Fig. 9) is the paper's recommended placement:
// one antenna's line of sight is blocked by the driver's head so it
// sees mostly the head reflection, while the other keeps a clear LOS
// reference — the phase difference then retains most of the
// head-induced variation.
type Layout int

const (
	Layout1 Layout = iota + 1 // Fig. 9: blocked/clear pair (best)
	Layout2                   // both antennas on the center console
	Layout3                   // both on the ceiling above the console
	Layout4                   // A-pillar + passenger door
	Layout5                   // both behind the back seats (worst)
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	if l < Layout1 || l > Layout5 {
		return fmt.Sprintf("Layout(%d)", int(l))
	}
	return fmt.Sprintf("Layout %d", int(l))
}

// Layouts lists all evaluated antenna placements.
func Layouts() []Layout {
	return []Layout{Layout1, Layout2, Layout3, Layout4, Layout5}
}

// rxPositions returns the two RX antenna positions for a layout.
func (l Layout) rxPositions() [2]geom.Vec3 {
	switch l {
	case Layout2:
		return [2]geom.Vec3{{X: 0.15, Y: 0.35, Z: 0.75}, {X: 0.3, Y: 0.35, Z: 0.75}}
	case Layout3:
		return [2]geom.Vec3{{X: 0.1, Y: 0.2, Z: 1.45}, {X: 0.3, Y: 0.2, Z: 1.45}}
	case Layout4:
		return [2]geom.Vec3{{X: 0.7, Y: -0.6, Z: 1.3}, {X: 0.2, Y: 0.75, Z: 1.1}}
	case Layout5:
		return [2]geom.Vec3{{X: -1.1, Y: -0.3, Z: 1.2}, {X: -1.1, Y: 0.3, Z: 1.2}}
	default: // Layout1
		// One antenna high on the driver-side B-pillar so the driver's
		// head sits squarely on its line of sight to the phone, one by
		// the center console with a clear LOS.
		return [2]geom.Vec3{{X: -0.37, Y: -0.11, Z: 1.3}, {X: 0.05, Y: 0.4, Z: 1.1}}
	}
}

// Config selects the scene composition.
type Config struct {
	Layout Layout
	Chan   rf.Channelization
	Head   Head
	Wheel  SteeringWheel
	// Phone overrides the dashboard phone-mount position; the zero
	// value uses PhonePos.
	Phone     geom.Vec3
	Passenger bool // passenger in the front seat
	// PhoneAimedAtDriver places the phone per Sec. 3.5: screen toward
	// the driver, short edge (antenna axis) toward the passenger, so
	// the dipole null suppresses passenger reflections. When false the
	// phone lies sideways and the passenger is fully illuminated.
	PhoneAimedAtDriver bool
	Micro              []MicroMotion // active micro-motion scatterers
	Vibration          *Vibration    // antenna vibration, nil = rigid
}

// DefaultConfig returns the paper's default experiment setup: Layout
// 1, 2.4 GHz, driver alone, phone aimed per Sec. 3.5, no micro-motion
// scatterers beyond the built-in statics, rigid antennas.
func DefaultConfig() Config {
	return Config{
		Layout:             Layout1,
		Chan:               rf.Channel2G4(),
		Head:               DefaultHead(),
		Wheel:              DefaultSteeringWheel(),
		PhoneAimedAtDriver: true,
		// The driver is always breathing; that fine structure is part
		// of every real CSI trace.
		Micro: []MicroMotion{MicroBreathing()},
	}
}

// Scene is an immutable cabin description; pair it with a State to
// compute instantaneous propagation paths and clean CSI.
type Scene struct {
	cfg   Config
	phone geom.Vec3

	tx        rf.Antenna
	rxBase    [2]geom.Vec3
	reflector []staticReflector

	// scratch buffers reused across Paths calls
	paths []rf.Path
}

// staticReflector is a stationary interior surface: dashboard, roof,
// seats, window frames. Static paths contribute to the absolute CSI
// phase but not to its variation (footnote 2 of the paper).
type staticReflector struct {
	point        geom.Vec3
	reflectivity float64
}

// DriverHeadBase is the nominal driver head center: the middle of the
// 10 profiling positions of Fig. 5.
var DriverHeadBase = geom.Vec3{X: 0, Y: 0, Z: 1.2}

// PassengerHeadBase is the front passenger's head center.
var PassengerHeadBase = geom.Vec3{X: 0, Y: 0.72, Z: 1.2}

// PhonePos is the dashboard phone-mount position (Fig. 9).
var PhonePos = geom.Vec3{X: 0.55, Y: 0.22, Z: 1.05}

// HeadPosition returns the head center for discrete profiling position
// i of n (Fig. 5): the driver leans from forward to backward across
// ≈ 18 cm. Leaning pivots at the spine, so the head also drops as it
// moves away from upright — the vertical component is what makes the
// positions clearly distinguishable to the shadowed antenna.
func HeadPosition(i, n int) geom.Vec3 {
	if n < 2 {
		return DriverHeadBase
	}
	// The grid includes the driver's natural pose: position n/2 is
	// exactly the resting head position (a driver profiles from where
	// they actually sit), with forward leans below it and backward
	// leans above.
	center := n / 2
	step := 0.18 / float64(n-1)
	x := -step * float64(i-center) // i < center leans forward (+X)
	const torso = 0.45
	z := -x * x / (2 * torso) * 4 // pendulum arc, exaggerated by slouch
	return DriverHeadBase.Add(geom.Vec3{X: x, Z: z})
}

// NewScene builds a Scene from cfg. Unset channelization defaults to
// the 2.4 GHz prototype band.
func NewScene(cfg Config) (*Scene, error) {
	if cfg.Chan.NSubcarriers == 0 {
		cfg.Chan = rf.Channel2G4()
	}
	if err := cfg.Chan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Layout < Layout1 || cfg.Layout > Layout5 {
		return nil, fmt.Errorf("cabin: unknown antenna layout %d", int(cfg.Layout))
	}
	if cfg.Head == (Head{}) {
		cfg.Head = DefaultHead()
	}
	if cfg.Wheel == (SteeringWheel{}) {
		cfg.Wheel = DefaultSteeringWheel()
	}
	s := &Scene{cfg: cfg, phone: cfg.Phone, rxBase: cfg.Layout.rxPositions()}
	if s.phone == (geom.Vec3{}) {
		s.phone = PhonePos
	}

	// The phone antenna: a wire in the long edge, whose radiation null
	// lies along the wire ("the direction to which the phone's short
	// edge points", Sec. 3.5). Aimed per the paper, the long axis
	// points at the passenger seat so the passenger sits in the null;
	// laid sideways the axis points front-back and the passenger sits
	// in the bright donut ring.
	axis := PassengerHeadBase.Sub(s.phone)
	axis.Z = 0
	if !cfg.PhoneAimedAtDriver {
		axis = geom.Vec3{X: 1}
	}
	s.tx = rf.Dipole(s.phone, axis, 0.12)

	// Static interior reflectors (positions are plausible cabin
	// surfaces; only their existence matters — they set the static
	// phasor the head modulation rides on). The rear-shelf reflector
	// gives the shadowed antenna a head-independent anchor so deep
	// fades never zero its channel entirely.
	s.reflector = []staticReflector{
		{geom.Vec3{X: 0.75, Y: 0.3, Z: 1.2}, 0.45},  // windshield glare point
		{geom.Vec3{X: 0.45, Y: 0.35, Z: 0.8}, 0.35}, // dashboard / console
		{geom.Vec3{X: 0, Y: 0.1, Z: 1.5}, 0.3},      // roof liner
		{geom.Vec3{X: -0.6, Y: 0.4, Z: 1.0}, 0.25},  // passenger seatback
		{geom.Vec3{X: 0.2, Y: -0.55, Z: 1.0}, 0.3},  // driver door / window
		{geom.Vec3{X: -1.0, Y: -0.5, Z: 1.1}, 0.3},  // rear shelf / C-pillar
	}
	return s, nil
}

// Config returns the scene's configuration.
func (s *Scene) Config() Config { return s.cfg }

// Chan returns the scene's channelization.
func (s *Scene) Chan() rf.Channelization { return s.cfg.Chan }

// RXPositions returns the (possibly vibrating) RX antenna positions at
// time t.
func (s *Scene) RXPositions(t float64) [2]geom.Vec3 {
	rx := s.rxBase
	if v := s.cfg.Vibration; v != nil {
		rx[0] = rx[0].Add(v.Offset(t, 0))
		rx[1] = rx[1].Add(v.Offset(t, 1))
	}
	return rx
}

// shadowMode selects how the driver's head affects a path.
type shadowMode int

const (
	shadowNone      shadowMode = iota // head reflection paths: no self-occlusion
	shadowAmplitude                   // attenuate when shadowed
	shadowDetour                      // attenuate and add the diffraction detour
)

// State is the instantaneous dynamic configuration of the cabin.
type State struct {
	Time      float64
	HeadPos   geom.Vec3 // driver head center
	HeadYaw   float64   // degrees, 0 = facing the road
	HeadPitch float64   // degrees, positive chin-up; small while driving (Fig. 2)
	WheelDeg  float64   // steering wheel rotation, 0 = straight

	PassengerYaw float64 // passenger head yaw (used when configured)
}

// Paths computes every propagation path TX→RX for both receiver
// antennas at the given state. The returned slice is reused across
// calls; copy it if you need to retain it.
//
// Path inventory per antenna: LOS, driver-head reflection, static
// reflectors, steering-wheel/hand reflection, optional passenger-head
// reflection and micro-motion scatterers. The driver's head shadows
// any segment passing near it — that blockage is what makes Layout 1
// asymmetric and informative.
func (s *Scene) Paths(st State) [][]rf.Path {
	rx := s.RXPositions(st.Time)
	head := s.cfg.Head
	out := make([][]rf.Path, 2)
	s.paths = s.paths[:0]

	for a := 0; a < 2; a++ {
		start := len(s.paths)
		rxA := rf.Isotropic(rx[a])

		add := func(points []geom.Vec3, reflectivity float64, shadow shadowMode) {
			p := rf.Path{
				Points:       points,
				Reflectivity: reflectivity,
				Blockage:     1,
				TXGain:       s.tx.Gain(points[1]),
				RXGain:       rxA.Gain(points[len(points)-2]),
			}
			// Head shadowing applies to every path except the head
			// reflection itself (the scatter point sits on the head
			// surface, so testing it against the head sphere would
			// spuriously occlude the signal of interest). Only the LOS
			// picks up the yaw-dependent diffraction detour: it is the
			// one strong path whose straight line actually crosses the
			// skull, and modelling the detour on a single dominant
			// phasor keeps its orientation signature from cancelling
			// against sibling paths — the head-orientation signal the
			// blocked antenna of Layout 1 relies on.
			switch shadow {
			case shadowDetour:
				for i := 1; i < len(p.Points); i++ {
					amp, extra := head.BlockEffect(st.HeadPos, p.Points[i-1], p.Points[i], st.HeadYaw)
					p.Blockage *= amp
					p.Extra += extra
				}
			case shadowAmplitude:
				for i := 1; i < len(p.Points); i++ {
					p.Blockage *= head.Blocks(st.HeadPos, p.Points[i-1], p.Points[i])
				}
			}
			s.paths = append(s.paths, p)
		}

		// 1. Line of sight.
		add([]geom.Vec3{s.phone, rx[a]}, 1, shadowDetour)

		// 2. Driver head reflection (the signal of interest): the
		// quasi-specular main return plus the weak rotating nose
		// scatterer.
		scatter, refl := head.Scatter3D(st.HeadPos, st.HeadYaw, st.HeadPitch, s.phone)
		add([]geom.Vec3{s.phone, scatter, rx[a]}, refl, shadowNone)
		if head.NoseRefl > 0 {
			nose := head.NoseScatter(st.HeadPos, st.HeadYaw)
			add([]geom.Vec3{s.phone, nose, rx[a]}, head.NoseRefl, shadowNone)
		}

		// 3. Static interior reflections.
		for _, r := range s.reflector {
			add([]geom.Vec3{s.phone, r.point, rx[a]}, r.reflectivity, shadowAmplitude)
		}

		// 4. Steering wheel + hands.
		hand := s.cfg.Wheel.HandScatter(st.WheelDeg)
		add([]geom.Vec3{s.phone, hand, rx[a]}, s.cfg.Wheel.Reflectivity, shadowAmplitude)

		// 5. Passenger head.
		if s.cfg.Passenger {
			ps, prefl := head.Scatter(PassengerHeadBase, st.PassengerYaw, s.phone)
			add([]geom.Vec3{s.phone, ps, rx[a]}, prefl, shadowAmplitude)
		}

		// 6. Micro-motion scatterers.
		for _, m := range s.cfg.Micro {
			add([]geom.Vec3{s.phone, m.Pos(st.Time), rx[a]}, m.Reflectivity, shadowAmplitude)
		}

		out[a] = s.paths[start:len(s.paths):len(s.paths)]
	}
	return out
}

// CleanCSI computes the noise-free complex channel response for both
// RX antennas at the given state. dst is reused when it has capacity
// ([2][NSubcarriers]); pass nil to allocate.
func (s *Scene) CleanCSI(st State, dst [][]complex128) [][]complex128 {
	paths := s.Paths(st)
	if len(dst) != 2 {
		dst = make([][]complex128, 2)
	}
	for a := 0; a < 2; a++ {
		dst[a] = rf.CSIAllSubcarriers(paths[a], s.cfg.Chan, dst[a])
	}
	return dst
}
