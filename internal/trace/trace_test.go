package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"vihot/internal/imu"
)

func sampleTrace() *Trace {
	r := NewRecorder(Meta{Name: "test-drive", Seed: 7, Comment: "unit test"})
	// Deliberately interleaved out of order: Finish must sort.
	r.Truth(0.5, 12)
	r.Phase(0.1, 0.3)
	r.IMU(imu.Reading{Time: 0.2, GyroZ: 5, AccelLat: 0.1})
	r.Phase(0.3, 0.4)
	return r.Finish()
}

func TestRecorderSortsAndMeasures(t *testing.T) {
	tr := sampleTrace()
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].T < tr.Events[i-1].T {
			t.Fatal("events not sorted")
		}
	}
	if tr.Meta.Duration != 0.4 {
		t.Errorf("duration = %v", tr.Meta.Duration)
	}
	counts := tr.Counts()
	if counts[KindPhase] != 2 || counts[KindIMU] != 1 || counts[KindTruth] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta = %+v", got.Meta)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d", len(got.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestWriteNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); !errors.Is(err, ErrBadTrace) {
		t.Errorf("nil write err = %v", err)
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("garbage err = %v", err)
	}
}

func TestReadRejectsUnsorted(t *testing.T) {
	bad := &Trace{Events: []Event{{T: 2, Kind: KindPhase}, {T: 1, Kind: KindPhase}}}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); !errors.Is(err, ErrBadTrace) {
		t.Errorf("unsorted err = %v", err)
	}
}

func TestSaveLoad(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "session.vht")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Name != "test-drive" {
		t.Errorf("loaded name = %q", got.Meta.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.vht")); err == nil {
		t.Error("loading a missing file must fail")
	}
}

func TestSeriesExtraction(t *testing.T) {
	tr := sampleTrace()
	ps := tr.PhaseSeries()
	if len(ps) != 2 || ps[0].V != 0.3 || ps[1].V != 0.4 {
		t.Errorf("phase series = %v", ps)
	}
	ts := tr.TruthSeries()
	if len(ts) != 1 || ts[0].V != 12 {
		t.Errorf("truth series = %v", ts)
	}
}

func TestReplayDispatch(t *testing.T) {
	tr := sampleTrace()
	var phases, truths int
	var gyro float64
	tr.Replay(
		func(t, phi float64) { phases++ },
		func(r imu.Reading) { gyro = r.GyroZ },
		func(t, yaw float64) { truths++ },
	)
	if phases != 2 || truths != 1 || gyro != 5 {
		t.Errorf("replay dispatch: phases=%d truths=%d gyro=%v", phases, truths, gyro)
	}
	// Nil callbacks must not panic.
	tr.Replay(nil, nil, nil)
}

func TestRecorderContinuesAfterFinish(t *testing.T) {
	r := NewRecorder(Meta{Name: "x"})
	r.Phase(0, 1)
	first := r.Finish()
	r.Phase(1, 2)
	second := r.Finish()
	if len(first.Events) != 1 {
		t.Errorf("first snapshot mutated: %d events", len(first.Events))
	}
	if len(second.Events) != 2 {
		t.Errorf("second snapshot = %d events", len(second.Events))
	}
}
