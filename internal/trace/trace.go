// Package trace records and replays ViHOT sensor sessions: the
// sanitized CSI phase stream, phone IMU readings, and ground-truth
// head poses, all timestamped on the receiver clock. Traces make
// experiments repeatable and let the tracker run offline against
// captured drives — the CSI-tool-log workflow of the paper's
// prototype.
package trace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"vihot/internal/dsp"
	"vihot/internal/imu"
)

// Event kinds stored in a trace.
const (
	KindPhase = "phase"
	KindIMU   = "imu"
	KindTruth = "truth"
)

// Event is one timestamped record.
type Event struct {
	T    float64
	Kind string
	// Phase (rad) for KindPhase; yaw (deg) for KindTruth.
	V float64
	// IMU payload for KindIMU.
	GyroZ, AccelLat float64
}

// Meta describes a recorded session.
type Meta struct {
	Name     string
	Seed     int64
	Comment  string
	Duration float64
}

// Trace is a recorded session.
type Trace struct {
	Meta   Meta
	Events []Event
}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace")

// Recorder accumulates events in time order.
type Recorder struct {
	tr Trace
}

// NewRecorder starts a recording with the given metadata.
func NewRecorder(meta Meta) *Recorder {
	return &Recorder{tr: Trace{Meta: meta}}
}

// Phase records one sanitized CSI phase sample.
func (r *Recorder) Phase(t, phi float64) {
	r.tr.Events = append(r.tr.Events, Event{T: t, Kind: KindPhase, V: phi})
}

// IMU records one phone IMU reading.
func (r *Recorder) IMU(reading imu.Reading) {
	r.tr.Events = append(r.tr.Events, Event{
		T: reading.Time, Kind: KindIMU,
		GyroZ: reading.GyroZ, AccelLat: reading.AccelLat,
	})
}

// Truth records one ground-truth head yaw.
func (r *Recorder) Truth(t, yawDeg float64) {
	r.tr.Events = append(r.tr.Events, Event{T: t, Kind: KindTruth, V: yawDeg})
}

// Finish sorts events by time, fills the duration, and returns the
// trace. The recorder can keep recording afterwards.
func (r *Recorder) Finish() *Trace {
	tr := r.tr
	tr.Events = append([]Event(nil), tr.Events...)
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].T < tr.Events[j].T })
	if n := len(tr.Events); n > 0 {
		tr.Meta.Duration = tr.Events[n-1].T - tr.Events[0].T
	}
	return &tr
}

// Write serializes a trace with encoding/gob.
func Write(w io.Writer, tr *Trace) error {
	if tr == nil {
		return fmt.Errorf("%w: nil trace", ErrBadTrace)
	}
	return gob.NewEncoder(w).Encode(tr)
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := gob.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if !sort.SliceIsSorted(tr.Events, func(i, j int) bool { return tr.Events[i].T < tr.Events[j].T }) {
		return nil, fmt.Errorf("%w: events out of order", ErrBadTrace)
	}
	return &tr, nil
}

// Save writes a trace to a file.
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, tr); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// PhaseSeries extracts the CSI phase stream as a dsp.Series.
func (tr *Trace) PhaseSeries() dsp.Series {
	var s dsp.Series
	for _, e := range tr.Events {
		if e.Kind == KindPhase {
			s = append(s, dsp.Sample{T: e.T, V: e.V})
		}
	}
	return s
}

// TruthSeries extracts the ground-truth yaw stream.
func (tr *Trace) TruthSeries() dsp.Series {
	var s dsp.Series
	for _, e := range tr.Events {
		if e.Kind == KindTruth {
			s = append(s, dsp.Sample{T: e.T, V: e.V})
		}
	}
	return s
}

// Counts returns the number of events per kind.
func (tr *Trace) Counts() map[string]int {
	m := make(map[string]int)
	for _, e := range tr.Events {
		m[e.Kind]++
	}
	return m
}

// Replay feeds the trace's events, in time order, to the provided
// callbacks (any of which may be nil).
func (tr *Trace) Replay(onPhase func(t, phi float64), onIMU func(imu.Reading), onTruth func(t, yaw float64)) {
	for _, e := range tr.Events {
		switch e.Kind {
		case KindPhase:
			if onPhase != nil {
				onPhase(e.T, e.V)
			}
		case KindIMU:
			if onIMU != nil {
				onIMU(imu.Reading{Time: e.T, GyroZ: e.GyroZ, AccelLat: e.AccelLat})
			}
		case KindTruth:
			if onTruth != nil {
				onTruth(e.T, e.V)
			}
		}
	}
}
