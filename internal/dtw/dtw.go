// Package dtw implements Dynamic Time Warping, the series-matching
// metric at the heart of ViHOT's head-orientation tracker (Sec. 3.4.4
// of the paper). DTW aligns two series that traverse the same shape at
// different speeds — exactly the mismatch between the slow profiling
// head sweep and fast run-time head turns.
//
// The implementation uses the classic two-row dynamic program with an
// optional Sakoe-Chiba band and early abandoning, and exposes a
// Matcher that reuses its scratch rows so the tracker's hot loop runs
// allocation-free.
package dtw

import (
	"errors"
	"math"
)

// ErrEmptyInput is returned when either input series is empty.
var ErrEmptyInput = errors.New("dtw: empty input series")

// Options configures a DTW computation.
type Options struct {
	// Window is the Sakoe-Chiba band half-width in samples. Cells with
	// |i·m/n - j| > Window are excluded from the alignment. Zero or
	// negative means no band (full DTW).
	Window int

	// AbandonAbove enables early abandoning: if every reachable cell
	// of a row exceeds this cumulative cost, the computation stops and
	// returns +Inf. Zero or negative disables abandoning.
	AbandonAbove float64

	// Circular treats samples as angles in radians and uses the
	// shortest distance around the circle as the local cost, so series
	// that cross the ±π seam still match. CSI phases are circular.
	Circular bool

	// Derivative matches on first differences instead of raw values
	// (derivative DTW): shape-only matching that is immune to constant
	// offsets between query and profile, at the cost of discarding the
	// absolute level that anchors position disambiguation. Exposed for
	// the ablation study.
	Derivative bool
}

// localCost returns |a-b|, or the shortest angular distance when
// circular.
func localCost(a, b float64, circular bool) float64 {
	d := math.Abs(a - b)
	if circular {
		d = math.Mod(d, 2*math.Pi)
		if d > math.Pi {
			d = 2*math.Pi - d
		}
	}
	return d
}

// Matcher computes DTW distances while reusing internal scratch
// buffers across calls.
//
// Ownership rules (load-bearing for the concurrent serving engine in
// internal/serve):
//
//   - A Matcher holds only scratch memory: no state carries between
//     calls, so any sequence of Distance/Subsequence calls returns the
//     same results as with a fresh Matcher.
//   - A Matcher is NOT safe for concurrent use. Exactly one goroutine
//     may call into it at a time; there is no internal locking because
//     the DTW inner loop is the system's hot path.
//   - Consequently a Matcher may be shared across many Trackers as
//     long as all of them are driven by the same goroutine — that is
//     how a serve worker amortizes scratch across its sessions (see
//     core.Tracker.SetMatcher).
type Matcher struct {
	prev, cur []float64
	da, db    []float64 // derivative scratch
}

// NewMatcher returns a Matcher with scratch capacity for series of up
// to the given length (it grows on demand).
func NewMatcher(capHint int) *Matcher {
	if capHint < 0 {
		capHint = 0
	}
	return &Matcher{
		prev: make([]float64, 0, capHint+1),
		cur:  make([]float64, 0, capHint+1),
	}
}

// Distance returns the unnormalized DTW distance between a and b using
// absolute difference as the local cost and the standard step pattern
// {(i-1,j), (i,j-1), (i-1,j-1)}. With early abandoning enabled the
// result may be +Inf, meaning "worse than the abandon threshold".
func (m *Matcher) Distance(a, b []float64, opt Options) (float64, error) {
	if opt.Derivative {
		if len(a) < 2 || len(b) < 2 {
			return 0, ErrEmptyInput
		}
		m.da = Derivatives(a, m.da)
		m.db = Derivatives(b, m.db)
		a, b = m.da, m.db
		opt.Derivative = false
	}
	n, mm := len(a), len(b)
	if n == 0 || mm == 0 {
		return 0, ErrEmptyInput
	}
	m.prev = grow(m.prev, mm+1)
	m.cur = grow(m.cur, mm+1)
	prev, cur := m.prev, m.cur

	inf := math.Inf(1)
	for j := 0; j <= mm; j++ {
		prev[j] = inf
	}
	prev[0] = 0

	// Effective band: scale the window onto the diagonal of an n×m
	// grid so unequal lengths still align corner to corner.
	band := opt.Window
	useBand := band > 0
	slope := float64(mm) / float64(n)

	for i := 1; i <= n; i++ {
		lo, hi := 1, mm
		if useBand {
			center := int(math.Round(float64(i) * slope))
			lo = max(1, center-band)
			hi = min(mm, center+band)
		}
		for j := 0; j <= mm; j++ {
			cur[j] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			c := localCost(a[i-1], b[j-1], opt.Circular)
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if math.IsInf(best, 1) {
				continue
			}
			v := c + best
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if opt.AbandonAbove > 0 && rowMin > opt.AbandonAbove {
			return inf, nil
		}
		prev, cur = cur, prev
	}
	return prev[mm], nil
}

// NormalizedDistance returns Distance divided by the sum of both
// series lengths, making scores comparable across candidate-segment
// lengths — required by Algorithm 1, which compares matches of
// different lengths Lₙ ∈ [0.5W, 2W].
func (m *Matcher) NormalizedDistance(a, b []float64, opt Options) (float64, error) {
	d, err := m.Distance(a, b, opt)
	if err != nil {
		return 0, err
	}
	return d / float64(len(a)+len(b)), nil
}

// Distance is a convenience wrapper allocating a throwaway Matcher.
func Distance(a, b []float64, opt Options) (float64, error) {
	return NewMatcher(len(b)).Distance(a, b, opt)
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Derivatives returns the first differences of xs (length len(xs)-1),
// appending into out. Used with Options.Derivative to pre-process both
// series consistently.
func Derivatives(xs []float64, out []float64) []float64 {
	out = out[:0]
	for i := 1; i < len(xs); i++ {
		out = append(out, xs[i]-xs[i-1])
	}
	return out
}
