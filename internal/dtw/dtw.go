// Package dtw implements Dynamic Time Warping, the series-matching
// metric at the heart of ViHOT's head-orientation tracker (Sec. 3.4.4
// of the paper). DTW aligns two series that traverse the same shape at
// different speeds — exactly the mismatch between the slow profiling
// head sweep and fast run-time head turns.
//
// The implementation uses the classic two-row dynamic program with an
// optional Sakoe-Chiba band and early abandoning, and exposes a
// Matcher that reuses its scratch rows so the tracker's hot loop runs
// allocation-free. The banded kernel touches only the O(w) band slice
// of each row (plus one guard cell), so banded cost is O(n·w + m)
// rather than O(n·m); see DESIGN.md §16 for the row-arena invariant
// and the bit-exactness argument that gates this kernel.
package dtw

import (
	"errors"
	"math"
)

// ErrEmptyInput is returned when either input series is empty.
var ErrEmptyInput = errors.New("dtw: empty input series")

// Options configures a DTW computation.
type Options struct {
	// Window is the Sakoe-Chiba band half-width in samples. Cells with
	// |i·m/n - j| > Window are excluded from the alignment. Zero or
	// negative means no band (full DTW). When the length ratio between
	// the series exceeds Window+1 the band is widened to
	// ⌈m/n⌉-1 so consecutive rows stay connected; otherwise a whole
	// row would be unreachable and the distance silently +Inf.
	Window int

	// AbandonAbove enables early abandoning: if the cheapest reachable
	// cell of a row — plus the final cell's local cost, which every
	// warping path still has to pay — exceeds this cumulative cost, the
	// computation stops and returns +Inf. Zero or negative disables
	// abandoning.
	AbandonAbove float64

	// Circular treats samples as angles in radians and uses the
	// shortest distance around the circle as the local cost, so series
	// that cross the ±π seam still match. CSI phases are circular.
	Circular bool

	// Derivative matches on first differences instead of raw values
	// (derivative DTW): shape-only matching that is immune to constant
	// offsets between query and profile, at the cost of discarding the
	// absolute level that anchors position disambiguation. Exposed for
	// the ablation study.
	Derivative bool
}

// localCost returns |a-b|, or the shortest angular distance when
// circular. Phases coming out of atan2 live in [-π, π], so their
// difference never exceeds 2π and the math.Mod reduction — expensive
// in pure Go — is skipped on the hot path. The guarded slow path is
// bit-identical: for d ≤ 2π, Mod(d, 2π) returns d unchanged (or 0 at
// exactly 2π, which the seam fold below also produces).
func localCost(a, b float64, circular bool) float64 {
	d := math.Abs(a - b)
	if circular {
		if d > 2*math.Pi {
			d = math.Mod(d, 2*math.Pi)
		}
		if d > math.Pi {
			d = 2*math.Pi - d
		}
	}
	return d
}

// effectiveWindow widens a Sakoe-Chiba half-width so the band stays
// connected row to row. Consecutive band centers round(i·slope) move
// by at most ⌈slope⌉ columns, and a cell in row i can reach row i-1
// only within 2w+1 columns, so w ≥ ⌈slope⌉-1 guarantees every band
// cell has a reachable predecessor (and that row 1 still contains
// column 1). For every tracker configuration (slope ≤ 2, window 8)
// the widening is a no-op, which is what keeps the golden trace
// bit-identical.
func effectiveWindow(window int, slope float64) int {
	if minW := int(math.Ceil(slope)) - 1; window < minW {
		return minW
	}
	return window
}

// bandRow returns the inclusive column range [lo, hi] of the
// Sakoe-Chiba band on row i of an n×mm grid with slope = mm/n and
// half-width w. Factored out so tests can prove the visited-cell
// count scales with w, not mm.
func bandRow(i int, slope float64, w, mm int) (lo, hi int) {
	center := int(math.Round(float64(i) * slope))
	lo = max(1, center-w)
	hi = min(mm, center+w)
	return lo, hi
}

// Matcher computes DTW distances while reusing internal scratch
// buffers across calls.
//
// Ownership rules (load-bearing for the concurrent serving engine in
// internal/serve):
//
//   - A Matcher holds only scratch memory: no state carries between
//     calls, so any sequence of Distance/Subsequence calls returns the
//     same results as with a fresh Matcher.
//   - A Matcher is NOT safe for concurrent use. Exactly one goroutine
//     may call into it at a time; there is no internal locking because
//     the DTW inner loop is the system's hot path.
//   - Consequently a Matcher may be shared across many Trackers as
//     long as all of them are driven by the same goroutine — that is
//     how a serve worker amortizes scratch across its sessions (see
//     core.Tracker.SetMatcher).
//
// The two scratch rows double as the banded cost arena: Distance
// initializes only the cells the band visits, carrying a high-water
// mark across rows so stale cells from earlier calls are never read.
type Matcher struct {
	prev, cur []float64
	da, db    []float64 // derivative scratch
}

// NewMatcher returns a Matcher with scratch capacity for series of up
// to the given length (it grows on demand).
func NewMatcher(capHint int) *Matcher {
	if capHint < 0 {
		capHint = 0
	}
	return &Matcher{
		prev: make([]float64, 0, capHint+1),
		cur:  make([]float64, 0, capHint+1),
	}
}

// Distance returns the unnormalized DTW distance between a and b using
// absolute difference as the local cost and the standard step pattern
// {(i-1,j), (i,j-1), (i-1,j-1)}. With early abandoning enabled the
// result may be +Inf, meaning "worse than the abandon threshold".
//
// The kernel clears and visits only the band slice [lo-1, hi] of each
// row. Invariant: at the start of row i, prev is initialized (inf or a
// cost) on [lo_{i-1}-1, hi_{i-1}]; because band edges are monotone
// non-decreasing, row i only ever reads below that range's floor or —
// after an explicit inf-fill of (hi_{i-1}, hi_i] — inside it.
func (m *Matcher) Distance(a, b []float64, opt Options) (float64, error) {
	if opt.Derivative {
		if len(a) < 2 || len(b) < 2 {
			return 0, ErrEmptyInput
		}
		m.da = Derivatives(a, m.da)
		m.db = Derivatives(b, m.db)
		a, b = m.da, m.db
		opt.Derivative = false
	}
	n, mm := len(a), len(b)
	if n == 0 || mm == 0 {
		return 0, ErrEmptyInput
	}
	m.prev = grow(m.prev, mm+1)
	m.cur = grow(m.cur, mm+1)
	prev, cur := m.prev, m.cur

	inf := math.Inf(1)
	circ := opt.Circular

	// Effective band: scale the window onto the diagonal of an n×m
	// grid so unequal lengths still align corner to corner, widened
	// just enough that the band is connected (never empty) on every
	// row.
	useBand := opt.Window > 0
	slope := float64(mm) / float64(n)
	w := mm
	if useBand {
		w = effectiveWindow(opt.Window, slope)
	}

	// Early-abandon prescreen: every warping path pays the local cost
	// of both corner cells (1,1) and (n,m), so their sum is a lower
	// bound on the result. lastAdd also tightens the per-row check —
	// any path leaving row i < n still has the final cell ahead of it.
	abandon := opt.AbandonAbove
	var lastAdd float64
	if abandon > 0 {
		c0 := localCost(a[0], b[0], circ)
		if n > 1 || mm > 1 {
			lastAdd = localCost(a[n-1], b[mm-1], circ)
		}
		if c0+lastAdd > abandon {
			return inf, nil
		}
	}

	// Row 0: only the prefix row 1 reads is initialized.
	_, hi1 := bandRow(1, slope, w, mm)
	prev[0] = 0
	for j := 1; j <= hi1; j++ {
		prev[j] = inf
	}
	prevHi := hi1

	for i := 1; i <= n; i++ {
		lo, hi := bandRow(i, slope, w, mm)
		// Inf-fill the prev cells this row reads beyond the band the
		// previous row actually wrote (band edges only ever grow).
		for j := prevHi + 1; j <= hi; j++ {
			prev[j] = inf
		}
		prevHi = hi
		// Clear only the band slice of cur, plus the guard cell lo-1
		// that the j==lo step reads as its deletion predecessor.
		for j := lo - 1; j <= hi; j++ {
			cur[j] = inf
		}
		rowMin := inf
		ai := a[i-1]
		for j := lo; j <= hi; j++ {
			c := localCost(ai, b[j-1], circ)
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if math.IsInf(best, 1) {
				continue
			}
			v := c + best
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if abandon > 0 {
			la := lastAdd
			if i == n {
				la = 0 // the final cell is already inside rowMin
			}
			if rowMin+la > abandon {
				return inf, nil
			}
		}
		prev, cur = cur, prev
	}
	return prev[mm], nil
}

// NormalizedDistance returns Distance divided by the number of samples
// actually aligned, making scores comparable across candidate-segment
// lengths — required by Algorithm 1, which compares matches of
// different lengths Lₙ ∈ [0.5W, 2W]. In Derivative mode the aligned
// series are the first differences, one sample shorter each, and the
// normalizer shrinks accordingly.
func (m *Matcher) NormalizedDistance(a, b []float64, opt Options) (float64, error) {
	d, err := m.Distance(a, b, opt)
	if err != nil {
		return 0, err
	}
	return d / float64(alignedLen(len(a), len(b), opt)), nil
}

// alignedLen is the total number of samples Distance aligns for series
// of the given raw lengths under opt — the normalizer shared by
// NormalizedDistance and Subsequence's abandon-bound conversion.
func alignedLen(na, nb int, opt Options) int {
	if opt.Derivative {
		return (na - 1) + (nb - 1)
	}
	return na + nb
}

// Distance is a convenience wrapper allocating a throwaway Matcher.
func Distance(a, b []float64, opt Options) (float64, error) {
	return NewMatcher(len(b)).Distance(a, b, opt)
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Derivatives returns the first differences of xs (length len(xs)-1),
// appending into out. Used with Options.Derivative to pre-process both
// series consistently.
func Derivatives(xs []float64, out []float64) []float64 {
	out = out[:0]
	for i := 1; i < len(xs); i++ {
		out = append(out, xs[i]-xs[i-1])
	}
	return out
}
