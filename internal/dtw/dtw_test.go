package dtw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceErrors(t *testing.T) {
	m := NewMatcher(8)
	if _, err := m.Distance(nil, []float64{1}, Options{}); err != ErrEmptyInput {
		t.Errorf("empty a err = %v", err)
	}
	if _, err := m.Distance([]float64{1}, nil, Options{}); err != ErrEmptyInput {
		t.Errorf("empty b err = %v", err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		d, err := Distance(clean, clean, Options{})
		return err == nil && d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	a := []float64{0, 1, 2, 3, 2, 1}
	b := []float64{0, 0.5, 2.5, 3, 1}
	m := NewMatcher(8)
	d1, err := m.Distance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Distance(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestDistanceNonNegative(t *testing.T) {
	f := func(a, b []float64) bool {
		ca, cb := clean(a), clean(b)
		if len(ca) == 0 || len(cb) == 0 {
			return true
		}
		d, err := Distance(ca, cb, Options{})
		return err == nil && d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clean(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if !math.IsNaN(x) && math.Abs(x) < 1e6 {
			out = append(out, x)
		}
	}
	return out
}

func TestDistanceKnownValue(t *testing.T) {
	// a = [0], b = [1,2]: path must visit both b cells: |0-1|+|0-2| = 3.
	d, err := Distance([]float64{0}, []float64{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("d = %v, want 3", d)
	}
}

func TestDistanceTimeWarpInvariance(t *testing.T) {
	// The same shape traversed at half speed must match almost
	// perfectly (stretched by repetition).
	a := []float64{0, 1, 2, 3, 4, 3, 2, 1, 0}
	var b []float64
	for _, v := range a {
		b = append(b, v, v) // 2x slower
	}
	d, err := Distance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("time-warped copy distance = %v, want 0", d)
	}
}

func TestDistanceDiscriminates(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	similar := []float64{0, 1.1, 2, 2.9, 4}
	different := []float64{4, 3, 2, 1, 0}
	ds, _ := Distance(a, similar, Options{})
	dd, _ := Distance(a, different, Options{})
	if ds >= dd {
		t.Errorf("similar (%v) not closer than different (%v)", ds, dd)
	}
}

func TestBandMatchesFullDTWWhenWide(t *testing.T) {
	a := []float64{0, 2, 4, 3, 1, 0, 2}
	b := []float64{0, 1, 4, 4, 1, 1, 2}
	full, _ := Distance(a, b, Options{})
	banded, _ := Distance(a, b, Options{Window: len(b)})
	if math.Abs(full-banded) > 1e-12 {
		t.Errorf("wide band %v != full %v", banded, full)
	}
}

func TestBandNeverBeatsFull(t *testing.T) {
	f := func(a, b []float64) bool {
		ca, cb := clean(a), clean(b)
		if len(ca) == 0 || len(cb) == 0 {
			return true
		}
		full, err1 := Distance(ca, cb, Options{})
		banded, err2 := Distance(ca, cb, Options{Window: 2})
		if err1 != nil || err2 != nil {
			return false
		}
		return banded >= full-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEarlyAbandon(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{100, 100, 100, 100}
	d, err := Distance(a, b, Options{AbandonAbove: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("abandon should yield +Inf, got %v", d)
	}
	// A threshold above the true distance must not trigger.
	exact, _ := Distance(a, b, Options{})
	d2, _ := Distance(a, b, Options{AbandonAbove: exact + 1})
	if math.IsInf(d2, 1) {
		t.Error("abandon triggered below threshold")
	}
}

func TestNormalizedDistance(t *testing.T) {
	a := []float64{0, 1}
	b := []float64{0, 1}
	m := NewMatcher(4)
	d, err := m.NormalizedDistance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("normalized identity = %v", d)
	}
}

func TestMatcherReuseConsistency(t *testing.T) {
	m := NewMatcher(4)
	a := []float64{1, 2, 3}
	b := []float64{3, 2, 1}
	d1, _ := m.Distance(a, b, Options{})
	// Interleave other work to dirty the scratch rows.
	_, _ = m.Distance([]float64{9, 9, 9, 9, 9, 9}, []float64{1}, Options{})
	d2, _ := m.Distance(a, b, Options{})
	if d1 != d2 {
		t.Errorf("matcher reuse changed result: %v vs %v", d1, d2)
	}
}

func TestSubsequenceFindsEmbeddedPattern(t *testing.T) {
	// Build a long profile with a distinctive bump in the middle.
	profile := make([]float64, 200)
	for i := 60; i < 80; i++ {
		profile[i] = math.Sin(float64(i-60) / 19 * math.Pi)
	}
	query := make([]float64, 20)
	for i := range query {
		query[i] = math.Sin(float64(i) / 19 * math.Pi)
	}
	m := NewMatcher(64)
	match, err := m.Subsequence(query, profile, []int{15, 20, 25}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if match.Start < 50 || match.Start > 70 {
		t.Errorf("match start = %d, want near 60", match.Start)
	}
	if match.Dist > 0.05 {
		t.Errorf("match dist = %v, want near 0", match.Dist)
	}
	if match.End() != match.Start+match.Length {
		t.Error("End() arithmetic wrong")
	}
}

func TestSubsequenceSpeedMismatch(t *testing.T) {
	// Profile contains a slow sweep; the query is the same sweep at
	// double speed. Candidate lengths around 2x query length must win.
	var profile []float64
	for i := 0; i < 100; i++ {
		profile = append(profile, math.Sin(float64(i)*0.06))
	}
	var query []float64
	for i := 0; i < 25; i++ {
		query = append(query, math.Sin(float64(i)*0.12)) // 2x faster
	}
	m := NewMatcher(128)
	lengths := CandidateLengths(len(query), 0.5, 2, 2, len(profile))
	match, err := m.Subsequence(query, profile, lengths, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if match.Length < 35 {
		t.Errorf("expected stretched match ≈50 samples, got %d", match.Length)
	}
	if match.Start > 10 {
		t.Errorf("match start = %d, want near 0", match.Start)
	}
}

func TestSubsequenceErrors(t *testing.T) {
	m := NewMatcher(8)
	if _, err := m.Subsequence(nil, []float64{1}, []int{1}, 1, Options{}); err != ErrEmptyInput {
		t.Errorf("empty query err = %v", err)
	}
	if _, err := m.Subsequence([]float64{1}, []float64{1, 2}, []int{10}, 1, Options{}); err != ErrNoCandidates {
		t.Errorf("oversized lengths err = %v", err)
	}
	if _, err := m.Subsequence([]float64{1}, []float64{1, 2}, nil, 1, Options{}); err != ErrNoCandidates {
		t.Errorf("no lengths err = %v", err)
	}
}

func TestSubsequenceStride(t *testing.T) {
	profile := make([]float64, 50)
	profile[25] = 1
	query := []float64{0, 1, 0}
	m := NewMatcher(8)
	m1, err := m.Subsequence(query, profile, []int{3}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.Subsequence(query, profile, []int{3}, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dist < m1.Dist-1e-12 {
		t.Error("coarser stride cannot beat exhaustive search")
	}
}

func TestCandidateLengths(t *testing.T) {
	ls := CandidateLengths(10, 0.5, 2, 1, 100)
	if ls[0] != 5 || ls[len(ls)-1] != 20 {
		t.Errorf("lengths = %v", ls)
	}
	if CandidateLengths(0, 0.5, 2, 1, 100) != nil {
		t.Error("w<1 must return nil")
	}
	if CandidateLengths(10, 2, 0.5, 1, 100) != nil {
		t.Error("inverted ratios must return nil")
	}
	// Clipping to maxLen.
	ls = CandidateLengths(10, 0.5, 2, 1, 8)
	for _, l := range ls {
		if l > 8 {
			t.Errorf("length %d exceeds maxLen", l)
		}
	}
	// Step floor.
	ls = CandidateLengths(4, 1, 1, 0, 10)
	if len(ls) != 1 || ls[0] != 4 {
		t.Errorf("step=0 lengths = %v", ls)
	}
}

func TestDistanceAllocationFree(t *testing.T) {
	m := NewMatcher(128)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = math.Sin(float64(i) * 0.1)
		b[i] = math.Cos(float64(i) * 0.1)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := m.Distance(a, b, Options{Window: 10}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Distance allocates %v times per run, want 0", allocs)
	}
}

func TestCircularCost(t *testing.T) {
	// Two constant series on opposite sides of the ±π seam: naive
	// distance is ≈ 2π per sample, circular distance ≈ 0.02.
	a := []float64{math.Pi - 0.01, math.Pi - 0.01}
	b := []float64{-math.Pi + 0.01, -math.Pi + 0.01}
	naive, _ := Distance(a, b, Options{})
	circ, _ := Distance(a, b, Options{Circular: true})
	if naive < 6 {
		t.Errorf("naive seam distance = %v, want ≈ 4π·0.99", naive)
	}
	if circ > 0.1 {
		t.Errorf("circular seam distance = %v, want ≈ 0.04", circ)
	}
}

func TestCircularMatchesLinearAwayFromSeam(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3}
	b := []float64{0.15, 0.25, 0.28}
	d1, _ := Distance(a, b, Options{})
	d2, _ := Distance(a, b, Options{Circular: true})
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("circular (%v) != linear (%v) away from seam", d2, d1)
	}
}

func TestDerivativeDTWOffsetInvariance(t *testing.T) {
	// Derivative DTW must see through a constant offset.
	a := []float64{0, 1, 2, 3, 2, 1}
	b := []float64{5, 6, 7, 8, 7, 6} // same shape, +5
	raw, _ := Distance(a, b, Options{})
	der, _ := Distance(a, b, Options{Derivative: true})
	if der > 1e-9 {
		t.Errorf("derivative distance = %v, want 0", der)
	}
	if raw < 1 {
		t.Errorf("raw distance = %v, want large", raw)
	}
}

func TestDerivativeDTWTooShort(t *testing.T) {
	if _, err := Distance([]float64{1}, []float64{1, 2}, Options{Derivative: true}); err != ErrEmptyInput {
		t.Errorf("short derivative err = %v", err)
	}
}

func TestDerivativesHelper(t *testing.T) {
	got := Derivatives([]float64{1, 3, 2}, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != -1 {
		t.Errorf("Derivatives = %v", got)
	}
	if len(Derivatives([]float64{5}, nil)) != 0 {
		t.Error("single-sample derivatives must be empty")
	}
}
