package dtw

import (
	"math"
	"testing"

	"vihot/internal/stats"
)

// randWalk returns a smooth bounded series — the shape class CSI phase
// streams actually inhabit — from a deterministic seed.
func randWalk(seed int64, n int) []float64 {
	rng := stats.NewRNG(seed)
	xs := make([]float64, n)
	v := rng.Uniform(-1, 1)
	for i := range xs {
		v += rng.Normal(0, 0.15)
		// Keep angles in range for the circular metric.
		if v > math.Pi {
			v -= 2 * math.Pi
		} else if v < -math.Pi {
			v += 2 * math.Pi
		}
		xs[i] = v
	}
	return xs
}

// optionMatrix is every symmetric option combination the tracker uses.
func optionMatrix() []Options {
	return []Options{
		{},
		{Window: 5},
		{Circular: true},
		{Window: 5, Circular: true},
		{Derivative: true},
		{Window: 5, Derivative: true},
	}
}

// TestDistanceSelfIsZero: DTW of any series against itself is exactly
// zero — the diagonal alignment has zero local cost everywhere, and no
// banded or derivative variant can do worse than the diagonal on an
// n×n grid.
func TestDistanceSelfIsZero(t *testing.T) {
	m := NewMatcher(64)
	for seed := int64(1); seed <= 20; seed++ {
		for _, n := range []int{2, 3, 17, 64} {
			a := randWalk(seed, n)
			for _, opt := range optionMatrix() {
				d, err := m.Distance(a, a, opt)
				if err != nil {
					t.Fatal(err)
				}
				if d != 0 {
					t.Fatalf("seed %d n %d opt %+v: Distance(a,a) = %g, want 0", seed, n, opt, d)
				}
			}
		}
	}
}

// TestDistanceSymmetryMatrix: for equal-length inputs every option
// above is symmetric (the local cost is, and the band is centered on
// the diagonal), so swapping the arguments must give bit-identical
// distances. Complements the single-case TestDistanceSymmetry in
// dtw_test.go, which covers unequal lengths without a band.
func TestDistanceSymmetryMatrix(t *testing.T) {
	m := NewMatcher(64)
	for seed := int64(1); seed <= 20; seed++ {
		for _, n := range []int{2, 9, 33} {
			a := randWalk(seed, n)
			b := randWalk(seed+1000, n)
			for _, opt := range optionMatrix() {
				ab, err := m.Distance(a, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				ba, err := m.Distance(b, a, opt)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(ab) != math.Float64bits(ba) {
					t.Fatalf("seed %d n %d opt %+v: D(a,b)=%g but D(b,a)=%g", seed, n, opt, ab, ba)
				}
			}
		}
	}
}

// repeatEach time-stretches a series by repeating every sample k
// times.
func repeatEach(xs []float64, k int) []float64 {
	out := make([]float64, 0, len(xs)*k)
	for _, v := range xs {
		for i := 0; i < k; i++ {
			out = append(out, v)
		}
	}
	return out
}

// TestNormalizedDistanceDuplicationInvariance: NormalizedDistance
// exists so Algorithm 1 can compare matches of different lengths, so
// it must be (approximately) invariant to uniform time-stretching.
// Exactly, D(aₖ,bₖ) ≤ k·D(a,b) (follow the stretched path), so the
// normalized score cannot grow; the lower bound is loose, so the check
// allows a 25% relative drop.
func TestNormalizedDistanceDuplicationInvariance(t *testing.T) {
	m := NewMatcher(256)
	for seed := int64(1); seed <= 15; seed++ {
		a := randWalk(seed, 40)
		b := randWalk(seed+500, 40)
		for _, opt := range []Options{{}, {Circular: true}} {
			n1, err := m.NormalizedDistance(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if n1 <= 0 {
				t.Fatalf("seed %d: degenerate baseline %g", seed, n1)
			}
			for _, k := range []int{2, 3} {
				nk, err := m.NormalizedDistance(repeatEach(a, k), repeatEach(b, k), opt)
				if err != nil {
					t.Fatal(err)
				}
				if nk > n1*(1+1e-12) {
					t.Fatalf("seed %d k %d opt %+v: normalized distance grew under duplication: %g > %g",
						seed, k, opt, nk, n1)
				}
				if nk < n1*0.75 {
					t.Fatalf("seed %d k %d opt %+v: normalized distance collapsed under duplication: %g vs %g",
						seed, k, opt, nk, n1)
				}
			}
		}
	}
}
