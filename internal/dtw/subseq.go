package dtw

import (
	"errors"
	"math"
)

// ErrNoCandidates is returned when the search space is empty, e.g.
// the profile is shorter than every candidate length.
var ErrNoCandidates = errors.New("dtw: no candidate segments to search")

// Match describes the best-matching segment found by Subsequence.
type Match struct {
	Start  int     // segment start index in the profile series
	Length int     // segment length in samples
	Dist   float64 // normalized DTW distance of the winning segment
}

// End returns the exclusive end index of the matched segment.
func (m Match) End() int { return m.Start + m.Length }

// Subsequence finds the segment of profile that best matches query
// under normalized DTW, enumerating every candidate length in lengths
// and sliding each over the profile with the given stride (≥1). This
// is Lines 3–8 of the paper's Algorithm 1: candidate lengths span
// [0.5W, 2W] to absorb head-turning-speed mismatch between profiling
// and run-time, and the global minimum across all (start, length)
// pairs wins.
//
// The matcher's early-abandon threshold is tightened to the best score
// found so far, which prunes most cells in practice.
func (m *Matcher) Subsequence(query, profile []float64, lengths []int, stride int, opt Options) (Match, error) {
	if len(query) == 0 || len(profile) == 0 {
		return Match{}, ErrEmptyInput
	}
	if stride < 1 {
		stride = 1
	}
	best := Match{Dist: math.Inf(1)}
	searched := false
	for _, L := range lengths {
		if L < 1 || L > len(profile) {
			continue
		}
		for start := 0; start+L <= len(profile); start += stride {
			searched = true
			seg := profile[start : start+L]
			o := opt
			if !math.IsInf(best.Dist, 1) {
				// Convert the normalized best into an unnormalized
				// abandon bound for this candidate length, using the
				// same normalizer NormalizedDistance divides by.
				bound := best.Dist * float64(alignedLen(len(query), L, o))
				if o.AbandonAbove <= 0 || bound < o.AbandonAbove {
					o.AbandonAbove = bound
				}
			}
			d, err := m.NormalizedDistance(query, seg, o)
			if err != nil {
				return Match{}, err
			}
			if d < best.Dist {
				best = Match{Start: start, Length: L, Dist: d}
			}
		}
	}
	if !searched {
		return Match{}, ErrNoCandidates
	}
	if math.IsInf(best.Dist, 1) {
		return Match{}, ErrNoCandidates
	}
	return best, nil
}

// CandidateLengths enumerates the candidate match lengths of
// Algorithm 1: from ratioLo·w to ratioHi·w in steps of step samples
// (minimum 1). The returned lengths are clipped to [1, maxLen] and
// deduplicated while preserving order.
func CandidateLengths(w int, ratioLo, ratioHi float64, step, maxLen int) []int {
	if w < 1 || ratioHi < ratioLo {
		return nil
	}
	if step < 1 {
		step = 1
	}
	lo := int(math.Floor(float64(w) * ratioLo))
	hi := int(math.Ceil(float64(w) * ratioHi))
	if lo < 1 {
		lo = 1
	}
	if hi > maxLen {
		hi = maxLen
	}
	var out []int
	seen := make(map[int]bool)
	for L := lo; L <= hi; L += step {
		if !seen[L] {
			seen[L] = true
			out = append(out, L)
		}
	}
	return out
}
