package dtw

// Tests and benchmarks for the banded kernel: band connectivity under
// extreme length skew, the O(n·w) visited-cell bound, the tightened
// early abandon, and the Derivative-mode normalizer.

import (
	"fmt"
	"math"
	"testing"

	"vihot/internal/stats"
)

// TestBandedSkewedLengthsFinite: with a Sakoe-Chiba band and no
// abandoning, Distance must be finite for every length pair — the band
// is widened to keep consecutive rows connected, so extreme ratios
// (slope ≫ window) no longer leave an unreachable row that silently
// turns the result into +Inf.
func TestBandedSkewedLengthsFinite(t *testing.T) {
	rng := stats.NewRNG(99)
	lengths := []int{1, 2, 3, 5, 9, 40, 41, 160, 397}
	for _, window := range []int{1, 2, 8} {
		for _, n := range lengths {
			for _, mm := range lengths {
				a := randWalk(int64(n), n)
				b := randWalk(int64(mm)+1000, mm)
				for _, circ := range []bool{false, true} {
					d, err := Distance(a, b, Options{Window: window, Circular: circ})
					if err != nil {
						t.Fatalf("n=%d m=%d w=%d: %v", n, mm, window, err)
					}
					if math.IsInf(d, 1) || math.IsNaN(d) {
						t.Fatalf("n=%d m=%d w=%d circ=%v: banded distance not finite: %v",
							n, mm, window, circ, d)
					}
					// Banded DTW is constrained full DTW: never better.
					full, err := Distance(a, b, Options{Circular: circ})
					if err != nil {
						t.Fatal(err)
					}
					if d < full-1e-12 {
						t.Fatalf("n=%d m=%d w=%d: band %v beats full %v", n, mm, window, d, full)
					}
				}
			}
		}
	}
	_ = rng
}

// TestBandRowConnectivity checks the band geometry invariants the
// kernel's arena relies on directly against bandRow/effectiveWindow:
// row 1 reaches column 1, row n reaches column m, bands are never
// empty, and every row's band overlaps (or abuts) the previous row's,
// with edges monotone non-decreasing.
func TestBandRowConnectivity(t *testing.T) {
	lengths := []int{1, 2, 3, 7, 50, 333, 1024}
	for _, window := range []int{1, 4, 16} {
		for _, n := range lengths {
			for _, mm := range lengths {
				slope := float64(mm) / float64(n)
				w := effectiveWindow(window, slope)
				if w < window {
					t.Fatalf("effectiveWindow shrank: %d < %d", w, window)
				}
				prevLo, prevHi := 1, 0
				for i := 1; i <= n; i++ {
					lo, hi := bandRow(i, slope, w, mm)
					if lo > hi {
						t.Fatalf("n=%d m=%d w=%d row %d: empty band [%d,%d]", n, mm, window, i, lo, hi)
					}
					if i == 1 && lo != 1 {
						t.Fatalf("n=%d m=%d w=%d: row 1 misses column 1 (lo=%d)", n, mm, window, lo)
					}
					if i > 1 {
						if lo < prevLo || hi < prevHi {
							t.Fatalf("n=%d m=%d w=%d row %d: band edges not monotone", n, mm, window, i)
						}
						if lo > prevHi+1 {
							t.Fatalf("n=%d m=%d w=%d row %d: band disconnected (lo=%d prevHi=%d)",
								n, mm, window, i, lo, prevHi)
						}
					}
					prevLo, prevHi = lo, hi
				}
				if prevHi != mm {
					t.Fatalf("n=%d m=%d w=%d: final row misses column m (hi=%d)", n, mm, window, prevHi)
				}
			}
		}
	}
}

// TestBandedCellCountScalesWithWindow proves the satellite claim at
// the geometry level: the number of cells the kernel touches per call
// is O(n·w + m) — doubling the series length doubles the work, while
// the old kernel's full-row clear made it quadratic.
func TestBandedCellCountScalesWithWindow(t *testing.T) {
	cells := func(n, mm, window int) int {
		slope := float64(mm) / float64(n)
		w := effectiveWindow(window, slope)
		total := 0
		for i := 1; i <= n; i++ {
			lo, hi := bandRow(i, slope, w, mm)
			total += hi - lo + 2 // visited cells plus the guard cell lo-1
		}
		return total
	}
	const window = 8
	for _, n := range []int{256, 512, 1024, 4096} {
		got := cells(n, n, window)
		bound := n * (2*window + 2)
		if got > bound {
			t.Fatalf("n=%d: %d cells exceeds O(n·w) bound %d", n, got, bound)
		}
	}
	// Linear, not quadratic: 4× the length ⇒ ~4× the cells.
	c1, c4 := cells(1024, 1024, window), cells(4096, 4096, window)
	if ratio := float64(c4) / float64(c1); ratio > 4.5 {
		t.Fatalf("cell count superlinear in length: ratio %.2f", ratio)
	}
}

// TestEarlyAbandonTightenedSafe: the corner-cell prescreen and per-row
// lower bound may only abandon computations whose true distance
// exceeds the threshold — a threshold at or above the true distance
// must still return the exact value, bit-for-bit.
func TestEarlyAbandonTightenedSafe(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := stats.NewRNG(7000 + seed)
		n := 5 + int(rng.Uniform(0, 60))
		mm := 5 + int(rng.Uniform(0, 60))
		a := randWalk(seed*2+1, n)
		b := randWalk(seed*2+2, mm)
		for _, opt := range optionMatrix() {
			exact, err := Distance(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			o := opt
			// At the exact value (ties) and above: must not abandon.
			for _, thr := range []float64{exact, exact * 1.001, exact + 1} {
				if thr <= 0 {
					continue
				}
				o.AbandonAbove = thr
				got, err := Distance(a, b, o)
				if err != nil {
					t.Fatal(err)
				}
				if got != exact {
					t.Fatalf("seed=%d opt=%+v thr=%v: got %v want exact %v", seed, opt, thr, got, exact)
				}
			}
			// Strictly below: +Inf is the only acceptable "worse than
			// threshold" answer, and the exact value is also fine when
			// rounding keeps the row bound under the threshold.
			if exact > 0 {
				o.AbandonAbove = exact * 0.5
				got, err := Distance(a, b, o)
				if err != nil {
					t.Fatal(err)
				}
				if !math.IsInf(got, 1) && got != exact {
					t.Fatalf("seed=%d opt=%+v: abandoned to %v, want +Inf or %v", seed, opt, got, exact)
				}
			}
		}
	}
}

// TestNormalizedDistanceDerivativeNormalizer pins the ablation path:
// Derivative mode aligns the two difference series (one sample shorter
// each), so the normalizer is (len(a)-1)+(len(b)-1), not the raw
// lengths.
func TestNormalizedDistanceDerivativeNormalizer(t *testing.T) {
	// a has slope 1, b has slope 2: the difference series are constant
	// 1 (length 7) and constant 2 (length 11), so every cell costs
	// exactly 1 and the optimal path visits max(7,11)=11 cells.
	a := make([]float64, 8)
	b := make([]float64, 12)
	for i := range a {
		a[i] = float64(i)
	}
	for j := range b {
		b[j] = 2 * float64(j)
	}
	m := NewMatcher(len(b))
	opt := Options{Derivative: true}
	d, err := m.Distance(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d != 11 {
		t.Fatalf("derivative Distance = %v, want 11", d)
	}
	nd, err := m.NormalizedDistance(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := 11.0 / float64((len(a)-1)+(len(b)-1))
	if nd != want {
		t.Fatalf("derivative NormalizedDistance = %v, want %v (= 11/18)", nd, want)
	}
	// Non-derivative mode still normalizes by the raw lengths.
	d, err = m.Distance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err = m.NormalizedDistance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nd != d/float64(len(a)+len(b)) {
		t.Fatalf("raw NormalizedDistance = %v, want %v", nd, d/float64(len(a)+len(b)))
	}
}

// TestSubsequenceDerivativeBoundConsistent: the abandon bound
// Subsequence derives from the best score so far must use the same
// normalizer as NormalizedDistance, or a correct candidate could be
// pruned. Compare against a brute-force scan with abandoning disabled.
func TestSubsequenceDerivativeBoundConsistent(t *testing.T) {
	profile := randWalk(31, 400)
	query := append([]float64(nil), profile[120:160]...)
	lengths := []int{30, 40, 50, 60}
	for _, opt := range []Options{
		{Window: 8, Circular: true, Derivative: true},
		{Window: 8, Circular: true},
	} {
		m := NewMatcher(len(profile))
		got, err := m.Subsequence(query, profile, lengths, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: no abandon threshold ever set.
		best := Match{Dist: math.Inf(1)}
		bf := NewMatcher(len(profile))
		for _, L := range lengths {
			for start := 0; start+L <= len(profile); start += 2 {
				d, err := bf.NormalizedDistance(query, profile[start:start+L], opt)
				if err != nil {
					t.Fatal(err)
				}
				if d < best.Dist {
					best = Match{Start: start, Length: L, Dist: d}
				}
			}
		}
		if got != best {
			t.Fatalf("opt=%+v: Subsequence %+v != brute force %+v", opt, got, best)
		}
	}
}

// BenchmarkDistanceBanded is the regression benchmark for the banded
// arena: at a fixed window, ns/op must grow linearly with series
// length (the old kernel's full-row clears made this quadratic), and
// at fixed length it grows with the window.
func BenchmarkDistanceBanded(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		for _, window := range []int{8, 64} {
			b.Run(fmt.Sprintf("n=%d/w=%d", size, window), func(b *testing.B) {
				x := randWalk(1, size)
				y := randWalk(2, size)
				m := NewMatcher(size)
				opt := Options{Window: window, Circular: true}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.Distance(x, y, opt); err != nil {
						b.Fatal(err)
					}
				}
				cells := float64(size) * float64(2*window+2)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell")
			})
		}
	}
}

// BenchmarkSubsequenceScan is the tracker-shaped hot path: one query
// window scanned over a profile at every candidate length, with the
// abandon threshold tightening as matches improve.
func BenchmarkSubsequenceScan(b *testing.B) {
	profile := randWalk(5, 1500)
	query := append([]float64(nil), profile[700:750]...)
	lengths := CandidateLengths(len(query), 0.5, 2, 2, len(profile))
	m := NewMatcher(len(profile))
	opt := Options{Window: 8, Circular: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Subsequence(query, profile, lengths, 2, opt); err != nil {
			b.Fatal(err)
		}
	}
}
