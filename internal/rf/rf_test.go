package rf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"vihot/internal/geom"
)

func TestChannel2G4Layout(t *testing.T) {
	c := Channel2G4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NSubcarriers != 30 {
		t.Errorf("NSubcarriers = %d", c.NSubcarriers)
	}
	// Subcarriers must straddle the center symmetrically.
	lo := c.SubcarrierHz(0)
	hi := c.SubcarrierHz(c.NSubcarriers - 1)
	if math.Abs((lo+hi)/2-c.CenterHz) > 1 {
		t.Errorf("subcarriers not centered: lo=%v hi=%v", lo, hi)
	}
	if hi <= lo {
		t.Error("subcarrier frequencies not increasing")
	}
	// 2.4 GHz wavelength ≈ 12.3 cm.
	if l := c.CenterWavelength(); l < 0.12 || l > 0.13 {
		t.Errorf("center wavelength = %v", l)
	}
}

func TestChannel5G(t *testing.T) {
	c := Channel5G()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if l := c.CenterWavelength(); l < 0.05 || l > 0.06 {
		t.Errorf("5 GHz wavelength = %v", l)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Channelization{
		{CenterHz: 0, SpacingHz: 1, NSubcarriers: 1},
		{CenterHz: 1e9, SpacingHz: 1, NSubcarriers: 0},
		{CenterHz: 1e9, SpacingHz: -1, NSubcarriers: 4},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWavelengthMonotone(t *testing.T) {
	c := Channel2G4()
	for k := 1; k < c.NSubcarriers; k++ {
		if c.Wavelength(k) >= c.Wavelength(k-1) {
			t.Fatalf("wavelength not decreasing at %d", k)
		}
	}
}

func TestPathLengthAmplitude(t *testing.T) {
	p := Path{
		Points:       []geom.Vec3{{}, {X: 3, Y: 4}},
		Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1,
	}
	if p.Length() != 5 {
		t.Errorf("Length = %v", p.Length())
	}
	if got := p.Amplitude(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Amplitude = %v, want 1/5", got)
	}
}

func TestAmplitudeNearFieldClamp(t *testing.T) {
	p := Path{
		Points:       []geom.Vec3{{}, {X: 1e-6}},
		Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1,
	}
	if got := p.Amplitude(); got > 100+1e-9 {
		t.Errorf("near-field amplitude unbounded: %v", got)
	}
}

func TestAmplitudeNeverNegative(t *testing.T) {
	p := Path{
		Points:       []geom.Vec3{{}, {X: 1}},
		Reflectivity: -0.5, Blockage: 1, TXGain: 1, RXGain: 1,
	}
	if p.Amplitude() < 0 {
		t.Error("negative amplitude")
	}
}

func TestCSISinglePathPhase(t *testing.T) {
	c := Channel2G4()
	d := 1.0
	p := []Path{{
		Points:       []geom.Vec3{{}, {X: d}},
		Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1,
	}}
	k := 7
	h := CSI(p, c, k)
	wantPhase := math.Mod(2*math.Pi*d/c.Wavelength(k), 2*math.Pi)
	gotPhase := math.Mod(cmplx.Phase(h)+2*math.Pi, 2*math.Pi)
	if math.Abs(geom.WrapRad(gotPhase-wantPhase)) > 1e-9 {
		t.Errorf("phase = %v, want %v", gotPhase, wantPhase)
	}
	if math.Abs(cmplx.Abs(h)-1/d) > 1e-9 {
		t.Errorf("magnitude = %v, want %v", cmplx.Abs(h), 1/d)
	}
}

func TestCSICoherentSum(t *testing.T) {
	c := Channel2G4()
	lambda := c.Wavelength(0)
	// Two equal paths half a wavelength apart cancel.
	d := 2.0
	paths := []Path{
		{Points: []geom.Vec3{{}, {X: d}}, Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1},
		{Points: []geom.Vec3{{}, {X: d + lambda/2}}, Reflectivity: (d + lambda/2) / d, Blockage: 1, TXGain: 1, RXGain: 1},
	}
	h := CSI(paths, c, 0)
	if cmplx.Abs(h) > 1e-6 {
		t.Errorf("destructive paths did not cancel: |h| = %v", cmplx.Abs(h))
	}
}

func TestCSIMovingScattererChangesPhase(t *testing.T) {
	// The paper's core premise: a small displacement of the reflection
	// point produces a measurable phase change.
	c := Channel2G4()
	tx := geom.Vec3{}
	rx := geom.Vec3{X: 1}
	mk := func(scatter geom.Vec3) []Path {
		return []Path{{
			Points:       []geom.Vec3{tx, scatter, rx},
			Reflectivity: 0.5, Blockage: 1, TXGain: 1, RXGain: 1,
		}}
	}
	h1 := CSI(mk(geom.Vec3{X: 0.5, Y: 0.5}), c, 0)
	h2 := CSI(mk(geom.Vec3{X: 0.5, Y: 0.52}), c, 0) // 2 cm shift
	dphi := math.Abs(geom.WrapRad(cmplx.Phase(h2) - cmplx.Phase(h1)))
	if dphi < 0.2 {
		t.Errorf("2 cm scatterer shift produced only %v rad", dphi)
	}
}

func TestCSIAllSubcarriers(t *testing.T) {
	c := Channel2G4()
	paths := []Path{{
		Points:       []geom.Vec3{{}, {X: 2}},
		Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1,
	}}
	got := CSIAllSubcarriers(paths, c, nil)
	if len(got) != c.NSubcarriers {
		t.Fatalf("len = %d", len(got))
	}
	for k := range got {
		if got[k] != CSI(paths, c, k) {
			t.Fatalf("subcarrier %d mismatch", k)
		}
	}
	// Buffer reuse.
	buf := make([]complex128, 0, 64)
	out := CSIAllSubcarriers(paths, c, buf)
	if cap(out) != 64 {
		t.Error("did not reuse provided buffer")
	}
}

func TestIsotropicGain(t *testing.T) {
	a := Isotropic(geom.Vec3{})
	f := func(x, y, z float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(z) > 1e6 {
			return true
		}
		return a.Gain(geom.Vec3{X: x, Y: y, Z: z}) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDipolePattern(t *testing.T) {
	// Wire along Y (phone short edge toward passenger): null toward
	// +Y, full gain toward +X.
	a := Dipole(geom.Vec3{}, geom.Vec3{Y: 1}, 0.05)
	if g := a.Gain(geom.Vec3{Y: 1}); math.Abs(g-0.05) > 1e-12 {
		t.Errorf("axial gain = %v, want null depth", g)
	}
	if g := a.Gain(geom.Vec3{X: 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("broadside gain = %v, want 1", g)
	}
	// 45°: sin(45°) ≈ 0.707.
	if g := a.Gain(geom.Vec3{X: 1, Y: 1}); math.Abs(g-math.Sqrt2/2) > 1e-9 {
		t.Errorf("45° gain = %v", g)
	}
}

func TestDipoleNullDepthClamping(t *testing.T) {
	a := Dipole(geom.Vec3{}, geom.Vec3{Y: 1}, -1)
	if a.NullDepth != 0 {
		t.Error("negative null depth not clamped")
	}
	b := Dipole(geom.Vec3{}, geom.Vec3{Y: 1}, 2)
	if b.NullDepth != 1 {
		t.Error("null depth > 1 not clamped")
	}
}

func TestDipoleGainAtOwnPosition(t *testing.T) {
	a := Dipole(geom.Vec3{X: 1}, geom.Vec3{Y: 1}, 0.1)
	if g := a.Gain(geom.Vec3{X: 1}); g != 0.1 {
		t.Errorf("gain at own position = %v", g)
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Canonical value: 2.4 GHz at 1 m ≈ 40.05 dB.
	got := FreeSpacePathLossDB(1, 2.4e9)
	if math.Abs(got-40.05) > 0.1 {
		t.Errorf("FSPL(1m, 2.4GHz) = %v", got)
	}
	// Doubling distance adds ≈ 6.02 dB.
	d2 := FreeSpacePathLossDB(2, 2.4e9)
	if math.Abs(d2-got-6.02) > 0.05 {
		t.Errorf("doubling distance added %v dB", d2-got)
	}
	if FreeSpacePathLossDB(0, 2.4e9) != 0 || FreeSpacePathLossDB(1, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestCSILinearInPaths(t *testing.T) {
	// The channel is a coherent sum: CSI(A ∪ B) = CSI(A) + CSI(B).
	c := Channel2G4()
	mk := func(x, y, refl float64) Path {
		return Path{
			Points:       []geom.Vec3{{}, {X: x, Y: y}, {X: 1}},
			Reflectivity: refl, Blockage: 1, TXGain: 1, RXGain: 1,
		}
	}
	a := []Path{mk(0.3, 0.4, 0.5), mk(0.7, -0.2, 0.3)}
	b := []Path{mk(-0.1, 0.6, 0.4)}
	both := append(append([]Path{}, a...), b...)
	for k := 0; k < c.NSubcarriers; k += 7 {
		sum := CSI(a, c, k) + CSI(b, c, k)
		got := CSI(both, c, k)
		if cmplx.Abs(got-sum) > 1e-12 {
			t.Fatalf("subcarrier %d: nonlinear sum: %v vs %v", k, got, sum)
		}
	}
}

func TestExtraLengthShiftsPhase(t *testing.T) {
	c := Channel2G4()
	base := Path{
		Points:       []geom.Vec3{{}, {X: 1}},
		Reflectivity: 1, Blockage: 1, TXGain: 1, RXGain: 1,
	}
	detoured := base
	detoured.Extra = c.CenterWavelength() / 4 // quarter wave = π/2
	h0 := CSI([]Path{base}, c, c.NSubcarriers/2)
	h1 := CSI([]Path{detoured}, c, c.NSubcarriers/2)
	dphi := cmplx.Phase(h1 * cmplx.Conj(h0))
	if math.Abs(dphi-math.Pi/2) > 0.02 {
		t.Errorf("quarter-wave detour shifted phase by %v, want ≈π/2", dphi)
	}
	// The detour lengthens the electrical path, so the amplitude drops
	// slightly (1/d spreading) — by the λ/4 over 1 m ratio.
	ratio := cmplx.Abs(h1) / cmplx.Abs(h0)
	want := 1.0 / (1.0 + c.CenterWavelength()/4)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("amplitude ratio = %v, want %v", ratio, want)
	}
}
