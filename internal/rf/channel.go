// Package rf models the physical radio layer: 802.11 channelization,
// subcarrier wavelengths, antenna radiation patterns, ray paths, and
// the multipath channel whose CSI the paper's Eq. (1) describes:
//
//	H_f(t) = Σₖ Aᵏ_f(t) · e^{ j·2π·dₖ(t)/λ_f }
//
// Everything is deterministic given the scene geometry; hardware phase
// corruption (CFO/SFO, thermal noise) lives in package csi.
package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"vihot/internal/geom"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// Channelization describes the OFDM subcarrier layout of a WiFi link
// as seen by a CSI extraction tool. The Intel 5300 used by the paper
// reports 30 grouped subcarriers across a 20 MHz 802.11n channel.
type Channelization struct {
	CenterHz     float64 // carrier center frequency
	SpacingHz    float64 // spacing between reported subcarriers
	NSubcarriers int     // number of reported subcarriers
}

// Channel2G4 returns the paper's prototype channelization: 2.4 GHz
// band (channel 6, 2.437 GHz), 30 reported subcarriers spanning a
// 20 MHz channel (grouped spacing ≈ 2 × 312.5 kHz).
func Channel2G4() Channelization {
	return Channelization{
		CenterHz:     2.437e9,
		SpacingHz:    625e3,
		NSubcarriers: 30,
	}
}

// Channel5G returns a 5 GHz channelization (channel 36) for the
// future-work experiments of Sec. 7.
func Channel5G() Channelization {
	return Channelization{
		CenterHz:     5.180e9,
		SpacingHz:    625e3,
		NSubcarriers: 30,
	}
}

// Validate reports a descriptive error for nonsensical layouts.
func (c Channelization) Validate() error {
	if c.CenterHz <= 0 {
		return fmt.Errorf("rf: center frequency %v Hz not positive", c.CenterHz)
	}
	if c.NSubcarriers < 1 {
		return fmt.Errorf("rf: need at least 1 subcarrier, got %d", c.NSubcarriers)
	}
	if c.SpacingHz < 0 {
		return fmt.Errorf("rf: negative subcarrier spacing %v", c.SpacingHz)
	}
	return nil
}

// SubcarrierHz returns the absolute frequency of subcarrier index k in
// [0, NSubcarriers). Subcarriers are laid out symmetrically around the
// center frequency.
func (c Channelization) SubcarrierHz(k int) float64 {
	offset := float64(k) - float64(c.NSubcarriers-1)/2
	return c.CenterHz + offset*c.SpacingHz
}

// Wavelength returns λ in meters for subcarrier k.
func (c Channelization) Wavelength(k int) float64 {
	return SpeedOfLight / c.SubcarrierHz(k)
}

// CenterWavelength returns λ at the channel center.
func (c Channelization) CenterWavelength() float64 {
	return SpeedOfLight / c.CenterHz
}

// Path is one propagation path between TX and RX: an ordered polyline
// through zero or more reflection points, plus an optional extra
// electrical length for waves that creep around an obstacle rather
// than travel the straight polyline (diffraction detour).
type Path struct {
	Points       []geom.Vec3 // TX, reflections..., RX
	Reflectivity float64     // product of reflection coefficients, 1 for LOS
	Blockage     float64     // extra amplitude attenuation in [0,1], 1 = clear
	Extra        float64     // extra electrical path length, meters
	TXGain       float64     // TX antenna amplitude gain toward first segment
	RXGain       float64     // RX antenna amplitude gain from last segment
}

// Length returns the electrical path length in meters: the polyline
// length plus any diffraction detour.
func (p Path) Length() float64 { return geom.PathLength(p.Points...) + p.Extra }

// Amplitude returns the received amplitude of the path relative to a
// unit transmit amplitude: free-space spreading 1/d, reflection loss,
// blockage, and antenna gains. Paths shorter than a centimeter are
// clamped to avoid near-field singularities.
func (p Path) Amplitude() float64 {
	d := p.Length()
	if d < 0.01 {
		d = 0.01
	}
	a := p.Reflectivity * p.Blockage * p.TXGain * p.RXGain / d
	if a < 0 {
		a = 0
	}
	return a
}

// CSI computes the complex channel response of a set of paths on
// subcarrier k: the coherent sum of per-path phasors (Eq. 1).
func CSI(paths []Path, c Channelization, k int) complex128 {
	lambda := c.Wavelength(k)
	var h complex128
	for _, p := range paths {
		a := p.Amplitude()
		if a == 0 {
			continue
		}
		phase := 2 * math.Pi * p.Length() / lambda
		h += cmplx.Rect(a, phase)
	}
	return h
}

// wavelengths caches the per-subcarrier λ table for each
// channelization seen. Channelization is a small comparable value
// type and simulations use a handful of them, so a lock-free sync.Map
// of immutable slices serves every goroutine without recomputing the
// divides per frame.
var wavelengths sync.Map // Channelization -> []float64

// wavelengthTable returns the cached λ_k table for c.
func wavelengthTable(c Channelization) []float64 {
	if v, ok := wavelengths.Load(c); ok {
		return v.([]float64)
	}
	t := make([]float64, c.NSubcarriers)
	for k := range t {
		t[k] = c.Wavelength(k)
	}
	wavelengths.Store(c, t)
	return t
}

// CSIAllSubcarriers fills dst (length NSubcarriers, grown as needed)
// with the channel response on every subcarrier and returns it.
//
// This is the simulator's per-frame inner loop, so the per-path
// geometry — polyline length (a sqrt chain) and amplitude — is hoisted
// out of the subcarrier sweep and λ_k comes from the cached table; the
// remaining loop is one sincos and one divide per path per subcarrier.
// The hoisted values are the very same floats the per-subcarrier CSI
// calls computed, so the output is bit-identical.
func CSIAllSubcarriers(paths []Path, c Channelization, dst []complex128) []complex128 {
	if cap(dst) < c.NSubcarriers {
		dst = make([]complex128, c.NSubcarriers)
	}
	dst = dst[:c.NSubcarriers]
	// Phase on subcarrier k is (2π·length)/λ_k: precompute the
	// numerator per path, preserving path order (the coherent sum is
	// order-sensitive in floating point).
	var ampArr, numArr [16]float64
	amps, nums := ampArr[:0], numArr[:0]
	for _, p := range paths {
		a := p.Amplitude()
		if a == 0 {
			continue
		}
		amps = append(amps, a)
		nums = append(nums, 2*math.Pi*p.Length())
	}
	lambdas := wavelengthTable(c)
	for k := range dst {
		lambda := lambdas[k]
		var h complex128
		for i, a := range amps {
			h += cmplx.Rect(a, nums[i]/lambda)
		}
		dst[k] = h
	}
	return dst
}

// FreeSpacePathLossDB returns the free-space path loss in dB at
// distance d meters and frequency f Hz (Friis). Used by the link
// budget sanity checks and the interference model.
func FreeSpacePathLossDB(d, f float64) float64 {
	if d <= 0 || f <= 0 {
		return 0
	}
	return 20*math.Log10(d) + 20*math.Log10(f) + 20*math.Log10(4*math.Pi/SpeedOfLight)
}
