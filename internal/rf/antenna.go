package rf

import (
	"math"

	"vihot/internal/geom"
)

// Antenna models a linear (wire/dipole) antenna with the classic
// "donut" radiation pattern of Sec. 3.5: omnidirectional in the plane
// orthogonal to the wire, with a deep null along the wire axis. The
// paper exploits this null to suppress reflections from the passenger:
// the driver orients the phone so its short edge — the antenna axis —
// points at the passenger seat.
type Antenna struct {
	Pos  geom.Vec3 // phase center position
	Axis geom.Vec3 // wire axis direction (need not be unit length)

	// NullDepth is the residual amplitude gain along the axis, in
	// [0, 1]. A perfect dipole has 0; real phone antennas leak a
	// little, so the cabin model uses a small nonzero value.
	NullDepth float64
}

// Isotropic returns an antenna with unit gain in every direction,
// used for the external receiver antennas whose pattern the paper
// does not model.
func Isotropic(pos geom.Vec3) Antenna {
	return Antenna{Pos: pos, NullDepth: 1}
}

// Dipole returns a dipole antenna at pos with the given wire axis.
func Dipole(pos, axis geom.Vec3, nullDepth float64) Antenna {
	if nullDepth < 0 {
		nullDepth = 0
	}
	if nullDepth > 1 {
		nullDepth = 1
	}
	return Antenna{Pos: pos, Axis: axis, NullDepth: nullDepth}
}

// Gain returns the amplitude gain toward the given target point. For
// a dipole the gain is sin(ψ) where ψ is the angle between the wire
// axis and the departure direction, floored at NullDepth; an antenna
// with a zero axis is isotropic.
func (a Antenna) Gain(target geom.Vec3) float64 {
	if a.Axis == (geom.Vec3{}) {
		if a.NullDepth > 0 {
			return a.NullDepth
		}
		return 1
	}
	dir := target.Sub(a.Pos)
	if dir == (geom.Vec3{}) {
		return a.NullDepth
	}
	psi := geom.Radians(a.Axis.AngleTo(dir))
	g := math.Abs(math.Sin(psi))
	if g < a.NullDepth {
		g = a.NullDepth
	}
	return g
}
