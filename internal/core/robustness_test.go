package core

import (
	"math"
	"testing"
	"testing/quick"

	"vihot/internal/geom"
	"vihot/internal/imu"
)

// Failure-injection tests: the tracker is fed hostile streams and must
// neither panic nor emit non-finite estimates.

func pushAll(t *testing.T, tk *Tracker, feed func(i int) (float64, float64), n int) int {
	t.Helper()
	emitted := 0
	for i := 0; i < n; i++ {
		ts, phi := feed(i)
		est, ok := tk.Push(ts, phi)
		if !ok {
			continue
		}
		emitted++
		if math.IsNaN(est.Yaw) || math.IsInf(est.Yaw, 0) {
			t.Fatalf("non-finite estimate at sample %d: %+v", i, est)
		}
	}
	return emitted
}

func TestTrackerSurvivesNaNPhases(t *testing.T) {
	tk := newTestTracker(t, 2, DefaultConfig())
	pushAll(t, tk, func(i int) (float64, float64) {
		phi := -1 + 0.8*math.Sin(float64(i)*0.01)
		if i%97 == 0 {
			phi = math.NaN() // a corrupted CSI frame
		}
		return float64(i) * 0.002, phi
	}, 4000)
}

func TestTrackerSurvivesHugeGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive integration test")
	}
	// Packet stream with multi-second dropouts.
	tk := newTestTracker(t, 2, DefaultConfig())
	ts := 0.0
	pushAll(t, tk, func(i int) (float64, float64) {
		ts += 0.002
		if i%500 == 499 {
			ts += 5 // link outage
		}
		theta := 80 * math.Sin(ts)
		return ts, -1 + 0.8*math.Sin(theta*math.Pi/180)
	}, 4000)
}

func TestTrackerSurvivesConstantStream(t *testing.T) {
	// A dead sensor pinned at one value: only front-facing estimates
	// (the stability premise) should come out.
	tk := newTestTracker(t, 2, DefaultConfig())
	for i := 0; i < 3000; i++ {
		est, ok := tk.Push(float64(i)*0.002, 0.42)
		if ok && est.Source == SourceCSI && i > 1000 {
			t.Fatal("CSI estimates from a frozen stream after stability should not happen")
		}
	}
}

func TestTrackerSurvivesWhiteNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive integration test")
	}
	tk := newTestTracker(t, 2, DefaultConfig())
	seed := uint64(12345)
	rnd := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	pushAll(t, tk, func(i int) (float64, float64) {
		return float64(i) * 0.002, (rnd() - 0.5) * 2 * math.Pi
	}, 4000)
}

func TestTrackerOutOfOrderTimestamps(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	pushAll(t, tk, func(i int) (float64, float64) {
		ts := float64(i) * 0.002
		if i%50 == 25 {
			ts -= 0.01 // clock jitter: slightly out of order
		}
		theta := 80 * math.Sin(ts)
		return ts, -1 + 0.8*math.Sin(theta*math.Pi/180)
	}, 3000)
}

func TestPipelineSurvivesIMUGarbage(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	for i := 0; i < 500; i++ {
		r := imu.Reading{Time: float64(i) * 0.01}
		switch i % 3 {
		case 0:
			r.GyroZ = 1e9
		case 1:
			r.GyroZ = math.NaN()
		default:
			r.GyroZ = -1e9
		}
		pl.PushIMU(r)
	}
	// Still serves estimates afterwards.
	emitted := 0
	for ts := 10.0; ts < 14; ts += 0.002 {
		theta := 80 * math.Sin(ts)
		if _, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok {
			emitted++
		}
	}
	if emitted == 0 {
		t.Error("pipeline dead after IMU garbage")
	}
}

func TestForecastPropertyWithinProfileRange(t *testing.T) {
	// For any estimate produced by tracking, any forecast horizon must
	// return an orientation inside the profile's orientation range.
	tk := newTestTracker(t, 1, DefaultConfig())
	theta := tk.profile.Positions[0].ThetaGrid
	lo, hi := theta[0], theta[0]
	for _, v := range theta {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var ests []Estimate
	for ts := 0.0; ts < 10; ts += 0.002 {
		th := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := tk.Push(ts, -1+0.8*math.Sin(th*math.Pi/180)); ok && est.Source == SourceCSI {
			ests = append(ests, est)
		}
	}
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}
	f := func(idx uint, horizon float64) bool {
		est := ests[idx%uint(len(ests))]
		h := math.Mod(math.Abs(horizon), 1.0)
		got := tk.Forecast(est, h)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateErrorsAlwaysFinite(t *testing.T) {
	// Angular distance of any produced estimate is in [0, 180].
	tk := newTestTracker(t, 3, DefaultConfig())
	for ts := 0.0; ts < 10; ts += 0.002 {
		th := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := tk.Push(ts, -1+0.8*math.Sin(th*math.Pi/180)); ok {
			d := geom.AngleDistDeg(est.Yaw, th)
			if d < 0 || d > 180 || math.IsNaN(d) {
				t.Fatalf("bad angular distance %v", d)
			}
		}
	}
}
