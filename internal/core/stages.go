package core

// StageObserver receives the wall-clock cost of one named pipeline
// stage, anchored at the stream time of the sample that drove it:
// streamT is the sensor timestamp (the timeline estimates, golden
// traces, and the degradation machine run on), durNS the wall-clock
// nanoseconds the stage just took. internal/serve installs an observer
// that feeds the obs registry's per-stage histograms and the span
// tracer.
//
// Observers run synchronously on the pipeline's owning goroutine, so
// they must be cheap and must not call back into the pipeline. A nil
// observer disables stage timing entirely — the pipeline then reads no
// clocks, which is what keeps deterministic runs byte-identical and
// the uninstrumented hot path free.
type StageObserver func(stage string, streamT float64, durNS int64)

// Stage names reported through StageObserver, in pipeline order. The
// serving layer adds its own stages (queue dwell) on top; these are
// the ones the core pipeline itself can time.
const (
	// StageSanitize is raw-frame CSI sanitization (Eq. 3). The
	// sanitizer lives in internal/csi and is invoked by the serving
	// layer, which reports this stage.
	StageSanitize = "sanitize"
	// StageMatch is the DTW series-matching step inside an estimate
	// (Algorithm 1) — the dominant per-estimate cost.
	StageMatch = "match"
	// StageTrack is one full Tracker.Push: window maintenance,
	// stability detection, matching, and the continuity filter.
	// StageMatch is a sub-interval of StageTrack.
	StageTrack = "track"
	// StageFuse is the camera-fusion blend applied to a CSI estimate.
	StageFuse = "fuse"
)
