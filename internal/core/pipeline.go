package core

import (
	"math"
	"time"

	"vihot/internal/camera"
	"vihot/internal/imu"
)

// PipelineConfig tunes the full run-time pipeline: the CSI tracker
// plus the steering identifier and camera fallback of Sec. 3.6.
type PipelineConfig struct {
	Tracker Config
	// SteeringIdentifier enables the IMU-gated fallback; disabling it
	// reproduces the "w/o steering identifier" curve of Fig. 17b.
	SteeringIdentifier bool
	// QuarantineS keeps the CSI tracker muted this long after the car
	// stops turning, letting steering-polluted samples age out of the
	// window.
	QuarantineS float64

	// CameraFusion enables the hybrid mode sketched in the paper's
	// Sec. 7 ("Combining with cameras"): when a camera frame fresher
	// than FusionMaxAgeS exists, CSI estimates are blended with it.
	// The camera is robust to cabin motions the CSI is not, and the
	// CSI supplies the rate and latency the camera lacks.
	CameraFusion bool
	// FusionCSIWeight is the CSI share of a fused estimate (default
	// 0.75 — camera frames are 10× sparser and 45 ms stale).
	FusionCSIWeight float64
	// FusionMaxAgeS is how stale a camera frame may be and still fuse.
	FusionMaxAgeS float64
}

// DefaultPipelineConfig enables the steering identifier with the
// tracker defaults.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Tracker:            DefaultConfig(),
		SteeringIdentifier: true,
		QuarantineS:        0.4,
	}
}

// Pipeline composes the CSI tracker, the phone-IMU steering
// identifier, and the camera fallback into ViHOT's full run-time
// system (Fig. 4).
type Pipeline struct {
	cfg     PipelineConfig
	tracker *Tracker
	turn    *imu.TurnDetector

	camYaw   float64
	camTime  float64
	camValid bool

	turning         bool
	quarantineUntil float64
	nextFallbackEst float64
	lastIMUTime     float64
	haveIMU         bool

	// Timestamp discipline: each sensor stream must advance strictly
	// monotonically. Duplicated or reordered wire packets (and hostile
	// timestamp regressions) are rejected deterministically instead of
	// corrupting window resampling and watchdog arithmetic.
	lastCSITime float64
	haveCSITime bool

	stageObs StageObserver
}

// imuWatchdogS fails the steering identifier open when the IMU feed
// goes silent: better to risk steering-polluted CSI than to starve the
// tracker behind a dead sensor.
const imuWatchdogS = 1.0

// NewPipeline builds the pipeline over a driver profile.
func NewPipeline(p *Profile, cfg PipelineConfig) (*Pipeline, error) {
	tk, err := NewTracker(p, cfg.Tracker)
	if err != nil {
		return nil, err
	}
	if cfg.QuarantineS < 0 {
		cfg.QuarantineS = 0
	}
	if cfg.FusionCSIWeight <= 0 || cfg.FusionCSIWeight > 1 {
		cfg.FusionCSIWeight = 0.75
	}
	if cfg.FusionMaxAgeS <= 0 {
		cfg.FusionMaxAgeS = 0.15
	}
	return &Pipeline{
		cfg:     cfg,
		tracker: tk,
		turn:    imu.NewTurnDetector(),
	}, nil
}

// Tracker exposes the underlying CSI tracker (for forecasting).
func (pl *Pipeline) Tracker() *Tracker { return pl.tracker }

// Profile returns the driver profile the pipeline tracks against —
// the same shared instance the pipeline was built over, never a copy
// (see the Profile immutability contract).
func (pl *Pipeline) Profile() *Profile { return pl.tracker.Profile() }

// SetStageObserver installs (or, with nil, removes) a stage-latency
// observer on the pipeline and its tracker; see the StageObserver
// type. With none installed the pipeline reads no clocks at all.
func (pl *Pipeline) SetStageObserver(fn StageObserver) {
	pl.stageObs = fn
	pl.tracker.SetStageObserver(fn)
}

// Steering reports whether the steering identifier currently
// attributes CSI variation to the wheel.
func (pl *Pipeline) Steering() bool { return pl.turning }

// PushIMU feeds one phone-IMU reading. The phone senses only the car
// body, so a high yaw rate means the vehicle is being steered — any
// concurrent CSI variation is then hand motion, not head motion
// (Sec. 3.6.1).
func (pl *Pipeline) PushIMU(r imu.Reading) {
	if !pl.cfg.SteeringIdentifier {
		return
	}
	if !r.Finite() {
		// A corrupted reading carries no usable motion information and a
		// NaN timestamp would wedge the IMU watchdog permanently.
		return
	}
	if pl.haveIMU && r.Time <= pl.lastIMUTime {
		// Duplicate or reordered reading: the detector already consumed
		// this instant; replaying it would double-weight the smoother.
		return
	}
	pl.lastIMUTime = r.Time
	pl.haveIMU = true
	was := pl.turning
	pl.turning = pl.turn.Push(r)
	if was && !pl.turning {
		pl.quarantineUntil = r.Time + pl.cfg.QuarantineS
	}
	if pl.turning {
		// Entering (or continuing) a steering event: the CSI window is
		// polluted; drop it so the tracker restarts clean afterwards.
		pl.tracker.Reset()
	}
}

// PushCamera feeds one fallback-camera estimate (only consulted while
// steering).
func (pl *Pipeline) PushCamera(e camera.Estimate) {
	if !e.Valid {
		return
	}
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) ||
		math.IsNaN(e.Yaw) || math.IsInf(e.Yaw, 0) {
		return
	}
	if pl.camValid && e.Time <= pl.camTime {
		// A duplicated or reordered frame is never fresher than the one
		// already held; adopting it would regress the fusion age check.
		return
	}
	pl.camYaw = e.Yaw
	pl.camTime = e.Time
	pl.camValid = true
}

// PushCSI feeds one sanitized CSI phase sample and returns an
// estimate when one is due. While the car is turning (or shortly
// after), CSI is quarantined and the camera fallback supplies the
// estimate instead.
func (pl *Pipeline) PushCSI(t, phi float64) (Estimate, bool) {
	if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(phi) || math.IsInf(phi, 0) {
		return Estimate{}, false
	}
	if pl.haveCSITime && t <= pl.lastCSITime {
		// Out-of-order, duplicated, or backwards-jumping sample: the
		// window is a time series — accepting it would fold the stream
		// back on itself. Rejection is deterministic: the same input
		// sequence always keeps exactly the strictly-increasing prefix
		// order.
		return Estimate{}, false
	}
	pl.lastCSITime, pl.haveCSITime = t, true
	if pl.turning && pl.haveIMU && t-pl.lastIMUTime > imuWatchdogS {
		// IMU watchdog: the gyro feed died while flagged as turning.
		pl.turning = false
		pl.turn.Reset()
		pl.quarantineUntil = 0
	}
	if pl.cfg.SteeringIdentifier && (pl.turning || t < pl.quarantineUntil) {
		if !pl.camValid || t < pl.nextFallbackEst {
			return Estimate{}, false
		}
		pl.nextFallbackEst = t + pl.tracker.cfg.EstimateEveryS
		return Estimate{Time: t, Yaw: pl.camYaw, Source: SourceCamera}, true
	}
	var t0 time.Time
	if pl.stageObs != nil {
		t0 = time.Now()
	}
	est, ok := pl.tracker.Push(t, phi)
	if pl.stageObs != nil {
		pl.stageObs(StageTrack, t, time.Since(t0).Nanoseconds())
	}
	if ok && pl.cfg.CameraFusion && pl.camValid &&
		est.Source == SourceCSI && t-pl.camTime <= pl.cfg.FusionMaxAgeS {
		if pl.stageObs != nil {
			t0 = time.Now()
		}
		w := pl.cfg.FusionCSIWeight
		est.Yaw = w*est.Yaw + (1-w)*pl.camYaw
		est.Source = SourceFused
		if pl.stageObs != nil {
			pl.stageObs(StageFuse, t, time.Since(t0).Nanoseconds())
		}
	}
	return est, ok
}
