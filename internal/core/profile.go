// Package core implements ViHOT itself: position-orientation joint
// profiling (Sec. 3.3), the two-level position-orientation joint
// tracker with DTW series matching (Sec. 3.4, Algorithm 1), head
// orientation forecasting (Sec. 3.4.6), and the steering identifier
// with camera fallback (Sec. 3.6).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"vihot/internal/dsp"
	"vihot/internal/geom"
)

// Errors returned by profile construction and tracking.
var (
	ErrEmptyProfile   = errors.New("core: profile has no positions")
	ErrShortRecording = errors.New("core: recording too short to profile")
	ErrNotReady       = errors.New("core: tracker window not yet filled")
)

// SweepRecording is the raw material of one profiling pass: the CSI
// phase stream recorded while the driver swept the head back and
// forth at one head position, the time-aligned ground-truth
// orientation stream (from the phone camera or headset), and the
// front-facing fingerprint phase φ⁰c(i) captured before the sweep.
type SweepRecording struct {
	Position    int
	Fingerprint float64    // φ⁰c(i), radians
	Phase       dsp.Series // Φ*c: CSI phase vs time
	Orientation dsp.Series // Θ*c: head yaw (deg) vs time
}

// PositionProfile is the processed profile of one head position: the
// phase and orientation series resampled onto the common match grid.
type PositionProfile struct {
	Position    int
	Fingerprint float64

	// Grids resampled at the profile's MatchRate; equal length, index-
	// aligned: ThetaGrid[k] is the head orientation when the CSI phase
	// was PhiGrid[k].
	PhiGrid   []float64
	ThetaGrid []float64
}

// Profile is a driver's full CSI profile P = {C₁ … Cₙ} (Sec. 3.3).
//
// # Immutability contract
//
// Once a Profile has been handed to a consumer — NewTracker,
// NewPipeline, serve.Manager.Open, or a profilestore cache — it is
// immutable: no field, slice element, or nested slice may be written
// again. The serving stack relies on this to share one Profile
// instance across many concurrent sessions (and with the cache that
// loaded it) without copies or locks. Operations that conceptually
// modify a profile return a new one instead: see Merge and Clone.
// TestProfileImmutableUnderUse deep-freezes a profile and proves the
// tracker honours the contract.
type Profile struct {
	MatchRateHz float64
	Positions   []PositionProfile
}

// fnv64 offset/prime constants (FNV-1a), inlined so Fingerprint needs
// no hash.Hash allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a 64-bit FNV-1a hash over the profile's
// semantic content: match rate, and every position's index,
// front-facing fingerprint phase, and grids, in order. It is a pure
// function of the data — independent of how the profile was encoded —
// so a legacy-gob profile and its migrated v1 copy fingerprint
// identically, and two sessions can cheaply verify they share the
// same profile generation. It is not a cryptographic digest.
func (p *Profile) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (v >> i) & 0xff
			h *= fnvPrime64
		}
	}
	mixF := func(f float64) { mix(math.Float64bits(f)) }
	mixF(p.MatchRateHz)
	mix(uint64(len(p.Positions)))
	for _, pos := range p.Positions {
		mix(uint64(int64(pos.Position)))
		mixF(pos.Fingerprint)
		mix(uint64(len(pos.PhiGrid)))
		for _, v := range pos.PhiGrid {
			mixF(v)
		}
		mix(uint64(len(pos.ThetaGrid)))
		for _, v := range pos.ThetaGrid {
			mixF(v)
		}
	}
	return h
}

// Clone returns a deep copy of p sharing no memory with it. Use it
// when code needs a mutable scratch profile derived from a shared
// (immutable) one.
func (p *Profile) Clone() *Profile {
	q := &Profile{
		MatchRateHz: p.MatchRateHz,
		Positions:   make([]PositionProfile, len(p.Positions)),
	}
	for i, pos := range p.Positions {
		q.Positions[i] = PositionProfile{
			Position:    pos.Position,
			Fingerprint: pos.Fingerprint,
			PhiGrid:     append([]float64(nil), pos.PhiGrid...),
			ThetaGrid:   append([]float64(nil), pos.ThetaGrid...),
		}
	}
	return q
}

// DefaultMatchRateHz is the uniform grid both the profile and the
// run-time window are resampled to before DTW.
const DefaultMatchRateHz = 100

// BuildProfile processes raw sweep recordings into a matchable
// profile. Each recording must span at least minDuration of data;
// shorter ones yield ErrShortRecording.
func BuildProfile(recs []SweepRecording, matchRateHz float64) (*Profile, error) {
	if matchRateHz <= 0 {
		matchRateHz = DefaultMatchRateHz
	}
	if len(recs) == 0 {
		return nil, ErrEmptyProfile
	}
	const minDuration = 0.5 // seconds of usable sweep
	p := &Profile{MatchRateHz: matchRateHz}
	for _, r := range recs {
		if r.Phase.Duration() < minDuration || r.Orientation.Duration() < minDuration {
			return nil, fmt.Errorf("%w: position %d has %.2fs of phase and %.2fs of orientation",
				ErrShortRecording, r.Position, r.Phase.Duration(), r.Orientation.Duration())
		}
		// Unwrap the phase stream before resampling: linear
		// interpolation across the ±π seam would otherwise invent
		// values on the wrong side of the circle. Grid values are
		// wrapped back afterwards.
		unwrapped := make(dsp.Series, len(r.Phase))
		uv := dsp.Unwrap(r.Phase.Values())
		for k := range r.Phase {
			unwrapped[k] = dsp.Sample{T: r.Phase[k].T, V: uv[k]}
		}
		phi, err := unwrapped.ResampleValues(matchRateHz, nil)
		if err != nil {
			return nil, fmt.Errorf("core: resample phase for position %d: %w", r.Position, err)
		}
		for k := range phi {
			phi[k] = geom.WrapRad(phi[k])
		}
		// Resample orientation onto the phase grid timestamps so the
		// two stay index-aligned even though the camera/headset labels
		// arrive on their own clock.
		theta := make([]float64, len(phi))
		t0 := r.Phase[0].T
		dt := 1 / matchRateHz
		for k := range theta {
			v, err := r.Orientation.At(t0 + float64(k)*dt)
			if err != nil {
				return nil, fmt.Errorf("core: align orientation for position %d: %w", r.Position, err)
			}
			theta[k] = v
		}
		p.Positions = append(p.Positions, PositionProfile{
			Position:    r.Position,
			Fingerprint: geom.WrapRad(r.Fingerprint),
			PhiGrid:     phi,
			ThetaGrid:   theta,
		})
	}
	return p, nil
}

// NearestPosition implements Eq. (4): it returns the index into
// Positions whose front-facing fingerprint φ⁰c(i) is circularly
// closest to the observed stable phase φ⁰r.
func (p *Profile) NearestPosition(phi0r float64) (int, error) {
	c, err := p.NearestPositions(phi0r, 1)
	if err != nil {
		return 0, err
	}
	return c[0], nil
}

// NearestPositions returns up to k position indices ordered by
// circular fingerprint distance to φ⁰r — the Eq. (4) shortlist.
//
// At 2.4 GHz the fingerprint phase wraps every ≈12.5 cm of path
// change, so across the ≈18 cm lean range several head positions can
// share similar φ⁰ values (aliasing). A single nearest match is then
// ambiguous; the tracker resolves the shortlist by DTW match quality.
func (p *Profile) NearestPositions(phi0r float64, k int) ([]int, error) {
	if len(p.Positions) == 0 {
		return nil, ErrEmptyProfile
	}
	if k < 1 {
		k = 1
	}
	if k > len(p.Positions) {
		k = len(p.Positions)
	}
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(p.Positions))
	for i, pos := range p.Positions {
		cands[i] = cand{i, math.Abs(geom.PhaseDiff(pos.Fingerprint, phi0r))}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out, nil
}

// Merge returns a NEW profile holding p's positions followed by
// other's, supporting the paper's "keep updating a driver's CSI
// profile by adding new traces after each trip" (Sec. 3.3). Match
// rates must agree. Neither p nor other is modified and the result
// shares no memory with either — merging is safe even when p is a
// cached instance other sessions are concurrently tracking against
// (see the Profile immutability contract).
func (p *Profile) Merge(other *Profile) (*Profile, error) {
	if other == nil || len(other.Positions) == 0 {
		return p.Clone(), nil
	}
	if other.MatchRateHz != p.MatchRateHz {
		return nil, fmt.Errorf("core: cannot merge profiles with match rates %v and %v",
			p.MatchRateHz, other.MatchRateHz)
	}
	m := p.Clone()
	m.Positions = append(m.Positions, other.Clone().Positions...)
	return m, nil
}

// GridSamples returns the total number of profile grid samples, a
// proxy for matching cost.
func (p *Profile) GridSamples() int {
	n := 0
	for _, pos := range p.Positions {
		n += len(pos.PhiGrid)
	}
	return n
}

// MeanPhase returns the circular mean of a position's phase grid,
// used to recentre phases away from the ±π seam before matching.
func (pp *PositionProfile) MeanPhase() float64 {
	var sum complex128
	for _, phi := range pp.PhiGrid {
		sum += cmplx.Rect(1, phi)
	}
	if sum == 0 {
		return 0
	}
	return cmplx.Phase(sum)
}
