package core

import (
	"errors"
	"math"
	"testing"

	"vihot/internal/dsp"
)

// synthRecording builds a sweep recording whose phase is a known
// function of orientation: θ sweeps ±80° sinusoidally and
// φ = gain·sin(θ) + offset, a monotone injective curve.
func synthRecording(position int, offset, gain float64, dur float64) SweepRecording {
	rec := SweepRecording{Position: position, Fingerprint: offset}
	for t := 0.0; t < dur; t += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*t/4)
		phi := offset + gain*math.Sin(theta*math.Pi/180)
		rec.Phase = append(rec.Phase, dsp.Sample{T: t, V: phi})
	}
	for t := 0.0; t < dur; t += 1.0 / 60 {
		theta := 80 * math.Sin(2*math.Pi*t/4)
		rec.Orientation = append(rec.Orientation, dsp.Sample{T: t, V: theta})
	}
	return rec
}

func synthProfile(t *testing.T, positions int) *Profile {
	t.Helper()
	var recs []SweepRecording
	for i := 0; i < positions; i++ {
		recs = append(recs, synthRecording(i, float64(i)*0.5-1, 0.8, 8))
	}
	p, err := BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildProfileErrors(t *testing.T) {
	if _, err := BuildProfile(nil, 100); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty err = %v", err)
	}
	short := SweepRecording{
		Phase:       dsp.Series{{T: 0, V: 0}, {T: 0.1, V: 1}},
		Orientation: dsp.Series{{T: 0, V: 0}, {T: 0.1, V: 1}},
	}
	if _, err := BuildProfile([]SweepRecording{short}, 100); !errors.Is(err, ErrShortRecording) {
		t.Errorf("short err = %v", err)
	}
}

func TestBuildProfileGridAlignment(t *testing.T) {
	p := synthProfile(t, 3)
	if len(p.Positions) != 3 {
		t.Fatalf("positions = %d", len(p.Positions))
	}
	for _, pos := range p.Positions {
		if len(pos.PhiGrid) != len(pos.ThetaGrid) {
			t.Fatalf("grid misaligned: %d vs %d", len(pos.PhiGrid), len(pos.ThetaGrid))
		}
		if len(pos.PhiGrid) < 700 {
			t.Fatalf("grid too short: %d", len(pos.PhiGrid))
		}
	}
	// Grid must encode the synthetic relation: for the injective test
	// curve, phase and sin(theta) correlate exactly.
	pos := p.Positions[0]
	for k := 0; k < len(pos.PhiGrid); k += 97 {
		want := -1 + 0.8*math.Sin(pos.ThetaGrid[k]*math.Pi/180)
		if math.Abs(pos.PhiGrid[k]-want) > 0.05 {
			t.Fatalf("grid %d: phi %v, want %v (theta %v)", k, pos.PhiGrid[k], want, pos.ThetaGrid[k])
		}
	}
}

func TestBuildProfileDefaultRate(t *testing.T) {
	recs := []SweepRecording{synthRecording(0, 0, 0.5, 4)}
	p, err := BuildProfile(recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MatchRateHz != DefaultMatchRateHz {
		t.Errorf("rate = %v", p.MatchRateHz)
	}
}

func TestNearestPosition(t *testing.T) {
	p := synthProfile(t, 4) // fingerprints -1, -0.5, 0, 0.5
	idx, err := p.NearestPosition(-0.45)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("NearestPosition(-0.45) = %d, want 1", idx)
	}
	var empty Profile
	if _, err := empty.NearestPosition(0); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty err = %v", err)
	}
}

func TestNearestPositionsShortlist(t *testing.T) {
	p := synthProfile(t, 4)
	cands, err := p.NearestPositions(-0.45, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || cands[0] != 1 {
		t.Errorf("shortlist = %v", cands)
	}
	// k clamping.
	cands, _ = p.NearestPositions(0, 99)
	if len(cands) != 4 {
		t.Errorf("clamped shortlist = %v", cands)
	}
	cands, _ = p.NearestPositions(0, 0)
	if len(cands) != 1 {
		t.Errorf("k=0 shortlist = %v", cands)
	}
}

func TestNearestPositionCircular(t *testing.T) {
	// Fingerprints near the ±π seam must match circularly.
	recs := []SweepRecording{
		synthRecording(0, math.Pi-0.05, 0.3, 4),
		synthRecording(1, 0, 0.3, 4),
	}
	p, err := BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := p.NearestPosition(-math.Pi + 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("seam match = %d, want 0", idx)
	}
}

func TestMerge(t *testing.T) {
	p := synthProfile(t, 2)
	q := synthProfile(t, 3)
	pFP, qFP := p.Fingerprint(), q.Fingerprint()
	m, err := p.Merge(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Positions) != 5 {
		t.Errorf("merged positions = %d", len(m.Positions))
	}
	// Merge must not mutate either input: another session may be
	// tracking against the same cached instance right now.
	if len(p.Positions) != 2 || p.Fingerprint() != pFP {
		t.Error("Merge mutated the receiver")
	}
	if len(q.Positions) != 3 || q.Fingerprint() != qFP {
		t.Error("Merge mutated the argument")
	}
	// ... and the result must not alias the inputs' grids.
	m.Positions[0].PhiGrid[0] += 1
	if p.Positions[0].PhiGrid[0] == m.Positions[0].PhiGrid[0] {
		t.Error("merged profile shares grid memory with receiver")
	}
	if mn, err := p.Merge(nil); err != nil || len(mn.Positions) != 2 {
		t.Errorf("nil merge = %v, %v", mn, err)
	}
	bad := &Profile{MatchRateHz: 50, Positions: q.Positions}
	if _, err := p.Merge(bad); err == nil {
		t.Error("rate mismatch accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := synthProfile(t, 2)
	c := p.Clone()
	if c.Fingerprint() != p.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	c.Positions[1].ThetaGrid[3] += 90
	if p.Positions[1].ThetaGrid[3] == c.Positions[1].ThetaGrid[3] {
		t.Error("clone shares grid memory with original")
	}
	if c.Fingerprint() == p.Fingerprint() {
		t.Error("fingerprint blind to grid change")
	}
}

func TestFingerprintSemantics(t *testing.T) {
	p := synthProfile(t, 3)
	if p.Fingerprint() != p.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if p.Fingerprint() != p.Clone().Fingerprint() {
		t.Fatal("equal-content profiles fingerprint differently")
	}
	// Sensitive to every semantic field.
	for name, mutate := range map[string]func(*Profile){
		"match rate":  func(q *Profile) { q.MatchRateHz++ },
		"position id": func(q *Profile) { q.Positions[0].Position++ },
		"fingerprint": func(q *Profile) { q.Positions[1].Fingerprint += 0.01 },
		"phase":       func(q *Profile) { q.Positions[2].PhiGrid[7] += 1e-9 },
		"orientation": func(q *Profile) { q.Positions[2].ThetaGrid[7] += 1e-9 },
		"truncation":  func(q *Profile) { q.Positions = q.Positions[:2] },
	} {
		q := p.Clone()
		mutate(q)
		if q.Fingerprint() == p.Fingerprint() {
			t.Errorf("fingerprint blind to %s change", name)
		}
	}
}

func TestGridSamples(t *testing.T) {
	p := synthProfile(t, 2)
	want := len(p.Positions[0].PhiGrid) + len(p.Positions[1].PhiGrid)
	if p.GridSamples() != want {
		t.Errorf("GridSamples = %d, want %d", p.GridSamples(), want)
	}
}

func TestMeanPhase(t *testing.T) {
	pp := PositionProfile{PhiGrid: []float64{0.5, 0.5, 0.5}}
	if got := pp.MeanPhase(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanPhase = %v", got)
	}
	var empty PositionProfile
	if empty.MeanPhase() != 0 {
		t.Error("empty MeanPhase must be 0")
	}
	// Circular mean across the seam.
	seam := PositionProfile{PhiGrid: []float64{math.Pi - 0.1, -math.Pi + 0.1}}
	if got := math.Abs(seam.MeanPhase()); math.Abs(got-math.Pi) > 0.02 {
		t.Errorf("seam MeanPhase = %v, want ≈ ±π", seam.MeanPhase())
	}
}

func TestProfilerLifecycle(t *testing.T) {
	pr := NewProfiler(100)
	if err := pr.EndPosition(); err == nil {
		t.Error("EndPosition without StartPosition must error")
	}
	pr.StartPosition(0)
	// Feed a stable phase long enough to capture the fingerprint.
	for ts := 0.0; ts < 2; ts += 0.005 {
		pr.AddPhase(ts, 0.7)
	}
	if !pr.FingerprintCaptured() {
		t.Fatal("fingerprint not captured from stable phase")
	}
	// Then a sweep with labels.
	for ts := 2.0; ts < 8; ts += 0.005 {
		theta := 70 * math.Sin(ts)
		pr.AddPhase(ts, 0.7+0.01*theta)
	}
	for ts := 0.0; ts < 8; ts += 1.0 / 60 {
		pr.AddTruth(ts, 70*math.Sin(math.Max(ts-2, 0)))
	}
	if err := pr.EndPosition(); err != nil {
		t.Fatal(err)
	}
	if len(pr.Recordings()) != 1 {
		t.Fatalf("recordings = %d", len(pr.Recordings()))
	}
	rec := pr.Recordings()[0]
	if math.Abs(rec.Fingerprint-0.7) > 0.01 {
		t.Errorf("fingerprint = %v, want ≈0.7", rec.Fingerprint)
	}
	p, err := pr.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Positions) != 1 {
		t.Errorf("built positions = %d", len(p.Positions))
	}
}

func TestProfilerFingerprintNeverStable(t *testing.T) {
	pr := NewProfiler(0)
	pr.StartPosition(0)
	// Noisy phase: never stabilizes.
	for i := 0; i < 500; i++ {
		pr.AddPhase(float64(i)*0.005, float64(i%2))
	}
	if pr.FingerprintCaptured() {
		t.Error("noisy phase must not capture a fingerprint")
	}
	if err := pr.EndPosition(); err == nil {
		t.Error("missing fingerprint must fail EndPosition")
	}
	// MarkFingerprint rescues the position.
	pr.StartPosition(1)
	for i := 0; i < 500; i++ {
		pr.AddPhase(float64(i)*0.005, float64(i%2))
	}
	pr.MarkFingerprint(0.3)
	for ts := 0.0; ts < 3; ts += 1.0 / 60 {
		pr.AddTruth(ts, 10*ts)
	}
	if err := pr.EndPosition(); err != nil {
		t.Errorf("EndPosition after MarkFingerprint: %v", err)
	}
}

func TestProfilerIgnoresDataWithoutPosition(t *testing.T) {
	pr := NewProfiler(100)
	pr.AddPhase(0, 1)  // no active position: must not panic
	pr.AddTruth(0, 10) // ditto
	pr.MarkFingerprint(0.5)
	if len(pr.Recordings()) != 0 {
		t.Error("data without StartPosition must be dropped")
	}
}
