package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Profile persistence: a driver profiles once (≈100 s) and reuses the
// profile across trips (Sec. 5.2.4 shows a week-old profile still
// tracks), so the profile must outlive the process.
//
// # File format (v1)
//
// Profiles are written in a versioned, self-describing envelope so a
// fleet server can validate a file before trusting it and future
// format revisions can coexist on disk:
//
//	offset  size  field
//	0       4     magic "ViHP"
//	4       2     format version, big-endian uint16 (currently 1)
//	6       2     reserved, must be zero
//	8       8     payload length, big-endian uint64
//	16      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	20      n     payload: encoding/gob of Profile
//
// ReadProfile sniffs the magic: files without it fall back to the
// legacy unversioned-gob decoder, so profiles written before the
// envelope existed keep loading (cmd/vihot-profile migrate rewrites
// them). Both paths share one validator, which rejects structurally
// broken profiles and any non-finite phase/orientation value — a NaN
// in a grid would otherwise poison every DTW match made against it.

// profileMagic opens every versioned profile file.
const profileMagic = "ViHP"

// ProfileFormatVersion is the newest format version this build writes
// and the highest it accepts.
const ProfileFormatVersion = 1

// maxProfilePayload caps the payload length a reader will believe. A
// corrupt length field must not translate into an arbitrary-size
// allocation.
const maxProfilePayload = 1 << 30

// profileHeaderLen is the fixed envelope size before the payload.
const profileHeaderLen = 20

// ErrCorruptProfile wraps every structural failure of the versioned
// decoder: bad version, truncation, checksum mismatch, undecodable
// payload.
var ErrCorruptProfile = errors.New("core: corrupt profile file")

// ProfileEncoding identifies how a profile file was encoded on disk.
type ProfileEncoding uint8

// Profile encodings, oldest first.
const (
	// EncodingLegacyGob is the original unversioned gob stream.
	EncodingLegacyGob ProfileEncoding = iota
	// EncodingV1 is the magic+version+checksum envelope.
	EncodingV1
)

// String names the encoding for tooling output.
func (e ProfileEncoding) String() string {
	switch e {
	case EncodingLegacyGob:
		return "legacy-gob"
	case EncodingV1:
		return "v1"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(e))
	}
}

// WriteProfile serializes a profile in the current (v1) envelope.
func WriteProfile(w io.Writer, p *Profile) error {
	if p == nil || len(p.Positions) == 0 {
		return ErrEmptyProfile
	}
	if err := ValidateProfile(p); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return fmt.Errorf("core: encode profile: %w", err)
	}
	var hdr [profileHeaderLen]byte
	copy(hdr[0:4], profileMagic)
	binary.BigEndian.PutUint16(hdr[4:6], ProfileFormatVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(buf.Len()))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadProfile deserializes a profile (either encoding) and validates
// it.
func ReadProfile(r io.Reader) (*Profile, error) {
	p, _, err := DecodeProfile(r)
	return p, err
}

// DecodeProfile deserializes a profile and reports which on-disk
// encoding carried it — the seam cmd/vihot-profile inspect/migrate is
// built on. Corrupt versioned files fail with ErrCorruptProfile.
func DecodeProfile(r io.Reader) (*Profile, ProfileEncoding, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(profileMagic))
	if err == nil && string(head) == profileMagic {
		p, err := decodeV1(br)
		return p, EncodingV1, err
	}
	// No magic: the legacy unversioned gob stream (whose first byte is
	// a small type-descriptor length, never 'V').
	var p Profile
	if err := gob.NewDecoder(br).Decode(&p); err != nil {
		return nil, EncodingLegacyGob, fmt.Errorf("core: decode profile: %w", err)
	}
	if err := ValidateProfile(&p); err != nil {
		return nil, EncodingLegacyGob, err
	}
	return &p, EncodingLegacyGob, nil
}

// decodeV1 reads the envelope after the magic has been sniffed.
func decodeV1(br *bufio.Reader) (*Profile, error) {
	var hdr [profileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptProfile, err)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v == 0 || v > ProfileFormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (this build reads <= %d)",
			ErrCorruptProfile, v, ProfileFormatVersion)
	}
	if rsv := binary.BigEndian.Uint16(hdr[6:8]); rsv != 0 {
		return nil, fmt.Errorf("%w: reserved header bytes set (%#04x)", ErrCorruptProfile, rsv)
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n == 0 || n > maxProfilePayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptProfile, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptProfile, err)
	}
	want := binary.BigEndian.Uint32(hdr[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (have %08x, want %08x)",
			ErrCorruptProfile, got, want)
	}
	var p Profile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: undecodable payload: %v", ErrCorruptProfile, err)
	}
	if err := ValidateProfile(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ValidateProfile checks the structural invariants every consumer of
// a loaded (or about-to-be-saved) profile relies on: non-empty,
// finite positive match rate, index-aligned non-empty grids, and no
// non-finite value anywhere — mirroring the NaN/Inf guard the live
// CSI path applies in csi.Sanitize.
func ValidateProfile(p *Profile) error {
	if p == nil || len(p.Positions) == 0 {
		return ErrEmptyProfile
	}
	if p.MatchRateHz <= 0 || math.IsNaN(p.MatchRateHz) || math.IsInf(p.MatchRateHz, 0) {
		return fmt.Errorf("core: profile has invalid match rate %v", p.MatchRateHz)
	}
	for i, pos := range p.Positions {
		if len(pos.PhiGrid) != len(pos.ThetaGrid) {
			return fmt.Errorf("core: profile position %d grids misaligned (%d vs %d)",
				i, len(pos.PhiGrid), len(pos.ThetaGrid))
		}
		if len(pos.PhiGrid) == 0 {
			return fmt.Errorf("core: profile position %d is empty", i)
		}
		if math.IsNaN(pos.Fingerprint) || math.IsInf(pos.Fingerprint, 0) {
			return fmt.Errorf("core: profile position %d has non-finite fingerprint %v",
				i, pos.Fingerprint)
		}
		for k, v := range pos.PhiGrid {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: profile position %d has non-finite phase %v at sample %d",
					i, v, k)
			}
		}
		for k, v := range pos.ThetaGrid {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: profile position %d has non-finite orientation %v at sample %d",
					i, v, k)
			}
		}
	}
	return nil
}

// SaveProfile writes a profile to a file in the current format.
func SaveProfile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteProfile(f, p); err != nil {
		return err
	}
	return f.Sync()
}

// LoadProfile reads a profile (either encoding) from a file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}
