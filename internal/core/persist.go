package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Profile persistence: a driver profiles once (≈100 s) and reuses the
// profile across trips (Sec. 5.2.4 shows a week-old profile still
// tracks), so the profile must outlive the process.

// WriteProfile serializes a profile with encoding/gob.
func WriteProfile(w io.Writer, p *Profile) error {
	if p == nil || len(p.Positions) == 0 {
		return ErrEmptyProfile
	}
	return gob.NewEncoder(w).Encode(p)
}

// ReadProfile deserializes a profile and validates its shape.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode profile: %w", err)
	}
	if len(p.Positions) == 0 {
		return nil, ErrEmptyProfile
	}
	if p.MatchRateHz <= 0 {
		return nil, fmt.Errorf("core: profile has invalid match rate %v", p.MatchRateHz)
	}
	for i, pos := range p.Positions {
		if len(pos.PhiGrid) != len(pos.ThetaGrid) {
			return nil, fmt.Errorf("core: profile position %d grids misaligned (%d vs %d)",
				i, len(pos.PhiGrid), len(pos.ThetaGrid))
		}
		if len(pos.PhiGrid) == 0 {
			return nil, fmt.Errorf("core: profile position %d is empty", i)
		}
	}
	return &p, nil
}

// SaveProfile writes a profile to a file.
func SaveProfile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteProfile(f, p); err != nil {
		return err
	}
	return f.Sync()
}

// LoadProfile reads a profile from a file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}
