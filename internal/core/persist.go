package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"vihot/internal/envelope"
)

// Profile persistence: a driver profiles once (≈100 s) and reuses the
// profile across trips (Sec. 5.2.4 shows a week-old profile still
// tracks), so the profile must outlive the process.
//
// # File format (v1)
//
// Profiles are written in a versioned, self-describing envelope so a
// fleet server can validate a file before trusting it and future
// format revisions can coexist on disk:
//
//	offset  size  field
//	0       4     magic "ViHP"
//	4       2     format version, big-endian uint16 (currently 1)
//	6       2     reserved, must be zero
//	8       8     payload length, big-endian uint64
//	16      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	20      n     payload: encoding/gob of Profile
//
// The framing itself (everything before the payload) is the shared
// internal/envelope codec — the journal's per-record frame is the
// same 20 bytes under a different magic — so the corruption checks
// here and there can never drift apart.
//
// ReadProfile sniffs the magic: files without it fall back to the
// legacy unversioned-gob decoder, so profiles written before the
// envelope existed keep loading (cmd/vihot-profile migrate rewrites
// them). Both paths share one validator, which rejects structurally
// broken profiles and any non-finite phase/orientation value — a NaN
// in a grid would otherwise poison every DTW match made against it.

// profileMagic opens every versioned profile file.
const profileMagic = "ViHP"

// ProfileFormatVersion is the newest format version this build writes
// and the highest it accepts.
const ProfileFormatVersion = 1

// maxProfilePayload caps the payload length a reader will believe. A
// corrupt length field must not translate into an arbitrary-size
// allocation.
const maxProfilePayload = 1 << 30

// profileSpec is the profile format's envelope: the "ViHP" magic over
// the shared magic/version/length/CRC-32 frame.
var profileSpec = envelope.Spec{
	Magic:      profileMagic,
	Version:    ProfileFormatVersion,
	MaxPayload: maxProfilePayload,
}

// ErrCorruptProfile wraps every structural failure of the versioned
// decoder: bad version, truncation, checksum mismatch, undecodable
// payload.
var ErrCorruptProfile = errors.New("core: corrupt profile file")

// ProfileEncoding identifies how a profile file was encoded on disk.
type ProfileEncoding uint8

// Profile encodings, oldest first.
const (
	// EncodingLegacyGob is the original unversioned gob stream.
	EncodingLegacyGob ProfileEncoding = iota
	// EncodingV1 is the magic+version+checksum envelope.
	EncodingV1
)

// String names the encoding for tooling output.
func (e ProfileEncoding) String() string {
	switch e {
	case EncodingLegacyGob:
		return "legacy-gob"
	case EncodingV1:
		return "v1"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(e))
	}
}

// WriteProfile serializes a profile in the current (v1) envelope.
func WriteProfile(w io.Writer, p *Profile) error {
	if p == nil || len(p.Positions) == 0 {
		return ErrEmptyProfile
	}
	if err := ValidateProfile(p); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return fmt.Errorf("core: encode profile: %w", err)
	}
	return envelope.Write(w, profileSpec, buf.Bytes())
}

// ReadProfile deserializes a profile (either encoding) and validates
// it.
func ReadProfile(r io.Reader) (*Profile, error) {
	p, _, err := DecodeProfile(r)
	return p, err
}

// DecodeProfile deserializes a profile and reports which on-disk
// encoding carried it — the seam cmd/vihot-profile inspect/migrate is
// built on. Corrupt versioned files fail with ErrCorruptProfile.
func DecodeProfile(r io.Reader) (*Profile, ProfileEncoding, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(profileMagic))
	if err == nil && string(head) == profileMagic {
		p, err := decodeV1(br)
		return p, EncodingV1, err
	}
	// No magic: the legacy unversioned gob stream (whose first byte is
	// a small type-descriptor length, never 'V').
	var p Profile
	if err := gob.NewDecoder(br).Decode(&p); err != nil {
		return nil, EncodingLegacyGob, fmt.Errorf("core: decode profile: %w", err)
	}
	if err := ValidateProfile(&p); err != nil {
		return nil, EncodingLegacyGob, err
	}
	return &p, EncodingLegacyGob, nil
}

// decodeV1 reads the envelope after the magic has been sniffed. Every
// framing failure — truncation, bad version, checksum mismatch — maps
// onto ErrCorruptProfile so callers keep one error to test against.
func decodeV1(br *bufio.Reader) (*Profile, error) {
	payload, _, err := envelope.Read(br, profileSpec)
	if err != nil {
		if err == io.EOF {
			// The magic was sniffed, so a clean EOF here means the file
			// ended inside the header: truncation, not an empty stream.
			err = envelope.ErrTruncated
		}
		return nil, fmt.Errorf("%w: %v", ErrCorruptProfile, err)
	}
	var p Profile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: undecodable payload: %v", ErrCorruptProfile, err)
	}
	if err := ValidateProfile(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ValidateProfile checks the structural invariants every consumer of
// a loaded (or about-to-be-saved) profile relies on: non-empty,
// finite positive match rate, index-aligned non-empty grids, and no
// non-finite value anywhere — mirroring the NaN/Inf guard the live
// CSI path applies in csi.Sanitize.
func ValidateProfile(p *Profile) error {
	if p == nil || len(p.Positions) == 0 {
		return ErrEmptyProfile
	}
	if p.MatchRateHz <= 0 || math.IsNaN(p.MatchRateHz) || math.IsInf(p.MatchRateHz, 0) {
		return fmt.Errorf("core: profile has invalid match rate %v", p.MatchRateHz)
	}
	for i, pos := range p.Positions {
		if len(pos.PhiGrid) != len(pos.ThetaGrid) {
			return fmt.Errorf("core: profile position %d grids misaligned (%d vs %d)",
				i, len(pos.PhiGrid), len(pos.ThetaGrid))
		}
		if len(pos.PhiGrid) == 0 {
			return fmt.Errorf("core: profile position %d is empty", i)
		}
		if math.IsNaN(pos.Fingerprint) || math.IsInf(pos.Fingerprint, 0) {
			return fmt.Errorf("core: profile position %d has non-finite fingerprint %v",
				i, pos.Fingerprint)
		}
		for k, v := range pos.PhiGrid {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: profile position %d has non-finite phase %v at sample %d",
					i, v, k)
			}
		}
		for k, v := range pos.ThetaGrid {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: profile position %d has non-finite orientation %v at sample %d",
					i, v, k)
			}
		}
	}
	return nil
}

// SaveProfile writes a profile to a file in the current format,
// atomically: the bytes land in a temp file in the same directory
// (same filesystem, so the final step is a true rename), are fsynced,
// and only then replace path. A crash — or a profile that fails
// validation mid-write — never leaves a torn file at path: readers
// see either the old complete profile or the new one.
func SaveProfile(path string, p *Profile) (err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	// CreateTemp uses 0600; match os.Create's umask-honoring default so
	// the atomic path is a drop-in for the old one.
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = WriteProfile(f, p); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	// Close errors surface: on some filesystems close is where delayed
	// write failures report, and renaming an unflushed temp over the
	// real file would trade a torn write for a silent one.
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadProfile reads a profile (either encoding) from a file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}
