// Crash-safety tests for SaveProfile's atomic temp+fsync+rename path.
// External test package: the disk-fault injector lives in
// internal/faults, which (through the cluster injectors) imports core.
package core_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vihot/internal/core"
	"vihot/internal/dsp"
	"vihot/internal/faults"
)

func crashTestProfile(t *testing.T, positions int, offset float64) *core.Profile {
	t.Helper()
	var recs []core.SweepRecording
	for i := 0; i < positions; i++ {
		rec := core.SweepRecording{Position: i, Fingerprint: offset + float64(i)}
		for ts := 0.0; ts < 8; ts += 0.002 {
			theta := 80 * math.Sin(2*math.Pi*ts/4)
			rec.Phase = append(rec.Phase, dsp.Sample{T: ts, V: offset + 0.8*math.Sin(theta*math.Pi/180)})
		}
		for ts := 0.0; ts < 8; ts += 1.0 / 60 {
			rec.Orientation = append(rec.Orientation, dsp.Sample{T: ts, V: 80 * math.Sin(2*math.Pi*ts/4)})
		}
		recs = append(recs, rec)
	}
	p, err := core.BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// dirEntries returns the names in dir — the temp-litter check.
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestSaveProfileAtomicOverwrite: replacing a profile on disk is
// all-or-nothing — after a successful overwrite the new content loads,
// and no temp files are left behind.
func TestSaveProfileAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "driver.profile")
	p1 := crashTestProfile(t, 2, -1)
	p2 := crashTestProfile(t, 3, 0.5)

	if err := core.SaveProfile(path, p1); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveProfile(path, p2); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != p2.Fingerprint() {
		t.Error("overwrite did not land the new profile")
	}
	if names := dirEntries(t, dir); len(names) != 1 || names[0] != "driver.profile" {
		t.Errorf("temp litter after overwrite: %v", names)
	}
}

// TestSaveProfileFailedWriteKeepsOriginal: a save that fails mid-write
// (here: the profile flunks WriteProfile's validation) leaves the
// previously saved profile untouched and no temp files behind.
func TestSaveProfileFailedWriteKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "driver.profile")
	good := crashTestProfile(t, 2, -1)
	if err := core.SaveProfile(path, good); err != nil {
		t.Fatal(err)
	}

	bad := good.Clone()
	bad.Positions[0].PhiGrid[0] = math.NaN()
	if err := core.SaveProfile(path, bad); err == nil {
		t.Fatal("non-finite profile saved without error")
	}

	got, err := core.LoadProfile(path)
	if err != nil {
		t.Fatalf("original profile unreadable after failed save: %v", err)
	}
	if got.Fingerprint() != good.Fingerprint() {
		t.Error("failed save changed the on-disk profile")
	}
	if names := dirEntries(t, dir); len(names) != 1 || names[0] != "driver.profile" {
		t.Errorf("temp litter after failed save: %v", names)
	}
}

// TestSaveProfileCrashTornTemp emulates the crash the atomic protocol
// defends against: power dies mid-way through writing the NEW bytes,
// before the rename. The faults disk injector produces exactly the
// torn byte prefix such a crash leaves in the temp file; the
// invariants are (a) the torn bytes are unreadable as a profile, so
// they must never sit at the real path, and (b) with the temp+rename
// protocol the real path still holds the old profile in full.
func TestSaveProfileCrashTornTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "driver.profile")
	old := crashTestProfile(t, 2, -1)
	if err := core.SaveProfile(path, old); err != nil {
		t.Fatal(err)
	}
	next := crashTestProfile(t, 3, 0.5)

	for _, crashAt := range []int64{4, 10, 19, 64, 1024} {
		// What the writeback actually persisted before the power cut.
		df := faults.NewDiskFile(faults.DiskConfig{Seed: 1, CrashAt: crashAt})
		if err := core.WriteProfile(df, next); err != nil {
			t.Fatal(err)
		}
		torn := df.Bytes()
		if int64(len(torn)) != crashAt {
			t.Fatalf("crashAt %d: injector stored %d bytes", crashAt, len(torn))
		}

		// The reboot finds the torn bytes in the TEMP file, not at path.
		tmp := filepath.Join(dir, "driver.profile.tmp-crash")
		if err := os.WriteFile(tmp, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := core.LoadProfile(tmp); err == nil {
			t.Fatalf("crashAt %d: torn profile prefix loaded cleanly", crashAt)
		}
		got, err := core.LoadProfile(path)
		if err != nil {
			t.Fatalf("crashAt %d: original unreadable after crash: %v", crashAt, err)
		}
		if got.Fingerprint() != old.Fingerprint() {
			t.Fatalf("crashAt %d: original profile changed", crashAt)
		}
		os.Remove(tmp)
	}
}
