package core

import (
	"math"
	"strings"
	"testing"

	"vihot/internal/dsp"
)

func TestQualityGoodProfile(t *testing.T) {
	p := synthProfile(t, 4)
	r := p.Quality()
	if !r.OK() {
		t.Errorf("good profile flagged: %v", r.Warnings)
	}
	if r.Positions != 4 {
		t.Errorf("positions = %d", r.Positions)
	}
	if r.OrientationSpanDeg < 140 {
		t.Errorf("span = %v, synth sweeps ±80", r.OrientationSpanDeg)
	}
	if r.PhaseSwingRad < 1 {
		t.Errorf("swing = %v, synth swings 1.6 rad", r.PhaseSwingRad)
	}
	if r.MinGridSamples < 700 {
		t.Errorf("grid = %d", r.MinGridSamples)
	}
	if !strings.Contains(r.String(), "4 positions") {
		t.Errorf("String = %q", r.String())
	}
}

func TestQualityEmptyProfile(t *testing.T) {
	var p Profile
	r := p.Quality()
	if r.OK() {
		t.Error("empty profile passed")
	}
}

func TestQualityNarrowSweepWarns(t *testing.T) {
	// A sweep covering only ±20°.
	rec := SweepRecording{Position: 0, Fingerprint: 0}
	for ts := 0.0; ts < 4; ts += 0.002 {
		theta := 20 * math.Sin(ts)
		rec.Phase = append(rec.Phase, dsp.Sample{T: ts, V: 0.8 * math.Sin(theta*3.14159/180)})
	}
	for ts := 0.0; ts < 4; ts += 1.0 / 60 {
		rec.Orientation = append(rec.Orientation, dsp.Sample{T: ts, V: 20 * math.Sin(ts)})
	}
	p, err := BuildProfile([]SweepRecording{rec}, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Quality()
	if r.OK() {
		t.Error("narrow sweep not flagged")
	}
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "sweeps only") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing narrow-sweep warning: %v", r.Warnings)
	}
}

func TestQualityFlatPhaseWarns(t *testing.T) {
	rec := synthRecording(0, 0, 0.02, 6) // 0.04 rad p-p: nearly flat
	p, err := BuildProfile([]SweepRecording{rec}, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Quality()
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "phase swings only") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing flat-phase warning: %v", r.Warnings)
	}
}

func TestQualityAliasedFingerprintsWarn(t *testing.T) {
	recs := []SweepRecording{
		synthRecording(0, 0.5, 0.8, 6),
		synthRecording(1, 0.51, 0.8, 6), // nearly identical fingerprint
	}
	p, err := BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Quality()
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "share fingerprints") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing aliasing warning: %v", r.Warnings)
	}
}

func TestQualitySinglePositionNoAliasWarning(t *testing.T) {
	p, err := BuildProfile([]SweepRecording{synthRecording(0, 0, 0.8, 6)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range p.Quality().Warnings {
		if strings.Contains(w, "share fingerprints") {
			t.Error("single position cannot alias")
		}
	}
}
