package core

import (
	"errors"
	"math"
	"testing"

	"vihot/internal/geom"
	"vihot/internal/stats"
)

// trackSynthetic runs the tracker over a synthetic run-time stream
// generated from the same injective phase model as synthProfile and
// returns the absolute errors of the CSI-sourced estimates.
func trackSynthetic(t *testing.T, tk *Tracker, offset, gain float64, dur float64) []float64 {
	t.Helper()
	var errs []float64
	for ts := 0.0; ts < dur; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		phi := offset + gain*math.Sin(theta*math.Pi/180)
		est, ok := tk.Push(ts, phi)
		if !ok || est.Source != SourceCSI {
			continue
		}
		errs = append(errs, geom.AngleDistDeg(est.Yaw, theta))
	}
	return errs
}

func newTestTracker(t *testing.T, positions int, cfg Config) *Tracker {
	t.Helper()
	tk, err := NewTracker(synthProfile(t, positions), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, DefaultConfig()); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("nil profile err = %v", err)
	}
	if _, err := NewTracker(&Profile{MatchRateHz: 100}, DefaultConfig()); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty profile err = %v", err)
	}
	p := synthProfile(t, 1)
	cfg := DefaultConfig()
	cfg.MatchRateHz = 50 // mismatched with profile's 100
	if _, err := NewTracker(p, cfg); err == nil {
		t.Error("rate mismatch accepted")
	}
}

func TestTrackerConfigDefaults(t *testing.T) {
	tk := newTestTracker(t, 1, Config{})
	if tk.cfg.WindowS != DefaultConfig().WindowS {
		t.Error("window default not applied")
	}
	if tk.cfg.MatchRateHz != 100 {
		t.Error("match rate not adopted from profile")
	}
	if tk.cfg.RatioLo != 0.5 || tk.cfg.RatioHi != 2 {
		t.Error("ratio defaults not applied")
	}
	if tk.cfg.PositionCandidates < 1 {
		t.Error("candidate default not applied")
	}
}

func TestTrackerSetupTime(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	if tk.Ready(0) {
		t.Error("ready before any sample")
	}
	tk.Push(0, 0)
	if tk.Ready(0.05) {
		t.Error("ready before window W elapsed")
	}
	if !tk.Ready(0.2) {
		t.Error("not ready after window W")
	}
}

func TestTrackerTracksInjectiveCurve(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	errs := trackSynthetic(t, tk, -1, 0.8, 20)
	if len(errs) < 100 {
		t.Fatalf("too few CSI estimates: %d", len(errs))
	}
	med := stats.Median(errs)
	if med > 8 {
		t.Errorf("median error %v° on an injective curve, want <8°", med)
	}
}

func TestTrackerPositionLock(t *testing.T) {
	// Stream at position 2's curve after a long stable front period:
	// the tracker must lock position 2.
	tk := newTestTracker(t, 4, DefaultConfig())
	offset := float64(2)*0.5 - 1 // synthProfile fingerprint for position 2
	for ts := 0.0; ts < 3; ts += 0.002 {
		tk.Push(ts, offset) // facing front, stable
	}
	if pos, locked := tk.Position(); !locked || pos != 2 {
		t.Errorf("position lock = %d/%v, want 2/true", pos, locked)
	}
}

func TestTrackerShortlistDisambiguation(t *testing.T) {
	// With aliased fingerprints the matcher must still land on the
	// right position once motion starts, because the curves differ.
	tk := newTestTracker(t, 4, DefaultConfig())
	offset := float64(2)*0.5 - 1
	for ts := 0.0; ts < 3; ts += 0.002 {
		tk.Push(ts, offset)
	}
	errs := make([]float64, 0)
	for ts := 3.0; ts < 13; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*(ts-3)/4)
		phi := offset + 0.8*math.Sin(theta*math.Pi/180)
		est, ok := tk.Push(ts, phi)
		if ok && est.Source == SourceCSI && ts > 4 {
			errs = append(errs, geom.AngleDistDeg(est.Yaw, theta))
		}
	}
	if med := stats.Median(errs); med > 8 {
		t.Errorf("median error after lock = %v°", med)
	}
	if pos, _ := tk.Position(); pos != 2 {
		t.Errorf("final position = %d, want 2", pos)
	}
}

func TestTrackerFrontSourceWhenStable(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	var got *Estimate
	for ts := 0.0; ts < 3; ts += 0.002 {
		if est, ok := tk.Push(ts, -1); ok {
			got = &est
		}
	}
	if got == nil {
		t.Fatal("no estimate during stable period")
	}
	if got.Source != SourceFront || got.Yaw != 0 {
		t.Errorf("stable estimate = %+v, want front-facing 0°", got)
	}
}

func TestTrackerContinuityFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxJumpDPS = 100 // very strict for the test
	tk := newTestTracker(t, 1, cfg)
	// Warm up tracking the curve.
	for ts := 0.0; ts < 6; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		tk.Push(ts, -1+0.8*math.Sin(theta*math.Pi/180))
	}
	// Inject a teleport: a phase implying a far-away orientation.
	heldSeen := false
	for ts := 6.0; ts < 6.1; ts += 0.002 {
		if est, ok := tk.Push(ts, -1+0.8*math.Sin(-80*math.Pi/180)); ok && est.Source == SourceHeld {
			heldSeen = true
		}
	}
	if !heldSeen {
		t.Error("continuity filter never held a teleporting estimate")
	}
}

func TestTrackerHoldCapReanchors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxJumpDPS = 50
	tk := newTestTracker(t, 1, cfg)
	for ts := 0.0; ts < 6; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		tk.Push(ts, -1+0.8*math.Sin(theta*math.Pi/180))
	}
	// Persist at a far orientation: after maxConsecutiveHolds the
	// tracker must re-anchor rather than hold forever.
	far := -1 + 0.8*math.Sin(-75*math.Pi/180)
	reanchored := false
	for ts := 6.0; ts < 7.0; ts += 0.002 {
		// add tiny wiggle so the stability detector does not fire
		phi := far + 0.02*math.Sin(ts*200)
		if est, ok := tk.Push(ts, phi); ok && est.Source == SourceCSI && math.Abs(est.Yaw-(-75)) < 15 {
			reanchored = true
		}
	}
	if !reanchored {
		t.Error("tracker never re-anchored after persistent disagreement")
	}
}

func TestTrackerForecast(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	var last Estimate
	haveLast := false
	for ts := 0.0; ts < 10; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := tk.Push(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok && est.Source == SourceCSI {
			last, haveLast = est, true
		}
	}
	if !haveLast {
		t.Fatal("no estimates")
	}
	// Horizon 0 returns the estimate itself.
	if got := tk.Forecast(last, 0); got != last.Yaw {
		t.Errorf("0-horizon forecast = %v, want %v", got, last.Yaw)
	}
	// A positive horizon must return a valid angle from the profile.
	got := tk.Forecast(last, 0.2)
	if math.IsNaN(got) || got < -90 || got > 90 {
		t.Errorf("forecast = %v out of range", got)
	}
}

func TestTrackerForecastHeldPassthrough(t *testing.T) {
	tk := newTestTracker(t, 1, DefaultConfig())
	est := Estimate{Yaw: 33, Source: SourceHeld}
	if got := tk.Forecast(est, 0.3); got != 33 {
		t.Errorf("held forecast = %v, want passthrough", got)
	}
}

func TestTrackerReset(t *testing.T) {
	tk := newTestTracker(t, 2, DefaultConfig())
	for ts := 0.0; ts < 3; ts += 0.002 {
		tk.Push(ts, -1)
	}
	tk.Reset()
	if _, locked := tk.Position(); locked {
		t.Error("Reset kept position lock")
	}
	if tk.Ready(100) {
		t.Error("Reset kept readiness")
	}
	// Must work again after reset.
	errs := trackSynthetic(t, tk, -1, 0.8, 10)
	if len(errs) == 0 {
		t.Error("no estimates after Reset")
	}
}

func TestTrackerSetPosition(t *testing.T) {
	tk := newTestTracker(t, 3, DefaultConfig())
	tk.SetPosition(2)
	if pos, locked := tk.Position(); pos != 2 || !locked {
		t.Error("SetPosition failed")
	}
	tk.SetPosition(99) // out of range: ignored
	if pos, _ := tk.Position(); pos != 2 {
		t.Error("out-of-range SetPosition changed state")
	}
}

func TestTrackerSeamCrossingStream(t *testing.T) {
	// A run-time stream whose phase orbits across the ±π seam must not
	// produce NaNs or wild estimates purely from wrapping.
	recs := []SweepRecording{synthRecording(0, math.Pi-0.2, 0.8, 8)}
	p, err := BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := NewTracker(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ts := 0.0; ts < 10; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		phi := geom.WrapRad(math.Pi - 0.2 + 0.8*math.Sin(theta*math.Pi/180))
		if est, ok := tk.Push(ts, phi); ok {
			if math.IsNaN(est.Yaw) {
				t.Fatal("NaN estimate")
			}
			count++
		}
	}
	if count == 0 {
		t.Error("no estimates on seam-crossing stream")
	}
}

func TestSourceString(t *testing.T) {
	cases := map[Source]string{
		SourceCSI:    "csi",
		SourceFront:  "front",
		SourceHeld:   "held",
		SourceCamera: "camera",
		Source(42):   "Source(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
