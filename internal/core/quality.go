package core

import (
	"fmt"
	"math"

	"vihot/internal/geom"
)

// QualityReport summarizes how fit a profile is for tracking. A real
// deployment runs this right after profiling and asks the driver to
// redo positions that come back with warnings — far cheaper than
// discovering a bad profile through tracking errors on the road.
type QualityReport struct {
	Positions int
	// OrientationSpanDeg is the smallest yaw range covered by any
	// position's sweep; tracking beyond the profiled span extrapolates.
	OrientationSpanDeg float64
	// PhaseSwingRad is the smallest peak-to-peak (unwrapped) phase
	// swing of any position — a nearly flat curve cannot disambiguate
	// orientations.
	PhaseSwingRad float64
	// MinGridSamples is the shortest position grid; short sweeps give
	// the matcher little to slide over.
	MinGridSamples int
	// FingerprintGapRad is the smallest circular distance between any
	// two position fingerprints: small gaps mean Eq. (4) aliasing and
	// heavier reliance on the shortlist disambiguation.
	FingerprintGapRad float64
	Warnings          []string
}

// Quality analyses the profile. Thresholds reflect the paper's
// operating point: ±60° sweeps, ~10 s per position.
func (p *Profile) Quality() QualityReport {
	r := QualityReport{
		Positions:          len(p.Positions),
		OrientationSpanDeg: math.Inf(1),
		PhaseSwingRad:      math.Inf(1),
		MinGridSamples:     math.MaxInt,
		FingerprintGapRad:  math.Inf(1),
	}
	if len(p.Positions) == 0 {
		r.OrientationSpanDeg, r.PhaseSwingRad, r.FingerprintGapRad = 0, 0, 0
		r.MinGridSamples = 0
		r.Warnings = append(r.Warnings, "profile has no positions")
		return r
	}
	for i, pos := range p.Positions {
		lo, hi := pos.ThetaGrid[0], pos.ThetaGrid[0]
		for _, th := range pos.ThetaGrid {
			lo = math.Min(lo, th)
			hi = math.Max(hi, th)
		}
		span := hi - lo
		if span < r.OrientationSpanDeg {
			r.OrientationSpanDeg = span
		}
		if span < 90 {
			r.Warnings = append(r.Warnings,
				fmt.Sprintf("position %d sweeps only %.0f° of yaw; re-profile with wider head turns", pos.Position, span))
		}

		swing := phaseSwing(pos.PhiGrid)
		if swing < r.PhaseSwingRad {
			r.PhaseSwingRad = swing
		}
		if swing < 0.3 {
			r.Warnings = append(r.Warnings,
				fmt.Sprintf("position %d phase swings only %.2f rad; check antenna placement (Sec. 5.2.2)", pos.Position, swing))
		}

		if n := len(pos.PhiGrid); n < r.MinGridSamples {
			r.MinGridSamples = n
		}
		if len(pos.PhiGrid) < int(2*p.MatchRateHz) {
			r.Warnings = append(r.Warnings,
				fmt.Sprintf("position %d has under 2 s of sweep data", pos.Position))
		}

		for j := 0; j < i; j++ {
			gap := math.Abs(geom.PhaseDiff(pos.Fingerprint, p.Positions[j].Fingerprint))
			if gap < r.FingerprintGapRad {
				r.FingerprintGapRad = gap
			}
		}
	}
	if len(p.Positions) == 1 {
		r.FingerprintGapRad = math.Pi // nothing to collide with
	} else if r.FingerprintGapRad < 0.05 {
		r.Warnings = append(r.Warnings,
			fmt.Sprintf("two positions share fingerprints within %.3f rad; position estimation will rely on shortlist disambiguation", r.FingerprintGapRad))
	}
	return r
}

// phaseSwing returns the unwrapped peak-to-peak phase range.
func phaseSwing(phis []float64) float64 {
	if len(phis) == 0 {
		return 0
	}
	unw, lo, hi := phis[0], phis[0], phis[0]
	for i := 1; i < len(phis); i++ {
		unw += geom.PhaseDiff(phis[i], phis[i-1])
		lo = math.Min(lo, unw)
		hi = math.Max(hi, unw)
	}
	return hi - lo
}

// OK reports whether the profile produced no warnings.
func (r QualityReport) OK() bool { return len(r.Warnings) == 0 }

// String renders the report for CLI display.
func (r QualityReport) String() string {
	s := fmt.Sprintf("profile quality: %d positions, ≥%.0f° span, ≥%.2f rad swing, ≥%d samples, %.2f rad min fingerprint gap",
		r.Positions, r.OrientationSpanDeg, r.PhaseSwingRad, r.MinGridSamples, r.FingerprintGapRad)
	for _, w := range r.Warnings {
		s += "\n  warning: " + w
	}
	return s
}
