package core

import (
	"math"
	"testing"

	"vihot/internal/stats"
)

func TestSmootherReducesJitter(t *testing.T) {
	s := NewSmoother()
	rng := stats.NewRNG(1)
	var rawErr, smoothErr []float64
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.01
		truth := 60 * math.Sin(ts)
		noisy := truth + rng.Normal(0, 4)
		got := s.Update(Estimate{Time: ts, Yaw: noisy, Source: SourceCSI, MatchDist: 0.001})
		if i > 100 {
			rawErr = append(rawErr, math.Abs(noisy-truth))
			smoothErr = append(smoothErr, math.Abs(got-truth))
		}
	}
	if stats.Mean(smoothErr) >= stats.Mean(rawErr) {
		t.Errorf("smoother did not help: %.2f vs %.2f", stats.Mean(smoothErr), stats.Mean(rawErr))
	}
}

func TestSmootherTracksRamp(t *testing.T) {
	s := NewSmoother()
	var got float64
	for i := 0; i < 500; i++ {
		ts := float64(i) * 0.01
		got = s.Update(Estimate{Time: ts, Yaw: 50 * ts, Source: SourceCSI})
	}
	if math.Abs(got-50*4.99) > 3 {
		t.Errorf("ramp tracking = %v, want ≈%v", got, 50*4.99)
	}
	if math.Abs(s.Rate()-50) > 8 {
		t.Errorf("rate state = %v, want ≈50", s.Rate())
	}
}

func TestSmootherPredict(t *testing.T) {
	s := NewSmoother()
	for i := 0; i < 500; i++ {
		ts := float64(i) * 0.01
		s.Update(Estimate{Time: ts, Yaw: 40 * ts, Source: SourceCSI})
	}
	now := s.Yaw()
	future := s.Predict(0.2)
	if future <= now {
		t.Errorf("prediction (%v) should lead a rising ramp (%v)", future, now)
	}
	if got := s.Predict(0); got != now {
		t.Error("zero-horizon prediction must be current yaw")
	}
}

func TestSmootherDistrustsPoorMatches(t *testing.T) {
	good := NewSmoother()
	poor := NewSmoother()
	for i := 0; i < 200; i++ {
		ts := float64(i) * 0.01
		good.Update(Estimate{Time: ts, Yaw: 0, Source: SourceCSI, MatchDist: 0.001})
		poor.Update(Estimate{Time: ts, Yaw: 0, Source: SourceCSI, MatchDist: 0.001})
	}
	// Identical outlier, different confidence.
	g := good.Update(Estimate{Time: 2.01, Yaw: 40, Source: SourceCSI, MatchDist: 0.001})
	p := poor.Update(Estimate{Time: 2.01, Yaw: 40, Source: SourceCSI, MatchDist: 0.2})
	if math.Abs(p) >= math.Abs(g) {
		t.Errorf("poor match moved the state as much as a good one: %v vs %v", p, g)
	}
}

func TestSmootherSkipsHeld(t *testing.T) {
	s := NewSmoother()
	s.Update(Estimate{Time: 0, Yaw: 10, Source: SourceCSI})
	before := s.Yaw()
	s.Update(Estimate{Time: 0.01, Yaw: 99, Source: SourceHeld})
	// Held estimates predict only; the 99 must not have been measured.
	if math.Abs(s.Yaw()-before) > 1 {
		t.Errorf("held estimate moved state from %v to %v", before, s.Yaw())
	}
}

func TestSmootherOutOfOrder(t *testing.T) {
	s := NewSmoother()
	s.Update(Estimate{Time: 1, Yaw: 5, Source: SourceCSI})
	got := s.Update(Estimate{Time: 0.5, Yaw: 50, Source: SourceCSI})
	if math.IsNaN(got) {
		t.Error("out-of-order estimate produced NaN")
	}
}

func TestSmootherUncertaintyShrinks(t *testing.T) {
	s := NewSmoother()
	s.Update(Estimate{Time: 0, Yaw: 0, Source: SourceCSI})
	early := s.Uncertainty()
	for i := 1; i < 300; i++ {
		s.Update(Estimate{Time: float64(i) * 0.01, Yaw: 0, Source: SourceCSI, MatchDist: 0.001})
	}
	if s.Uncertainty() >= early {
		t.Errorf("uncertainty did not shrink: %v -> %v", early, s.Uncertainty())
	}
}

func TestSmootherReset(t *testing.T) {
	s := NewSmoother()
	s.Update(Estimate{Time: 1, Yaw: 30, Source: SourceCSI})
	s.Reset()
	if s.Yaw() != 0 || s.Rate() != 0 {
		t.Error("Reset kept state")
	}
	if s.ProcessVar != NewSmoother().ProcessVar {
		t.Error("Reset lost tuning")
	}
}
