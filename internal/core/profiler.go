package core

import (
	"fmt"

	"vihot/internal/dsp"
	"vihot/internal/geom"
)

// Profiler is the streaming front end of position-orientation joint
// profiling (Sec. 3.3). During a profiling session the caller:
//
//  1. calls StartPosition(i) when the driver settles at head position
//     i facing the road,
//  2. feeds CSI phases via AddPhase and ground-truth orientations via
//     AddTruth (both in real time, in any interleaving),
//  3. calls MarkFingerprint once the pre-sweep phase is stable,
//  4. lets the driver sweep, then calls EndPosition,
//
// and finally Build() to obtain the matchable Profile. The whole
// session fits in the paper's ≤100 s budget because data collection is
// continuous — no dwelling at discrete orientations.
type Profiler struct {
	matchRate float64

	recs    []SweepRecording
	cur     *SweepRecording
	stable  *dsp.StabilityDetector
	haveFpr bool
}

// NewProfiler returns a Profiler targeting the given match-grid rate
// (0 uses DefaultMatchRateHz).
func NewProfiler(matchRateHz float64) *Profiler {
	if matchRateHz <= 0 {
		matchRateHz = DefaultMatchRateHz
	}
	return &Profiler{
		matchRate: matchRateHz,
		stable:    dsp.NewStabilityDetector(0.3, 0.06, 0.2),
	}
}

// StartPosition begins recording head position i. An unfinished
// previous position is discarded.
func (p *Profiler) StartPosition(i int) {
	p.cur = &SweepRecording{Position: i}
	p.stable.Reset()
	p.haveFpr = false
}

// AddPhase feeds one sanitized CSI phase sample.
func (p *Profiler) AddPhase(t, phi float64) {
	if p.cur == nil {
		return
	}
	p.cur.Phase = append(p.cur.Phase, dsp.Sample{T: t, V: phi})
	if !p.haveFpr {
		if p.stable.Push(t, phi) {
			p.cur.Fingerprint = geom.WrapRad(p.stable.Mean())
			p.haveFpr = true
		}
	}
}

// AddTruth feeds one ground-truth head orientation (degrees) from the
// phone camera or headset.
func (p *Profiler) AddTruth(t, yawDeg float64) {
	if p.cur == nil {
		return
	}
	p.cur.Orientation = append(p.cur.Orientation, dsp.Sample{T: t, V: yawDeg})
}

// MarkFingerprint forces the front-facing fingerprint to the given
// phase, for callers that track stability themselves.
func (p *Profiler) MarkFingerprint(phi float64) {
	if p.cur == nil {
		return
	}
	p.cur.Fingerprint = geom.WrapRad(phi)
	p.haveFpr = true
}

// FingerprintCaptured reports whether the current position's
// fingerprint has been established (either automatically from stable
// CSI or via MarkFingerprint).
func (p *Profiler) FingerprintCaptured() bool { return p.haveFpr }

// EndPosition finishes the current position's recording. It returns
// an error when no position is active or the fingerprint was never
// captured — a profile without φ⁰c(i) cannot support Eq. (4).
func (p *Profiler) EndPosition() error {
	if p.cur == nil {
		return fmt.Errorf("core: EndPosition without StartPosition")
	}
	if !p.haveFpr {
		p.cur = nil
		return fmt.Errorf("core: position fingerprint never stabilized; re-profile this position")
	}
	p.recs = append(p.recs, *p.cur)
	p.cur = nil
	return nil
}

// Recordings returns the completed sweep recordings so far.
func (p *Profiler) Recordings() []SweepRecording { return p.recs }

// Build processes every completed position into a Profile.
func (p *Profiler) Build() (*Profile, error) {
	return BuildProfile(p.recs, p.matchRate)
}
