package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"path/filepath"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	p := synthProfile(t, 3)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MatchRateHz != p.MatchRateHz || len(got.Positions) != len(p.Positions) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range got.Positions {
		if got.Positions[i].Fingerprint != p.Positions[i].Fingerprint {
			t.Errorf("fingerprint %d mismatch", i)
		}
		for k := range got.Positions[i].PhiGrid {
			if got.Positions[i].PhiGrid[k] != p.Positions[i].PhiGrid[k] {
				t.Fatalf("phi grid %d/%d mismatch", i, k)
			}
		}
	}
	// A loaded profile must be directly trackable.
	if _, err := NewTracker(got, DefaultConfig()); err != nil {
		t.Errorf("loaded profile rejected by tracker: %v", err)
	}
}

func TestWriteProfileRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, nil); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("nil err = %v", err)
	}
	if err := WriteProfile(&buf, &Profile{MatchRateHz: 100}); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty err = %v", err)
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadProfileValidatesShape(t *testing.T) {
	bad := &Profile{
		MatchRateHz: 100,
		Positions: []PositionProfile{{
			PhiGrid:   []float64{1, 2},
			ThetaGrid: []float64{1}, // misaligned
		}},
	}
	var buf bytes.Buffer
	if err := gobEncode(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("misaligned grids accepted")
	}

	badRate := &Profile{
		MatchRateHz: -5,
		Positions:   []PositionProfile{{PhiGrid: []float64{1}, ThetaGrid: []float64{1}}},
	}
	buf.Reset()
	if err := gobEncode(&buf, badRate); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("invalid match rate accepted")
	}
}

func TestSaveLoadProfileFile(t *testing.T) {
	p := synthProfile(t, 2)
	path := filepath.Join(t.TempDir(), "driver.profile")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Positions) != 2 {
		t.Errorf("positions = %d", len(got.Positions))
	}
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// gobEncode writes raw gob without WriteProfile's validation, to test
// ReadProfile's own checks.
func gobEncode(buf *bytes.Buffer, p *Profile) error {
	return gob.NewEncoder(buf).Encode(p)
}
