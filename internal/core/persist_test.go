package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"vihot/internal/envelope"
)

func TestProfileRoundTrip(t *testing.T) {
	p := synthProfile(t, 3)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MatchRateHz != p.MatchRateHz || len(got.Positions) != len(p.Positions) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range got.Positions {
		if got.Positions[i].Fingerprint != p.Positions[i].Fingerprint {
			t.Errorf("fingerprint %d mismatch", i)
		}
		for k := range got.Positions[i].PhiGrid {
			if got.Positions[i].PhiGrid[k] != p.Positions[i].PhiGrid[k] {
				t.Fatalf("phi grid %d/%d mismatch", i, k)
			}
		}
	}
	// A loaded profile must be directly trackable.
	if _, err := NewTracker(got, DefaultConfig()); err != nil {
		t.Errorf("loaded profile rejected by tracker: %v", err)
	}
}

func TestWriteProfileRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, nil); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("nil err = %v", err)
	}
	if err := WriteProfile(&buf, &Profile{MatchRateHz: 100}); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty err = %v", err)
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadProfileValidatesShape(t *testing.T) {
	bad := &Profile{
		MatchRateHz: 100,
		Positions: []PositionProfile{{
			PhiGrid:   []float64{1, 2},
			ThetaGrid: []float64{1}, // misaligned
		}},
	}
	var buf bytes.Buffer
	if err := gobEncode(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("misaligned grids accepted")
	}

	badRate := &Profile{
		MatchRateHz: -5,
		Positions:   []PositionProfile{{PhiGrid: []float64{1}, ThetaGrid: []float64{1}}},
	}
	buf.Reset()
	if err := gobEncode(&buf, badRate); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("invalid match rate accepted")
	}
}

func TestSaveLoadProfileFile(t *testing.T) {
	p := synthProfile(t, 2)
	path := filepath.Join(t.TempDir(), "driver.profile")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Positions) != 2 {
		t.Errorf("positions = %d", len(got.Positions))
	}
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// gobEncode writes raw gob without WriteProfile's validation — both
// the legacy on-disk encoding and the way to test ReadProfile's own
// checks.
func gobEncode(buf *bytes.Buffer, p *Profile) error {
	return gob.NewEncoder(buf).Encode(p)
}

func TestWriteProfileEmitsV1Envelope(t *testing.T) {
	p := synthProfile(t, 2)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[:4]) != profileMagic {
		t.Fatalf("magic = %q", raw[:4])
	}
	got, enc, err := DecodeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if enc != EncodingV1 {
		t.Errorf("encoding = %v, want v1", enc)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Error("fingerprint changed across v1 round trip")
	}
}

func TestDecodeProfileLegacyGob(t *testing.T) {
	p := synthProfile(t, 3)
	var buf bytes.Buffer
	if err := gobEncode(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, enc, err := DecodeProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if enc != EncodingLegacyGob {
		t.Errorf("encoding = %v, want legacy-gob", enc)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Error("fingerprint changed across legacy decode")
	}
}

// TestReadProfileCorruptInputs is the adversarial table: every way a
// profile file can be broken must fail loudly, never load quietly.
func TestReadProfileCorruptInputs(t *testing.T) {
	p := synthProfile(t, 2)
	var good bytes.Buffer
	if err := WriteProfile(&good, p); err != nil {
		t.Fatal(err)
	}
	v1 := good.Bytes()

	nonFinite := func(poison func(*Profile)) []byte {
		q := p.Clone()
		poison(q)
		var buf bytes.Buffer
		if err := gobEncode(&buf, q); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	flip := func(off int) []byte {
		b := append([]byte(nil), v1...)
		b[off] ^= 0x40
		return b
	}
	cases := []struct {
		name    string
		in      []byte
		corrupt bool // must be ErrCorruptProfile specifically
	}{
		{"empty", nil, false},
		{"garbage", []byte("not a profile at all"), false},
		{"truncated header", v1[:10], true},
		{"truncated payload", v1[:len(v1)-5], true},
		{"bad version", flip(5), true},
		{"reserved bytes set", flip(7), true},
		{"implausible length", flip(9), true},
		{"payload bit flip", flip(envelope.HeaderLen + 11), true},
		{"checksum bit flip", flip(17), true},
		{"legacy NaN phase", nonFinite(func(q *Profile) { q.Positions[0].PhiGrid[3] = math.NaN() }), false},
		{"legacy Inf phase", nonFinite(func(q *Profile) { q.Positions[1].PhiGrid[0] = math.Inf(1) }), false},
		{"legacy NaN orientation", nonFinite(func(q *Profile) { q.Positions[0].ThetaGrid[2] = math.NaN() }), false},
		{"legacy Inf fingerprint", nonFinite(func(q *Profile) { q.Positions[0].Fingerprint = math.Inf(-1) }), false},
		{"legacy NaN match rate", nonFinite(func(q *Profile) { q.MatchRateHz = math.NaN() }), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProfile(bytes.NewReader(tc.in))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if tc.corrupt && !errors.Is(err, ErrCorruptProfile) {
				t.Errorf("err = %v, want ErrCorruptProfile", err)
			}
		})
	}
}

func TestWriteProfileRejectsNonFinite(t *testing.T) {
	p := synthProfile(t, 1)
	p.Positions[0].PhiGrid[0] = math.Inf(1)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err == nil {
		t.Error("non-finite phase written without error")
	}
}

// TestV1FingerprintStableAcrossEncodings is the migration invariant
// the CLI's migrate subcommand relies on: the fingerprint is a
// content hash, so legacy and v1 bytes of the same profile agree.
func TestV1FingerprintStableAcrossEncodings(t *testing.T) {
	p := synthProfile(t, 3)
	var legacy, v1 bytes.Buffer
	if err := gobEncode(&legacy, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfile(&v1, p); err != nil {
		t.Fatal(err)
	}
	pl, err := ReadProfile(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := ReadProfile(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Fingerprint() != pv.Fingerprint() || pl.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprints diverged: legacy %016x v1 %016x source %016x",
			pl.Fingerprint(), pv.Fingerprint(), p.Fingerprint())
	}
}

// TestProfileImmutableUnderUse deep-freezes a profile and proves the
// consumers the serving stack shares it across keep their hands off:
// tracking, persistence, cloning, and merging all leave it untouched.
func TestProfileImmutableUnderUse(t *testing.T) {
	p := synthProfile(t, 3)
	frozen := p.Clone() // the deep-freeze reference snapshot
	fp := p.Fingerprint()

	pl, err := NewPipeline(p, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Replay the profile's own first grid against the tracker: enough
	// pushes to lock a position and emit estimates.
	grid := p.Positions[0]
	for k, phi := range grid.PhiGrid {
		pl.PushCSI(float64(k)/p.MatchRateHz, phi)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(frozen); err != nil {
		t.Fatal(err)
	}
	_ = p.Clone()

	if p.Fingerprint() != fp {
		t.Error("profile fingerprint changed while in use")
	}
	if !reflect.DeepEqual(p, frozen) {
		t.Error("profile content changed while in use")
	}
}
