package core

import (
	"math"
	"testing"

	"vihot/internal/camera"
	"vihot/internal/imu"
)

// Timestamp-discipline tests: a lossy or hostile wire delivers the
// same sample twice, out of order, or with a poisoned timestamp, and
// the pipeline must shrug it off deterministically — the polluted
// stream produces exactly the estimates of the clean one.

// cleanPhase is the well-behaved CSI stream both pipelines share.
func cleanPhase(ts float64) float64 {
	theta := 80 * math.Sin(2*math.Pi*ts/4)
	return -1 + 0.8*math.Sin(theta*math.Pi/180)
}

func TestPushCSITimestampDiscipline(t *testing.T) {
	clean := newTestPipeline(t, DefaultPipelineConfig())
	dirty := newTestPipeline(t, DefaultPipelineConfig())

	var want, got []Estimate
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.002
		phi := cleanPhase(ts)
		if est, ok := clean.PushCSI(ts, phi); ok {
			want = append(want, est)
		}
		// The dirty pipeline sees the same sample plus wire garbage:
		// an exact duplicate, a stale replay, and periodic poisoned
		// values. None may change its output.
		if est, ok := dirty.PushCSI(ts, phi); ok {
			got = append(got, est)
		}
		if _, ok := dirty.PushCSI(ts, phi); ok { // duplicate
			t.Fatalf("duplicate sample at t=%v produced an estimate", ts)
		}
		if i > 10 {
			if _, ok := dirty.PushCSI(ts-0.02, cleanPhase(ts-0.02)); ok { // reordered straggler
				t.Fatalf("stale replay at t=%v produced an estimate", ts)
			}
		}
		switch i % 500 {
		case 100:
			if _, ok := dirty.PushCSI(math.NaN(), phi); ok {
				t.Fatal("NaN timestamp produced an estimate")
			}
		case 200:
			if _, ok := dirty.PushCSI(ts+0.001, math.Inf(1)); ok {
				t.Fatal("Inf phase produced an estimate")
			}
			// NOTE: the Inf-phase sample's timestamp must NOT have been
			// adopted — the next clean sample at ts+0.002 still flows.
		case 300:
			if _, ok := dirty.PushCSI(-ts-1, phi); ok {
				t.Fatal("backwards timestamp produced an estimate")
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("clean pipeline produced no estimates")
	}
	if len(got) != len(want) {
		t.Fatalf("dirty pipeline produced %d estimates, clean produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimate %d diverged: dirty %+v, clean %+v", i, got[i], want[i])
		}
	}
}

// TestPushCSIInfPhaseDoesNotAdvanceClock pins the subtle half of the
// guard: a sample rejected for a non-finite value must not move the
// monotone watermark, or it would censor the next legitimate sample.
func TestPushCSIInfPhaseDoesNotAdvanceClock(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	pl.PushCSI(1.0, 0.1)
	if _, ok := pl.PushCSI(2.0, math.NaN()); ok {
		t.Fatal("NaN phase produced an estimate")
	}
	// 1.5 < 2.0: if the poisoned sample advanced the watermark this
	// legitimate sample would be dropped. It must reach the tracker —
	// prove it by checking a duplicate of it IS then rejected.
	pl.PushCSI(1.5, 0.1)
	if _, ok := pl.PushCSI(1.5, 0.1); ok {
		t.Fatal("duplicate accepted: 1.5 was never adopted as the watermark")
	}
}

func TestPushIMUTimestampDiscipline(t *testing.T) {
	clean := newTestPipeline(t, DefaultPipelineConfig())
	dirty := newTestPipeline(t, DefaultPipelineConfig())

	// Drive both into a turn, but feed the dirty one duplicated,
	// reordered, and non-finite readings alongside.
	for i := 0; i <= 200; i++ {
		ts := float64(i) * 0.01
		gyro := 25.0
		if ts >= 1 {
			gyro = 0
		}
		r := imu.Reading{Time: ts, GyroZ: gyro}
		clean.PushIMU(r)
		dirty.PushIMU(r)
		dirty.PushIMU(r)                                              // duplicate
		dirty.PushIMU(imu.Reading{Time: ts - 0.05, GyroZ: -40})       // stale replay, wild value
		dirty.PushIMU(imu.Reading{Time: math.NaN(), GyroZ: 25})       // poisoned clock
		dirty.PushIMU(imu.Reading{Time: ts, GyroZ: math.Inf(1)})      // poisoned value
		if clean.Steering() != dirty.Steering() {
			t.Fatalf("steering state diverged at t=%v: clean=%v dirty=%v",
				ts, clean.Steering(), dirty.Steering())
		}
	}
}

func TestPushCameraTimestampDiscipline(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	pl.PushCamera(camera.Estimate{Time: 0.5, Yaw: 12, Valid: true})
	// Wire garbage after the good frame: duplicates and stale replays
	// carrying wild yaws, plus poisoned values. All must be ignored.
	pl.PushCamera(camera.Estimate{Time: 0.5, Yaw: 99, Valid: true})
	pl.PushCamera(camera.Estimate{Time: 0.2, Yaw: -77, Valid: true})
	pl.PushCamera(camera.Estimate{Time: math.NaN(), Yaw: 1, Valid: true})
	pl.PushCamera(camera.Estimate{Time: 0.6, Yaw: math.Inf(-1), Valid: true})

	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 25})
	}
	if !pl.Steering() {
		t.Fatal("turn not detected")
	}
	got, ok := pl.PushCSI(1.0, 0.3)
	if !ok {
		t.Fatal("no fallback estimate during turn")
	}
	if got.Yaw != 12 {
		t.Fatalf("fallback used a replayed/poisoned camera frame: yaw=%v, want 12", got.Yaw)
	}
}
