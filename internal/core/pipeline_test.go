package core

import (
	"math"
	"testing"

	"vihot/internal/camera"
	"vihot/internal/imu"
)

func newTestPipeline(t *testing.T, cfg PipelineConfig) *Pipeline {
	t.Helper()
	pl, err := NewPipeline(synthProfile(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(nil, DefaultPipelineConfig()); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestPipelinePassesThroughWhenStraight(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	// Straight driving: the IMU sees no turn, CSI flows to the tracker.
	count := 0
	for ts := 0.0; ts < 4; ts += 0.002 {
		if int(ts*100)%2 == 0 {
			pl.PushIMU(imu.Reading{Time: ts, GyroZ: 0.1})
		}
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if _, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok {
			count++
		}
	}
	if count == 0 {
		t.Error("no estimates while driving straight")
	}
	if pl.Steering() {
		t.Error("steering flagged under straight driving")
	}
}

func TestPipelineFallsBackDuringTurn(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	// Prime the camera estimate.
	pl.PushCamera(camera.Estimate{Time: 0, Yaw: 12, Valid: true})
	// Car turning hard: gyro high.
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 25})
	}
	if !pl.Steering() {
		t.Fatal("turn not detected")
	}
	got, ok := pl.PushCSI(1.0, 0.3)
	if !ok {
		t.Fatal("no fallback estimate during turn")
	}
	if got.Source != SourceCamera || got.Yaw != 12 {
		t.Errorf("fallback estimate = %+v", got)
	}
}

func TestPipelineNoFallbackWithoutCamera(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 25})
	}
	if _, ok := pl.PushCSI(1.0, 0.3); ok {
		t.Error("estimate emitted during turn without camera data")
	}
}

func TestPipelineIgnoresInvalidCameraFrames(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	pl.PushCamera(camera.Estimate{Time: 0, Yaw: 50, Valid: false})
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 25})
	}
	if _, ok := pl.PushCSI(1.0, 0.3); ok {
		t.Error("invalid camera frame used for fallback")
	}
}

func TestPipelineQuarantineAfterTurn(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.QuarantineS = 0.5
	pl := newTestPipeline(t, cfg)
	pl.PushCamera(camera.Estimate{Time: 0, Yaw: 5, Valid: true})
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 25})
	}
	// Turn ends.
	for ts := 1.0; ts < 2.5; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 0})
		if !pl.Steering() {
			break
		}
	}
	if pl.Steering() {
		t.Fatal("steering never cleared")
	}
	// Immediately after: still quarantined → camera estimates.
	est, ok := pl.PushCSI(2.0, 0.3)
	if ok && est.Source != SourceCamera {
		t.Errorf("expected camera source during quarantine, got %v", est.Source)
	}
}

func TestPipelineIdentifierDisabled(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.SteeringIdentifier = false
	pl := newTestPipeline(t, cfg)
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(imu.Reading{Time: ts, GyroZ: 50})
	}
	if pl.Steering() {
		t.Error("identifier disabled but steering flagged")
	}
	// CSI flows to the tracker regardless.
	count := 0
	for ts := 1.0; ts < 4; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if _, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok {
			count++
		}
	}
	if count == 0 {
		t.Error("no estimates with identifier disabled")
	}
}

func TestPipelineTrackerAccessor(t *testing.T) {
	pl := newTestPipeline(t, DefaultPipelineConfig())
	if pl.Tracker() == nil {
		t.Error("Tracker() returned nil")
	}
}

func TestPipelineCameraFusion(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.CameraFusion = true
	cfg.FusionCSIWeight = 0.5
	pl := newTestPipeline(t, cfg)
	// Warm the tracker on the synthetic curve.
	var csiEst Estimate
	for ts := 0.0; ts < 4; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok && est.Source == SourceCSI {
			csiEst = est
		}
	}
	if csiEst.Time == 0 {
		t.Fatal("no CSI estimates")
	}
	// A fresh camera frame must blend.
	pl.PushCamera(camera.Estimate{Time: 4.0, Yaw: 0, Valid: true})
	fusedSeen := false
	for ts := 4.0; ts < 4.1; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok && est.Source == SourceFused {
			fusedSeen = true
		}
	}
	if !fusedSeen {
		t.Error("fusion never engaged with a fresh camera frame")
	}
	// A stale camera frame must not blend.
	staleSeen := false
	for ts := 6.0; ts < 6.3; ts += 0.002 {
		theta := 80 * math.Sin(2*math.Pi*ts/4)
		if est, ok := pl.PushCSI(ts, -1+0.8*math.Sin(theta*math.Pi/180)); ok && est.Source == SourceFused {
			staleSeen = true
		}
	}
	if staleSeen {
		t.Error("fusion engaged with a stale camera frame")
	}
}
