package core

import (
	"fmt"
	"math"
	"time"

	"vihot/internal/dsp"
	"vihot/internal/dtw"
	"vihot/internal/geom"
)

// Config tunes the position-orientation joint tracker. The zero value
// is not usable; start from DefaultConfig.
type Config struct {
	// WindowS is W, the CSI input window length in seconds
	// (Sec. 5.2.3 sweeps 10–300 ms; 100 ms is the paper's default).
	WindowS float64
	// MatchRateHz is the uniform grid rate for resampling before DTW;
	// it must match the profile's rate.
	MatchRateHz float64
	// RatioLo/RatioHi bound the candidate match lengths relative to
	// the window: Algorithm 1 uses [0.5, 2] to absorb head-turning
	// speed mismatch.
	RatioLo, RatioHi float64
	// StepSamples is ΔL, the candidate-length enumeration step.
	StepSamples int
	// Stride is the profile slide stride in grid samples.
	Stride int
	// DTWBand is the Sakoe-Chiba half-width in grid samples (0 = full
	// DTW).
	DTWBand int
	// EstimateEveryS throttles how often a full DTW search runs; CSI
	// arrives at ≈500 Hz but estimates every 10 ms already beat any
	// camera by >3×.
	EstimateEveryS float64
	// MaxJumpDPS rejects estimates implying a head speed above this,
	// the continuity filter of Sec. 3.6 ("head orientation can only
	// change continuously").
	MaxJumpDPS float64
	// PositionCandidates is the Eq. (4) shortlist size: how many
	// fingerprint-nearest positions the matcher disambiguates between
	// after each stable (front-facing) period. 1 reproduces the
	// paper's pure nearest-fingerprint rule; at 2.4 GHz fingerprints
	// alias across the lean range, so a small shortlist resolved by
	// DTW match quality is markedly more robust.
	PositionCandidates int
	// RelockDist re-opens the position shortlist when the match
	// distance stays above this for several consecutive estimates —
	// the signature of tracking against the wrong position's curve.
	RelockDist float64
	// RescanEveryS forces a periodic match against every profile
	// position. Wavelength aliasing can park the tracker on a wrong
	// but plausible position curve whose distance never exceeds
	// RelockDist; the periodic re-scan is the escape hatch. 0 uses
	// the default; negative disables.
	RescanEveryS float64

	// Stability detection for the position lock (Sec. 3.4.1).
	StableWindowS float64
	StableStd     float64
	StableHoldS   float64
}

// DefaultConfig mirrors the paper's default system configuration
// (Sec. 5.1): 100 ms window, [0.5W, 2W] candidates.
func DefaultConfig() Config {
	return Config{
		WindowS:            0.1,
		MatchRateHz:        DefaultMatchRateHz,
		RatioLo:            0.5,
		RatioHi:            2,
		StepSamples:        2,
		Stride:             2,
		DTWBand:            8,
		EstimateEveryS:     0.01,
		MaxJumpDPS:         600,
		PositionCandidates: 5,
		RelockDist:         0.02,
		StableWindowS:      0.4,
		StableStd:          0.05,
		StableHoldS:        1.0,
	}
}

// Source labels where an estimate came from.
type Source int

const (
	SourceCSI    Source = iota // DTW series matching on CSI phase
	SourceFront                // stability detector: driver facing road
	SourceHeld                 // continuity filter held the previous value
	SourceCamera               // camera fallback during steering events
	SourceFused                // CSI blended with a fresh camera frame
	SourceCoast                // forecast-coasted output during CSI starvation
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceCSI:
		return "csi"
	case SourceFront:
		return "front"
	case SourceHeld:
		return "held"
	case SourceCamera:
		return "camera"
	case SourceFused:
		return "fused"
	case SourceCoast:
		return "coast"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Estimate is one head-orientation output.
type Estimate struct {
	Time      float64
	Yaw       float64 // degrees
	Source    Source
	Position  int     // profile position index used for matching
	MatchDist float64 // normalized DTW distance of the winning match

	// Matching internals, needed for forecasting (Sec. 3.4.6).
	matchEnd int // exclusive end index of Φ*m in the profile grid
	matchLen int // Lm in grid samples
	queryLen int // W in grid samples
}

// Tracker is the run-time position-orientation joint tracker
// (Sec. 3.4). Feed sanitized CSI phases with Push; it returns an
// estimate whenever one is due. Not safe for concurrent use.
type Tracker struct {
	cfg     Config
	profile *Profile

	// Per-position recentred phase grids (phase minus the position's
	// circular mean) so typical values sit far from the ±π seam.
	centered [][]float64
	means    []float64

	window     dsp.Series
	matcher    *dtw.Matcher
	query      []float64
	centeredQ  []float64
	scratchIdx []int
	lengths    []int
	stable     *dsp.StabilityDetector

	posIdx    int
	posLocked bool
	shortlist []int // pending Eq. (4) candidates to disambiguate
	badCount  int   // consecutive high-distance estimates

	last        Estimate
	hasLast     bool
	holdCount   int
	firstT      float64
	haveT       bool
	nextEstT    float64
	nextRescanT float64

	// Streaming phase unwrap state: the window and stability detector
	// consume the unwrapped stream so interpolation and variance never
	// cross the ±π seam.
	unwrapped  float64
	lastRawPhi float64
	haveRawPhi bool

	stageObs StageObserver
}

// maxConsecutiveHolds bounds how long the continuity filter may
// override fresh estimates: a persistent disagreement means the held
// value, not the matcher, is wrong (e.g. the initial estimate landed
// on the wrong branch of the CSI-orientation curve).
const maxConsecutiveHolds = 8

// NewTracker builds a tracker over a profile. The config's match rate
// must equal the profile's (zero adopts the profile's rate).
func NewTracker(p *Profile, cfg Config) (*Tracker, error) {
	if p == nil || len(p.Positions) == 0 {
		return nil, ErrEmptyProfile
	}
	if cfg.WindowS <= 0 {
		cfg.WindowS = DefaultConfig().WindowS
	}
	if cfg.MatchRateHz == 0 {
		cfg.MatchRateHz = p.MatchRateHz
	}
	if cfg.MatchRateHz != p.MatchRateHz {
		return nil, fmt.Errorf("core: config match rate %v != profile rate %v",
			cfg.MatchRateHz, p.MatchRateHz)
	}
	if cfg.RatioLo <= 0 || cfg.RatioHi < cfg.RatioLo {
		cfg.RatioLo, cfg.RatioHi = 0.5, 2
	}
	if cfg.StepSamples < 1 {
		cfg.StepSamples = 1
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	if cfg.EstimateEveryS <= 0 {
		cfg.EstimateEveryS = DefaultConfig().EstimateEveryS
	}
	if cfg.StableWindowS <= 0 {
		cfg.StableWindowS = DefaultConfig().StableWindowS
	}
	if cfg.StableStd <= 0 {
		cfg.StableStd = DefaultConfig().StableStd
	}
	if cfg.StableHoldS <= 0 {
		cfg.StableHoldS = DefaultConfig().StableHoldS
	}
	if cfg.PositionCandidates < 1 {
		cfg.PositionCandidates = 1
	}
	if cfg.RelockDist <= 0 {
		cfg.RelockDist = DefaultConfig().RelockDist
	}
	if cfg.RescanEveryS == 0 {
		cfg.RescanEveryS = 1.0
	}

	tk := &Tracker{
		cfg:     cfg,
		profile: p,
		matcher: dtw.NewMatcher(256),
		stable:  dsp.NewStabilityDetector(cfg.StableWindowS, cfg.StableStd, cfg.StableHoldS),
	}
	for _, pos := range p.Positions {
		mu := pos.MeanPhase()
		c := make([]float64, len(pos.PhiGrid))
		for k, phi := range pos.PhiGrid {
			c[k] = geom.PhaseDiff(phi, mu)
		}
		tk.centered = append(tk.centered, c)
		tk.means = append(tk.means, mu)
	}
	wSamples := tk.windowSamples()
	maxGrid := 0
	for _, pos := range p.Positions {
		if len(pos.PhiGrid) > maxGrid {
			maxGrid = len(pos.PhiGrid)
		}
	}
	tk.lengths = dtw.CandidateLengths(wSamples, cfg.RatioLo, cfg.RatioHi, cfg.StepSamples, maxGrid)
	return tk, nil
}

// windowSamples returns W expressed in match-grid samples (≥ 2).
func (tk *Tracker) windowSamples() int {
	n := int(math.Round(tk.cfg.WindowS * tk.cfg.MatchRateHz))
	if n < 2 {
		n = 2
	}
	return n
}

// SetMatcher replaces the tracker's DTW scratch buffers with a shared
// Matcher. A Matcher carries no state between calls, so sharing one
// across trackers changes no results — it only amortizes scratch
// memory. The caller must guarantee that every tracker sharing the
// matcher is driven by the same goroutine (see the ownership rules on
// dtw.Matcher); internal/serve uses one matcher per shard worker.
func (tk *Tracker) SetMatcher(m *dtw.Matcher) {
	if m != nil {
		tk.matcher = m
	}
}

// SetStageObserver installs (or, with nil, removes) the tracker's
// stage-latency observer; see the StageObserver type. With none
// installed the tracker reads no clocks at all.
func (tk *Tracker) SetStageObserver(fn StageObserver) { tk.stageObs = fn }

// Profile returns the profile the tracker matches against. It is
// shared, not copied (see the Profile immutability contract); callers
// must not modify it.
func (tk *Tracker) Profile() *Profile { return tk.profile }

// Position returns the current head-position estimate (profile
// index) and whether it has locked via Eq. (4) yet.
func (tk *Tracker) Position() (int, bool) { return tk.posIdx, tk.posLocked }

// SetPosition overrides the position lock, for tests and ablations.
func (tk *Tracker) SetPosition(idx int) {
	if idx >= 0 && idx < len(tk.profile.Positions) {
		tk.posIdx = idx
		tk.posLocked = true
	}
}

// Ready reports whether the setup time W has elapsed (Line 1 of
// Algorithm 1).
func (tk *Tracker) Ready(t float64) bool {
	return tk.haveT && t-tk.firstT >= tk.cfg.WindowS
}

// Push feeds one sanitized CSI phase sample. It returns an Estimate
// and true when a new estimate is due at this sample.
func (tk *Tracker) Push(t, phi float64) (Estimate, bool) {
	if !tk.haveT {
		tk.firstT = t
		tk.haveT = true
		tk.nextEstT = t + tk.cfg.WindowS
	}
	// Streaming unwrap: the stored stream is continuous, so window
	// resampling and the stability variance behave even when the raw
	// phase crosses the ±π seam.
	if !tk.haveRawPhi {
		tk.unwrapped = phi
		tk.haveRawPhi = true
	} else {
		tk.unwrapped += geom.PhaseDiff(phi, tk.lastRawPhi)
	}
	tk.lastRawPhi = phi
	phi = tk.unwrapped
	// Maintain the sliding window [t-W, t].
	tk.window = append(tk.window, dsp.Sample{T: t, V: phi})
	cut := 0
	for cut < len(tk.window) && tk.window[cut].T < t-tk.cfg.WindowS {
		cut++
	}
	if cut > 0 {
		tk.window = append(tk.window[:0], tk.window[cut:]...)
	}

	// Position estimation (Sec. 3.4.1): stable phase ⇒ facing front;
	// match the stable mean against the position fingerprints. Once
	// locked, re-locking is gated: the stable phase must actually look
	// like a front-facing fingerprint, and the tracker must not be in
	// the middle of reporting a large head excursion — brief slowdowns
	// at sweep extremes would otherwise masquerade as "facing front"
	// and flip the position lock mid-turn.
	isStable := tk.stable.Push(t, phi)
	if isStable {
		phi0r := geom.WrapRad(tk.stable.Mean())
		if cands, err := tk.profile.NearestPositions(phi0r, tk.cfg.PositionCandidates); err == nil {
			fprDist := math.Abs(geom.PhaseDiff(tk.profile.Positions[cands[0]].Fingerprint, phi0r))
			trustworthy := !tk.posLocked ||
				(fprDist < 0.15 && (!tk.hasLast || math.Abs(tk.last.Yaw) < 25))
			if trustworthy {
				// Adopt the Eq. (4) nearest fingerprint immediately;
				// the shortlist lets the matcher refine the choice
				// once the head starts moving again.
				tk.posIdx = cands[0]
				tk.posLocked = true
				tk.shortlist = cands
			}
		}
	}

	if !tk.Ready(t) || t < tk.nextEstT {
		return Estimate{}, false
	}
	tk.nextEstT = t + tk.cfg.EstimateEveryS

	// A stable phase means the driver is facing the road (the paper's
	// Sec. 3.4.1 premise), so report 0° directly — no matching needed.
	if isStable {
		est := Estimate{Time: t, Yaw: 0, Source: SourceFront, Position: tk.posIdx}
		tk.last = est
		tk.hasLast = true
		tk.holdCount = 0
		return est, true
	}

	var mt0 time.Time
	if tk.stageObs != nil {
		mt0 = time.Now()
	}
	est, err := tk.estimate(t)
	if tk.stageObs != nil {
		tk.stageObs(StageMatch, t, time.Since(mt0).Nanoseconds())
	}
	if err != nil {
		return Estimate{}, false
	}

	// Continuity filter: a head cannot teleport. Implausible jumps
	// (bursty steering corrections, multipath glitches) hold the
	// previous orientation instead — but only briefly: if the matcher
	// keeps insisting on a far-away orientation, the held anchor is
	// the stale one, so accept the fresh estimate and re-anchor.
	if tk.hasLast && tk.cfg.MaxJumpDPS > 0 && tk.holdCount < maxConsecutiveHolds {
		dt := est.Time - tk.last.Time
		if dt > 0 {
			speed := math.Abs(est.Yaw-tk.last.Yaw) / dt
			if speed > tk.cfg.MaxJumpDPS {
				est.Yaw = tk.last.Yaw
				est.Source = SourceHeld
			}
		}
	}
	if est.Source == SourceHeld {
		tk.holdCount++
	} else {
		tk.holdCount = 0
	}
	tk.last = est
	tk.hasLast = true
	return est, true
}

// relockBadCount is how many consecutive high-distance estimates
// trigger a full position re-scan.
const relockBadCount = 12

// estimate runs Algorithm 1 over the current window. When an Eq. (4)
// shortlist is pending (or matching has been persistently poor), the
// window is matched against every candidate position and the best DTW
// distance decides the lock — the series matcher is the arbiter the
// wrapped fingerprints cannot be.
func (tk *Tracker) estimate(t float64) (Estimate, error) {
	if len(tk.window) < 2 {
		return Estimate{}, ErrNotReady
	}
	// Resample onto exactly W-in-grid-samples points: a window edge
	// shaved by CSMA gaps must not shrink the query.
	var err error
	tk.query, err = tk.window.ResampleValuesN(tk.windowSamples(), tk.query)
	if err != nil {
		return Estimate{}, err
	}

	// The query's own dynamic range decides whether position
	// disambiguation is even possible: near the front-facing pose the
	// aliased position curves coincide in value, so deciding there is
	// a coin flip. Hold the shortlist until the window shows motion.
	qlo, qhi := tk.query[0], tk.query[0]
	for _, v := range tk.query {
		if v < qlo {
			qlo = v
		}
		if v > qhi {
			qhi = v
		}
	}
	const motionRange = 0.25 // rad of phase swing within the window

	rescan := tk.badCount >= relockBadCount ||
		(tk.cfg.RescanEveryS > 0 && t >= tk.nextRescanT && qhi-qlo >= motionRange)
	candidates := tk.scratchIdx[:0]
	switch {
	case rescan:
		// Either persistent mismatch (the lock is stale) or the
		// periodic re-validation; match against every position.
		for i := range tk.profile.Positions {
			candidates = append(candidates, i)
		}
		tk.badCount = 0
		tk.nextRescanT = t + tk.cfg.RescanEveryS
	case len(tk.shortlist) > 0 && qhi-qlo >= motionRange:
		candidates = append(candidates, tk.shortlist...)
		tk.shortlist = nil
	default:
		candidates = append(candidates, tk.posIdx)
	}
	tk.scratchIdx = candidates

	var (
		best       dtw.Match
		bestPos    = -1
		anyBest    dtw.Match
		anyBestPos = -1
		curDist    = math.Inf(1) // this scan's distance for the held position
	)
	for _, pos := range candidates {
		// Recentre the query with this position's mean phase so query
		// and profile share a seam-free representation.
		mu := tk.means[pos]
		tk.centeredQ = tk.centeredQ[:0]
		for _, v := range tk.query {
			tk.centeredQ = append(tk.centeredQ, geom.PhaseDiff(v, mu))
		}
		match, err := tk.matcher.Subsequence(
			tk.centeredQ, tk.centered[pos], tk.lengths, tk.cfg.Stride,
			dtw.Options{Window: tk.cfg.DTWBand, Circular: true},
		)
		if err != nil {
			continue
		}
		if anyBestPos < 0 || match.Dist < anyBest.Dist {
			anyBest, anyBestPos = match, pos
		}
		// Candidate positions whose matched orientation implies a
		// physically impossible head jump from the previous estimate
		// are down-ranked: aliased positions produce plausible DTW
		// distances but orientation offsets of tens of degrees, and
		// continuity is the cheapest arbiter.
		consistent := true
		if !rescan && tk.hasLast && tk.cfg.MaxJumpDPS > 0 {
			theta := tk.profile.Positions[pos].ThetaGrid
			end := match.End()
			if end > len(theta) {
				end = len(theta)
			}
			dt := t - tk.last.Time
			if dt > 0 && dt < 0.5 {
				speed := math.Abs(theta[end-1]-tk.last.Yaw) / dt
				if speed > tk.cfg.MaxJumpDPS {
					consistent = false
				}
			}
		}
		if pos == tk.posIdx {
			curDist = match.Dist
		}
		if consistent && (bestPos < 0 || match.Dist < best.Dist) {
			best, bestPos = match, pos
		}
	}
	if bestPos < 0 {
		// No continuity-consistent candidate: fall back to the raw
		// minimum (the continuity filter downstream will arbitrate).
		best, bestPos = anyBest, anyBestPos
	}
	if bestPos < 0 {
		return Estimate{}, ErrNotReady
	}
	// Degenerate geometries can make a wrong position's curve fit
	// slightly better than the truth; switching the lock on a periodic
	// re-scan therefore requires a clear margin over the held
	// position, not a photo finish.
	const switchMargin = 0.7
	if rescan && bestPos != tk.posIdx && !math.IsInf(curDist, 1) &&
		best.Dist > switchMargin*curDist {
		// Not convincingly better: keep the current lock. Reuse the
		// current position's match by re-running the single-candidate
		// path cheaply next time; for this estimate, fall back to the
		// held position's own match when it was computed.
		bestPos = tk.posIdx
		// Recompute this position's match fields from the scan: the
		// candidates loop recorded only the distance, so rerun once.
		mu := tk.means[bestPos]
		tk.centeredQ = tk.centeredQ[:0]
		for _, v := range tk.query {
			tk.centeredQ = append(tk.centeredQ, geom.PhaseDiff(v, mu))
		}
		if m, err := tk.matcher.Subsequence(
			tk.centeredQ, tk.centered[bestPos], tk.lengths, tk.cfg.Stride,
			dtw.Options{Window: tk.cfg.DTWBand, Circular: true},
		); err == nil {
			best = m
		}
	}
	tk.posIdx = bestPos
	tk.posLocked = true
	if best.Dist > tk.cfg.RelockDist {
		tk.badCount++
	} else {
		tk.badCount = 0
	}

	theta := tk.profile.Positions[bestPos].ThetaGrid
	end := best.End()
	if end > len(theta) {
		end = len(theta)
	}
	est := Estimate{
		Time:      t,
		Yaw:       theta[end-1],
		Source:    SourceCSI,
		Position:  bestPos,
		MatchDist: best.Dist,
		matchEnd:  end,
		matchLen:  best.Length,
		queryLen:  len(tk.query),
	}
	return est, nil
}

// Forecast predicts the head orientation horizonS seconds after the
// estimate's time (Eq. 6): the matched profile segment is Lm samples
// long against a W-sample query, so run-time evolves Lm/W times
// faster than the profile; advancing the profile cursor by
// horizon·(Lm/W) yields the predicted orientation.
func (tk *Tracker) Forecast(est Estimate, horizonS float64) float64 {
	if horizonS <= 0 || est.queryLen == 0 || est.Source == SourceHeld {
		return est.Yaw
	}
	theta := tk.profile.Positions[est.Position].ThetaGrid
	speedRatio := float64(est.matchLen) / float64(est.queryLen)
	advance := int(math.Round(horizonS * tk.cfg.MatchRateHz * speedRatio))
	idx := est.matchEnd - 1 + advance
	if idx >= len(theta) {
		idx = len(theta) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return theta[idx]
}

// Reset clears all run-time state, keeping the profile.
func (tk *Tracker) Reset() {
	tk.window = tk.window[:0]
	tk.stable.Reset()
	tk.posIdx = 0
	tk.posLocked = false
	tk.shortlist = nil
	tk.badCount = 0
	tk.hasLast = false
	tk.haveT = false
	tk.haveRawPhi = false
	tk.unwrapped = 0
	tk.holdCount = 0
}
