package core

import "math"

// Smoother is an optional constant-velocity Kalman filter over the
// estimate stream. The paper reports raw per-window estimates; an AR
// renderer consuming them benefits from a smooth, jitter-free pose
// stream, and the filter's velocity state gives an alternative
// short-horizon predictor to Eq. (6). Measurement trust is scaled by
// each estimate's DTW match distance, so confident matches correct
// the state quickly while marginal ones barely nudge it.
type Smoother struct {
	// ProcessVar is the yaw-acceleration variance ((°/s²)²) driving
	// state uncertainty growth between estimates.
	ProcessVar float64
	// BaseMeasVar is the measurement variance (°²) of a perfect-match
	// estimate; it grows linearly with MatchDist via DistVarScale.
	BaseMeasVar  float64
	DistVarScale float64

	yaw, rate  float64 // state: orientation (°) and angular rate (°/s)
	pYY, pYR   float64 // covariance entries
	pRR        float64
	lastT      float64
	initalized bool
}

// NewSmoother returns a smoother tuned for head motion: heads
// accelerate at hundreds of °/s², and a clean match is worth ≈2°.
func NewSmoother() *Smoother {
	return &Smoother{
		ProcessVar:   400 * 400, // (°/s²)²
		BaseMeasVar:  4,
		DistVarScale: 2000,
	}
}

// Update feeds one estimate and returns the smoothed yaw.
func (s *Smoother) Update(est Estimate) float64 {
	if !s.initalized {
		s.yaw, s.rate = est.Yaw, 0
		s.pYY, s.pYR, s.pRR = 25, 0, 100
		s.lastT = est.Time
		s.initalized = true
		return s.yaw
	}
	dt := est.Time - s.lastT
	if dt < 0 {
		return s.yaw // out-of-order estimate: ignore
	}
	s.lastT = est.Time

	// Predict: constant-velocity model.
	s.yaw += s.rate * dt
	q := s.ProcessVar
	// Covariance propagation for F = [[1, dt], [0, 1]], Q from white
	// acceleration noise.
	pYY := s.pYY + 2*dt*s.pYR + dt*dt*s.pRR + q*dt*dt*dt*dt/4
	pYR := s.pYR + dt*s.pRR + q*dt*dt*dt/2
	pRR := s.pRR + q*dt*dt
	s.pYY, s.pYR, s.pRR = pYY, pYR, pRR

	// Measurement update on yaw only. Camera/fused/front estimates use
	// the base variance; CSI estimates scale with match distance; held
	// estimates carry no new information and are skipped.
	if est.Source == SourceHeld {
		return s.yaw
	}
	r := s.BaseMeasVar
	if est.Source == SourceCSI {
		r += s.DistVarScale * est.MatchDist
	}
	innov := est.Yaw - s.yaw
	denom := s.pYY + r
	if denom <= 0 {
		return s.yaw
	}
	kY := s.pYY / denom
	kR := s.pYR / denom
	s.yaw += kY * innov
	s.rate += kR * innov
	s.pRR -= kR * s.pYR
	s.pYR -= kY * s.pYR
	s.pYY -= kY * s.pYY
	return s.yaw
}

// Yaw returns the current smoothed orientation.
func (s *Smoother) Yaw() float64 { return s.yaw }

// Rate returns the current angular-rate state (°/s).
func (s *Smoother) Rate() float64 { return s.rate }

// Predict extrapolates the smoothed state horizonS seconds ahead — a
// model-based alternative to the profile-replay forecast of Eq. (6).
func (s *Smoother) Predict(horizonS float64) float64 {
	if !s.initalized || horizonS <= 0 {
		return s.yaw
	}
	return s.yaw + s.rate*horizonS
}

// Uncertainty returns the 1σ yaw uncertainty in degrees.
func (s *Smoother) Uncertainty() float64 {
	if s.pYY <= 0 {
		return 0
	}
	return math.Sqrt(s.pYY)
}

// Reset clears the filter state.
func (s *Smoother) Reset() {
	*s = Smoother{ProcessVar: s.ProcessVar, BaseMeasVar: s.BaseMeasVar, DistVarScale: s.DistVarScale}
}
