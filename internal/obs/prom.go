package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families in registration order,
// series within a family in registration order, histogram buckets
// cumulated with the trailing +Inf bucket, _sum, and _count series.
// A nil Registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if _, err := bw.WriteString("# HELP " + f.name + " " + helpEscaper.Replace(f.help) + "\n"); err != nil {
			return err
		}
		if _, err := bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n"); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(bw, f, s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeSeries renders one labelled series.
func writeSeries(bw *bufio.Writer, f *family, s *series) error {
	switch {
	case s.c != nil:
		return writeSample(bw, f.name, s.labels, formatUint(s.c.Value()))
	case s.cf != nil:
		return writeSample(bw, f.name, s.labels, formatUint(s.cf()))
	case s.g != nil:
		return writeSample(bw, f.name, s.labels, formatFloat(s.g.Value()))
	case s.gf != nil:
		return writeSample(bw, f.name, s.labels, formatFloat(s.gf()))
	case s.h != nil:
		h := s.h
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := `le="` + formatFloat(b) + `"`
			if err := writeSample(bw, f.name+"_bucket", joinLabels(s.labels, le), formatUint(cum)); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if err := writeSample(bw, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), formatUint(cum)); err != nil {
			return err
		}
		if err := writeSample(bw, f.name+"_sum", s.labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		return writeSample(bw, f.name+"_count", s.labels, formatUint(cum))
	}
	return nil
}

// writeSample renders `name{labels} value`.
func writeSample(bw *bufio.Writer, name, labels, value string) error {
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if labels != "" {
		if _, err := bw.WriteString("{" + labels + "}"); err != nil {
			return err
		}
	}
	_, err := bw.WriteString(" " + value + "\n")
	return err
}

// joinLabels appends one rendered label to a rendered label list.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// formatUint renders a counter value.
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
