package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("vihot_http_total", "t").Add(5)
	srv := httptest.NewServer(NewMux(r, NewTracer(8)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "vihot_http_total 5") {
		t.Fatalf("exposition missing counter:\n%s", body)
	}
}

func TestMuxServesPprofAndTrace(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(8)
	tr.Record("s", "track", 1, 100)
	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index status %d:\n%.200s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	d, err := ReadTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 1 || d.Spans[0].Stage != "track" {
		t.Fatalf("trace endpoint dump = %+v", d)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	r := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
