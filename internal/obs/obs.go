// Package obs is the serving stack's zero-dependency observability
// subsystem: a lock-cheap metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text exposition, plus a
// stream-time span tracer for per-stage pipeline latency (see span.go)
// and an HTTP mux bundling /metrics, /debug/pprof, and /trace (see
// http.go).
//
// # Design constraints
//
// Everything here is stdlib-only and built to sit inside the serving
// hot path without changing it:
//
//   - Update paths are a single atomic add (counters, histogram
//     buckets) or store (gauges). No metric update takes a lock.
//   - Every metric method is nil-safe: calling Add/Set/Observe on a
//     nil *Counter/*Gauge/*Histogram is a no-op, so call sites can be
//     wired unconditionally and instrumentation stays off by default
//     simply by never registering the metric.
//   - Registration is idempotent for counters, gauges, and histograms:
//     asking the registry for an already-registered series returns the
//     existing one, so independent components (one fault injector per
//     car, say) can share a series without coordination.
//
// # Consistency
//
// A scrape is not a consistent cut: each value is read atomically, but
// two metrics (or a histogram's buckets and its count) may be torn
// relative to one another by concurrent updates. Per-series values are
// monotone for counters and histogram buckets, which is all Prometheus
// rate arithmetic needs.
//
// # Naming scheme
//
// Metric families follow vihot_<subsystem>_<noun>[_<unit>][_total]:
// counters end in _total, durations are histograms in seconds, and
// discriminators (item kind, drop reason, fault fate, pipeline stage)
// are labels rather than name suffixes so dashboards can aggregate
// across them. DESIGN.md §9 records the full scheme.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; a nil Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind discriminates a family's exposition type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labelled instance of a metric family.
type series struct {
	labels string // rendered `k="v",k2="v2"` (no braces), "" when unlabelled
	c      *Counter
	g      *Gauge
	cf     func() uint64
	gf     func() float64
	h      *Histogram
}

// family is one metric name: a HELP/TYPE pair plus its labelled series.
type family struct {
	name     string
	help     string
	kind     metricKind
	series   []*series
	byLabels map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// All methods are safe for concurrent use; a nil *Registry returns nil
// metrics from every constructor, which (being nil-safe) makes an
// unregistered subsystem free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the (family, series) slot for name+labels,
// enforcing kind agreement. Returns nil when the series is new.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) (*family, *series, string) {
	mustValidName(name)
	ls := renderLabels(labels)
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f, f.byLabels[ls], ls
}

// add inserts a new series into a family.
func (f *family) add(ls string, s *series) {
	s.labels = ls
	f.byLabels[ls] = s
	f.series = append(f.series, s)
}

// Counter returns the counter series name{labels}, registering it on
// first use. labels are alternating key, value pairs. A nil Registry
// returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s, ls := r.lookup(name, help, kindCounter, labels)
	if s != nil {
		return s.c
	}
	c := &Counter{}
	f.add(ls, &series{c: c})
	return c
}

// Gauge returns the gauge series name{labels}, registering it on first
// use. A nil Registry returns nil (a no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s, ls := r.lookup(name, help, kindGauge, labels)
	if s != nil {
		return s.g
	}
	g := &Gauge{}
	f.add(ls, &series{g: g})
	return g
}

// Histogram returns the histogram series name{labels} over the given
// bucket upper bounds, registering it on first use. Re-registering an
// existing series must supply identical bounds. A nil Registry returns
// nil (a no-op histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s, ls := r.lookup(name, help, kindHistogram, labels)
	if s != nil {
		if !sameBounds(s.h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %s{%s} re-registered with different buckets", name, ls))
		}
		return s.h
	}
	h := NewHistogram(bounds)
	f.add(ls, &series{h: h})
	return h
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge for components that keep their own atomic
// tallies (wifi.Receiver, say). fn must be safe to call from the
// scrape goroutine and should be monotone. Registering the same
// name+labels twice panics: two callbacks cannot share a series.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s, ls := r.lookup(name, help, kindCounter, labels)
	if s != nil {
		panic(fmt.Sprintf("obs: duplicate CounterFunc %s{%s}", name, ls))
	}
	f.add(ls, &series{cf: fn})
}

// GaugeFunc registers a gauge sampled from fn at scrape time. Same
// contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s, ls := r.lookup(name, help, kindGauge, labels)
	if s != nil {
		panic(fmt.Sprintf("obs: duplicate GaugeFunc %s{%s}", name, ls))
	}
	f.add(ls, &series{gf: fn})
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text per the exposition format.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// renderLabels renders alternating key, value pairs as
// `k="v",k2="v2"`, sorted by key so the same label set always names
// the same series regardless of call-site ordering.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want alternating key, value)")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		mustValidLabelName(labels[i])
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(p.v))
		b.WriteString(`"`)
	}
	return b.String()
}

// mustValidName panics unless name is a legal metric name.
func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// mustValidLabelName panics unless name is a legal label name.
func mustValidLabelName(name string) {
	if !validName(name) || strings.Contains(name, ":") {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
