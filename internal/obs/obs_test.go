package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every metric type and the tracer must be inert, not crashing,
	// when nil — that is what makes "off by default" free at call sites.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed something")
	}
	var tr *Tracer
	tr.Record("s", "stage", 1, 100)
	if d := tr.Dump(); d.Recorded != 0 || len(d.Spans) != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil ||
		r.Histogram("x", "", []float64{1}) != nil {
		t.Fatal("nil registry returned a live metric")
	}
	r.CounterFunc("x", "", func() uint64 { return 0 })
	r.GaugeFunc("x", "", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("vihot_test_total", "help", "kind", "x")
	b := r.Counter("vihot_test_total", "help", "kind", "x")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("vihot_test_total", "help", "kind", "y")
	if other == a {
		t.Fatal("distinct labels shared a counter")
	}
	h1 := r.Histogram("vihot_test_seconds", "h", []float64{1, 2})
	h2 := r.Histogram("vihot_test_seconds", "h", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("same histogram series returned distinct histograms")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("vihot_canon_total", "", "b", "2", "a", "1")
	b := r.Counter("vihot_canon_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("vihot_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("vihot_kind_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with-dash", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-2.5)
	g.Add(0.5)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %v, want 8", got)
	}
}

// TestConcurrentRegistry hammers every metric type and the exposition
// path from many goroutines; -race gives it teeth, and the counter
// totals prove no update was lost.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(128)
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers register (idempotently), half reuse —
			// registration races with updates and scrapes.
			c := r.Counter("vihot_conc_total", "c", "kind", "x")
			g := r.Gauge("vihot_conc_gauge", "g")
			h := r.Histogram("vihot_conc_seconds", "h", LatencyBuckets())
			for i := 0; i < iters; i++ {
				c.Add(1)
				g.Add(1)
				h.Observe(float64(i%1000) * 1e-6)
				tr.Record("s", "stage", float64(i), int64(i))
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
					_ = h.Quantile(0.99)
					_ = tr.Dump()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("vihot_conc_total", "c", "kind", "x").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("vihot_conc_seconds", "h", LatencyBuckets()).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := tr.Dump(); got.Recorded != workers*iters || len(got.Spans) != 128 {
		t.Fatalf("tracer recorded %d spans kept %d, want %d/128", got.Recorded, len(got.Spans), workers*iters)
	}
}
