package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4)
	// Fixed clock: StartNS arithmetic becomes exact.
	now := tr.t0.Add(time.Millisecond)
	tr.nowFunc = func() time.Time { return now }
	for i := 0; i < 6; i++ {
		tr.Record("s", "stage", float64(i), int64(i))
	}
	d := tr.Dump()
	if d.Recorded != 6 || d.Overwritten != 2 || len(d.Spans) != 4 {
		t.Fatalf("dump = %d recorded, %d overwritten, %d kept; want 6/2/4", d.Recorded, d.Overwritten, len(d.Spans))
	}
	for i, sp := range d.Spans {
		if want := float64(i + 2); sp.StreamT != want {
			t.Fatalf("span %d StreamT = %v, want %v (oldest-first order)", i, sp.StreamT, want)
		}
		if want := int64(time.Millisecond) - sp.DurNS; sp.StartNS != want {
			t.Fatalf("span %d StartNS = %d, want %d", i, sp.StartNS, want)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Record("a", "x", 1, 10)
	tr.Record("b", "y", 2, 20)
	d := tr.Dump()
	if d.Recorded != 2 || d.Overwritten != 0 || len(d.Spans) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Spans[0].Session != "a" || d.Spans[1].Session != "b" {
		t.Fatal("partial ring out of order")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Record("car-1", "track", 3.25, 1500)
	tr.Record("", "dwell", 3.5, 900)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 2 || d.Recorded != 2 {
		t.Fatalf("round trip lost spans: %+v", d)
	}
	got := d.Spans[0]
	if got.Session != "car-1" || got.Stage != "track" || got.StreamT != 3.25 || got.DurNS != 1500 {
		t.Fatalf("span corrupted: %+v", got)
	}
	if d.Spans[1].Session != "" {
		t.Fatal("empty session did not survive omitempty round trip")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if got := cap(NewTracer(0).ring); got != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTraceCapacity)
	}
}
