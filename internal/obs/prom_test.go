package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// buildGoldenRegistry constructs a registry covering every exposition
// shape: labelled and unlabelled counters, gauges, callback metrics,
// escaping, and a histogram with all three derived series.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("vihot_golden_items_total", "items ingested", "kind", "phase").Add(12)
	r.Counter("vihot_golden_items_total", "items ingested", "kind", "frame").Add(3)
	r.Counter("vihot_golden_plain_total", "an unlabelled counter").Add(7)
	r.Gauge("vihot_golden_sessions_open", "open sessions").Set(4)
	r.Gauge("vihot_golden_ratio", "a fractional gauge").Set(0.625)
	r.CounterFunc("vihot_golden_sampled_total", "callback counter", func() uint64 { return 99 })
	r.GaugeFunc("vihot_golden_temp_celsius", "callback gauge", func() float64 { return -1.5 })
	r.Counter("vihot_golden_escaped_total", "help with \\ and\nnewline",
		"path", `C:\drive "quoted"`+"\n").Add(1)
	h := r.Histogram("vihot_golden_latency_seconds", "stage latency", []float64{0.001, 0.01, 0.1}, "stage", "track")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden locks the exposition format byte-for-byte: a
// scraper parses this text, so format drift is an interface break, not
// a cosmetic change. Run with -update to accept an intentional change
// and review the diff in git.
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/obs -run TestPrometheusGolden -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionParses walks the output line-by-line checking the
// shape every Prometheus parser assumes, independent of the golden
// bytes: comment lines are HELP/TYPE, samples are `name[{labels}]
// value`, and histogram buckets are cumulative.
func TestExpositionParses(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var lastBucket uint64
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		if !validName(name) {
			t.Fatalf("invalid sample name in %q", line)
		}
		if strings.HasPrefix(line, "vihot_golden_latency_seconds_bucket") {
			var v uint64
			for _, c := range line[sp+1:] {
				v = v*10 + uint64(c-'0')
			}
			if v < lastBucket {
				t.Fatalf("buckets not cumulative at %q", line)
			}
			lastBucket = v
		}
	}
}
