package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the observability endpoint: /metrics for the registry,
// /debug/pprof/… for the runtime profiler, and — when tr is non-nil —
// /trace for a JSON span dump. pprof is wired onto this private mux
// explicitly rather than through net/http/pprof's DefaultServeMux side
// effect, so importing obs never mounts profiling on a mux the caller
// didn't ask for.
func NewMux(r *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = tr.WriteJSON(w)
		})
	}
	return mux
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the server (for Shutdown/Close) and the bound
// address (useful with ":0"). tr may be nil.
func Serve(addr string, r *Registry, tr *Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(r, tr)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
