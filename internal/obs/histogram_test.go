package obs

import (
	"math"
	"sort"
	"testing"

	"vihot/internal/stats"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100, math.NaN()} {
		h.Observe(v)
	}
	// le semantics: v lands in the first bucket whose bound is ≥ v.
	want := []uint64{2, 2, 2, 2} // {0.5,1}, {1.5,2}, {3,4}, {5,100}; NaN dropped
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+5+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestHistogramQuantileAgainstReference checks the interpolated
// quantile against the exact percentile of the same sample set: the
// histogram estimate must land within the width of the bucket holding
// the true value — the best any fixed-bucket sketch can promise.
func TestHistogramQuantileAgainstReference(t *testing.T) {
	bounds := ExpBuckets(1e-4, 2, 16)
	h := NewHistogram(bounds)
	rng := stats.NewRNG(7)
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over the bucket range, the shape latency data takes.
		v := 1e-4 * math.Pow(2, rng.Float64()*15)
		h.Observe(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		exact, err := stats.Percentile(xs, q*100)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance: the bucket containing the exact value.
		i := sort.SearchFloat64s(bounds, exact)
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[len(bounds)-1]
		if i < len(bounds) {
			hi = bounds[i]
		}
		if got < lo || got > hi {
			t.Errorf("q=%v: estimate %v outside bucket [%v, %v] of exact %v", q, got, lo, hi, exact)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram produced a quantile")
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10) // overflow bucket
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("q=1 with overflow = %v, want clamp to 2", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q produced a value")
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q=0 = %v, want 0 (lower edge of first bucket)", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.1, 0.1, 3)
	for i, want := range []float64{0.1, 0.2, 0.3} {
		if math.Abs(lin[i]-want) > 1e-12 {
			t.Fatalf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
	exp := ExpBuckets(1, 10, 3)
	for i, want := range []float64{1, 10, 100} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lb := LatencyBuckets()
	if lb[0] != 1e-6 || len(lb) != 22 {
		t.Fatalf("LatencyBuckets = [%v…] len %d", lb[0], len(lb))
	}
	for _, bad := range []func(){
		func() { NewHistogram(nil) },
		func() { NewHistogram([]float64{1, 1}) },
		func() { NewHistogram([]float64{math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid bounds accepted")
				}
			}()
			bad()
		}()
	}
}
