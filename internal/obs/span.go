package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one recorded unit of pipeline work. It lives on two
// timelines at once: StreamT anchors the span at the *stream-time*
// instant of the item being processed (the sensor timestamp the
// degradation machine and golden traces run on), while StartNS/DurNS
// record when and for how long the work ran on the *wall clock* of the
// serving process. Offline analysis joins the two — "how much wall
// latency did the pipeline spend at stream second 3.2, and in which
// stage?" — which neither timeline answers alone.
type Span struct {
	Session string  `json:"session,omitempty"`
	Stage   string  `json:"stage"`
	StreamT float64 `json:"stream_t"` // stream-time anchor (seconds)
	StartNS int64   `json:"start_ns"` // wall-clock start, ns since the tracer was created
	DurNS   int64   `json:"dur_ns"`   // wall-clock duration
}

// Tracer records spans into a fixed-capacity ring: the newest spans
// win, and the number of overwritten older spans is tallied so a dump
// is honest about what it no longer holds. Record takes one short
// mutex hold — tracing is opt-in, and the spans it guards are written
// from worker goroutines while dumps run concurrently, so the lock is
// the simplest correct design (the metrics hot path never goes through
// here). A nil Tracer discards spans.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int    // ring slot the next span lands in
	total   uint64 // spans ever recorded
	t0      time.Time
	nowFunc func() time.Time // test seam; nil means time.Now
}

// DefaultTraceCapacity is the ring size NewTracer(0) selects: at the
// serving stack's ~2k spans/s per busy session it holds the last
// several seconds of work, at ~64 B a span.
const DefaultTraceCapacity = 65536

// NewTracer returns a tracer holding the most recent capacity spans
// (DefaultTraceCapacity when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, 0, capacity), t0: time.Now()}
}

// now returns the tracer's wall clock.
func (tr *Tracer) now() time.Time {
	if tr.nowFunc != nil {
		return tr.nowFunc()
	}
	return time.Now()
}

// Record appends one span whose work just finished, taking durNS of
// wall time anchored at stream time streamT. A nil Tracer discards it.
func (tr *Tracer) Record(session, stage string, streamT float64, durNS int64) {
	if tr == nil {
		return
	}
	end := tr.now()
	sp := Span{
		Session: session,
		Stage:   stage,
		StreamT: streamT,
		StartNS: end.Sub(tr.t0).Nanoseconds() - durNS,
		DurNS:   durNS,
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, sp)
	} else {
		tr.ring[tr.next] = sp
	}
	tr.next = (tr.next + 1) % cap(tr.ring)
	tr.total++
	tr.mu.Unlock()
}

// TraceDump is the JSON export schema: the retained spans in record
// order plus enough bookkeeping to know how much history was lost.
type TraceDump struct {
	Recorded    uint64 `json:"recorded"`    // spans ever recorded
	Overwritten uint64 `json:"overwritten"` // spans lost to ring wrap
	Spans       []Span `json:"spans"`       // oldest → newest
}

// Dump snapshots the retained spans, oldest first. A nil Tracer dumps
// an empty trace.
func (tr *Tracer) Dump() TraceDump {
	if tr == nil {
		return TraceDump{Spans: []Span{}}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	spans := make([]Span, 0, len(tr.ring))
	if len(tr.ring) < cap(tr.ring) {
		spans = append(spans, tr.ring...)
	} else {
		spans = append(spans, tr.ring[tr.next:]...)
		spans = append(spans, tr.ring[:tr.next]...)
	}
	return TraceDump{
		Recorded:    tr.total,
		Overwritten: tr.total - uint64(len(spans)),
		Spans:       spans,
	}
}

// WriteJSON writes the Dump as indented JSON.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr.Dump())
}

// ReadTrace parses a TraceDump previously written by WriteJSON.
func ReadTrace(r io.Reader) (TraceDump, error) {
	var d TraceDump
	err := json.NewDecoder(r).Decode(&d)
	return d, err
}
