package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: observations land in the
// first bucket whose upper bound is ≥ the value (Prometheus `le`
// semantics), with an implicit +Inf overflow bucket. Observe is one
// binary search plus three atomic adds; there is no lock anywhere.
// A nil Histogram discards observations, so an instrumented call site
// costs one nil check when the histogram was never registered.
type Histogram struct {
	bounds []float64       // strictly increasing finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge // observed-value sum (CAS float add)
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be non-empty, finite, and strictly increasing. Most callers
// want Registry.Histogram instead, which also registers the series.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bucket bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram bucket bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// sameBounds reports whether two bound slices are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Observe records one value. NaN observations are dropped (a latency
// or ratio that failed to compute carries no distribution information).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound ≥ v, i.e. the smallest le-bucket that contains v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes server-side.
// Values in the +Inf overflow bucket clamp to the largest finite
// bound. Returns NaN for an empty histogram, a nil Histogram, or q
// outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: nothing credible beyond the last bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if rank <= cum {
				return lo
			}
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	// A concurrent Observe tore count vs buckets; clamp to the top.
	return h.bounds[len(h.bounds)-1]
}

// LinearBuckets returns n bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n ≥ 1 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n ≥ 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default bucket scheme for wall-clock stage
// latencies, in seconds: powers of two from 1 µs to ~2.1 s. The
// pipeline's whole per-frame budget is sub-millisecond, so the bottom
// decade carries the resolution and the top exists only to make
// pathology (a blocked sink, a stalled scrape) visible.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 22) }
