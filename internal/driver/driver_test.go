package driver

import (
	"math"
	"testing"
	"testing/quick"

	"vihot/internal/geom"
	"vihot/internal/stats"
)

func TestTrackInterpolation(t *testing.T) {
	tr := NewTrack(Key{T: 0, V: 0}, Key{T: 1, V: 10})
	if got := tr.At(-1); got != 0 {
		t.Errorf("before-first = %v", got)
	}
	if got := tr.At(2); got != 10 {
		t.Errorf("after-last = %v", got)
	}
	if got := tr.At(0.5); got != 5 {
		t.Errorf("midpoint = %v (smoothstep is symmetric)", got)
	}
	// Smoothstep: zero slope at keyframes.
	if r := tr.Rate(0.001); math.Abs(r) > 0.5 {
		t.Errorf("rate at keyframe = %v, want ≈0", r)
	}
	// Peak rate at midpoint = 1.5·Δv/Δt.
	if r := tr.Rate(0.5); math.Abs(r-15) > 0.1 {
		t.Errorf("peak rate = %v, want 15", r)
	}
}

func TestTrackEmpty(t *testing.T) {
	tr := NewTrack()
	if tr.At(5) != 0 || tr.Rate(5) != 0 {
		t.Error("empty track must evaluate to 0")
	}
	if tr.End() != 0 || tr.Keys() != 0 {
		t.Error("empty track accessors")
	}
}

func TestTrackSortsKeys(t *testing.T) {
	tr := NewTrack(Key{T: 2, V: 20}, Key{T: 0, V: 0}, Key{T: 1, V: 10})
	if got := tr.At(1); got != 10 {
		t.Errorf("At(1) = %v after sort", got)
	}
}

func TestTrackAppendClampsTime(t *testing.T) {
	tr := NewTrack(Key{T: 5, V: 1})
	tr.Append(3, 2) // earlier than last: clamped to 5
	if tr.End() != 5 {
		t.Errorf("End = %v", tr.End())
	}
	if tr.Keys() != 2 {
		t.Errorf("Keys = %d", tr.Keys())
	}
}

func TestTrackMonotoneBetweenKeys(t *testing.T) {
	f := func(v1, v2 float64) bool {
		if math.Abs(v1) > 1e6 || math.Abs(v2) > 1e6 {
			return true
		}
		tr := NewTrack(Key{T: 0, V: v1}, Key{T: 1, V: v2})
		prev := tr.At(0)
		for x := 0.05; x <= 1; x += 0.05 {
			cur := tr.At(x)
			if v2 >= v1 && cur < prev-1e-9 {
				return false
			}
			if v2 <= v1 && cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPosTrack(t *testing.T) {
	tr := NewPosTrack()
	if tr.At(1) != (geom.Vec3{}) {
		t.Error("empty PosTrack must return zero")
	}
	tr.Append(0, geom.Vec3{X: 1})
	tr.Append(1, geom.Vec3{X: 3})
	if got := tr.At(0.5); math.Abs(got.X-2) > 1e-9 {
		t.Errorf("midpoint = %v", got)
	}
	if got := tr.At(-1); got.X != 1 {
		t.Errorf("clamp before = %v", got)
	}
	if got := tr.At(9); got.X != 3 {
		t.Errorf("clamp after = %v", got)
	}
	tr.Append(0.5, geom.Vec3{X: 9}) // out of order: clamped
	if tr.Keys() != 3 {
		t.Errorf("Keys = %d", tr.Keys())
	}
}

func TestDriverProfiles(t *testing.T) {
	for _, p := range []Profile{DriverA(), DriverB(), DriverC()} {
		if p.TurnSpeedDPS < 100 || p.TurnSpeedDPS > 150 {
			t.Errorf("%s: turn speed %v outside the paper's range", p.Name, p.TurnSpeedDPS)
		}
		if p.HeightCM < 170 || p.HeightCM > 182 {
			t.Errorf("%s: height %v outside 170–182 cm", p.Name, p.HeightCM)
		}
	}
	// Taller drivers sit higher.
	if DriverC().headBase().Z <= DriverA().headBase().Z {
		t.Error("taller driver must sit higher")
	}
}

func TestSweepScenarioSegments(t *testing.T) {
	sc, segs := SweepScenario(DriverA(), 5, 6, 110)
	if len(segs) != 5 {
		t.Fatalf("segments = %d", len(segs))
	}
	for i, seg := range segs {
		if seg.Position != i {
			t.Errorf("segment %d position = %d", i, seg.Position)
		}
		if !(seg.Start < seg.SettleEnd && seg.SettleEnd < seg.End) {
			t.Errorf("segment %d times out of order: %+v", i, seg)
		}
		// Facing front during settle.
		mid := (seg.Start + seg.SettleEnd) / 2
		if yaw := sc.HeadYaw.At(mid); math.Abs(yaw) > 1 {
			t.Errorf("segment %d yaw during settle = %v", i, yaw)
		}
	}
	if sc.Duration <= segs[4].End-0.5 {
		t.Error("scenario shorter than its segments")
	}
}

func TestSweepScenarioReachesExtremes(t *testing.T) {
	p := DriverA()
	sc, segs := SweepScenario(p, 1, 10, 110)
	seg := segs[0]
	lo, hi := 0.0, 0.0
	for ts := seg.SettleEnd; ts < seg.End; ts += 0.01 {
		y := sc.HeadYaw.At(ts)
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if lo > -p.MaxYawDeg+2 || hi < p.MaxYawDeg-2 {
		t.Errorf("sweep range [%v, %v], want ±%v", lo, hi, p.MaxYawDeg)
	}
}

func TestSweepScenarioSpeed(t *testing.T) {
	sc, segs := SweepScenario(DriverA(), 1, 10, 120)
	var peak float64
	for ts := segs[0].SettleEnd; ts < segs[0].End; ts += 0.005 {
		if r := math.Abs(sc.HeadYaw.Rate(ts)); r > peak {
			peak = r
		}
	}
	if peak < 100 || peak > 145 {
		t.Errorf("peak head speed = %v, want ≈120", peak)
	}
}

func TestSweepScenarioPositionsDistinct(t *testing.T) {
	sc, segs := SweepScenario(DriverA(), 3, 4, 110)
	p0 := sc.HeadPos.At((segs[0].Start + segs[0].End) / 2)
	p2 := sc.HeadPos.At((segs[2].Start + segs[2].End) / 2)
	if p0.Dist(p2) < 0.05 {
		t.Errorf("positions too close: %v", p0.Dist(p2))
	}
}

func TestDrivingScenarioBasics(t *testing.T) {
	rng := stats.NewRNG(3)
	sc := DrivingScenario(rng, DriverA(), 30, GlanceOptions{})
	if sc.Duration != 30 {
		t.Errorf("duration = %v", sc.Duration)
	}
	// The driver glances: yaw must leave zero at some point.
	moved := false
	for ts := 0.0; ts < 30; ts += 0.05 {
		if math.Abs(sc.HeadYaw.At(ts)) > 20 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("driver never glanced in 30 s")
	}
	// Without steering the wheel stays at zero.
	for ts := 0.0; ts < 30; ts += 0.5 {
		if sc.Wheel.At(ts) != 0 {
			t.Error("wheel moved without Steering option")
			break
		}
	}
}

func TestDrivingScenarioSteering(t *testing.T) {
	rng := stats.NewRNG(4)
	sc := DrivingScenario(rng, DriverA(), 60, GlanceOptions{Steering: true, SteerProb: 1})
	var wheelMax float64
	for ts := 0.0; ts < 60; ts += 0.02 {
		if w := math.Abs(sc.Wheel.At(ts)); w > wheelMax {
			wheelMax = w
		}
	}
	if wheelMax < 60 {
		t.Errorf("no real steering event: max wheel %v°", wheelMax)
	}
	// Car yaw rate follows the wheel at speed.
	var rateMax float64
	for ts := 0.0; ts < 60; ts += 0.02 {
		if r := math.Abs(sc.CarYawRateDPS(ts)); r > rateMax {
			rateMax = r
		}
	}
	if rateMax < 5 {
		t.Errorf("car never turned: max yaw rate %v°/s", rateMax)
	}
}

func TestSteeringPrecededByHeadTurn(t *testing.T) {
	// Sec. 3.6.1: the head turn comes before the steering input.
	rng := stats.NewRNG(5)
	sc := DrivingScenario(rng, DriverA(), 120, GlanceOptions{Steering: true, SteerProb: 1})
	// Find the first large steering event.
	for ts := 0.0; ts < 120; ts += 0.01 {
		if math.Abs(sc.Wheel.At(ts)) > 40 {
			// Within the preceding two seconds the head must have been
			// turned away from the front.
			turned := false
			for back := ts - 2.5; back < ts; back += 0.02 {
				if math.Abs(sc.HeadYaw.At(back)) > 15 {
					turned = true
					break
				}
			}
			if !turned {
				t.Error("steering event without preparatory head turn")
			}
			return
		}
	}
	t.Skip("no steering event found")
}

func TestDrivingScenarioPassenger(t *testing.T) {
	rng := stats.NewRNG(6)
	sc := DrivingScenario(rng, DriverA(), 60, GlanceOptions{PassengerTurns: true})
	if sc.PassengerYaw == nil {
		t.Fatal("passenger track missing")
	}
	moved := false
	for ts := 0.0; ts < 60; ts += 0.1 {
		if math.Abs(sc.PassengerYaw.At(ts)) > 20 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("passenger never moved")
	}
}

func TestCarYawRateZeroWithoutWheel(t *testing.T) {
	sc := &Scenario{SpeedMPS: 10}
	if sc.CarYawRateDPS(1) != 0 {
		t.Error("no wheel track must mean zero yaw rate")
	}
}

func TestSteeringOnlyScenario(t *testing.T) {
	sc := SteeringOnlyScenario(10)
	// Head perfectly still.
	for ts := 0.0; ts < 10; ts += 0.1 {
		if sc.HeadYaw.At(ts) != 0 {
			t.Fatal("head moved in steering-only scenario")
		}
	}
	// Wheel busy.
	var wheelMax float64
	for ts := 0.0; ts < 10; ts += 0.02 {
		if w := math.Abs(sc.Wheel.At(ts)); w > wheelMax {
			wheelMax = w
		}
	}
	if wheelMax < 100 {
		t.Errorf("wheel max = %v", wheelMax)
	}
}

func TestHeadOnlyScenario(t *testing.T) {
	sc := HeadOnlyScenario(DriverA(), 10)
	var wheelMax float64
	if sc.Wheel != nil {
		for ts := 0.0; ts < 10; ts += 0.05 {
			if w := math.Abs(sc.Wheel.At(ts)); w > wheelMax {
				wheelMax = w
			}
		}
	}
	if wheelMax != 0 {
		t.Error("wheel moved in head-only scenario")
	}
}

func TestStateDefaults(t *testing.T) {
	sc := &Scenario{}
	st := sc.State(1)
	if st.HeadPos == (geom.Vec3{}) {
		t.Error("state must default the head position to the seat base")
	}
}

func TestAddPositionDrift(t *testing.T) {
	rng := stats.NewRNG(9)
	sc, _ := SweepScenario(DriverA(), 1, 20, 110)
	orig := sc.HeadPos.At(10)
	AddPositionDrift(sc, rng, 0.01)
	// The drifted track must wander but stay bounded by 3·std per axis.
	var maxDev float64
	for ts := 0.0; ts < 20; ts += 0.5 {
		d := sc.HeadPos.At(ts).Sub(orig)
		for _, v := range []float64{d.X, d.Y, d.Z} {
			if math.Abs(v) > maxDev {
				maxDev = math.Abs(v)
			}
		}
	}
	if maxDev == 0 {
		t.Error("drift had no effect")
	}
	if maxDev > 0.031 {
		t.Errorf("drift exceeded the 3·std clamp: %v", maxDev)
	}
	// No-ops must be safe.
	AddPositionDrift(sc, rng, 0)
	AddPositionDrift(&Scenario{}, rng, 0.01)
}

func TestLaneWobble(t *testing.T) {
	sc := &Scenario{SpeedMPS: 6, LaneWobbleDeg: 2, LaneWobbleHz: 0.5, Duration: 10}
	var maxWheel, maxRate float64
	for ts := 0.0; ts < 10; ts += 0.01 {
		if w := math.Abs(sc.State(ts).WheelDeg); w > maxWheel {
			maxWheel = w
		}
		if r := math.Abs(sc.CarYawRateDPS(ts)); r > maxRate {
			maxRate = r
		}
	}
	if maxWheel < 1.5 || maxWheel > 2.5 {
		t.Errorf("wobble amplitude = %v", maxWheel)
	}
	// Lane keeping must stay below the turn detector's threshold.
	if maxRate > 3 {
		t.Errorf("lane wobble yaw rate = %v°/s, would trip the identifier", maxRate)
	}
}
