// Package driver generates the human behaviour the simulator feeds
// the cabin scene: head-turning trajectories at realistic speeds,
// glance patterns anchored on the road ahead, steering events that
// follow a preparatory head turn by about a second (the Land & Tatler
// timing the paper cites in Sec. 3.6.1), passenger movements, and the
// slow head-position drift that makes position-orientation joint
// profiling necessary.
package driver

import (
	"sort"

	"vihot/internal/geom"
)

// Key is a keyframe of a scalar track.
type Key struct {
	T float64 // seconds
	V float64
}

// Track is a piecewise-smooth scalar signal defined by keyframes with
// smoothstep interpolation between them. Smoothstep has zero slope at
// every keyframe, which matches how heads move: dwell, accelerate,
// coast, decelerate, dwell. The peak rate between two keyframes is
// 1.5·Δv/Δt, which generators use to hit target head-turning speeds.
type Track struct {
	keys []Key
}

// NewTrack builds a track from keyframes, sorting them by time.
// Tracks with no keyframes evaluate to 0 everywhere.
func NewTrack(keys ...Key) *Track {
	ks := append([]Key(nil), keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i].T < ks[j].T })
	return &Track{keys: ks}
}

// Append adds a keyframe at or after the last existing key; earlier
// timestamps are clamped to the end to preserve ordering.
func (tr *Track) Append(t, v float64) {
	if n := len(tr.keys); n > 0 && t < tr.keys[n-1].T {
		t = tr.keys[n-1].T
	}
	tr.keys = append(tr.keys, Key{T: t, V: v})
}

// Keys returns the number of keyframes.
func (tr *Track) Keys() int { return len(tr.keys) }

// End returns the time of the last keyframe (0 for an empty track).
func (tr *Track) End() float64 {
	if len(tr.keys) == 0 {
		return 0
	}
	return tr.keys[len(tr.keys)-1].T
}

// smoothstep is the classic 3t²-2t³ easing on [0,1].
func smoothstep(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}

// At evaluates the track at time t, clamping before the first and
// after the last keyframe.
func (tr *Track) At(t float64) float64 {
	n := len(tr.keys)
	if n == 0 {
		return 0
	}
	if t <= tr.keys[0].T {
		return tr.keys[0].V
	}
	if t >= tr.keys[n-1].T {
		return tr.keys[n-1].V
	}
	i := sort.Search(n, func(i int) bool { return tr.keys[i].T >= t })
	a, b := tr.keys[i-1], tr.keys[i]
	if b.T == a.T {
		return b.V
	}
	frac := smoothstep((t - a.T) / (b.T - a.T))
	return a.V + (b.V-a.V)*frac
}

// Rate returns the numerical time derivative of the track at t in
// units/second (central difference over 2 ms).
func (tr *Track) Rate(t float64) float64 {
	const h = 1e-3
	return (tr.At(t+h) - tr.At(t-h)) / (2 * h)
}

// PosTrack is a piecewise-smooth 3-D position signal, used for the
// driver's head center.
type PosTrack struct {
	times []float64
	pts   []geom.Vec3
}

// NewPosTrack builds a position track; keyframes must be provided in
// ascending time order (generators always do).
func NewPosTrack() *PosTrack { return &PosTrack{} }

// Append adds a keyframe; earlier timestamps are clamped to the end.
func (tr *PosTrack) Append(t float64, p geom.Vec3) {
	if n := len(tr.times); n > 0 && t < tr.times[n-1] {
		t = tr.times[n-1]
	}
	tr.times = append(tr.times, t)
	tr.pts = append(tr.pts, p)
}

// Keys returns the number of keyframes.
func (tr *PosTrack) Keys() int { return len(tr.times) }

// At evaluates the position at time t with smoothstep easing,
// clamping outside the keyframe span. An empty track returns the zero
// vector.
func (tr *PosTrack) At(t float64) geom.Vec3 {
	n := len(tr.times)
	if n == 0 {
		return geom.Vec3{}
	}
	if t <= tr.times[0] {
		return tr.pts[0]
	}
	if t >= tr.times[n-1] {
		return tr.pts[n-1]
	}
	i := sort.SearchFloat64s(tr.times, t)
	if tr.times[i] == t {
		return tr.pts[i]
	}
	a, b := tr.times[i-1], tr.times[i]
	frac := smoothstep((t - a) / (b - a))
	return tr.pts[i-1].Lerp(tr.pts[i], frac)
}
