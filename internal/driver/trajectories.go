package driver

import (
	"math"

	"vihot/internal/cabin"
	"vihot/internal/geom"
	"vihot/internal/stats"
)

// This file holds the trajectory families beyond the paper's own
// experiments — the neighboring workloads the scenario corpus replays
// (PAPERS.md: CarFi rider localization, Kotaru & Katti's 3-D position
// tracking) plus a drowsiness-pattern long-haul scan. Each is built
// from the same Track/PosTrack keyframe primitives as DrivingScenario,
// so the whole corpus shares one interpolation and ground-truth model.

// DrowsyScenario generates a long-haul monotony trip: long stretches
// facing the road with only tiny yaw wander, occasional slow mirror
// scans (a tired driver turns later and slower), recurring slow nods,
// and microsleep head droops — the pitch excursions a drowsiness
// monitor watches for. The head also slumps slowly downward between
// recoveries.
func DrowsyScenario(rng *stats.RNG, p Profile, duration float64) *Scenario {
	if duration <= 0 {
		duration = 120
	}
	yaw := NewTrack()
	pitch := NewTrack()
	pos := NewPosTrack()
	base := p.headBase()

	yaw.Append(0, 0)
	pitch.Append(0, 0)
	pos.Append(0, base)

	// Yaw: rare, slow scans at 60% of the driver's usual turn speed.
	t := 0.0
	slowSpeed := math.Max(p.TurnSpeedDPS*0.6, 40)
	for t < duration {
		t += rng.Uniform(8, 18)
		if t >= duration {
			break
		}
		target := rng.Uniform(0.3, 0.7) * p.MaxYawDeg
		if rng.Bool(0.5) {
			target = -target
		}
		d := sweepDuration(target, slowSpeed)
		yaw.Append(t, 0)
		yaw.Append(t+d, target)
		hold := p.GlanceHoldS * rng.Uniform(1.2, 2.0) // tired dwell runs long
		yaw.Append(t+d+hold, target)
		yaw.Append(t+2*d+hold, 0)
		t += 2*d + hold
	}
	yaw.Append(duration, yaw.At(duration))

	// Pitch: slow nodding all along, plus droop episodes — the head
	// dips chin-down over ~1.5 s, hangs, and snaps back up in ~0.3 s.
	t = 0.0
	slump := 0.0
	for t < duration {
		gap := rng.Uniform(6, 14)
		t += gap
		if t >= duration {
			break
		}
		if rng.Bool(0.35) {
			// Microsleep droop.
			depth := -rng.Uniform(14, 28)
			fall := rng.Uniform(1.0, 2.0)
			hang := rng.Uniform(0.4, 1.2)
			pitch.Append(t, 0)
			pitch.Append(t+fall, depth)
			pitch.Append(t+fall+hang, depth)
			pitch.Append(t+fall+hang+0.3, 2) // startle overshoot
			pitch.Append(t+fall+hang+0.8, 0)
			t += fall + hang + 0.8
			// The startle recovers the slump too.
			slump = 0
			pos.Append(t, base)
		} else {
			// Plain slow nod.
			depth := -rng.Uniform(3, 7)
			pitch.Append(t, 0)
			pitch.Append(t+0.8, depth)
			pitch.Append(t+1.6, 0)
			t += 1.6
			// The posture keeps settling between startles.
			slump = math.Min(slump+rng.Uniform(0.002, 0.006), 0.035)
			pos.Append(t, base.Add(geom.Vec3{X: slump * 0.4, Z: -slump}))
		}
	}
	pitch.Append(duration, pitch.At(duration))
	pos.Append(duration, pos.At(duration))

	return &Scenario{
		Name:          "drowsy",
		Duration:      duration,
		SpeedMPS:      6.5,
		HeadYaw:       yaw,
		HeadPitch:     pitch,
		HeadPos:       pos,
		LaneWobbleDeg: 0.8, // tired lane keeping wanders more
		LaneWobbleHz:  0.22,
	}
}

// PositionScanScenario generates a VR-style 3-D position-tracking
// workload (Kotaru & Katti, PAPERS.md): the head moves between random
// 3-D waypoints inside a box around the seat while the subject scans
// freely in yaw and pitch — position and orientation both vary
// continuously, unlike the paper's lean-grid profiling.
func PositionScanScenario(rng *stats.RNG, p Profile, duration float64) *Scenario {
	if duration <= 0 {
		duration = 60
	}
	yaw := NewTrack()
	pitch := NewTrack()
	pos := NewPosTrack()
	base := p.headBase()

	yaw.Append(0, 0)
	pitch.Append(0, 0)
	pos.Append(0, base)

	// Position: a new waypoint every 1–3 s inside ±9 cm lateral/
	// longitudinal and ±6 cm vertical — the scale of seated VR motion.
	t := 0.0
	for t < duration {
		t += rng.Uniform(1, 3)
		wp := base.Add(geom.Vec3{
			X: rng.Uniform(-0.09, 0.09),
			Y: rng.Uniform(-0.09, 0.09),
			Z: rng.Uniform(-0.06, 0.06),
		})
		pos.Append(t, wp)
	}

	// Orientation: continuous scanning, wider and faster than driving
	// glances, with free pitch excursions.
	t = 0.0
	for t < duration {
		target := rng.Uniform(-1, 1) * p.MaxYawDeg
		d := sweepDuration(target-yaw.At(t), p.TurnSpeedDPS)
		t += math.Max(d, 0.2)
		yaw.Append(t, target)
		if rng.Bool(0.4) {
			pt := rng.Uniform(-18, 22)
			pitch.Append(t, pt)
			pitch.Append(t+rng.Uniform(0.4, 1.0), 0)
		}
		t += rng.Uniform(0.1, 0.6)
	}
	yaw.Append(duration, yaw.At(duration))
	pitch.Append(duration, pitch.At(duration))
	pos.Append(duration, pos.At(duration))

	return &Scenario{
		Name:     "pos3d",
		Duration: duration,
		SpeedMPS: 0, // stationary cabin: a parked car or a room
		HeadYaw:  yaw,
		HeadPitch: pitch,
		HeadPos:  pos,
	}
}

// RiderScenario generates a CarFi-style rider-localization workload
// (PAPERS.md): the tracked occupant shifts between nPositions discrete
// seat-lean positions — the same grid the profiler fingerprints — and
// sits mostly still between shifts, with small occasional glances. The
// informative signal is which position the occupant holds, so the
// pipeline's per-estimate Position output is the localization answer.
func RiderScenario(rng *stats.RNG, p Profile, duration float64, nPositions int) *Scenario {
	if duration <= 0 {
		duration = 60
	}
	if nPositions < 2 {
		nPositions = 5
	}
	yaw := NewTrack()
	pos := NewPosTrack()
	base := p.headBase()

	seat := func(i int) geom.Vec3 {
		return base.Add(cabin.HeadPosition(i, nPositions).Sub(cabin.DriverHeadBase))
	}

	cur := nPositions / 2
	yaw.Append(0, 0)
	pos.Append(0, seat(cur))

	t := 0.0
	for t < duration {
		// Hold the position; riders sit still far longer than drivers
		// glance.
		t += rng.Uniform(4, 9)
		if t >= duration {
			break
		}
		if rng.Bool(0.4) {
			// A small glance without changing seat-lean.
			target := rng.Uniform(15, 45)
			if rng.Bool(0.5) {
				target = -target
			}
			d := sweepDuration(target, p.TurnSpeedDPS*0.8)
			yaw.Append(t, 0)
			yaw.Append(t+d, target)
			yaw.Append(t+d+rng.Uniform(0.5, 1.5), target)
			yaw.Append(t+2*d+1.5, 0)
			t += 2*d + 1.5
			continue
		}
		// Shift to a neighboring lean position over ~1 s.
		next := cur + 1
		if cur == nPositions-1 || (cur > 0 && rng.Bool(0.5)) {
			next = cur - 1
		}
		pos.Append(t, seat(cur))
		pos.Append(t+rng.Uniform(0.8, 1.4), seat(next))
		cur = next
		t += 1.4
	}
	yaw.Append(duration, yaw.At(duration))
	pos.Append(duration, pos.At(duration))

	return &Scenario{
		Name:     "rider",
		Duration: duration,
		SpeedMPS: 8, // ride-share cruising
		HeadYaw:  yaw,
		HeadPos:  pos,
	}
}

// StillScenario keeps the subject front-facing and motionless — the
// noise-floor control every corpus needs.
func StillScenario(p Profile, duration float64) *Scenario {
	if duration <= 0 {
		duration = 30
	}
	return &Scenario{
		Name:     "still",
		Duration: duration,
		SpeedMPS: 0,
		HeadYaw:  NewTrack(Key{T: 0, V: 0}),
		HeadPos:  constPos(p.headBase()),
	}
}
