package driver

import (
	"math"

	"vihot/internal/cabin"
	"vihot/internal/geom"
	"vihot/internal/stats"
)

// Profile captures one driver's habits and physique — the per-driver
// differences behind Fig. 13d.
type Profile struct {
	Name         string
	HeightCM     float64 // maps to head height in the cabin
	TurnSpeedDPS float64 // typical peak head-turning speed
	MaxYawDeg    float64 // how far they turn to check mirrors
	GlanceHoldS  float64 // dwell at the glance target
	GlanceRateHz float64 // how often they glance away from the road
}

// The three test drivers of Sec. 5.2.5 (heights 170–182 cm).
func DriverA() Profile {
	return Profile{Name: "Driver A", HeightCM: 170, TurnSpeedDPS: 120, MaxYawDeg: 75, GlanceHoldS: 0.5, GlanceRateHz: 0.25}
}
func DriverB() Profile {
	return Profile{Name: "Driver B", HeightCM: 176, TurnSpeedDPS: 110, MaxYawDeg: 80, GlanceHoldS: 0.7, GlanceRateHz: 0.2}
}
func DriverC() Profile {
	return Profile{Name: "Driver C", HeightCM: 182, TurnSpeedDPS: 135, MaxYawDeg: 70, GlanceHoldS: 0.4, GlanceRateHz: 0.3}
}

// headBase returns the profile's head rest position: taller drivers
// sit higher and slightly further back.
func (p Profile) headBase() geom.Vec3 {
	base := cabin.DriverHeadBase
	if p.HeightCM > 0 {
		dh := (p.HeightCM - 176) / 100 * 0.35
		base = base.Add(geom.Vec3{X: -dh * 0.3, Z: dh})
	}
	return base
}

// Scenario bundles every behavioural track the simulator needs to
// drive a cabin.Scene over time.
type Scenario struct {
	Name     string
	Duration float64
	SpeedMPS float64 // vehicle speed (≤ 15 mph in the paper's tests)

	HeadYaw      *Track
	HeadPitch    *Track // small nods; zero for typical driving (Fig. 2)
	HeadPos      *PosTrack
	Wheel        *Track // steering wheel angle, degrees
	PassengerYaw *Track

	// SteerFactor converts wheel angle (deg) × speed (m/s) into car
	// yaw rate (deg/s); depends on steering ratio and wheelbase.
	SteerFactor float64

	// LaneWobbleDeg/LaneWobbleHz superpose the continuous small
	// steering corrections of lane keeping on the wheel track — the
	// "small & bursty steering motion to keep the car straight" whose
	// CSI glitches Sec. 3.6 says the continuity filter absorbs.
	LaneWobbleDeg float64
	LaneWobbleHz  float64
}

// wheelAt returns the wheel angle including lane-keeping wobble.
func (sc *Scenario) wheelAt(t float64) float64 {
	w := 0.0
	if sc.Wheel != nil {
		w = sc.Wheel.At(t)
	}
	if sc.LaneWobbleDeg > 0 && sc.LaneWobbleHz > 0 {
		w += sc.LaneWobbleDeg * math.Sin(2*math.Pi*sc.LaneWobbleHz*t)
	}
	return w
}

// State returns the cabin state at time t.
func (sc *Scenario) State(t float64) cabin.State {
	st := cabin.State{Time: t}
	if sc.HeadYaw != nil {
		st.HeadYaw = sc.HeadYaw.At(t)
	}
	if sc.HeadPitch != nil {
		st.HeadPitch = sc.HeadPitch.At(t)
	}
	if sc.HeadPos != nil {
		st.HeadPos = sc.HeadPos.At(t)
	}
	if st.HeadPos == (geom.Vec3{}) {
		st.HeadPos = cabin.DriverHeadBase
	}
	st.WheelDeg = sc.wheelAt(t)
	if sc.PassengerYaw != nil {
		st.PassengerYaw = sc.PassengerYaw.At(t)
	}
	return st
}

// CarYawRateDPS returns the vehicle body yaw rate at time t: zero
// when driving straight, proportional to wheel angle and speed while
// steering — what the phone IMU senses.
func (sc *Scenario) CarYawRateDPS(t float64) float64 {
	if sc.Wheel == nil && sc.LaneWobbleDeg == 0 {
		return 0
	}
	f := sc.SteerFactor
	if f == 0 {
		f = defaultSteerFactor
	}
	return sc.wheelAt(t) * sc.SpeedMPS * f
}

// defaultSteerFactor approximates a sedan: wheel 120° at 6.7 m/s
// (15 mph) yields ≈ 20 deg/s body yaw.
const defaultSteerFactor = 0.025

// TrueYawRateDPS returns the head angular speed at time t.
func (sc *Scenario) TrueYawRateDPS(t float64) float64 {
	if sc.HeadYaw == nil {
		return 0
	}
	return sc.HeadYaw.Rate(t)
}

// sweepDuration returns the keyframe spacing needed for a smoothstep
// sweep across delta degrees to peak at speed deg/s.
func sweepDuration(deltaDeg, speedDPS float64) float64 {
	if speedDPS <= 0 {
		speedDPS = 110
	}
	return 1.5 * math.Abs(deltaDeg) / speedDPS
}

// Segment marks the time span of one head position during a profiling
// sweep: the driver settles facing front during [Start, SettleEnd] —
// when the CSI fingerprint φ⁰c(i) should be captured — then sweeps
// until End.
type Segment struct {
	Position         int
	Start, SettleEnd float64
	End              float64
}

// SweepScenario produces the continuous left-right head scanning used
// during profiling (Sec. 3.3) and in the controlled accuracy tests: at
// each of n head positions the driver settles facing front, then
// sweeps between ±maxYaw for perPosition seconds. Returns the
// scenario plus the per-position time segments.
func SweepScenario(p Profile, nPositions int, perPosition float64, speedDPS float64) (*Scenario, []Segment) {
	if nPositions < 1 {
		nPositions = 1
	}
	if speedDPS <= 0 {
		speedDPS = p.TurnSpeedDPS
	}
	yaw := NewTrack()
	pos := NewPosTrack()
	var segs []Segment
	t := 0.0
	base := p.headBase()
	for i := 0; i < nPositions; i++ {
		headPos := base.Add(cabin.HeadPosition(i, nPositions).Sub(cabin.DriverHeadBase))
		pos.Append(t, headPos)
		seg := Segment{Position: i, Start: t}
		// Settle facing front so the position fingerprint φ⁰c(i) can
		// be recorded from stable CSI.
		yaw.Append(t, 0)
		yaw.Append(t+1.6, 0)
		t += 1.6
		seg.SettleEnd = t
		// Sweep out to -max, then back and forth until the per-
		// position budget is used.
		end := t + perPosition
		cur := 0.0
		target := -p.MaxYawDeg
		for t < end {
			d := sweepDuration(target-cur, speedDPS)
			t += d
			yaw.Append(t, target)
			cur, target = target, -target
		}
		// Return to front before shifting position.
		d := sweepDuration(cur, speedDPS)
		t += d
		yaw.Append(t, 0)
		pos.Append(t, headPos)
		seg.End = t
		segs = append(segs, seg)
		t += 0.2
	}
	sc := &Scenario{
		Name:     "profiling-sweep",
		Duration: t,
		SpeedMPS: 0,
		HeadYaw:  yaw,
		HeadPos:  pos,
	}
	return sc, segs
}

// GlanceOptions configures DrivingScenario.
type GlanceOptions struct {
	Steering  bool    // include intersection turns
	SteerProb float64 // fraction of glances followed by steering (default 0.3)
	// LaneWobbleDeg adds continuous small lane-keeping wheel
	// corrections (0 = hands still between turns). Even sub-degree
	// wobble is a measurable slow CSI confound; see DESIGN.md
	// "Known deviations".
	LaneWobbleDeg  float64
	PassengerTurns bool    // passenger occasionally looks sideways
	PositionJitter float64 // std-dev (m) of slow head-position drift
	ReseatOffset   geom.Vec3
	SpeedMPS       float64
	TurnSpeedDPS   float64 // overrides the profile's head-turn speed
}

// DrivingScenario generates a realistic run-time trip: the driver
// faces the road, glances at mirrors/roadside with the profile's
// cadence, and (optionally) executes steering events each preceded by
// a preparatory head turn about one second earlier, matching the
// timing studies cited in Sec. 3.6.1.
func DrivingScenario(rng *stats.RNG, p Profile, duration float64, opt GlanceOptions) *Scenario {
	if duration <= 0 {
		duration = 60
	}
	speed := opt.SpeedMPS
	if speed == 0 {
		speed = 6.0 // ≈ 13 mph campus driving
	}
	turnSpeed := opt.TurnSpeedDPS
	if turnSpeed == 0 {
		turnSpeed = p.TurnSpeedDPS
	}

	yaw := NewTrack()
	wheel := NewTrack()
	pos := NewPosTrack()
	base := p.headBase().Add(opt.ReseatOffset)

	yaw.Append(0, 0)
	wheel.Append(0, 0)
	pos.Append(0, base)

	t := 0.0
	for t < duration {
		// Dwell on the road.
		gap := rng.Exp(1 / math.Max(p.GlanceRateHz, 0.05))
		if gap < 0.8 {
			gap = 0.8
		}
		t += gap
		if t >= duration {
			break
		}

		steerProb := opt.SteerProb
		if steerProb <= 0 {
			steerProb = 0.3
		}
		steer := opt.Steering && rng.Bool(steerProb)
		target := rng.Uniform(0.45, 1.0) * p.MaxYawDeg
		if rng.Bool(0.5) {
			target = -target
		}

		// Head turn out.
		d := sweepDuration(target, turnSpeed)
		yaw.Append(t, 0)
		t += d
		yaw.Append(t, target)
		// Hold at the glance target.
		hold := math.Max(p.GlanceHoldS*rng.Uniform(0.7, 1.4), 0.15)
		t += hold
		yaw.Append(t, target)
		// Return to front.
		t += d
		yaw.Append(t, 0)

		if steer {
			// Steering follows the preparatory head turn by ≈ 1 s:
			// ramp the wheel toward the glanced direction.
			wheelTarget := math.Copysign(rng.Uniform(80, 140), target)
			ts := t + rng.Uniform(0.15, 0.5)
			wheel.Append(ts, 0)
			wheel.Append(ts+1.0, wheelTarget)
			wheel.Append(ts+2.2, wheelTarget)
			wheel.Append(ts+3.4, 0)
			t = ts + 3.6
		}

		// Slow head-position drift.
		if opt.PositionJitter > 0 {
			drift := geom.Vec3{
				X: rng.Normal(0, opt.PositionJitter),
				Y: rng.Normal(0, opt.PositionJitter*0.4),
				Z: rng.Normal(0, opt.PositionJitter*0.3),
			}
			pos.Append(t, base.Add(drift))
		}
	}
	yaw.Append(duration, yaw.At(duration))
	pos.Append(duration, pos.At(duration))

	sc := &Scenario{
		Name:          "driving",
		Duration:      duration,
		SpeedMPS:      speed,
		HeadYaw:       yaw,
		HeadPos:       pos,
		Wheel:         wheel,
		LaneWobbleDeg: opt.LaneWobbleDeg,
		LaneWobbleHz:  0.3,
	}
	if opt.PassengerTurns {
		sc.PassengerYaw = passengerTrack(rng.Fork(), duration)
	}
	return sc
}

// passengerTrack generates the front passenger's occasional sideways
// looks (Sec. 5.3.4: "turns his head infrequently to look at roadside
// scenes").
func passengerTrack(rng *stats.RNG, duration float64) *Track {
	tr := NewTrack()
	tr.Append(0, 0)
	t := 0.0
	for t < duration {
		t += rng.Uniform(4, 10)
		if t >= duration {
			break
		}
		target := rng.Uniform(40, 90)
		if rng.Bool(0.5) {
			target = -target
		}
		d := sweepDuration(target, 90)
		tr.Append(t, 0)
		tr.Append(t+d, target)
		tr.Append(t+d+rng.Uniform(0.5, 2), target)
		tr.Append(t+2*d+rng.Uniform(0.5, 2), 0)
		t += 2*d + 2
	}
	return tr
}

// SteeringOnlyScenario reproduces the Fig. 8 experiment: the driver
// keeps the head still while turning the wheel back and forth.
func SteeringOnlyScenario(duration float64) *Scenario {
	wheel := NewTrack()
	wheel.Append(0, 0)
	t := 1.0
	target := 120.0
	for t < duration {
		wheel.Append(t, 0)
		wheel.Append(t+1.2, target)
		wheel.Append(t+2.4, 0)
		t += 2.6
		target = -target
	}
	return &Scenario{
		Name:     "steering-only",
		Duration: duration,
		SpeedMPS: 6,
		HeadYaw:  NewTrack(Key{T: 0, V: 0}),
		HeadPos:  constPos(cabin.DriverHeadBase),
		Wheel:    wheel,
	}
}

// HeadOnlyScenario is the complementary Fig. 8 segment: continuous
// head sweeps with hands still.
func HeadOnlyScenario(p Profile, duration float64) *Scenario {
	sc, _ := SweepScenario(p, 1, duration, p.TurnSpeedDPS)
	sc.Name = "head-only"
	sc.Duration = duration
	return sc
}

func constPos(p geom.Vec3) *PosTrack {
	tr := NewPosTrack()
	tr.Append(0, p)
	return tr
}

// AddPositionDrift overlays a bounded random walk on the scenario's
// head-position track: the slow postural sway of a real driver, which
// keeps the run-time head slightly off every profiled position. std
// is the per-step (≈2 s) displacement standard deviation in meters;
// the walk is clamped to ±3·std per axis.
func AddPositionDrift(sc *Scenario, rng *stats.RNG, std float64) {
	if sc.HeadPos == nil || std <= 0 {
		return
	}
	old := sc.HeadPos
	drifted := NewPosTrack()
	var dx, dy, dz float64
	clamp := func(v float64) float64 { return geom.ClampDeg(v, -3*std, 3*std) }
	const step = 2.0
	for t := 0.0; t <= sc.Duration+step; t += step {
		drifted.Append(t, old.At(t).Add(geom.Vec3{X: dx, Y: dy, Z: dz}))
		dx = clamp(dx + rng.Normal(0, std))
		dy = clamp(dy + rng.Normal(0, std*0.4))
		dz = clamp(dz + rng.Normal(0, std*0.4))
	}
	sc.HeadPos = drifted
}
