package imu

import "vihot/internal/stats"

// Pose is a head attitude in degrees: yaw in the horizontal plane
// (the axis ViHOT tracks), pitch and roll the residual axes that
// Fig. 2 shows stay small during driving.
type Pose struct {
	Time             float64
	Yaw, Pitch, Roll float64
}

// Headset models the Samsung GearVR worn backwards that supplies the
// ground-truth head pose (Sec. 5.1). It adds small attitude noise and
// occasionally "slips" on the head — footnote 5 of the paper blames
// rare large evaluation errors on exactly this — introducing a
// temporary yaw offset that decays as the strap settles.
type Headset struct {
	NoiseStdDeg float64 // per-sample attitude noise
	SlipProb    float64 // per-sample probability of a slip event
	SlipMaxDeg  float64 // worst-case slip offset
	SlipDecay   float64 // exponential decay of the offset per second

	rng      *stats.RNG
	slip     float64
	lastTime float64
}

// NewHeadset returns a GearVR-grade ground-truth source. Pass
// slipProb 0 for a perfectly strapped headset.
func NewHeadset(rng *stats.RNG, slipProb float64) *Headset {
	return &Headset{
		NoiseStdDeg: 0.4,
		SlipProb:    slipProb,
		SlipMaxDeg:  8,
		SlipDecay:   0.4,
		rng:         rng,
	}
}

// Sample returns the headset's measurement of a true pose. Pitch and
// roll measurements include the small projections of a real head turn
// onto the other planes (Fig. 2).
func (h *Headset) Sample(t float64, trueYaw float64) Pose {
	dt := t - h.lastTime
	if dt < 0 {
		dt = 0
	}
	h.lastTime = t
	if h.slip != 0 && dt > 0 {
		decay := 1 - h.SlipDecay*dt
		if decay < 0 {
			decay = 0
		}
		h.slip *= decay
	}
	p := Pose{Time: t, Yaw: trueYaw + h.slip}
	if h.rng != nil {
		if h.SlipProb > 0 && h.rng.Bool(h.SlipProb) {
			h.slip += h.rng.Uniform(-h.SlipMaxDeg, h.SlipMaxDeg)
		}
		p.Yaw += h.rng.Normal(0, h.NoiseStdDeg)
		// Real head turns project weakly onto pitch/roll: the paper
		// measures only small excursions on those axes.
		p.Pitch = 0.06*trueYaw + h.rng.Normal(0, h.NoiseStdDeg)
		p.Roll = -0.04*trueYaw + h.rng.Normal(0, h.NoiseStdDeg)
	}
	return p
}

// SlipOffset exposes the current slip for tests.
func (h *Headset) SlipOffset() float64 { return h.slip }
