// Package imu models the two inertial sensors ViHOT touches: the
// phone rigidly mounted on the dashboard (whose gyroscope senses the
// car body's rotation, Sec. 3.6.2) and the ground-truth headset worn
// backwards on the driver's head during profiling and evaluation
// (Sec. 5.1, Fig. 2).
package imu

import (
	"math"

	"vihot/internal/stats"
)

// Reading is one IMU sample.
type Reading struct {
	Time  float64
	GyroZ float64 // yaw rate, degrees/second (car frame, +Z up)
	// AccelLat is lateral acceleration in m/s² — centripetal when the
	// car turns, used as a secondary turn cue.
	AccelLat float64
}

// Finite reports whether every field of the reading is a finite
// number. Bit-corrupted wire datagrams can carry NaN/Inf payloads; a
// non-finite reading must be rejected before it poisons the steering
// detector's smoother or the pipeline's watchdog clocks.
func (r Reading) Finite() bool {
	for _, v := range [...]float64{r.Time, r.GyroZ, r.AccelLat} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// PhoneIMU models the dashboard phone's inertial sensors. It sees the
// car body's motion only: head turning is invisible to it, which is
// precisely why it can disambiguate head rotation from steering
// (Sec. 3.6.1 — only steering redirects the vehicle).
type PhoneIMU struct {
	GyroBias     float64 // deg/s constant bias
	GyroNoiseStd float64 // deg/s white noise
	AccelNoise   float64 // m/s² white noise
	VibrationStd float64 // extra road-vibration noise on both channels

	rng *stats.RNG
}

// NewPhoneIMU returns a phone IMU with commodity-grade MEMS noise.
func NewPhoneIMU(rng *stats.RNG) *PhoneIMU {
	return &PhoneIMU{
		GyroBias:     0.15,
		GyroNoiseStd: 0.4,
		AccelNoise:   0.05,
		VibrationStd: 0.3,
		rng:          rng,
	}
}

// Sample returns a noisy reading given the true car yaw rate (deg/s)
// and speed (m/s).
func (p *PhoneIMU) Sample(t, carYawRateDPS, speedMPS float64) Reading {
	r := Reading{Time: t, GyroZ: carYawRateDPS + p.GyroBias, AccelLat: centripetal(carYawRateDPS, speedMPS)}
	if p.rng != nil {
		r.GyroZ += p.rng.Normal(0, p.GyroNoiseStd+p.VibrationStd)
		r.AccelLat += p.rng.Normal(0, p.AccelNoise+p.VibrationStd*0.1)
	}
	return r
}

// centripetal returns the lateral acceleration of a vehicle moving at
// speed m/s while yawing at rate deg/s: a = v·ω.
func centripetal(yawRateDPS, speedMPS float64) float64 {
	return speedMPS * yawRateDPS * math.Pi / 180
}

// TurnDetector decides from streaming phone-IMU readings whether the
// car body is currently turning — the gate of the steering identifier
// (Sec. 3.6.2). It smooths the gyro with an exponential average and
// compares against a threshold with hysteresis so vibration noise
// does not chatter the decision.
type TurnDetector struct {
	OnThresholdDPS  float64 // smoothed |gyro| to declare turning
	OffThresholdDPS float64 // smoothed |gyro| to declare straight
	Alpha           float64 // EMA smoothing factor

	smoothed float64
	turning  bool
	primed   bool
}

// NewTurnDetector returns a detector tuned for intersection turns
// (tens of deg/s) versus lane-keeping corrections (a few deg/s).
func NewTurnDetector() *TurnDetector {
	return &TurnDetector{OnThresholdDPS: 6, OffThresholdDPS: 3, Alpha: 0.15}
}

// Push feeds one reading and returns whether the car is turning.
// Non-finite readings (a glitching sensor) are ignored: folding a NaN
// into the smoother would freeze the detector in its current state
// permanently.
func (d *TurnDetector) Push(r Reading) bool {
	if math.IsNaN(r.GyroZ) || math.IsInf(r.GyroZ, 0) {
		return d.turning
	}
	mag := math.Abs(r.GyroZ)
	if !d.primed {
		d.smoothed = mag
		d.primed = true
	} else {
		d.smoothed += d.Alpha * (mag - d.smoothed)
	}
	if d.turning {
		if d.smoothed < d.OffThresholdDPS {
			d.turning = false
		}
	} else if d.smoothed > d.OnThresholdDPS {
		d.turning = true
	}
	return d.turning
}

// Turning reports the current decision without feeding a sample.
func (d *TurnDetector) Turning() bool { return d.turning }

// Reset clears detector state.
func (d *TurnDetector) Reset() {
	d.smoothed, d.turning, d.primed = 0, false, false
}
