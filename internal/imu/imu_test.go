package imu

import (
	"math"
	"testing"

	"vihot/internal/stats"
)

func TestPhoneIMUSensesCarOnly(t *testing.T) {
	p := NewPhoneIMU(stats.NewRNG(1))
	// The phone is rigid on the dash: car yaw rate appears in gyro.
	var readings []float64
	for i := 0; i < 500; i++ {
		readings = append(readings, p.Sample(float64(i)*0.01, 20, 6).GyroZ)
	}
	if m := stats.Mean(readings); math.Abs(m-20) > 1 {
		t.Errorf("gyro mean = %v, want ≈20 (+bias)", m)
	}
}

func TestPhoneIMUNoise(t *testing.T) {
	p := NewPhoneIMU(stats.NewRNG(2))
	var readings []float64
	for i := 0; i < 1000; i++ {
		readings = append(readings, p.Sample(0, 0, 0).GyroZ)
	}
	if s := stats.StdDev(readings); s == 0 {
		t.Error("gyro noise absent")
	}
}

func TestPhoneIMUCentripetal(t *testing.T) {
	p := &PhoneIMU{} // nil RNG: deterministic
	r := p.Sample(0, 30, 10)
	want := 10 * 30 * math.Pi / 180 // v·ω ≈ 5.2 m/s²
	if math.Abs(r.AccelLat-want) > 1e-9 {
		t.Errorf("lateral accel = %v, want %v", r.AccelLat, want)
	}
	if r2 := p.Sample(0, 30, 0); r2.AccelLat != 0 {
		t.Error("stationary car must have zero centripetal accel")
	}
}

func TestTurnDetectorHysteresis(t *testing.T) {
	d := NewTurnDetector()
	// Straight driving with vibration noise: never triggers.
	rng := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		if d.Push(Reading{Time: float64(i) * 0.01, GyroZ: rng.Normal(0, 1)}) {
			t.Fatal("noise triggered the turn detector")
		}
	}
	// A real turn (20°/s): triggers.
	triggered := false
	for i := 0; i < 100; i++ {
		if d.Push(Reading{Time: 3 + float64(i)*0.01, GyroZ: 20}) {
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("turn not detected")
	}
	if !d.Turning() {
		t.Fatal("Turning() disagrees with Push")
	}
	// Back to straight: must clear (hysteresis at the low threshold).
	cleared := false
	for i := 0; i < 300; i++ {
		if !d.Push(Reading{Time: 5 + float64(i)*0.01, GyroZ: 0}) {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Error("turn flag never cleared")
	}
}

func TestTurnDetectorLaneKeepingIgnored(t *testing.T) {
	// Small bursty corrections (≤3°/s) must not look like turns.
	d := NewTurnDetector()
	for i := 0; i < 500; i++ {
		rate := 3 * math.Sin(float64(i)*0.1)
		if d.Push(Reading{Time: float64(i) * 0.01, GyroZ: rate}) {
			t.Fatal("lane keeping triggered the detector")
		}
	}
}

func TestTurnDetectorReset(t *testing.T) {
	d := NewTurnDetector()
	for i := 0; i < 100; i++ {
		d.Push(Reading{Time: float64(i) * 0.01, GyroZ: 30})
	}
	d.Reset()
	if d.Turning() {
		t.Error("Reset kept turning state")
	}
}

func TestHeadsetTracksYaw(t *testing.T) {
	h := NewHeadset(stats.NewRNG(4), 0)
	var errs []float64
	for i := 0; i < 500; i++ {
		truth := 60 * math.Sin(float64(i)*0.02)
		p := h.Sample(float64(i)*0.01, truth)
		errs = append(errs, math.Abs(p.Yaw-truth))
	}
	if m := stats.Mean(errs); m > 1.5 {
		t.Errorf("headset mean error = %v, want small", m)
	}
}

func TestHeadsetPitchRollSmall(t *testing.T) {
	// Fig. 2: pitch/roll projections stay well below yaw.
	h := NewHeadset(stats.NewRNG(5), 0)
	var maxPitch, maxRoll float64
	for i := 0; i < 500; i++ {
		truth := 80 * math.Sin(float64(i)*0.02)
		p := h.Sample(float64(i)*0.01, truth)
		if v := math.Abs(p.Pitch); v > maxPitch {
			maxPitch = v
		}
		if v := math.Abs(p.Roll); v > maxRoll {
			maxRoll = v
		}
	}
	if maxPitch > 12 || maxRoll > 12 {
		t.Errorf("pitch/roll too large: %v/%v", maxPitch, maxRoll)
	}
}

func TestHeadsetSlip(t *testing.T) {
	h := NewHeadset(stats.NewRNG(6), 0.05)
	slipped := false
	for i := 0; i < 2000; i++ {
		h.Sample(float64(i)*0.01, 0)
		if math.Abs(h.SlipOffset()) > 0.5 {
			slipped = true
			break
		}
	}
	if !slipped {
		t.Error("headset never slipped at 5% probability")
	}
}

func TestHeadsetSlipDecays(t *testing.T) {
	h := NewHeadset(nil, 0)
	h.slip = 10
	h.Sample(0, 0)
	h.Sample(5, 0) // 5 seconds later
	if math.Abs(h.SlipOffset()) >= 10 {
		t.Errorf("slip did not decay: %v", h.SlipOffset())
	}
	if h.SlipOffset() < 0 {
		t.Error("decay overshot below zero")
	}
}

func TestHeadsetNoSlipWhenDisabled(t *testing.T) {
	h := NewHeadset(stats.NewRNG(7), 0)
	for i := 0; i < 2000; i++ {
		h.Sample(float64(i)*0.01, 30)
	}
	if h.SlipOffset() != 0 {
		t.Error("slip occurred with probability 0")
	}
}

func TestHeadsetOutOfOrderTime(t *testing.T) {
	h := NewHeadset(stats.NewRNG(8), 0)
	h.Sample(5, 0)
	// Going back in time must not blow up the decay.
	p := h.Sample(1, 10)
	if math.IsNaN(p.Yaw) {
		t.Error("NaN yaw on out-of-order sample")
	}
}
