package profilestore

// Doorkeeper admission: a small per-shard recency sketch that stands
// between a freshly loaded profile and a full cache. Plain LRU (and
// even LFU, for brand-new keys) lets a burst of one-shot keys — a
// fleet scan, a misrouted rider churn — evict established hot driver
// styles one insert at a time. The doorkeeper makes first-touch keys
// prove themselves: the first load of an unknown key while the shard
// is full is handed to the caller but NOT cached (only its 32-bit key
// fingerprint is remembered); a second touch within the sketch's
// memory admits it for real. Hot profiles therefore can only be
// displaced by keys that came back — never by a key seen once.
//
// The sketch is a direct-mapped tag table: slot = fp & mask, holding
// the full 32-bit fingerprint. Collisions overwrite, which is the
// aging mechanism — a busy keyspace naturally forgets old one-shots.
// False positives (two keys sharing slot AND tag) admit early, which
// is harmless; false "negatives" cannot occur for a key whose tag is
// still resident. While the shard has free capacity the doorkeeper is
// bypassed entirely: there is nothing to protect, and a cold fleet
// warms at full speed. Put also bypasses it — an explicit publish
// (cluster replication, cache warming) is its own admission decision.
type doorkeeper struct {
	tags []uint32
	mask uint32
}

// doorSlotsPerCap sizes the sketch: 4 tag slots per cache slot keeps
// the collision rate low enough that a genuinely re-touched key is
// still remembered by its second access under ~4× capacity of
// interleaved churn.
const doorSlotsPerCap = 4

func newDoorkeeper(capacity int) *doorkeeper {
	n := 1
	for n < capacity*doorSlotsPerCap {
		n <<= 1
	}
	return &doorkeeper{tags: make([]uint32, n), mask: uint32(n - 1)}
}

// fingerprint32 hashes a key for the sketch (FNV-1a 32, same family
// as the shard router but kept separate so shard skew and sketch
// collisions stay uncorrelated — the sketch mixes with a final
// avalanche round).
func fingerprint32(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	// One xorshift-multiply round so keys that share an FNV prefix
	// don't also share sketch slots.
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	if h == 0 {
		h = 1 // 0 is the empty-slot sentinel
	}
	return h
}

// admit consults and updates the sketch for one insert attempt while
// the shard is full. It reports whether the key has been seen
// recently (admit) and records the key's tag either way.
func (d *doorkeeper) admit(key string) bool {
	fp := fingerprint32(key)
	slot := fp & d.mask
	if d.tags[slot] == fp {
		return true
	}
	d.tags[slot] = fp
	return false
}
