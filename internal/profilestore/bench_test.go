package profilestore

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkStoreHotHit is the acceptance benchmark for the hot path:
// a cache hit must be allocation-free under every policy (one shard
// lock, one map probe, one intrusive splice/bump, one atomic add).
func BenchmarkStoreHotHit(b *testing.B) {
	for _, pol := range allPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			cl := &countingLoader{t: b}
			s := New(Config{Policy: pol, Loader: cl})
			if _, err := s.Get("hot"); err != nil {
				b.Fatal(err)
			}
			if pol == Policy2Q {
				// Promote past probation so the hit path exercises the
				// protected queue's splice, not the FIFO no-op.
				for i := 0; i < 8; i++ {
					if _, err := s.Get(fmt.Sprintf("churn-%d", i)); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.Get("hot"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := s.Get("hot")
				if err != nil || p == nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreColdLoad measures the miss path end to end: disk
// read, decode, validate, fingerprint, insert. Each iteration uses a
// fresh key against a pre-populated directory so the cache never
// warms.
func BenchmarkStoreColdLoad(b *testing.B) {
	dir := b.TempDir()
	dl := NewDirLoader(dir)
	p := synthProfile(b, 5, 1)
	const files = 512
	for i := 0; i < files; i++ {
		if err := dl.Save(fmt.Sprintf("driver-%d", i), p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Capacity 1 with a rotating key keeps every Get cold.
		if i%files == 0 {
			b.StopTimer()
			s := New(Config{Shards: 1, Capacity: 1, Loader: dl})
			b.StartTimer()
			benchStore = s
		}
		if _, err := benchStore.Get(fmt.Sprintf("driver-%d", i%files)); err != nil {
			b.Fatal(err)
		}
	}
}

var benchStore *Store // keeps the cold-load store out of the timed loop's escape analysis

// BenchmarkStoreContention64 drives 64 goroutines at a 16-key working
// set that fits in cache: the sharded-lock scaling story under pure
// hit traffic.
func BenchmarkStoreContention64(b *testing.B) {
	cl := &countingLoader{t: b}
	s := New(Config{Shards: 8, Capacity: 64, Loader: cl})
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("driver-%d", i)
		if _, err := s.Get(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	prev := runtime.GOMAXPROCS(0)
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism((64 + prev - 1) / prev) // ≈64 concurrent goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := keys[ctr.Add(1)%uint64(len(keys))]
			if p, err := s.Get(k); err != nil || p == nil {
				b.Fatal(err)
			}
		}
	})
}
