package profilestore

import (
	"sync"

	"vihot/internal/core"
)

// Batch resolution: the fleet-open path. A ride-share depot bringing
// N cars online, or a cluster admitting an N-session scenario mix,
// asks for N profiles drawn from M ≤ N distinct keys. Resolving them
// one Get at a time works (the cache and singleflight already cap the
// loads at M), but serializes the cold loads; GetMany overlaps them
// and dedupes duplicate keys inside the batch itself, so the whole
// batch costs exactly one loader call per distinct cold key — and
// those calls run concurrently, not back to back.

// GetMany resolves every key in one batch. The returned slices align
// with keys: out[i] is the profile for keys[i] and errs[i] its error
// (nil on success) — per-key reporting, so one broken profile fails
// one session, not the fleet. Duplicate keys share one resolution
// (and one hit/miss account). Keys already in flight from concurrent
// Gets are joined, never reloaded; cold keys owned by this batch load
// concurrently through the configured Loader.
func (s *Store) GetMany(keys []string) ([]*core.Profile, []error) {
	ps := make([]*core.Profile, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return ps, errs
	}

	// One resolution per distinct key; later duplicates copy from the
	// first occurrence after it settles.
	type pending struct {
		idx int
		f   *flight
	}
	first := make(map[string]int, len(keys))
	var owned, joined []pending
	for i, key := range keys {
		if key == "" {
			errs[i] = ErrEmptyKey
			continue
		}
		if _, dup := first[key]; dup {
			continue
		}
		first[key] = i
		p, _, f, own, err := s.acquire(key)
		switch {
		case err != nil:
			errs[i] = err
		case f == nil:
			ps[i] = p
		case own:
			owned = append(owned, pending{i, f})
		default:
			joined = append(joined, pending{i, f})
		}
	}

	// Run the loads this batch owns. One cold key loads inline; more
	// overlap on their own goroutines (the Loader contract allows
	// concurrent calls for different keys).
	switch len(owned) {
	case 0:
	case 1:
		s.runLoad(keys[owned[0].idx], owned[0].f)
	default:
		var wg sync.WaitGroup
		wg.Add(len(owned))
		for _, w := range owned {
			go func(key string, f *flight) {
				defer wg.Done()
				s.runLoad(key, f)
			}(keys[w.idx], w.f)
		}
		wg.Wait()
	}
	for _, w := range owned {
		ps[w.idx], errs[w.idx] = w.f.p, w.f.err
	}
	// Flights owned by concurrent Gets (or other batches) settle on
	// their own schedule; park on each.
	for _, w := range joined {
		<-w.f.done
		ps[w.idx], errs[w.idx] = w.f.p, w.f.err
	}

	for i, key := range keys {
		if key == "" {
			continue
		}
		if j := first[key]; j != i {
			ps[i], errs[i] = ps[j], errs[j]
		}
	}
	return ps, errs
}
