package profilestore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"vihot/internal/core"
)

// ProfileExt is the file extension a DirLoader expects:
// <dir>/<key>.profile.
const ProfileExt = ".profile"

// Errors returned by DirLoader.
var (
	// ErrBadKey rejects keys that could escape the profile directory
	// or collide with path syntax.
	ErrBadKey = errors.New("profilestore: key is not a valid profile name")
	// ErrNotFound wraps fs.ErrNotExist so callers can distinguish "no
	// such driver" from a broken file.
	ErrNotFound = errors.New("profilestore: profile not found")
)

// DirLoader loads profiles from a flat directory, one file per key:
// <dir>/<key>.profile, in either on-disk encoding (core.ReadProfile
// sniffs). It is the store's default production Loader; anything
// fancier (object store, database, replication) implements Loader
// itself.
type DirLoader struct {
	dir string
}

// NewDirLoader builds a loader over dir. The directory needs to exist
// only by the first Load.
func NewDirLoader(dir string) *DirLoader { return &DirLoader{dir: dir} }

// Path returns the file a key resolves to, or ErrBadKey for keys that
// are empty, contain path separators, dots-only traversal, or NUL.
// Keys are IDs, not paths: the loader never joins anything that could
// climb out of its directory.
func (dl *DirLoader) Path(key string) (string, error) {
	if key == "" {
		return "", ErrEmptyKey
	}
	if strings.ContainsAny(key, "/\\\x00") || key == "." || key == ".." {
		return "", fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	return filepath.Join(dl.dir, key+ProfileExt), nil
}

// Load implements Loader.
func (dl *DirLoader) Load(key string) (*core.Profile, error) {
	path, err := dl.Path(key)
	if err != nil {
		return nil, err
	}
	p, err := core.LoadProfile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return p, err
}

// Save writes a profile for key into the loader's directory in the
// current format, creating the directory if needed — the write half
// of the directory layout, used by profiling tools and tests. The
// write goes through core.SaveProfile's atomic temp+fsync+rename
// path, so overwriting a profile a concurrent Load is reading (or
// crashing mid-save) can never expose a torn file.
func (dl *DirLoader) Save(key string, p *core.Profile) error {
	path, err := dl.Path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dl.dir, 0o755); err != nil {
		return err
	}
	return core.SaveProfile(path, p)
}
